package hstoragedb_test

import (
	"testing"
	"time"

	"hstoragedb"
)

// TestPublicAPIEndToEnd drives the whole stack through the facade: build
// a custom database, load, index, run a mixed plan, inspect statistics.
func TestPublicAPIEndToEnd(t *testing.T) {
	db := hstoragedb.NewDatabase()
	info, err := db.CreateTable("t", hstoragedb.NewSchema(
		hstoragedb.Column{Name: "k", Type: hstoragedb.Int64Col},
		hstoragedb.Column{Name: "v", Type: hstoragedb.Float64Col},
	))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := db.NewInstance(hstoragedb.InstanceConfig{
		Storage: hstoragedb.StorageConfig{
			Mode:        hstoragedb.HStorage,
			CacheBlocks: 512,
			Policy:      hstoragedb.DefaultPolicySpace(),
		},
		BufferPoolPages: 32,
		CPUPerTuple:     300 * time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := inst.NewLoader("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5000; i++ {
		if _, err := l.Add(hstoragedb.Tuple{hstoragedb.Int(i), hstoragedb.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.BuildIndex("t_k", "t", "k"); err != nil {
		t.Fatal(err)
	}
	inst.ResetStats()
	inst.DropBufferPool() // cold start: the query must generate real I/O

	sess := inst.NewSession()
	res, err := sess.Execute(&hstoragedb.IndexScan{
		Index: db.Cat.MustIndex("t_k"),
		Table: hstoragedb.NewTableHandle(info),
		Lo:    100, Hi: 299,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 200 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	if res.Elapsed <= 0 {
		t.Fatal("no simulated time")
	}
	snap := inst.Sys.Stats()
	if snap.Hits+snap.Misses == 0 {
		t.Fatal("no storage traffic recorded")
	}
}

// TestPublicTPCH runs one TPC-H query through the facade under every
// mode constant (including the ARC extension).
func TestPublicTPCH(t *testing.T) {
	ds, err := hstoragedb.LoadTPCH(0.002)
	if err != nil {
		t.Fatal(err)
	}
	modes := append(hstoragedb.Modes(), hstoragedb.ARC)
	for _, mode := range modes {
		inst, err := ds.DB.NewInstance(hstoragedb.InstanceConfig{
			Storage:         hstoragedb.StorageConfig{Mode: mode, CacheBlocks: 512},
			BufferPoolPages: 64,
			WorkMem:         500,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		sess := inst.NewSession()
		op, err := ds.Query(6, 0)
		if err != nil {
			t.Fatal(err)
		}
		n, elapsed, err := sess.ExecuteDiscard(op)
		if err != nil {
			t.Fatalf("Q6 on %v: %v", mode, err)
		}
		if n == 0 || elapsed <= 0 {
			t.Fatalf("%v: n=%d elapsed=%v", mode, n, elapsed)
		}
	}
	if len(hstoragedb.PowerOrder()) != 22 {
		t.Fatal("power order")
	}
	if len(hstoragedb.RequestTypes()) != 5 {
		t.Fatal("request types")
	}
}

// TestDeviceSpecsExported checks the Table 2 constants at the facade.
func TestDeviceSpecsExported(t *testing.T) {
	ssd := hstoragedb.Intel320()
	hdd := hstoragedb.Cheetah15K()
	if ssd.SeqReadBps != 270e6 || hdd.SeqReadBps != 150e6 {
		t.Fatalf("specs: %v %v", ssd.SeqReadBps, hdd.SeqReadBps)
	}
}
