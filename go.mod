module hstoragedb

go 1.22
