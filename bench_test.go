// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one benchmark per artifact; see DESIGN.md's per-experiment
// index), plus ablation benches for the design choices the paper's rules
// encode. Reported custom metrics carry the reproduced numbers:
// "sim-ms/<thing>" is simulated execution time, "hit-%" a cache hit
// ratio, "qph" throughput in queries per simulated hour.
//
//	go test -bench=. -benchmem
package hstoragedb_test

import (
	"sync"
	"testing"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/exec"
	"hstoragedb/internal/experiments"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/tpch"
)

// benchSF keeps the benchmark corpus small enough for -bench=. to finish
// in minutes while preserving the paper's capacity ratios.
const benchSF = 0.005

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.SF = benchSF
		envVal, envErr = experiments.NewEnv(cfg)
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkFig4RequestDiversity regenerates Figure 4: the request-type
// mix of all 22 TPC-H queries.
func BenchmarkFig4RequestDiversity(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		shares, err := e.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if len(shares) != 22 {
			b.Fatalf("%d queries", len(shares))
		}
	}
}

// BenchmarkFig5Sequential regenerates Figure 5 (Q1, Q5, Q11, Q19 under
// the four storage configurations).
func BenchmarkFig5Sequential(b *testing.B) {
	e := benchEnv(b)
	var rows []experiments.ModeTimes
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = e.Fig5()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(ms(rows[0].Times[hybrid.HDDOnly]), "sim-ms/Q1-hdd")
		b.ReportMetric(ms(rows[0].Times[hybrid.LRU]), "sim-ms/Q1-lru")
		b.ReportMetric(ms(rows[0].Times[hybrid.HStorage]), "sim-ms/Q1-hstorage")
	}
}

// BenchmarkTable4LRUSequential regenerates Table 4: LRU cache statistics
// for the sequential-dominated queries.
func BenchmarkTable4LRUSequential(b *testing.B) {
	e := benchEnv(b)
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = e.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(100*rows[0].Ratio, "hit-%/Q1")
	}
}

// BenchmarkFig6Random regenerates Figure 6 (Q9 and Q21).
func BenchmarkFig6Random(b *testing.B) {
	e := benchEnv(b)
	var rows []experiments.ModeTimes
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = e.Fig6()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 2 {
		b.ReportMetric(ms(rows[0].Times[hybrid.HDDOnly]), "sim-ms/Q9-hdd")
		b.ReportMetric(ms(rows[0].Times[hybrid.HStorage]), "sim-ms/Q9-hstorage")
		b.ReportMetric(ms(rows[1].Times[hybrid.HDDOnly]), "sim-ms/Q21-hdd")
		b.ReportMetric(ms(rows[1].Times[hybrid.HStorage]), "sim-ms/Q21-hstorage")
	}
}

// BenchmarkTable5Q9Stats regenerates Table 5: per-priority cache
// statistics of Q9 under hStorage-DB.
func BenchmarkTable5Q9Stats(b *testing.B) {
	e := benchEnv(b)
	var rows []experiments.PrioRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = e.Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(100*r.Ratio(), "hit-%/"+r.Label)
	}
}

// BenchmarkTable6Q21Stats regenerates Table 6: Q21 under hStorage-DB and
// LRU.
func BenchmarkTable6Q21Stats(b *testing.B) {
	e := benchEnv(b)
	var hs []experiments.PrioRow
	for i := 0; i < b.N; i++ {
		var err error
		hs, _, err = e.Table6()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range hs {
		b.ReportMetric(100*r.Ratio(), "hit-%/"+r.Label)
	}
}

// BenchmarkFig9TempData regenerates Figure 9 (Q18).
func BenchmarkFig9TempData(b *testing.B) {
	e := benchEnv(b)
	var rows []experiments.ModeTimes
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = e.Fig9()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 1 {
		b.ReportMetric(ms(rows[0].Times[hybrid.LRU]), "sim-ms/Q18-lru")
		b.ReportMetric(ms(rows[0].Times[hybrid.HStorage]), "sim-ms/Q18-hstorage")
	}
}

// BenchmarkTable7Q18Stats regenerates Table 7: Q18's temp-read hit ratios.
func BenchmarkTable7Q18Stats(b *testing.B) {
	e := benchEnv(b)
	var hs, lru []experiments.PrioRow
	for i := 0; i < b.N; i++ {
		var err error
		hs, lru, err = e.Table7()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range hs {
		b.ReportMetric(100*r.Ratio(), "hit-%/hstorage-"+r.Label)
	}
	for _, r := range lru {
		b.ReportMetric(100*r.Ratio(), "hit-%/lru-"+r.Label)
	}
}

// BenchmarkFig11PowerTest regenerates Figure 11 and Table 8: the full
// power-test sequence under three configurations.
func BenchmarkFig11PowerTest(b *testing.B) {
	e := benchEnv(b)
	var res *experiments.PowerResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = e.Fig11()
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil {
		b.ReportMetric(ms(res.Totals[hybrid.HDDOnly]), "sim-ms/total-hdd")
		b.ReportMetric(ms(res.Totals[hybrid.HStorage]), "sim-ms/total-hstorage")
		b.ReportMetric(ms(res.Totals[hybrid.SSDOnly]), "sim-ms/total-ssd")
	}
}

// BenchmarkTable9Throughput regenerates Table 9: the concurrent
// throughput test.
func BenchmarkTable9Throughput(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.SF = benchSF
	tEnv, err := experiments.NewEnv(cfg.ThroughputConfig())
	if err != nil {
		b.Fatal(err)
	}
	var res *experiments.ThroughputResult
	for i := 0; i < b.N; i++ {
		res, err = tEnv.Table9(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil {
		for _, mode := range hybrid.Modes() {
			b.ReportMetric(res.QueriesPerHour[mode], "qph/"+mode.String())
		}
	}
}

// BenchmarkFig12Concurrency regenerates Figure 12: Q9/Q18 standalone vs
// inside the throughput test.
func BenchmarkFig12Concurrency(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.SF = benchSF
	tEnv, err := experiments.NewEnv(cfg.ThroughputConfig())
	if err != nil {
		b.Fatal(err)
	}
	var f12 *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		t9, err := tEnv.Table9(3)
		if err != nil {
			b.Fatal(err)
		}
		f12, err = tEnv.Fig12(t9)
		if err != nil {
			b.Fatal(err)
		}
	}
	if f12 != nil {
		b.ReportMetric(ms(f12.Throughput[9][hybrid.LRU]), "sim-ms/Q9-lru-tp")
		b.ReportMetric(ms(f12.Throughput[9][hybrid.HStorage]), "sim-ms/Q9-hstorage-tp")
	}
}

// ---- ablations (DESIGN.md Section 5) ----

// ablationRun executes Q18 on a fresh instance built by mutate and
// returns its simulated time.
func ablationRun(b *testing.B, e *experiments.Env, mutate func(*engine.InstanceConfig)) time.Duration {
	b.Helper()
	data := e.DS.DB.Store.TotalPages()
	cfg := engine.InstanceConfig{
		Storage: hybrid.Config{
			Mode:        hybrid.HStorage,
			CacheBlocks: int(float64(data) * 0.3),
		},
		BufferPoolPages: int(float64(data) * 0.04),
		WorkMem:         e.Cfg.WorkMem,
		CPUPerTuple:     300 * time.Nanosecond,
	}
	mutate(&cfg)
	inst, err := e.DS.DB.NewInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sess := inst.NewSession()
	op, err := e.DS.Query(18, 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := sess.ExecuteDiscard(op); err != nil {
		b.Fatal(err)
	}
	inst.Mgr.Wait(&sess.Clk)
	return sess.Clk.Now()
}

// BenchmarkAblationTrim compares Q18 with and without TRIM on temp-file
// deletion: without it, dead temporary data pins the cache (the problem
// Section 4.2.3 describes).
func BenchmarkAblationTrim(b *testing.B) {
	e := benchEnv(b)
	var with, without time.Duration
	for i := 0; i < b.N; i++ {
		with = ablationRun(b, e, func(*engine.InstanceConfig) {})
		without = ablationRun(b, e, func(c *engine.InstanceConfig) { c.DisableTrim = true })
	}
	b.ReportMetric(ms(with), "sim-ms/trim-on")
	b.ReportMetric(ms(without), "sim-ms/trim-off")
}

// BenchmarkAblationWriteBuffer sweeps the write-buffer fraction b over
// the RF1 update function.
func BenchmarkAblationWriteBuffer(b *testing.B) {
	e := benchEnv(b)
	data := e.DS.DB.Store.TotalPages()
	for _, frac := range []float64{0.0, 0.10, 0.30} {
		frac := frac
		name := map[float64]string{0.0: "b=0%", 0.10: "b=10%", 0.30: "b=30%"}[frac]
		b.Run(name, func(b *testing.B) {
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				space := dss.DefaultPolicySpace()
				space.WriteBufferFrac = frac
				inst, err := e.DS.DB.NewInstance(engine.InstanceConfig{
					Storage: hybrid.Config{
						Mode:        hybrid.HStorage,
						CacheBlocks: int(float64(data) * 0.3),
						Policy:      space,
					},
					BufferPoolPages: int(float64(data) * 0.04),
					WorkMem:         e.Cfg.WorkMem,
				})
				if err != nil {
					b.Fatal(err)
				}
				sess := inst.NewSession()
				if _, err := e.DS.RF1(sess); err != nil {
					b.Fatal(err)
				}
				if _, err := e.DS.RF2(sess); err != nil {
					b.Fatal(err)
				}
				inst.Mgr.Wait(&sess.Clk)
				elapsed = sess.Clk.Now()
			}
			b.ReportMetric(ms(elapsed), "sim-ms/rf-pair")
		})
	}
}

// BenchmarkAblationRule5 compares the concurrent throughput test with the
// Rule 5 registry on and off (non-deterministic priorities).
func BenchmarkAblationRule5(b *testing.B) {
	e := benchEnv(b)
	data := e.DS.DB.Store.TotalPages()
	runStreams := func(disable bool) time.Duration {
		inst, err := e.DS.DB.NewInstance(engine.InstanceConfig{
			Storage: hybrid.Config{
				Mode:        hybrid.HStorage,
				CacheBlocks: int(float64(data) * 0.25),
			},
			BufferPoolPages: int(float64(data) * 0.04),
			WorkMem:         e.Cfg.WorkMem,
			DisableRule5:    disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		ends := make([]time.Duration, 2)
		for s := 0; s < 2; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sess := inst.NewSession()
				for _, q := range []int{9, 21, 3} {
					op, err := e.DS.Query(q, int64(s))
					if err != nil {
						b.Error(err)
						return
					}
					if _, _, err := sess.ExecuteDiscard(op); err != nil {
						b.Error(err)
						return
					}
				}
				ends[s] = sess.Clk.Now()
			}(s)
		}
		wg.Wait()
		if ends[1] > ends[0] {
			return ends[1]
		}
		return ends[0]
	}
	var on, off time.Duration
	for i := 0; i < b.N; i++ {
		on = runStreams(false)
		off = runStreams(true)
	}
	b.ReportMetric(ms(on), "sim-ms/rule5-on")
	b.ReportMetric(ms(off), "sim-ms/rule5-off")
}

// BenchmarkAblationAsyncReadAlloc compares synchronous vs asynchronous
// read allocation (the footnote in Section 5.1).
func BenchmarkAblationAsyncReadAlloc(b *testing.B) {
	e := benchEnv(b)
	data := e.DS.DB.Store.TotalPages()
	run := func(async bool) time.Duration {
		inst, err := e.DS.DB.NewInstance(engine.InstanceConfig{
			Storage: hybrid.Config{
				Mode:           hybrid.HStorage,
				CacheBlocks:    int(float64(data) * 0.7),
				AsyncReadAlloc: async,
			},
			BufferPoolPages: int(float64(data) * 0.04),
			WorkMem:         e.Cfg.WorkMem,
		})
		if err != nil {
			b.Fatal(err)
		}
		sess := inst.NewSession()
		op, err := e.DS.Query(9, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sess.ExecuteDiscard(op); err != nil {
			b.Fatal(err)
		}
		inst.Mgr.Wait(&sess.Clk)
		return sess.Clk.Now()
	}
	var syncT, asyncT time.Duration
	for i := 0; i < b.N; i++ {
		syncT = run(false)
		asyncT = run(true)
	}
	b.ReportMetric(ms(syncT), "sim-ms/sync")
	b.ReportMetric(ms(asyncT), "sim-ms/async")
}

// ---- microbenchmarks of the substrates ----

// BenchmarkPriorityCacheSubmit measures the priority cache's raw request
// processing rate.
func BenchmarkPriorityCacheSubmit(b *testing.B) {
	sys, err := hybrid.New(hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 4096})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Submit(0, dss.Request{
			Op:     device.Read,
			LBA:    int64(i % 8192),
			Blocks: 1,
			Class:  dss.Class(2 + i%5),
		})
	}
}

// BenchmarkBTreeLookup measures point lookups through the buffer pool.
func BenchmarkBTreeLookup(b *testing.B) {
	e := benchEnv(b)
	ds := e.DS
	inst, err := ds.DB.NewInstance(engine.DefaultInstanceConfig())
	if err != nil {
		b.Fatal(err)
	}
	sess := inst.NewSession()
	probe := &exec.IndexProbe{
		Index: ds.DB.Cat.MustIndex("idx_orders_orderkey"),
		Table: exec.NewTableHandle(ds.DB.Cat.MustTable("orders")),
	}
	ctx := sess.Ctx()
	if err := probe.Open(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := probe.Bind(ctx, int64(i%int(ds.Orders))+1); err != nil {
			b.Fatal(err)
		}
		if _, _, err := probe.Next(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeqScanThroughput measures the executor's sequential scan rate
// over lineitem.
func BenchmarkSeqScanThroughput(b *testing.B) {
	e := benchEnv(b)
	inst, err := e.DS.DB.NewInstance(engine.DefaultInstanceConfig())
	if err != nil {
		b.Fatal(err)
	}
	handle := exec.NewTableHandle(e.DS.DB.Cat.MustTable("lineitem"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := inst.NewSession()
		n, _, err := sess.ExecuteDiscard(&exec.SeqScan{Table: handle})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(n * 100) // ~100 encoded bytes per lineitem row
	}
}

// BenchmarkTPCHLoad measures dataset generation + load + index build.
func BenchmarkTPCHLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tpch.Load(0.002); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- extensions ----

// BenchmarkExtensionARC compares the ARC baseline (a stronger
// monitoring-based policy than the paper's LRU) against LRU and
// hStorage-DB on the random-heavy Q21.
func BenchmarkExtensionARC(b *testing.B) {
	e := benchEnv(b)
	data := e.DS.DB.Store.TotalPages()
	run := func(mode hybrid.Mode) time.Duration {
		inst, err := e.DS.DB.NewInstance(engine.InstanceConfig{
			Storage: hybrid.Config{
				Mode:        mode,
				CacheBlocks: int(float64(data) * 0.5),
			},
			BufferPoolPages: int(float64(data) * 0.04),
			WorkMem:         e.Cfg.WorkMem,
		})
		if err != nil {
			b.Fatal(err)
		}
		sess := inst.NewSession()
		op, err := e.DS.Query(21, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sess.ExecuteDiscard(op); err != nil {
			b.Fatal(err)
		}
		inst.Mgr.Wait(&sess.Clk)
		return sess.Clk.Now()
	}
	var lru, arc, hs time.Duration
	for i := 0; i < b.N; i++ {
		lru = run(hybrid.LRU)
		arc = run(hybrid.ARC)
		hs = run(hybrid.HStorage)
	}
	b.ReportMetric(ms(lru), "sim-ms/Q21-lru")
	b.ReportMetric(ms(arc), "sim-ms/Q21-arc")
	b.ReportMetric(ms(hs), "sim-ms/Q21-hstorage")
}

// BenchmarkExtensionOLTP runs the paper's future-work OLTP mix under the
// four configurations, reporting simulated transactions per second.
func BenchmarkExtensionOLTP(b *testing.B) {
	const txns = 300
	for _, mode := range []hybrid.Mode{hybrid.HDDOnly, hybrid.LRU, hybrid.HStorage, hybrid.SSDOnly} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var tps float64
			for i := 0; i < b.N; i++ {
				ds, err := tpch.Load(benchSF)
				if err != nil {
					b.Fatal(err)
				}
				data := ds.DB.Store.TotalPages()
				inst, err := ds.DB.NewInstance(engine.InstanceConfig{
					Storage: hybrid.Config{
						Mode:        mode,
						CacheBlocks: int(float64(data) * 0.25),
					},
					BufferPoolPages: int(float64(data) * 0.04),
					WorkMem:         3000,
				})
				if err != nil {
					b.Fatal(err)
				}
				sess := inst.NewSession()
				driver := ds.NewOLTP(1)
				if err := driver.Run(sess, txns); err != nil {
					b.Fatal(err)
				}
				inst.Mgr.Wait(&sess.Clk)
				tps = float64(txns) / sess.Clk.Now().Seconds()
			}
			b.ReportMetric(tps, "sim-txn/s")
		})
	}
}
