package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadAcceptsKnownSchema(t *testing.T) {
	p := writeTemp(t, "ok.json", `{"schema":"hbench/v1","experiments":{"oltp":{"txns":150}}}`)
	doc, err := load(p)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "hbench/v1" || doc.Experiments["oltp"] == nil {
		t.Fatalf("bad doc: %+v", doc)
	}
}

func TestLoadRejectsUnknownSchema(t *testing.T) {
	cases := map[string]string{
		"future":  `{"schema":"hbench/v2","experiments":{}}`,
		"missing": `{"experiments":{}}`,
		"empty":   `{"schema":"","experiments":{}}`,
	}
	for name, content := range cases {
		p := writeTemp(t, name+".json", content)
		if _, err := load(p); err == nil || !strings.Contains(err.Error(), "unknown schema") {
			t.Errorf("%s: want unknown-schema error, got %v", name, err)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := load(writeTemp(t, "bad.json", `{"schema":`)); err == nil {
		t.Error("want parse error for truncated JSON")
	}
	if _, err := load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestFlattenLeaves(t *testing.T) {
	out := map[string]float64{}
	flatten("", map[string]any{
		"runs": []any{
			map[string]any{"txns": 10.0, "ok": true},
			map[string]any{"txns": 20.0, "ok": false},
		},
		"label": "ignored",
	}, out)
	want := map[string]float64{
		"runs.0.txns": 10, "runs.0.ok": 1,
		"runs.1.txns": 20, "runs.1.ok": 0,
	}
	if len(out) != len(want) {
		t.Fatalf("flatten = %v, want %v", out, want)
	}
	for k, v := range want {
		if out[k] != v {
			t.Errorf("flatten[%s] = %v, want %v", k, out[k], v)
		}
	}
}

func TestDrift(t *testing.T) {
	if d := drift(100, 110); d < 0.09 || d > 0.1 {
		t.Errorf("drift(100,110) = %v", d)
	}
	if d := drift(0, 0); d != 0 {
		t.Errorf("drift(0,0) = %v", d)
	}
}
