package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadAcceptsKnownSchema(t *testing.T) {
	p := writeTemp(t, "ok.json", `{"schema":"hbench/v1","experiments":{"oltp":{"txns":150}}}`)
	doc, err := load(p)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "hbench/v1" || doc.Experiments["oltp"] == nil {
		t.Fatalf("bad doc: %+v", doc)
	}
}

func TestLoadRejectsUnknownSchema(t *testing.T) {
	cases := map[string]string{
		"future":  `{"schema":"hbench/v2","experiments":{}}`,
		"missing": `{"experiments":{}}`,
		"empty":   `{"schema":"","experiments":{}}`,
	}
	for name, content := range cases {
		p := writeTemp(t, name+".json", content)
		if _, err := load(p); err == nil || !strings.Contains(err.Error(), "unknown schema") {
			t.Errorf("%s: want unknown-schema error, got %v", name, err)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := load(writeTemp(t, "bad.json", `{"schema":`)); err == nil {
		t.Error("want parse error for truncated JSON")
	}
	if _, err := load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestFlattenLeaves(t *testing.T) {
	out := map[string]float64{}
	flatten("", map[string]any{
		"runs": []any{
			map[string]any{"txns": 10.0, "ok": true},
			map[string]any{"txns": 20.0, "ok": false},
		},
		"label": "ignored",
	}, out)
	want := map[string]float64{
		"runs.0.txns": 10, "runs.0.ok": 1,
		"runs.1.txns": 20, "runs.1.ok": 0,
	}
	if len(out) != len(want) {
		t.Fatalf("flatten = %v, want %v", out, want)
	}
	for k, v := range want {
		if out[k] != v {
			t.Errorf("flatten[%s] = %v, want %v", k, out[k], v)
		}
	}
}

func TestDrift(t *testing.T) {
	if d := drift(100, 110); d < 0.09 || d > 0.1 {
		t.Errorf("drift(100,110) = %v", d)
	}
	if d := drift(0, 0); d != 0 {
		t.Errorf("drift(0,0) = %v", d)
	}
}

// doc builds a benchFile around one experiments tree.
func doc(exps map[string]any) benchFile {
	return benchFile{Schema: "hbench/v1", Experiments: exps}
}

// TestDiffPerfLeavesReportedNotCounted: hotpath's wall-clock fields show
// up as PERF delta lines at any magnitude of change, and never count
// toward the drift summary; deterministic leaves past the threshold
// still WARN.
func TestDiffPerfLeavesReportedNotCounted(t *testing.T) {
	oldDoc := doc(map[string]any{
		"hotpath": map[string]any{
			"depth": []any{map[string]any{
				"depth":          float64(4096),
				"ns_per_op":      float64(5000),
				"grants_per_sec": float64(200000),
				"allocs_per_op":  float64(0.5),
			}},
			"anticipatory": []any{map[string]any{
				"stream_switches": float64(48),
			}},
		},
	})
	newDoc := doc(map[string]any{
		"hotpath": map[string]any{
			"depth": []any{map[string]any{
				"depth":          float64(4096),
				"ns_per_op":      float64(20000), // 4x slower: perf, not drift
				"grants_per_sec": float64(50000),
				"allocs_per_op":  float64(0.5),
			}},
			"anticipatory": []any{map[string]any{
				"stream_switches": float64(120), // deterministic: drift
			}},
		},
	})
	var sb strings.Builder
	drifted := diff(&sb, oldDoc, newDoc, 0.2, 1e-9)
	out := sb.String()

	if drifted != 1 {
		t.Errorf("drifted = %d, want 1 (stream_switches only):\n%s", drifted, out)
	}
	for _, want := range []string{
		"PERF hotpath.depth.0.ns_per_op",
		"PERF hotpath.depth.0.grants_per_sec",
		"PERF hotpath.depth.0.allocs_per_op",
		"WARN hotpath.anticipatory.0.stream_switches",
		"(3 perf-only)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARN hotpath.depth") {
		t.Errorf("perf leaf counted as drift:\n%s", out)
	}
}

// TestDiffStableLeavesQuiet: unchanged deterministic leaves produce no
// WARN lines, and an unchanged perf leaf still prints its (zero) delta.
func TestDiffStableLeavesQuiet(t *testing.T) {
	d := doc(map[string]any{
		"tenants": map[string]any{"txns": float64(60)},
		"hotpath": map[string]any{"workers": []any{map[string]any{
			"workers":   float64(4),
			"ns_per_op": float64(1000),
		}}},
	})
	var sb strings.Builder
	if drifted := diff(&sb, d, d, 0.2, 1e-9); drifted != 0 {
		t.Errorf("identical docs drifted %d leaves:\n%s", drifted, sb.String())
	}
	if strings.Contains(sb.String(), "WARN") {
		t.Errorf("identical docs produced WARN:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "PERF hotpath.workers.0.ns_per_op") {
		t.Errorf("perf leaf not reported on identical docs:\n%s", sb.String())
	}
}

// TestPerfLeaf pins the suffix matching: only the final path segment
// decides, so a deterministic field that merely contains a perf name
// elsewhere in its path is still drift-checked.
func TestPerfLeaf(t *testing.T) {
	for path, want := range map[string]bool{
		"hotpath.depth.0.ns_per_op":       true,
		"hotpath.workers.3.allocs_per_op": true,
		"grants_per_sec":                  true,
		"hotpath.depth.0.grants":          false,
		"tenants.0.txns_per_sec":          false,
	} {
		if got := perfLeaf(path); got != want {
			t.Errorf("perfLeaf(%q) = %v, want %v", path, got, want)
		}
	}
}
