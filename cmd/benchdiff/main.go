// Command benchdiff compares two hbench -json documents (schema
// "hbench/v1") and reports relative drift between their numeric results.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -warn 0.2 BENCH_tenants.json fresh.json
//
// Every numeric leaf under "experiments" is matched by its JSON path;
// leaves whose relative change exceeds the -warn threshold are listed.
// benchdiff always exits 0 when both files parse — drift is a warning,
// not a failure — so CI can surface regressions without going red over
// simulator noise. It exits 1 only on unreadable input, a schema it
// doesn't know, or two files whose schema versions differ (comparing
// incompatible layouts leaf-by-leaf would be silently meaningless).
//
// Leaves named ns_per_op, grants_per_sec or allocs_per_op (the hotpath
// experiment's wall-clock fields) are host-dependent by construction:
// they are printed as PERF delta lines for every run and excluded from
// the drift accounting, so a faster or slower CI machine never trips
// the WARN threshold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

type benchFile struct {
	Schema      string         `json:"schema"`
	Experiments map[string]any `json:"experiments"`
}

func main() {
	log.SetFlags(0)
	warn := flag.Float64("warn", 0.2, "relative drift threshold above which a leaf is reported")
	abs := flag.Float64("min", 1e-9, "ignore leaves whose absolute values are both below this (noise floor)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-warn 0.2] old.json new.json")
		os.Exit(1)
	}
	oldDoc, err := load(flag.Arg(0))
	if err == nil {
		var newDoc benchFile
		newDoc, err = load(flag.Arg(1))
		if err == nil && newDoc.Schema != oldDoc.Schema {
			err = fmt.Errorf("schema mismatch: %s is %q, %s is %q — regenerate both with the same hbench",
				flag.Arg(0), oldDoc.Schema, flag.Arg(1), newDoc.Schema)
		}
		if err == nil {
			diff(os.Stdout, oldDoc, newDoc, *warn, *abs)
			return
		}
	}
	log.Fatalf("benchdiff: %v", err)
}

// diff flattens both documents and writes the comparison: PERF lines
// for host-dependent perf leaves (always, never counted as drift), WARN
// lines for deterministic leaves past the threshold, and a summary. It
// returns the drifted-leaf count for tests.
func diff(w io.Writer, oldDoc, newDoc benchFile, warn, abs float64) int {
	oldLeaves := map[string]float64{}
	flatten("", oldDoc.Experiments, oldLeaves)
	newLeaves := map[string]float64{}
	flatten("", newDoc.Experiments, newLeaves)

	var paths []string
	for p := range oldLeaves {
		if _, ok := newLeaves[p]; ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	drifted, perf := 0, 0
	for _, p := range paths {
		a, b := oldLeaves[p], newLeaves[p]
		if math.Abs(a) < abs && math.Abs(b) < abs {
			continue
		}
		if perfLeaf(p) {
			perf++
			fmt.Fprintf(w, "PERF %-70s %14g -> %-14g (%+.1f%%)\n", p, a, b, 100*(b-a)/math.Max(math.Abs(a), abs))
			continue
		}
		if drift(a, b) > warn {
			drifted++
			fmt.Fprintf(w, "WARN %-70s %14g -> %-14g (%+.1f%%)\n", p, a, b, 100*(b-a)/math.Max(math.Abs(a), abs))
		}
	}
	onlyOld, onlyNew := 0, 0
	for p := range oldLeaves {
		if _, ok := newLeaves[p]; !ok {
			onlyOld++
		}
	}
	for p := range newLeaves {
		if _, ok := oldLeaves[p]; !ok {
			onlyNew++
		}
	}
	fmt.Fprintf(w, "benchdiff: %d comparable leaves (%d perf-only), %d over %.0f%% drift", len(paths), perf, drifted, 100*warn)
	if onlyOld > 0 || onlyNew > 0 {
		fmt.Fprintf(w, " (%d only in old, %d only in new)", onlyOld, onlyNew)
	}
	fmt.Fprintln(w)
	return drifted
}

// perfFields are the leaf names carrying wall-clock measurements of the
// simulator itself (see the hotpath experiment). They vary with the
// host, so they are reported but never counted as drift.
var perfFields = map[string]bool{
	"ns_per_op":      true,
	"grants_per_sec": true,
	"allocs_per_op":  true,
}

// perfLeaf reports whether a flattened path ends in a perf field.
func perfLeaf(p string) bool {
	if i := strings.LastIndexByte(p, '.'); i >= 0 {
		p = p[i+1:]
	}
	return perfFields[p]
}

// knownSchemas are the -json document versions this benchdiff can diff.
var knownSchemas = map[string]bool{"hbench/v1": true}

// load reads and validates one hbench -json document. An unknown or
// missing schema is an error — diffing documents whose layout this
// binary does not understand would silently compare unrelated leaves.
func load(path string) (benchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return benchFile{}, err
	}
	var doc benchFile
	if err := json.Unmarshal(buf, &doc); err != nil {
		return benchFile{}, fmt.Errorf("%s: %v", path, err)
	}
	if !knownSchemas[doc.Schema] {
		return benchFile{}, fmt.Errorf("%s: unknown schema %q (want hbench/v1; regenerate with a current hbench)", path, doc.Schema)
	}
	return doc, nil
}

// flatten walks a decoded JSON tree collecting numeric leaves keyed by
// their dotted path. Array elements use their index as the key, so runs
// with the same experiment list line up element by element.
func flatten(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flatten(join(prefix, k), t[k], out)
		}
	case []any:
		for i, e := range t {
			flatten(join(prefix, strconv.Itoa(i)), e, out)
		}
	case float64:
		out[prefix] = t
	case bool:
		// Booleans drift too (a recovery check flipping false matters):
		// compare them as 0/1.
		if t {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	}
}

func join(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "." + key
}

// drift returns the relative change between a and b, symmetric in sign.
func drift(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(b-a) / den
}
