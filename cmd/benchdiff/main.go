// Command benchdiff compares two hbench -json documents (schema
// "hbench/v1") and reports relative drift between their numeric results.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -warn 0.2 BENCH_tenants.json fresh.json
//
// Every numeric leaf under "experiments" is matched by its JSON path;
// leaves whose relative change exceeds the -warn threshold are listed.
// benchdiff always exits 0 when both files parse — drift is a warning,
// not a failure — so CI can surface regressions without going red over
// simulator noise. It exits 1 only on unreadable input or a schema it
// doesn't know.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
)

type benchFile struct {
	Schema      string         `json:"schema"`
	Experiments map[string]any `json:"experiments"`
}

func main() {
	log.SetFlags(0)
	warn := flag.Float64("warn", 0.2, "relative drift threshold above which a leaf is reported")
	abs := flag.Float64("min", 1e-9, "ignore leaves whose absolute values are both below this (noise floor)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-warn 0.2] old.json new.json")
		os.Exit(1)
	}
	oldDoc := load(flag.Arg(0))
	newDoc := load(flag.Arg(1))

	oldLeaves := map[string]float64{}
	flatten("", oldDoc.Experiments, oldLeaves)
	newLeaves := map[string]float64{}
	flatten("", newDoc.Experiments, newLeaves)

	var paths []string
	for p := range oldLeaves {
		if _, ok := newLeaves[p]; ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	drifted := 0
	for _, p := range paths {
		a, b := oldLeaves[p], newLeaves[p]
		if math.Abs(a) < *abs && math.Abs(b) < *abs {
			continue
		}
		d := drift(a, b)
		if d > *warn {
			drifted++
			fmt.Printf("WARN %-70s %14g -> %-14g (%+.1f%%)\n", p, a, b, 100*(b-a)/math.Max(math.Abs(a), *abs))
		}
	}
	onlyOld, onlyNew := 0, 0
	for p := range oldLeaves {
		if _, ok := newLeaves[p]; !ok {
			onlyOld++
		}
	}
	for p := range newLeaves {
		if _, ok := oldLeaves[p]; !ok {
			onlyNew++
		}
	}
	fmt.Printf("benchdiff: %d comparable leaves, %d over %.0f%% drift", len(paths), drifted, 100**warn)
	if onlyOld > 0 || onlyNew > 0 {
		fmt.Printf(" (%d only in old, %d only in new)", onlyOld, onlyNew)
	}
	fmt.Println()
}

func load(path string) benchFile {
	buf, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("benchdiff: %v", err)
	}
	var doc benchFile
	if err := json.Unmarshal(buf, &doc); err != nil {
		log.Fatalf("benchdiff: %s: %v", path, err)
	}
	if doc.Schema != "hbench/v1" {
		log.Fatalf("benchdiff: %s: unknown schema %q (want hbench/v1; regenerate with a current hbench)", path, doc.Schema)
	}
	return doc
}

// flatten walks a decoded JSON tree collecting numeric leaves keyed by
// their dotted path. Array elements use their index as the key, so runs
// with the same experiment list line up element by element.
func flatten(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flatten(join(prefix, k), t[k], out)
		}
	case []any:
		for i, e := range t {
			flatten(join(prefix, strconv.Itoa(i)), e, out)
		}
	case float64:
		out[prefix] = t
	case bool:
		// Booleans drift too (a recovery check flipping false matters):
		// compare them as 0/1.
		if t {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	}
}

func join(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "." + key
}

// drift returns the relative change between a and b, symmetric in sign.
func drift(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(b-a) / den
}
