package main

import (
	"math"
	"reflect"
	"testing"
)

func TestParseShards(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{in: "1,2,4", want: []int{1, 2, 4}},
		{in: " 2 , 8 ", want: []int{2, 8}},
		{in: "0,-3,4", want: []int{1, 1, 4}}, // below one clamps, like -txns
		{in: "4", want: []int{4}},
		{in: "two", err: true},
		{in: "1,2,x", err: true},
		{in: "", err: true},
		{in: " , ", err: true},
	}
	for _, c := range cases {
		got, err := parseShards(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseShards(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseShards(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseShards(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClampXShard(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{0.2, 0.2},
		{1, 1},
		{-0.5, 0},
		{1.5, 1},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := clampXShard(c.in); got != c.want {
			t.Errorf("clampXShard(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseWorkersRejectsBadCounts(t *testing.T) {
	for _, bad := range []string{"", "0", "-1", "1,zero"} {
		if got, err := parseWorkers(bad); err == nil {
			t.Errorf("parseWorkers(%q): want error, got %v", bad, got)
		}
	}
	got, err := parseWorkers("1, 4 ,8")
	if err != nil || !reflect.DeepEqual(got, []int{1, 4, 8}) {
		t.Errorf("parseWorkers(\"1, 4 ,8\") = %v, %v", got, err)
	}
}
