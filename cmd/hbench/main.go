// Command hbench regenerates the tables and figures of the hStorage-DB
// paper's evaluation (Section 6) against the simulated hybrid storage
// system.
//
// Usage:
//
//	hbench -exp all
//	hbench -exp fig5,fig6,table5 -sf 0.02 -cache 0.7
//	hbench -exp txnscale -workers 1,2,4,8 -json metrics.json
//	hbench -exp iosched -trace trace.json -metrics
//
// Experiments: fig4, fig5, table4, fig6, table5, table6, fig9, table7,
// fig11 (includes table8), table9, fig12, oltp, iosched, txnscale,
// tenants, htap, shards, lsm, hotpath, all.
//
// With -json, every experiment's structured results are also written to
// the given file as one versioned JSON document (schema "hbench/v1")
// keyed by experiment id, so successive runs can be compared
// mechanically (see cmd/benchdiff).
//
// With -trace, every layer of the run — I/O scheduler queueing, device
// service, buffer pool miss fills, lock waits, WAL flushes and
// checkpoints, group commits — records spans on the simulated clock into
// a bounded ring buffer, written at exit as Chrome trace-event JSON
// (load it in Perfetto or chrome://tracing). -tracecap bounds the ring;
// -tracesample 1/N-samples the per-request spans. Traces of a
// fixed-seed run are deterministic when every request is sampled
// (-tracesample 1, the default).
//
// With -metrics, the full metrics registry — dotted-name counters,
// gauges, and latency histograms from all layers — is dumped to stdout
// after the experiments finish, and embedded in the -json document when
// both are given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/experiments"
	"hstoragedb/internal/obs"
)

// benchSchema versions the -json document layout. Bump it when the
// top-level shape changes; cmd/benchdiff refuses files it doesn't know.
const benchSchema = "hbench/v1"

// benchFile is the versioned -json document.
type benchFile struct {
	Schema      string             `json:"schema"`
	Config      experiments.Config `json:"config"`
	Experiments map[string]any     `json:"experiments"`
	Metrics     map[string]any     `json:"metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all", "comma-separated experiment ids (fig4 fig5 table4 fig6 table5 table6 fig9 table7 fig11 table9 fig12 oltp iosched txnscale tenants htap shards lsm hotpath all)")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	cache := flag.Float64("cache", 0.7, "SSD cache size as a fraction of total data pages")
	bp := flag.Float64("bp", 0.04, "buffer pool size as a fraction of total data pages")
	workMem := flag.Int("workmem", 3000, "blocking-operator memory budget in tuples")
	seed := flag.Int64("seed", 0, "query parameter seed")
	streams := flag.Int("streams", 3, "query streams in the throughput and iosched tests")
	txns := flag.Int("txns", 150, "transactions per configuration in the OLTP/iosched experiments; total transactions per sweep point in txnscale (split across workers)")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts for the txnscale experiment")
	tenantsFlag := flag.String("tenants", "4,2,1,1", "comma-separated tenant weights for the tenants experiment (tenant IDs 1..n)")
	scanBlocks := flag.Int("scanblocks", 3000, "per-tenant scan-stream demand in blocks for the tenants experiment")
	scanRounds := flag.Int("scanrounds", 6, "revenue sweeps by the analytics stream in the htap experiment")
	shardsFlag := flag.String("shards", "1,2,4", "comma-separated shard counts for the shards experiment (counts below 1 are clamped to 1)")
	xshard := flag.Float64("xshard", 0.2, "fraction of cross-shard transfers in the shards experiment's cross-shard arm (clamped into [0,1])")
	jsonPath := flag.String("json", "", "write per-experiment metrics to this file as versioned JSON (schema hbench/v1)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of every layer's spans (open in Perfetto)")
	traceCap := flag.Int("tracecap", 0, "trace ring-buffer capacity in spans (0 = default 65536; oldest spans drop first)")
	traceSample := flag.Int("tracesample", 1, "record per-request spans for 1 in N requests (1 = all; >1 trades fidelity for memory)")
	metricsDump := flag.Bool("metrics", false, "dump the metrics registry (counters, gauges, histograms) to stdout after the run")
	flag.Parse()

	traceSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "trace" {
			traceSet = true
		}
	})
	if traceSet && *tracePath == "" {
		log.Fatal("-trace needs an output path, e.g. -trace trace.json")
	}
	if *tracePath == "" && (*traceCap != 0 || *traceSample != 1) {
		log.Fatal("-tracecap/-tracesample only make sense with -trace")
	}
	if *traceSample < 1 {
		log.Fatal("-tracesample must be >= 1")
	}

	// The observability set is shared by every instance the experiments
	// build: the registry accumulates across experiments, the tracer
	// keeps the most recent spans up to its capacity.
	var set *obs.Set
	if *tracePath != "" || *metricsDump {
		set = &obs.Set{Reg: obs.NewRegistry()}
		if *tracePath != "" {
			set.Tracer = obs.NewTracer(obs.TraceConfig{Capacity: *traceCap, SampleEvery: *traceSample})
		}
	}

	cfg := experiments.Config{
		SF:              *sf,
		CacheRatio:      *cache,
		BufferPoolRatio: *bp,
		WorkMem:         *workMem,
		Seed:            *seed,
		Obs:             set,
	}

	workers, err := parseWorkers(*workersFlag)
	if err != nil {
		log.Fatalf("-workers: %v", err)
	}
	tenantSpecs, err := parseTenants(*tenantsFlag)
	if err != nil {
		log.Fatalf("-tenants: %v", err)
	}
	shardCounts, err := parseShards(*shardsFlag)
	if err != nil {
		log.Fatalf("-shards: %v", err)
	}
	*xshard = clampXShard(*xshard)

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	has := func(id string) bool { return all || want[id] }

	fmt.Printf("hbench: SF=%g cache=%.0f%% of data, bp=%.0f%%, workmem=%d tuples\n",
		cfg.SF, 100*cfg.CacheRatio, 100*cfg.BufferPoolRatio, cfg.WorkMem)
	fmt.Println("loading dataset...")
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	fmt.Printf("loaded: %d data pages (%.1f MB)\n\n", env.Data, float64(env.Data)*8/1024)

	// metrics accumulates each experiment's structured results for -json.
	metrics := map[string]any{}

	ran := false
	run := func(id string, f func() (any, error)) {
		if !has(id) {
			return
		}
		ran = true
		result, err := f()
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		metrics[id] = result
		fmt.Println()
	}

	run("fig4", func() (any, error) {
		shares, err := env.Fig4()
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatFig4(shares))
		return shares, nil
	})
	run("fig5", func() (any, error) {
		rows, err := env.Fig5()
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatModeTimes("Figure 5: sequential-dominated queries (Q1, Q5, Q11, Q19)", rows))
		return rows, nil
	})
	run("table4", func() (any, error) {
		rows, err := env.Table4()
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatTable4(rows))
		return rows, nil
	})
	run("fig6", func() (any, error) {
		rows, err := env.Fig6()
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatModeTimes("Figure 6: random-dominated queries (Q9, Q21)", rows))
		return rows, nil
	})
	run("table5", func() (any, error) {
		rows, err := env.Table5()
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatPrioTable("Table 5: Q9 random-request cache statistics (hStorage-DB)",
			map[string][]experiments.PrioRow{"hStorage-DB": rows}, []string{"hStorage-DB"}))
		return rows, nil
	})
	run("table6", func() (any, error) {
		hs, lru, err := env.Table6()
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatPrioTable("Table 6: Q21 cache statistics",
			map[string][]experiments.PrioRow{"hStorage-DB": hs, "LRU": lru},
			[]string{"hStorage-DB", "LRU"}))
		return map[string]any{"hstorage": hs, "lru": lru}, nil
	})
	run("fig9", func() (any, error) {
		rows, err := env.Fig9()
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatModeTimes("Figure 9: temp-data query (Q18)", rows))
		return rows, nil
	})
	run("table7", func() (any, error) {
		hs, lru, err := env.Table7()
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatPrioTable("Table 7: Q18 cache statistics (temp reads vs sequential)",
			map[string][]experiments.PrioRow{"hStorage-DB": hs, "LRU": lru},
			[]string{"hStorage-DB", "LRU"}))
		return map[string]any{"hstorage": hs, "lru": lru}, nil
	})
	run("fig11", func() (any, error) {
		res, err := env.Fig11()
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatFig11(res))
		return res, nil
	})
	run("oltp", func() (any, error) {
		runs, err := env.OLTPAll(*txns)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatOLTP(runs))
		return runs, nil
	})
	run("iosched", func() (any, error) {
		runs, err := env.IOSchedAll(*streams, *txns)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatIOSched(runs))
		return runs, nil
	})
	run("txnscale", func() (any, error) {
		runs, err := env.TxnScaleAll(workers, *txns)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatTxnScale(runs))
		return runs, nil
	})
	run("tenants", func() (any, error) {
		// -txns is the total across tenants, at least one each: a tiny
		// -txns must bound the run, not fall through to the default.
		perTenant := *txns / len(tenantSpecs)
		if perTenant < 1 {
			perTenant = 1
		}
		runs, err := env.TenantsAll(tenantSpecs, *scanBlocks, perTenant)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatTenants(runs))
		return runs, nil
	})
	run("htap", func() (any, error) {
		// Eight OLTP workers split -txns between them while the
		// analytics session runs -scanrounds revenue sweeps. The
		// interference contrast needs sustained writer pressure, so at
		// least 30 transactions per worker run regardless of the
		// (shared) -txns default.
		perWorker := *txns / 8
		if perWorker < 30 {
			perWorker = 30
		}
		runs, err := env.HTAPAll(8, perWorker, *scanRounds)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatHTAP(runs))
		return runs, nil
	})
	run("shards", func() (any, error) {
		// The largest -workers entry drives every sweep point; -txns is
		// the cluster-wide total per point, as in txnscale. The sweep is
		// self-contained (it builds its own accounts clusters, not the
		// TPC-H env) but shares the observability set, so per-shard
		// labelled series land in -metrics/-trace output.
		runs, err := experiments.ShardsAll(shardCounts, workers[len(workers)-1], *txns, *xshard, *seed, set)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatShards(runs))
		return runs, nil
	})
	run("lsm", func() (any, error) {
		// Storage-backend comparison: heap vs LSM under the write-heavy
		// update mix, with the compaction-classification ablation as the
		// third arm. Self-contained (it builds its own single-shard
		// accounts clusters, not the TPC-H env) but shares the
		// observability set. The largest -workers entry drives the run;
		// -txns is the per-arm total.
		runs, err := experiments.LSMAll(workers[len(workers)-1], *txns, *seed, set)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatLSM(runs))
		return runs, nil
	})
	run("hotpath", func() (any, error) {
		// Scheduler hot-path microbenchmark: wall-clock ns/op and
		// allocs/op for the pick/grant engine (indexed vs the reference
		// linear picker), opportunistic-submit scaling, and the
		// deterministic anticipatory HDD arm. Self-contained — it builds
		// its own schedulers and ignores the TPC-H env.
		res := experiments.HotpathAll()
		fmt.Print(experiments.FormatHotpath(res))
		return res, nil
	})
	if has("table9") || has("fig12") {
		ran = true
		tEnv, err := experiments.NewEnv(cfg.ThroughputConfig())
		if err != nil {
			log.Fatalf("throughput env: %v", err)
		}
		t9, err := tEnv.Table9(*streams)
		if err != nil {
			log.Fatalf("table9: %v", err)
		}
		if has("table9") {
			metrics["table9"] = t9
			fmt.Println(experiments.FormatTable9(t9))
		}
		if has("fig12") {
			f12, err := tEnv.Fig12(t9)
			if err != nil {
				log.Fatalf("fig12: %v", err)
			}
			metrics["fig12"] = f12
			fmt.Println(experiments.FormatFig12(f12))
		}
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *exp)
		os.Exit(2)
	}

	if *metricsDump {
		fmt.Println("metrics registry:")
		fmt.Print(set.Reg.Format())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatalf("-trace: %v", err)
		}
		if err := set.Tracer.WriteChromeTrace(f); err != nil {
			log.Fatalf("-trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("-trace: %v", err)
		}
		if n := set.Tracer.Dropped(); n > 0 {
			fmt.Printf("trace written to %s (%d spans; ring overflowed, oldest %d dropped — raise -tracecap)\n",
				*tracePath, set.Tracer.Len(), n)
		} else {
			fmt.Printf("trace written to %s (%d spans)\n", *tracePath, set.Tracer.Len())
		}
	}
	if *jsonPath != "" {
		doc := benchFile{Schema: benchSchema, Config: cfg, Experiments: metrics}
		if *metricsDump {
			doc.Metrics = set.Reg.JSONSnapshot()
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatalf("-json: marshal: %v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			log.Fatalf("-json: %v", err)
		}
		fmt.Printf("metrics written to %s\n", *jsonPath)
	}
}

// parseTenants parses the -tenants flag: a comma-separated list of
// positive tenant weights, assigned to tenant IDs 1..n in order.
func parseTenants(s string) ([]experiments.TenantSpec, error) {
	var out []experiments.TenantSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.ParseFloat(part, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad tenant weight %q", part)
		}
		out = append(out, experiments.TenantSpec{ID: dss.TenantID(len(out) + 1), Weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenant weights")
	}
	return out, nil
}

// parseShards parses the -shards flag: a comma-separated list of shard
// counts. Malformed entries are errors; counts below one are clamped to
// a single shard (the same tolerance -txns gets), since a zero-shard
// cluster has no meaning but the sweep can still run.
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		if n < 1 {
			n = 1
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shard counts")
	}
	return out, nil
}

// clampXShard clamps the cross-shard fraction into [0,1]; NaN becomes 0.
func clampXShard(x float64) float64 {
	if !(x > 0) { // catches NaN too
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// parseWorkers parses the -workers flag: a comma-separated list of
// positive worker counts.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts")
	}
	return out, nil
}
