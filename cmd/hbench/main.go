// Command hbench regenerates the tables and figures of the hStorage-DB
// paper's evaluation (Section 6) against the simulated hybrid storage
// system.
//
// Usage:
//
//	hbench -exp all
//	hbench -exp fig5,fig6,table5 -sf 0.02 -cache 0.7
//
// Experiments: fig4, fig5, table4, fig6, table5, table6, fig9, table7,
// fig11 (includes table8), table9, fig12, oltp, iosched, all.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hstoragedb/internal/experiments"
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all", "comma-separated experiment ids (fig4 fig5 table4 fig6 table5 table6 fig9 table7 fig11 table9 fig12 oltp iosched all)")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	cache := flag.Float64("cache", 0.7, "SSD cache size as a fraction of total data pages")
	bp := flag.Float64("bp", 0.04, "buffer pool size as a fraction of total data pages")
	workMem := flag.Int("workmem", 3000, "blocking-operator memory budget in tuples")
	seed := flag.Int64("seed", 0, "query parameter seed")
	streams := flag.Int("streams", 3, "query streams in the throughput and iosched tests")
	txns := flag.Int("txns", 150, "transactions per configuration in the OLTP/iosched experiments")
	flag.Parse()

	cfg := experiments.Config{
		SF:              *sf,
		CacheRatio:      *cache,
		BufferPoolRatio: *bp,
		WorkMem:         *workMem,
		Seed:            *seed,
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	has := func(id string) bool { return all || want[id] }

	fmt.Printf("hbench: SF=%g cache=%.0f%% of data, bp=%.0f%%, workmem=%d tuples\n",
		cfg.SF, 100*cfg.CacheRatio, 100*cfg.BufferPoolRatio, cfg.WorkMem)
	fmt.Println("loading dataset...")
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	fmt.Printf("loaded: %d data pages (%.1f MB)\n\n", env.Data, float64(env.Data)*8/1024)

	ran := false
	run := func(id string, f func() error) {
		if !has(id) {
			return
		}
		ran = true
		if err := f(); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println()
	}

	run("fig4", func() error {
		shares, err := env.Fig4()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig4(shares))
		return nil
	})
	run("fig5", func() error {
		rows, err := env.Fig5()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatModeTimes("Figure 5: sequential-dominated queries (Q1, Q5, Q11, Q19)", rows))
		return nil
	})
	run("table4", func() error {
		rows, err := env.Table4()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable4(rows))
		return nil
	})
	run("fig6", func() error {
		rows, err := env.Fig6()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatModeTimes("Figure 6: random-dominated queries (Q9, Q21)", rows))
		return nil
	})
	run("table5", func() error {
		rows, err := env.Table5()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatPrioTable("Table 5: Q9 random-request cache statistics (hStorage-DB)",
			map[string][]experiments.PrioRow{"hStorage-DB": rows}, []string{"hStorage-DB"}))
		return nil
	})
	run("table6", func() error {
		hs, lru, err := env.Table6()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatPrioTable("Table 6: Q21 cache statistics",
			map[string][]experiments.PrioRow{"hStorage-DB": hs, "LRU": lru},
			[]string{"hStorage-DB", "LRU"}))
		return nil
	})
	run("fig9", func() error {
		rows, err := env.Fig9()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatModeTimes("Figure 9: temp-data query (Q18)", rows))
		return nil
	})
	run("table7", func() error {
		hs, lru, err := env.Table7()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatPrioTable("Table 7: Q18 cache statistics (temp reads vs sequential)",
			map[string][]experiments.PrioRow{"hStorage-DB": hs, "LRU": lru},
			[]string{"hStorage-DB", "LRU"}))
		return nil
	})
	run("fig11", func() error {
		res, err := env.Fig11()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig11(res))
		return nil
	})
	run("oltp", func() error {
		runs, err := env.OLTPAll(*txns)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatOLTP(runs))
		return nil
	})
	run("iosched", func() error {
		runs, err := env.IOSchedAll(*streams, *txns)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatIOSched(runs))
		return nil
	})
	if has("table9") || has("fig12") {
		ran = true
		tEnv, err := experiments.NewEnv(cfg.ThroughputConfig())
		if err != nil {
			log.Fatalf("throughput env: %v", err)
		}
		t9, err := tEnv.Table9(*streams)
		if err != nil {
			log.Fatalf("table9: %v", err)
		}
		if has("table9") {
			fmt.Println(experiments.FormatTable9(t9))
		}
		if has("fig12") {
			f12, err := tEnv.Fig12(t9)
			if err != nil {
				log.Fatalf("fig12: %v", err)
			}
			fmt.Println(experiments.FormatFig12(f12))
		}
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *exp)
		os.Exit(2)
	}
}
