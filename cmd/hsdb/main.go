// Command hsdb is a small interactive demonstration of hStorage-DB: it
// loads a TPC-H dataset, runs a chosen query under a chosen storage
// configuration, and prints the classified-I/O summary — the per-request
// semantic classification (Figure 4) and the per-priority cache behaviour
// (Tables 4-7) for that single query.
//
// Usage:
//
//	hsdb -q 9 -mode hstorage -sf 0.01
//	hsdb -q 18 -mode lru
//	hsdb -q 21 -mode all        # compare all four configurations
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"hstoragedb"
)

func parseModes(s string) ([]hstoragedb.Mode, error) {
	if s == "all" {
		return hstoragedb.Modes(), nil
	}
	var out []hstoragedb.Mode
	for _, part := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "hdd", "hdd-only":
			out = append(out, hstoragedb.HDDOnly)
		case "lru":
			out = append(out, hstoragedb.LRU)
		case "hstorage", "hstorage-db":
			out = append(out, hstoragedb.HStorage)
		case "ssd", "ssd-only":
			out = append(out, hstoragedb.SSDOnly)
		default:
			return nil, fmt.Errorf("unknown mode %q (hdd, lru, hstorage, ssd, all)", part)
		}
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	q := flag.Int("q", 9, "TPC-H query number (1-22)")
	modeFlag := flag.String("mode", "hstorage", "storage mode: hdd, lru, hstorage, ssd, or all")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	cacheFrac := flag.Float64("cache", 0.7, "SSD cache as a fraction of data pages")
	seed := flag.Int64("seed", 0, "query parameter seed")
	flag.Parse()

	modes, err := parseModes(*modeFlag)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("loading TPC-H at SF %g...\n", *sf)
	ds, err := hstoragedb.LoadTPCH(*sf)
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	data := ds.DB.Store.TotalPages()
	cache := int(float64(data) * *cacheFrac)
	if cache < 64 {
		cache = 64
	}
	fmt.Printf("loaded %d pages (%.1f MB); cache %d blocks\n\n", data, float64(data)*8/1024, cache)

	for _, mode := range modes {
		inst, err := ds.DB.NewInstance(hstoragedb.InstanceConfig{
			Storage: hstoragedb.StorageConfig{
				Mode:        mode,
				CacheBlocks: cache,
			},
			BufferPoolPages: int(float64(data) * 0.04),
			WorkMem:         3000,
		})
		if err != nil {
			log.Fatalf("instance: %v", err)
		}
		sess := inst.NewSession()
		op, err := ds.Query(*q, *seed)
		if err != nil {
			log.Fatal(err)
		}
		rows, elapsed, err := sess.ExecuteDiscard(op)
		if err != nil {
			log.Fatalf("Q%d on %v: %v", *q, mode, err)
		}
		fmt.Printf("=== Q%d under %v ===\n", *q, mode)
		fmt.Printf("rows: %d   simulated execution time: %v\n", rows, elapsed.Round(elapsed/1000+1))
		fmt.Printf("request classification: %s\n", inst.Mgr.FormatTypeStats())
		fmt.Printf("storage behaviour:\n%s\n", inst.Sys.Stats())
	}
}
