package hstoragedb_test

import (
	"errors"
	"testing"

	"hstoragedb"
)

// TestTxnFacade drives the transactional surface through the public API:
// WAL creation, committed OLTP transactions, crash injection, and
// recovery by a fresh instance.
func TestTxnFacade(t *testing.T) {
	ds, err := hstoragedb.LoadTPCH(0.002)
	if err != nil {
		t.Fatal(err)
	}
	newInst := func() *hstoragedb.Instance {
		inst, err := ds.DB.NewInstance(hstoragedb.InstanceConfig{
			Storage: hstoragedb.StorageConfig{
				Mode:        hstoragedb.HStorage,
				CacheBlocks: 1024,
			},
			BufferPoolPages: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}

	inst := newInst()
	sess := inst.NewSession()
	log, err := hstoragedb.NewWAL(sess, hstoragedb.DefaultWALConfig())
	if err != nil {
		t.Fatal(err)
	}
	tm := hstoragedb.NewTxnManager(inst, log)

	driver := ds.NewOLTP(3)
	if err := driver.RunTxn(tm, sess, 40); err != nil {
		t.Fatal(err)
	}
	if tm.Commits() == 0 {
		t.Fatal("no commits")
	}
	snap := inst.Sys.Stats()
	if snap.Class(hstoragedb.ClassLog).WriteBlocks == 0 {
		t.Fatal("log writes not visible under ClassLog in the snapshot")
	}

	tm.CrashAtCommit(2)
	err = driver.RunNewOrdersTxn(tm, sess, 10)
	if !errors.Is(err, hstoragedb.ErrCrashed) {
		t.Fatalf("crash harness: %v", err)
	}
	tm.Crash()

	inst2 := newInst()
	sess2 := inst2.NewSession()
	_, stats, err := hstoragedb.Recover(sess2, hstoragedb.DefaultWALConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.CommittedTxns == 0 || stats.LoserTxns == 0 || stats.Elapsed <= 0 {
		t.Fatalf("recovery stats: %+v", stats)
	}
}
