// Package hstoragedb is a reproduction of "hStorage-DB:
// Heterogeneity-aware Data Management to Exploit the Full Capability of
// Hybrid Storage Systems" (Luo, Lee, Mesnier, Chen, Zhang — PVLDB 5(10),
// 2012) as a self-contained Go library.
//
// The package bundles, end to end, everything the paper's evaluation
// needs:
//
//   - a simulated hybrid storage system: an SSD cache over an HDD managed
//     by the paper's priority-based selective allocation / selective
//     eviction (plus LRU, HDD-only and SSD-only configurations),
//   - the Differentiated Storage Services request classification layer,
//   - a small DBMS engine (buffer pool, heap files, B+trees, an iterator
//     executor with plan-level tracking) whose storage manager assigns
//     each I/O request a QoS policy per the paper's Rules 1-5,
//   - a deterministic scaled-down TPC-H workload: generator, the nine
//     indexes of Table 3, all 22 queries, RF1/RF2, power and throughput
//     test drivers,
//   - experiment drivers that regenerate every figure and table of
//     Section 6.
//
// # Quick start
//
//	ds, err := hstoragedb.LoadTPCH(0.01)           // generate + load + index
//	inst, err := ds.DB.NewInstance(hstoragedb.InstanceConfig{
//	    Storage: hstoragedb.StorageConfig{Mode: hstoragedb.HStorage, CacheBlocks: 4096},
//	})
//	sess := inst.NewSession()
//	res, err := sess.Execute(ds.MustQuery(9, 0))    // run TPC-H Q9
//	fmt.Println(res.Elapsed, inst.Sys.Stats())
//
// Execution time is simulated (discrete-event device models parameterized
// with the paper's Table 2); the library is deterministic end to end.
package hstoragedb

import (
	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/exec"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/experiments"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/tpch"
)

// Storage configuration: the four configurations of the evaluation and
// the {N, t, b} QoS policy space.
type (
	// Mode selects HDD-only, LRU, hStorage-DB or SSD-only.
	Mode = hybrid.Mode
	// StorageConfig sizes and parameterizes a storage system.
	StorageConfig = hybrid.Config
	// PolicySpace is the {N, t, b} tuple plus the random priority range.
	PolicySpace = dss.PolicySpace
	// Class is a caching priority attached to a request.
	Class = dss.Class
	// Snapshot is a storage system's counter snapshot (cache hits per
	// priority, evictions, TRIMs, ...).
	Snapshot = hybrid.Snapshot
	// DeviceSpec parameterizes a simulated device.
	DeviceSpec = device.Spec
)

// The four storage configurations of Section 6.
const (
	HDDOnly  = hybrid.HDDOnly
	LRU      = hybrid.LRU
	HStorage = hybrid.HStorage
	SSDOnly  = hybrid.SSDOnly
	// ARC is an extension baseline: the adaptive replacement cache, a
	// stronger monitoring-based policy than the paper's LRU.
	ARC = hybrid.ARC
)

// Modes lists the four configurations in the paper's plotting order.
func Modes() []Mode { return hybrid.Modes() }

// DefaultPolicySpace returns the paper's policy configuration: N = 8,
// t = N-1, b = 10%, random priorities in [2, 6].
func DefaultPolicySpace() PolicySpace { return dss.DefaultPolicySpace() }

// Cheetah15K and Intel320 are the device models of Table 2.
func Cheetah15K() DeviceSpec { return device.Cheetah15K() }
func Intel320() DeviceSpec   { return device.Intel320() }

// Engine: databases, instances, sessions.
type (
	// Database is the persistent half: catalog plus page contents.
	Database = engine.Database
	// Instance is a running engine: buffer pool + classification-enabled
	// storage manager + one storage system.
	Instance = engine.Instance
	// InstanceConfig sizes an instance.
	InstanceConfig = engine.InstanceConfig
	// Session is one query stream on its own simulated clock.
	Session = engine.Session
	// Result is a query execution outcome.
	Result = engine.Result
)

// NewDatabase creates an empty database.
func NewDatabase() *Database { return engine.NewDatabase() }

// DefaultInstanceConfig returns a laptop-scale hStorage configuration.
func DefaultInstanceConfig() InstanceConfig { return engine.DefaultInstanceConfig() }

// Schema / tuple surface for building custom tables and plans.
type (
	Schema  = catalog.Schema
	Column  = catalog.Column
	ColType = catalog.ColType
	Tuple   = catalog.Tuple
	Datum   = catalog.Datum
)

// Column types.
const (
	Int64Col   = catalog.Int64
	Float64Col = catalog.Float64
	StringCol  = catalog.String
	DateCol    = catalog.Date
)

// Datum constructors.
var (
	Int    = catalog.IntDatum
	Float  = catalog.FloatDatum
	String = catalog.StringDatum
)

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return catalog.NewSchema(cols...) }

// Executor operators, for building query plans against the public API.
// Plans are trees of operators; Session.Execute assigns plan levels
// (Section 4.2.2), registers the plan's random-access footprint for
// Rule 5, and drains the tree on the session clock.
type (
	Operator    = exec.Operator
	TableHandle = exec.TableHandle
	SeqScan     = exec.SeqScan
	IndexScan   = exec.IndexScan
	IndexProbe  = exec.IndexProbe
	NestLoop    = exec.NestLoop
	Hash        = exec.Hash
	HashJoin    = exec.HashJoin
	HashAgg     = exec.HashAgg
	Sort        = exec.Sort
	TopN        = exec.TopN
	Filter      = exec.Filter
	Project     = exec.Project
	Limit       = exec.Limit
	Values      = exec.Values
)

// NewTableHandle binds a catalog table for use in scans.
func NewTableHandle(info *catalog.TableInfo) *TableHandle { return exec.NewTableHandle(info) }

// Request classification surface (Figure 4's request types).
type (
	// RequestType is one of sequential / random / temporary / update.
	RequestType = policy.RequestType
	// SemanticTag is the semantic information attached to a page request.
	SemanticTag = policy.Tag
)

// RequestTypes lists the classes Figure 4 plots.
func RequestTypes() []RequestType { return policy.RequestTypes() }

// TPC-H workload.
type (
	// Dataset is a loaded TPC-H database plus query builders and RF1/RF2.
	Dataset = tpch.Dataset
)

// LoadTPCH generates, loads and indexes a TPC-H database at the given
// scale factor (the paper uses 30 and 10; 0.01-0.1 are laptop-friendly).
func LoadTPCH(sf float64) (*Dataset, error) { return tpch.Load(sf) }

// PowerOrder returns the power-test query ordering (stream 0).
func PowerOrder() []int { return tpch.PowerOrder() }

// ThroughputOrders returns the first n throughput-stream permutations.
func ThroughputOrders(n int) [][]int { return tpch.ThroughputOrders(n) }

// Experiments: regenerate the paper's figures and tables.
type (
	ExperimentConfig = experiments.Config
	ExperimentEnv    = experiments.Env
)

// DefaultExperimentConfig returns the sizing used by the test suite.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// NewExperimentEnv loads a dataset sized per the configuration.
func NewExperimentEnv(cfg ExperimentConfig) (*ExperimentEnv, error) {
	return experiments.NewEnv(cfg)
}
