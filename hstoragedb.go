// Package hstoragedb is a reproduction of "hStorage-DB:
// Heterogeneity-aware Data Management to Exploit the Full Capability of
// Hybrid Storage Systems" (Luo, Lee, Mesnier, Chen, Zhang — PVLDB 5(10),
// 2012) as a self-contained Go library.
//
// The package bundles, end to end, everything the paper's evaluation
// needs:
//
//   - a simulated hybrid storage system: an SSD cache over an HDD managed
//     by the paper's priority-based selective allocation / selective
//     eviction (plus LRU, HDD-only and SSD-only configurations),
//   - the Differentiated Storage Services request classification layer,
//   - a small DBMS engine (buffer pool, heap files, B+trees, an iterator
//     executor with plan-level tracking) whose storage manager assigns
//     each I/O request a QoS policy per the paper's Rules 1-5,
//   - a deterministic scaled-down TPC-H workload: generator, the nine
//     indexes of Table 3, all 22 queries, RF1/RF2, power and throughput
//     test drivers,
//   - the OLTP extension of Section 8: a write-ahead log whose segment
//     I/O carries a pinned highest-priority log class (write-through,
//     non-evictable), Begin/Commit/Abort transaction sessions with group
//     commit, checkpoints, crash injection and redo-only recovery,
//   - experiment drivers that regenerate every figure and table of
//     Section 6, plus the transactional OLTP experiment (commit
//     throughput and recovery time across all four configurations).
//
// # Quick start
//
//	ds, err := hstoragedb.LoadTPCH(0.01)           // generate + load + index
//	inst, err := ds.DB.NewInstance(hstoragedb.InstanceConfig{
//	    Storage: hstoragedb.StorageConfig{Mode: hstoragedb.HStorage, CacheBlocks: 4096},
//	})
//	sess := inst.NewSession()
//	res, err := sess.Execute(ds.MustQuery(9, 0))    // run TPC-H Q9
//	fmt.Println(res.Elapsed, inst.Sys.Stats())
//
// Execution time is simulated (discrete-event device models parameterized
// with the paper's Table 2); the library is deterministic end to end.
package hstoragedb

import (
	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/exec"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/experiments"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/iosched"
	"hstoragedb/internal/simclock"
	"hstoragedb/internal/tpch"
)

// Storage configuration: the four configurations of the evaluation and
// the {N, t, b} QoS policy space.
type (
	// Mode selects HDD-only, LRU, hStorage-DB or SSD-only.
	Mode = hybrid.Mode
	// StorageConfig sizes and parameterizes a storage system.
	StorageConfig = hybrid.Config
	// PolicySpace is the {N, t, b} tuple plus the random priority range.
	PolicySpace = dss.PolicySpace
	// Class is a caching priority attached to a request.
	Class = dss.Class
	// Snapshot is a storage system's counter snapshot (cache hits per
	// priority, evictions, TRIMs, ...).
	Snapshot = hybrid.Snapshot
	// DeviceSpec parameterizes a simulated device.
	DeviceSpec = device.Spec
	// IOSchedConfig parameterizes the QoS-aware per-device I/O
	// scheduler (StorageConfig.Sched): priority dispatch with an aging
	// bound, coalescing, readahead; set Disable for the single-FIFO
	// ablation or FIFO for the queued arrival-order ablation.
	IOSchedConfig = iosched.Config
	// IOSchedGroup is a storage system's scheduling domain: experiment
	// streams register their session clocks with it for
	// closed-population priority dispatch (System.Sched()).
	IOSchedGroup = iosched.Group
	// LatencyHist is a per-class end-to-end device latency histogram
	// (DeviceStats.PerClass).
	LatencyHist = device.LatencyHist
	// DeviceStats are one device's cumulative counters, including the
	// per-class latency histograms recorded by the I/O scheduler.
	DeviceStats = device.Stats
)

// The four storage configurations of Section 6.
const (
	HDDOnly  = hybrid.HDDOnly
	LRU      = hybrid.LRU
	HStorage = hybrid.HStorage
	SSDOnly  = hybrid.SSDOnly
	// ARC is an extension baseline: the adaptive replacement cache, a
	// stronger monitoring-based policy than the paper's LRU.
	ARC = hybrid.ARC
)

// Modes lists the four configurations in the paper's plotting order.
func Modes() []Mode { return hybrid.Modes() }

// DefaultPolicySpace returns the paper's policy configuration: N = 8,
// t = N-1, b = 10%, random priorities in [2, 6].
func DefaultPolicySpace() PolicySpace { return dss.DefaultPolicySpace() }

// Cheetah15K and Intel320 are the device models of Table 2.
func Cheetah15K() DeviceSpec { return device.Cheetah15K() }
func Intel320() DeviceSpec   { return device.Intel320() }

// Engine: databases, instances, sessions.
type (
	// Database is the persistent half: catalog plus page contents.
	Database = engine.Database
	// Instance is a running engine: buffer pool + classification-enabled
	// storage manager + one storage system.
	Instance = engine.Instance
	// InstanceConfig sizes an instance.
	InstanceConfig = engine.InstanceConfig
	// Session is one query stream on its own simulated clock.
	Session = engine.Session
	// Result is a query execution outcome.
	Result = engine.Result
)

// NewDatabase creates an empty database.
func NewDatabase() *Database { return engine.NewDatabase() }

// DefaultInstanceConfig returns a laptop-scale hStorage configuration.
func DefaultInstanceConfig() InstanceConfig { return engine.DefaultInstanceConfig() }

// Schema / tuple surface for building custom tables and plans.
type (
	Schema  = catalog.Schema
	Column  = catalog.Column
	ColType = catalog.ColType
	Tuple   = catalog.Tuple
	Datum   = catalog.Datum
)

// Column types.
const (
	Int64Col   = catalog.Int64
	Float64Col = catalog.Float64
	StringCol  = catalog.String
	DateCol    = catalog.Date
)

// Datum constructors.
var (
	Int    = catalog.IntDatum
	Float  = catalog.FloatDatum
	String = catalog.StringDatum
)

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return catalog.NewSchema(cols...) }

// Executor operators, for building query plans against the public API.
// Plans are trees of operators; Session.Execute assigns plan levels
// (Section 4.2.2), registers the plan's random-access footprint for
// Rule 5, and drains the tree on the session clock.
type (
	Operator    = exec.Operator
	TableHandle = exec.TableHandle
	SeqScan     = exec.SeqScan
	IndexScan   = exec.IndexScan
	IndexProbe  = exec.IndexProbe
	NestLoop    = exec.NestLoop
	Hash        = exec.Hash
	HashJoin    = exec.HashJoin
	HashAgg     = exec.HashAgg
	Sort        = exec.Sort
	TopN        = exec.TopN
	Filter      = exec.Filter
	Project     = exec.Project
	Limit       = exec.Limit
	Values      = exec.Values
)

// NewTableHandle binds a catalog table for use in scans.
func NewTableHandle(info *catalog.TableInfo) *TableHandle { return exec.NewTableHandle(info) }

// Request classification surface (Figure 4's request types).
type (
	// RequestType is one of sequential / random / temporary / update /
	// log.
	RequestType = policy.RequestType
	// SemanticTag is the semantic information attached to a page request.
	SemanticTag = policy.Tag
)

// RequestTypes lists the classes Figure 4 plots, plus the log class of
// the OLTP extension.
func RequestTypes() []RequestType { return policy.RequestTypes() }

// ClassLog is the pinned highest-priority class carried by write-ahead
// log traffic (Section 8's OLTP extension): served write-through from the
// cache device and never evicted, only TRIMmed at checkpoint truncation.
const ClassLog = dss.ClassLog

// Transactions and durability: the OLTP extension of Section 8. A
// WALManager owns LSN-stamped segment files laid out on the simulated
// device and classified under ClassLog; a TxnManager wraps an instance
// with Begin/Commit/Abort sessions, group commit, checkpoints, crash
// injection and ARIES-style redo-only recovery.
type (
	// WALConfig sizes the write-ahead log (segment pages, group-commit
	// window, reserved object range).
	WALConfig = wal.Config
	// WALManager is the log manager.
	WALManager = wal.Manager
	// WALRecord is one LSN-stamped log record.
	WALRecord = wal.Record
	// RecoveryStats summarizes one crash recovery.
	RecoveryStats = wal.RecoveryStats
	// TxnManager coordinates transactions over one instance and one log.
	TxnManager = txn.Manager
	// Txn is one Begin/Commit/Abort transaction session.
	Txn = txn.Txn
)

// ErrCrashed is returned by transactions on a crash-injected manager.
var ErrCrashed = txn.ErrCrashed

// ErrDeadlock is returned from transactional page accesses when the lock
// manager refuses a request that would deadlock; the transaction should
// Abort and retry. Mutating transactions on distinct sessions run
// concurrently under page-granular two-phase locking.
var ErrDeadlock = txn.ErrDeadlock

// DefaultWALConfig returns the log sizing used by tests and experiments.
func DefaultWALConfig() WALConfig { return wal.DefaultConfig() }

// NewWAL creates a fresh write-ahead log for an instance. Use Recover if
// the database already holds one (e.g. after a crash).
func NewWAL(sess *Session, cfg WALConfig) (*WALManager, error) {
	return wal.New(&sess.Clk, sess.Instance().Mgr, cfg)
}

// Recover replays an existing WAL on a freshly attached instance: the
// committed transactions' effects are redone in LSN order, losers are
// discarded. It returns the recovered log manager ready for new appends.
func Recover(sess *Session, cfg WALConfig) (*WALManager, *RecoveryStats, error) {
	return wal.Recover(&sess.Clk, sess.Instance().Mgr, cfg)
}

// NewTxnManager wraps an instance and its log with transaction sessions.
func NewTxnManager(inst *Instance, log *WALManager) *TxnManager {
	return txn.NewManager(inst, log)
}

// Clock is the virtual clock each session advances.
type Clock = simclock.Clock

// TPC-H workload.
type (
	// Dataset is a loaded TPC-H database plus query builders and RF1/RF2.
	Dataset = tpch.Dataset
)

// LoadTPCH generates, loads and indexes a TPC-H database at the given
// scale factor (the paper uses 30 and 10; 0.01-0.1 are laptop-friendly).
func LoadTPCH(sf float64) (*Dataset, error) { return tpch.Load(sf) }

// PowerOrder returns the power-test query ordering (stream 0).
func PowerOrder() []int { return tpch.PowerOrder() }

// ThroughputOrders returns the first n throughput-stream permutations.
func ThroughputOrders(n int) [][]int { return tpch.ThroughputOrders(n) }

// Experiments: regenerate the paper's figures and tables.
type (
	ExperimentConfig = experiments.Config
	ExperimentEnv    = experiments.Env
)

// DefaultExperimentConfig returns the sizing used by the test suite.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// NewExperimentEnv loads a dataset sized per the configuration.
func NewExperimentEnv(cfg ExperimentConfig) (*ExperimentEnv, error) {
	return experiments.NewEnv(cfg)
}
