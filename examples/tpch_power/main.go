// TPC-H power test (Section 6.3.4 of the paper): run RF1, the 22 queries
// in power order, and RF2 as one continuous stream, comparing HDD-only,
// hStorage-DB and SSD-only — the scenario of Figure 11 / Table 8.
//
//	go run ./examples/tpch_power [-sf 0.005]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"hstoragedb"
)

func main() {
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	flag.Parse()

	fmt.Printf("loading TPC-H at SF %g...\n", *sf)
	ds, err := hstoragedb.LoadTPCH(*sf)
	if err != nil {
		log.Fatal(err)
	}
	data := ds.DB.Store.TotalPages()
	cache := int(float64(data) * 0.7)

	totals := map[hstoragedb.Mode]time.Duration{}
	for _, mode := range []hstoragedb.Mode{hstoragedb.HDDOnly, hstoragedb.HStorage, hstoragedb.SSDOnly} {
		inst, err := ds.DB.NewInstance(hstoragedb.InstanceConfig{
			Storage:         hstoragedb.StorageConfig{Mode: mode, CacheBlocks: cache},
			BufferPoolPages: int(float64(data) * 0.04),
			WorkMem:         3000,
		})
		if err != nil {
			log.Fatal(err)
		}
		sess := inst.NewSession()

		fmt.Printf("\n=== %v ===\n", mode)
		if _, err := ds.RF1(sess); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %12v\n", "RF1", sess.Clk.Now())

		prev := sess.Clk.Now()
		for _, q := range hstoragedb.PowerOrder() {
			op, err := ds.Query(q, 0)
			if err != nil {
				log.Fatal(err)
			}
			if _, _, err := sess.ExecuteDiscard(op); err != nil {
				log.Fatalf("Q%d: %v", q, err)
			}
			fmt.Printf("Q%-4d %12v\n", q, sess.Clk.Now()-prev)
			prev = sess.Clk.Now()
		}
		if _, err := ds.RF2(sess); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %12v\n", "RF2", sess.Clk.Now()-prev)
		totals[mode] = sess.Clk.Now()
	}

	fmt.Println("\nTable 8 — total execution time of the sequence:")
	for _, mode := range []hstoragedb.Mode{hstoragedb.HDDOnly, hstoragedb.HStorage, hstoragedb.SSDOnly} {
		fmt.Printf("  %-12v %v\n", mode, totals[mode])
	}
	fmt.Printf("\nspeedup of hStorage-DB over HDD-only: %.2fx (paper: 86009s -> 39132s, 2.2x)\n",
		float64(totals[hstoragedb.HDDOnly])/float64(totals[hstoragedb.HStorage]))
}
