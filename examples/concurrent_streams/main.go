// Concurrent query streams (Section 6.4 of the paper): multiple sessions
// run TPC-H queries against one shared instance, contending for the same
// devices, while Rule 5 keeps priority assignment deterministic across
// queries. Compares LRU and hStorage-DB under concurrency — the scenario
// where the paper's gains are largest (Table 9, Figure 12).
//
//	go run ./examples/concurrent_streams [-streams 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"hstoragedb"
)

func main() {
	streams := flag.Int("streams", 3, "number of concurrent query streams")
	sf := flag.Float64("sf", 0.004, "TPC-H scale factor")
	flag.Parse()

	fmt.Printf("loading TPC-H at SF %g...\n", *sf)
	ds, err := hstoragedb.LoadTPCH(*sf)
	if err != nil {
		log.Fatal(err)
	}
	data := ds.DB.Store.TotalPages()
	orders := hstoragedb.ThroughputOrders(*streams)

	for _, mode := range []hstoragedb.Mode{hstoragedb.LRU, hstoragedb.HStorage} {
		inst, err := ds.DB.NewInstance(hstoragedb.InstanceConfig{
			Storage: hstoragedb.StorageConfig{
				Mode:        mode,
				CacheBlocks: int(float64(data) * 0.25), // paper: 4 GB cache / 16 GB data
			},
			BufferPoolPages: int(float64(data) * 0.05),
			WorkMem:         3000,
		})
		if err != nil {
			log.Fatal(err)
		}

		var wg sync.WaitGroup
		makespans := make([]time.Duration, len(orders))
		for i := range orders {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sess := inst.NewSession()
				for _, q := range orders[i] {
					op, err := ds.Query(q, int64(i)+1)
					if err != nil {
						log.Fatal(err)
					}
					if _, _, err := sess.ExecuteDiscard(op); err != nil {
						log.Fatalf("stream %d Q%d: %v", i, q, err)
					}
				}
				makespans[i] = sess.Clk.Now()
			}(i)
		}
		wg.Wait()

		var max time.Duration
		for _, m := range makespans {
			if m > max {
				max = m
			}
		}
		total := len(orders) * 22
		qph := float64(total) * float64(time.Hour) / float64(max)
		fmt.Printf("\n=== %v ===\n", mode)
		fmt.Printf("streams: %d, queries: %d, makespan: %v\n", len(orders), total, max)
		fmt.Printf("throughput: %.0f queries/hour of simulated time\n", qph)
		snap := inst.Sys.Stats()
		fmt.Printf("cache: %.1f%% hit ratio, %d evictions, %d TRIMmed blocks\n",
			100*snap.HitRatio(), snap.Evictions, snap.Trimmed)
	}
	fmt.Println("\nThe paper's Table 9: hStorage-DB reaches 1.5x the LRU throughput;")
	fmt.Println("concurrency amplifies the gap because semantic classification needs")
	fmt.Println("no ramp-up time and survives interleaved access patterns.")
}
