// Quickstart: build a small database through the public API, run one
// query under two storage configurations, and look at how hStorage-DB
// classified the I/O.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hstoragedb"
)

func main() {
	// 1. Create a database with a custom table and load a million-ish
	//    cells of synthetic data.
	db := hstoragedb.NewDatabase()
	info, err := db.CreateTable("events", hstoragedb.NewSchema(
		hstoragedb.Column{Name: "id", Type: hstoragedb.Int64Col},
		hstoragedb.Column{Name: "user", Type: hstoragedb.Int64Col},
		hstoragedb.Column{Name: "amount", Type: hstoragedb.Float64Col},
	))
	if err != nil {
		log.Fatal(err)
	}

	inst, err := db.NewInstance(hstoragedb.InstanceConfig{
		Storage: hstoragedb.StorageConfig{
			Mode:        hstoragedb.HStorage,
			CacheBlocks: 2048,
		},
		BufferPoolPages: 64,
	})
	if err != nil {
		log.Fatal(err)
	}

	loader, err := inst.NewLoader("events")
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < 50_000; i++ {
		_, err := loader.Add(hstoragedb.Tuple{
			hstoragedb.Int(i),
			hstoragedb.Int(i % 997),
			hstoragedb.Float(float64(i%100) / 3),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := loader.Close(); err != nil {
		log.Fatal(err)
	}
	if _, err := inst.BuildIndex("events_id", "events", "id"); err != nil {
		log.Fatal(err)
	}
	inst.ResetStats()

	// 2. Build a plan: an index-driven point lookup joined against a
	//    sequential aggregation. The engine tags every page request with
	//    its semantic information, the storage manager maps it to a QoS
	//    policy (Rules 1-5), and the hybrid storage system places blocks
	//    accordingly.
	handle := hstoragedb.NewTableHandle(info)
	plan := &hstoragedb.HashAgg{
		Child: &hstoragedb.IndexScan{
			Index: db.Cat.MustIndex("events_id"),
			Table: handle,
			Lo:    10_000, Hi: 20_000,
		},
		GroupKey: func(t hstoragedb.Tuple) string { return fmt.Sprint(t[1].I % 10) },
		NewGroup: func(t hstoragedb.Tuple) hstoragedb.Tuple {
			return hstoragedb.Tuple{hstoragedb.Int(t[1].I % 10), hstoragedb.Float(t[2].F)}
		},
		Merge: func(acc, t hstoragedb.Tuple) hstoragedb.Tuple {
			acc[1].F += t[2].F
			return acc
		},
	}

	sess := inst.NewSession()
	res, err := sess.Execute(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregated %d groups in %v of simulated time\n", len(res.Rows), res.Elapsed)
	fmt.Printf("request classification: %s\n", inst.Mgr.FormatTypeStats())
	fmt.Printf("\nstorage behaviour under %v:\n%s", inst.Sys.Mode(), inst.Sys.Stats())

	// 3. Rerun the same plan: the random-priority blocks cached by the
	//    first run now hit in the SSD.
	res2, err := inst.NewSession().Execute(&hstoragedb.SeqScan{Table: handle})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull sequential scan of the table: %v (Rule 1: bypasses the cache)\n", res2.Elapsed)
	fmt.Printf("cache still holds %d blocks\n", inst.Sys.Stats().CachedBlocks)

	// Where to go next: `go run ./cmd/hbench -exp oltp` runs the
	// transactional OLTP extension (WAL + group commit + crash
	// recovery, log writes pinned under ClassLog), and `go run
	// ./cmd/hbench -exp iosched` measures the QoS-aware device I/O
	// scheduler under contention: per-class latency percentiles and
	// throughput, scheduler vs FIFO, across all four storage modes.
	fmt.Println("\nnext: go run ./cmd/hbench -exp oltp   (transactions, WAL, crash recovery)")
	fmt.Println("      go run ./cmd/hbench -exp iosched (QoS device scheduler under contention)")
}
