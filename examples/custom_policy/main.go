// Custom QoS policy spaces: the paper's {N, t, b} tuple is configurable.
// This example runs the same random-heavy query under different policy
// spaces — a collapsed random priority range (every random request gets
// the same priority, losing the plan-level discrimination of Rule 2) and
// different write-buffer fractions — to show how the knobs move cache
// behaviour. These are the ablations DESIGN.md calls out.
//
//	go run ./examples/custom_policy
package main

import (
	"fmt"
	"log"

	"hstoragedb"
)

func run(ds *hstoragedb.Dataset, name string, space hstoragedb.PolicySpace) {
	data := ds.DB.Store.TotalPages()
	inst, err := ds.DB.NewInstance(hstoragedb.InstanceConfig{
		Storage: hstoragedb.StorageConfig{
			Mode:        hstoragedb.HStorage,
			CacheBlocks: int(float64(data) * 0.08), // tight cache: policy decisions matter
			Policy:      space,
		},
		BufferPoolPages: int(float64(data) * 0.04),
		WorkMem:         3000,
	})
	if err != nil {
		log.Fatal(err)
	}
	sess := inst.NewSession()
	op, err := ds.Query(21, 0) // Q21: random probes into orders and lineitem
	if err != nil {
		log.Fatal(err)
	}
	_, elapsed, err := sess.ExecuteDiscard(op)
	if err != nil {
		log.Fatal(err)
	}
	snap := inst.Sys.Stats()
	fmt.Printf("%-28s time=%-12v hits=%-6d evictions=%-5d\n", name, elapsed, snap.Hits, snap.Evictions)
	for p := space.RandLow; p <= space.RandHigh; p++ {
		cs := snap.Class(hstoragedb.Class(p))
		if cs.AccessedBlocks == 0 {
			continue
		}
		fmt.Printf("    prio%d: %d blocks, %.1f%% hits\n",
			p, cs.AccessedBlocks, 100*float64(cs.Hits)/float64(cs.AccessedBlocks))
	}
}

func main() {
	ds, err := hstoragedb.LoadTPCH(0.005)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's default: 8 priorities, random range [2,6], b = 10%.
	run(ds, "paper default {8, 7, 10%}", hstoragedb.DefaultPolicySpace())

	// Collapsed random range: Rule 2 can no longer distinguish operator
	// levels; all random requests compete in one group.
	collapsed := hstoragedb.DefaultPolicySpace()
	collapsed.RandLow, collapsed.RandHigh = 2, 2
	run(ds, "collapsed random range", collapsed)

	// A large write buffer steals capacity from read caching.
	bigWB := hstoragedb.DefaultPolicySpace()
	bigWB.WriteBufferFrac = 0.5
	run(ds, "write buffer b=50%", bigWB)

	// More priorities with a wider random range: finer discrimination.
	wide := hstoragedb.PolicySpace{N: 16, T: 15, WriteBufferFrac: 0.1, RandLow: 2, RandHigh: 14}
	run(ds, "wide space {16, 15, 10%}", wide)
}
