// Package doclint enforces the repository's documentation contract: in
// the audited packages, every exported top-level symbol (types,
// functions, methods, and package-level consts/vars) carries a doc
// comment, and every package has a package comment. It runs as an
// ordinary test, so `go test ./...` — and therefore CI — is the lint.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// auditedPackages lists the source directories (relative to the repo
// root) whose exported surface must be fully documented.
var auditedPackages = []string{
	"internal/device",
	"internal/dss",
	"internal/hybrid",
	"internal/iosched",
	"internal/engine/lockmgr",
	"internal/engine/policy",
	"internal/engine/txn",
	"internal/engine/wal",
	"internal/lsm",
	"internal/obs",
	"internal/shard",
}

// hasDoc reports whether a doc comment is present and non-trivial.
func hasDoc(g *ast.CommentGroup) bool {
	return g != nil && strings.TrimSpace(g.Text()) != ""
}

// lintFile collects undocumented exported declarations of one file.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil {
				// Methods on unexported receivers are not API surface.
				if !exportedRecv(d.Recv) {
					continue
				}
			}
			if !hasDoc(d.Doc) {
				report(d.Pos(), "exported func "+d.Name.Name+" has no doc comment")
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !hasDoc(d.Doc) && !hasDoc(s.Doc) {
						report(s.Pos(), "exported type "+s.Name.Name+" has no doc comment")
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && !hasDoc(d.Doc) && !hasDoc(s.Doc) && !hasDoc(s.Comment) {
							report(s.Pos(), "exported value "+name.Name+" has no doc comment")
						}
					}
				}
			}
		}
	}
	return missing
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// TestExportedSymbolsDocumented is the doc lint: it fails with the list
// of undocumented exported symbols in the audited packages.
func TestExportedSymbolsDocumented(t *testing.T) {
	root := filepath.Join("..", "..")
	for _, pkg := range auditedPackages {
		dir := filepath.Join(root, filepath.FromSlash(pkg))
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		for _, p := range pkgs {
			docked := false
			for _, f := range p.Files {
				if hasDoc(f.Doc) {
					docked = true
				}
				for _, m := range lintFile(fset, f) {
					t.Error(m)
				}
			}
			if !docked {
				t.Errorf("%s: package %s has no package comment", pkg, p.Name)
			}
		}
	}
}
