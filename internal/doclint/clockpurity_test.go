package doclint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// virtualTimePackages are the source directories that must run entirely
// on the simulated clock: every latency in them is a device-model
// computation on simclock time, so a single real-clock read would make
// grant order (and with it every golden and BENCH artifact)
// host-dependent. The experiments and cmd layers measure the simulator
// itself and may use wall time; these two may not.
var virtualTimePackages = []string{
	"internal/device",
	"internal/iosched",
}

// realClockCalls are the time-package selectors that read or wait on
// the host clock. time.Duration arithmetic and the unit constants are
// fine — they are plain numbers — so the lint bans exactly the calls
// with a wall-clock side effect.
var realClockCalls = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// TestNoRealClockInVirtualTimePackages walks the non-test sources of
// the virtual-time packages and fails on any time.<realClockCall>
// selector.
func TestNoRealClockInVirtualTimePackages(t *testing.T) {
	root := filepath.Join("..", "..")
	for _, pkg := range virtualTimePackages {
		dir := filepath.Join(root, filepath.FromSlash(pkg))
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		for _, p := range pkgs {
			for _, f := range p.Files {
				// Selector matching is syntactic, so only flag files that
				// actually import the real "time" package (all of them, in
				// practice — time.Duration is the repo's timestamp type).
				if !importsTime(f) {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok || id.Name != "time" || !realClockCalls[sel.Sel.Name] {
						return true
					}
					pos := fset.Position(sel.Pos())
					t.Errorf("%s:%d: real-clock call time.%s in virtual-time package %s",
						pos.Filename, pos.Line, sel.Sel.Name, pkg)
					return true
				})
			}
		}
	}
}

// importsTime reports whether a file imports "time" without renaming it
// away from the default identifier.
func importsTime(f *ast.File) bool {
	for _, imp := range f.Imports {
		if imp.Path.Value != `"time"` {
			continue
		}
		return imp.Name == nil || imp.Name.Name == "time"
	}
	return false
}
