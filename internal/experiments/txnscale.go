package experiments

import (
	"fmt"
	"strings"
	"time"

	"hstoragedb/internal/engine"

	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/hybrid"
)

// TxnScaleRun is the outcome of the transaction-scaling experiment under
// one storage configuration and worker count: the transactional OLTP mix
// driven by `Workers` concurrent mutating streams over the page-lock
// concurrency-control layer, with commits batched into shared group
// flushes.
type TxnScaleRun struct {
	Mode    hybrid.Mode
	Workers int

	// Txns counts completed transactions; Commits the durable commits
	// (read-only OrderStatus transactions commit without a log force).
	Txns    int64
	Commits int64
	// DeadlockRetries counts transactions that lost a deadlock, aborted
	// and were retried; AbortRate is their share of all attempts.
	DeadlockRetries int64
	AbortRate       float64

	// Elapsed is the virtual makespan (latest worker clock);
	// CommitsPerSec is Commits over it.
	Elapsed       time.Duration
	CommitsPerSec float64

	// LogFlushes counts the log forces of the measured phase; MeanBatch
	// is commits per force — the group-commit amortization (the
	// coordinator's own batch accounting is GroupCommit).
	LogFlushes  int64
	MeanBatch   float64
	GroupCommit txn.GroupCommitStats
}

// txnScaleCkptEvery is the checkpoint cadence of the scaling runs: a
// background checkpointer truncates the log every this many commits, as
// a production system would, so the pinned log class cannot grow past
// the cache and evict the working set mid-run.
const txnScaleCkptEvery = 200

// RunTxnScale runs the concurrent transactional mix on one configuration
// with the given worker count: each worker drives txnsPerWorker
// transactions on its own session, retrying deadlock losses, while the
// Rule 5 registry sees every mutating stream's footprint and a
// checkpointer periodically takes the drain barrier.
func (e *Env) RunTxnScale(mode hybrid.Mode, workers, txnsPerWorker int) (TxnScaleRun, error) {
	run := TxnScaleRun{Mode: mode, Workers: workers}
	// The scaling sweep runs a production-shaped OLTP configuration:
	// the buffer pool holds the working set (unlike the scan
	// experiments, deliberately pool-starved to exercise the storage
	// system, an OLTP server would thrash under no-steal pins
	// otherwise), and the SSD cache is provisioned for the data plus
	// the pinned log that accumulates between checkpoints.
	bp := int(e.Data) + 2048
	cache := 2 * int(e.Data)
	if c := e.cacheBlocks(); c > cache {
		cache = c
	}
	inst, err := e.DS.DB.NewInstance(engine.InstanceConfig{
		Storage: hybrid.Config{
			Mode:        mode,
			CacheBlocks: cache,
		},
		BufferPoolPages: bp,
		WorkMem:         e.Cfg.WorkMem,
		CPUPerTuple:     300 * time.Nanosecond,
		Obs:             e.Cfg.Obs,
	})
	if err != nil {
		return run, err
	}
	sess := inst.NewSession()
	log, err := wal.New(&sess.Clk, inst.Mgr, oltpWALConfig())
	if err != nil {
		return run, err
	}
	tm := txn.NewManager(inst, log)
	if err := tm.Checkpoint(sess); err != nil {
		return run, err
	}

	// Warmup: one unmeasured pass populates the SSD cache and the buffer
	// pool with the mix's working set, then a checkpoint truncates the
	// log it produced and the schedulers settle. The measured phase then
	// exercises steady-state behaviour — its streams continue the warmed
	// system's virtual time — instead of cold-start HDD misses.
	// The warmup must slide the order horizon past the recency window
	// the mix reads (tpch's recent-order span), or the measured phase
	// would reach back into pages no instance of this run ever touched.
	warmup := txnsPerWorker * workers / 2
	if warmup < 600 {
		warmup = 600
	}
	if warmup > 0 {
		if _, err := e.DS.RunOLTPWorkers(tm, inst, workers, warmup/workers+1, e.Cfg.Seed+1000, 0); err != nil {
			return run, fmt.Errorf("txnscale warmup on %v x%d: %w", mode, workers, err)
		}
		if err := tm.Checkpoint(sess); err != nil {
			return run, err
		}
	}
	warmEnd := inst.NewSession()
	inst.Mgr.Wait(&warmEnd.Clk)
	startAt := warmEnd.Clk.Now()
	flushes0 := log.Stats().Flushes
	commits0 := tm.Commits()
	gc0 := tm.GroupCommit()

	// Periodic checkpoints: every txnScaleCkptEvery commits, the
	// checkpointer drains in-flight transactions, flushes committed
	// work and truncates the log (TRIMming its pinned cache blocks).
	stop := make(chan struct{})
	ckptDone := make(chan error, 1)
	ckptSess := inst.NewSession()
	ckptSess.Clk.AdvanceTo(startAt)
	go func() {
		var last int64
		for {
			select {
			case <-stop:
				ckptDone <- nil
				return
			default:
			}
			if c := tm.Commits(); c-last >= txnScaleCkptEvery {
				if err := tm.Checkpoint(ckptSess); err != nil {
					ckptDone <- err
					return
				}
				last = c
			} else {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	res, err := e.DS.RunOLTPWorkers(tm, inst, workers, txnsPerWorker, e.Cfg.Seed, startAt)
	close(stop)
	if cerr := <-ckptDone; err == nil && cerr != nil {
		err = fmt.Errorf("checkpointer: %w", cerr)
	}
	if err != nil {
		return run, fmt.Errorf("txnscale on %v x%d: %w", mode, workers, err)
	}
	settle := inst.NewSession()
	inst.Mgr.Wait(&settle.Clk)

	run.Txns = res.Txns
	run.Commits = tm.Commits() - commits0
	run.DeadlockRetries = res.Retries
	if attempts := res.Txns + res.Retries; attempts > 0 {
		run.AbortRate = float64(res.Retries) / float64(attempts)
	}
	run.Elapsed = res.Elapsed
	if run.Elapsed > 0 {
		run.CommitsPerSec = float64(run.Commits) * float64(time.Second) / float64(run.Elapsed)
	}
	run.LogFlushes = log.Stats().Flushes - flushes0
	if run.LogFlushes > 0 {
		run.MeanBatch = float64(run.Commits) / float64(run.LogFlushes)
	}
	gc := tm.GroupCommit()
	run.GroupCommit = txn.GroupCommitStats{Batches: gc.Batches - gc0.Batches, Txns: gc.Txns - gc0.Txns}

	// Leave the shared dataset consistent for the next run: reset the key
	// allocator past the inserted orders and drop the WAL objects.
	if err := e.DS.RecomputeNextOrderKey(sess); err != nil {
		return run, err
	}
	if err := log.Destroy(&sess.Clk); err != nil {
		return run, err
	}
	return run, nil
}

// TxnScaleAll sweeps the worker counts across every storage
// configuration. totalTxns is the per-run transaction count, split
// evenly across the workers: every sweep point performs the same work,
// so throughput differences measure concurrency, not working-set size.
func (e *Env) TxnScaleAll(workers []int, totalTxns int) ([]TxnScaleRun, error) {
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	if totalTxns <= 0 {
		totalTxns = 400
	}
	out := make([]TxnScaleRun, 0, len(workers)*4)
	for _, mode := range hybrid.Modes() {
		for _, w := range workers {
			per := totalTxns / w
			if per < 1 {
				per = 1
			}
			run, err := e.RunTxnScale(mode, w, per)
			if err != nil {
				return nil, err
			}
			out = append(out, run)
		}
	}
	return out, nil
}

// FormatTxnScale renders the transaction-scaling report: per mode and
// worker count, commit throughput with its speedup over the single
// worker, group-commit amortization and deadlock abort rate.
func FormatTxnScale(runs []TxnScaleRun) string {
	var b strings.Builder
	b.WriteString("Transaction scaling: concurrent mutating streams under page-lock 2PL + batched group commit\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %12s %10s %10s %10s %10s %10s\n",
		"mode", "workers", "txns", "commits/s", "speedup", "batch", "gc-batch", "retries", "abort%")
	// Speedups are relative to the smallest worker count present per
	// mode (usually 1, but the sweep list is caller-chosen).
	base := make(map[hybrid.Mode]float64)
	baseWorkers := make(map[hybrid.Mode]int)
	for _, r := range runs {
		if w, ok := baseWorkers[r.Mode]; !ok || r.Workers < w {
			baseWorkers[r.Mode] = r.Workers
			base[r.Mode] = r.CommitsPerSec
		}
	}
	for _, r := range runs {
		speedup := 0.0
		if b1 := base[r.Mode]; b1 > 0 {
			speedup = r.CommitsPerSec / b1
		}
		fmt.Fprintf(&b, "%-12s %8d %8d %12.1f %9.2fx %10.2f %10.2f %10d %9.1f%%\n",
			r.Mode, r.Workers, r.Txns, r.CommitsPerSec, speedup,
			r.MeanBatch, r.GroupCommit.MeanBatch(), r.DeadlockRetries, 100*r.AbortRate)
	}
	b.WriteString("batch = commits per log force; gc-batch = commits per leader flush in the commit coordinator\n")
	return b.String()
}
