package experiments

import "testing"

// TestLSMExperiment is the backend experiment's acceptance test: all
// three arms complete the offered load, the LSM arms actually flush and
// compact (with TRIMs surfacing through maintenance), and the
// compaction classification earns its keep. The mechanism is asserted
// deterministically (the classified arm's maintenance travels under
// ClassCompaction and bypasses the cache; the ablation's is admitted
// and evicts resident blocks), the latency consequence with a noise
// margin (the classified arm holds at or below the ablation, tail
// dominated by worst-case device queueing both arms share).
func TestLSMExperiment(t *testing.T) {
	runs, err := LSMAll(8, 600, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	byArm := map[string]LSMRun{}
	for _, r := range runs {
		byArm[r.Arm] = r
		if r.Txns != 600 {
			t.Errorf("%s: %d txns, want 600", r.Arm, r.Txns)
		}
		if r.CommitsPerSec <= 0 || r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("%s: degenerate latencies: %+v", r.Arm, r)
		}
	}
	heap, cls, nocls := byArm["heap"], byArm["lsm"], byArm["lsm-nocls"]

	if heap.Flushes != 0 || heap.Compactions != 0 || heap.WriteAmp != 0 {
		t.Errorf("heap arm reports maintenance: %+v", heap)
	}
	for _, r := range []LSMRun{cls, nocls} {
		if r.Flushes == 0 || r.Compactions == 0 {
			t.Errorf("%s: no maintenance ran (flushes=%d compactions=%d)", r.Arm, r.Flushes, r.Compactions)
		}
		if r.WriteAmp <= 1 {
			t.Errorf("%s: write amplification %.2f, want > 1 with compactions", r.Arm, r.WriteAmp)
		}
		if r.TrimBlocks == 0 {
			t.Errorf("%s: compaction surfaced no TRIMs", r.Arm)
		}
	}

	// The mechanism, deterministically: only the classified arm's
	// maintenance travels under ClassCompaction, and stripping the
	// class admits those writes into the flash cache, where they evict
	// resident foreground blocks.
	if cls.CompactionClassBlocks == 0 {
		t.Errorf("classified arm saw no ClassCompaction blocks")
	}
	if nocls.CompactionClassBlocks != 0 {
		t.Errorf("ablation arm saw %d ClassCompaction blocks, want 0", nocls.CompactionClassBlocks)
	}
	if nocls.CacheWriteAllocs <= cls.CacheWriteAllocs {
		t.Errorf("ablation cache write allocs %d not above classified %d (maintenance not admitted?)",
			nocls.CacheWriteAllocs, cls.CacheWriteAllocs)
	}
	if nocls.CacheEvictions <= cls.CacheEvictions {
		t.Errorf("ablation evictions %d not above classified %d (no pollution pressure?)",
			nocls.CacheEvictions, cls.CacheEvictions)
	}

	// The latency consequence: the classified arm holds at or below the
	// ablation. Quantiles carry scheduling jitter (checkpoint placement
	// shifts with goroutine timing, and p99 is the ~6th-worst of 600
	// samples), so the gates only reject a classified arm clearly above
	// the ablation: the typical draw has the classified median well
	// below, and the tail — dominated by checkpoint drains and
	// worst-case HDD queueing both arms share — statistically tied.
	if float64(cls.P50) > 1.10*float64(nocls.P50) {
		t.Errorf("classified p50 %v above unclassified %v", cls.P50, nocls.P50)
	}
	if float64(cls.P99) > 1.25*float64(nocls.P99) {
		t.Errorf("classified p99 %v above unclassified %v", cls.P99, nocls.P99)
	}
}
