package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/iosched"
	"hstoragedb/internal/tpch"
)

// ioschedQueries is the per-stream query list of the scheduler
// contention experiment: scan-dominated work (tpch.ScanHeavyQueries)
// that keeps the HDD saturated with low-priority sequential traffic
// while the OLTP stream's pinned log writes fight for the devices.
var ioschedQueries = tpch.ScanHeavyQueries()

// IOSchedRun is the outcome of the scheduler contention experiment
// under one storage configuration and scheduler setting: concurrent
// query streams plus a transactional OLTP stream, reporting throughput
// and per-class device latency.
type IOSchedRun struct {
	Mode hybrid.Mode
	// Sched is false for the FIFO ablation: same queueing and
	// closed-population contention, but grants in arrival order with
	// no priority, aging, coalescing or readahead.
	Sched bool

	// Streams counts the query streams; Queries the queries completed.
	Streams int
	Queries int
	// Makespan is the latest stream clock after background settle.
	Makespan time.Duration
	// Commits and CommitsPerSec summarize the OLTP stream.
	Commits       int64
	CommitsPerSec float64

	// ClassLat merges both devices' end-to-end latency histograms per
	// class (foreground requests only).
	ClassLat map[dss.Class]device.LatencyHist
	// SchedStats holds the per-device scheduler counters (SSD/HDD
	// attach order; empty histories under the FIFO ablation).
	SchedStats []iosched.Stats
}

// RunIOSched runs the contention workload on one configuration: streams
// query streams (each executing ioschedQueries) and one transactional
// OLTP stream run concurrently as a registered closed population, so
// the device scheduler dispatches their traffic strictly by class
// priority (or in FIFO order when sched is false).
func (e *Env) RunIOSched(mode hybrid.Mode, streams, txns int, sched bool) (IOSchedRun, error) {
	run := IOSchedRun{Mode: mode, Sched: sched, Streams: streams}
	inst, err := e.DS.DB.NewInstance(engine.InstanceConfig{
		Storage: hybrid.Config{
			Mode:        mode,
			CacheBlocks: e.cacheBlocks(),
			Sched:       iosched.Config{FIFO: !sched},
		},
		BufferPoolPages: e.bpPages(),
		WorkMem:         e.Cfg.WorkMem,
		CPUPerTuple:     300 * time.Nanosecond,
		Obs:             e.Cfg.Obs,
	})
	if err != nil {
		return run, err
	}

	oltpSess := inst.NewSession()
	log, err := wal.New(&oltpSess.Clk, inst.Mgr, oltpWALConfig())
	if err != nil {
		return run, err
	}
	tm := txn.NewManager(inst, log)
	if err := tm.Checkpoint(oltpSess); err != nil {
		return run, err
	}
	inst.ResetStats()

	grp := inst.Sys.Sched()
	sessions := make([]*engine.Session, streams)
	for i := range sessions {
		sessions[i] = inst.NewSession()
		grp.Register(&sessions[i].Clk)
	}
	grp.Register(&oltpSess.Clk)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		runErr  error
		queries int
	)
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
	}

	for i, sess := range sessions {
		wg.Add(1)
		go func(i int, sess *engine.Session) {
			defer wg.Done()
			defer grp.Unregister(&sess.Clk)
			for _, q := range ioschedQueries {
				op, err := e.DS.Query(q, e.Cfg.Seed+int64(i)+1)
				if err != nil {
					fail(err)
					return
				}
				if _, _, err := sess.ExecuteDiscard(op); err != nil {
					fail(fmt.Errorf("stream %d Q%d on %v: %w", i, q, mode, err))
					return
				}
				mu.Lock()
				queries++
				mu.Unlock()
			}
		}(i, sess)
	}

	driver := e.DS.NewOLTP(e.Cfg.Seed)
	var oltpElapsed time.Duration
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer grp.Unregister(&oltpSess.Clk)
		start := oltpSess.Clk.Now()
		if err := driver.RunTxn(tm, oltpSess, txns); err != nil {
			fail(fmt.Errorf("oltp on %v: %w", mode, err))
			return
		}
		oltpElapsed = oltpSess.Clk.Now() - start
	}()
	wg.Wait()
	if runErr != nil {
		return run, runErr
	}

	settle := inst.NewSession()
	inst.Mgr.Wait(&settle.Clk)
	run.Queries = queries
	run.Commits = tm.Commits()
	if oltpElapsed > 0 {
		run.CommitsPerSec = float64(run.Commits) * float64(time.Second) / float64(oltpElapsed)
	}
	for _, sess := range sessions {
		if t := sess.Clk.Now(); t > run.Makespan {
			run.Makespan = t
		}
	}
	if t := oltpSess.Clk.Now(); t > run.Makespan {
		run.Makespan = t
	}
	// The settle clock sits at the post-drain device busy horizon:
	// counting it charges each arm for the background work it deferred,
	// so the scheduler cannot look faster by merely postponing destages.
	if t := settle.Clk.Now(); t > run.Makespan {
		run.Makespan = t
	}

	run.ClassLat = make(map[dss.Class]device.LatencyHist)
	for _, dev := range []*device.Device{inst.Sys.SSD(), inst.Sys.HDD()} {
		if dev == nil {
			continue
		}
		for class, h := range dev.Stats().PerClass {
			m := run.ClassLat[dss.Class(class)]
			m.Merge(h)
			run.ClassLat[dss.Class(class)] = m
		}
	}
	for _, s := range grp.Schedulers() {
		run.SchedStats = append(run.SchedStats, s.Stats())
	}

	// Leave the shared dataset consistent for the next run: reset the
	// key allocator past the inserted orders and drop the WAL objects.
	if err := e.DS.RecomputeNextOrderKey(oltpSess); err != nil {
		return run, err
	}
	if err := log.Destroy(&oltpSess.Clk); err != nil {
		return run, err
	}
	return run, nil
}

// IOSchedAll runs the contention experiment across every storage
// configuration, scheduler on and off.
func (e *Env) IOSchedAll(streams, txns int) ([]IOSchedRun, error) {
	if streams <= 0 {
		streams = 2
	}
	if txns <= 0 {
		txns = 200
	}
	out := make([]IOSchedRun, 0, 8)
	for _, mode := range hybrid.Modes() {
		for _, sched := range []bool{false, true} {
			run, err := e.RunIOSched(mode, streams, txns, sched)
			if err != nil {
				return nil, err
			}
			out = append(out, run)
		}
	}
	return out, nil
}

// fmtLat renders a latency with microsecond resolution (fmtDur rounds
// to milliseconds, which flattens SSD-class latencies to zero).
func fmtLat(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// latClassLabel names a class row of the latency table.
func latClassLabel(c dss.Class) string {
	space := dss.DefaultPolicySpace()
	switch {
	case c == dss.ClassLog:
		return "log"
	case c == dss.ClassWriteBuffer:
		return "write-buffer"
	case c == dss.ClassNone:
		return "none"
	case c == space.Temporary():
		return "temp(1)"
	case c == space.Sequential():
		return "sequential"
	case c == space.Eviction():
		return "eviction"
	default:
		return fmt.Sprintf("prio%d", int(c))
	}
}

// FormatIOSched renders the scheduler contention report: throughput per
// configuration and the per-class device latency histograms, FIFO vs
// scheduler.
func FormatIOSched(runs []IOSchedRun) string {
	var b strings.Builder
	b.WriteString("I/O scheduler contention experiment: concurrent scan streams + OLTP log traffic\n")
	fmt.Fprintf(&b, "%-12s %-6s %10s %12s %12s %12s %12s\n",
		"mode", "sched", "commits/s", "makespan", "log-p50", "log-p99", "log-max")
	for _, r := range runs {
		onOff := "fifo"
		if r.Sched {
			onOff = "on"
		}
		h := r.ClassLat[dss.ClassLog]
		fmt.Fprintf(&b, "%-12s %-6s %10.1f %12s %12s %12s %12s\n",
			r.Mode, onOff, r.CommitsPerSec, fmtDur(r.Makespan),
			fmtLat(h.Quantile(0.50)), fmtLat(h.Quantile(0.99)), fmtLat(h.Max))
	}
	b.WriteString("\nper-class device latency (both devices merged, foreground requests)\n")
	for _, r := range runs {
		onOff := "fifo"
		if r.Sched {
			onOff = "on"
		}
		fmt.Fprintf(&b, "%s, sched=%s:\n", r.Mode, onOff)
		classes := make([]int, 0, len(r.ClassLat))
		for c := range r.ClassLat {
			classes = append(classes, int(c))
		}
		sort.Ints(classes)
		fmt.Fprintf(&b, "  %-14s %10s %12s %12s %12s %12s\n", "class", "requests", "mean", "p50", "p99", "max")
		for _, ci := range classes {
			c := dss.Class(ci)
			h := r.ClassLat[c]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-14s %10d %12s %12s %12s %12s\n",
				latClassLabel(c), h.Count, fmtLat(h.Mean()),
				fmtLat(h.Quantile(0.50)), fmtLat(h.Quantile(0.99)), fmtLat(h.Max))
		}
	}
	return b.String()
}
