package experiments

import (
	"fmt"
	"strings"
	"time"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/hybrid"
)

// TypeShare is one query's request-type mix (one bar of Figure 4).
type TypeShare struct {
	Query    int
	Requests map[policy.RequestType]float64 // fraction of requests
	Blocks   map[policy.RequestType]float64 // fraction of blocks
}

// Fig4 reproduces Figure 4: the diversity of I/O request types across the
// 22 TPC-H queries. Each query runs once on a fresh hStorage instance and
// the storage manager's classification counters are normalized.
func (e *Env) Fig4() ([]TypeShare, error) {
	out := make([]TypeShare, 0, 22)
	for q := 1; q <= 22; q++ {
		run, err := e.RunSingle(q, hybrid.HStorage)
		if err != nil {
			return nil, err
		}
		var totReq, totBlk int64
		for _, ts := range run.TypeStats {
			totReq += ts.Requests
			totBlk += ts.Blocks
		}
		share := TypeShare{
			Query:    q,
			Requests: map[policy.RequestType]float64{},
			Blocks:   map[policy.RequestType]float64{},
		}
		for _, t := range policy.RequestTypes() {
			ts := run.TypeStats[t]
			if totReq > 0 {
				share.Requests[t] = float64(ts.Requests) / float64(totReq)
			}
			if totBlk > 0 {
				share.Blocks[t] = float64(ts.Blocks) / float64(totBlk)
			}
		}
		out = append(out, share)
	}
	return out, nil
}

// FormatFig4 renders both panels of Figure 4.
func FormatFig4(shares []TypeShare) string {
	var b strings.Builder
	b.WriteString("Figure 4: diversity of I/O requests in TPC-H queries\n")
	b.WriteString("(a) percentage of requests / (b) percentage of blocks\n")
	fmt.Fprintf(&b, "%-4s %28s | %28s\n", "Q", "seq/rand/temp/upd (req %)", "seq/rand/temp/upd (blk %)")
	for _, s := range shares {
		fmt.Fprintf(&b, "Q%-3d %6.1f %6.1f %6.1f %6.1f | %6.1f %6.1f %6.1f %6.1f\n",
			s.Query,
			100*s.Requests[policy.SequentialRequest], 100*s.Requests[policy.RandomRequest],
			100*s.Requests[policy.TempRequest], 100*s.Requests[policy.UpdateRequest],
			100*s.Blocks[policy.SequentialRequest], 100*s.Blocks[policy.RandomRequest],
			100*s.Blocks[policy.TempRequest], 100*s.Blocks[policy.UpdateRequest])
	}
	return b.String()
}

// ModeTimes is one query's execution time under the four configurations
// (one group of bars in Figures 5, 6 and 9).
type ModeTimes struct {
	Query int
	Times map[hybrid.Mode]time.Duration
	Runs  map[hybrid.Mode]QueryRun
}

// queryTimes runs each listed query under all four modes.
func (e *Env) queryTimes(queries []int) ([]ModeTimes, error) {
	out := make([]ModeTimes, 0, len(queries))
	for _, q := range queries {
		runs, err := e.RunAllModes(q)
		if err != nil {
			return nil, err
		}
		mt := ModeTimes{Query: q, Times: map[hybrid.Mode]time.Duration{}, Runs: runs}
		for mode, r := range runs {
			mt.Times[mode] = r.Elapsed
		}
		out = append(out, mt)
	}
	return out, nil
}

// Fig5 reproduces Figure 5: execution times of the sequential-dominated
// queries Q1, Q5, Q11, Q19.
func (e *Env) Fig5() ([]ModeTimes, error) { return e.queryTimes([]int{1, 5, 11, 19}) }

// Fig6 reproduces Figure 6: execution times of the random-dominated
// queries Q9 and Q21.
func (e *Env) Fig6() ([]ModeTimes, error) { return e.queryTimes([]int{9, 21}) }

// Fig9 reproduces Figure 9: execution time of the temp-data query Q18.
func (e *Env) Fig9() ([]ModeTimes, error) { return e.queryTimes([]int{18}) }

// FormatModeTimes renders a Figure 5/6/9-style table.
func FormatModeTimes(title string, rows []ModeTimes) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-5s %12s %12s %12s %12s\n", "Q", "HDD-only", "LRU", "hStorage-DB", "SSD-only")
	for _, mt := range rows {
		fmt.Fprintf(&b, "Q%-4d %12s %12s %12s %12s\n", mt.Query,
			fmtDur(mt.Times[hybrid.HDDOnly]), fmtDur(mt.Times[hybrid.LRU]),
			fmtDur(mt.Times[hybrid.HStorage]), fmtDur(mt.Times[hybrid.SSDOnly]))
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// Table4Row is one row of Table 4: LRU cache statistics for a
// sequential-dominated query.
type Table4Row struct {
	Query    int
	Accessed int64
	Hits     int64
	Ratio    float64
}

// Table4 reproduces Table 4: cache statistics for sequential requests
// under LRU for Q1, Q5, Q11, Q19.
func (e *Env) Table4() ([]Table4Row, error) {
	queries := []int{1, 5, 11, 19}
	out := make([]Table4Row, 0, len(queries))
	for _, q := range queries {
		run, err := e.RunSingle(q, hybrid.LRU)
		if err != nil {
			return nil, err
		}
		space := dss.DefaultPolicySpace()
		cs := run.Storage.Class(space.Sequential())
		row := Table4Row{Query: q, Accessed: cs.ReadBlocks, Hits: cs.ReadHits}
		if cs.ReadBlocks > 0 {
			row.Ratio = float64(cs.ReadHits) / float64(cs.ReadBlocks)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: cache statistics for sequential requests with LRU\n")
	fmt.Fprintf(&b, "%-5s %15s %12s %10s\n", "Q", "accessed blocks", "cache hits", "hit ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "Q%-4d %15d %12d %9.1f%%\n", r.Query, r.Accessed, r.Hits, 100*r.Ratio)
	}
	return b.String()
}

// PrioRow is one priority's cache statistics (Tables 5-7).
type PrioRow struct {
	Label    string
	Accessed int64
	Hits     int64
}

// Ratio returns the hit ratio.
func (r PrioRow) Ratio() float64 {
	if r.Accessed == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Accessed)
}

// Table5 reproduces Table 5: per-priority cache statistics for Q9's
// random requests under hStorage-DB.
func (e *Env) Table5() ([]PrioRow, error) {
	run, err := e.RunSingle(9, hybrid.HStorage)
	if err != nil {
		return nil, err
	}
	return prioRows(run.Storage, []dss.Class{2, 3}), nil
}

// Table6 reproduces Table 6: Q21's cache statistics under both
// hStorage-DB and LRU, for priorities 2, 3 and the sequential class.
func (e *Env) Table6() (hs, lru []PrioRow, err error) {
	space := dss.DefaultPolicySpace()
	classes := []dss.Class{2, 3, space.Sequential()}
	hRun, err := e.RunSingle(21, hybrid.HStorage)
	if err != nil {
		return nil, nil, err
	}
	lRun, err := e.RunSingle(21, hybrid.LRU)
	if err != nil {
		return nil, nil, err
	}
	return prioRows(hRun.Storage, classes), prioRows(lRun.Storage, classes), nil
}

// Table7 reproduces Table 7: Q18's cache statistics for sequential and
// temporary-data reads under both systems.
func (e *Env) Table7() (hs, lru []PrioRow, err error) {
	space := dss.DefaultPolicySpace()
	classes := []dss.Class{space.Sequential(), space.Temporary()}
	hRun, err := e.RunSingle(18, hybrid.HStorage)
	if err != nil {
		return nil, nil, err
	}
	lRun, err := e.RunSingle(18, hybrid.LRU)
	if err != nil {
		return nil, nil, err
	}
	return prioRows(hRun.Storage, classes), prioRows(lRun.Storage, classes), nil
}

func prioRows(snap hybrid.Snapshot, classes []dss.Class) []PrioRow {
	space := dss.DefaultPolicySpace()
	out := make([]PrioRow, 0, len(classes))
	for _, c := range classes {
		label := c.String()
		switch c {
		case space.Sequential():
			label = "sequential"
		case space.Temporary():
			label = "temp"
		}
		// The paper's per-class tables count reads: temp-data writes, for
		// example, are cache misses by construction and are excluded.
		cs := snap.Class(c)
		out = append(out, PrioRow{Label: label, Accessed: cs.ReadBlocks, Hits: cs.ReadHits})
	}
	return out
}

// FormatPrioTable renders a Table 5/6/7-style block.
func FormatPrioTable(title string, sections map[string][]PrioRow, order []string) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, name := range order {
		rows := sections[name]
		fmt.Fprintf(&b, "%s:\n", name)
		fmt.Fprintf(&b, "  %-12s %15s %12s %10s\n", "class", "accessed blocks", "cache hits", "hit ratio")
		for _, r := range rows {
			fmt.Fprintf(&b, "  %-12s %15d %12d %9.1f%%\n", r.Label, r.Accessed, r.Hits, 100*r.Ratio())
		}
	}
	return b.String()
}
