package experiments

import (
	"testing"
	"time"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/hybrid"
)

// TestIOSchedExperiment runs the scheduler contention experiment on the
// hStorage configuration, FIFO vs scheduler, and checks its contract:
// both arms complete the full workload, per-class latency histograms
// are populated (log class included), and the scheduler arm does not
// lose throughput to the FIFO arm.
func TestIOSchedExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment driver")
	}
	e := testEnv(t)
	var fifo, sched IOSchedRun
	for _, on := range []bool{false, true} {
		run, err := e.RunIOSched(hybrid.HStorage, 2, 60, on)
		if err != nil {
			t.Fatal(err)
		}
		if run.Queries != 2*len(ioschedQueries) {
			t.Fatalf("sched=%v: %d queries completed, want %d", on, run.Queries, 2*len(ioschedQueries))
		}
		if run.Commits == 0 || run.CommitsPerSec <= 0 {
			t.Fatalf("sched=%v: no commit throughput (%d commits)", on, run.Commits)
		}
		if run.Makespan <= 0 {
			t.Fatalf("sched=%v: empty makespan", on)
		}
		logH := run.ClassLat[dss.ClassLog]
		if logH.Count == 0 {
			t.Fatalf("sched=%v: no log-class latency recorded", on)
		}
		seqH := run.ClassLat[dss.DefaultPolicySpace().Sequential()]
		if seqH.Count == 0 {
			t.Fatalf("sched=%v: no sequential-class latency recorded", on)
		}
		if on {
			sched = run
		} else {
			fifo = run
		}
	}
	t.Log("\n" + FormatIOSched([]IOSchedRun{fifo, sched}))

	// The headline claim, asserted loosely to stay robust to goroutine
	// interleaving: the scheduler arm must not be slower overall, and
	// the pinned log class must not see a worse median.
	if sched.Makespan > fifo.Makespan*11/10 {
		t.Errorf("scheduler makespan %v worse than FIFO %v", sched.Makespan, fifo.Makespan)
	}
	if sched.CommitsPerSec < fifo.CommitsPerSec*0.9 {
		t.Errorf("scheduler commits/s %.1f worse than FIFO %.1f", sched.CommitsPerSec, fifo.CommitsPerSec)
	}
	fifoLog := fifo.ClassLat[dss.ClassLog]
	schedLog := sched.ClassLat[dss.ClassLog]
	if s, f := schedLog.Quantile(0.5), fifoLog.Quantile(0.5); s > 2*f && s > f+time.Millisecond {
		t.Errorf("scheduler log p50 %v worse than FIFO %v", s, f)
	}

	// Scheduler counters: coalescing and readahead must have fired on
	// the scheduler arm.
	var coalesced, prefetched int64
	for _, s := range sched.SchedStats {
		coalesced += s.Coalesced
		prefetched += s.PrefetchHits
	}
	if coalesced == 0 {
		t.Error("no coalesced grants recorded")
	}
	if prefetched == 0 {
		t.Error("no prefetch hits recorded")
	}
}
