package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/tpch"
)

// ThroughputResult is Table 9 plus the per-query averages Figure 12b
// needs.
type ThroughputResult struct {
	// QueriesPerHour is the throughput metric per mode (the paper's
	// Table 9 values are in this unit family).
	QueriesPerHour map[hybrid.Mode]float64
	// Makespan is the simulated time until the last stream finished.
	Makespan map[hybrid.Mode]time.Duration
	// AvgQueryTime maps mode -> query -> mean execution time inside the
	// throughput run (Figure 12b reads Q9 and Q18 from here).
	AvgQueryTime map[hybrid.Mode]map[int]time.Duration
}

// Table9 reproduces the throughput test of Section 6.4: three query
// streams plus one update stream running concurrently against a shared
// instance, per storage configuration. Streams contend for the devices
// through the shared queues.
func (e *Env) Table9(streams int) (*ThroughputResult, error) {
	if streams <= 0 {
		streams = 3
	}
	res := &ThroughputResult{
		QueriesPerHour: map[hybrid.Mode]float64{},
		Makespan:       map[hybrid.Mode]time.Duration{},
		AvgQueryTime:   map[hybrid.Mode]map[int]time.Duration{},
	}
	orders := tpch.ThroughputOrders(streams)

	for _, mode := range hybrid.Modes() {
		inst, err := e.Instance(mode)
		if err != nil {
			return nil, err
		}

		var (
			mu      sync.Mutex
			perQ    = map[int][]time.Duration{}
			wg      sync.WaitGroup
			errOnce sync.Once
			runErr  error
		)
		fail := func(err error) { errOnce.Do(func() { runErr = err }) }

		// Query streams.
		ends := make([]time.Duration, streams+1)
		for i := 0; i < streams; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sess := inst.NewSession()
				for _, q := range orders[i] {
					op, err := e.DS.Query(q, e.Cfg.Seed+int64(i)+1)
					if err != nil {
						fail(err)
						return
					}
					_, elapsed, err := sess.ExecuteDiscard(op)
					if err != nil {
						fail(fmt.Errorf("stream %d Q%d on %v: %w", i, q, mode, err))
						return
					}
					mu.Lock()
					perQ[q] = append(perQ[q], elapsed)
					mu.Unlock()
				}
				ends[i] = sess.Clk.Now()
			}(i)
		}

		// Update stream: one RF1/RF2 pair per query stream. The dataset
		// mutators are not concurrency-safe against each other, so the
		// update stream serializes its own pairs (as the TPC-H driver
		// does) on its own session.
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := inst.NewSession()
			for i := 0; i < streams; i++ {
				if _, err := e.DS.RF1(sess); err != nil {
					fail(err)
					return
				}
				if _, err := e.DS.RF2(sess); err != nil {
					fail(err)
					return
				}
			}
			ends[streams] = sess.Clk.Now()
		}()
		wg.Wait()
		if runErr != nil {
			return nil, runErr
		}

		var makespan time.Duration
		for _, t := range ends {
			if t > makespan {
				makespan = t
			}
		}
		res.Makespan[mode] = makespan
		totalQueries := float64(streams * 22)
		if makespan > 0 {
			res.QueriesPerHour[mode] = totalQueries * float64(time.Hour) / float64(makespan)
		}
		avg := map[int]time.Duration{}
		for q, ts := range perQ {
			var sum time.Duration
			for _, t := range ts {
				sum += t
			}
			avg[q] = sum / time.Duration(len(ts))
		}
		res.AvgQueryTime[mode] = avg
	}
	return res, nil
}

// FormatTable9 renders Table 9.
func FormatTable9(res *ThroughputResult) string {
	var b strings.Builder
	b.WriteString("Table 9: TPC-H throughput results (queries/hour of simulated time)\n")
	fmt.Fprintf(&b, "%12s %12s %12s %12s\n", "HDD-only", "LRU", "hStorage-DB", "SSD-only")
	fmt.Fprintf(&b, "%12.1f %12.1f %12.1f %12.1f\n",
		res.QueriesPerHour[hybrid.HDDOnly], res.QueriesPerHour[hybrid.LRU],
		res.QueriesPerHour[hybrid.HStorage], res.QueriesPerHour[hybrid.SSDOnly])
	b.WriteString("makespans: ")
	for _, m := range hybrid.Modes() {
		fmt.Fprintf(&b, "%v=%s  ", m, fmtDur(res.Makespan[m]))
	}
	b.WriteString("\n")
	return b.String()
}

// Fig12Result compares Q9/Q18 standalone vs in-throughput times.
type Fig12Result struct {
	Standalone map[int]map[hybrid.Mode]time.Duration // query -> mode -> time
	Throughput map[int]map[hybrid.Mode]time.Duration
}

// Fig12 reproduces Figure 12: Q9 and Q18 execution times standalone (a)
// versus their averages inside the throughput test (b).
func (e *Env) Fig12(t9 *ThroughputResult) (*Fig12Result, error) {
	res := &Fig12Result{
		Standalone: map[int]map[hybrid.Mode]time.Duration{},
		Throughput: map[int]map[hybrid.Mode]time.Duration{},
	}
	for _, q := range []int{9, 18} {
		runs, err := e.RunAllModes(q)
		if err != nil {
			return nil, err
		}
		res.Standalone[q] = map[hybrid.Mode]time.Duration{}
		res.Throughput[q] = map[hybrid.Mode]time.Duration{}
		for mode, r := range runs {
			res.Standalone[q][mode] = r.Elapsed
		}
		for mode, avg := range t9.AvgQueryTime {
			res.Throughput[q][mode] = avg[q]
		}
	}
	return res, nil
}

// FormatFig12 renders Figure 12.
func FormatFig12(res *Fig12Result) string {
	var b strings.Builder
	b.WriteString("Figure 12: Q9 and Q18, standalone (a) vs in-throughput average (b)\n")
	for _, panel := range []struct {
		name string
		data map[int]map[hybrid.Mode]time.Duration
	}{
		{"(a) standalone", res.Standalone},
		{"(b) throughput avg", res.Throughput},
	} {
		b.WriteString(panel.name + "\n")
		fmt.Fprintf(&b, "%-5s %12s %12s %12s %12s\n", "Q", "HDD-only", "LRU", "hStorage-DB", "SSD-only")
		for _, q := range []int{9, 18} {
			row := panel.data[q]
			fmt.Fprintf(&b, "Q%-4d %12s %12s %12s %12s\n", q,
				fmtDur(row[hybrid.HDDOnly]), fmtDur(row[hybrid.LRU]),
				fmtDur(row[hybrid.HStorage]), fmtDur(row[hybrid.SSDOnly]))
		}
	}
	return b.String()
}
