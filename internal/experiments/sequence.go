package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/tpch"
)

// SeqStep is one element of the power-test sequence result.
type SeqStep struct {
	Label   string // "Q14", "RF1", ...
	Elapsed map[hybrid.Mode]time.Duration
}

// PowerResult is Figure 11 plus Table 8.
type PowerResult struct {
	Steps  []SeqStep
	Totals map[hybrid.Mode]time.Duration
}

// Fig11 reproduces Figure 11 / Table 8: the TPC-H power-test sequence
// (RF1, the 22 queries in power order, RF2) executed as one continuous
// stream per storage configuration. The paper omits LRU here; we do too.
func (e *Env) Fig11() (*PowerResult, error) {
	modes := []hybrid.Mode{hybrid.HDDOnly, hybrid.HStorage, hybrid.SSDOnly}
	labels := []string{"RF1"}
	for _, q := range tpch.PowerOrder() {
		labels = append(labels, fmt.Sprintf("Q%d", q))
	}
	labels = append(labels, "RF2")

	res := &PowerResult{Totals: map[hybrid.Mode]time.Duration{}}
	res.Steps = make([]SeqStep, len(labels))
	for i, l := range labels {
		res.Steps[i] = SeqStep{Label: l, Elapsed: map[hybrid.Mode]time.Duration{}}
	}

	for _, mode := range modes {
		inst, err := e.Instance(mode)
		if err != nil {
			return nil, err
		}
		sess := inst.NewSession()
		step := 0
		mark := func(d time.Duration) {
			res.Steps[step].Elapsed[mode] = d
			step++
		}

		start := sess.Clk.Now()
		if _, err := e.DS.RF1(sess); err != nil {
			return nil, err
		}
		mark(sess.Clk.Now() - start)

		for _, q := range tpch.PowerOrder() {
			op, err := e.DS.Query(q, e.Cfg.Seed)
			if err != nil {
				return nil, err
			}
			_, elapsed, err := sess.ExecuteDiscard(op)
			if err != nil {
				return nil, fmt.Errorf("power Q%d on %v: %w", q, mode, err)
			}
			mark(elapsed)
		}

		start = sess.Clk.Now()
		if _, err := e.DS.RF2(sess); err != nil {
			return nil, err
		}
		inst.Mgr.Wait(&sess.Clk)
		mark(sess.Clk.Now() - start)

		res.Totals[mode] = sess.Clk.Now()
	}
	return res, nil
}

// FormatFig11 renders Figure 11 (both panels) and Table 8.
func FormatFig11(res *PowerResult) string {
	short := tpch.ShortQueries()
	var b strings.Builder
	b.WriteString("Figure 11: execution times of queries packed into one stream\n")
	render := func(title string, filter func(string) bool) {
		b.WriteString(title + "\n")
		fmt.Fprintf(&b, "%-5s %12s %12s %12s\n", "step", "HDD-only", "hStorage-DB", "SSD-only")
		for _, s := range res.Steps {
			if !filter(s.Label) {
				continue
			}
			fmt.Fprintf(&b, "%-5s %12s %12s %12s\n", s.Label,
				fmtDur(s.Elapsed[hybrid.HDDOnly]), fmtDur(s.Elapsed[hybrid.HStorage]), fmtDur(s.Elapsed[hybrid.SSDOnly]))
		}
	}
	isShort := func(label string) bool {
		if label == "RF1" || label == "RF2" {
			return true
		}
		var q int
		fmt.Sscanf(label, "Q%d", &q)
		return short[q]
	}
	render("(a) short queries", isShort)
	render("(b) long queries", func(l string) bool { return !isShort(l) })

	b.WriteString("\nTable 8: total execution time of the sequence\n")
	modes := []hybrid.Mode{hybrid.HDDOnly, hybrid.HStorage, hybrid.SSDOnly}
	for _, m := range modes {
		fmt.Fprintf(&b, "  %-12s %s\n", m, fmtDur(res.Totals[m]))
	}
	return b.String()
}

// SortedModes returns the modes present in a map, in canonical order.
func SortedModes[T any](m map[hybrid.Mode]T) []hybrid.Mode {
	out := make([]hybrid.Mode, 0, len(m))
	for _, mode := range hybrid.Modes() {
		if _, ok := m[mode]; ok {
			out = append(out, mode)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
