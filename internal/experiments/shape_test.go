package experiments

import (
	"testing"

	"hstoragedb/internal/hybrid"
)

// testEnv loads a small environment shared by the shape tests.
func testEnv(t testing.TB) *Env {
	t.Helper()
	e, err := NewEnv(DefaultConfig())
	if err != nil {
		t.Fatalf("env: %v", err)
	}
	return e
}

// TestShapes prints the headline experiment outputs for manual
// calibration review.
func TestShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration review only")
	}
	e := testEnv(t)
	f5, err := e.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatModeTimes("Figure 5 (sequential: Q1,Q5,Q11,Q19)", f5))
	f6, err := e.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatModeTimes("Figure 6 (random: Q9,Q21)", f6))
	f9, err := e.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatModeTimes("Figure 9 (temp: Q18)", f9))

	t5, err := e.Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t5 {
		t.Logf("Table5 %s: accessed=%d hits=%d ratio=%.1f%%", r.Label, r.Accessed, r.Hits, 100*r.Ratio())
	}
	hs, lru, err := e.Table7()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hs {
		t.Logf("Table7 hStorage %s: accessed=%d hits=%d ratio=%.1f%%", r.Label, r.Accessed, r.Hits, 100*r.Ratio())
	}
	for _, r := range lru {
		t.Logf("Table7 LRU %s: accessed=%d hits=%d ratio=%.1f%%", r.Label, r.Accessed, r.Hits, 100*r.Ratio())
	}
	_ = hybrid.Modes()
}
