// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) against the simulated hybrid storage system. Each
// experiment returns structured results plus a rendered report whose rows
// mirror the paper's.
package experiments

import (
	"fmt"
	"time"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/obs"
	"hstoragedb/internal/tpch"
)

// Config scales an experiment run. The defaults reproduce the paper's
// cache:data and memory:data proportions at laptop scale.
type Config struct {
	// SF is the TPC-H scale factor (the paper uses 30 for single-query
	// runs and 10 for the throughput test; defaults here are scaled to
	// laptop runtimes while preserving the capacity ratios).
	SF float64
	// CacheRatio sizes the SSD cache as a fraction of total data pages
	// (paper: 32 GB cache / 46 GB data ≈ 0.7).
	CacheRatio float64
	// BufferPoolRatio sizes the DBMS buffer pool as a fraction of total
	// data pages (paper: 8 GB RAM / 46 GB data ≈ 0.17, but most of RAM
	// is not buffer pool; we default lower).
	BufferPoolRatio float64
	// WorkMem is the blocking-operator budget in tuples.
	WorkMem int
	// Seed selects query substitution parameters.
	Seed int64
	// Obs optionally attaches an observability set (metrics registry and
	// request tracer) to every instance the experiments build. Excluded
	// from -json output: it is runtime state, not configuration.
	Obs *obs.Set `json:"-"`
}

// DefaultConfig returns the configuration used by tests and the hbench
// defaults.
func DefaultConfig() Config {
	return Config{SF: 0.01, CacheRatio: 0.7, BufferPoolRatio: 0.04, WorkMem: 3000, Seed: 0}
}

// ThroughputConfig mirrors Section 6.4: scale 1/3 of the single-query
// scale, a 4 GB cache over a 16 GB dataset (ratio 0.25) and a 2 GB main
// memory (ratio 0.125).
func (c Config) ThroughputConfig() Config {
	t := c
	t.SF = c.SF / 3
	t.CacheRatio = 0.25
	t.BufferPoolRatio = 0.05
	return t
}

// Env is a loaded dataset plus sizing derived from it.
type Env struct {
	Cfg  Config
	DS   *tpch.Dataset
	Data int64 // total data pages after load
}

// NewEnv loads a dataset for the configuration.
func NewEnv(cfg Config) (*Env, error) {
	ds, err := tpch.Load(cfg.SF)
	if err != nil {
		return nil, err
	}
	return &Env{Cfg: cfg, DS: ds, Data: ds.DB.Store.TotalPages()}, nil
}

// cacheBlocks returns the SSD cache size in blocks.
func (e *Env) cacheBlocks() int {
	n := int(float64(e.Data) * e.Cfg.CacheRatio)
	if n < 64 {
		n = 64
	}
	return n
}

// bpPages returns the buffer pool size in pages.
func (e *Env) bpPages() int {
	n := int(float64(e.Data) * e.Cfg.BufferPoolRatio)
	if n < 64 {
		n = 64
	}
	return n
}

// Instance builds a fresh engine instance in the given mode.
func (e *Env) Instance(mode hybrid.Mode) (*engine.Instance, error) {
	return e.DS.DB.NewInstance(engine.InstanceConfig{
		Storage: hybrid.Config{
			Mode:        mode,
			CacheBlocks: e.cacheBlocks(),
		},
		BufferPoolPages: e.bpPages(),
		WorkMem:         e.Cfg.WorkMem,
		CPUPerTuple:     300 * time.Nanosecond,
		Obs:             e.Cfg.Obs,
	})
}

// QueryRun is the outcome of one query under one storage mode.
type QueryRun struct {
	Query     int
	Mode      hybrid.Mode
	Rows      int64
	Elapsed   time.Duration
	Storage   hybrid.Snapshot
	TypeStats map[policy.RequestType]storagemgr.TypeStats
}

// RunSingle executes query q once, cold, on a fresh instance in the given
// mode and collects all statistics.
func (e *Env) RunSingle(q int, mode hybrid.Mode) (QueryRun, error) {
	inst, err := e.Instance(mode)
	if err != nil {
		return QueryRun{}, err
	}
	sess := inst.NewSession()
	op, err := e.DS.Query(q, e.Cfg.Seed)
	if err != nil {
		return QueryRun{}, err
	}
	rows, _, err := sess.ExecuteDiscard(op)
	if err != nil {
		return QueryRun{}, fmt.Errorf("Q%d on %v: %w", q, mode, err)
	}
	inst.Mgr.Wait(&sess.Clk)
	return QueryRun{
		Query:     q,
		Mode:      mode,
		Rows:      rows,
		Elapsed:   sess.Clk.Now(),
		Storage:   inst.Sys.Stats(),
		TypeStats: inst.Mgr.TypeStats(),
	}, nil
}

// RunAllModes executes query q under all four storage configurations.
func (e *Env) RunAllModes(q int) (map[hybrid.Mode]QueryRun, error) {
	out := make(map[hybrid.Mode]QueryRun, 4)
	for _, mode := range hybrid.Modes() {
		r, err := e.RunSingle(q, mode)
		if err != nil {
			return nil, err
		}
		out[mode] = r
	}
	return out, nil
}
