package experiments

import (
	"testing"

	"hstoragedb/internal/hybrid"
)

// TestDebugQ21 dumps Q21's storage behaviour for calibration.
func TestDebugQ21(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration review only")
	}
	e := testEnv(t)
	for _, mode := range []hybrid.Mode{hybrid.HDDOnly, hybrid.LRU, hybrid.HStorage} {
		run, err := e.RunSingle(21, mode)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("mode=%v elapsed=%v\n%s", mode, run.Elapsed, run.Storage)
		for typ, ts := range run.TypeStats {
			t.Logf("  type %v: req=%d blocks=%d", typ, ts.Requests, ts.Blocks)
		}
	}
}
