package experiments

import (
	"testing"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/hybrid"
)

// TestOLTPExperiment exercises the transactional OLTP mix across all four
// storage configurations, with and without the log classification, and
// checks the acceptance contract: deterministic completion, commit
// throughput reported, recovery verified, and log I/O visibly classified
// under the log class on the classification-aware configuration.
func TestOLTPExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment driver")
	}
	e := testEnv(t)
	runs, err := e.OLTPAll(120)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 8 {
		t.Fatalf("%d runs, want 8", len(runs))
	}
	t.Log("\n" + FormatOLTP(runs))

	byKey := map[[2]interface{}]OLTPRun{}
	for _, r := range runs {
		byKey[[2]interface{}{r.Mode, r.LogClass}] = r
		if r.CommitsPerSec <= 0 {
			t.Errorf("%v log=%v: no commit throughput", r.Mode, r.LogClass)
		}
		if r.RecoveryTime <= 0 {
			t.Errorf("%v log=%v: recovery consumed no simulated time", r.Mode, r.LogClass)
		}
		if r.RecoveredOrders == 0 {
			t.Errorf("%v log=%v: no committed orders verified", r.Mode, r.LogClass)
		}
		if r.LostOrders == 0 {
			t.Errorf("%v log=%v: crash victim not verified absent", r.Mode, r.LogClass)
		}
		if r.TypeStats[policy.LogRequest].Blocks == 0 {
			t.Errorf("%v log=%v: no traffic counted under the log request type", r.Mode, r.LogClass)
		}
	}

	// With classification on, hStorage must show the log class in its
	// per-class snapshot counters, with every log write an SSD hit or
	// allocation (never a bypass to the HDD at this cache size).
	hs := byKey[[2]interface{}{hybrid.HStorage, true}]
	logCS := hs.Storage.Class(dss.ClassLog)
	if logCS.WriteBlocks == 0 {
		t.Error("hStorage with log class: no writes recorded under dss.ClassLog")
	}
	// With classification off, the same traffic must NOT appear under the
	// log class (it travels as write-buffer updates instead).
	hsOff := byKey[[2]interface{}{hybrid.HStorage, false}]
	if hsOff.Storage.Class(dss.ClassLog).WriteBlocks != 0 {
		t.Error("hStorage without log class: traffic leaked into dss.ClassLog")
	}

	// Commit throughput must reflect the storage hierarchy: the hybrid
	// with log classification beats the HDD-only baseline, SSD-only
	// bounds everything from above.
	hdd := byKey[[2]interface{}{hybrid.HDDOnly, true}]
	ssd := byKey[[2]interface{}{hybrid.SSDOnly, true}]
	if !(ssd.CommitsPerSec > hs.CommitsPerSec && hs.CommitsPerSec > hdd.CommitsPerSec) {
		t.Errorf("throughput ordering violated: SSD=%.1f hStorage=%.1f HDD=%.1f",
			ssd.CommitsPerSec, hs.CommitsPerSec, hdd.CommitsPerSec)
	}
}
