package experiments

import (
	"testing"

	"hstoragedb/internal/hybrid"
)

// TestSequenceAndThroughput exercises the power-test and throughput-test
// drivers end to end at small scale.
func TestSequenceAndThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment drivers")
	}
	e := testEnv(t)

	res, err := e.Fig11()
	if err != nil {
		t.Fatalf("fig11: %v", err)
	}
	t.Logf("Table 8 totals: HDD=%v hStorage=%v SSD=%v",
		res.Totals[hybrid.HDDOnly], res.Totals[hybrid.HStorage], res.Totals[hybrid.SSDOnly])
	if res.Totals[hybrid.HStorage] >= res.Totals[hybrid.HDDOnly] {
		t.Errorf("hStorage (%v) should beat HDD-only (%v) on the power sequence",
			res.Totals[hybrid.HStorage], res.Totals[hybrid.HDDOnly])
	}
	if res.Totals[hybrid.SSDOnly] >= res.Totals[hybrid.HStorage] {
		t.Errorf("SSD-only (%v) should beat hStorage (%v)",
			res.Totals[hybrid.SSDOnly], res.Totals[hybrid.HStorage])
	}

	tEnv, err := NewEnv(e.Cfg.ThroughputConfig())
	if err != nil {
		t.Fatalf("throughput env: %v", err)
	}
	t9, err := tEnv.Table9(3)
	if err != nil {
		t.Fatalf("table9: %v", err)
	}
	t.Log("\n" + FormatTable9(t9))
	f12, err := tEnv.Fig12(t9)
	if err != nil {
		t.Fatalf("fig12: %v", err)
	}
	t.Log("\n" + FormatFig12(f12))

	qph := t9.QueriesPerHour
	if !(qph[hybrid.SSDOnly] > qph[hybrid.HStorage] &&
		qph[hybrid.HStorage] > qph[hybrid.LRU] &&
		qph[hybrid.LRU] > qph[hybrid.HDDOnly]) {
		t.Errorf("throughput ordering violated: %v", qph)
	}
}
