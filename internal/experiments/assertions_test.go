package experiments

import (
	"sync"
	"testing"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/hybrid"
)

// The environment is loaded once; every assertion test runs fresh
// instances against it, so they are independent.
var (
	sharedOnce sync.Once
	sharedEnv  *Env
	sharedErr  error
)

func sharedTestEnv(t *testing.T) *Env {
	t.Helper()
	sharedOnce.Do(func() {
		sharedEnv, sharedErr = NewEnv(DefaultConfig())
	})
	if sharedErr != nil {
		t.Fatalf("env: %v", sharedErr)
	}
	return sharedEnv
}

// TestFig4Claims: Q1 is all-sequential; Q18 is temp-heavy with no random;
// Q21 mixes sequential and random.
func TestFig4Claims(t *testing.T) {
	e := sharedTestEnv(t)
	shares, err := e.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 22 {
		t.Fatalf("%d queries", len(shares))
	}
	byQ := map[int]TypeShare{}
	for _, s := range shares {
		byQ[s.Query] = s
	}
	if byQ[1].Requests[policy.SequentialRequest] < 0.99 {
		t.Errorf("Q1 sequential fraction %.2f", byQ[1].Requests[policy.SequentialRequest])
	}
	if byQ[18].Requests[policy.TempRequest] < 0.3 {
		t.Errorf("Q18 temp fraction %.2f", byQ[18].Requests[policy.TempRequest])
	}
	if byQ[18].Requests[policy.RandomRequest] > 0.01 {
		t.Errorf("Q18 random fraction %.2f, Figure 10's plan has none", byQ[18].Requests[policy.RandomRequest])
	}
	if byQ[21].Requests[policy.RandomRequest] < 0.2 || byQ[21].Requests[policy.SequentialRequest] < 0.2 {
		t.Errorf("Q21 mix seq=%.2f rand=%.2f", byQ[21].Requests[policy.SequentialRequest], byQ[21].Requests[policy.RandomRequest])
	}
}

// TestFig5Claims: for sequential-dominated queries, hStorage-DB tracks
// HDD-only exactly (no caching overhead) while LRU is strictly slower
// than HDD-only.
func TestFig5Claims(t *testing.T) {
	e := sharedTestEnv(t)
	rows, err := e.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range rows {
		hdd := mt.Times[hybrid.HDDOnly]
		lru := mt.Times[hybrid.LRU]
		hs := mt.Times[hybrid.HStorage]
		// hStorage within 2% of HDD-only.
		if diff := float64(hs-hdd) / float64(hdd); diff > 0.02 || diff < -0.02 {
			t.Errorf("Q%d: hStorage %v vs HDD-only %v (%.1f%%)", mt.Query, hs, hdd, 100*diff)
		}
		// LRU pays an overhead on the bigger queries (Q11 is too small
		// to measure a stable overhead, skip it).
		if mt.Query != 11 && lru <= hdd {
			t.Errorf("Q%d: LRU %v not slower than HDD-only %v", mt.Query, lru, hdd)
		}
	}
}

// TestTable4Claims: LRU gains (essentially) no hits from sequential
// requests.
func TestTable4Claims(t *testing.T) {
	e := sharedTestEnv(t)
	rows, err := e.Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Accessed == 0 {
			t.Errorf("Q%d accessed no sequential blocks", r.Query)
		}
		if r.Ratio > 0.01 {
			t.Errorf("Q%d sequential hit ratio %.3f, paper reports <= 0.3%%", r.Query, r.Ratio)
		}
	}
}

// TestFig6Claims: random-dominated queries gain substantially from both
// cache modes; SSD-only is the fastest; HDD-only the slowest.
func TestFig6Claims(t *testing.T) {
	e := sharedTestEnv(t)
	rows, err := e.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range rows {
		hdd := mt.Times[hybrid.HDDOnly]
		lru := mt.Times[hybrid.LRU]
		hs := mt.Times[hybrid.HStorage]
		ssd := mt.Times[hybrid.SSDOnly]
		if !(ssd < hs && ssd < lru && hs < hdd && lru < hdd) {
			t.Errorf("Q%d ordering violated: hdd=%v lru=%v hs=%v ssd=%v", mt.Query, hdd, lru, hs, ssd)
		}
		// The paper's speedups are >= 2x for both queries.
		if float64(hdd)/float64(hs) < 2 {
			t.Errorf("Q%d: hStorage speedup only %.2fx over HDD-only", mt.Query, float64(hdd)/float64(hs))
		}
	}
}

// TestTable5Claims: Q9 produces random traffic at priorities 2 and 3 and
// nothing at other random priorities.
func TestTable5Claims(t *testing.T) {
	e := sharedTestEnv(t)
	run, err := e.RunSingle(9, hybrid.HStorage)
	if err != nil {
		t.Fatal(err)
	}
	if run.Storage.Class(3).ReadBlocks == 0 {
		t.Error("no priority-3 traffic (orders)")
	}
	for _, c := range []dss.Class{4, 5, 6} {
		if n := run.Storage.Class(c).ReadBlocks; n != 0 {
			t.Errorf("unexpected priority-%d traffic: %d blocks", c, n)
		}
	}
	// The priority-3 stream achieves a real hit ratio.
	cs := run.Storage.Class(3)
	if ratio := float64(cs.ReadHits) / float64(cs.ReadBlocks); ratio < 0.2 {
		t.Errorf("priority-3 hit ratio %.2f", ratio)
	}
}

// TestTable7Claims: Q18 temp reads hit >= 90% under hStorage-DB and the
// LRU ratio is strictly worse; sequential reads hit 0 under hStorage-DB.
func TestTable7Claims(t *testing.T) {
	e := sharedTestEnv(t)
	hs, lru, err := e.Table7()
	if err != nil {
		t.Fatal(err)
	}
	get := func(rows []PrioRow, label string) PrioRow {
		for _, r := range rows {
			if r.Label == label {
				return r
			}
		}
		t.Fatalf("row %q missing", label)
		return PrioRow{}
	}
	hsTemp, lruTemp := get(hs, "temp"), get(lru, "temp")
	if hsTemp.Ratio() < 0.90 {
		t.Errorf("hStorage temp read hit ratio %.3f, paper reports 100%%", hsTemp.Ratio())
	}
	if lruTemp.Ratio() >= hsTemp.Ratio() {
		t.Errorf("LRU temp ratio %.3f not worse than hStorage %.3f", lruTemp.Ratio(), hsTemp.Ratio())
	}
	if get(hs, "sequential").Hits != 0 {
		t.Error("hStorage cached sequential blocks in Q18")
	}
}

// TestFig9Claims: Q18 under hStorage-DB beats LRU by a wide margin.
func TestFig9Claims(t *testing.T) {
	e := sharedTestEnv(t)
	rows, err := e.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	mt := rows[0]
	if float64(mt.Times[hybrid.LRU])/float64(mt.Times[hybrid.HStorage]) < 2 {
		t.Errorf("Q18: LRU %v vs hStorage %v — expected >= 2x gap",
			mt.Times[hybrid.LRU], mt.Times[hybrid.HStorage])
	}
}
