package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/iosched"
	"hstoragedb/internal/lsm"
	"hstoragedb/internal/obs"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/shard"
)

// LSMRun is the outcome of the backend experiment on one arm: a
// write-heavy OLTP mix (single-row balance updates) over one engine
// instance mounted on the given storage backend, with per-transaction
// foreground latency recorded at commit.
type LSMRun struct {
	// Arm names the configuration: "heap" (extent store baseline),
	// "lsm" (LSM backend, maintenance under ClassCompaction), or
	// "lsm-nocls" (ablation: maintenance under the write-buffer class,
	// polluting the cache the way a classification-unaware stack would).
	Arm string

	// Txns counts committed update transactions; Retries the deadlock
	// losses that were retried.
	Txns    int64
	Retries int64
	// Elapsed is the virtual makespan; CommitsPerSec is Txns over it.
	Elapsed       time.Duration
	CommitsPerSec float64
	// P50/P99 are foreground transaction latencies (admission to
	// durable commit, virtual time) over the measured phase.
	P50 time.Duration
	P99 time.Duration

	// Backend maintenance during the measured phase: memtable flushes,
	// compaction sweeps and their block traffic (all zero on the heap).
	Flushes               int64
	Compactions           int64
	FlushWriteBlocks      int64
	CompactionReadBlocks  int64
	CompactionWriteBlocks int64
	TrimBlocks            int64
	// WriteAmp is the compaction write amplification: total maintenance
	// writes over the flushed pages, (flush + compaction) / flush.
	// 1.0 means no compaction ran; 0 means nothing flushed (heap).
	WriteAmp float64

	// Cache-level mechanism counters (measured-phase deltas). The
	// classification's effect shows up here deterministically, before
	// any latency it causes: CompactionClassBlocks counts blocks the
	// storage system served under dss.ClassCompaction (zero in the
	// ablation arm, whose maintenance rides the write-buffer class);
	// CacheWriteAllocs and CacheEvictions count flash-cache write
	// admissions and evictions — the ablation arm's maintenance writes
	// are admitted and then evict resident foreground blocks, which is
	// exactly the pollution the compaction class exists to prevent.
	CompactionClassBlocks int64
	CacheWriteAllocs      int64
	CacheEvictions        int64
}

// Backend-experiment sizing: one shard whose accounts slice spans ~10x
// its buffer pool, so the update stream continuously destages dirty
// pages into the backend, and an LSM geometry small enough that the
// measured phase covers several flush/compaction cycles.
const (
	lsmAccounts  = 8192 // rows; with lsmPad, ~10x the pool in pages
	lsmBalance   = 1000
	lsmPad       = 800 // filler bytes per row: ~9 rows/page
	lsmBPPages   = 96
	lsmCache     = 160
	lsmCkptEach  = 150     // checkpoint cadence in commits
	lsmMemtable  = 64      // pages buffered before a flush
	lsmL0Tables  = 4       // flushes before a compaction
	lsmProbeLats = 1 << 16 // latency sample cap per run
)

// lsmArm describes one configuration of the sweep.
type lsmArm struct {
	name    string
	backend func() pagestore.Backend // nil = heap
	noClass bool
}

func lsmArms() []lsmArm {
	mk := func() pagestore.Backend {
		return lsm.New(lsm.Config{MemtablePages: lsmMemtable, L0Tables: lsmL0Tables})
	}
	return []lsmArm{
		{name: "heap"},
		{name: "lsm", backend: mk},
		{name: "lsm-nocls", backend: mk, noClass: true},
	}
}

// runLSMArm builds a fresh single-shard cluster on the arm's backend,
// loads the accounts table, warms up, then measures totalTxns update
// transactions across the workers while a background checkpointer
// truncates the log (each checkpoint also syncs the backend, so LSM
// flushes ride the same cadence a production system would force).
func runLSMArm(arm lsmArm, workers, totalTxns int, seed int64, set *obs.Set) (LSMRun, error) {
	run := LSMRun{Arm: arm.name}
	c, err := shard.New(shard.Config{
		Shards: 1,
		Storage: hybrid.Config{
			Mode:        hybrid.HStorage,
			CacheBlocks: lsmCache,
			// A tight background budget keeps compaction sweeps from
			// crowding the device during their bursts — the regime the
			// compaction class is designed for. Both arms run under the
			// same budget; only the classification differs.
			Sched: iosched.Config{BackgroundShare: 0.1},
		},
		BufferPoolPages:        lsmBPPages,
		WorkMem:                4096,
		CPUPerTuple:            300 * time.Nanosecond,
		WAL:                    wal.Config{SegmentPages: 256, GroupCommitWindow: 50 * time.Microsecond},
		Obs:                    set,
		Backend:                arm.backend,
		DisableCompactionClass: arm.noClass,
	})
	if err != nil {
		return run, err
	}
	a, err := c.LoadAccounts(lsmAccounts, lsmBalance, lsmPad)
	if err != nil {
		return run, err
	}

	rs := c.NewSession()
	warm := totalTxns / 4
	if warm < 4*workers {
		warm = 4 * workers
	}
	warmTxns, _, _, _, err := lsmWorkers(c, a, workers, warm/workers+1, seed+1000, 0)
	if err != nil {
		return run, fmt.Errorf("lsm warmup %s: %w", arm.name, err)
	}
	c.Wait(rs)
	if err := c.Checkpoint(rs); err != nil {
		return run, err
	}
	startAt := c.Wait(rs)

	mgr := c.Shard(0).Inst.Mgr
	maint0 := mgr.MaintStats()
	sys0 := c.Shard(0).Inst.Sys.Stats()
	tm := c.Shard(0).TM

	stop := make(chan struct{})
	ckptDone := make(chan error, 1)
	ckptSess := c.NewSession()
	ckptSess.AdvanceTo(startAt)
	go func() {
		var last int64
		for {
			select {
			case <-stop:
				ckptDone <- nil
				return
			default:
			}
			if commits := tm.Commits(); commits-last >= lsmCkptEach {
				if err := c.Checkpoint(ckptSess); err != nil {
					ckptDone <- err
					return
				}
				last = commits
			} else {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	per := totalTxns / workers
	if per < 1 {
		per = 1
	}
	txns, retries, elapsed, lats, err := lsmWorkers(c, a, workers, per, seed, startAt)
	close(stop)
	if cerr := <-ckptDone; err == nil && cerr != nil {
		err = fmt.Errorf("checkpointer: %w", cerr)
	}
	if err != nil {
		return run, fmt.Errorf("lsm %s: %w", arm.name, err)
	}
	c.Wait(rs)

	run.Txns = txns
	run.Retries = retries
	run.Elapsed = elapsed
	if elapsed > 0 {
		run.CommitsPerSec = float64(txns) * float64(time.Second) / float64(elapsed)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		run.P50 = lats[n/2]
		run.P99 = lats[n*99/100]
	}
	maint := mgr.MaintStats()
	run.Flushes = maint.Flushes - maint0.Flushes
	run.Compactions = maint.Compactions - maint0.Compactions
	run.FlushWriteBlocks = maint.FlushWriteBlocks - maint0.FlushWriteBlocks
	run.CompactionReadBlocks = maint.CompactionReadBlocks - maint0.CompactionReadBlocks
	run.CompactionWriteBlocks = maint.CompactionWriteBlocks - maint0.CompactionWriteBlocks
	run.TrimBlocks = maint.TrimBlocks - maint0.TrimBlocks
	if run.FlushWriteBlocks > 0 {
		run.WriteAmp = float64(run.FlushWriteBlocks+run.CompactionWriteBlocks) / float64(run.FlushWriteBlocks)
	}
	sys := c.Shard(0).Inst.Sys.Stats()
	run.CompactionClassBlocks = sys.PerClass[dss.ClassCompaction].AccessedBlocks -
		sys0.PerClass[dss.ClassCompaction].AccessedBlocks
	run.CacheWriteAllocs = sys.WriteAllocs - sys0.WriteAllocs
	run.CacheEvictions = sys.Evictions - sys0.Evictions

	// Every unit update added 1: the final total audits atomicity.
	if total, err := a.TotalBalance(rs); err != nil {
		return run, err
	} else if want := lsmAccounts*lsmBalance + txns + warmTxns; total != want {
		return run, fmt.Errorf("lsm %s: balance drifted: %d != %d", arm.name, total, want)
	}
	return run, nil
}

// lsmWorkers drives `workers` concurrent update streams: each performs
// txnsPerWorker single-row balance increments on uniformly random
// accounts, recording the foreground latency (Begin to durable commit,
// virtual time) of every measured transaction. Deadlock losses retry
// transparently.
func lsmWorkers(c *shard.Cluster, a *shard.Accounts, workers, txnsPerWorker int, seed int64, startAt time.Duration) (txns, retries int64, elapsed time.Duration, lats []time.Duration, err error) {
	if workers < 1 {
		workers = 1
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	sessions := make([]*shard.Session, workers)
	for i := range sessions {
		sessions[i] = c.NewSession()
		sessions[i].AdvanceTo(startAt)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(73000 + seed + int64(i)))
			rs := sessions[i]
			var n, r int64
			mine := make([]time.Duration, 0, txnsPerWorker)
			for k := 0; k < txnsPerWorker; k++ {
				key := rng.Int63n(a.N)
				lat, rr, uerr := lsmUpdate(rs, a, key)
				r += rr
				if uerr != nil {
					mu.Lock()
					if err == nil {
						err = uerr
					}
					mu.Unlock()
					break
				}
				n++
				mine = append(mine, lat)
			}
			mu.Lock()
			txns += n
			retries += r
			if len(lats) < lsmProbeLats {
				lats = append(lats, mine...)
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if err != nil {
		return txns, retries, 0, lats, err
	}
	for _, s := range sessions {
		if t := s.Now() - startAt; t > elapsed {
			elapsed = t
		}
	}
	return txns, retries, elapsed, lats, nil
}

// lsmUpdate runs one unit increment, retrying deadlock losses with the
// same key, and returns the virtual latency of the successful attempt.
func lsmUpdate(rs *shard.Session, a *shard.Accounts, key int64) (time.Duration, int64, error) {
	var retries int64
	for {
		t, err := rs.Begin()
		if err != nil {
			return 0, retries, err
		}
		// The latency clock starts at admission: Begin blocks on the
		// cluster's checkpoint drain barrier, a stall every arm pays
		// identically, which would otherwise bury the backend-dependent
		// tail (cache-miss reads, group-commit forces) under it.
		start := rs.Now()
		err = a.Add(t, key, 1)
		if err == nil {
			err = t.Commit()
		} else {
			_ = t.Abort()
		}
		if err == nil {
			return rs.Now() - start, retries, nil
		}
		if !errors.Is(err, txn.ErrDeadlock) || retries >= 50 {
			return 0, retries, err
		}
		retries++
		runtime.Gosched()
	}
}

// LSMAll runs the backend sweep: the heap baseline, the LSM backend
// with classified maintenance, and the unclassified ablation.
func LSMAll(workers, totalTxns int, seed int64, set *obs.Set) ([]LSMRun, error) {
	if workers < 1 {
		workers = 8
	}
	if totalTxns <= 0 {
		totalTxns = 600
	}
	var out []LSMRun
	for _, arm := range lsmArms() {
		run, err := runLSMArm(arm, workers, totalTxns, seed, set)
		if err != nil {
			return nil, err
		}
		out = append(out, run)
	}
	return out, nil
}

// FormatLSM renders the backend report: per arm, commit throughput,
// foreground latency percentiles, and the maintenance traffic where
// compaction classification earns (or, ablated, loses) its keep.
func FormatLSM(runs []LSMRun) string {
	var b strings.Builder
	b.WriteString("Storage backends: write-heavy OLTP on heap vs LSM, with and without compaction classification\n")
	fmt.Fprintf(&b, "%-10s %8s %12s %10s %10s %8s %6s %8s %8s %8s %6s\n",
		"arm", "txns", "commits/s", "p50", "p99", "flushes", "compc", "wr-amp", "trims", "evict", "retry")
	for _, r := range runs {
		fmt.Fprintf(&b, "%-10s %8d %12.1f %10v %10v %8d %6d %8.2f %8d %8d %6d\n",
			r.Arm, r.Txns, r.CommitsPerSec, r.P50, r.P99,
			r.Flushes, r.Compactions, r.WriteAmp, r.TrimBlocks, r.CacheEvictions, r.Retries)
	}
	b.WriteString("wr-amp = (flush + compaction writes) / flush writes; evict = flash-cache evictions during the measured phase.\n")
	b.WriteString("lsm-nocls submits maintenance under the write-buffer class: its writes are admitted to the cache and evict resident foreground blocks (pollution ablation)\n")
	return b.String()
}
