package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/iosched"
	"hstoragedb/internal/obs"
	"hstoragedb/internal/simclock"
)

// The hotpath experiment is the scheduler's raw-speed report card. Unlike
// every other experiment in this package it measures the simulator itself
// — wall-clock nanoseconds per scheduling decision, heap allocations per
// request — rather than simulated device time, because the indexed pick
// structures, pooled requests and batched completions exist to make large
// simulated queue depths affordable to run. Three arms:
//
//   - a pending-queue depth sweep comparing the indexed picker against
//     the reference linear picker (Config.LinearPick), the experiment
//     analogue of BenchmarkSubmitGrant;
//   - a worker-count sweep over the opportunistic submit path across two
//     devices, which exercises the per-scheduler lock sharding;
//   - a deterministic anticipatory arm on a simulated HDD: two registered
//     streams at distant LBA ranges, with the quanta policy off and on,
//     reporting the `iosched.band.wait` histogram before/after.
//
// The wall-clock arms report ns_per_op / grants_per_sec / allocs_per_op —
// host-dependent fields benchdiff treats as informational perf deltas,
// not drift. The anticipatory arm runs entirely in virtual time and is
// deterministic, so its fields do participate in drift checks.

// HotpathDepthRun is one (depth, picker) point of the queue-depth sweep.
type HotpathDepthRun struct {
	Depth  int    `json:"depth"`
	Picker string `json:"picker"` // "indexed" or "linear"

	// Ops counts submitted requests; Grants the device accesses they
	// became (identical across pickers — the differential test holds the
	// grant sequences equal, so the ratio of GrantsPerSec is purely a
	// ratio of scheduler CPU cost).
	Ops    int64 `json:"ops"`
	Grants int64 `json:"grants"`

	NsPerOp      float64 `json:"ns_per_op"`
	GrantsPerSec float64 `json:"grants_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// HotpathWorkerRun is one point of the opportunistic contention sweep:
// `Workers` goroutines submitting across two devices in one group.
type HotpathWorkerRun struct {
	Workers int `json:"workers"`
	// Procs is runtime.GOMAXPROCS at measurement time: with fewer procs
	// than workers the sweep measures contention overhead only, not
	// parallel speedup.
	Procs int   `json:"procs"`
	Ops   int64 `json:"ops"`

	NsPerOp      float64 `json:"ns_per_op"`
	GrantsPerSec float64 `json:"grants_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// HotpathAnticipatoryRun is one quantum setting of the HDD two-stream
// arm. All fields are virtual-time deterministic.
type HotpathAnticipatoryRun struct {
	Quantum int `json:"quantum"` // blocks; 0 = policy off

	// StreamSwitches counts deliberate quantum redirects; Boosted counts
	// aging-bound overrides — the "thrash" the quantum is meant to
	// replace with scheduled, bounded switches.
	StreamSwitches int64 `json:"stream_switches"`
	Boosted        int64 `json:"boosted"`

	// BandWait quantiles of the shared `iosched.band.wait` histogram for
	// the streams' class: the scheduler-imposed grant delay both streams
	// observed.
	BandWaitP50 time.Duration `json:"band_wait_p50_ns"`
	BandWaitP99 time.Duration `json:"band_wait_p99_ns"`

	// NearMaxWait/FarMaxWait are the per-stream worst-case waits (the
	// aging bound caps both; the far stream's is the one the quantum
	// should pull down).
	NearMaxWait time.Duration `json:"near_max_wait_ns"`
	FarMaxWait  time.Duration `json:"far_max_wait_ns"`

	// Makespan is the later of the two stream clocks at the end: the
	// seek-locality cost the quantum paid for the fairness above.
	Makespan time.Duration `json:"makespan_ns"`
}

// HotpathResult aggregates the three arms.
type HotpathResult struct {
	Depth        []HotpathDepthRun        `json:"depth"`
	Workers      []HotpathWorkerRun       `json:"workers"`
	Anticipatory []HotpathAnticipatoryRun `json:"anticipatory"`
}

// Sweep sizing. Total submissions per point are fixed so every depth
// point does the same work; the depth only changes how deep the standing
// queue is when each pick runs.
const (
	hotpathOpsPerPoint = 16384
	hotpathWorkerOps   = 32768
	hotpathAntReads    = 200 // per stream
	hotpathAntFarLBA   = 4 << 20
	hotpathAntQuantum  = 8
	// The anticipatory arm widens the aging bound so the quantum has
	// room to act: with the 10ms default and ~5ms cross-stream seeks the
	// far stream goes overdue after two near grants, and the redirect is
	// (correctly) suppressed whenever an aging decision is in play — the
	// arm would measure the aging boost twice, not the quantum.
	hotpathAntAgingBound = 50 * time.Millisecond
	hotpathNearTenant    = dss.TenantID(1)
	hotpathFarTenant     = dss.TenantID(2)
	hotpathMeasuredClass = dss.Class(2)
)

// runHotpathDepth measures one (depth, picker) point: rounds of `depth`
// background submissions followed by a drain, so every grant picks from
// a standing queue about `depth` deep. Background submissions are the
// one public non-blocking enqueue, which keeps the measured loop
// single-threaded — wall time is scheduler CPU, not goroutine wakeups.
func runHotpathDepth(depth int, linear bool) HotpathDepthRun {
	run := HotpathDepthRun{Depth: depth, Picker: "indexed"}
	if linear {
		run.Picker = "linear"
	}
	dev := device.New(device.Cheetah15K())
	g := iosched.NewGroup(iosched.Config{
		Readahead:  iosched.DisableReadahead,
		LinearPick: linear,
	})
	s := g.Attach(dev, dss.DefaultPolicySpace().Sequential())

	// LBA plan: stride 3 over a wide range, rotated per round, so
	// neither coalescing nor write absorption collapses the queue.
	lbas := make([]int64, depth)
	for i := range lbas {
		lbas[i] = int64(3 * i)
	}
	rounds := hotpathOpsPerPoint / depth
	if rounds < 1 {
		rounds = 1
	}
	oneRound := func(round int) {
		base := int64(round) * int64(depth) * 4
		at := time.Duration(round) * time.Millisecond
		for i := range lbas {
			at += time.Microsecond
			s.SubmitBackground(at, device.Write, base+lbas[i], 1,
				dss.ClassWriteBuffer, dss.DefaultTenant)
		}
		g.Drain()
	}

	oneRound(-1) // warmup: pools, band trees and boundary maps settle
	g.ResetStats()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for round := 0; round < rounds; round++ {
		oneRound(round)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	run.Ops = int64(rounds) * int64(depth)
	run.Grants = s.Stats().Granted
	run.NsPerOp = float64(elapsed.Nanoseconds()) / float64(run.Ops)
	if elapsed > 0 {
		run.GrantsPerSec = float64(run.Grants) * float64(time.Second) / float64(elapsed)
	}
	run.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(run.Ops)
	return run
}

// runHotpathWorkers measures the opportunistic submit path under
// contention: `workers` goroutines split a fixed op count across two
// devices in one group. With per-scheduler locks the two device
// populations only share the group's atomics, so throughput should hold
// up (or improve) as workers grow.
func runHotpathWorkers(workers int) HotpathWorkerRun {
	run := HotpathWorkerRun{Workers: workers, Procs: runtime.GOMAXPROCS(0)}
	hdd := device.New(device.Cheetah15K())
	ssd := device.New(device.Intel320())
	g := iosched.NewGroup(iosched.Config{Readahead: iosched.DisableReadahead})
	seq := dss.DefaultPolicySpace().Sequential()
	scheds := []*iosched.Scheduler{g.Attach(hdd, seq), g.Attach(ssd, seq)}

	per := hotpathWorkerOps / workers
	warm := func(w int) {
		s := scheds[w%2]
		at := time.Duration(w) * time.Second
		for i := 0; i < 64; i++ {
			at += time.Microsecond
			s.Submit(at, device.Read, int64(i), 1, hotpathMeasuredClass, dss.DefaultTenant, nil)
		}
	}
	for w := 0; w < workers; w++ {
		warm(w)
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := scheds[w%2]
			// Distinct virtual-time cursor and LBA region per worker so
			// workers contend on locks, not on device state semantics.
			at := time.Duration(w+1) * time.Hour
			base := int64(w) << 32
			for i := 0; i < per; i++ {
				at += time.Microsecond
				s.Submit(at, device.Read, base+int64(7*i), 1,
					hotpathMeasuredClass, dss.DefaultTenant, nil)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	run.Ops = int64(workers) * int64(per)
	run.NsPerOp = float64(elapsed.Nanoseconds()) / float64(run.Ops)
	if elapsed > 0 {
		run.GrantsPerSec = float64(run.Ops) * float64(time.Second) / float64(elapsed)
	}
	run.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(run.Ops)
	return run
}

// runHotpathAnticipatory runs the deterministic HDD two-stream arm for
// one quantum setting: a near stream walking the low LBAs and a far
// stream at hotpathAntFarLBA, both registered, so the barrier dispatch
// interleaves them request by request. Without the quantum the elevator
// parks on the near stream until the aging bound boosts the far one —
// giant periodic seeks and a far-stream wait pinned at the bound. With
// it, switches happen every few blocks and the shared band.wait tail
// drops well under the bound.
func runHotpathAnticipatory(quantum int) HotpathAnticipatoryRun {
	run := HotpathAnticipatoryRun{Quantum: quantum}
	set := obs.NewSet()
	dev := device.New(device.Cheetah15K())
	g := iosched.NewGroup(iosched.Config{
		Readahead:           iosched.DisableReadahead,
		AgingBound:          hotpathAntAgingBound,
		AnticipatoryQuantum: quantum,
		Obs:                 set,
	})
	s := g.Attach(dev, dss.DefaultPolicySpace().Sequential())
	// Park the head low so the near stream owns the elevator at start.
	dev.Access(0, device.Read, 0, 1)

	var near, far simclock.Clock
	g.Register(&near)
	g.Register(&far)
	var wg sync.WaitGroup
	stream := func(clk *simclock.Clock, base int64, tenant dss.TenantID) {
		defer wg.Done()
		defer g.Unregister(clk)
		for i := 0; i < hotpathAntReads; i++ {
			// Stride 2 keeps same-stream neighbours from coalescing into
			// one grant, which would hide the per-request waits.
			end := s.Submit(clk.Now(), device.Read, base+int64(2*i), 1,
				hotpathMeasuredClass, tenant, clk)
			clk.AdvanceTo(end)
		}
	}
	wg.Add(2)
	go stream(&near, 0, hotpathNearTenant)
	go stream(&far, hotpathAntFarLBA, hotpathFarTenant)
	wg.Wait()
	g.Drain()

	st := s.Stats()
	run.StreamSwitches = st.StreamSwitches
	run.Boosted = st.Boosted
	hv := set.Registry().Histogram("iosched.band.wait",
		obs.L("dev", dev.Spec().Name), obs.LInt("class", int64(hotpathMeasuredClass)))
	h := hv.Snapshot()
	run.BandWaitP50 = h.Quantile(0.50)
	run.BandWaitP99 = h.Quantile(0.99)
	ts := s.TenantStats()
	run.NearMaxWait = ts[hotpathNearTenant].MaxWait
	run.FarMaxWait = ts[hotpathFarTenant].MaxWait
	run.Makespan = near.Now()
	if f := far.Now(); f > run.Makespan {
		run.Makespan = f
	}
	return run
}

// HotpathAll runs the three arms. The wall-clock arms are sized to run
// in about a second each on a laptop-class host.
func HotpathAll() HotpathResult {
	var res HotpathResult
	for _, depth := range []int{16, 256, 4096} {
		for _, linear := range []bool{false, true} {
			res.Depth = append(res.Depth, runHotpathDepth(depth, linear))
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		res.Workers = append(res.Workers, runHotpathWorkers(workers))
	}
	for _, quantum := range []int{0, hotpathAntQuantum} {
		res.Anticipatory = append(res.Anticipatory, runHotpathAnticipatory(quantum))
	}
	return res
}

// FormatHotpath renders the hotpath report: the depth sweep with the
// indexed-over-linear speedup, the worker scaling, and the anticipatory
// before/after.
func FormatHotpath(res HotpathResult) string {
	var b strings.Builder
	b.WriteString("Scheduler hot path: wall-clock cost per scheduling decision (not simulated time)\n\n")

	b.WriteString("Queue-depth sweep (background enqueue + drain; grant sequences identical across pickers):\n")
	fmt.Fprintf(&b, "%7s %8s %9s %9s %12s %10s %9s\n",
		"depth", "picker", "ops", "ns/op", "grants/s", "allocs/op", "speedup")
	linNs := make(map[int]float64)
	for _, r := range res.Depth {
		if r.Picker == "linear" {
			linNs[r.Depth] = r.NsPerOp
		}
	}
	for _, r := range res.Depth {
		speedup := "-"
		if r.Picker == "indexed" && linNs[r.Depth] > 0 && r.NsPerOp > 0 {
			speedup = fmt.Sprintf("%.2fx", linNs[r.Depth]/r.NsPerOp)
		}
		fmt.Fprintf(&b, "%7d %8s %9d %9.0f %12.0f %10.2f %9s\n",
			r.Depth, r.Picker, r.Ops, r.NsPerOp, r.GrantsPerSec, r.AllocsPerOp, speedup)
	}

	b.WriteString("\nOpportunistic submit scaling (two devices, per-scheduler locks):\n")
	fmt.Fprintf(&b, "%8s %6s %9s %9s %12s %10s\n", "workers", "procs", "ops", "ns/op", "submits/s", "allocs/op")
	for _, r := range res.Workers {
		fmt.Fprintf(&b, "%8d %6d %9d %9.0f %12.0f %10.2f\n",
			r.Workers, r.Procs, r.Ops, r.NsPerOp, r.GrantsPerSec, r.AllocsPerOp)
	}
	b.WriteString("with procs < workers this measures contention overhead, not parallel speedup\n")

	b.WriteString("\nAnticipatory HDD dispatch (two registered streams, near/far; virtual time, deterministic):\n")
	fmt.Fprintf(&b, "%8s %9s %8s %12s %12s %12s %12s %12s\n",
		"quantum", "switches", "boosts", "wait-p50", "wait-p99", "near-max", "far-max", "makespan")
	for _, r := range res.Anticipatory {
		fmt.Fprintf(&b, "%8d %9d %8d %12s %12s %12s %12s %12s\n",
			r.Quantum, r.StreamSwitches, r.Boosted,
			fmtLat(r.BandWaitP50), fmtLat(r.BandWaitP99),
			fmtLat(r.NearMaxWait), fmtLat(r.FarMaxWait), fmtLat(r.Makespan))
	}
	fmt.Fprintf(&b, "quantum 0 = elevator + aging (%s bound) only; the quantum trades bounded extra seeks for a band.wait tail well under the bound\n",
		hotpathAntAgingBound)
	return b.String()
}
