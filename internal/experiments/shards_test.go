package experiments

import (
	"strings"
	"testing"
)

// TestShardsSmoke runs the shard-scaling experiment small: one and two
// shards with a cross-shard arm must complete, conserve the total
// balance (RunShards errors otherwise), and account every cross-shard
// transfer to the 2PC coordinator.
func TestShardsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment driver")
	}
	r1, err := RunShards(1, 2, 40, 0.5, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunShards(2, 2, 40, 0.5, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []ShardsRun{r1, r2} {
		if r.Txns == 0 || r.TxnsPerSec <= 0 || r.LocalCommits == 0 {
			t.Fatalf("empty run: %+v", r)
		}
	}
	// A single shard never crosses; two shards at xshard 0.5 must.
	if r1.CrossShard != 0 || r1.TwoPCCommits != 0 {
		t.Fatalf("single shard ran 2PC: %+v", r1)
	}
	if r2.CrossShard == 0 || r2.TwoPCCommits != r2.CrossShard {
		t.Fatalf("cross-shard accounting inconsistent: %+v", r2)
	}
	out := FormatShards([]ShardsRun{r1, r2})
	if !strings.Contains(out, "2PC") || !strings.Contains(out, "txns/s") {
		t.Fatalf("report malformed:\n%s", out)
	}
}
