package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/iosched"
	"hstoragedb/internal/simclock"
	"hstoragedb/internal/tpch"
)

// tenantsAgingBound is the aging bound the tenants experiment runs both
// arms under. It is deliberately larger than the scheduler default: the
// fairness window a weight-1 tenant is asked to tolerate grows with the
// weight skew, and a tight bound would let aging (which is FIFO by age)
// override the weighted order before shares can converge. The
// experiment asserts that no request ever waits past this bound.
const tenantsAgingBound = 100 * time.Millisecond

// TenantSpec configures one tenant of the multi-tenant fairness
// experiment: its identity and its fair-share weight.
type TenantSpec struct {
	ID     dss.TenantID
	Weight float64
}

// DefaultTenantSpecs returns the skewed population the tenants
// experiment uses by default: four tenants with weights 4:2:1:1.
func DefaultTenantSpecs() []TenantSpec {
	return []TenantSpec{{1, 4}, {2, 2}, {3, 1}, {4, 1}}
}

// TenantResult is one tenant's outcome in a tenants-experiment run.
type TenantResult struct {
	ID     dss.TenantID
	Weight float64

	// ShareWant is the tenant's weight fraction of the population;
	// ShareGot is its measured fraction of foreground blocks granted on
	// the contended device during the saturated window (from the run's
	// start until the first scan stream completes, i.e. while every
	// tenant was backlogged).
	ShareWant float64
	ShareGot  float64
	// ScanBlocks is the tenant's granted foreground blocks on the
	// contended device inside that window.
	ScanBlocks int64

	// Commits counts the tenant's OLTP transactions; CommitsPerSec
	// normalizes them by the OLTP phase's virtual makespan.
	Commits       int64
	CommitsPerSec float64

	// P50, P99 and MaxLat summarize the tenant's end-to-end request
	// latency across both devices; MaxWait is the longest any of its
	// requests waited for a grant, which the aging bound caps.
	P50, P99, MaxLat time.Duration
	MaxWait          time.Duration
}

// TenantsRun is the outcome of the multi-tenant fairness experiment
// under one storage mode and one scheduler arm.
type TenantsRun struct {
	Mode hybrid.Mode
	// Fair is true for the weighted-fair-share arm; false for the
	// class-only baseline (today's scheduler: same classes, no tenant
	// differentiation).
	Fair bool
	// AgingBound is the starvation bound both arms ran under.
	AgingBound time.Duration

	Tenants []TenantResult
	// Jain is Jain's fairness index over the tenants' weight-normalized
	// shares x_i = ShareGot_i / ShareWant_i: 1.0 means every tenant got
	// exactly its weighted entitlement.
	Jain float64
	// MaxShareErr is the largest |ShareGot - ShareWant| across tenants.
	MaxShareErr float64
	// WindowBlocks is the total foreground blocks granted on the
	// contended device during the saturated window; Makespan the
	// latest stream clock after background settle.
	WindowBlocks int64
	Makespan     time.Duration
	// Commits aggregates OLTP transactions across tenants.
	Commits int64
	// ShareEvictions reports how often the priority cache redirected an
	// eviction to an over-share tenant's block (HStorage mode only).
	ShareEvictions int64
}

// RunTenants runs the multi-tenant contention workload on one storage
// configuration: every tenant drives one saturating scan stream and one
// transactional OLTP worker, concurrently.
//
// The scan streams submit sequential-class reads over disjoint LBA
// regions straight through the dss.Storage interface as a registered
// closed population — deliberately below the DBMS buffer pool, because
// co-tenant scans of the same relation would otherwise dedupe in the
// shared pool and the device would never see the per-tenant contention
// being measured. The OLTP workers run through the full engine (buffer
// pool, lock manager, WAL) via tpch.RunOLTPWorkers with per-worker
// tenant bindings. Shares are measured on the contended device (the
// HDD when the mode has one, else the SSD) over the window in which
// every scan stream is still backlogged.
func (e *Env) RunTenants(mode hybrid.Mode, specs []TenantSpec, scanBlocks, txnsPerTenant int, fair bool) (TenantsRun, error) {
	run := TenantsRun{Mode: mode, Fair: fair, AgingBound: tenantsAgingBound}
	if len(specs) == 0 {
		specs = DefaultTenantSpecs()
	}
	for _, sp := range specs {
		if sp.Weight <= 0 || sp.ID == dss.DefaultTenant {
			return run, fmt.Errorf("tenants: spec %+v needs a positive weight and a non-zero tenant ID", sp)
		}
	}
	sched := iosched.Config{AgingBound: tenantsAgingBound}
	if fair {
		sched.TenantWeights = make(map[dss.TenantID]float64, len(specs))
		for _, sp := range specs {
			sched.TenantWeights[sp.ID] = sp.Weight
		}
	}
	inst, err := e.DS.DB.NewInstance(engine.InstanceConfig{
		Storage: hybrid.Config{
			Mode:        mode,
			CacheBlocks: e.cacheBlocks(),
			Sched:       sched,
		},
		BufferPoolPages: e.bpPages(),
		WorkMem:         e.Cfg.WorkMem,
		CPUPerTuple:     300 * time.Nanosecond,
		Obs:             e.Cfg.Obs,
	})
	if err != nil {
		return run, err
	}

	walSess := inst.NewSession()
	log, err := wal.New(&walSess.Clk, inst.Mgr, oltpWALConfig())
	if err != nil {
		return run, err
	}
	tm := txn.NewManager(inst, log)
	if err := tm.Checkpoint(walSess); err != nil {
		return run, err
	}
	inst.ResetStats()

	grp := inst.Sys.Sched()
	contended := inst.Sys.HDD()
	if contended == nil {
		contended = inst.Sys.SSD()
	}
	var contSched *iosched.Scheduler
	for _, s := range grp.Schedulers() {
		if s.Device() == contended {
			contSched = s
		}
	}

	seqClass := dss.DefaultPolicySpace().Sequential()
	clocks := make([]*simclock.Clock, len(specs))
	for i := range specs {
		clocks[i] = &simclock.Clock{}
		grp.Register(clocks[i])
	}

	var (
		wg       sync.WaitGroup
		snapOnce sync.Once
		window   map[dss.TenantID]iosched.TenantStats
	)
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp TenantSpec) {
			defer wg.Done()
			clk := clocks[i]
			defer grp.Unregister(clk)
			// Disjoint per-tenant regions past the dataset, spaced so
			// switching tenants costs a real positioning penalty.
			start := e.Data + int64(i)*(int64(scanBlocks)+8192)
			for b := 0; b < scanBlocks; b++ {
				done := inst.Sys.Submit(clk.Now(), dss.Request{
					Op:     device.Read,
					LBA:    start + int64(b),
					Blocks: 1,
					Class:  seqClass,
					Stream: clk,
					Tenant: sp.ID,
				})
				clk.AdvanceTo(done)
			}
			// The first stream to drain its demand closes the saturated
			// window: shares are meaningful only while every tenant is
			// backlogged. Snapshot before unregistering.
			snapOnce.Do(func() { window = contSched.TenantStats() })
		}(i, sp)
	}

	ids := make([]dss.TenantID, len(specs))
	for i, sp := range specs {
		ids[i] = sp.ID
	}
	var (
		workersRes tpch.WorkersResult
		workersErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		workersRes, workersErr = e.DS.RunOLTPWorkers(tm, inst, len(specs), txnsPerTenant, e.Cfg.Seed, 0, ids...)
	}()
	wg.Wait()
	if workersErr != nil {
		return run, workersErr
	}

	settle := inst.NewSession()
	inst.Mgr.Wait(&settle.Clk)

	if window == nil {
		window = contSched.TenantStats()
	}
	var totalWin int64
	for _, sp := range specs {
		totalWin += window[sp.ID].Blocks
	}
	var totalWeight float64
	for _, sp := range specs {
		totalWeight += sp.Weight
	}
	full := contSched.TenantStats()

	// Per-tenant end-to-end latency merged across both devices.
	lat := make(map[dss.TenantID]device.LatencyHist)
	for _, dev := range []*device.Device{inst.Sys.SSD(), inst.Sys.HDD()} {
		if dev == nil {
			continue
		}
		for t, h := range dev.Stats().PerTenant {
			m := lat[dss.TenantID(t)]
			m.Merge(h)
			lat[dss.TenantID(t)] = m
		}
	}

	var sumX, sumX2 float64
	for i, sp := range specs {
		tr := TenantResult{
			ID:         sp.ID,
			Weight:     sp.Weight,
			ShareWant:  sp.Weight / totalWeight,
			ScanBlocks: window[sp.ID].Blocks,
			MaxWait:    full[sp.ID].MaxWait,
		}
		if totalWin > 0 {
			tr.ShareGot = float64(tr.ScanBlocks) / float64(totalWin)
		}
		d := workersRes.Drivers[i]
		tr.Commits = d.NewOrders + d.Payments + d.OrderStatuses
		if workersRes.Elapsed > 0 {
			tr.CommitsPerSec = float64(tr.Commits) * float64(time.Second) / float64(workersRes.Elapsed)
		}
		h := lat[sp.ID]
		tr.P50, tr.P99, tr.MaxLat = h.Quantile(0.50), h.Quantile(0.99), h.Max
		x := tr.ShareGot / tr.ShareWant
		sumX += x
		sumX2 += x * x
		if diff := tr.ShareGot - tr.ShareWant; diff > run.MaxShareErr {
			run.MaxShareErr = diff
		} else if -diff > run.MaxShareErr {
			run.MaxShareErr = -diff
		}
		run.Commits += tr.Commits
		run.Tenants = append(run.Tenants, tr)
	}
	if sumX2 > 0 {
		run.Jain = sumX * sumX / (float64(len(specs)) * sumX2)
	}
	run.WindowBlocks = totalWin
	run.ShareEvictions = inst.Sys.Stats().ShareEvictions

	for _, clk := range clocks {
		if t := clk.Now(); t > run.Makespan {
			run.Makespan = t
		}
	}
	if t := workersRes.Elapsed; t > run.Makespan {
		run.Makespan = t
	}
	if t := settle.Clk.Now(); t > run.Makespan {
		run.Makespan = t
	}

	// Leave the shared dataset consistent for the next run.
	if err := e.DS.RecomputeNextOrderKey(walSess); err != nil {
		return run, err
	}
	if err := log.Destroy(&walSess.Clk); err != nil {
		return run, err
	}
	return run, nil
}

// TenantsAll runs the tenants experiment across the flagship modes,
// fair shares off (the class-only baseline) and on, in that order: the
// SSD-only pair isolates scheduler fairness on a device where
// interleaving tenants is nearly free, and the hStorage pair adds the
// hybrid cache (per-tenant capacity shares) over the seek-bound HDD.
func (e *Env) TenantsAll(specs []TenantSpec, scanBlocks, txnsPerTenant int) ([]TenantsRun, error) {
	if scanBlocks <= 0 {
		scanBlocks = 3000
	}
	if txnsPerTenant <= 0 {
		txnsPerTenant = 30
	}
	out := make([]TenantsRun, 0, 4)
	for _, mode := range []hybrid.Mode{hybrid.SSDOnly, hybrid.HStorage} {
		for _, fair := range []bool{false, true} {
			run, err := e.RunTenants(mode, specs, scanBlocks, txnsPerTenant, fair)
			if err != nil {
				return nil, err
			}
			out = append(out, run)
		}
	}
	return out, nil
}

// FormatTenants renders the multi-tenant fairness report: per-tenant
// shares against weights, commit throughput, latency percentiles, and
// Jain's index, fair shares vs the class-only baseline.
func FormatTenants(runs []TenantsRun) string {
	var b strings.Builder
	b.WriteString("multi-tenant fairness experiment: weighted fair shares vs class-only scheduler\n")
	for _, r := range runs {
		arm := "class-only"
		if r.Fair {
			arm = "fair-shares"
		}
		fmt.Fprintf(&b, "\n%s, %s: Jain=%.3f maxShareErr=%.1f%% windowBlocks=%d commits=%d makespan=%s aging=%s shareEvict=%d\n",
			r.Mode, arm, r.Jain, 100*r.MaxShareErr, r.WindowBlocks, r.Commits, fmtDur(r.Makespan), r.AgingBound, r.ShareEvictions)
		fmt.Fprintf(&b, "  %-8s %-7s %11s %11s %11s %10s %12s %12s %12s\n",
			"tenant", "weight", "share-want", "share-got", "scan-blk", "commits/s", "p50", "p99", "max-wait")
		for _, t := range r.Tenants {
			fmt.Fprintf(&b, "  %-8d %-7.1f %10.1f%% %10.1f%% %11d %10.1f %12s %12s %12s\n",
				int(t.ID), t.Weight, 100*t.ShareWant, 100*t.ShareGot, t.ScanBlocks,
				t.CommitsPerSec, fmtLat(t.P50), fmtLat(t.P99), fmtLat(t.MaxWait))
		}
	}
	return b.String()
}
