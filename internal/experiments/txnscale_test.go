package experiments

import (
	"strings"
	"testing"

	"hstoragedb/internal/hybrid"
)

// TestTxnScaleSmoke runs the scaling experiment small: one and four
// workers in hStorage mode must complete, commit, and show the
// group-commit coordinator batching concurrent committers.
func TestTxnScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment driver")
	}
	e := sharedTestEnv(t)
	r1, err := e.RunTxnScale(hybrid.HStorage, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := e.RunTxnScale(hybrid.HStorage, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []TxnScaleRun{r1, r4} {
		if r.Txns == 0 || r.Commits == 0 || r.CommitsPerSec <= 0 {
			t.Fatalf("empty run: %+v", r)
		}
	}
	// Batch formation needs committers to overlap in real time, which a
	// loaded or single-core runner cannot guarantee — so assert only the
	// coordinator's accounting invariants here; the hbench sweep is
	// where the amortization itself is demonstrated.
	gc := r4.GroupCommit
	if gc.Batches <= 0 || gc.Batches > gc.Txns {
		t.Fatalf("group commit accounting inconsistent: %+v", gc)
	}
	out := FormatTxnScale([]TxnScaleRun{r1, r4})
	if !strings.Contains(out, "hStorage-DB") || !strings.Contains(out, "commits/s") {
		t.Fatalf("report malformed:\n%s", out)
	}
}
