package experiments

import (
	"strings"
	"testing"
	"time"

	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/hybrid"
)

func TestFormatFig4(t *testing.T) {
	shares := []TypeShare{{
		Query: 1,
		Requests: map[policy.RequestType]float64{
			policy.SequentialRequest: 1.0,
		},
		Blocks: map[policy.RequestType]float64{
			policy.SequentialRequest: 1.0,
		},
	}}
	out := FormatFig4(shares)
	if !strings.Contains(out, "Q1") || !strings.Contains(out, "100.0") {
		t.Fatalf("rendering:\n%s", out)
	}
}

func TestFormatModeTimes(t *testing.T) {
	rows := []ModeTimes{{
		Query: 9,
		Times: map[hybrid.Mode]time.Duration{
			hybrid.HDDOnly:  2 * time.Second,
			hybrid.LRU:      time.Second,
			hybrid.HStorage: 900 * time.Millisecond,
			hybrid.SSDOnly:  100 * time.Millisecond,
		},
	}}
	out := FormatModeTimes("title", rows)
	for _, want := range []string{"title", "Q9", "2s", "900ms", "100ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatTable4(t *testing.T) {
	out := FormatTable4([]Table4Row{{Query: 1, Accessed: 1000, Hits: 3, Ratio: 0.003}})
	if !strings.Contains(out, "1000") || !strings.Contains(out, "0.3%") {
		t.Fatalf("rendering:\n%s", out)
	}
}

func TestFormatPrioTable(t *testing.T) {
	rows := []PrioRow{{Label: "prio2", Accessed: 10, Hits: 9}}
	out := FormatPrioTable("t", map[string][]PrioRow{"hStorage-DB": rows}, []string{"hStorage-DB"})
	if !strings.Contains(out, "prio2") || !strings.Contains(out, "90.0%") {
		t.Fatalf("rendering:\n%s", out)
	}
}

func TestPrioRowRatioZero(t *testing.T) {
	if (PrioRow{}).Ratio() != 0 {
		t.Fatal("zero-access ratio not 0")
	}
}

func TestFormatTable9AndFig12(t *testing.T) {
	t9 := &ThroughputResult{
		QueriesPerHour: map[hybrid.Mode]float64{hybrid.HDDOnly: 10, hybrid.LRU: 20, hybrid.HStorage: 30, hybrid.SSDOnly: 100},
		Makespan:       map[hybrid.Mode]time.Duration{hybrid.HDDOnly: time.Hour},
	}
	out := FormatTable9(t9)
	if !strings.Contains(out, "30.0") {
		t.Fatalf("table9:\n%s", out)
	}
	f12 := &Fig12Result{
		Standalone: map[int]map[hybrid.Mode]time.Duration{9: {hybrid.LRU: time.Second}, 18: {}},
		Throughput: map[int]map[hybrid.Mode]time.Duration{9: {hybrid.LRU: 2 * time.Second}, 18: {}},
	}
	out = FormatFig12(f12)
	if !strings.Contains(out, "standalone") || !strings.Contains(out, "Q9") {
		t.Fatalf("fig12:\n%s", out)
	}
}

func TestConfigScaling(t *testing.T) {
	cfg := DefaultConfig()
	tp := cfg.ThroughputConfig()
	if tp.SF >= cfg.SF {
		t.Fatal("throughput config should shrink SF")
	}
	if tp.CacheRatio != 0.25 {
		t.Fatalf("throughput cache ratio %v", tp.CacheRatio)
	}
}

func TestEnvSizing(t *testing.T) {
	e := sharedTestEnv(t)
	if e.Data <= 0 {
		t.Fatal("no data pages")
	}
	if e.cacheBlocks() < 64 || e.bpPages() < 64 {
		t.Fatal("sizing floors violated")
	}
	if e.cacheBlocks() <= e.bpPages() {
		t.Fatal("cache should exceed the buffer pool at these ratios")
	}
}

func TestSortedModes(t *testing.T) {
	m := map[hybrid.Mode]int{hybrid.SSDOnly: 1, hybrid.HDDOnly: 2}
	got := SortedModes(m)
	if len(got) != 2 || got[0] != hybrid.HDDOnly || got[1] != hybrid.SSDOnly {
		t.Fatalf("sorted %v", got)
	}
}
