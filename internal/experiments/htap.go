package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/heap"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/iosched"
	"hstoragedb/internal/tpch"
)

// HTAP experiment arms: the same OLTP mix runs against no analytics at
// all (the interference-free baseline), against serializable 2PL scans
// (shared page + scan locks held to commit), and against MVCC snapshot
// scans (no locks, version-chain reads).
const (
	HTAPBaseline = "baseline"
	HTAPLocked   = "locked"
	HTAPSnapshot = "snapshot"
)

// HTAPArms lists the arms in presentation order.
func HTAPArms() []string { return []string{HTAPBaseline, HTAPLocked, HTAPSnapshot} }

// htapScanRetryCap bounds deadlock retries of one locked sweep before
// the arm is declared livelocked.
const htapScanRetryCap = 100

// HTAP tenant bindings: the OLTP mix and the analytics stream run as
// separate tenants with an 8:1 fair-share split, the paper's QoS story
// — transactional traffic keeps its latency target while scans soak the
// leftover bandwidth. The split protects OLTP only from *device*
// interference; what it cannot fix is lock interference, which is the
// arm contrast the experiment measures.
const (
	htapOLTPTenant dss.TenantID = 1
	htapScanTenant dss.TenantID = 2
)

// htapInstance builds the HTAP instance: a txn-grade configuration
// (log class on) whose device scheduler enforces the OLTP-vs-scan
// tenant split. The buffer pool is sized to keep the scanned orders
// heap resident on top of the usual working-set budget — the HTAP
// setup under study caches the shared hot table, so the arms differ by
// concurrency control (lock waits vs version reads), not by who wins
// the device queue on cold page faults.
func (e *Env) htapInstance(mode hybrid.Mode) (*engine.Instance, error) {
	ordersPages := int(e.DS.DB.Store.Pages(e.DS.DB.Cat.MustTable("orders").ID))
	return e.DS.DB.NewInstance(engine.InstanceConfig{
		Storage: hybrid.Config{
			Mode:        mode,
			CacheBlocks: e.cacheBlocks(),
			Sched: iosched.Config{
				TenantWeights: map[dss.TenantID]float64{
					htapOLTPTenant: 8,
					htapScanTenant: 1,
				},
			},
		},
		BufferPoolPages: e.bpPages() + ordersPages + 16,
		WorkMem:         e.Cfg.WorkMem,
		CPUPerTuple:     300 * time.Nanosecond,
		Obs:             e.Cfg.Obs,
	})
}

// HTAPRun is the outcome of the HTAP interference experiment under one
// storage configuration and concurrency-control arm: an OLTP mix and a
// stream of analytics sweeps (absent in the baseline arm) share the
// instance, and the run reports both sides' throughput plus the OLTP
// commit-latency tail the analytics induced.
type HTAPRun struct {
	Mode hybrid.Mode
	Arm  string

	// OLTP side: Workers sessions run the transactional mix; commit
	// latency percentiles are measured per transaction on the worker's
	// virtual clock (lock waits are charged to it).
	Workers       int
	Commits       int64
	Retries       int64
	Deadlocks     int64
	CommitP50     time.Duration
	CommitP99     time.Duration
	OLTPElapsed   time.Duration
	CommitsPerSec float64

	// Analytics side: completed revenue sweeps over the scan session's
	// virtual elapsed time. ScanRetries counts deadlock-aborted sweeps
	// (locked arm only).
	Scans       int
	ScanRetries int
	ScanElapsed time.Duration
	ScansPerSec float64

	// MVCC accounting: snapshot-resolved page reads during the run (0
	// unless an obs registry is attached and the arm takes snapshots)
	// and version-store occupancy after the final checkpoint (must be
	// 0: nothing may leak).
	SnapshotReads int64
	VersionsLeft  int
}

// htapSnapReads reads the cumulative snapshot-read counter, when an obs
// registry is attached (hbench -metrics / -trace); runs report deltas.
func (e *Env) htapSnapReads() int64 {
	if e.Cfg.Obs == nil {
		return 0
	}
	return e.Cfg.Obs.Registry().Counter("bufferpool.snapshot.reads").Value()
}

// latPercentile returns the q-quantile of a sorted latency slice.
func latPercentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// RunHTAP runs one arm of the HTAP experiment on one storage
// configuration: workers OLTP sessions each commit txnsPerWorker
// transactions while one analytics session runs scanRounds revenue
// sweeps over the orders heap under the arm's concurrency control.
// Orders is the table the OLTP mix mutates in place (payments rewrite
// o_totalprice) and appends to (new orders), so the locked arm's shared
// page and scan locks collide with writer exclusives in both
// directions, while the snapshot arm reads version chains and never
// waits. All sessions run as a closed population on the device
// scheduler; lock waits and group-commit followers park their stream
// (txn.Manager.UseScheduler) so a blocked session cannot stall
// dispatch.
func (e *Env) RunHTAP(mode hybrid.Mode, arm string, workers, txnsPerWorker, scanRounds int) (HTAPRun, error) {
	run := HTAPRun{Mode: mode, Arm: arm, Workers: workers}
	inst, err := e.htapInstance(mode)
	if err != nil {
		return run, err
	}
	setupSess := inst.NewSession()
	log, err := wal.New(&setupSess.Clk, inst.Mgr, oltpWALConfig())
	if err != nil {
		return run, err
	}
	tm := txn.NewManager(inst, log)
	if err := tm.Checkpoint(setupSess); err != nil {
		return run, err
	}
	// Warm the orders heap into the pool before measuring (every arm,
	// for comparability): the measured sweeps then read resident pages
	// and the arm contrast is lock waits versus version reads.
	if _, err := e.htapRevenueSweep(setupSess); err != nil {
		return run, err
	}
	inst.ResetStats()
	snapReads0 := e.htapSnapReads()

	grp := inst.Sys.Sched()
	tm.UseScheduler(grp)
	oltpSess := make([]*engine.Session, workers)
	for i := range oltpSess {
		oltpSess[i] = inst.NewSession()
		oltpSess[i].BindTenant(htapOLTPTenant)
		grp.Register(&oltpSess[i].Clk)
	}
	scanSess := inst.NewSession()
	scanSess.BindTenant(htapScanTenant)
	if arm != HTAPBaseline {
		grp.Register(&scanSess.Clk)
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		runErr error
	)
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
	}

	// OLTP workers: one driver per session, timing every transaction on
	// the worker's virtual clock (so lock waits behind sweeps count).
	lats := make([][]time.Duration, workers)
	drivers := make([]*tpch.OLTP, workers)
	var oltpElapsed time.Duration
	for i := range oltpSess {
		drivers[i] = e.DS.NewOLTP(e.Cfg.Seed + int64(i))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := oltpSess[i]
			defer grp.Unregister(&sess.Clk)
			start := sess.Clk.Now()
			for j := 0; j < txnsPerWorker; j++ {
				t0 := sess.Clk.Now()
				if err := drivers[i].RunTxn(tm, sess, 1); err != nil {
					fail(fmt.Errorf("htap %s oltp worker %d on %v: %w", arm, i, mode, err))
					return
				}
				lats[i] = append(lats[i], sess.Clk.Now()-t0)
			}
			elapsed := sess.Clk.Now() - start
			mu.Lock()
			if elapsed > oltpElapsed {
				oltpElapsed = elapsed
			}
			mu.Unlock()
		}(i)
	}

	// Analytics stream: scanRounds revenue sweeps of the orders heap.
	// The locked arm wraps each sweep in a serializable 2PL transaction
	// (the orders scan lock plus a shared lock on every page it reads,
	// all held to commit) and restarts deadlock losses from scratch; the
	// snapshot arm reads its begin-watermark version of every page and
	// never touches the lock manager.
	if arm != HTAPBaseline {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer grp.Unregister(&scanSess.Clk)
			start := scanSess.Clk.Now()
			for r := 0; r < scanRounds; r++ {
				var err error
				if arm == HTAPLocked {
					err = e.htapLockedSweep(tm, scanSess, &run.ScanRetries)
				} else {
					err = e.htapSnapshotSweep(tm, scanSess)
				}
				if err != nil {
					fail(fmt.Errorf("htap %s sweep %d on %v: %w", arm, r, mode, err))
					return
				}
				mu.Lock()
				run.Scans++
				mu.Unlock()
			}
			mu.Lock()
			run.ScanElapsed = scanSess.Clk.Now() - start
			mu.Unlock()
		}()
	}
	wg.Wait()
	if runErr != nil {
		return run, runErr
	}

	settle := inst.NewSession()
	inst.Mgr.Wait(&settle.Clk)

	run.Commits = tm.Commits()
	for _, d := range drivers {
		run.Retries += d.Retries
	}
	run.Deadlocks = tm.LockStats().Deadlocks
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	run.CommitP50 = latPercentile(all, 0.50)
	run.CommitP99 = latPercentile(all, 0.99)
	run.OLTPElapsed = oltpElapsed
	if oltpElapsed > 0 {
		run.CommitsPerSec = float64(run.Commits) * float64(time.Second) / float64(oltpElapsed)
	}
	if run.ScanElapsed > 0 {
		run.ScansPerSec = float64(run.Scans) * float64(time.Second) / float64(run.ScanElapsed)
	}

	// Drain the version store and verify nothing leaks, then leave the
	// shared dataset consistent for the next run.
	if err := tm.Checkpoint(setupSess); err != nil {
		return run, err
	}
	run.SnapshotReads = e.htapSnapReads() - snapReads0
	run.VersionsLeft = inst.Pool.VersionStats().Versions
	if run.VersionsLeft != 0 {
		return run, fmt.Errorf("htap %s on %v: %d versions leaked past the final checkpoint", arm, mode, run.VersionsLeft)
	}
	if err := e.DS.RecomputeNextOrderKey(setupSess); err != nil {
		return run, err
	}
	if err := log.Destroy(&setupSess.Clk); err != nil {
		return run, err
	}
	return run, nil
}

// htapRevenueSweep scans the full orders heap on the session's stream,
// summing o_totalprice. Under a 2PL transaction the buffer-pool acquire
// hook takes a shared lock on every page touched; under a snapshot the
// pool resolves each page against the transaction's begin watermark.
func (e *Env) htapRevenueSweep(sess *engine.Session) (float64, error) {
	inst := sess.Instance()
	info := e.DS.DB.Cat.MustTable("orders")
	f := heap.NewFile(info.ID, info.Schema, policy.Table)
	sc := f.NewScanner(&sess.Clk, inst.Pool, inst.DB.Store.Pages(info.ID))
	totalCol := info.Schema.MustCol("o_totalprice")
	var revenue float64
	for {
		row, _, ok, err := sc.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			return revenue, nil
		}
		// Per-tuple processing cost, like the exec layer charges: a
		// sweep of resident pages is CPU work, not free.
		sess.Clk.Advance(300 * time.Nanosecond)
		revenue += row[totalCol].F
	}
}

// htapLockedSweep runs one revenue sweep as a serializable 2PL read
// transaction: the orders scan lock blocks appenders, the per-page
// shared locks block in-place payment updates, and a deadlock loss
// restarts the whole sweep.
func (e *Env) htapLockedSweep(tm *txn.Manager, sess *engine.Session, retries *int) error {
	ordersObj := e.DS.DB.Cat.MustTable("orders").ID
	for try := 0; ; try++ {
		tx, err := tm.Begin(sess)
		if err != nil {
			return err
		}
		err = func() error {
			if err := tx.LockScan(ordersObj); err != nil {
				return err
			}
			_, err := e.htapRevenueSweep(sess)
			return err
		}()
		if err != nil {
			_ = tx.Abort()
			if errors.Is(err, txn.ErrDeadlock) && try < htapScanRetryCap {
				*retries++
				continue
			}
			return err
		}
		return tx.Commit()
	}
}

// htapSnapshotSweep runs one revenue sweep inside a snapshot
// transaction: it observes the commit watermark as of its begin and
// takes no locks.
func (e *Env) htapSnapshotSweep(tm *txn.Manager, sess *engine.Session) error {
	snap := tm.BeginSnapshot(sess)
	_, err := e.htapRevenueSweep(sess)
	if err != nil {
		_ = snap.Abort()
		return err
	}
	return snap.Commit()
}

// HTAPAll runs every arm on the SSD-only and hStorage configurations.
func (e *Env) HTAPAll(workers, txnsPerWorker, scanRounds int) ([]HTAPRun, error) {
	if workers <= 0 {
		workers = 2
	}
	if txnsPerWorker <= 0 {
		txnsPerWorker = 75
	}
	if scanRounds <= 0 {
		scanRounds = 2
	}
	out := make([]HTAPRun, 0, 6)
	for _, mode := range []hybrid.Mode{hybrid.SSDOnly, hybrid.HStorage} {
		for _, arm := range HTAPArms() {
			run, err := e.RunHTAP(mode, arm, workers, txnsPerWorker, scanRounds)
			if err != nil {
				return nil, err
			}
			out = append(out, run)
		}
	}
	return out, nil
}

// FormatHTAP renders the HTAP interference table: per mode, the three
// arms side by side with the scan speedup and commit-tail cost of each
// concurrency-control choice.
func FormatHTAP(runs []HTAPRun) string {
	var b strings.Builder
	fmt.Fprintln(&b, "HTAP: snapshot scans vs 2PL scans under the OLTP mix")
	fmt.Fprintf(&b, "%-10s %-9s %10s %12s %12s %10s %10s %8s %9s\n",
		"mode", "arm", "commits/s", "commit p50", "commit p99", "scans/s", "scans", "dlocks", "snapreads")
	for _, r := range runs {
		scansPerSec := "-"
		if r.Arm != HTAPBaseline {
			scansPerSec = fmt.Sprintf("%.2f", r.ScansPerSec)
		}
		fmt.Fprintf(&b, "%-10v %-9s %10.0f %12s %12s %10s %10d %8d %9d\n",
			r.Mode, r.Arm, r.CommitsPerSec, fmtLat(r.CommitP50), fmtLat(r.CommitP99),
			scansPerSec, r.Scans, r.Deadlocks, r.SnapshotReads)
	}
	return b.String()
}
