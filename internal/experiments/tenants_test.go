package experiments

import (
	"testing"
	"time"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/hybrid"
)

// TestTenantsFairness is the acceptance gate of the multi-tenant
// experiment, run on the SSD-only pair (where interleaving tenants
// carries no seek penalty, so fairness must be essentially free):
//
//   - fair arm: per-tenant granted-block shares within +/-10 points of
//     the configured weights, Jain's index near 1
//   - no request waits past the aging bound (plus one in-flight grant)
//   - aggregate throughput within 5% of the class-only baseline
func TestTenantsFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment driver")
	}
	e := sharedTestEnv(t)
	specs := []TenantSpec{{ID: 1, Weight: 3}, {ID: 2, Weight: 1}}

	base, err := e.RunTenants(hybrid.SSDOnly, specs, 1200, 15, false)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	fair, err := e.RunTenants(hybrid.SSDOnly, specs, 1200, 15, true)
	if err != nil {
		t.Fatalf("fair: %v", err)
	}
	t.Logf("\n%s", FormatTenants([]TenantsRun{base, fair}))

	if fair.MaxShareErr > 0.10 {
		t.Errorf("fair-share error %.1f%% exceeds 10 points", 100*fair.MaxShareErr)
	}
	if fair.Jain < 0.95 {
		t.Errorf("fair arm Jain = %.3f, want >= 0.95", fair.Jain)
	}
	if fair.Jain <= base.Jain {
		t.Errorf("fair arm Jain %.3f not better than class-only %.3f", fair.Jain, base.Jain)
	}
	slack := 10 * time.Millisecond
	for _, tr := range fair.Tenants {
		if tr.MaxWait > fair.AgingBound+slack {
			t.Errorf("tenant %d waited %v, past the %v aging bound", tr.ID, tr.MaxWait, fair.AgingBound)
		}
	}
	// Fairness must not tax aggregate throughput on a seek-free device:
	// same total demand, makespans within 5% of each other.
	ratio := float64(fair.Makespan) / float64(base.Makespan)
	if ratio > 1.05 || ratio < 0.95 {
		t.Errorf("aggregate throughput moved %.1f%% vs class-only (makespan %v vs %v)",
			100*(ratio-1), fair.Makespan, base.Makespan)
	}
}

// TestTenantsHybridCacheShares runs the hStorage fair arm and checks
// the tenant plumbing end to end at the engine level: every tenant
// commits transactions, and per-tenant latency histograms exist.
func TestTenantsHybridCacheShares(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment driver")
	}
	e := sharedTestEnv(t)
	specs := []TenantSpec{{ID: 1, Weight: 3}, {ID: 2, Weight: 1}}
	run, err := e.RunTenants(hybrid.HStorage, specs, 800, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if run.MaxShareErr > 0.10 {
		t.Errorf("hStorage fair-share error %.1f%% exceeds 10 points", 100*run.MaxShareErr)
	}
	for _, tr := range run.Tenants {
		if tr.Commits == 0 {
			t.Errorf("tenant %d committed nothing", tr.ID)
		}
		if tr.P99 == 0 {
			t.Errorf("tenant %d has no latency samples", tr.ID)
		}
	}
	if run.Tenants[0].ID != dss.TenantID(1) {
		t.Fatalf("tenant order scrambled: %+v", run.Tenants)
	}
}
