package experiments

import (
	"fmt"
	"strings"
	"time"

	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/obs"
	"hstoragedb/internal/shard"
)

// ShardsRun is the outcome of one shard-scaling sweep point: `Workers`
// concurrent transfer streams over a hash-partitioned cluster of
// `Shards` engine instances, with an `XShard` fraction of transfers
// deliberately crossing shards (and therefore running two-phase commit).
type ShardsRun struct {
	Shards  int
	Workers int
	XShard  float64

	// Txns counts completed transfers; CrossShard the ones that spanned
	// shards; Retries the deadlock losses that were retried.
	Txns       int64
	CrossShard int64
	Retries    int64
	// TwoPCCommits counts coordinator-decided commits (one per
	// cross-shard transfer); LocalCommits the per-shard commit records
	// (a cross-shard transfer contributes one per participant).
	TwoPCCommits int64
	LocalCommits int64

	// Elapsed is the virtual makespan (latest worker clock);
	// TxnsPerSec is Txns over it.
	Elapsed    time.Duration
	TxnsPerSec float64

	// WALAppends/WALFlushes sum every shard's log activity plus the
	// coordinator's decision log — where 2PC's extra records and forces
	// (prepare + decide + phase-2 commit vs one commit) show up.
	WALAppends int64
	WALFlushes int64
}

// Shard-scaling sizing. The sweep scales weakly — every shard brings its
// own fixed slice of accounts along with its fixed buffer pool, SSD
// cache and device pair, the way the paper's LSST target grows (each
// node ingests its own partition of the sky survey). Per-shard hit
// rates and device load are therefore identical at every sweep point,
// so the shard-local arm isolates the partitioning itself: near-linear
// throughput in the shard count, with 2PC the only cross-shard cost.
// (A fixed total dataset would instead scale super-linearly, because
// adding shards also multiplies aggregate cache capacity.) Rows are
// padded so each shard's slice spans ~10x more pages than its pool and
// cache hold — uniform random probes stay I/O-bound on the shard's HDD.
const (
	shardsPerShard = 12288 // accounts per shard (total = shards * this)
	shardsBalance  = 1000  // initial per-account balance
	shardsPad      = 800   // filler bytes per row: ~9 rows/page
	shardsBPPages  = 96    // per-shard buffer pool pages
	shardsCache    = 160   // per-shard SSD cache blocks
	shardsCkptEach = 200   // checkpoint cadence in cluster-wide commits
)

// shardsConfig builds the per-shard stack configuration.
func shardsConfig(shards int, set *obs.Set) shard.Config {
	return shard.Config{
		Shards:          shards,
		Storage:         hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: shardsCache},
		BufferPoolPages: shardsBPPages,
		WorkMem:         4096,
		CPUPerTuple:     300 * time.Nanosecond,
		WAL:             wal.Config{SegmentPages: 256, GroupCommitWindow: 50 * time.Microsecond},
		Obs:             set,
	}
}

// RunShards builds a fresh cluster, loads the partitioned accounts
// table, warms the caches with an unmeasured pass, then measures
// totalTxns transfers across the workers while a background
// checkpointer truncates the per-shard logs. The conservation invariant
// (transfers preserve the total balance) is verified after the run —
// a violation is returned as an error, so every benchmark run is also
// an atomicity check.
func RunShards(shards, workers, totalTxns int, xshard float64, seed int64, set *obs.Set) (ShardsRun, error) {
	run := ShardsRun{Shards: shards, Workers: workers, XShard: xshard}
	c, err := shard.New(shardsConfig(shards, set))
	if err != nil {
		return run, err
	}
	accounts := int64(shards) * shardsPerShard
	a, err := c.LoadAccounts(accounts, shardsBalance, shardsPad)
	if err != nil {
		return run, err
	}

	// Warmup: an unmeasured pass settles the priority caches and the
	// pools, then a checkpoint truncates the logs it produced.
	rs := c.NewSession()
	warm := totalTxns / 4
	if warm < 4*workers {
		warm = 4 * workers
	}
	if _, err := a.RunWorkers(workers, warm/workers+1, xshard, seed+1000, 0); err != nil {
		return run, fmt.Errorf("shards warmup %dx%d: %w", shards, workers, err)
	}
	c.Wait(rs)
	if err := c.Checkpoint(rs); err != nil {
		return run, err
	}
	startAt := c.Wait(rs)

	commits0, appends0, flushes0 := shardsWALTotals(c)
	twopc0 := c.Coordinator().Stats().Commits

	// Background checkpointer: every shardsCkptEach cluster-wide commits
	// it drains routed transactions and truncates every shard's log, as
	// a production cluster would.
	stop := make(chan struct{})
	ckptDone := make(chan error, 1)
	ckptSess := c.NewSession()
	ckptSess.AdvanceTo(startAt)
	go func() {
		var last int64
		for {
			select {
			case <-stop:
				ckptDone <- nil
				return
			default:
			}
			commits, _, _ := shardsWALTotals(c)
			if commits-last >= shardsCkptEach {
				if err := c.Checkpoint(ckptSess); err != nil {
					ckptDone <- err
					return
				}
				last = commits
			} else {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	per := totalTxns / workers
	if per < 1 {
		per = 1
	}
	res, err := a.RunWorkers(workers, per, xshard, seed, startAt)
	close(stop)
	if cerr := <-ckptDone; err == nil && cerr != nil {
		err = fmt.Errorf("checkpointer: %w", cerr)
	}
	if err != nil {
		return run, fmt.Errorf("shards %dx%d: %w", shards, workers, err)
	}
	c.Wait(rs)

	run.Txns = res.Txns
	run.CrossShard = res.CrossShard
	run.Retries = res.Retries
	run.Elapsed = res.Elapsed
	if run.Elapsed > 0 {
		run.TxnsPerSec = float64(run.Txns) * float64(time.Second) / float64(run.Elapsed)
	}
	commits1, appends1, flushes1 := shardsWALTotals(c)
	run.LocalCommits = commits1 - commits0
	run.WALAppends = appends1 - appends0
	run.WALFlushes = flushes1 - flushes0
	run.TwoPCCommits = c.Coordinator().Stats().Commits - twopc0

	if total, err := a.TotalBalance(rs); err != nil {
		return run, err
	} else if want := accounts * shardsBalance; total != want {
		return run, fmt.Errorf("shards %dx%d: balance not conserved: %d != %d", shards, workers, total, want)
	}
	return run, nil
}

// shardsWALTotals sums local commits and WAL activity across the shards
// plus the coordinator's decision log.
func shardsWALTotals(c *shard.Cluster) (commits, appends, flushes int64) {
	for i := 0; i < c.Shards(); i++ {
		s := c.Shard(i)
		commits += s.TM.Commits()
		st := s.Log.Stats()
		appends += st.Appends
		flushes += st.Flushes
	}
	return commits, appends, flushes
}

// ShardsAll sweeps the shard counts, running a shard-local arm
// (xshard 0) and, when xshard > 0, a cross-shard arm per count. The
// worker count and total transfer count stay constant across sweep
// points, so throughput differences measure the partitioning, not the
// offered load.
func ShardsAll(shardCounts []int, workers, totalTxns int, xshard float64, seed int64, set *obs.Set) ([]ShardsRun, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	if workers < 1 {
		workers = 8
	}
	if totalTxns <= 0 {
		totalTxns = 400
	}
	fracs := []float64{0}
	if xshard > 0 {
		fracs = append(fracs, xshard)
	}
	out := make([]ShardsRun, 0, len(shardCounts)*len(fracs))
	for _, frac := range fracs {
		for _, n := range shardCounts {
			run, err := RunShards(n, workers, totalTxns, frac, seed, set)
			if err != nil {
				return nil, err
			}
			out = append(out, run)
		}
	}
	return out, nil
}

// FormatShards renders the shard-scaling report: per arm and shard
// count, transfer throughput with its speedup over the single-shard
// baseline of the same arm, the 2PC share, and the WAL cost per
// transfer (where the prepare/decide/phase-2 overhead is visible).
func FormatShards(runs []ShardsRun) string {
	var b strings.Builder
	b.WriteString("Shard scaling: hash-partitioned cluster, transfer workload, 2PC for cross-shard transactions\n")
	fmt.Fprintf(&b, "%7s %8s %7s %8s %10s %9s %7s %6s %9s %11s %9s\n",
		"shards", "workers", "xshard", "txns", "txns/s", "speedup", "cross", "2pc", "retries", "wal-app/txn", "flushes")
	base := make(map[float64]float64)
	baseShards := make(map[float64]int)
	for _, r := range runs {
		if n, ok := baseShards[r.XShard]; !ok || r.Shards < n {
			baseShards[r.XShard] = r.Shards
			base[r.XShard] = r.TxnsPerSec
		}
	}
	for _, r := range runs {
		speedup := 0.0
		if b1 := base[r.XShard]; b1 > 0 {
			speedup = r.TxnsPerSec / b1
		}
		perTxn := 0.0
		if r.Txns > 0 {
			perTxn = float64(r.WALAppends) / float64(r.Txns)
		}
		fmt.Fprintf(&b, "%7d %8d %6.0f%% %8d %10.1f %8.2fx %7d %6d %9d %11.1f %9d\n",
			r.Shards, r.Workers, 100*r.XShard, r.Txns, r.TxnsPerSec, speedup,
			r.CrossShard, r.TwoPCCommits, r.Retries, perTxn, r.WALFlushes)
	}
	b.WriteString("speedup is per arm vs its smallest shard count; wal-app/txn = log records per transfer (2PC adds prepare + decide + per-participant commits)\n")
	return b.String()
}
