package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/btree"
	"hstoragedb/internal/engine/heap"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/tpch"
)

// OLTPRun is the outcome of the transactional OLTP mix under one storage
// configuration and log-classification setting: a measured commit phase,
// then a crash injected mid-stream and a recovery by a fresh instance.
type OLTPRun struct {
	Mode     hybrid.Mode
	LogClass bool // log traffic classified under dss.ClassLog?

	// Measured phase.
	Commits       int64
	Elapsed       time.Duration
	CommitsPerSec float64
	Storage       hybrid.Snapshot
	TypeStats     map[policy.RequestType]storagemgr.TypeStats
	Log           wal.Stats

	// Crash + recovery phase.
	RecoveryTime    time.Duration
	Recovery        wal.RecoveryStats
	RecoveredOrders int // committed NewOrder keys verified present
	LostOrders      int // uncommitted keys verified absent
}

// oltpWALConfig sizes the log for the experiment scale.
func oltpWALConfig() wal.Config {
	return wal.Config{SegmentPages: 256, GroupCommitWindow: 50 * time.Microsecond}
}

// TxnInstance builds an instance for the transactional OLTP runs.
func (e *Env) TxnInstance(mode hybrid.Mode, logClass bool) (*engine.Instance, error) {
	return e.DS.DB.NewInstance(engine.InstanceConfig{
		Storage: hybrid.Config{
			Mode:        mode,
			CacheBlocks: e.cacheBlocks(),
		},
		BufferPoolPages: e.bpPages(),
		WorkMem:         e.Cfg.WorkMem,
		CPUPerTuple:     300 * time.Nanosecond,
		DisableLogClass: !logClass,
		Obs:             e.Cfg.Obs,
	})
}

// RunOLTP runs the transactional OLTP mix on one storage configuration:
// txns transactions are committed and measured, then a crash is injected
// during a stream of NewOrders and a fresh instance recovers from the
// WAL. Recovery is verified through index lookups and heap fetches: every
// committed order must be present with its lineitems, the loser's order
// must be absent.
func (e *Env) RunOLTP(mode hybrid.Mode, txns int, logClass bool) (OLTPRun, error) {
	run := OLTPRun{Mode: mode, LogClass: logClass}
	inst, err := e.TxnInstance(mode, logClass)
	if err != nil {
		return run, err
	}
	sess := inst.NewSession()
	log, err := wal.New(&sess.Clk, inst.Mgr, oltpWALConfig())
	if err != nil {
		return run, err
	}
	tm := txn.NewManager(inst, log)
	if err := tm.Checkpoint(sess); err != nil {
		return run, err
	}
	inst.ResetStats()

	// Measured phase.
	driver := e.DS.NewOLTP(e.Cfg.Seed)
	start := sess.Clk.Now()
	if err := driver.RunTxn(tm, sess, txns); err != nil {
		return run, fmt.Errorf("oltp on %v: %w", mode, err)
	}
	inst.Mgr.Wait(&sess.Clk)
	run.Commits = tm.Commits()
	run.Elapsed = sess.Clk.Now() - start
	if run.Elapsed > 0 {
		run.CommitsPerSec = float64(run.Commits) * float64(time.Second) / float64(run.Elapsed)
	}
	run.Storage = inst.Sys.Stats()
	run.TypeStats = inst.Mgr.TypeStats()
	run.Log = log.Stats()

	// Crash phase: the 5th NewOrder commit from here dies between its
	// page records and its commit record.
	tm.CrashAtCommit(5)
	err = driver.RunNewOrdersTxn(tm, sess, 50)
	if !errors.Is(err, txn.ErrCrashed) {
		if err == nil {
			return run, fmt.Errorf("oltp on %v: crash harness never fired", mode)
		}
		return run, err
	}
	tm.Crash()

	// Restart: a fresh instance over the surviving page store.
	inst2, err := e.TxnInstance(mode, logClass)
	if err != nil {
		return run, err
	}
	sess2 := inst2.NewSession()
	log2, rstats, err := wal.Recover(&sess2.Clk, inst2.Mgr, oltpWALConfig())
	if err != nil {
		return run, err
	}
	run.Recovery = *rstats
	run.RecoveryTime = rstats.Elapsed

	present, absent, err := verifyRecovered(sess2, e.DS, driver.Committed, driver.Lost)
	if err != nil {
		return run, fmt.Errorf("recovery verification on %v: %w", mode, err)
	}
	run.RecoveredOrders, run.LostOrders = present, absent

	// Leave the shared dataset consistent for the next run: reset the key
	// allocator past the durable orders and drop the WAL objects.
	if err := e.DS.RecomputeNextOrderKey(sess2); err != nil {
		return run, err
	}
	if err := log2.Destroy(&sess2.Clk); err != nil {
		return run, err
	}
	return run, nil
}

// verifyRecovered checks the recovery contract on a fresh instance:
// committed orders (and at least one lineitem each) are reachable through
// the indexes, lost orders are not.
func verifyRecovered(sess *engine.Session, ds *tpch.Dataset, committed, lost []int64) (present, absent int, err error) {
	inst := sess.Instance()
	ordersInfo := ds.DB.Cat.MustTable("orders")
	lineInfo := ds.DB.Cat.MustTable("lineitem")
	ordersFile := heap.NewFile(ordersInfo.ID, ordersInfo.Schema, policy.Table)
	lineFile := heap.NewFile(lineInfo.ID, lineInfo.Schema, policy.Table)
	ixOrders := btree.Open(ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	ixLineOK := btree.Open(ds.DB.Cat.MustIndex("idx_lineitem_orderkey").ID, inst.Pool)

	fetchKey := func(key int64) (bool, error) {
		rids, err := ixOrders.Lookup(&sess.Clk, key, 0)
		if err != nil {
			return false, err
		}
		for _, rid := range rids {
			row, err := ordersFile.Fetch(&sess.Clk, inst.Pool, rid, 0)
			if err != nil {
				return false, err
			}
			if row != nil && row[0].I == key {
				return true, nil
			}
		}
		return false, nil
	}

	for _, key := range committed {
		ok, err := fetchKey(key)
		if err != nil {
			return present, absent, err
		}
		if !ok {
			return present, absent, fmt.Errorf("committed order %d missing after recovery", key)
		}
		lrids, err := ixLineOK.Lookup(&sess.Clk, key, 0)
		if err != nil {
			return present, absent, err
		}
		lines := 0
		for _, rid := range lrids {
			row, err := lineFile.Fetch(&sess.Clk, inst.Pool, rid, 0)
			if err != nil {
				return present, absent, err
			}
			if row != nil {
				lines++
			}
		}
		if lines == 0 {
			return present, absent, fmt.Errorf("committed order %d lost its lineitems", key)
		}
		present++
	}
	for _, key := range lost {
		ok, err := fetchKey(key)
		if err != nil {
			return present, absent, err
		}
		if ok {
			return present, absent, fmt.Errorf("uncommitted order %d visible after recovery", key)
		}
		absent++
	}
	return present, absent, nil
}

// OLTPAll runs the transactional mix under all four storage
// configurations, each with and without the log classification.
func (e *Env) OLTPAll(txns int) ([]OLTPRun, error) {
	if txns <= 0 {
		txns = 150
	}
	out := make([]OLTPRun, 0, 8)
	for _, mode := range hybrid.Modes() {
		for _, logClass := range []bool{true, false} {
			run, err := e.RunOLTP(mode, txns, logClass)
			if err != nil {
				return nil, err
			}
			out = append(out, run)
		}
	}
	return out, nil
}

// FormatOLTP renders the transactional OLTP report: commit throughput and
// recovery time per configuration, plus the log class counters that show
// where the log I/O landed.
func FormatOLTP(runs []OLTPRun) string {
	var b strings.Builder
	b.WriteString("OLTP extension (Section 8): transactional mix, commit throughput and crash recovery\n")
	fmt.Fprintf(&b, "%-12s %-9s %12s %12s %12s %10s %10s %12s\n",
		"mode", "log-class", "commits/s", "elapsed", "recovery", "replayed", "log-writes", "log-SSD-hits")
	for _, r := range runs {
		lc := "off"
		if r.LogClass {
			lc = "on"
		}
		logCS := r.Storage.Class(dss.ClassLog)
		fmt.Fprintf(&b, "%-12s %-9s %12.1f %12s %12s %10d %10d %12d\n",
			r.Mode, lc, r.CommitsPerSec, fmtDur(r.Elapsed), fmtDur(r.RecoveryTime),
			r.Recovery.PagesApplied, logCS.WriteBlocks, logCS.WriteHits)
	}
	b.WriteString("recovery verified: committed orders present, crashed transactions absent\n")
	return b.String()
}
