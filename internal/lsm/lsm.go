// Package lsm implements a log-structured merge-tree storage backend
// behind the pagestore.Backend seam: page writes are absorbed by an
// in-memory memtable, flushed as sorted-string tables (SSTables), and
// reorganized by leveled compaction in the background.
//
// The point of the backend, in this repository, is the I/O contrast it
// creates with the extent heap store. The heap turns every page write
// into one in-place device write; the LSM turns foreground writes into
// no device I/O at all and pays for it later with bulk sequential
// flush/compaction traffic. That deferred traffic is exactly the kind
// of background burst Section 4 of the paper argues must not share a
// QoS class with foreground work: the storage manager delivers it under
// dss.ClassCompaction — below every commit-critical class in the I/O
// scheduler, throttled by the background token budget, and non-caching
// so bulk rewrites never claim SSD cache space.
//
// # Durability model
//
// The memtable is volatile. Object metadata (the registry mapping
// object → generation and logical size) is instantly durable, exactly
// as the heap store's object map is: both model file-system metadata
// journaling outside the paged data path. WAL recovery depends on this
// — redo replays page writes into objects it expects to exist.
//
// Everything else follows an A/B manifest: a flush or compaction first
// writes its output SSTable, then persists a new manifest version
// naming the live tables, and only then frees (and TRIMs) replaced
// input tables. A crash at any point leaves either the old or the new
// manifest intact; blocks referenced by neither are orphans that
// Crash() discards. Writes absorbed since the last Sync are lost with
// the memtable and come back through the engine's WAL replay.
package lsm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hstoragedb/internal/pagestore"
)

// ErrKilled marks operations on a store whose simulated process was
// killed at a crash point. The store stays dead until Crash() recovers
// it from its durable image.
var ErrKilled = errors.New("lsm: store killed")

// KillPoint selects where a simulated kill fires inside the next
// flush or compaction. Used by the crash-safety tests.
type KillPoint int

const (
	// KillNone disarms the kill switch.
	KillNone KillPoint = iota
	// KillMidSSTable kills after half of an SSTable's blocks are on
	// disk: recovery must discard the half-written orphan.
	KillMidSSTable
	// KillBeforeManifest kills after the SSTable is fully written but
	// before the manifest names it: recovery must fall back to the
	// previous manifest and discard the complete-but-unreferenced table.
	KillBeforeManifest
	// KillMidManifest kills after half of a manifest slot's blocks are
	// written: the slot fails its checksum and recovery must use the
	// other slot.
	KillMidManifest
)

const (
	// manifestSlotBlocks is the size of one manifest slot; slots A and B
	// occupy LBAs [0, 2*manifestSlotBlocks).
	manifestSlotBlocks = 64
	// dataBase is the first LBA available to SSTables.
	dataBase = 2 * manifestSlotBlocks
	// directLBAOffset relocates the embedded direct-region heap store's
	// address space far above the LSM's own. The devices model a
	// constant average seek for any non-near jump, so the offset
	// distorts no timing; it only keeps the two allocators disjoint.
	directLBAOffset = int64(1) << 40
)

// Config sizes a Store. Zero values select defaults.
type Config struct {
	// MemtablePages is the flush threshold: the memtable flushes to an
	// L0 SSTable when it holds this many pages. Default 64.
	MemtablePages int
	// L0Tables is the compaction trigger: when L0 accumulates this many
	// tables they are merged (with every overlapping L1 table) into a
	// single sorted L1 run. Default 4.
	L0Tables int
	// BloomBitsPerKey sizes each table's bloom filter. Default 10
	// (~1% false-positive rate at four probes).
	BloomBitsPerKey int
	// DirectBase is the first object ID of the direct pass-through
	// region: objects at or above it (WAL segments, the 2PC decision
	// log, temporary files) bypass the tree and live on an embedded
	// heap store with in-place writes. The WAL cannot ride the
	// memtable it is responsible for making durable. Default 1<<29
	// (wal.DefaultBaseObject).
	DirectBase pagestore.ObjectID
}

func (c Config) withDefaults() Config {
	if c.MemtablePages <= 0 {
		c.MemtablePages = 64
	}
	if c.L0Tables <= 0 {
		c.L0Tables = 4
	}
	if c.BloomBitsPerKey <= 0 {
		c.BloomBitsPerKey = 10
	}
	if c.DirectBase == 0 {
		c.DirectBase = 1 << 29
	}
	return c
}

// key identifies one stored page version: the owning object, the
// object's generation when the page was written, and the page number.
// Truncate and Delete bump or drop the generation, turning every older
// key into garbage that compaction collects — the tree needs no
// tombstones.
type key struct {
	obj  pagestore.ObjectID
	gen  uint32
	page int64
}

func (k key) less(o key) bool {
	if k.obj != o.obj {
		return k.obj < o.obj
	}
	if k.gen != o.gen {
		return k.gen < o.gen
	}
	return k.page < o.page
}

// objMeta is the instantly durable registry record of one object.
type objMeta struct {
	gen   uint32
	pages int64
}

// span is a contiguous block range [start, start+blocks).
type span struct {
	start, blocks int64
}

// Store is an LSM-tree storage backend. It is safe for concurrent use.
type Store struct {
	mu  sync.Mutex
	cfg Config

	// reg is the instantly durable object registry (see package doc).
	reg     map[pagestore.ObjectID]*objMeta
	nextGen uint32

	// disk is the durable block image: LBA → content.
	disk map[int64][]byte

	// mem is the volatile memtable.
	mem map[key][]byte

	// levels[0] holds L0 tables oldest-first; levels[1] holds the
	// sorted, non-overlapping L1 run.
	levels      [2][]*table
	nextTableID uint64
	version     uint64

	// free/nextLBA is the first-fit block allocator over [dataBase, ∞).
	free    []span
	nextLBA int64

	// maint accumulates flush/compaction jobs until the storage manager
	// drains them.
	maint []pagestore.Maint

	// direct serves the pass-through object region.
	direct *pagestore.Store

	kill    KillPoint
	dead    bool
	orphans int64
}

var (
	_ pagestore.Backend    = (*Store)(nil)
	_ pagestore.Maintainer = (*Store)(nil)
	_ pagestore.Syncer     = (*Store)(nil)
	_ pagestore.Volatile   = (*Store)(nil)
)

// New creates an empty LSM store.
func New(cfg Config) *Store {
	return &Store{
		cfg:     cfg.withDefaults(),
		reg:     make(map[pagestore.ObjectID]*objMeta),
		disk:    make(map[int64][]byte),
		mem:     make(map[key][]byte),
		nextLBA: dataBase,
		direct:  pagestore.NewStore(),
	}
}

// isDirect reports whether the object lives in the pass-through region.
func (s *Store) isDirect(id pagestore.ObjectID) bool { return id >= s.cfg.DirectBase }

// alive gates direct-region operations on the dead flag: a killed
// process serves nothing, including its pass-through objects.
func (s *Store) alive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrKilled
	}
	return nil
}

func offsetPlan(plan []pagestore.Access) []pagestore.Access {
	for i := range plan {
		plan[i].LBA += directLBAOffset
	}
	return plan
}

func offsetExtents(exts []pagestore.Extent) []pagestore.Extent {
	for i := range exts {
		exts[i].Start += directLBAOffset
	}
	return exts
}

// Create implements pagestore.Backend.
func (s *Store) Create(id pagestore.ObjectID) error {
	if s.isDirect(id) {
		if err := s.alive(); err != nil {
			return err
		}
		return s.direct.Create(id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrKilled
	}
	if _, ok := s.reg[id]; ok {
		return fmt.Errorf("lsm: object %d already exists", id)
	}
	s.nextGen++
	s.reg[id] = &objMeta{gen: s.nextGen}
	return nil
}

// Exists implements pagestore.Backend.
func (s *Store) Exists(id pagestore.ObjectID) bool {
	if s.isDirect(id) {
		return s.direct.Exists(id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.reg[id]
	return ok
}

// Pages implements pagestore.Backend.
func (s *Store) Pages(id pagestore.ObjectID) int64 {
	if s.isDirect(id) {
		return s.direct.Pages(id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if o := s.reg[id]; o != nil {
		return o.pages
	}
	return 0
}

// Extend implements pagestore.Backend.
func (s *Store) Extend(id pagestore.ObjectID, pages int64) error {
	if s.isDirect(id) {
		if err := s.alive(); err != nil {
			return err
		}
		return s.direct.Extend(id, pages)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrKilled
	}
	o := s.reg[id]
	if o == nil {
		return fmt.Errorf("lsm: %w %d", pagestore.ErrUnknownObject, id)
	}
	if pages > o.pages {
		o.pages = pages
	}
	return nil
}

// Read implements pagestore.Backend. A memtable hit returns an empty
// plan; a tree probe charges one bloom block per candidate table, one
// index block per bloom maybe, and one data block on the hit.
func (s *Store) Read(id pagestore.ObjectID, page int64) ([]byte, []pagestore.Access, error) {
	if s.isDirect(id) {
		if err := s.alive(); err != nil {
			return nil, nil, err
		}
		data, plan, err := s.direct.Read(id, page)
		return data, offsetPlan(plan), err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil, nil, ErrKilled
	}
	o := s.reg[id]
	if o == nil {
		return nil, nil, fmt.Errorf("lsm: %w %d", pagestore.ErrUnknownObject, id)
	}
	if page < 0 {
		return nil, nil, fmt.Errorf("lsm: object %d: negative page %d", id, page)
	}
	if page >= o.pages {
		// Heap parity: reading past the end grows the object and the
		// missing pages read as zeroes.
		o.pages = page + 1
	}
	k := key{obj: id, gen: o.gen, page: page}
	if d, ok := s.mem[k]; ok {
		buf := make([]byte, pagestore.PageSize)
		copy(buf, d)
		return buf, nil, nil
	}
	data, plan := s.probeLocked(k)
	if data == nil {
		data = make([]byte, pagestore.PageSize)
	}
	return data, plan, nil
}

// probeLocked searches the tree newest-first for k, returning the page
// content (nil if absent) and the device accesses the probe implies.
func (s *Store) probeLocked(k key) ([]byte, []pagestore.Access) {
	var plan []pagestore.Access
	probe := func(t *table) ([]byte, bool) {
		if k.less(t.minKey) || t.maxKey.less(k) {
			return nil, false
		}
		plan = append(plan, pagestore.Access{LBA: t.bloomBlockOf(k), Blocks: 1, Meta: true})
		if !t.bloomMaybe(k) {
			return nil, false
		}
		i, ok := t.find(k)
		plan = append(plan, pagestore.Access{LBA: t.indexBlockOf(i), Blocks: 1, Meta: true})
		if !ok {
			return nil, false // bloom false positive
		}
		buf := make([]byte, pagestore.PageSize)
		copy(buf, s.disk[t.dataStart+int64(i)])
		plan = append(plan, pagestore.Access{LBA: t.dataStart + int64(i), Blocks: 1})
		return buf, true
	}
	l0 := s.levels[0]
	for i := len(l0) - 1; i >= 0; i-- {
		if data, ok := probe(l0[i]); ok {
			return data, plan
		}
	}
	for _, t := range s.levels[1] {
		if data, ok := probe(t); ok {
			return data, plan
		}
	}
	return nil, plan
}

// Write implements pagestore.Backend: the page is absorbed by the
// memtable (empty plan — the caller waits on no device). Crossing the
// flush threshold builds an SSTable and queues the flush, and possibly
// a compaction, as maintenance.
func (s *Store) Write(id pagestore.ObjectID, page int64, data []byte) ([]pagestore.Access, error) {
	if s.isDirect(id) {
		if err := s.alive(); err != nil {
			return nil, err
		}
		plan, err := s.direct.Write(id, page, data)
		return offsetPlan(plan), err
	}
	if len(data) > pagestore.PageSize {
		return nil, fmt.Errorf("lsm: page payload %d exceeds %d", len(data), pagestore.PageSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil, ErrKilled
	}
	o := s.reg[id]
	if o == nil {
		return nil, fmt.Errorf("lsm: %w %d", pagestore.ErrUnknownObject, id)
	}
	if page < 0 {
		return nil, fmt.Errorf("lsm: object %d: negative page %d", id, page)
	}
	if page >= o.pages {
		o.pages = page + 1
	}
	buf := make([]byte, pagestore.PageSize)
	copy(buf, data)
	s.mem[key{obj: id, gen: o.gen, page: page}] = buf
	if len(s.mem) >= s.cfg.MemtablePages {
		if err := s.flushLocked(); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// Truncate implements pagestore.Backend: the object gets a fresh
// generation, turning every stored version into garbage for compaction
// to collect. No extents free synchronously; reclaimed space is
// TRIMmed by the compaction that rewrites it.
func (s *Store) Truncate(id pagestore.ObjectID) ([]pagestore.Extent, error) {
	if s.isDirect(id) {
		if err := s.alive(); err != nil {
			return nil, err
		}
		exts, err := s.direct.Truncate(id)
		return offsetExtents(exts), err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil, ErrKilled
	}
	o := s.reg[id]
	if o == nil {
		return nil, fmt.Errorf("lsm: %w %d", pagestore.ErrUnknownObject, id)
	}
	s.scrubMemLocked(id)
	s.nextGen++
	o.gen = s.nextGen
	o.pages = 0
	return nil, nil
}

// Delete implements pagestore.Backend. As with Truncate, space comes
// back through compaction rather than through the returned extents.
func (s *Store) Delete(id pagestore.ObjectID) ([]pagestore.Extent, error) {
	if s.isDirect(id) {
		if err := s.alive(); err != nil {
			return nil, err
		}
		exts, err := s.direct.Delete(id)
		return offsetExtents(exts), err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil, ErrKilled
	}
	if s.reg[id] == nil {
		return nil, fmt.Errorf("lsm: %w %d", pagestore.ErrUnknownObject, id)
	}
	s.scrubMemLocked(id)
	delete(s.reg, id)
	return nil, nil
}

// scrubMemLocked drops the object's memtable entries so a dropped
// object's pages are never flushed.
func (s *Store) scrubMemLocked(id pagestore.ObjectID) {
	for k := range s.mem {
		if k.obj == id {
			delete(s.mem, k)
		}
	}
}

// Objects implements pagestore.Backend.
func (s *Store) Objects() []pagestore.ObjectID {
	s.mu.Lock()
	ids := make([]pagestore.ObjectID, 0, len(s.reg))
	for id := range s.reg {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	ids = append(ids, s.direct.Objects()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TotalPages implements pagestore.Backend.
func (s *Store) TotalPages() int64 {
	s.mu.Lock()
	var n int64
	for _, o := range s.reg {
		n += o.pages
	}
	s.mu.Unlock()
	return n + s.direct.TotalPages()
}

// lsmIter iterates a tree-resident object's pages, re-reading under the
// store lock on every step so a racing delete surfaces as
// ErrUnknownObject (matching the heap iterator's behaviour).
type lsmIter struct {
	s     *Store
	id    pagestore.ObjectID
	gen   uint32
	page  int64
	pages int64
}

// Next implements pagestore.Iterator.
func (it *lsmIter) Next() (int64, []byte, bool, error) {
	if it.page >= it.pages {
		return 0, nil, false, nil
	}
	it.s.mu.Lock()
	defer it.s.mu.Unlock()
	if it.s.dead {
		return 0, nil, false, ErrKilled
	}
	o := it.s.reg[it.id]
	if o == nil || o.gen != it.gen {
		return 0, nil, false, fmt.Errorf("lsm: %w %d", pagestore.ErrUnknownObject, it.id)
	}
	p := it.page
	k := key{obj: it.id, gen: it.gen, page: p}
	var buf []byte
	if d, ok := it.s.mem[k]; ok {
		buf = make([]byte, pagestore.PageSize)
		copy(buf, d)
	} else if d, _ := it.s.probeLocked(k); d != nil {
		buf = d
	} else {
		buf = make([]byte, pagestore.PageSize)
	}
	it.page++
	return p, buf, true, nil
}

// Iter implements pagestore.Backend. The page count is snapshotted at
// creation, matching the heap iterator.
func (s *Store) Iter(id pagestore.ObjectID) (pagestore.Iterator, error) {
	if s.isDirect(id) {
		if err := s.alive(); err != nil {
			return nil, err
		}
		return s.direct.Iter(id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil, ErrKilled
	}
	o := s.reg[id]
	if o == nil {
		return nil, fmt.Errorf("lsm: %w %d", pagestore.ErrUnknownObject, id)
	}
	return &lsmIter{s: s, id: id, gen: o.gen, pages: o.pages}, nil
}

// DrainMaintenance implements pagestore.Maintainer.
func (s *Store) DrainMaintenance() []pagestore.Maint {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs := s.maint
	s.maint = nil
	return jobs
}

// Sync implements pagestore.Syncer: the memtable flushes and the
// manifest reaches disk, so everything absorbed before the call
// survives a crash. The WAL checkpoint calls this through the storage
// manager before writing its checkpoint record.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrKilled
	}
	if len(s.mem) == 0 {
		return nil
	}
	return s.flushLocked()
}

// Kill arms a crash point: the next flush or compaction stops at the
// selected point and the store goes dead (every operation returns
// ErrKilled) until Crash() recovers it.
func (s *Store) Kill(p KillPoint) {
	s.mu.Lock()
	s.kill = p
	s.mu.Unlock()
}

// Dead reports whether the store is dead from a fired kill point.
func (s *Store) Dead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// OrphansDiscarded reports how many orphaned blocks the last Crash()
// recovery discarded.
func (s *Store) OrphansDiscarded() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.orphans
}

// MemtableLen reports the number of pages currently in the memtable.
func (s *Store) MemtableLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// TablesPerLevel reports the live table count of each level.
func (s *Store) TablesPerLevel() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return []int{len(s.levels[0]), len(s.levels[1])}
}

// Version reports the current manifest version.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// allocLocked carves a contiguous n-block range, first-fit from the
// free list, else from the top of the address space.
func (s *Store) allocLocked(n int64) int64 {
	for i, f := range s.free {
		if f.blocks >= n {
			start := f.start
			if f.blocks == n {
				s.free = append(s.free[:i], s.free[i+1:]...)
			} else {
				s.free[i] = span{start: f.start + n, blocks: f.blocks - n}
			}
			return start
		}
	}
	start := s.nextLBA
	s.nextLBA += n
	return start
}

// freeLocked returns a range to the allocator, merging neighbours.
func (s *Store) freeLocked(start, blocks int64) {
	s.free = append(s.free, span{start: start, blocks: blocks})
	sort.Slice(s.free, func(i, j int) bool { return s.free[i].start < s.free[j].start })
	merged := s.free[:0]
	for _, f := range s.free {
		if n := len(merged); n > 0 && merged[n-1].start+merged[n-1].blocks == f.start {
			merged[n-1].blocks += f.blocks
		} else {
			merged = append(merged, f)
		}
	}
	s.free = merged
}

// flushLocked turns the memtable into an L0 SSTable, persists the
// manifest, queues the flush as maintenance, and triggers compaction
// when L0 is full.
func (s *Store) flushLocked() error {
	if len(s.mem) == 0 {
		return nil
	}
	entries := make([]entry, 0, len(s.mem))
	for k, d := range s.mem {
		entries = append(entries, entry{k: k, data: d})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].k.less(entries[j].k) })
	t, acc, err := s.writeTableLocked(entries)
	if err != nil {
		return err
	}
	s.levels[0] = append(s.levels[0], t)
	s.mem = make(map[key][]byte)
	macc, err := s.writeManifestLocked()
	if err != nil {
		return err
	}
	s.maint = append(s.maint, pagestore.Maint{
		Kind:     pagestore.MaintFlush,
		Accesses: []pagestore.Access{acc, macc},
	})
	if len(s.levels[0]) >= s.cfg.L0Tables {
		return s.compactLocked()
	}
	return nil
}

// compactLocked merges every L0 table with every overlapping L1 table
// into a single L1 run, dropping superseded versions and garbage
// generations, then persists the manifest and frees (TRIMs) the inputs.
func (s *Store) compactLocked() error {
	l0 := s.levels[0]
	if len(l0) == 0 {
		return nil
	}
	lo, hi := l0[0].minKey, l0[0].maxKey
	for _, t := range l0[1:] {
		if t.minKey.less(lo) {
			lo = t.minKey
		}
		if hi.less(t.maxKey) {
			hi = t.maxKey
		}
	}
	var keep, overlapped []*table
	for _, t := range s.levels[1] {
		if t.maxKey.less(lo) || hi.less(t.minKey) {
			keep = append(keep, t)
		} else {
			overlapped = append(overlapped, t)
		}
	}
	// Newest-first input order: L0 youngest to oldest, then L1. The
	// first version of a key wins; later (older) versions and keys from
	// dead generations are dropped — this is where deleted objects'
	// space is actually reclaimed.
	inputs := make([]*table, 0, len(l0)+len(overlapped))
	for i := len(l0) - 1; i >= 0; i-- {
		inputs = append(inputs, l0[i])
	}
	inputs = append(inputs, overlapped...)
	var accesses []pagestore.Access
	seen := make(map[key]bool)
	var entries []entry
	for _, t := range inputs {
		accesses = append(accesses, pagestore.Access{LBA: t.base, Blocks: int(t.blocks)})
		for i, k := range t.keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			o := s.reg[k.obj]
			if o == nil || o.gen != k.gen {
				continue // dead generation: garbage-collect
			}
			entries = append(entries, entry{k: k, data: s.disk[t.dataStart+int64(i)]})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].k.less(entries[j].k) })
	var out []*table
	if len(entries) > 0 {
		t, acc, err := s.writeTableLocked(entries)
		if err != nil {
			return err
		}
		accesses = append(accesses, acc)
		out = []*table{t}
	}
	s.levels[0] = nil
	merged := append(append([]*table{}, keep...), out...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].minKey.less(merged[j].minKey) })
	s.levels[1] = merged
	macc, err := s.writeManifestLocked()
	if err != nil {
		return err
	}
	accesses = append(accesses, macc)
	// Only now — the manifest no longer references the inputs — is it
	// safe to free them. A crash before this point recovers the old
	// manifest with the inputs intact.
	trims := make([]pagestore.Extent, 0, len(inputs))
	for _, t := range inputs {
		for b := int64(0); b < t.blocks; b++ {
			delete(s.disk, t.base+b)
		}
		s.freeLocked(t.base, t.blocks)
		trims = append(trims, pagestore.Extent{Start: t.base, Pages: t.blocks})
	}
	sort.Slice(trims, func(i, j int) bool { return trims[i].Start < trims[j].Start })
	s.maint = append(s.maint, pagestore.Maint{
		Kind:     pagestore.MaintCompaction,
		Accesses: accesses,
		Trims:    trims,
	})
	return nil
}

// Crash implements pagestore.Volatile: volatile state (memtable,
// undrained maintenance, the dead flag) is discarded and the tree is
// reloaded from the newest valid manifest slot. Blocks referenced by no
// live table or manifest slot are orphans from interrupted flushes or
// compactions; they are discarded and their space returns to the
// allocator. The registry survives by decree (see package doc).
func (s *Store) Crash() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dead = false
	s.kill = KillNone
	s.mem = make(map[key][]byte)
	s.maint = nil
	s.orphans = 0

	version, nextTableID, recs, ok := s.readManifestLocked()
	s.levels = [2][]*table{}
	if ok {
		s.version = version
		s.nextTableID = nextTableID
		for _, r := range recs {
			t, err := s.parseTableLocked(r.base, r.blocks)
			if err != nil {
				return fmt.Errorf("lsm: recovery: %v", err)
			}
			if r.level >= 2 {
				return fmt.Errorf("lsm: recovery: bad level %d", r.level)
			}
			s.levels[r.level] = append(s.levels[r.level], t)
		}
		sort.Slice(s.levels[1], func(i, j int) bool {
			return s.levels[1][i].minKey.less(s.levels[1][j].minKey)
		})
	} else {
		s.version = 0
		s.nextTableID = 0
	}

	// Rebuild the allocator from the live set and discard orphans.
	live := make([]span, 0, len(s.levels[0])+len(s.levels[1]))
	for _, lvl := range s.levels {
		for _, t := range lvl {
			live = append(live, span{start: t.base, blocks: t.blocks})
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].start < live[j].start })
	inLive := func(lba int64) bool {
		i := sort.Search(len(live), func(i int) bool { return live[i].start+live[i].blocks > lba })
		return i < len(live) && live[i].start <= lba
	}
	for lba := range s.disk {
		if lba < dataBase {
			continue // manifest slots
		}
		if !inLive(lba) {
			delete(s.disk, lba)
			s.orphans++
		}
	}
	s.free = nil
	s.nextLBA = dataBase
	for _, sp := range live {
		if sp.start > s.nextLBA {
			s.free = append(s.free, span{start: s.nextLBA, blocks: sp.start - s.nextLBA})
		}
		s.nextLBA = sp.start + sp.blocks
	}
	return nil
}
