package lsm

import (
	"encoding/binary"
	"hash/crc32"

	"hstoragedb/internal/pagestore"
)

// The manifest names the live SSTables. Two fixed slots at LBAs 0 and
// manifestSlotBlocks alternate (slot = version % 2): a writer never
// overwrites the newest valid manifest, so a torn slot write leaves the
// previous version intact. Recovery reads both slots, keeps those whose
// checksum verifies, and loads the higher version.
//
// Slot payload, CRC-protected:
//
//	version(8) nextTableID(8) numTables(4)
//	then per table: level(4) base(8) blocks(8)
//
// The object registry is deliberately absent — it is instantly durable
// (see the package doc) — and per-table key indexes and bloom filters
// are not duplicated here; they are reparsed from the tables' own
// blocks.

// manifestRec is one table record of a parsed manifest.
type manifestRec struct {
	level  int
	base   int64
	blocks int64
}

const manifestRecSize = 4 + 8 + 8

// writeManifestLocked persists the next manifest version into its slot,
// honouring armed kill points, and returns the slot write access.
func (s *Store) writeManifestLocked() (pagestore.Access, error) {
	if s.kill == KillBeforeManifest {
		s.dead = true
		s.kill = KillNone
		return pagestore.Access{}, ErrKilled
	}
	s.version++
	var recs []manifestRec
	for level, lvl := range s.levels {
		for _, t := range lvl {
			recs = append(recs, manifestRec{level: level, base: t.base, blocks: t.blocks})
		}
	}
	payload := make([]byte, 20+len(recs)*manifestRecSize)
	binary.BigEndian.PutUint64(payload[0:], s.version)
	binary.BigEndian.PutUint64(payload[8:], s.nextTableID)
	binary.BigEndian.PutUint32(payload[16:], uint32(len(recs)))
	for i, r := range recs {
		off := 20 + i*manifestRecSize
		binary.BigEndian.PutUint32(payload[off:], uint32(r.level))
		binary.BigEndian.PutUint64(payload[off+4:], uint64(r.base))
		binary.BigEndian.PutUint64(payload[off+12:], uint64(r.blocks))
	}

	// Slot image: crc(4) length(4) payload, split into blocks.
	img := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(img[0:], crc32.ChecksumIEEE(payload))
	binary.BigEndian.PutUint32(img[4:], uint32(len(payload)))
	copy(img[8:], payload)
	used := (int64(len(img)) + pagestore.PageSize - 1) / pagestore.PageSize
	if used > manifestSlotBlocks {
		// ~186k tables fit in a slot; unreachable at simulation scale.
		panic("lsm: manifest exceeds slot")
	}
	slotBase := int64(s.version%2) * manifestSlotBlocks
	for b := int64(0); b < used; b++ {
		if s.kill == KillMidManifest && b >= used/2 {
			// Torn slot: its checksum will not verify, so recovery
			// falls back to the other slot. Roll the version back so
			// the in-memory state matches what recovery will see.
			s.version--
			s.dead = true
			s.kill = KillNone
			return pagestore.Access{}, ErrKilled
		}
		blk := make([]byte, pagestore.PageSize)
		end := (b + 1) * pagestore.PageSize
		if end > int64(len(img)) {
			end = int64(len(img))
		}
		copy(blk, img[b*pagestore.PageSize:end])
		s.disk[slotBase+b] = blk
	}
	// A shrunken image must not leave stale trailing blocks from a
	// longer prior use of this slot; they would not corrupt (crc covers
	// length) but would linger forever.
	for b := used; b < manifestSlotBlocks; b++ {
		delete(s.disk, slotBase+b)
	}
	return pagestore.Access{Write: true, LBA: slotBase, Blocks: int(used)}, nil
}

// readSlotLocked parses one manifest slot, reporting ok=false on a
// missing or corrupt image.
func (s *Store) readSlotLocked(slotBase int64) (version, nextTableID uint64, recs []manifestRec, ok bool) {
	first := s.disk[slotBase]
	if len(first) < 8 {
		return 0, 0, nil, false
	}
	want := binary.BigEndian.Uint32(first[0:])
	length := int64(binary.BigEndian.Uint32(first[4:]))
	if length < 20 || length > manifestSlotBlocks*pagestore.PageSize-8 {
		return 0, 0, nil, false
	}
	img := make([]byte, 0, 8+length)
	used := (8 + length + pagestore.PageSize - 1) / pagestore.PageSize
	for b := int64(0); b < used; b++ {
		blk := s.disk[slotBase+b]
		if blk == nil {
			return 0, 0, nil, false
		}
		img = append(img, blk...)
	}
	payload := img[8 : 8+length]
	if crc32.ChecksumIEEE(payload) != want {
		return 0, 0, nil, false
	}
	version = binary.BigEndian.Uint64(payload[0:])
	nextTableID = binary.BigEndian.Uint64(payload[8:])
	n := int(binary.BigEndian.Uint32(payload[16:]))
	if int64(20+n*manifestRecSize) > length {
		return 0, 0, nil, false
	}
	for i := 0; i < n; i++ {
		off := 20 + i*manifestRecSize
		recs = append(recs, manifestRec{
			level:  int(binary.BigEndian.Uint32(payload[off:])),
			base:   int64(binary.BigEndian.Uint64(payload[off+4:])),
			blocks: int64(binary.BigEndian.Uint64(payload[off+12:])),
		})
	}
	return version, nextTableID, recs, true
}

// readManifestLocked loads the newest valid manifest from the two
// slots, reporting ok=false when neither holds one (a store that never
// flushed).
func (s *Store) readManifestLocked() (version, nextTableID uint64, recs []manifestRec, ok bool) {
	for slot := int64(0); slot < 2; slot++ {
		v, nt, r, valid := s.readSlotLocked(slot * manifestSlotBlocks)
		if valid && (!ok || v > version) {
			version, nextTableID, recs, ok = v, nt, r, true
		}
	}
	return version, nextTableID, recs, ok
}
