package lsm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hstoragedb/internal/pagestore"
)

// An SSTable occupies one contiguous block range:
//
//	block 0                     header (magic, id, key count, section sizes)
//	blocks [1, 1+BB)            bloom filter bits
//	blocks [1+BB, 1+BB+IB)      index: the sorted 16-byte keys; entry i
//	                            locates data block dataStart+i
//	blocks [dataStart, end)     data: one raw page per entry
//
// The key layout (object, generation, page, big-endian) makes the sort
// order group each object's pages contiguously, so a table holding one
// object's flush reads back sequentially.

const (
	tableMagic  = uint64(0x4c534d5442310001) // "LSMTB1" + version
	keySize     = 16
	keysPerBlk  = pagestore.PageSize / keySize
	bloomProbes = 4
)

// entry is one (key, page content) pair bound for an SSTable.
type entry struct {
	k    key
	data []byte
}

// table is the in-memory handle of one on-disk SSTable: its placement
// plus the decoded key index and bloom filter. Rebuilt from the disk
// image on recovery.
type table struct {
	id     uint64
	base   int64
	blocks int64

	bloomStart  int64
	bloomBlocks int64
	indexStart  int64
	dataStart   int64

	keys           []key
	bloom          []byte
	minKey, maxKey key
}

func encodeKey(b []byte, k key) {
	binary.BigEndian.PutUint32(b[0:], uint32(k.obj))
	binary.BigEndian.PutUint32(b[4:], k.gen)
	binary.BigEndian.PutUint64(b[8:], uint64(k.page))
}

func decodeKey(b []byte) key {
	return key{
		obj:  pagestore.ObjectID(binary.BigEndian.Uint32(b[0:])),
		gen:  binary.BigEndian.Uint32(b[4:]),
		page: int64(binary.BigEndian.Uint64(b[8:])),
	}
}

// bloomHashes derives the double-hashing pair for a key (FNV-1a, then
// one extra round over the first hash; h2 forced odd so the probe
// sequence walks the whole filter).
func bloomHashes(k key) (uint64, uint64) {
	var b [keySize]byte
	encodeKey(b[:], k)
	const offset, prime = 14695981039346656037, 1099511628211
	h1 := uint64(offset)
	for _, c := range b {
		h1 ^= uint64(c)
		h1 *= prime
	}
	h2 := (h1 ^ offset) * prime
	return h1, h2 | 1
}

// bloomMaybe reports whether the filter may contain k.
func (t *table) bloomMaybe(k key) bool {
	bits := uint64(len(t.bloom)) * 8
	h1, h2 := bloomHashes(k)
	for i := uint64(0); i < bloomProbes; i++ {
		bit := (h1 + i*h2) % bits
		if t.bloom[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

func bloomAdd(filter []byte, k key) {
	bits := uint64(len(filter)) * 8
	h1, h2 := bloomHashes(k)
	for i := uint64(0); i < bloomProbes; i++ {
		bit := (h1 + i*h2) % bits
		filter[bit/8] |= 1 << (bit % 8)
	}
}

// bloomBlockOf returns the LBA of the bloom block a probe of k touches
// (the block holding the first probed bit).
func (t *table) bloomBlockOf(k key) int64 {
	bits := uint64(len(t.bloom)) * 8
	h1, _ := bloomHashes(k)
	return t.bloomStart + int64((h1%bits)/(pagestore.PageSize*8))
}

// indexBlockOf returns the LBA of the index block holding entry i.
func (t *table) indexBlockOf(i int) int64 {
	if i >= len(t.keys) {
		i = len(t.keys) - 1
	}
	if i < 0 {
		i = 0
	}
	return t.indexStart + int64(i/keysPerBlk)
}

// find binary-searches the key index.
func (t *table) find(k key) (int, bool) {
	i := sort.Search(len(t.keys), func(i int) bool { return !t.keys[i].less(k) })
	return i, i < len(t.keys) && t.keys[i] == k
}

// writeTableLocked allocates and writes a new SSTable for the sorted
// entries, honouring an armed kill point, and returns its handle plus
// the single sequential write access it cost.
func (s *Store) writeTableLocked(entries []entry) (*table, pagestore.Access, error) {
	n := len(entries)
	bloomBits := int64(n * s.cfg.BloomBitsPerKey)
	if bloomBits < 64 {
		bloomBits = 64
	}
	bloomBlocks := (bloomBits + pagestore.PageSize*8 - 1) / (pagestore.PageSize * 8)
	indexBlocks := (int64(n)*keySize + pagestore.PageSize - 1) / pagestore.PageSize
	if indexBlocks == 0 {
		indexBlocks = 1
	}
	total := 1 + bloomBlocks + indexBlocks + int64(n)
	base := s.allocLocked(total)

	t := &table{
		id:          s.nextTableID,
		base:        base,
		blocks:      total,
		bloomStart:  base + 1,
		bloomBlocks: bloomBlocks,
		indexStart:  base + 1 + bloomBlocks,
		dataStart:   base + 1 + bloomBlocks + indexBlocks,
		keys:        make([]key, n),
		bloom:       make([]byte, bloomBlocks*pagestore.PageSize),
		minKey:      entries[0].k,
		maxKey:      entries[n-1].k,
	}
	s.nextTableID++
	for i, e := range entries {
		t.keys[i] = e.k
		bloomAdd(t.bloom, e.k)
	}

	blocks := make([][]byte, 0, total)
	header := make([]byte, pagestore.PageSize)
	binary.BigEndian.PutUint64(header[0:], tableMagic)
	binary.BigEndian.PutUint64(header[8:], t.id)
	binary.BigEndian.PutUint64(header[16:], uint64(n))
	binary.BigEndian.PutUint64(header[24:], uint64(bloomBlocks))
	binary.BigEndian.PutUint64(header[32:], uint64(indexBlocks))
	blocks = append(blocks, header)
	for b := int64(0); b < bloomBlocks; b++ {
		blocks = append(blocks, t.bloom[b*pagestore.PageSize:(b+1)*pagestore.PageSize])
	}
	idx := make([]byte, indexBlocks*pagestore.PageSize)
	for i, e := range entries {
		encodeKey(idx[i*keySize:], e.k)
	}
	for b := int64(0); b < indexBlocks; b++ {
		blocks = append(blocks, idx[b*pagestore.PageSize:(b+1)*pagestore.PageSize])
	}
	for _, e := range entries {
		buf := make([]byte, pagestore.PageSize)
		copy(buf, e.data)
		blocks = append(blocks, buf)
	}

	for i, blk := range blocks {
		if s.kill == KillMidSSTable && int64(i) >= total/2 {
			// Half-written table: the blocks stay as orphans for
			// recovery to discard.
			s.dead = true
			s.kill = KillNone
			return nil, pagestore.Access{}, ErrKilled
		}
		s.disk[base+int64(i)] = blk
	}
	return t, pagestore.Access{Write: true, LBA: base, Blocks: int(total)}, nil
}

// parseTableLocked rebuilds a table handle from its on-disk image.
func (s *Store) parseTableLocked(base, blocks int64) (*table, error) {
	header := s.disk[base]
	if len(header) < 40 || binary.BigEndian.Uint64(header[0:]) != tableMagic {
		return nil, fmt.Errorf("bad table header at lba %d", base)
	}
	n := int64(binary.BigEndian.Uint64(header[16:]))
	bloomBlocks := int64(binary.BigEndian.Uint64(header[24:]))
	indexBlocks := int64(binary.BigEndian.Uint64(header[32:]))
	if 1+bloomBlocks+indexBlocks+n != blocks {
		return nil, fmt.Errorf("table at lba %d: inconsistent geometry", base)
	}
	t := &table{
		id:          binary.BigEndian.Uint64(header[8:]),
		base:        base,
		blocks:      blocks,
		bloomStart:  base + 1,
		bloomBlocks: bloomBlocks,
		indexStart:  base + 1 + bloomBlocks,
		dataStart:   base + 1 + bloomBlocks + indexBlocks,
		keys:        make([]key, n),
		bloom:       make([]byte, bloomBlocks*pagestore.PageSize),
	}
	for b := int64(0); b < bloomBlocks; b++ {
		copy(t.bloom[b*pagestore.PageSize:], s.disk[t.bloomStart+b])
	}
	idx := make([]byte, indexBlocks*pagestore.PageSize)
	for b := int64(0); b < indexBlocks; b++ {
		copy(idx[b*pagestore.PageSize:], s.disk[t.indexStart+b])
	}
	for i := int64(0); i < n; i++ {
		t.keys[i] = decodeKey(idx[i*keySize:])
	}
	if n > 0 {
		t.minKey, t.maxKey = t.keys[0], t.keys[n-1]
	}
	return t, nil
}
