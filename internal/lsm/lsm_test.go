package lsm

import (
	"errors"
	"fmt"
	"testing"

	"hstoragedb/internal/pagestore"
)

// pat builds a recognizable page payload.
func pat(id pagestore.ObjectID, page int64, rev int) []byte {
	return []byte(fmt.Sprintf("obj=%d page=%d rev=%d", id, page, rev))
}

func mustWrite(t *testing.T, s *Store, id pagestore.ObjectID, page int64, data []byte) {
	t.Helper()
	if _, err := s.Write(id, page, data); err != nil {
		t.Fatalf("Write(%d,%d): %v", id, page, err)
	}
}

func checkPage(t *testing.T, s *Store, id pagestore.ObjectID, page int64, want []byte) {
	t.Helper()
	got, _, err := s.Read(id, page)
	if err != nil {
		t.Fatalf("Read(%d,%d): %v", id, page, err)
	}
	if string(got[:len(want)]) != string(want) {
		t.Fatalf("Read(%d,%d) = %q, want %q", id, page, got[:len(want)], want)
	}
}

func smallConfig() Config {
	return Config{MemtablePages: 8, L0Tables: 2}
}

func TestMemtableRoundTrip(t *testing.T) {
	s := New(smallConfig())
	if err := s.Create(1); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, 1, 0, pat(1, 0, 1))
	mustWrite(t, s, 1, 3, pat(1, 3, 1))
	checkPage(t, s, 1, 0, pat(1, 0, 1))
	checkPage(t, s, 1, 3, pat(1, 3, 1))
	if got := s.Pages(1); got != 4 {
		t.Fatalf("Pages = %d, want 4", got)
	}
	// Never-written page reads as zeroes without device I/O.
	data, plan, err := s.Read(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("unwritten page not zero")
		}
	}
	if len(plan) != 0 {
		t.Fatalf("empty tree probe produced %d accesses", len(plan))
	}
}

func TestFlushAndProbePlan(t *testing.T) {
	s := New(smallConfig())
	if err := s.Create(1); err != nil {
		t.Fatal(err)
	}
	for p := int64(0); p < 5; p++ {
		mustWrite(t, s, 1, p, pat(1, p, 1))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.MemtableLen() != 0 {
		t.Fatal("memtable not empty after Sync")
	}
	jobs := s.DrainMaintenance()
	if len(jobs) != 1 || jobs[0].Kind != pagestore.MaintFlush {
		t.Fatalf("jobs = %+v, want one flush", jobs)
	}
	var writes int
	for _, a := range jobs[0].Accesses {
		if !a.Write {
			t.Fatalf("flush job contains a read: %+v", a)
		}
		writes += a.Blocks
	}
	// 5 data + header + bloom + index + manifest slot.
	if writes < 9 {
		t.Fatalf("flush wrote %d blocks, want >= 9", writes)
	}
	// A tree read now costs bloom + index + data accesses.
	data, plan, err := s.Read(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:len(pat(1, 2, 1))]) != string(pat(1, 2, 1)) {
		t.Fatal("flushed page corrupt")
	}
	if len(plan) != 3 {
		t.Fatalf("probe plan has %d accesses, want 3 (bloom, index, data)", len(plan))
	}
	if !plan[0].Meta || !plan[1].Meta || plan[2].Meta {
		t.Fatalf("probe plan meta flags wrong: %+v", plan)
	}
}

func TestCompactionMergesAndCollects(t *testing.T) {
	s := New(smallConfig())
	if err := s.Create(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(2); err != nil {
		t.Fatal(err)
	}
	// Two flush rounds trigger one compaction (L0Tables=2).
	for p := int64(0); p < 8; p++ {
		mustWrite(t, s, 1, p, pat(1, p, 1))
	}
	for p := int64(0); p < 8; p++ {
		mustWrite(t, s, 2, p, pat(2, p, 1))
	}
	lv := s.TablesPerLevel()
	if lv[0] != 0 || lv[1] != 1 {
		t.Fatalf("levels = %v, want [0 1]", lv)
	}
	jobs := s.DrainMaintenance()
	var compactions int
	for _, j := range jobs {
		if j.Kind == pagestore.MaintCompaction {
			compactions++
			if len(j.Trims) == 0 {
				t.Fatal("compaction reported no trims")
			}
		}
	}
	if compactions != 1 {
		t.Fatalf("compactions = %d, want 1", compactions)
	}
	for p := int64(0); p < 8; p++ {
		checkPage(t, s, 1, p, pat(1, p, 1))
		checkPage(t, s, 2, p, pat(2, p, 1))
	}

	// Deleting object 2 makes its versions garbage; the next compaction
	// must not carry them into the output.
	if _, err := s.Delete(2); err != nil {
		t.Fatal(err)
	}
	for p := int64(0); p < 16; p++ {
		mustWrite(t, s, 1, p, pat(1, p, 2))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	for s.TablesPerLevel()[0] > 0 {
		// Force the tree into a single compacted run.
		for p := int64(0); p < 16; p++ {
			mustWrite(t, s, 1, p, pat(1, p, 3))
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	for _, tb := range s.levels[1] {
		for _, k := range tb.keys {
			if k.obj == 2 {
				s.mu.Unlock()
				t.Fatal("deleted object's pages survived compaction")
			}
		}
	}
	s.mu.Unlock()
}

func TestOverwriteNewestWins(t *testing.T) {
	s := New(smallConfig())
	if err := s.Create(1); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, 1, 0, pat(1, 0, 1))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, 1, 0, pat(1, 0, 2))
	checkPage(t, s, 1, 0, pat(1, 0, 2)) // memtable over L0
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	checkPage(t, s, 1, 0, pat(1, 0, 2)) // newer L0 over older
	mustWrite(t, s, 1, 0, pat(1, 0, 3))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	checkPage(t, s, 1, 0, pat(1, 0, 3)) // post-compaction single copy
}

func TestTruncateInvalidatesVersions(t *testing.T) {
	s := New(smallConfig())
	if err := s.Create(1); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, 1, 0, pat(1, 0, 1))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Truncate(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Pages(1); got != 0 {
		t.Fatalf("Pages after truncate = %d", got)
	}
	data, _, err := s.Read(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("truncated page still readable")
		}
	}
}

func TestUnknownObject(t *testing.T) {
	s := New(smallConfig())
	if _, _, err := s.Read(9, 0); !errors.Is(err, pagestore.ErrUnknownObject) {
		t.Fatalf("Read err = %v", err)
	}
	if _, err := s.Write(9, 0, nil); !errors.Is(err, pagestore.ErrUnknownObject) {
		t.Fatalf("Write err = %v", err)
	}
	if _, err := s.Delete(9); !errors.Is(err, pagestore.ErrUnknownObject) {
		t.Fatalf("Delete err = %v", err)
	}
}

func TestCrashLosesMemtableKeepsSynced(t *testing.T) {
	s := New(smallConfig())
	if err := s.Create(1); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, 1, 0, pat(1, 0, 1))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, 1, 1, pat(1, 1, 1)) // absorbed, never synced
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	checkPage(t, s, 1, 0, pat(1, 0, 1))
	data, _, err := s.Read(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("unsynced write survived crash")
		}
	}
	// Registry is instantly durable: the object still exists even
	// though it was created after the last Sync.
	if err := s.Create(1); err == nil {
		t.Fatal("Create(1) succeeded after crash; registry lost")
	}
}

func TestKillPoints(t *testing.T) {
	for _, tc := range []struct {
		point   KillPoint
		orphans bool
	}{
		{KillMidSSTable, true},
		{KillBeforeManifest, true},
		{KillMidManifest, true},
	} {
		t.Run(fmt.Sprint(tc.point), func(t *testing.T) {
			s := New(smallConfig())
			if err := s.Create(1); err != nil {
				t.Fatal(err)
			}
			mustWrite(t, s, 1, 0, pat(1, 0, 1))
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			versionBefore := s.Version()

			mustWrite(t, s, 1, 1, pat(1, 1, 1))
			s.Kill(tc.point)
			if err := s.Sync(); !errors.Is(err, ErrKilled) {
				t.Fatalf("Sync with kill point = %v, want ErrKilled", err)
			}
			if !s.Dead() {
				t.Fatal("store not dead after kill")
			}
			if _, _, err := s.Read(1, 0); !errors.Is(err, ErrKilled) {
				t.Fatalf("Read on dead store = %v, want ErrKilled", err)
			}

			if err := s.Crash(); err != nil {
				t.Fatal(err)
			}
			// The interrupted flush never committed: recovery loads the
			// previous manifest and discards the partial output.
			if got := s.Version(); got != versionBefore {
				t.Fatalf("version after recovery = %d, want %d", got, versionBefore)
			}
			if tc.orphans && s.OrphansDiscarded() == 0 {
				t.Fatal("recovery discarded no orphans")
			}
			checkPage(t, s, 1, 0, pat(1, 0, 1))
			data, _, err := s.Read(1, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range data {
				if b != 0 {
					t.Fatal("killed flush's page visible after recovery")
				}
			}
			// The store works again.
			mustWrite(t, s, 1, 1, pat(1, 1, 2))
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			checkPage(t, s, 1, 1, pat(1, 1, 2))
		})
	}
}

func TestManifestAlternatesSlots(t *testing.T) {
	s := New(smallConfig())
	if err := s.Create(1); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		mustWrite(t, s, 1, int64(round), pat(1, int64(round), round))
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := s.Crash(); err != nil {
			t.Fatal(err)
		}
		for p := int64(0); p <= int64(round); p++ {
			checkPage(t, s, 1, p, pat(1, p, int(p)))
		}
	}
}

func TestDirectRegionPassThrough(t *testing.T) {
	s := New(Config{})
	const walObj = pagestore.ObjectID(1 << 29)
	if err := s.Create(walObj); err != nil {
		t.Fatal(err)
	}
	plan, err := s.Write(walObj, 0, []byte("log"))
	if err != nil {
		t.Fatal(err)
	}
	// Direct writes hit the device immediately — the WAL cannot sit in
	// the memtable it is responsible for making durable.
	if len(plan) != 1 || !plan[0].Write {
		t.Fatalf("direct write plan = %+v", plan)
	}
	if plan[0].LBA < directLBAOffset {
		t.Fatalf("direct LBA %d not offset into the direct region", plan[0].LBA)
	}
	data, plan, err := s.Read(walObj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:3]) != "log" {
		t.Fatal("direct read corrupt")
	}
	if len(plan) != 1 || plan[0].LBA < directLBAOffset {
		t.Fatalf("direct read plan = %+v", plan)
	}
	// Direct objects survive Crash untouched (in-place durability).
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	data, _, err = s.Read(walObj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:3]) != "log" {
		t.Fatal("direct page lost in crash")
	}
	exts, err := s.Delete(walObj)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exts {
		if e.Start < directLBAOffset {
			t.Fatalf("direct delete extent %+v not offset", e)
		}
	}
}

func TestIteratorOrderAndRacingDelete(t *testing.T) {
	s := New(smallConfig())
	if err := s.Create(1); err != nil {
		t.Fatal(err)
	}
	// Mix of flushed and memtable-resident pages.
	for p := int64(0); p < 10; p++ {
		mustWrite(t, s, 1, p, pat(1, p, 1))
	}
	it, err := s.Iter(1)
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(0); want < 10; want++ {
		p, data, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("Next: ok=%v err=%v", ok, err)
		}
		if p != want {
			t.Fatalf("iterator page %d, want %d", p, want)
		}
		if string(data[:len(pat(1, p, 1))]) != string(pat(1, p, 1)) {
			t.Fatalf("iterator page %d corrupt", p)
		}
	}
	if _, _, ok, _ := it.Next(); ok {
		t.Fatal("iterator did not stop")
	}

	it2, err := s.Iter(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := it2.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := it2.Next(); !errors.Is(err, pagestore.ErrUnknownObject) {
		t.Fatalf("Next after racing delete = %v, want ErrUnknownObject", err)
	}
}

func TestAllocatorReusesCompactedSpace(t *testing.T) {
	s := New(smallConfig())
	if err := s.Create(1); err != nil {
		t.Fatal(err)
	}
	var before int64
	for round := 0; round < 20; round++ {
		for p := int64(0); p < 8; p++ {
			mustWrite(t, s, 1, p, pat(1, p, round))
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		if round == 5 {
			s.mu.Lock()
			before = s.nextLBA
			s.mu.Unlock()
		}
	}
	s.mu.Lock()
	after := s.nextLBA
	s.mu.Unlock()
	// Steady-state overwrites of the same 8 pages must recycle freed
	// table space rather than growing the device without bound.
	if after > before*4 {
		t.Fatalf("address space grew %d -> %d despite steady-state workload", before, after)
	}
	s.DrainMaintenance()
}
