package simclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %v", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Millisecond)
	c.Advance(3 * time.Millisecond)
	if got := c.Now(); got != 8*time.Millisecond {
		t.Fatalf("Now() = %v, want 8ms", got)
	}
}

func TestClockAdvanceNegativeIgnored(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if got := c.Now(); got != time.Second {
		t.Fatalf("negative advance changed clock to %v", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(10 * time.Millisecond)
	if got := c.AdvanceTo(5 * time.Millisecond); got != 10*time.Millisecond {
		t.Fatalf("AdvanceTo backwards moved clock to %v", got)
	}
	if got := c.AdvanceTo(20 * time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("AdvanceTo forward gave %v", got)
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(time.Minute)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("reset clock reads %v", c.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	// Two requests arriving at t=0 with 10ms service each: the second
	// completes at 20ms.
	d1 := r.Serve(0, 10*time.Millisecond)
	d2 := r.Serve(0, 10*time.Millisecond)
	if d1 != 10*time.Millisecond || d2 != 20*time.Millisecond {
		t.Fatalf("completions %v, %v; want 10ms, 20ms", d1, d2)
	}
}

func TestResourceIdleGap(t *testing.T) {
	var r Resource
	r.Serve(0, 10*time.Millisecond)
	// Arrival after the resource went idle starts immediately.
	d := r.Serve(time.Second, 5*time.Millisecond)
	if d != time.Second+5*time.Millisecond {
		t.Fatalf("completion %v, want 1.005s", d)
	}
}

func TestResourceNegativeServiceClamped(t *testing.T) {
	var r Resource
	if d := r.Serve(time.Millisecond, -time.Second); d != time.Millisecond {
		t.Fatalf("negative service gave %v", d)
	}
}

func TestResourceCounters(t *testing.T) {
	var r Resource
	r.Serve(0, 2*time.Millisecond)
	r.Serve(0, 3*time.Millisecond)
	if r.Served() != 2 {
		t.Fatalf("served = %d", r.Served())
	}
	if r.BusyTime() != 5*time.Millisecond {
		t.Fatalf("busy = %v", r.BusyTime())
	}
	if r.BusyUntil() != 5*time.Millisecond {
		t.Fatalf("busyUntil = %v", r.BusyUntil())
	}
	r.Reset()
	if r.Served() != 0 || r.BusyTime() != 0 || r.BusyUntil() != 0 {
		t.Fatalf("reset left %v", r.String())
	}
}

// Property: completions never precede arrival + service, and busy time
// equals the sum of services.
func TestResourceProperties(t *testing.T) {
	f := func(arrivals []uint16, services []uint16) bool {
		var r Resource
		n := len(arrivals)
		if len(services) < n {
			n = len(services)
		}
		var total time.Duration
		for i := 0; i < n; i++ {
			at := time.Duration(arrivals[i]) * time.Microsecond
			svc := time.Duration(services[i]) * time.Microsecond
			done := r.Serve(at, svc)
			if done < at+svc {
				return false
			}
			total += svc
		}
		return r.BusyTime() == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Concurrent use must not race or lose work.
func TestResourceConcurrent(t *testing.T) {
	var r Resource
	var wg sync.WaitGroup
	const workers = 8
	const each = 100
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				r.Serve(0, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Served() != workers*each {
		t.Fatalf("served %d, want %d", r.Served(), workers*each)
	}
	if r.BusyTime() != workers*each*time.Microsecond {
		t.Fatalf("busy %v", r.BusyTime())
	}
}

func TestClockConcurrent(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8000*time.Nanosecond {
		t.Fatalf("lost advances: %v", c.Now())
	}
}
