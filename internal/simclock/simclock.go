// Package simclock provides the virtual-time substrate used by the
// storage simulator.
//
// The paper's evaluation measures wall-clock execution time on a real
// testbed. This reproduction replaces the testbed with a discrete-event
// model: every I/O request has a service time derived from a device model
// (see package device), and devices are serialized resources. A Resource
// tracks the instant until which it is busy; a request arriving at logical
// time t starts at max(t, busyUntil) and completes at start+service. Each
// query stream advances its own logical clock, so concurrent streams
// contend for devices exactly the way concurrent queries contend for a
// shared disk.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Duration is virtual time. It aliases time.Duration so device models can
// use familiar literals (time.Millisecond etc.) while remaining purely
// simulated.
type Duration = time.Duration

// Clock is a monotonically advancing virtual clock for one request stream.
// The zero value is a clock at time zero, ready to use.
type Clock struct {
	mu  sync.Mutex
	now Duration
	id  int64
}

// SetID assigns the stream identity used as the trace track for
// requests submitted on this clock. Sessions number their clocks
// sequentially at creation so traces of a fixed-seed run are stable.
func (c *Clock) SetID(id int64) {
	c.mu.Lock()
	c.id = id
	c.mu.Unlock()
}

// ID reports the stream identity assigned by SetID (0 if none).
func (c *Clock) ID() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.id
}

// Now returns the current virtual time.
func (c *Clock) Now() Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative d is ignored so callers
// can pass raw deltas without clamping.
func (c *Clock) Advance(d Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// AdvanceTo moves the clock to t if t is later than the current time and
// returns the resulting time.
func (c *Clock) AdvanceTo(t Duration) Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to zero. Intended for reusing a clock between
// experiment runs.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}

// Resource is a serially shared facility (a disk, an SSD, a network link).
// Concurrent streams that use the same Resource queue behind one another:
// service is granted in call order, and each call returns the completion
// time of the request. Device traffic normally reaches a Resource through
// the QoS I/O scheduler (package iosched), which decides the call order —
// and therefore the service order — by class priority rather than by
// submission order.
type Resource struct {
	mu        sync.Mutex
	busyUntil Duration
	busyTime  Duration // total time spent serving
	served    int64
}

// Serve schedules a request arriving at time `at` that needs `service`
// time. It returns the completion time. Service is never negative.
func (r *Resource) Serve(at, service Duration) Duration {
	if service < 0 {
		service = 0
	}
	r.mu.Lock()
	start := at
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end := start + service
	r.busyUntil = end
	r.busyTime += service
	r.served++
	r.mu.Unlock()
	return end
}

// ServeBackground schedules work on the resource without a waiting
// requester: the work occupies the device beginning at time `at` (or when
// the device becomes free, whichever is later) but nobody blocks on the
// completion. This models asynchronous flushes from the write buffer to
// the HDD. It returns the completion time for bookkeeping.
func (r *Resource) ServeBackground(at, service Duration) Duration {
	return r.Serve(at, service)
}

// BusyUntil reports the time at which the resource becomes idle.
func (r *Resource) BusyUntil() Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busyUntil
}

// BusyTime reports cumulative service time delivered by the resource.
func (r *Resource) BusyTime() Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busyTime
}

// Served reports how many requests the resource has completed.
func (r *Resource) Served() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.served
}

// Reset returns the resource to idle at time zero.
func (r *Resource) Reset() {
	r.mu.Lock()
	r.busyUntil, r.busyTime, r.served = 0, 0, 0
	r.mu.Unlock()
}

// String implements fmt.Stringer for debugging.
func (r *Resource) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("resource{busyUntil=%v busy=%v served=%d}", r.busyUntil, r.busyTime, r.served)
}
