package iosched

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
)

// TestPickerEquivalence is the differential guarantee behind the indexed
// picker: across 500 randomized workloads cycling through the FIFO, fair
// and class-only modes (and varied aging, coalescing, readahead and
// budget knobs), the indexed structures grant the exact same sequence —
// same batches, same member order, same budget flags — as the reference
// linear picker (Config.LinearPick). Grant-order equality is what keeps
// traces and BENCH goldens byte-for-byte deterministic across the
// swap.
func TestPickerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		cfgRng := rand.New(rand.NewSource(seed))
		cfg := Config{}
		fair := false
		switch seed % 3 {
		case 0: // class-only
		case 1:
			fair = true
		case 2:
			cfg.FIFO = true
		}
		switch cfgRng.Intn(3) {
		case 0:
			cfg.AgingBound = time.Millisecond
		case 1:
			cfg.AgingBound = DisableAging
		}
		if cfgRng.Intn(2) == 0 {
			cfg.MaxCoalesce = 8
		}
		if cfgRng.Intn(2) == 0 {
			cfg.Readahead = DisableReadahead
		} else {
			cfg.Readahead = 8
		}
		if cfgRng.Intn(3) == 0 {
			cfg.BackgroundShare = DisableBackgroundShare
		}

		linear := cfg
		linear.LinearPick = true
		want := grantTrace(t, linear, fair, seed)
		got := grantTrace(t, cfg, fair, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d (%+v fair=%v): %d grants indexed vs %d linear\nindexed: %v\nlinear: %v",
				seed, cfg, fair, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d (%+v fair=%v): grant %d diverged\nindexed: %s\nlinear:  %s",
					seed, cfg, fair, i, got[i], want[i])
			}
		}
	}
}

// grantTrace runs one randomized single-threaded workload against a
// fresh scheduler and records every grant the picker issued.
func grantTrace(t *testing.T, cfg Config, fair bool, seed int64) []string {
	t.Helper()
	g, s, _ := newTestSched(cfg)
	if fair {
		g.SetTenantWeight(1, 4)
		g.SetTenantWeight(2, 1)
	}
	var grants []string
	s.grantHook = func(batch []*request, start int64, total int, budget bool) {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%v@%d+%d budget=%v seqs=", batch[0].op, start, total, budget)
		for _, r := range batch {
			fmt.Fprintf(&sb, "%d,", r.seq)
		}
		grants = append(grants, sb.String())
	}
	rng := rand.New(rand.NewSource(seed))
	classes := []dss.Class{dss.ClassLog, dss.ClassWriteBuffer, dss.Class(1),
		dss.Class(2), seqClass, dss.ClassNone}
	var at time.Duration
	for i := 0; i < 200; i++ {
		at += time.Duration(rng.Intn(300)) * time.Microsecond
		if rng.Intn(4) == 0 {
			// Background destages over a small LBA range, mostly
			// single-block, so absorption collisions actually happen.
			blocks := 1
			if rng.Intn(4) == 0 {
				blocks = 1 + rng.Intn(3)
			}
			s.SubmitBackground(at, device.Write, int64(rng.Intn(400)+100000), blocks,
				dss.ClassWriteBuffer, dss.TenantID(rng.Intn(3)))
			continue
		}
		op := device.Read
		if rng.Intn(3) == 0 {
			op = device.Write
		}
		s.Submit(at, op, int64(rng.Intn(4000)), 1+rng.Intn(12),
			classes[rng.Intn(len(classes))], dss.TenantID(rng.Intn(3)), nil)
	}
	g.Drain()
	return grants
}

// TestFIFOHeadIsOldestArrival is the FIFO-mode regression for the
// indexed picker: arrivals are stamped by per-stream session clocks, so
// enqueue order is not arrival order, and the grant must follow the
// (arrive, seq) minimum — the aging-heap head — not the queue head.
func TestFIFOHeadIsOldestArrival(t *testing.T) {
	g, s, _ := newTestSched(Config{FIFO: true, Readahead: DisableReadahead})
	var order []time.Duration
	s.grantHook = func(batch []*request, start int64, total int, budget bool) {
		order = append(order, batch[0].arrive)
	}
	// Arrival times deliberately out of enqueue order.
	arrivals := []time.Duration{5 * time.Millisecond, time.Millisecond,
		4 * time.Millisecond, 0, 2 * time.Millisecond, 2 * time.Millisecond}
	s.mu.Lock()
	for i, at := range arrivals {
		s.enqueueLocked(bareWaiter(dss.Class(2), dss.DefaultTenant), at,
			device.Read, int64(1000*i), 1, dss.Class(2), dss.DefaultTenant, nil)
	}
	s.mu.Unlock()
	g.Drain()
	if len(order) != len(arrivals) {
		t.Fatalf("granted %d of %d requests", len(order), len(arrivals))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("FIFO grant order not by arrival: %v", order)
		}
	}
	if order[0] != 0 || order[len(order)-1] != 5*time.Millisecond {
		t.Fatalf("FIFO grant order not by arrival: %v", order)
	}
}
