package iosched

import (
	"sort"
	"sync"
	"testing"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/simclock"
)

// Zero config values mean the documented defaults; the Disable*
// sentinels round-trip through withDefaults untouched, so "aging off"
// and "no background share" are representable.
func TestConfigZeroAndSentinels(t *testing.T) {
	def := Config{}.withDefaults()
	if def.AgingBound != defaultAgingBound {
		t.Errorf("zero AgingBound = %v, want default %v", def.AgingBound, defaultAgingBound)
	}
	if def.BackgroundShare != defaultBackgroundShare {
		t.Errorf("zero BackgroundShare = %v, want default %v", def.BackgroundShare, defaultBackgroundShare)
	}
	if def.Readahead != defaultReadahead {
		t.Errorf("zero Readahead = %v, want default %v", def.Readahead, defaultReadahead)
	}
	off := Config{
		AgingBound:      DisableAging,
		BackgroundShare: DisableBackgroundShare,
		Readahead:       DisableReadahead,
	}.withDefaults()
	if off.AgingBound != DisableAging {
		t.Errorf("DisableAging clobbered to %v", off.AgingBound)
	}
	if off.BackgroundShare != DisableBackgroundShare {
		t.Errorf("DisableBackgroundShare clobbered to %v", off.BackgroundShare)
	}
	if off.Readahead != DisableReadahead {
		t.Errorf("DisableReadahead clobbered to %v", off.Readahead)
	}
}

// With aging disabled, the TestAgingBound scenario inverts: the stale
// low-priority request keeps waiting behind fresher high-priority ones
// and no boost is ever recorded.
func TestAgingDisabled(t *testing.T) {
	g, s, dev := newTestSched(Config{AgingBound: DisableAging, Readahead: -1})
	dev.Access(0, device.Write, 0, 64) // busy horizon well past any bound

	low := enqueue(g, s, 0, device.Read, 5000, 1, seqClass)
	high := enqueue(g, s, 0, device.Write, 9000, 1, dss.ClassLog)
	drain(g)
	if high.completion >= low.completion {
		t.Fatalf("priority inverted with aging off: high %v vs low %v", high.completion, low.completion)
	}
	if got := s.Stats().Boosted; got != 0 {
		t.Fatalf("Boosted = %d with aging disabled", got)
	}
}

// TestBackgroundShareZeroIsDefault locks in the documented
// zero-means-default: a Config that sets BackgroundShare to 0 gets the
// 0.3 budget (budget grants happen under saturation), not "no share".
func TestBackgroundShareZeroIsDefault(t *testing.T) {
	_, s, _ := newTestSched(Config{BackgroundShare: 0, Readahead: -1})
	for i := 0; i < 200; i++ {
		s.SubmitBackground(0, device.Write, 500000+int64(i), 1, dss.ClassWriteBuffer, dss.DefaultTenant)
		s.Submit(0, device.Read, int64((i*7919)%100000), 1, dss.Class(2), dss.DefaultTenant, nil)
	}
	if got := s.Stats().BudgetGrants; got == 0 {
		t.Fatal("BackgroundShare 0 behaved as disabled; zero must mean the 0.3 default")
	}
}

// TestBudgetLedgerBalances is the write-back budget audit: over a
// saturated run with coalesced budget grants, every deposited and
// withdrawn block is accounted exactly once — deposits minus
// withdrawals equals the live credit balance, the balance never goes
// negative, and the overdraw the zero floor forgives (blocks a budget
// grant carried beyond its withdrawal) is bounded by one budget batch
// per grant. Coalesced background blocks are never double-counted:
// each budget grant withdraws at most the blocks it carried, once.
func TestBudgetLedgerBalances(t *testing.T) {
	g, s, _ := newTestSched(Config{BackgroundShare: 0.25, Readahead: -1})
	for i := 0; i < 400; i++ {
		s.SubmitBackground(0, device.Write, 500000+int64(i), 1, dss.ClassWriteBuffer, dss.DefaultTenant)
		s.Submit(0, device.Read, int64((i*7919)%100000), 1, dss.Class(2), dss.DefaultTenant, nil)
	}
	check := func(when string) {
		s.mu.Lock()
		st, credit := s.stats, s.bgCredit
		s.mu.Unlock()
		if st.BudgetGrants == 0 || st.Coalesced == 0 {
			t.Fatalf("%s: scenario did not exercise coalesced budget grants: %+v", when, st)
		}
		if diff := st.BudgetDeposits - st.BudgetWithdrawals - credit; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s: ledger imbalance: deposits %.3f - withdrawals %.3f != credit %.3f",
				when, st.BudgetDeposits, st.BudgetWithdrawals, credit)
		}
		if credit < 0 {
			t.Fatalf("%s: credit balance went negative: %.3f", when, credit)
		}
		if st.BudgetWithdrawals > float64(st.BudgetBlocks) {
			t.Fatalf("%s: withdrawals %.3f exceed the %d blocks budget grants carried (double-counting)",
				when, st.BudgetWithdrawals, st.BudgetBlocks)
		}
		forgiven := float64(st.BudgetBlocks) - st.BudgetWithdrawals
		if forgiven > float64(st.BudgetGrants*budgetMaxCoalesce) {
			t.Fatalf("%s: forgiven overdraw %.3f exceeds one budget batch per grant (%d grants)",
				when, forgiven, st.BudgetGrants)
		}
	}
	check("saturated")
	// A stats reset re-seeds the surviving credit balance as an opening
	// deposit, so the invariant holds in the measured window too.
	g.ResetStats()
	for i := 0; i < 100; i++ {
		s.SubmitBackground(0, device.Write, 600000+int64(i), 1, dss.ClassWriteBuffer, dss.DefaultTenant)
		s.Submit(0, device.Read, int64((i*7919)%100000), 1, dss.Class(2), dss.DefaultTenant, nil)
	}
	check("after reset")
	// Drain grants ride free device time: they must not touch the ledger.
	s.mu.Lock()
	before := s.stats.BudgetWithdrawals
	s.mu.Unlock()
	g.Drain()
	check("drained")
	s.mu.Lock()
	after := s.stats.BudgetWithdrawals
	s.mu.Unlock()
	if after != before {
		t.Fatalf("final drain withdrew budget credit: %.3f -> %.3f", before, after)
	}
}

// TestBudgetRespectsBatchCap: a background chunk larger than the budget
// batch cap is never budget-forced ahead of waiting foreground — the
// cap bounds the latency a budget grant injects, and the head request
// must obey it like the coalescing loop does.
func TestBudgetRespectsBatchCap(t *testing.T) {
	g, s, dev := newTestSched(Config{BackgroundShare: 0.5, Readahead: -1})
	dev.Access(0, device.Write, 0, 16) // device busy: nothing rides idle time
	s.mu.Lock()
	s.enqueueLocked(nil, 0, device.Write, 500000, 2*budgetMaxCoalesce, dss.ClassWriteBuffer, dss.DefaultTenant, nil)
	fg := bareWaiter(dss.Class(2), dss.DefaultTenant)
	s.enqueueLocked(fg, 0, device.Read, 100, 1, dss.Class(2), dss.DefaultTenant, nil)
	s.bgCredit = 20 // ample credit: the old code would budget-grant the big chunk
	s.mu.Unlock()
	g.Drain()
	s.mu.Lock()
	budgetGrants := s.stats.BudgetGrants
	s.mu.Unlock()
	if budgetGrants != 0 {
		t.Fatalf("oversized background chunk was budget-granted ahead of foreground (%d budget grants)", budgetGrants)
	}
	// Foreground was served first: its completion reflects only the
	// pre-existing busy horizon plus its own service, not the destage.
	ref := device.New(device.Cheetah15K())
	ref.Access(0, device.Write, 0, 16)
	want := ref.Access(0, device.Read, 100, 1)
	if fg.completion != want {
		t.Fatalf("foreground waited behind the oversized destage: %v, want %v", fg.completion, want)
	}
}

// TestAgedRequestKeepsElevatorAndCoalescing locks in satellite-audited
// behaviour: an aged request wins by age (not by elevator distance),
// but its grant still assembles the normal coalesced batch, and a
// multi-chunk same-tenant write drains in LBA order (no same-tenant
// write reordering through the aging path).
func TestAgedRequestKeepsElevatorAndCoalescing(t *testing.T) {
	g, s, dev := newTestSched(Config{AgingBound: 2 * time.Millisecond, MaxCoalesce: 8, Readahead: -1})
	dev.Access(0, device.Write, 0, 128) // ~18ms busy: queued work is instantly overdue

	// One multi-chunk, far-away, low-class write submission (3 chunks)
	// plus adjacent same-class single writes, against fresher log writes
	// sitting near the device head.
	aged := enqueue(g, s, 0, device.Write, 500000, 20, seqClass)
	tail := enqueue(g, s, 0, device.Write, 500020, 4, seqClass)
	var logs []*waiter
	for i := 0; i < 4; i++ {
		logs = append(logs, enqueue(g, s, time.Millisecond, device.Write, int64(128+2*i), 1, dss.ClassLog))
	}
	drain(g)

	if s.Stats().Boosted == 0 {
		t.Fatal("aged request was never boosted")
	}
	// Age, not elevator distance or rank, picked the winner: the aged
	// far-away write finished no later than the fresher near log writes.
	for i, l := range logs {
		if aged.completion > l.completion {
			t.Fatalf("aged write %v finished after fresher log write[%d] %v", aged.completion, i, l.completion)
		}
	}
	// The aged grant still coalesced: 24 adjacent seq-class blocks in
	// MaxCoalesce-sized batches that continue each other's LBA run
	// (SeqAccesses counts continuations), so same-tenant write order is
	// LBA order, not scrambled by the boost.
	st := dev.Stats()
	if st.Writes != 1+3+4 { // initial occupancy + 3 batches of 8 + 4 log writes
		t.Fatalf("device writes = %d, want 8 (3 coalesced seq batches + 4 log + occupancy)", st.Writes)
	}
	if st.SeqAccesses < 2 {
		t.Fatalf("aged chunks did not drain as a continuing LBA run: SeqAccesses = %d", st.SeqAccesses)
	}
	if tail.completion < aged.completion {
		t.Fatalf("adjacent tail write %v completed before the aged head %v", tail.completion, aged.completion)
	}
}

// TestTenantFairSharesConverge: two backlogged tenants with 9:1 weights
// receive device blocks in weight proportion while both are pending —
// among the first 100 granted requests, the weight-9 tenant holds its
// 90% share within ±10%.
func TestTenantFairSharesConverge(t *testing.T) {
	g, s, _ := newTestSched(Config{AgingBound: DisableAging, Readahead: -1})
	g.SetTenantWeight(1, 9)
	g.SetTenantWeight(2, 1)

	type done struct {
		tenant dss.TenantID
		w      *waiter
	}
	var ws []done
	for i := 0; i < 100; i++ {
		w1 := bareWaiter(dss.Class(2), 1)
		w2 := bareWaiter(dss.Class(2), 2)
		s.mu.Lock()
		// Stride 2 within disjoint regions: same class, never adjacent,
		// so coalescing cannot blur the share measurement.
		s.enqueueLocked(w1, 0, device.Read, int64(2*i), 1, dss.Class(2), 1, nil)
		s.enqueueLocked(w2, 0, device.Read, 1_000_000+int64(2*i), 1, dss.Class(2), 2, nil)
		s.mu.Unlock()
		ws = append(ws, done{1, w1}, done{2, w2})
	}
	drain(g)
	sort.Slice(ws, func(i, j int) bool { return ws[i].w.completion < ws[j].w.completion })
	heavy := 0
	for _, d := range ws[:100] {
		if d.tenant == 1 {
			heavy++
		}
	}
	if heavy < 80 || heavy > 100 {
		t.Fatalf("weight-9 tenant got %d of the first 100 grants, want 90 +/- 10", heavy)
	}
	stats := s.TenantStats()
	if stats[1].Blocks != 100 || stats[2].Blocks != 100 {
		t.Fatalf("full drain should serve all demand: %+v", stats)
	}
}

// TestTenantStarvationFreedom: a weight-1 tenant against a weight-100
// flood under full saturation still sees every request granted within
// the aging bound (plus one in-flight grant), while the shares remain
// heavily skewed toward the heavy tenant.
func TestTenantStarvationFreedom(t *testing.T) {
	bound := 5 * time.Millisecond
	g, s, _ := newTestSched(Config{AgingBound: bound, Readahead: -1})
	g.SetTenantWeight(1, 100)
	g.SetTenantWeight(2, 1)

	var light, heavy simclock.Clock
	g.Register(&heavy)
	g.Register(&light)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer g.Unregister(&heavy)
		for i := 0; i < 400; i++ {
			end := s.Submit(heavy.Now(), device.Read, 2_000_000+int64(2*i), 1, dss.Class(2), 1, &heavy)
			heavy.AdvanceTo(end)
		}
	}()
	go func() {
		defer wg.Done()
		defer g.Unregister(&light)
		for i := 0; i < 40; i++ {
			end := s.Submit(light.Now(), device.Read, int64(2*i), 1, dss.Class(2), 2, &light)
			light.AdvanceTo(end)
		}
	}()
	wg.Wait()

	stats := s.TenantStats()
	// Every light-tenant request was granted within the aging bound of
	// scheduler-imposed delay, plus the grant in flight when it became
	// overdue (an HDD random access is ~5.4ms).
	slack := 10 * time.Millisecond
	if stats[2].MaxWait > bound+slack {
		t.Fatalf("weight-1 tenant starved: max wait %v exceeds bound %v + slack", stats[2].MaxWait, bound)
	}
	if stats[1].MaxWait > bound+slack {
		t.Fatalf("heavy tenant starved: max wait %v", stats[1].MaxWait)
	}
	if s.Stats().Boosted == 0 {
		t.Fatal("aging never intervened; the flood was not saturating")
	}
}

// TestCrossTenantCoalescingRestricted: with fair sharing on, adjacent
// same-class requests of different tenants stay separate device
// accesses (tenant B must not ride tenant A's grant); with fair sharing
// off they merge as before.
func TestCrossTenantCoalescingRestricted(t *testing.T) {
	run := func(fair bool) int64 {
		g, s, dev := newTestSched(Config{Readahead: -1})
		if fair {
			g.SetTenantWeight(1, 1)
			g.SetTenantWeight(2, 1)
		}
		w1 := bareWaiter(dss.Class(2), 1)
		w2 := bareWaiter(dss.Class(2), 2)
		s.mu.Lock()
		s.enqueueLocked(w1, 0, device.Read, 100, 1, dss.Class(2), 1, nil)
		s.enqueueLocked(w2, 0, device.Read, 101, 1, dss.Class(2), 2, nil)
		s.mu.Unlock()
		g.Drain()
		return dev.Stats().Reads
	}
	if got := run(false); got != 1 {
		t.Fatalf("class-only scheduler no longer coalesces across tenants: %d accesses", got)
	}
	if got := run(true); got != 2 {
		t.Fatalf("fair sharing let a tenant ride another's grant: %d accesses", got)
	}
}

// TestTenantAccountingThreads: tenant identity reaches the per-tenant
// scheduler counters and the device's per-tenant latency histograms;
// unattributed single-tenant traffic stays off both.
func TestTenantAccountingThreads(t *testing.T) {
	g, s, dev := newTestSched(Config{Readahead: -1})
	s.Submit(0, device.Read, 100, 1, dss.Class(2), dss.DefaultTenant, nil)
	if n := len(s.TenantStats()); n != 0 {
		t.Fatalf("default tenant tracked without fair sharing: %d entries", n)
	}
	s.Submit(0, device.Read, 200, 2, dss.Class(2), 7, nil)
	s.SubmitBackground(0, device.Write, 900, 1, dss.ClassWriteBuffer, 7)
	g.Drain()
	st := s.TenantStats()[7]
	if st.Submitted != 1 || st.Blocks != 2 || st.BackgroundBlocks != 1 {
		t.Fatalf("tenant 7 stats = %+v", st)
	}
	if h := dev.Stats().PerTenant[7]; h.Count != 1 {
		t.Fatalf("tenant 7 latency histogram missing: %+v", dev.Stats().PerTenant)
	}
	if _, ok := dev.Stats().PerTenant[0]; ok {
		t.Fatal("default tenant recorded a latency histogram")
	}
}
