package iosched

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
)

// BenchmarkSubmitGrant measures the pick/grant engine against standing
// queue depth: each round enqueues `depth` foreground requests and
// drains them, so every grant picks from a deep queue — the linear
// picker pays O(depth) per grant, the indexed one O(log depth). Run
// with -benchmem; pair with benchstat via `make bench`.
func BenchmarkSubmitGrant(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		for _, mode := range []struct {
			name   string
			linear bool
		}{{"indexed", false}, {"linear", true}} {
			b.Run(fmt.Sprintf("depth=%d/%s", depth, mode.name), func(b *testing.B) {
				dev := device.New(device.Cheetah15K())
				g := NewGroup(Config{
					Readahead:       DisableReadahead,
					BackgroundShare: DisableBackgroundShare,
					LinearPick:      mode.linear,
				})
				s := g.Attach(dev, seqClass)
				// Reused waiters: the benchmark isolates scheduler cost,
				// not waiter construction (Submit pools those).
				ws := make([]*waiter, depth)
				for i := range ws {
					ws[i] = bareWaiter(dss.Class(2), dss.DefaultTenant)
				}
				rng := rand.New(rand.NewSource(1))
				lbas := make([]int64, 8192)
				for i := range lbas {
					lbas[i] = int64(rng.Intn(1 << 22))
				}
				classes := [4]dss.Class{dss.ClassLog, dss.Class(1), dss.Class(2), seqClass}
				b.ReportAllocs()
				b.ResetTimer()
				var at time.Duration
				li := 0
				for n := 0; n < b.N; {
					round := depth
					if rem := b.N - n; rem < round {
						round = rem
					}
					s.mu.Lock()
					for j := 0; j < round; j++ {
						at += time.Microsecond
						w := ws[j]
						w.ready = false
						w.remaining = 0
						w.completion = 0
						s.enqueueLocked(w, at, device.Read, lbas[li&8191], 1,
							classes[j&3], dss.DefaultTenant, nil)
						li++
					}
					s.mu.Unlock()
					g.Drain()
					n += round
				}
			})
		}
	}
}

// BenchmarkSubmitOpportunistic runs the full public submit→grant→
// complete path single-threaded on an idle scheduler: the steady-state
// per-request cost including waiter pooling, request pooling, and the
// batched completion flush. The headline -benchmem claim (~0 allocs/op)
// is this benchmark's.
func BenchmarkSubmitOpportunistic(b *testing.B) {
	dev := device.New(device.Cheetah15K())
	g := NewGroup(Config{Readahead: DisableReadahead, BackgroundShare: DisableBackgroundShare})
	s := g.Attach(dev, seqClass)
	rng := rand.New(rand.NewSource(1))
	lbas := make([]int64, 8192)
	for i := range lbas {
		lbas[i] = int64(rng.Intn(1 << 22))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var at time.Duration
	for i := 0; i < b.N; i++ {
		at += time.Microsecond
		s.Submit(at, device.Read, lbas[i&8191], 1, dss.Class(2), dss.DefaultTenant, nil)
	}
}
