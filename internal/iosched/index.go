package iosched

import (
	"math"

	"hstoragedb/internal/device"
)

// This file is the indexed pick layer: the data-structure bookkeeping and
// the O(log n) replacements for the seed picker's linear scans. The seed
// picker itself survives verbatim as pickLinearLocked (behind
// Config.LinearPick) and the two are held equal by the differential test
// in equivalence_test.go.
//
// Index invariants, maintained by indexInsertLocked/indexRemoveLocked
// under the scheduler lock:
//
//   - every pending foreground request is in the aging heap (keyed
//     (arrive, seq)); in FIFO mode background requests are in it too,
//     because FIFO grants the global arrival order across both;
//   - outside FIFO mode every pending request is in exactly one band
//     tree (keyed (vfinish, lba, seq)), bands kept sorted by rank;
//   - every pending request is on the boundary lists at its start LBA
//     and end LBA, newest-first, for O(1)-per-candidate coalescing and
//     background-write absorption lookups.

// band is one rank level (one priority class, or a background shadow of
// one) with its ordered request index. bg marks the background side
// explicitly — a negative classRank (log, write buffer) puts a
// background rank just below the backgroundBand offset, so the side
// cannot be recovered from the rank by thresholding. Bands are created
// on first use and kept — the set of ranks a workload touches is tiny
// and static.
type band struct {
	rank int
	bg   bool
	tree reqTree
}

func (s *Scheduler) bandFor(rank int, bg bool) *band {
	for i, b := range s.bands {
		if b.rank == rank {
			return b
		}
		if b.rank > rank {
			nb := &band{rank: rank, bg: bg}
			s.bands = append(s.bands, nil)
			copy(s.bands[i+1:], s.bands[i:])
			s.bands[i] = nb
			return nb
		}
	}
	nb := &band{rank: rank, bg: bg}
	s.bands = append(s.bands, nb)
	return nb
}

func (s *Scheduler) indexInsertLocked(r *request) {
	if s.fifo || r.w != nil {
		s.age.push(r)
	}
	if !s.fifo {
		b := s.bandFor(r.rank, r.w == nil)
		b.tree.insert(r)
		r.band = b
	}
	s.boundInsertLocked(r)
}

func (s *Scheduler) indexRemoveLocked(r *request) {
	if r.ageIdx >= 0 {
		s.age.remove(r)
	}
	if r.band != nil {
		r.band.tree.delete(r)
		r.band = nil
	}
	s.boundRemoveLocked(r)
	s.noteRemovedLocked(r)
}

// Boundary lists: intrusive doubly-linked lists headed in two maps, one
// keyed by start LBA and one by end LBA. Push is newest-first; lookups
// take the minimum seq over a list, which matches the seed's
// first-in-pending-order scan because pending order is seq order.

func (s *Scheduler) boundInsertLocked(r *request) {
	if h := s.startAt[r.lba]; h != nil {
		h.sPrev = r
	}
	r.sNext, r.sPrev = s.startAt[r.lba], nil
	s.startAt[r.lba] = r
	e := r.lba + int64(r.blocks)
	if h := s.endAt[e]; h != nil {
		h.ePrev = r
	}
	r.eNext, r.ePrev = s.endAt[e], nil
	s.endAt[e] = r
}

func (s *Scheduler) boundRemoveLocked(r *request) {
	if r.sPrev != nil {
		r.sPrev.sNext = r.sNext
	} else if r.sNext == nil {
		delete(s.startAt, r.lba)
	} else {
		s.startAt[r.lba] = r.sNext
	}
	if r.sNext != nil {
		r.sNext.sPrev = r.sPrev
	}
	r.sNext, r.sPrev = nil, nil
	e := r.lba + int64(r.blocks)
	if r.ePrev != nil {
		r.ePrev.eNext = r.eNext
	} else if r.eNext == nil {
		delete(s.endAt, e)
	} else {
		s.endAt[e] = r.eNext
	}
	if r.eNext != nil {
		r.eNext.ePrev = r.ePrev
	}
	r.eNext, r.ePrev = nil, nil
}

// pickIndexedLocked mirrors pickLinearLocked decision for decision:
// FIFO → global oldest; otherwise overdue boost, then best foreground
// (with the background token-budget override), then the background idle
// and credit gates. Each branch is O(log n) instead of a pending scan.
func (s *Scheduler) pickIndexedLocked(bgOK bool) (*request, bool) {
	if s.fifo {
		return s.age.min(), false
	}
	busy := s.dev.BusyUntil()
	head := s.dev.HeadLBA()

	// Aging first. The overdue set {fg r : busy - r.arrive > bound} is
	// exactly the foreground requests older than busy-bound, so when it
	// is non-empty the oldest overdue request IS the heap minimum — the
	// seed's min-olderThan scan over the overdue subset and over all
	// foreground requests agree.
	var overdue *request
	if oldest := s.age.min(); oldest != nil && s.agingBound > 0 && busy-oldest.arrive > s.agingBound {
		overdue = oldest
	}

	bestFg := s.bandBestLocked(false, head)
	bestBg := s.bandBestLocked(true, head)

	if overdue != nil && overdue != bestFg {
		s.stats.Boosted++
		s.mBoosted.Inc()
		return overdue, false
	}
	if bestFg != nil {
		if bestBg != nil && s.bgShare > 0 && s.bgCredit >= 1 && bestBg.blocks <= budgetMaxCoalesce {
			return bestBg, true
		}
		if s.quantum > 0 && overdue == nil {
			// The quantum may redirect the elevator only when no aging
			// decision is in play: an overdue pick (even one that
			// coincides with the elevator best) always stands, so the
			// policy can never stretch a wait past the aging bound.
			if alt := s.anticipatoryAltLocked(bestFg, head); alt != nil {
				s.stats.StreamSwitches++
				return alt, false
			}
		}
		return bestFg, false
	}
	if bestBg == nil {
		return nil, false
	}
	if !bgOK && s.bgShare > 0 {
		if busy <= bestBg.arrive {
			return bestBg, false
		}
		if s.bgCredit >= 1 {
			return bestBg, true
		}
		return nil, false
	}
	return bestBg, false
}

// bandBestLocked returns the elevator-best request of the highest
// non-empty band on the requested side (foreground or background) of the
// rank space.
func (s *Scheduler) bandBestLocked(bg bool, head int64) *request {
	for _, b := range s.bands {
		if b.bg != bg || b.tree.size == 0 {
			continue
		}
		return b.elevatorBest(head)
	}
	return nil
}

// elevatorBest finds the band member the seed comparator would choose:
// among the minimum-vfinish group, the nearest LBA to the device head,
// ties to the smaller seq. With the tree ordered (vfinish, lba, seq) the
// candidates are the successor at (v, head) and the minimum-seq entry of
// the predecessor's LBA group — two or three O(log n) probes.
func (b *band) elevatorBest(head int64) *request {
	m := b.tree.min()
	if m == nil {
		return nil
	}
	v := m.vfinish
	if head < 0 {
		// No head position yet (before the device's first access):
		// distance never differs, so the tie falls to seq across the
		// whole min-vfinish group. Only reachable a handful of times
		// per run, so a bounded in-order walk is fine.
		best := m
		b.tree.ascendGE(reqKey(m), func(r *request) bool {
			if r.vfinish != v {
				return false
			}
			if r.seq < best.seq {
				best = r
			}
			return true
		})
		return best
	}
	probe := treeKey{vfinish: v, lba: head, seq: 0}
	succ := b.tree.seekGE(probe)
	if succ != nil && succ.vfinish != v {
		succ = nil
	}
	pred := b.tree.seekLT(probe)
	if pred != nil && pred.vfinish == v {
		// The list at pred's LBA may hold several requests; the seed
		// scan would take the first in pending (= lowest seq) order.
		pred = b.tree.seekGE(treeKey{vfinish: v, lba: pred.lba, seq: 0})
	} else {
		pred = nil
	}
	if succ == nil {
		return pred
	}
	if pred == nil {
		return succ
	}
	ds, dp := succ.lba-head, head-pred.lba
	if ds != dp {
		if ds < dp {
			return succ
		}
		return pred
	}
	if succ.seq < pred.seq {
		return succ
	}
	return pred
}

// anticipatoryScan bounds the outward walk for an alternate stream so a
// pathological band layout cannot reintroduce an O(n) pick.
const anticipatoryScan = 64

// anticipatoryAltLocked implements the quanta policy: once the stream
// that won the elevator has been served AnticipatoryQuantum blocks
// consecutively, prefer the nearest same-band request from any other
// stream. Returns nil when the quantum has not expired, when best is
// already another stream's, or when no alternate exists within the scan
// bound — the elevator pick then stands, so the policy can only ever
// trade seek locality it was explicitly configured to give up.
func (s *Scheduler) anticipatoryAltLocked(best *request, head int64) *request {
	if best.sid == nil || best.sid != s.antStream || s.antLeft > 0 {
		return nil
	}
	b := best.band
	v := best.vfinish
	probe := treeKey{vfinish: v, lba: head, seq: 0}
	if head < 0 {
		probe = treeKey{vfinish: v, lba: math.MinInt64, seq: 0}
	}
	var right, left *request
	n := 0
	b.tree.ascendGE(probe, func(r *request) bool {
		if r.vfinish != v {
			return false
		}
		if r.sid != nil && r.sid != s.antStream {
			right = r
			return false
		}
		n++
		return n < anticipatoryScan
	})
	n = 0
	b.tree.descendLT(probe, func(r *request) bool {
		if r.vfinish != v {
			return false
		}
		if r.sid != nil && r.sid != s.antStream {
			left = r
			return false
		}
		n++
		return n < anticipatoryScan
	})
	if right == nil {
		return left
	}
	if left == nil {
		return right
	}
	dr, dl := right.lba-head, head-left.lba
	if head < 0 {
		return right
	}
	if dr != dl {
		if dr < dl {
			return right
		}
		return left
	}
	if right.seq < left.seq {
		return right
	}
	return left
}

// coalesceCandidateLocked finds the next request mergeable into the
// current batch: same op and class as the picked head, fits the block
// budget, same tenant under fair queueing, and either starts at the
// batch end (append) or ends at the batch start (prepend). The two
// boundary lists can never both match one request (its start is strictly
// below its end), so the seed's first-in-pending-order choice is the
// minimum seq over the union of the two lists.
func (s *Scheduler) coalesceCandidateLocked(head *request, start, end int64, room int, fair bool) (p *request, prepend bool) {
	for r := s.endAt[start]; r != nil; r = r.eNext {
		if r.op != head.op || r.class != head.class || r.blocks > room {
			continue
		}
		if fair && r.tenant != head.tenant {
			continue
		}
		if p == nil || r.seq < p.seq {
			p, prepend = r, true
		}
	}
	for r := s.startAt[end]; r != nil; r = r.sNext {
		if r.op != head.op || r.class != head.class || r.blocks > room {
			continue
		}
		if fair && r.tenant != head.tenant {
			continue
		}
		if p == nil || r.seq < p.seq {
			p, prepend = r, false
		}
	}
	return p, prepend
}

// absorbCandidateLocked finds the oldest pending single-block background
// write at lba, for write absorption. nil when none is pending.
func (s *Scheduler) absorbCandidateLocked(lba int64) *request {
	var p *request
	for r := s.startAt[lba]; r != nil; r = r.sNext {
		if r.w != nil || r.op != device.Write || r.blocks != 1 {
			continue
		}
		if p == nil || r.seq < p.seq {
			p = r
		}
	}
	return p
}
