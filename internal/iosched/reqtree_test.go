package iosched

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestReqTreeRandomized drives the band B-tree through random
// insert/delete churn against a reference sorted slice, checking min,
// seekGE, seekLT and the two ordered walks after every operation. The
// delete rebalancing (borrow/merge) is the part a few directed cases
// would not reach.
func TestReqTreeRandomized(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var tree reqTree
		var ref []*request
		refLess := func(i, j int) bool { return reqKey(ref[i]).less(reqKey(ref[j])) }
		seq := uint64(0)
		for step := 0; step < 4000; step++ {
			if len(ref) == 0 || rng.Intn(5) < 3 {
				r := &request{
					lba:     int64(rng.Intn(64)),
					vfinish: float64(rng.Intn(4)),
					seq:     seq,
				}
				seq++
				tree.insert(r)
				ref = append(ref, r)
				sort.Slice(ref, refLess)
			} else {
				i := rng.Intn(len(ref))
				tree.delete(ref[i])
				ref = append(ref[:i], ref[i+1:]...)
			}
			if tree.size != len(ref) {
				t.Fatalf("seed %d step %d: size %d, want %d", seed, step, tree.size, len(ref))
			}
			if min := tree.min(); len(ref) == 0 {
				if min != nil {
					t.Fatalf("seed %d step %d: min of empty tree = %v", seed, step, min)
				}
			} else if min != ref[0] {
				t.Fatalf("seed %d step %d: min = %v, want %v", seed, step, reqKey(min), reqKey(ref[0]))
			}
			// Probe around a random key.
			k := treeKey{vfinish: float64(rng.Intn(4)), lba: int64(rng.Intn(64)), seq: uint64(rng.Intn(int(seq + 1)))}
			var wantGE, wantLT *request
			for _, r := range ref {
				if !reqKey(r).less(k) {
					wantGE = r
					break
				}
			}
			for i := len(ref) - 1; i >= 0; i-- {
				if reqKey(ref[i]).less(k) {
					wantLT = ref[i]
					break
				}
			}
			if got := tree.seekGE(k); got != wantGE {
				t.Fatalf("seed %d step %d: seekGE(%v) = %v, want %v", seed, step, k, got, wantGE)
			}
			if got := tree.seekLT(k); got != wantLT {
				t.Fatalf("seed %d step %d: seekLT(%v) = %v, want %v", seed, step, k, got, wantLT)
			}
			if step%97 == 0 {
				// Full ordered walks both directions.
				var up []*request
				tree.ascendGE(treeKey{vfinish: -1}, func(r *request) bool {
					up = append(up, r)
					return true
				})
				if len(up) != len(ref) {
					t.Fatalf("seed %d step %d: ascend visited %d, want %d", seed, step, len(up), len(ref))
				}
				for i, r := range up {
					if r != ref[i] {
						t.Fatalf("seed %d step %d: ascend[%d] = %v, want %v", seed, step, i, reqKey(r), reqKey(ref[i]))
					}
				}
				var down []*request
				tree.descendLT(treeKey{vfinish: 1 << 30}, func(r *request) bool {
					down = append(down, r)
					return true
				})
				if len(down) != len(ref) {
					t.Fatalf("seed %d step %d: descend visited %d, want %d", seed, step, len(down), len(ref))
				}
				for i, r := range down {
					if r != ref[len(ref)-1-i] {
						t.Fatalf("seed %d step %d: descend[%d] = %v, want %v", seed, step, i, reqKey(r), reqKey(ref[len(ref)-1-i]))
					}
				}
			}
		}
		// Drain to empty through delete alone, so the merge path runs the
		// tree all the way back down.
		for len(ref) > 0 {
			i := rng.Intn(len(ref))
			tree.delete(ref[i])
			ref = append(ref[:i], ref[i+1:]...)
		}
		if tree.size != 0 || tree.min() != nil {
			t.Fatalf("seed %d: tree not empty after full drain: size %d", seed, tree.size)
		}
	}
}

// TestAgeHeapRandomized cross-checks the intrusive aging heap's min and
// mid-heap removal against a reference slice.
func TestAgeHeapRandomized(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var h ageHeap
		var ref []*request
		seq := uint64(0)
		for step := 0; step < 3000; step++ {
			if len(ref) == 0 || rng.Intn(2) == 0 {
				r := &request{arrive: time.Duration(rng.Intn(50)) * time.Millisecond, seq: seq, ageIdx: -1}
				seq++
				h.push(r)
				ref = append(ref, r)
			} else {
				i := rng.Intn(len(ref))
				h.remove(ref[i])
				ref = append(ref[:i], ref[i+1:]...)
			}
			if h.len() != len(ref) {
				t.Fatalf("seed %d step %d: len %d, want %d", seed, step, h.len(), len(ref))
			}
			var want *request
			for _, r := range ref {
				if want == nil || olderThan(r, want) {
					want = r
				}
			}
			if got := h.min(); got != want {
				t.Fatalf("seed %d step %d: min = %v, want %v", seed, step, got, want)
			}
		}
	}
}
