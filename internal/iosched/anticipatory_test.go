package iosched

import (
	"testing"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/simclock"
)

// anticipatoryRun queues two streams' same-class single-block reads —
// one parked right at the device head, one far away — and returns the
// per-grant stream labels plus the scheduler stats.
func anticipatoryRun(t *testing.T, quantum int) (order []byte, st Stats) {
	t.Helper()
	g, s, dev := newTestSched(Config{
		AgingBound:          DisableAging,
		Readahead:           DisableReadahead,
		AnticipatoryQuantum: quantum,
	})
	// Park the head at LBA 100 so stream A's cluster owns the elevator.
	dev.Access(0, device.Read, 100, 1)
	var a, b simclock.Clock
	s.grantHook = func(batch []*request, start int64, total int, budget bool) {
		switch batch[0].sid {
		case &a:
			order = append(order, 'A')
		case &b:
			order = append(order, 'B')
		}
	}
	s.mu.Lock()
	for i := 0; i < 10; i++ {
		// Stride 2 keeps same-stream neighbours from coalescing, which
		// would blur the per-grant stream sequence.
		s.enqueueLocked(bareWaiter(dss.Class(2), dss.DefaultTenant), 0,
			device.Read, 100+int64(2*i), 1, dss.Class(2), dss.DefaultTenant, &a)
		s.enqueueLocked(bareWaiter(dss.Class(2), dss.DefaultTenant), 0,
			device.Read, 1_000_000+int64(2*i), 1, dss.Class(2), dss.DefaultTenant, &b)
	}
	s.mu.Unlock()
	g.Drain()
	return order, s.Stats()
}

// TestAnticipatoryQuantumSwitchesStreams: without a quantum the elevator
// serves the whole near-head stream before the far one; with a quantum
// the far stream starts being served after quantum blocks, so no stream
// monopolizes the elevator between aging boosts.
func TestAnticipatoryQuantumSwitchesStreams(t *testing.T) {
	firstB := func(order []byte) int {
		for i, c := range order {
			if c == 'B' {
				return i
			}
		}
		return -1
	}

	off, stOff := anticipatoryRun(t, 0)
	if stOff.StreamSwitches != 0 {
		t.Fatalf("quantum off recorded %d stream switches", stOff.StreamSwitches)
	}
	if got := firstB(off); got != 10 {
		t.Fatalf("quantum off: far stream first granted at %d, want 10 (after the whole near stream): %s", got, off)
	}

	on, stOn := anticipatoryRun(t, 3)
	if stOn.StreamSwitches == 0 {
		t.Fatal("quantum on never switched streams")
	}
	if got := firstB(on); got < 0 || got > 4 {
		t.Fatalf("quantum 3: far stream first granted at %d, want within ~one quantum: %s", got, on)
	}
	if len(on) != 20 || len(off) != 20 {
		t.Fatalf("grant counts: %d quantum-on, %d quantum-off, want 20 each", len(on), len(off))
	}
}

// TestAnticipatoryRespectsAging: the quantum redirect is skipped while
// an aging decision is in play, so an overdue low-class request is still
// boosted within the bound with the policy enabled.
func TestAnticipatoryRespectsAging(t *testing.T) {
	bound := 2 * time.Millisecond
	g, s, dev := newTestSched(Config{
		AgingBound:          bound,
		Readahead:           DisableReadahead,
		AnticipatoryQuantum: 2,
	})
	dev.Access(0, device.Write, 0, 64) // ~8.9ms busy: queued work goes overdue
	var a, b simclock.Clock
	s.mu.Lock()
	// The overdue victim: low class, far away, submitted first.
	low := bareWaiter(seqClass, dss.DefaultTenant)
	s.enqueueLocked(low, 0, device.Read, 5_000_000, 1, seqClass, dss.DefaultTenant, &a)
	// A stream of fresher high-class requests near the head.
	var highs []*waiter
	for i := 0; i < 6; i++ {
		w := bareWaiter(dss.ClassLog, dss.DefaultTenant)
		s.enqueueLocked(w, time.Millisecond, device.Write, int64(2*i), 1, dss.ClassLog, dss.DefaultTenant, &b)
		highs = append(highs, w)
	}
	s.mu.Unlock()
	g.Drain()
	if s.Stats().Boosted == 0 {
		t.Fatal("aging never boosted with the quantum enabled")
	}
	for i, h := range highs[1:] {
		if low.completion > h.completion {
			t.Fatalf("overdue request finished after fresh high[%d]: %v vs %v — quantum weakened the aging bound",
				i+1, low.completion, h.completion)
		}
	}
}
