package iosched

import (
	"testing"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
)

// TestCompactionRank pins ClassCompaction's slot in the dispatch
// ladder: below the commit-critical log and write-buffer classes,
// above every 1..N caching priority, above unclassified traffic.
func TestCompactionRank(t *testing.T) {
	order := []dss.Class{dss.ClassLog, dss.ClassWriteBuffer, dss.ClassCompaction,
		dss.Class(1), dss.Class(2), seqClass, dss.Class(8), dss.ClassNone}
	for i := 1; i < len(order); i++ {
		if classRank(order[i-1]) >= classRank(order[i]) {
			t.Fatalf("rank(%s)=%d not below rank(%s)=%d",
				order[i-1], classRank(order[i-1]), order[i], classRank(order[i]))
		}
	}
}

// Foreground compaction (a saturated backend forcing a flush on the
// caller's thread) dispatches between the write buffer and the caching
// priorities: queued together, the write buffer wins the device, then
// compaction, then the random read.
func TestCompactionDispatchBetweenWriteBufferAndPriorities(t *testing.T) {
	g, s, _ := newTestSched(Config{Readahead: -1})
	rnd := enqueue(g, s, 0, device.Read, 9000, 1, dss.Class(2))
	comp := enqueue(g, s, 0, device.Write, 5000, 1, dss.ClassCompaction)
	wb := enqueue(g, s, 0, device.Write, 1000, 1, dss.ClassWriteBuffer)
	drain(g)
	if wb.completion >= comp.completion {
		t.Fatalf("compaction %v granted before write buffer %v", comp.completion, wb.completion)
	}
	if comp.completion >= rnd.completion {
		t.Fatalf("random read %v granted before foreground compaction %v", rnd.completion, comp.completion)
	}
}

// Background-flagged compaction (the normal case: maintenance drained
// by the storage manager) lands in the background band regardless of
// its high class rank — a foreground read of the lowest caching
// priority is still granted first.
func TestBackgroundCompactionYieldsToForeground(t *testing.T) {
	g, s, _ := newTestSched(Config{Readahead: -1})
	s.mu.Lock()
	s.enqueueLocked(nil, 0, device.Write, 5000, 8, dss.ClassCompaction, dss.DefaultTenant, nil) // background
	fg := bareWaiter(seqClass, dss.DefaultTenant)
	s.enqueueLocked(fg, 0, device.Read, 100, 1, seqClass, dss.DefaultTenant, nil)
	s.mu.Unlock()
	g.Drain()
	solo := device.New(device.Cheetah15K()).Access(0, device.Read, 100, 1)
	if fg.completion != solo {
		t.Fatalf("foreground read waited behind background compaction: %v vs %v", fg.completion, solo)
	}
}

// Foreground compaction is subject to the aging bound like any other
// foreground class: overdue, it is granted ahead of a continuous flood
// of fresher log writes instead of starving.
func TestCompactionAgingBoost(t *testing.T) {
	bound := 2 * time.Millisecond
	g, s, dev := newTestSched(Config{AgingBound: bound, Readahead: -1})
	dev.Access(0, device.Write, 0, 64) // occupy the device so waits accumulate

	comp := enqueue(g, s, 0, device.Write, 5000, 1, dss.ClassCompaction)
	var logs []*waiter
	for i := 0; i < 8; i++ {
		logs = append(logs, enqueue(g, s, 0, device.Write, 9000+int64(2*i), 1, dss.ClassLog))
	}
	drain(g)
	for i, h := range logs {
		if comp.completion > h.completion {
			t.Fatalf("starved: compaction done %v after log[%d] %v", comp.completion, i, h.completion)
		}
	}
	if s.Stats().Boosted == 0 {
		t.Fatal("aging boost not recorded")
	}
}

// Background compaction is exempt from aging: nobody waits on it, so
// however long it queues under a foreground flood it never jumps ahead
// on age — it drains through the token budget or the final Drain.
func TestBackgroundCompactionExemptFromAging(t *testing.T) {
	bound := time.Millisecond
	g, s, dev := newTestSched(Config{AgingBound: bound, Readahead: -1})
	dev.Access(0, device.Write, 0, 64)
	s.SubmitBackground(0, device.Write, 5000, 1, dss.ClassCompaction, dss.DefaultTenant)
	for i := 0; i < 8; i++ {
		enqueue(g, s, 0, device.Write, 9000+int64(2*i), 1, dss.ClassLog)
	}
	drain(g)
	if got := s.Stats().Boosted; got != 0 {
		t.Fatalf("background compaction aged ahead of foreground: %d boosts", got)
	}
	if got := dev.Stats().BlocksWrite; got != 64+1+8 {
		t.Fatalf("drain left compaction blocks unwritten: %d", got)
	}
}

// Compaction participates in the background write-back budget: under a
// saturated foreground, its deferred writes still get a bounded share
// of device time like any other background traffic.
func TestCompactionUnderBackgroundBudget(t *testing.T) {
	g, s, dev := newTestSched(Config{BackgroundShare: 0.2, Readahead: -1})
	for i := 0; i < 300; i++ {
		s.SubmitBackground(0, device.Write, 500000+int64(i), 1, dss.ClassCompaction, dss.DefaultTenant)
		s.Submit(0, device.Read, int64((i*7919)%100000), 1, dss.Class(2), dss.DefaultTenant, nil)
	}
	st := s.Stats()
	if st.BudgetGrants == 0 {
		t.Fatal("budget never granted compaction device time under a saturated foreground")
	}
	if st.MaxBackgroundQueue >= 300 {
		t.Fatalf("compaction backlog grew unboundedly: max %d", st.MaxBackgroundQueue)
	}
	g.Drain()
	if got := dev.Stats().BlocksWrite; got != 300 {
		t.Fatalf("blocks written = %d, want 300 after the final drain", got)
	}
}
