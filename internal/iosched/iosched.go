// Package iosched implements a QoS-aware per-device I/O scheduler for
// the simulated storage stack.
//
// The paper's thesis is that carrying classification down the stack lets
// the storage system pick a better service mechanism per request. The
// hybrid cache (package hybrid) exploits classes for data *placement*;
// this package extends the same idea to device *scheduling*: instead of
// serving every request through a single FIFO (simclock.Resource call
// order), each device gets per-class priority queues ordered by the same
// dss class priorities the cache uses, so a pinned ClassLog commit write
// no longer waits behind a background write-back or a low-priority scan.
//
// The scheduler provides four mechanisms:
//
//   - Priority dispatch: pending requests are granted strictly by class
//     rank (log > write buffer > priority 1..N > unclassified), with an
//     aging bound — a request that would wait longer than AgingBound
//     beyond its arrival is granted next regardless of rank, so low
//     classes cannot starve.
//   - Tenant fair shares: within a class band, requests of different
//     tenants are ordered by weighted fair queueing over granted device
//     blocks (see tenantfair.go), so one tenant's aggressive stream
//     cannot turn its class into a private FIFO and starve same-class
//     neighbours. Off until tenant weights are configured.
//   - Coalescing: LBA-adjacent pending requests of the same class and
//     direction are merged into a single larger device access (bounded
//     by MaxCoalesce blocks), turning interleaved per-block traffic
//     back into the sequential runs the HDD model rewards.
//   - Readahead: a granted read carrying the sequential-scan class
//     (Rule 1 traffic) is extended by Readahead blocks into a prefetch
//     buffer; subsequent scan reads are served from the buffer without
//     re-occupying the device, and prefetch completions are offered to
//     the cache through TakePrefetched (the priority cache admits them
//     into spare capacity only, never evicting anything).
//
// # Dispatch model
//
// The simulator is synchronous: a submitter must receive its completion
// time before it can continue, so a request can only be reordered
// against requests that are queued at the same real-time moment. The
// scheduler therefore runs in two modes:
//
//   - Closed-population (barrier) mode: experiment streams register
//     their session clocks with the Group. A pending request is granted
//     only once every registered stream is blocked in the scheduler,
//     which makes the grant order a faithful discrete-event simulation
//     of the contending population: the highest-ranked request wins the
//     device no matter which goroutine called first. Registered streams
//     must perform their I/O independently (a stream must not block on
//     a lock another registered stream holds across a submission).
//   - Opportunistic mode (nothing registered): the first submitter
//     becomes the dispatcher and drains the queue in priority order,
//     yielding the CPU between grants so concurrently arriving requests
//     can still be reordered. A lone stream degenerates to FIFO, which
//     keeps single-query runs identical in spirit to the seed model.
//
// Background work (write-back destages, asynchronous flushes) is queued
// in a band below every foreground class. It is granted when the device
// has no foreground work waiting, and — write-back throttling — through
// a token budget: foreground grants earn background a BackgroundShare
// fraction of their blocks as credit, and a backlog with credit is
// granted its best batch even while foreground waits, so a saturated
// foreground phase cannot grow the destage backlog without bound.
// Deferral is also what makes destages cheap: queued LBA-adjacent
// background writes coalesce into single large accesses instead of each
// paying the positioning cost alone.
//
// # Hot path
//
// Per-request cost is kept near-constant: each scheduler owns its lock
// (the group lock covers only the closed-population registry and
// barrier rounds, so streams on different devices never serialize), the
// picker runs on ordered indexes (index.go) instead of queue scans,
// request/waiter/batch memory is pooled, and a grant's completion
// latencies reach the device in one batched observation. Lock order is
// Group.mu → Scheduler.mu → device/histogram internals.
package iosched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/obs"
	"hstoragedb/internal/simclock"
)

// Config parameterizes a scheduler group. The zero value enables the
// scheduler with the defaults below; set Disable for the FIFO ablation.
type Config struct {
	// Disable bypasses the queues entirely: every request goes straight
	// to the device in call order, reproducing the seed's single-FIFO
	// behaviour. Latency histograms are still recorded.
	Disable bool

	// FIFO keeps the queue and closed-population machinery (so
	// experiment arms see identical contention) but grants strictly in
	// arrival order with no class priority, no aging, no coalescing and
	// no readahead: the scheduler-off ablation of the contention
	// experiment. Ignored when Disable is set.
	FIFO bool

	// AgingBound is the longest a queued request may wait (virtual
	// time, measured against the device's busy horizon) before it is
	// granted regardless of its class rank. Zero means the default of
	// 10ms; any negative value (use the DisableAging sentinel) disables
	// aging. "Aging off" is not representable as 0 — 0 is the
	// zero-value-means-default convention every other knob follows.
	AgingBound time.Duration

	// MaxCoalesce caps the size in blocks of one coalesced device
	// access. Larger accesses amortize positioning cost but hold the
	// device longer, delaying high-priority arrivals. Zero means the
	// default of 64 blocks (512 KB).
	MaxCoalesce int

	// Readahead is the number of blocks prefetched past a granted
	// sequential-class read. Zero means the default of 32; any negative
	// value (use the DisableReadahead sentinel) disables readahead.
	Readahead int

	// ReadaheadCap bounds the prefetch buffer in blocks. Zero means
	// 8 * Readahead.
	ReadaheadCap int

	// BackgroundShare is the write-back throttling budget: the fraction
	// of foreground-granted device blocks earned as credit by queued
	// background work. While background has a backlog and at least one
	// block of credit, its best batch is granted even though foreground
	// is waiting, so a saturated foreground phase can no longer starve
	// destages and grow the backlog without bound. Deferred background
	// work accumulates in the queue, where LBA-adjacent destages
	// coalesce into single large accesses. Zero means the default of
	// 0.3; any negative value (use the DisableBackgroundShare sentinel)
	// disables the budget (background runs only when the device idles —
	// the pre-throttling behaviour).
	BackgroundShare float64

	// AnticipatoryQuantum bounds consecutive elevator service of one
	// stream, in granted blocks. Once a stream has been granted that
	// many blocks back to back, the picker prefers the nearest same-band
	// request from any other stream, so a stream parked at the head's
	// LBA neighbourhood cannot monopolize an HDD elevator for the whole
	// stretch between aging boosts. Zero (the default) disables the
	// policy — here zero-means-default and default-is-off coincide, so
	// no sentinel is needed. The aging bound is checked first and is
	// never weakened by a switch. Ignored under LinearPick and FIFO.
	AnticipatoryQuantum int

	// LinearPick selects the reference picker: the original O(n) scans
	// over one pending slice. The indexed picker (the default) grants
	// in exactly the same order — a property enforced by a differential
	// test — so this knob exists for that test and as the baseline arm
	// of the hotpath experiment, not as a tuning choice.
	LinearPick bool

	// TenantWeights seeds the group's tenant fair-share weights (see
	// Group.SetTenantWeight). Nil or empty leaves fair sharing off: the
	// class-only scheduler, which is also the tenants experiment's
	// baseline arm.
	TenantWeights map[dss.TenantID]float64

	// Obs attaches the observability layer: schedulers register their
	// counters and the `iosched.band.wait` histograms, and sampled
	// submissions record queue-wait and device-service spans on the
	// simulated timeline. Nil disables both (the default).
	Obs *obs.Set
}

// Sentinels for the Config knobs whose zero value means "use the
// default": disabling those mechanisms is expressed with an explicitly
// negative value, never with 0. Assigning the sentinel reads as intent
// at the call site and round-trips through withDefaults untouched.
const (
	// DisableAging turns the starvation aging bound off entirely: class
	// rank (and, under fair sharing, tenant finish tags) alone decide
	// dispatch, and a low class can wait without bound.
	DisableAging = time.Duration(-1)

	// DisableReadahead turns sequential-class prefetching off for the
	// whole group (per-device opt-out is Attach's NoReadahead class).
	DisableReadahead = -1
)

// DisableBackgroundShare turns the write-back token budget off:
// background work still yields to queued foreground but is otherwise
// dispatched eagerly instead of accumulating in the deferred backlog —
// the pre-throttling behaviour.
const DisableBackgroundShare = float64(-1)

const (
	defaultAgingBound      = 10 * time.Millisecond
	defaultMaxCoalesce     = 64
	defaultReadahead       = 32
	defaultBackgroundShare = 0.3
)

func (c Config) withDefaults() Config {
	if c.AgingBound == 0 {
		c.AgingBound = defaultAgingBound
	}
	if c.MaxCoalesce <= 0 {
		c.MaxCoalesce = defaultMaxCoalesce
	}
	if c.Readahead == 0 {
		c.Readahead = defaultReadahead
	}
	if c.ReadaheadCap <= 0 && c.Readahead > 0 {
		c.ReadaheadCap = 8 * c.Readahead
	}
	if c.BackgroundShare == 0 {
		c.BackgroundShare = defaultBackgroundShare
	}
	return c
}

// backgroundBand offsets the rank of background requests below every
// foreground class.
const backgroundBand = 1 << 24

// budgetMaxCoalesce caps the batch size of a budget-forced background
// grant: it runs ahead of waiting foreground, so the interference it
// injects must stay bounded (~one-quarter of a full coalesced batch).
const budgetMaxCoalesce = 16

// NoReadahead is a sentinel seqClass for Attach that matches no real
// request class, disabling readahead on that device. Cache devices need
// it: their address space is physical cache slots (PBNs, recycled
// arbitrarily), so "the next 32 blocks" after a cache hit are
// physically meaningless and must not be prefetched.
const NoReadahead = dss.Class(-1 << 30)

// classRank maps a dss class to its dispatch rank (smaller is granted
// first). The order mirrors the cache's priority ladder: pinned log
// traffic first, then the write buffer, then caching priorities 1..N
// (which places Rule 1 sequential traffic at N-1 and "non-caching and
// eviction" at N near the bottom), with unclassified requests below all
// classified ones.
func classRank(c dss.Class) int {
	switch c {
	case dss.ClassLog:
		return -2
	case dss.ClassWriteBuffer:
		return -1
	case dss.ClassCompaction:
		// Below the write buffer, above the 1..N caching priorities:
		// foreground-submitted compaction work (a saturated backend
		// forcing a flush) must not starve behind every random read,
		// but never delays a commit-critical log or write-buffer grant.
		// Background-flagged compaction additionally lands in the
		// background band like all background traffic.
		return 0
	case dss.ClassNone:
		return 1 << 20
	default:
		return int(c)
	}
}

// waiter tracks one Submit call; a multi-chunk submission shares one
// waiter across its chunk requests. arrive and class feed the one
// latency sample recorded per submission (not per chunk, so the FIFO
// and scheduler arms produce comparable histograms). Waiters are pooled:
// the cond (whose L is wired once at construction) survives recycling,
// unlike the one-shot channel it replaced.
type waiter struct {
	mu    sync.Mutex
	cond  sync.Cond
	ready bool

	remaining  int
	completion time.Duration
	arrive     time.Duration
	class      dss.Class
	tenant     dss.TenantID
	barrier    bool

	// trace marks a submission admitted by the tracer's sampling gate;
	// tid is the submitting stream's trace track (its clock ID).
	trace bool
	tid   int64
}

var waiterPool = sync.Pool{New: func() any {
	w := &waiter{}
	w.cond.L = &w.mu
	return w
}}

func newWaiter(arrive time.Duration, class dss.Class, tenant dss.TenantID) *waiter {
	w := waiterPool.Get().(*waiter)
	w.ready = false
	w.remaining = 0
	w.completion = 0
	w.arrive = arrive
	w.class = class
	w.tenant = tenant
	w.barrier = false
	w.trace = false
	w.tid = 0
	return w
}

// wait parks the submitter until its last chunk completes. The granter
// touches the waiter last in signal, so the submitter owns it again on
// return and may recycle it.
func (w *waiter) wait() {
	w.mu.Lock()
	for !w.ready {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

func (w *waiter) signal() {
	w.mu.Lock()
	w.ready = true
	w.mu.Unlock()
	w.cond.Signal()
}

// request is one schedulable unit: a chunk of a foreground submission or
// one background access. Requests are recycled through a per-scheduler
// freelist; every index link below is cleared when the request leaves
// the queue, before it can be reused.
type request struct {
	op     device.Op
	lba    int64
	blocks int
	class  dss.Class
	tenant dss.TenantID
	rank   int
	arrive time.Duration
	// base is the later of the arrival and the device's busy horizon at
	// enqueue: the earliest the request could possibly have been served.
	// Grant wait is measured from it, so a stream whose clock lags a
	// saturated device is not billed the pre-existing backlog as
	// scheduler-imposed delay.
	base time.Duration
	seq  uint64
	w    *waiter // nil for background work

	// sid identifies the submitting stream (its session clock) for the
	// anticipatory-quantum policy; nil for background work and
	// streamless submitters.
	sid *simclock.Clock

	// vstart and vfinish are the request's fair-queueing tags (see
	// tenantfair.go). Both stay 0 when fair sharing is off and for
	// background work, which keeps the tag comparison inert.
	vstart, vfinish float64

	// Index state (indexed picker only): position in the aging heap
	// (-1 when not a member), owning band tree, and the boundary-list
	// links at the request's start and end LBAs (index.go).
	ageIdx       int
	band         *band
	sNext, sPrev *request
	eNext, ePrev *request

	// next chains the scheduler's request freelist.
	next *request
}

// Prefetched describes one readahead run completed by the device,
// offered to the cache layer through TakePrefetched.
type Prefetched struct {
	// LBA and Blocks delimit the prefetched run.
	LBA    int64
	Blocks int
	// Ready is the virtual time the run finished transferring.
	Ready time.Duration
	// Tenant is the tenant of the scan read the run extended, so cache
	// admission can charge the blocks to the tenant that caused them.
	Tenant dss.TenantID
}

// Stats are cumulative counters for one scheduler (one device).
type Stats struct {
	// Submitted counts foreground submissions; Granted counts device
	// accesses actually issued (after coalescing and chunk merging).
	Submitted int64
	Granted   int64
	// Coalesced counts queued requests merged into another grant.
	Coalesced int64
	// Boosted counts grants where the aging bound overrode strict
	// priority order.
	Boosted int64
	// StreamSwitches counts grants where the anticipatory quantum
	// deliberately moved the elevator to another stream's request
	// (Config.AnticipatoryQuantum).
	StreamSwitches int64
	// PrefetchBlocks counts blocks read ahead; PrefetchHits counts
	// blocks later served from the readahead buffer without a device
	// access.
	PrefetchBlocks int64
	PrefetchHits   int64
	// MaxQueue is the deepest the pending queue has been.
	MaxQueue int
	// BackgroundGrants counts device accesses granted to background
	// work; BackgroundBlocks the blocks they carried; BudgetGrants the
	// grants the write-back budget forced ahead of waiting foreground.
	BackgroundGrants int64
	BackgroundBlocks int64
	BudgetGrants     int64
	// BudgetDeposits, BudgetWithdrawals and BudgetBlocks audit the
	// write-back token budget in blocks. Foreground grants deposit
	// share*blocks (capped at one coalesced batch of credit — a capped
	// deposit is forfeited, not banked); budget grants withdraw the
	// credit they actually consumed, so at any point
	// deposits - withdrawals == credit exactly and coalesced background
	// blocks are provably not double-counted against the foreground
	// budget. BudgetBlocks counts the blocks budget grants carried:
	// BudgetBlocks - BudgetWithdrawals is the overdraw forgiven by the
	// zero floor, bounded by one budget batch per grant.
	BudgetDeposits    float64
	BudgetWithdrawals float64
	BudgetBlocks      int64
	// Absorbed counts queued background writes dropped because a newer
	// background write to the same block superseded them before they
	// reached the device (write absorption in the deferred backlog).
	Absorbed int64
	// MaxBackgroundQueue is the deepest the background backlog has been.
	MaxBackgroundQueue int
}

// Group is the scheduling domain of one storage system: the schedulers
// of its devices plus the registry of closed-population streams. Each
// scheduler orders its own queue under its own lock; the group lock
// covers only the stream registry and barrier dispatch rounds, so
// streams submitting to different devices do not serialize. Lock order
// is Group.mu → Scheduler.mu.
type Group struct {
	cfg Config

	mu         sync.Mutex
	scheds     []*Scheduler
	registered map[*simclock.Clock]struct{}

	// nRegistered mirrors len(registered) so the opportunistic submit
	// path can skip g.mu entirely; blocked counts barrier-parked
	// streams (incremented under g.mu when a registered stream submits,
	// decremented from grant completions under scheduler locks).
	nRegistered atomic.Int64
	blocked     atomic.Int64

	// schedList is the attach-order scheduler list, republished on
	// Attach, for lock-free iteration by the opportunistic drain loop.
	schedList atomic.Pointer[[]*Scheduler]

	// tenantW is the copy-on-write tenant fair-share weight table (see
	// tenantfair.go): hot paths snapshot it with one atomic load,
	// writers replace it wholesale under g.mu. A nil pointer or empty
	// map means fair sharing is off.
	tenantW atomic.Pointer[map[dss.TenantID]float64]

	// obs is the attached observability set (nil-safe throughout).
	obs *obs.Set
}

// NewGroup creates an empty scheduling domain.
func NewGroup(cfg Config) *Group {
	g := &Group{cfg: cfg.withDefaults(), registered: make(map[*simclock.Clock]struct{}), obs: cfg.Obs}
	var tw map[dss.TenantID]float64
	for id, w := range cfg.TenantWeights {
		if w > 0 {
			if tw == nil {
				tw = make(map[dss.TenantID]float64, len(cfg.TenantWeights))
			}
			tw[id] = w
		}
	}
	if tw != nil {
		g.tenantW.Store(&tw)
	}
	return g
}

// Attach wires a device into the group and returns its scheduler.
// seqClass is the class the policy space assigns to sequential-scan
// traffic (Rule 1): reads carrying it trigger readahead. Pass
// NoReadahead for devices whose address space is not logical LBAs
// (cache devices addressed by recycled slot numbers).
func (g *Group) Attach(dev *device.Device, seqClass dss.Class) *Scheduler {
	cfg := g.cfg
	s := &Scheduler{
		g: g, dev: dev, seqClass: seqClass,
		disable:      cfg.Disable,
		fifo:         cfg.FIFO,
		linear:       cfg.LinearPick,
		agingBound:   cfg.AgingBound,
		maxCoalesce:  cfg.MaxCoalesce,
		readahead:    cfg.Readahead,
		readaheadCap: cfg.ReadaheadCap,
		bgShare:      cfg.BackgroundShare,
		quantum:      cfg.AnticipatoryQuantum,
	}
	if cfg.FIFO || cfg.LinearPick {
		// Neither alternate picker supports the quantum walk; keeping
		// the knob inert there keeps them byte-for-byte reference arms.
		s.quantum = 0
	}
	if !s.linear {
		s.startAt = make(map[int64]*request)
		s.endAt = make(map[int64]*request)
	}
	if cfg.Readahead > 0 && !cfg.FIFO && seqClass != NoReadahead {
		s.ra = make(map[int64]time.Duration)
	}
	if reg := g.obs.Registry(); reg != nil {
		dev.Use(g.obs)
		l := obs.L("dev", dev.Spec().Name)
		s.mSubmitted = reg.Counter("iosched.submitted", l)
		s.mGranted = reg.Counter("iosched.granted", l)
		s.mCoalesced = reg.Counter("iosched.coalesced", l)
		s.mBoosted = reg.Counter("iosched.boosted", l)
		s.mPrefetchHits = reg.Counter("iosched.prefetch.hits", l)
		s.mPrefetchBlks = reg.Counter("iosched.prefetch.blocks", l)
		s.mBgGrants = reg.Counter("iosched.background.grants", l)
		s.mBandWait = make(map[int]*obs.HistVar)
		s.mTenantBlocks = make(map[dss.TenantID]*obs.Counter)
	}
	g.mu.Lock()
	g.scheds = append(g.scheds, s)
	list := append([]*Scheduler(nil), g.scheds...)
	g.schedList.Store(&list)
	g.mu.Unlock()
	return s
}

// bandWaitLocked returns (caching on first use) the `iosched.band.wait`
// histogram of one class band on this device: the scheduler-imposed
// grant delay, measured the way the aging bound measures it. Caller
// holds s.mu.
func (s *Scheduler) bandWaitLocked(class int) *obs.HistVar {
	if s.mBandWait == nil {
		return nil
	}
	hv := s.mBandWait[class]
	if hv == nil {
		hv = s.g.obs.Registry().Histogram("iosched.band.wait",
			obs.L("dev", s.dev.Spec().Name), obs.LInt("class", int64(class)))
		s.mBandWait[class] = hv
	}
	return hv
}

// tenantBlocksLocked returns (caching on first use) the
// `iosched.tenant.blocks` counter of one tenant on this device: the
// foreground device blocks granted to it, the fairness metric tenant
// shares are judged by. Caller holds s.mu.
func (s *Scheduler) tenantBlocksLocked(t dss.TenantID) *obs.Counter {
	if s.mTenantBlocks == nil {
		return nil
	}
	c := s.mTenantBlocks[t]
	if c == nil {
		c = s.g.obs.Registry().Counter("iosched.tenant.blocks",
			obs.L("dev", s.dev.Spec().Name), obs.LInt("tenant", int64(t)))
		s.mTenantBlocks[t] = c
	}
	return c
}

// Register enrolls a stream (identified by its session clock) into the
// closed population. While any stream is registered, grants happen only
// when every registered stream is blocked in the scheduler, which makes
// priority order authoritative regardless of goroutine timing. Streams
// must Unregister (typically via defer) when their workload ends.
func (g *Group) Register(clk *simclock.Clock) {
	g.mu.Lock()
	g.registered[clk] = struct{}{}
	g.nRegistered.Store(int64(len(g.registered)))
	g.mu.Unlock()
}

// Registered reports whether the stream is currently enrolled in the
// closed population.
func (g *Group) Registered(clk *simclock.Clock) bool {
	g.mu.Lock()
	_, ok := g.registered[clk]
	g.mu.Unlock()
	return ok
}

// Unregister withdraws a stream from the closed population. The stream
// must have no submission in flight. When the last stream leaves, any
// queued work is drained.
func (g *Group) Unregister(clk *simclock.Clock) {
	g.mu.Lock()
	delete(g.registered, clk)
	g.nRegistered.Store(int64(len(g.registered)))
	empty := len(g.registered) == 0
	if !empty && g.blocked.Load() >= int64(len(g.registered)) {
		g.dispatchLocked()
	}
	g.mu.Unlock()
	if empty {
		g.drain(true)
	}
}

// Drain grants every queued request (background flushes included, budget
// or not) in priority order. The storage manager calls it before
// settling device busy horizons at the end of a run.
func (g *Group) Drain() {
	g.drain(true)
}

// ResetStats clears every scheduler's counters — the per-tenant ones
// included — but neither the readahead buffer contents nor the tenants'
// fair-queueing tags (virtual time keeps flowing across a stats reset).
// The write-back credit balance likewise carries across the reset; it
// is re-seeded into the fresh ledger as an opening deposit so the
// documented invariant deposits - withdrawals == credit keeps holding
// in the measured window.
func (g *Group) ResetStats() {
	for _, s := range g.schedulers() {
		s.mu.Lock()
		s.stats = Stats{BudgetDeposits: s.bgCredit}
		for _, a := range s.tenants {
			a.stats = TenantStats{}
		}
		s.mu.Unlock()
	}
}

// Schedulers returns the group's schedulers in attach order.
func (g *Group) Schedulers() []*Scheduler {
	return append([]*Scheduler(nil), g.schedulers()...)
}

// schedulers returns the shared attach-order list (do not mutate).
func (g *Group) schedulers() []*Scheduler {
	if p := g.schedList.Load(); p != nil {
		return *p
	}
	return nil
}

// dispatchLocked runs barrier-mode rounds: grant in priority order until
// some registered stream is released, then let due background work
// trickle onto the device. Caller holds g.mu; scheduler locks are taken
// per grant underneath it.
func (g *Group) dispatchLocked() {
	n := int64(len(g.registered))
	for n > 0 && g.blocked.Load() >= n {
		progress := false
		for _, s := range g.scheds {
			if s.queued.Load() == 0 {
				continue
			}
			s.mu.Lock()
			if s.grantBestLocked(false) {
				progress = true
			}
			s.mu.Unlock()
			if g.blocked.Load() < n {
				break
			}
		}
		if !progress {
			break
		}
	}
	for _, s := range g.scheds {
		s.mu.Lock()
		s.grantDueBackgroundLocked()
		s.mu.Unlock()
	}
}

// drain grants eligible work until none remains, yielding between
// rounds so concurrently arriving requests can join the priority order.
// With all set (an explicit Drain, or the last registered stream
// leaving) every queued request is granted; otherwise — the
// opportunistic dispatch path — foreground is fully granted but
// background only as its write-back budget allows, so the destage
// backlog stays queued (and keeps coalescing) instead of trickling onto
// the device one positioning penalty at a time.
//
// The loop covers every scheduler of the group (a round attempts one
// grant per queued device, exactly like the single-lock dispatcher it
// replaced), but idle schedulers are skipped on an atomic queue-depth
// probe, so concurrent submitters draining disjoint devices touch only
// their own locks. A scheduler already being drained by another
// goroutine is skipped for the round — each round's grant and exit
// check run in one critical section, so the active drainer cannot miss
// work enqueued before it released the lock.
func (g *Group) drain(all bool) {
	scheds := g.schedulers()
	for {
		eligible := false
		for _, s := range scheds {
			if s.queued.Load() == 0 {
				continue
			}
			s.mu.Lock()
			if s.draining {
				s.mu.Unlock()
				continue
			}
			s.draining = true
			if s.nFg+s.nBg > 0 {
				s.grantBestLocked(all)
			}
			if s.hasEligibleLocked(all) {
				eligible = true
			}
			s.draining = false
			s.mu.Unlock()
		}
		// Exit as soon as no eligible work remains: the dispatcher must
		// not stay captive granting other streams' arrivals (its own
		// workload would stall in real time), and deferred background is
		// not eligible work.
		if !eligible {
			return
		}
		runtime.Gosched()
	}
}

// Scheduler orders the traffic of one device. All queue state is
// guarded by the scheduler's own mutex; configuration is copied out of
// the group at attach time so the grant path reads only local fields.
type Scheduler struct {
	g        *Group
	dev      *device.Device
	seqClass dss.Class

	// Immutable after Attach.
	disable      bool
	fifo         bool
	linear       bool
	agingBound   time.Duration
	maxCoalesce  int
	readahead    int
	readaheadCap int
	bgShare      float64
	quantum      int

	// queued mirrors nFg+nBg so group-wide dispatch loops skip idle
	// schedulers without taking their lock.
	queued atomic.Int64

	mu sync.Mutex

	// pending is the reference picker's queue (Config.LinearPick only);
	// the indexed picker keeps its requests in the structures below
	// (see index.go for the invariants).
	pending []*request
	bands   []*band
	age     ageHeap
	startAt map[int64]*request
	endAt   map[int64]*request

	seq   uint64
	stats Stats

	// nFg and nBg count pending foreground/background requests, so
	// eligibility probes stay O(1) against a deep deferred backlog;
	// bgWriteLBAs counts pending single-block background writes per
	// LBA, so the absorption check looks up the queue only on an actual
	// duplicate.
	nFg        int
	nBg        int
	bgWriteLBA map[int64]int

	// bgCredit is the write-back budget balance in blocks: foreground
	// grants deposit BackgroundShare of their blocks, budget-forced
	// background grants withdraw what they carried, floored at zero —
	// a batch larger than the balance has the excess forgiven rather
	// than borrowed against future deposits, and the forgiveness is
	// bounded by one budget batch per grant.
	bgCredit float64

	// vclock is the scheduler's fair-queueing virtual time: the start
	// tag of the most recently granted foreground request. tenants
	// holds per-tenant finish tags and counters (see tenantfair.go).
	vclock  float64
	tenants map[dss.TenantID]*tenantAcct

	// antStream and antLeft drive the anticipatory quantum: the stream
	// whose requests the elevator is currently serving and the blocks
	// left in its quantum (index.go).
	antStream *simclock.Clock
	antLeft   int

	// draining marks an opportunistic dispatcher round in progress on
	// this scheduler, so concurrent drainers skip it instead of
	// double-granting the same queue.
	draining bool

	// Pooled hot-path memory: the request freelist, the reused grant
	// batch, and the reused per-grant completion buffers. All owned by
	// s.mu; a request returns to the freelist only after every index
	// link has been cleared.
	freeReq  *request
	batch    []*request
	latBatch []device.LatencySample
	doneW    []*waiter

	ra        map[int64]time.Duration // prefetch buffer: lba -> ready time
	raOrder   []int64                 // FIFO eviction order (may hold stale keys)
	prefetchq []Prefetched            // completions awaiting TakePrefetched
	feed      bool                    // accumulate prefetchq (a consumer polls)

	// grantHook, when set, observes every grant before it is issued
	// (batch in final order, the coalesced span, and the budget flag).
	// Test-only: the differential picker test records grant sequences
	// through it.
	grantHook func(batch []*request, start int64, total int, budget bool)

	// Registry instruments, nil (inert) without Config.Obs. The
	// per-class band-wait histograms and per-tenant block counters are
	// cached in the maps so the grant path pays one registry lookup per
	// new key, then plain atomics.
	mSubmitted    *obs.Counter
	mGranted      *obs.Counter
	mCoalesced    *obs.Counter
	mBoosted      *obs.Counter
	mPrefetchHits *obs.Counter
	mPrefetchBlks *obs.Counter
	mBgGrants     *obs.Counter
	mBandWait     map[int]*obs.HistVar
	mTenantBlocks map[dss.TenantID]*obs.Counter
}

// Device returns the device this scheduler feeds.
func (s *Scheduler) Device() *device.Device { return s.dev }

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// newRequestLocked takes a request from the freelist (or allocates the
// pool's next entry). Caller holds s.mu.
func (s *Scheduler) newRequestLocked() *request {
	r := s.freeReq
	if r == nil {
		r = &request{}
	} else {
		s.freeReq = r.next
		r.next = nil
	}
	r.ageIdx = -1
	return r
}

// putRequestLocked recycles a granted request. Caller holds s.mu and
// must have removed the request from every index first.
func (s *Scheduler) putRequestLocked(r *request) {
	next := s.freeReq
	*r = request{ageIdx: -1, next: next}
	s.freeReq = r
}

// Submit delivers a foreground request: the caller's stream waits (in
// virtual time) for its completion, which is returned. tenant
// attributes the request for weighted fair sharing and per-tenant
// accounting (dss.DefaultTenant for unattributed traffic). If stream is
// a clock registered with the group, the request takes part in
// closed-population dispatch; otherwise it is granted opportunistically.
func (s *Scheduler) Submit(at time.Duration, op device.Op, lba int64, blocks int, class dss.Class, tenant dss.TenantID, stream *simclock.Clock) time.Duration {
	if blocks <= 0 {
		return at
	}
	if s.disable {
		return s.dev.AccessQueued(at, at, op, lba, blocks, int(class))
	}
	g := s.g
	fair := len(g.weights()) > 0
	s.mu.Lock()
	s.stats.Submitted++
	s.mSubmitted.Inc()
	if trackTenant(tenant, fair) {
		s.acctLocked(tenant).stats.Submitted++
	}
	if op == device.Write {
		s.invalidateRALocked(lba, blocks)
	}
	floor := at
	if op == device.Read && s.ra != nil {
		// Serve the run's prefix from the readahead buffer: scan
		// traffic consumes the blocks the previous grant prefetched.
		for blocks > 0 {
			ready, ok := s.ra[lba]
			if !ok {
				break
			}
			delete(s.ra, lba)
			s.stats.PrefetchHits++
			s.mPrefetchHits.Inc()
			if ready > floor {
				floor = ready
			}
			lba++
			blocks--
		}
		if blocks == 0 {
			s.dev.ObserveLatency(int(class), floor-at)
			if trackTenant(tenant, fair) {
				s.dev.ObserveTenantLatency(int(tenant), floor-at)
			}
			if tr := g.obs.Trace(); tr.SampleRequest() {
				var tid int64
				if stream != nil {
					tid = stream.ID()
				}
				tr.Instant("iosched", "prefetch.hit", tid, at, map[string]any{
					"dev": s.dev.Spec().Name, "lba": lba - 1, "class": int(class)})
			}
			s.mu.Unlock()
			return floor
		}
	}

	w := newWaiter(at, class, tenant)
	if tr := g.obs.Trace(); tr.SampleRequest() {
		w.trace = true
		if stream != nil {
			w.tid = stream.ID()
		}
	}

	if stream != nil && g.nRegistered.Load() > 0 {
		// Possibly a barrier submission: re-check membership under the
		// group lock, and perform flag/enqueue/blocked-count as one
		// atomic step so a concurrent grant can never complete a
		// barrier request whose park was not counted yet.
		s.mu.Unlock()
		g.mu.Lock()
		if _, ok := g.registered[stream]; ok {
			w.barrier = true
			s.mu.Lock()
			s.enqueueLocked(w, at, op, lba, blocks, class, tenant, stream)
			s.mu.Unlock()
			if g.blocked.Add(1) >= int64(len(g.registered)) {
				g.dispatchLocked()
			}
			g.mu.Unlock()
			return finishWait(w, floor)
		}
		g.mu.Unlock()
		s.mu.Lock()
	}
	s.enqueueLocked(w, at, op, lba, blocks, class, tenant, stream)
	s.mu.Unlock()
	g.drain(false)
	return finishWait(w, floor)
}

// finishWait parks on the waiter, recycles it, and folds in the
// prefetch-prefix floor.
func finishWait(w *waiter, floor time.Duration) time.Duration {
	w.wait()
	end := w.completion
	waiterPool.Put(w)
	if floor > end {
		return floor
	}
	return end
}

// SubmitBackground queues work no requester waits on (write-back
// destages, asynchronous cache fills). It is granted below every
// foreground class — on an idle device, when the backlog's write-back
// budget covers it, or at the final Drain — and it is exempt from
// aging: nobody waits on it, so it never jumps ahead of foreground
// traffic on age. tenant attributes the blocks for per-tenant
// accounting only; background work carries no fair-queueing tags.
// Deferred work stays queued, where adjacent destages coalesce. Safe
// to call while holding caller locks: it never blocks on a grant.
func (s *Scheduler) SubmitBackground(at time.Duration, op device.Op, lba int64, blocks int, class dss.Class, tenant dss.TenantID) {
	if blocks <= 0 {
		return
	}
	if s.disable {
		s.dev.AccessBackground(at, op, lba, blocks)
		return
	}
	g := s.g
	s.mu.Lock()
	if op == device.Write {
		s.invalidateRALocked(lba, blocks)
		// Write absorption: a queued background write to the same block
		// is superseded by this one — the device only needs the latest
		// copy, so the stale destage is dropped before it costs a
		// positioning penalty.
		if blocks == 1 && s.bgWriteLBA[lba] > 0 {
			if s.linear {
				for i, r := range s.pending {
					if r.w == nil && r.op == device.Write && r.blocks == 1 && r.lba == lba {
						s.putRequestLocked(s.removeAtLocked(i))
						s.stats.Absorbed++
						break
					}
				}
			} else if r := s.absorbCandidateLocked(lba); r != nil {
				s.indexRemoveLocked(r)
				s.putRequestLocked(r)
				s.stats.Absorbed++
			}
		}
	}
	s.enqueueLocked(nil, at, op, lba, blocks, class, tenant, nil)
	s.mu.Unlock()
	if g.nRegistered.Load() == 0 {
		g.drain(false)
	}
}

// EnablePrefetchFeed makes the scheduler retain readahead completions
// for TakePrefetched. Without a registered consumer nothing is
// accumulated, so configurations that never poll cannot leak memory.
func (s *Scheduler) EnablePrefetchFeed() {
	s.mu.Lock()
	s.feed = true
	s.mu.Unlock()
}

// TakePrefetched returns and clears the prefetch completions accumulated
// since the last call. The hybrid cache polls it to admit prefetched
// blocks into spare capacity; call EnablePrefetchFeed first.
func (s *Scheduler) TakePrefetched() []Prefetched {
	s.mu.Lock()
	out := s.prefetchq
	s.prefetchq = nil
	s.mu.Unlock()
	return out
}

// enqueueLocked splits a submission into MaxCoalesce-sized chunks (so a
// long scan run cannot monopolize the device between grants) and queues
// them. Under fair sharing, each foreground chunk is stamped with its
// tenant's start/finish tags: consecutive chunks chain through the
// tenant's lastFinish, so one big submission pays virtual time
// proportional to all of its blocks. FIFO mode queues the submission
// whole, as the legacy elevator would. Caller holds s.mu.
func (s *Scheduler) enqueueLocked(w *waiter, at time.Duration, op device.Op, lba int64, blocks int, class dss.Class, tenant dss.TenantID, sid *simclock.Clock) {
	rank := classRank(class)
	if w == nil {
		rank += backgroundBand
	}
	var ta *tenantAcct
	var weight float64
	if w != nil {
		if wm := s.g.weights(); len(wm) > 0 {
			ta = s.acctLocked(tenant)
			weight = weightOf(wm, tenant)
		}
	}
	max := s.maxCoalesce
	if s.fifo {
		max = blocks
	}
	base := at
	if b := s.dev.BusyUntil(); b > base {
		base = b
	}
	for blocks > 0 {
		n := blocks
		if n > max {
			n = max
		}
		r := s.newRequestLocked()
		r.op, r.lba, r.blocks, r.class, r.tenant = op, lba, n, class, tenant
		r.rank, r.arrive, r.base, r.seq, r.w, r.sid = rank, at, base, s.seq, w, sid
		if ta != nil {
			start := s.vclock
			if ta.lastFinish > start {
				start = ta.lastFinish
			}
			ta.lastFinish = start + float64(n)/weight
			r.vstart, r.vfinish = start, ta.lastFinish
		}
		s.seq++
		if w != nil {
			w.remaining++
			s.nFg++
		} else {
			s.nBg++
			if op == device.Write && n == 1 {
				if s.bgWriteLBA == nil {
					s.bgWriteLBA = make(map[int64]int)
				}
				s.bgWriteLBA[lba]++
			}
		}
		if s.linear {
			s.pending = append(s.pending, r)
		} else {
			s.indexInsertLocked(r)
		}
		s.queued.Add(1)
		lba += int64(n)
		blocks -= n
	}
	if q := s.nFg + s.nBg; q > s.stats.MaxQueue {
		s.stats.MaxQueue = q
	}
	if s.nBg > s.stats.MaxBackgroundQueue {
		s.stats.MaxBackgroundQueue = s.nBg
	}
}

// hasEligibleLocked reports whether the queue holds work a dispatch
// round would grant: any foreground request, or background when allowed
// by a full drain, a disabled throttle, or available budget credit.
// Caller holds s.mu.
func (s *Scheduler) hasEligibleLocked(bgOK bool) bool {
	if s.nFg > 0 {
		return true
	}
	return s.nBg > 0 && (bgOK || s.bgShare <= 0 || s.bgCredit >= 1)
}

// pickLinearLocked is the reference picker (Config.LinearPick): the
// original O(n) scans over the pending slice. It chooses the next
// request exactly like pickIndexedLocked — the oldest foreground
// request whose wait would exceed the aging bound, else the best
// (rank, vfinish, elevator) foreground request, else background.
// Background is exempt from aging — nobody waits on it — and while
// foreground is pending it is eligible only when its write-back budget
// holds at least one block of credit (returned as budget=true so the
// grant is debited) or when bgOK forces a full drain. FIFO mode picks
// strictly by arrival. Returns -1 when nothing is eligible. Caller
// holds s.mu.
func (s *Scheduler) pickLinearLocked(bgOK bool) (pick int, budget bool) {
	if len(s.pending) == 0 {
		return -1, false
	}
	if s.fifo {
		oldest := 0
		for i, r := range s.pending {
			if olderThan(r, s.pending[oldest]) {
				oldest = i
			}
		}
		return oldest, false
	}
	busy := s.dev.BusyUntil()
	bound := s.agingBound
	head := s.dev.HeadLBA()
	bestFg, overdue, bestBg := -1, -1, -1
	for i, r := range s.pending {
		if r.w != nil {
			if bound > 0 && busy-r.arrive > bound {
				if overdue < 0 || olderThan(r, s.pending[overdue]) {
					overdue = i
				}
			}
			if bestFg < 0 || betterThanAt(r, s.pending[bestFg], head) {
				bestFg = i
			}
		} else if bestBg < 0 || betterThanAt(r, s.pending[bestBg], head) {
			bestBg = i
		}
	}
	if overdue >= 0 && overdue != bestFg {
		s.stats.Boosted++
		s.mBoosted.Inc()
		return overdue, false
	}
	if bestFg >= 0 {
		if bestBg >= 0 && s.bgShare > 0 && s.bgCredit >= 1 &&
			s.pending[bestBg].blocks <= budgetMaxCoalesce {
			// The budget guarantees background its bounded share of
			// device time even under a saturated foreground phase. A
			// chunk already larger than the budget batch cap is never
			// forced ahead of waiting foreground — the cap bounds the
			// latency a budget grant injects, and capping only the
			// coalescing loop would not bound the head request itself.
			return bestBg, true
		}
		return bestFg, false
	}
	if bestBg >= 0 && !bgOK && s.bgShare > 0 {
		// Opportunistic dispatch grants background on a genuinely idle
		// device (free time the request interferes with nothing on) or
		// against budget credit; otherwise the backlog keeps
		// accumulating (and coalescing) until credit, idle time or the
		// final drain releases it. A negative share disables the
		// throttle entirely and background dispatches eagerly, as
		// before.
		if busy <= s.pending[bestBg].arrive {
			return bestBg, false
		}
		if s.bgCredit >= 1 {
			return bestBg, true
		}
		return -1, false
	}
	return bestBg, false
}

func olderThan(a, b *request) bool {
	if a.arrive != b.arrive {
		return a.arrive < b.arrive
	}
	return a.seq < b.seq
}

// betterThanAt orders same-rank requests first by fair-queueing finish
// tag — under tenant fair sharing, the tenant owed the most virtual
// time wins the class band — and then by distance from the device head
// (the elevator pass): with several same-class same-tenant requests
// co-pending — concurrent transaction streams, an accumulated destage
// backlog — the nearest is granted first, so queue depth buys shorter
// positioning. With fair sharing off every finish tag is 0 and the
// ordering reduces to the class-only elevator. The aging bound, checked
// before this ordering applies, keeps far-away requests (and low-weight
// tenants) from starving.
func betterThanAt(a, b *request, head int64) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	if a.vfinish != b.vfinish {
		return a.vfinish < b.vfinish
	}
	if head >= 0 {
		da, db := a.lba-head, b.lba-head
		if da < 0 {
			da = -da
		}
		if db < 0 {
			db = -db
		}
		if da != db {
			return da < db
		}
	}
	return a.seq < b.seq
}

// noteRemovedLocked maintains the pending counters for a request that
// just left the queue (either picker). Caller holds s.mu.
func (s *Scheduler) noteRemovedLocked(r *request) {
	s.queued.Add(-1)
	if r.w != nil {
		s.nFg--
	} else {
		s.nBg--
		if r.op == device.Write && r.blocks == 1 {
			if n := s.bgWriteLBA[r.lba]; n > 1 {
				s.bgWriteLBA[r.lba] = n - 1
			} else {
				delete(s.bgWriteLBA, r.lba)
			}
		}
	}
}

// removeAtLocked drops index i from the linear pending queue, preserving
// order and the pending counters. Caller holds s.mu.
func (s *Scheduler) removeAtLocked(i int) *request {
	r := s.pending[i]
	s.pending = append(s.pending[:i], s.pending[i+1:]...)
	s.noteRemovedLocked(r)
	return r
}

// grantBestLocked picks, coalesces and grants one device access; bgOK
// lets over-budget background through (idle dispatch, full drain). It
// reports whether anything was granted. Caller holds s.mu.
func (s *Scheduler) grantBestLocked(bgOK bool) bool {
	var head *request
	var budget bool
	if s.linear {
		i, b := s.pickLinearLocked(bgOK)
		if i < 0 {
			return false
		}
		head, budget = s.removeAtLocked(i), b
	} else {
		r, b := s.pickIndexedLocked(bgOK)
		if r == nil {
			return false
		}
		s.indexRemoveLocked(r)
		head, budget = r, b
	}
	batch := append(s.batch[:0], head)
	start, end := head.lba, head.lba+int64(head.blocks)
	total := head.blocks
	if s.fifo {
		s.batch = batch
		s.grantLocked(batch, start, total, budget)
		return true
	}
	// Coalesce LBA-adjacent queued requests of the same class and
	// direction into one access. A budget-forced background grant runs
	// ahead of waiting foreground, so its batch is capped well below
	// MaxCoalesce: the throttle must bound the latency it injects, not
	// just the share it consumes. Under tenant fair sharing the batch
	// is also tenant-pure — letting tenant B's blocks ride in tenant
	// A's grant would hand B device time its finish tags never paid
	// for, so adjacency across tenants no longer merges.
	max := s.maxCoalesce
	if budget && max > budgetMaxCoalesce {
		max = budgetMaxCoalesce
	}
	fair := len(s.g.weights()) > 0
	for total < max {
		var p *request
		prepend := false
		if s.linear {
			found := -1
			for j, q := range s.pending {
				if q.op != head.op || q.class != head.class || total+q.blocks > max {
					continue
				}
				if fair && q.tenant != head.tenant {
					continue
				}
				if q.lba == end {
					found = j
					break
				}
				if q.lba+int64(q.blocks) == start {
					found, prepend = j, true
					break
				}
			}
			if found >= 0 {
				p = s.removeAtLocked(found)
			}
		} else {
			p, prepend = s.coalesceCandidateLocked(head, start, end, max-total, fair)
			if p != nil {
				s.indexRemoveLocked(p)
			}
		}
		if p == nil {
			break
		}
		if prepend {
			start = p.lba
			batch = append(batch, nil)
			copy(batch[1:], batch)
			batch[0] = p
		} else {
			end += int64(p.blocks)
			batch = append(batch, p)
		}
		total += p.blocks
		s.stats.Coalesced++
		s.mCoalesced.Inc()
	}
	s.batch = batch
	s.grantLocked(batch, start, total, budget)
	return true
}

// grantDueBackgroundLocked lets one batch of queued background work onto
// the device when no foreground request is waiting. At most one batch
// per dispatch event keeps destage bursts from monopolizing the device
// just because the foreground queue went momentarily empty; the rest of
// the backlog follows on later dispatches, budget grants or the final
// Drain. Caller holds s.mu.
func (s *Scheduler) grantDueBackgroundLocked() {
	if s.nFg > 0 || s.nBg == 0 {
		return
	}
	s.grantBestLocked(true)
}

// grantLocked issues one device access for a coalesced batch and
// completes its requests; budget marks a background grant the write-back
// budget forced ahead of waiting foreground, which debits its credit.
// Completion latencies are flushed to the device in one batched
// observation, and the batch's requests return to the freelist before
// any waiter is woken. Caller holds s.mu.
func (s *Scheduler) grantLocked(batch []*request, start int64, total int, budget bool) {
	if s.grantHook != nil {
		s.grantHook(batch, start, total, budget)
	}
	// Like the coalescing filters, accounting keys off the batch head —
	// after prepend-coalescing that is the lowest-LBA member, not
	// necessarily the picked request.
	head := batch[0]
	arrive := batch[0].arrive
	for _, r := range batch[1:] {
		if r.arrive < arrive {
			arrive = r.arrive
		}
	}
	wm := s.g.weights()
	fair := len(wm) > 0
	// Readahead: extend a sequential-class read past the run so the
	// scan's next request is served from the buffer.
	extra := 0
	if head.w != nil && head.op == device.Read && head.class == s.seqClass && s.ra != nil {
		if _, ok := s.ra[start+int64(total)]; !ok {
			extra = s.readahead
		}
	}
	// Write-back budget accounting: foreground grants deposit their
	// share; budget-forced background grants withdraw what they carried.
	// Idle and drain grants ride free device time and touch no credit.
	if share := s.bgShare; share > 0 {
		// The credit cap is one coalesced batch: a budget grant can put
		// at most MaxCoalesce blocks ahead of waiting foreground, and
		// the floor at zero keeps bursts from borrowing against the
		// future. The ledger records effective movements — the credited
		// part of a capped deposit, the consumed part of a floored
		// withdrawal — so deposits - withdrawals == credit always.
		creditCap := float64(s.maxCoalesce)
		if head.w != nil {
			before := s.bgCredit
			s.bgCredit += share * float64(total)
			if s.bgCredit > creditCap {
				s.bgCredit = creditCap
			}
			if s.bgCredit > before {
				s.stats.BudgetDeposits += s.bgCredit - before
			}
		} else if budget {
			withdraw := float64(total)
			if withdraw > s.bgCredit {
				withdraw = s.bgCredit
			}
			s.bgCredit -= withdraw
			s.stats.BudgetWithdrawals += withdraw
			s.stats.BudgetBlocks += int64(total)
			s.stats.BudgetGrants++
		}
	}
	if head.w == nil {
		s.stats.BackgroundGrants++
		s.stats.BackgroundBlocks += int64(total)
		s.mBgGrants.Inc()
	} else if s.quantum > 0 {
		// Anticipatory quantum bookkeeping: a grant for a new stream
		// opens a fresh quantum; every foreground grant consumes its
		// blocks from the current one.
		if head.sid != s.antStream {
			s.antStream = head.sid
			s.antLeft = s.quantum
		}
		s.antLeft -= total
	}
	// Per-tenant accounting: each request's blocks are charged to its
	// own tenant (a fair-share batch is tenant-pure, but the class-only
	// baseline still merges across tenants), and the grant wait is
	// measured the way the aging bound measures it — against the
	// device's busy horizon at grant time.
	busy := s.dev.BusyUntil()
	for _, r := range batch {
		if r.vstart > s.vclock {
			s.vclock = r.vstart
		}
		if r.w != nil {
			// The band-wait histogram records the same scheduler-imposed
			// delay the aging bound and TenantStats.MaxWait measure.
			wait := busy - r.base
			if wait < 0 {
				wait = 0
			}
			s.bandWaitLocked(int(r.class)).Observe(wait)
		}
		if !trackTenant(r.tenant, fair) {
			continue
		}
		ts := &s.acctLocked(r.tenant).stats
		if r.w != nil {
			ts.Blocks += int64(r.blocks)
			s.tenantBlocksLocked(r.tenant).Add(int64(r.blocks))
			if wait := busy - r.base; wait > ts.MaxWait {
				ts.MaxWait = wait
			}
		} else {
			ts.BackgroundBlocks += int64(r.blocks)
		}
	}
	if extra > 0 && trackTenant(head.tenant, fair) {
		// Readahead extends the grant with real device blocks: bill
		// them to the scan's tenant — both in the granted-block stats
		// and, under fair sharing, in its virtual time, so prefetching
		// cannot buy a tenant device bandwidth its weight does not
		// cover.
		ta := s.acctLocked(head.tenant)
		ta.stats.Blocks += int64(extra)
		if fair {
			ta.lastFinish += float64(extra) / weightOf(wm, head.tenant)
		}
	}
	end := s.dev.Access(arrive, head.op, start, total+extra)
	if extra > 0 {
		base := start + int64(total)
		for j := 0; j < extra; j++ {
			s.insertRALocked(base+int64(j), end)
		}
		if s.feed {
			s.prefetchq = append(s.prefetchq, Prefetched{LBA: base, Blocks: extra, Ready: end, Tenant: head.tenant})
		}
		s.stats.PrefetchBlocks += int64(extra)
		s.mPrefetchBlks.Add(int64(extra))
	}
	s.stats.Granted++
	s.mGranted.Inc()
	if tr := s.g.obs.Trace(); tr != nil {
		// serviceStart approximates when the device turned to this grant:
		// the later of the batch's arrival and the busy horizon the grant
		// was measured against. Queue-wait and service spans share the
		// submitting stream's track so Perfetto shows the request's life
		// end to end.
		serviceStart := arrive
		if busy > serviceStart {
			serviceStart = busy
		}
		if serviceStart > end {
			serviceStart = end
		}
		dev := s.dev.Spec().Name
		if head.w == nil {
			tr.Span("device", "destage", 0, serviceStart, end-serviceStart, map[string]any{
				"dev": dev, "op": head.op.String(), "lba": start, "blocks": total})
		}
		for _, r := range batch {
			if r.w == nil || !r.w.trace {
				continue
			}
			qw := serviceStart - r.arrive
			if qw < 0 {
				qw = 0
			}
			tr.Span("iosched", "queue.wait", r.w.tid, r.arrive, qw, map[string]any{
				"dev": dev, "class": int(r.class), "lba": r.lba, "blocks": r.blocks})
			tr.Span("device", "service", r.w.tid, serviceStart, end-serviceStart, map[string]any{
				"dev": dev, "op": head.op.String(), "blocks": total})
		}
	}
	for _, r := range batch {
		if r.w == nil {
			continue
		}
		if end > r.w.completion {
			r.w.completion = end
		}
		r.w.remaining--
		if r.w.remaining == 0 {
			// One latency sample per submission, at its last chunk —
			// collected here, flushed to the device in one batch below.
			sample := device.LatencySample{Class: int(r.w.class), Tenant: -1, Lat: r.w.completion - r.w.arrive}
			if trackTenant(r.w.tenant, fair) {
				sample.Tenant = int(r.w.tenant)
			}
			s.latBatch = append(s.latBatch, sample)
			if r.w.barrier {
				s.g.blocked.Add(-1)
			}
			s.doneW = append(s.doneW, r.w)
		}
	}
	for i, r := range batch {
		batch[i] = nil
		s.putRequestLocked(r)
	}
	if len(s.latBatch) > 0 {
		s.dev.ObserveLatencyBatch(s.latBatch)
		s.latBatch = s.latBatch[:0]
	}
	// Wake the completed submitters last: signal is the granter's final
	// touch of each waiter, so the submitter may recycle it on return.
	for i, w := range s.doneW {
		s.doneW[i] = nil
		w.signal()
	}
	s.doneW = s.doneW[:0]
}

// insertRALocked adds one block to the prefetch buffer, evicting the
// oldest entries beyond capacity. Caller holds s.mu.
func (s *Scheduler) insertRALocked(lba int64, ready time.Duration) {
	if _, ok := s.ra[lba]; ok {
		s.ra[lba] = ready
		return
	}
	s.ra[lba] = ready
	s.raOrder = append(s.raOrder, lba)
	for len(s.ra) > s.readaheadCap && len(s.raOrder) > 0 {
		old := s.raOrder[0]
		s.raOrder = s.raOrder[1:]
		delete(s.ra, old)
	}
	// Consumed and invalidated blocks leave stale keys behind in
	// raOrder; compact it once it grows well past the live buffer so it
	// cannot grow without bound under a long consuming scan.
	if len(s.raOrder) > 4*s.readaheadCap {
		live := s.raOrder[:0]
		for _, k := range s.raOrder {
			if _, ok := s.ra[k]; ok {
				live = append(live, k)
			}
		}
		s.raOrder = live
	}
}

// invalidateRALocked drops buffered blocks overwritten by a write, so a
// later read pays for the fresh copy. Caller holds s.mu.
func (s *Scheduler) invalidateRALocked(lba int64, blocks int) {
	if s.ra == nil {
		return
	}
	for i := 0; i < blocks; i++ {
		delete(s.ra, lba+int64(i))
	}
}
