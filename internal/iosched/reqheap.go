package iosched

// ageHeap is an intrusive binary min-heap over pending requests keyed by
// (arrive, seq) — the olderThan order. It backs two picker duties in the
// indexed scheduler:
//
//   - the aging check: the heap minimum is the oldest pending foreground
//     request, and (because the overdue set is an arrival-prefix of the
//     queue) it is exactly the request the seed's linear scan would boost
//     when any request is overdue;
//   - FIFO mode: with no class priority, the heap minimum is the grant —
//     the whole pick is one O(1) peek plus an O(log n) removal.
//
// A deque would not do for either: arrivals are stamped by per-stream
// session clocks, so enqueue order is not arrival order across streams
// and the "arrival deque head" is only findable through a real ordered
// structure. Membership is intrusive (request.ageIdx), so removal from
// the middle — a request granted through the band index or absorbed —
// is O(log n) with no auxiliary allocation, and requests can be pooled
// without the stale-entry hazard lazy deletion would create.
type ageHeap struct {
	a []*request
}

func (h *ageHeap) len() int { return len(h.a) }

// min returns the oldest pending request (nil when empty) without
// removing it.
func (h *ageHeap) min() *request {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

func (h *ageHeap) push(r *request) {
	r.ageIdx = len(h.a)
	h.a = append(h.a, r)
	h.up(r.ageIdx)
}

// remove unlinks r from the heap by its stored index; a request that is
// not in the heap is ignored.
func (h *ageHeap) remove(r *request) {
	i := r.ageIdx
	if i < 0 || i >= len(h.a) || h.a[i] != r {
		return
	}
	last := len(h.a) - 1
	h.swap(i, last)
	h.a[last] = nil
	h.a = h.a[:last]
	r.ageIdx = -1
	if i < last {
		h.down(i)
		h.up(i)
	}
}

func (h *ageHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !olderThan(h.a[i], h.a[p]) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *ageHeap) down(i int) {
	n := len(h.a)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && olderThan(h.a[r], h.a[l]) {
			m = r
		}
		if !olderThan(h.a[m], h.a[i]) {
			break
		}
		h.swap(i, m)
		i = m
	}
}

func (h *ageHeap) swap(i, j int) {
	h.a[i], h.a[j] = h.a[j], h.a[i]
	h.a[i].ageIdx = i
	h.a[j].ageIdx = j
}
