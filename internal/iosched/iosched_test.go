package iosched

import (
	"sync"
	"testing"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/simclock"
)

const seqClass = dss.Class(7) // DefaultPolicySpace().Sequential()

func newTestSched(cfg Config) (*Group, *Scheduler, *device.Device) {
	dev := device.New(device.Cheetah15K())
	g := NewGroup(cfg)
	s := g.Attach(dev, seqClass)
	return g, s, dev
}

// bareWaiter builds a non-pooled waiter for direct enqueueLocked tests.
func bareWaiter(class dss.Class, tenant dss.TenantID) *waiter {
	w := &waiter{class: class, tenant: tenant}
	w.cond.L = &w.mu
	return w
}

// enqueue adds a request without dispatching (test-only, single
// threaded). It returns the waiter so completions can be read back.
func enqueue(g *Group, s *Scheduler, at time.Duration, op device.Op, lba int64, blocks int, class dss.Class) *waiter {
	w := bareWaiter(class, dss.DefaultTenant)
	w.arrive = at
	s.mu.Lock()
	s.enqueueLocked(w, at, op, lba, blocks, class, dss.DefaultTenant, nil)
	s.mu.Unlock()
	return w
}

func drain(g *Group) {
	g.Drain()
}

// Priority dispatch: with a log write and a scan read queued together,
// the log write is granted the device first even though the scan was
// enqueued first.
func TestPriorityOrder(t *testing.T) {
	g, s, _ := newTestSched(Config{Readahead: -1})
	scan := enqueue(g, s, 0, device.Read, 1000, 1, seqClass)
	logw := enqueue(g, s, 0, device.Write, 2000, 1, dss.ClassLog)
	drain(g)
	if logw.completion >= scan.completion {
		t.Fatalf("log write %v not granted before scan read %v", logw.completion, scan.completion)
	}
}

// Starvation bound: a low-priority request that has already waited past
// the aging bound is granted before fresher high-priority requests, so
// its total wait is bounded even under a continuous high-priority flood.
func TestAgingBound(t *testing.T) {
	bound := 2 * time.Millisecond
	g, s, dev := newTestSched(Config{AgingBound: bound, Readahead: -1})
	// Occupy the device so queued requests accumulate virtual wait.
	dev.Access(0, device.Write, 0, 64) // ~8.9ms busy

	low := enqueue(g, s, 0, device.Read, 5000, 1, seqClass)
	var highs []*waiter
	for i := 0; i < 8; i++ {
		highs = append(highs, enqueue(g, s, 0, device.Write, 9000+int64(2*i), 1, dss.ClassLog))
	}
	drain(g)
	// The low request is overdue the moment dispatch starts (busyUntil -
	// arrive > bound), so it must be granted first.
	for i, h := range highs {
		if low.completion > h.completion {
			t.Fatalf("starved: low done %v after high[%d] %v", low.completion, i, h.completion)
		}
	}
	if s.Stats().Boosted == 0 {
		t.Fatal("aging boost not recorded")
	}
}

// Without the aging pressure, strict priority holds: the same scenario
// with an idle device grants the log writes first.
func TestStrictPriorityWhenFresh(t *testing.T) {
	g, s, _ := newTestSched(Config{AgingBound: time.Hour, Readahead: -1})
	low := enqueue(g, s, 0, device.Read, 5000, 1, seqClass)
	high := enqueue(g, s, 0, device.Write, 9000, 1, dss.ClassLog)
	drain(g)
	if high.completion >= low.completion {
		t.Fatalf("high %v not before low %v", high.completion, low.completion)
	}
}

// Coalescing: LBA-adjacent same-class requests are merged into one
// device access, and per-request completion ordering is preserved
// (completions are non-decreasing in queue order; merged requests share
// their batch's completion).
func TestCoalescingPreservesOrdering(t *testing.T) {
	g, s, dev := newTestSched(Config{Readahead: -1})
	var ws []*waiter
	for i := 0; i < 8; i++ {
		ws = append(ws, enqueue(g, s, 0, device.Read, int64(i), 1, seqClass))
	}
	drain(g)
	st := dev.Stats()
	if st.Reads != 1 {
		t.Fatalf("adjacent requests not coalesced: %d device accesses", st.Reads)
	}
	if st.BlocksRead != 8 {
		t.Fatalf("coalesced access read %d blocks", st.BlocksRead)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i].completion < ws[i-1].completion {
			t.Fatalf("completion order violated: [%d]=%v < [%d]=%v",
				i, ws[i].completion, i-1, ws[i-1].completion)
		}
	}
	if got := s.Stats().Coalesced; got != 7 {
		t.Fatalf("Coalesced = %d, want 7", got)
	}
}

// Coalescing must not merge across classes or leave MaxCoalesce behind.
func TestCoalesceBounds(t *testing.T) {
	g, s, dev := newTestSched(Config{MaxCoalesce: 4, Readahead: -1})
	for i := 0; i < 8; i++ {
		enqueue(g, s, 0, device.Read, int64(i), 1, seqClass)
	}
	enqueue(g, s, 0, device.Read, 8, 1, dss.Class(2)) // different class
	drain(g)
	st := dev.Stats()
	if st.Reads != 3 { // 4 + 4 blocks of the scan, plus the class-2 read
		t.Fatalf("accesses = %d, want 3", st.Reads)
	}
}

// Readahead: a sequential-class read over-reads into the prefetch
// buffer; the following reads are served from the buffer without
// touching the device, and TakePrefetched reports the run.
func TestReadahead(t *testing.T) {
	g, s, dev := newTestSched(Config{Readahead: 16})
	s.EnablePrefetchFeed()
	first := enqueue(g, s, 0, device.Read, 100, 1, seqClass)
	drain(g)
	st := dev.Stats()
	if st.BlocksRead != 17 {
		t.Fatalf("over-read %d blocks, want 17", st.BlocksRead)
	}
	got := s.Submit(first.completion, device.Read, 101, 16, seqClass, dss.DefaultTenant, nil)
	if after := dev.Stats(); after.Reads != st.Reads {
		t.Fatalf("buffered blocks re-read the device: %d -> %d", st.Reads, after.Reads)
	}
	if got != first.completion {
		t.Fatalf("buffer-served read completed at %v, want %v", got, first.completion)
	}
	if hits := s.Stats().PrefetchHits; hits != 16 {
		t.Fatalf("PrefetchHits = %d, want 16", hits)
	}
	pf := s.TakePrefetched()
	if len(pf) != 1 || pf[0].LBA != 101 || pf[0].Blocks != 16 {
		t.Fatalf("TakePrefetched = %+v", pf)
	}
}

// A write through the scheduler invalidates overlapping prefetched
// blocks, so a later read pays for the fresh copy.
func TestWriteInvalidatesReadahead(t *testing.T) {
	g, s, dev := newTestSched(Config{Readahead: 8})
	w := enqueue(g, s, 0, device.Read, 100, 1, seqClass)
	drain(g)
	s.Submit(w.completion, device.Write, 103, 1, dss.ClassWriteBuffer, dss.DefaultTenant, nil)
	before := dev.Stats().Reads
	s.Submit(w.completion, device.Read, 103, 1, seqClass, dss.DefaultTenant, nil)
	if dev.Stats().Reads == before {
		t.Fatal("stale prefetched block served after overwrite")
	}
}

// Background work yields to foreground: destages queued alongside a
// foreground read are granted after it.
func TestBackgroundYields(t *testing.T) {
	g, s, _ := newTestSched(Config{Readahead: -1})
	s.mu.Lock()
	s.enqueueLocked(nil, 0, device.Write, 5000, 1, dss.ClassWriteBuffer, dss.DefaultTenant, nil) // background
	fg := bareWaiter(dss.Class(2), dss.DefaultTenant)
	s.enqueueLocked(fg, 0, device.Read, 100, 1, dss.Class(2), dss.DefaultTenant, nil)
	s.mu.Unlock()
	g.Drain()
	// Foreground granted first: its completion equals its own service
	// (device idle), not service plus the destage.
	solo := device.New(device.Cheetah15K()).Access(0, device.Read, 100, 1)
	if fg.completion != solo {
		t.Fatalf("foreground read waited behind background work: %v vs %v", fg.completion, solo)
	}
}

// The disabled (FIFO) configuration reproduces the direct-device path:
// call order is service order and latencies are still recorded.
func TestDisabledIsFIFO(t *testing.T) {
	_, s, dev := newTestSched(Config{Disable: true})
	e1 := s.Submit(0, device.Write, 100, 1, seqClass, dss.DefaultTenant, nil)
	e2 := s.Submit(0, device.Write, 5000, 1, dss.ClassLog, dss.DefaultTenant, nil)
	if e2 <= e1 {
		t.Fatalf("FIFO violated: %v then %v", e1, e2)
	}
	st := dev.Stats()
	if st.PerClass[int(dss.ClassLog)].Count != 1 || st.PerClass[int(seqClass)].Count != 1 {
		t.Fatalf("latency histograms missing: %+v", st.PerClass)
	}
}

// Closed-population dispatch: two registered streams submit
// concurrently; the grant happens only when both are blocked, so the
// log write wins the device regardless of which goroutine called first.
func TestBarrierPriority(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		g, s, _ := newTestSched(Config{Readahead: -1})
		var scanClk, logClk simclock.Clock
		g.Register(&scanClk)
		g.Register(&logClk)
		var scanEnd, logEnd time.Duration
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			defer g.Unregister(&scanClk)
			scanEnd = s.Submit(0, device.Read, 100000, 64, seqClass, dss.DefaultTenant, &scanClk)
		}()
		go func() {
			defer wg.Done()
			defer g.Unregister(&logClk)
			logEnd = s.Submit(0, device.Write, 500000, 1, dss.ClassLog, dss.DefaultTenant, &logClk)
		}()
		wg.Wait()
		if logEnd >= scanEnd {
			t.Fatalf("trial %d: log %v did not beat scan %v", trial, logEnd, scanEnd)
		}
	}
}

// Latency histograms: the scheduler records per-class end-to-end
// latency on the device for foreground requests.
func TestPerClassLatencyRecorded(t *testing.T) {
	g, s, dev := newTestSched(Config{Readahead: -1})
	enqueue(g, s, 0, device.Write, 0, 1, dss.ClassLog)
	enqueue(g, s, 0, device.Read, 100, 2, seqClass)
	drain(g)
	st := dev.Stats()
	if st.PerClass[int(dss.ClassLog)].Count != 1 {
		t.Fatalf("log histogram %+v", st.PerClass[int(dss.ClassLog)])
	}
	h := st.PerClass[int(seqClass)]
	if h.Count != 1 || h.Max == 0 {
		t.Fatalf("seq histogram %+v", h)
	}
	if q := h.Quantile(0.99); q < h.Mean()/2 || q > h.Max {
		t.Fatalf("p99 %v outside [mean/2=%v, max=%v]", q, h.Mean()/2, h.Max)
	}
}

// TestBackgroundBudgetUnderSaturation is the write-back throttling
// contract: a foreground phase that saturates the device can no longer
// starve the destage backlog — the token budget forces background a
// bounded share of device time — while deferred adjacent destages
// coalesce instead of paying one positioning penalty each.
func TestBackgroundBudgetUnderSaturation(t *testing.T) {
	g, s, dev := newTestSched(Config{BackgroundShare: 0.2, Readahead: -1})
	// Everything arrives at t=0: the device's busy horizon races ahead of
	// the arrivals, which is what saturation means in virtual time (a
	// destage arriving on an idle device would simply be granted).
	for i := 0; i < 300; i++ {
		// An adjacent destage backlog builds up alongside a continuous
		// foreground stream of scattered reads.
		s.SubmitBackground(0, device.Write, 500000+int64(i), 1, dss.ClassWriteBuffer, dss.DefaultTenant)
		s.Submit(0, device.Read, int64((i*7919)%100000), 1, dss.Class(2), dss.DefaultTenant, nil)
	}
	st := s.Stats()
	if st.BudgetGrants == 0 {
		t.Fatal("budget never granted background device time under a saturated foreground")
	}
	if st.BackgroundGrants == 0 || st.BackgroundBlocks <= st.BackgroundGrants {
		t.Fatalf("deferred destages did not coalesce: %d grants carried %d blocks",
			st.BackgroundGrants, st.BackgroundBlocks)
	}
	// The backlog is bounded well below the 300 submissions: the budget
	// keeps draining it during the flood.
	if st.MaxBackgroundQueue >= 300 {
		t.Fatalf("backlog grew unboundedly: max %d", st.MaxBackgroundQueue)
	}
	g.Drain()
	if got := dev.Stats().BlocksWrite; got != 300 {
		t.Fatalf("blocks written = %d, want 300 after the final drain", got)
	}
}

// TestBackgroundShareDisabled is the pre-throttling ablation: with a
// negative share, background is granted eagerly (never deferred past the
// drain that follows its submission), reproducing the old behaviour.
func TestBackgroundShareDisabled(t *testing.T) {
	_, s, dev := newTestSched(Config{BackgroundShare: -1, Readahead: -1})
	for i := 0; i < 50; i++ {
		s.SubmitBackground(0, device.Write, 500000+int64(i), 1, dss.ClassWriteBuffer, dss.DefaultTenant)
	}
	if got := dev.Stats().BlocksWrite; got != 50 {
		t.Fatalf("eager background left %d of 50 blocks unwritten", 50-got)
	}
	if st := s.Stats(); st.BudgetGrants != 0 {
		t.Fatalf("budget accounting active while disabled: %d", st.BudgetGrants)
	}
}

// TestBackgroundWriteAbsorption: a newer background write to the same
// block supersedes a deferred one; only the latest copy reaches the
// device.
func TestBackgroundWriteAbsorption(t *testing.T) {
	g, s, dev := newTestSched(Config{BackgroundShare: 0.5, Readahead: -1})
	for i := 0; i < 10; i++ {
		s.SubmitBackground(0, device.Write, 700000, 1, dss.ClassWriteBuffer, dss.DefaultTenant)
	}
	g.Drain()
	// The first write lands on the idle device; the rest arrive while it
	// is busy, defer, and absorb down to a single superseding copy.
	if got := s.Stats().Absorbed; got != 8 {
		t.Fatalf("Absorbed = %d, want 8", got)
	}
	if got := dev.Stats().BlocksWrite; got != 2 {
		t.Fatalf("device wrote %d blocks, want 2 after absorption", got)
	}
}
