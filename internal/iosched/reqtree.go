package iosched

// reqTree is a B-tree over the pending requests of one priority band,
// ordered by (vfinish, lba, seq). It is the indexed picker's replacement
// for the seed's linear betterThanAt scan: within a band the best pick is
// the elevator-nearest member of the minimum-vfinish group, which two
// seek probes around the device head recover in O(log n) (see
// band.elevatorBest). The same tree answers coalescing and anticipatory
// neighbor queries through seekGE/seekLT/ascendGE/descendLT.
//
// The key orders exactly like the tail of the seed comparator: vfinish
// compared as the raw float64 (0 for class-only mode, so the order
// degenerates to (lba, seq) and every band member is one vfinish group),
// then LBA, then the unique submission seq as the total-order tiebreak.
//
// Nodes are pooled on a per-tree freelist so steady-state insert/delete
// churn allocates nothing; degree 8 keeps nodes two cache lines of item
// pointers and the tree two levels deep up to ~3800 requests.
type reqTree struct {
	root *treeNode
	size int
	free *treeNode // recycled nodes, chained through children[0]
}

const (
	treeDegree   = 8                // minimum degree t
	treeMaxItems = 2*treeDegree - 1 // per-node item capacity
)

type treeKey struct {
	vfinish float64
	lba     int64
	seq     uint64
}

func reqKey(r *request) treeKey { return treeKey{r.vfinish, r.lba, r.seq} }

func (k treeKey) less(o treeKey) bool {
	if k.vfinish != o.vfinish {
		return k.vfinish < o.vfinish
	}
	if k.lba != o.lba {
		return k.lba < o.lba
	}
	return k.seq < o.seq
}

type treeNode struct {
	n        int
	leaf     bool
	items    [treeMaxItems]*request
	children [treeMaxItems + 1]*treeNode
}

func (t *reqTree) newNode(leaf bool) *treeNode {
	nd := t.free
	if nd == nil {
		nd = &treeNode{}
	} else {
		t.free = nd.children[0]
		nd.children[0] = nil
	}
	nd.leaf = leaf
	nd.n = 0
	return nd
}

func (t *reqTree) freeNode(nd *treeNode) {
	*nd = treeNode{}
	nd.children[0] = t.free
	t.free = nd
}

func (t *reqTree) insert(r *request) {
	if t.root == nil {
		t.root = t.newNode(true)
	}
	if t.root.n == treeMaxItems {
		nr := t.newNode(false)
		nr.children[0] = t.root
		t.splitChild(nr, 0)
		t.root = nr
	}
	t.insertNonFull(t.root, r)
	t.size++
}

// splitChild splits the full child parent.children[i], lifting its median
// item into the parent. parent must not be full.
func (t *reqTree) splitChild(parent *treeNode, i int) {
	child := parent.children[i]
	right := t.newNode(child.leaf)
	right.n = treeDegree - 1
	copy(right.items[:treeDegree-1], child.items[treeDegree:])
	if !child.leaf {
		copy(right.children[:treeDegree], child.children[treeDegree:])
		for j := treeDegree; j <= treeMaxItems; j++ {
			child.children[j] = nil
		}
	}
	mid := child.items[treeDegree-1]
	for j := treeDegree - 1; j < child.n; j++ {
		child.items[j] = nil
	}
	child.n = treeDegree - 1
	copy(parent.children[i+2:parent.n+2], parent.children[i+1:parent.n+1])
	parent.children[i+1] = right
	copy(parent.items[i+1:parent.n+1], parent.items[i:parent.n])
	parent.items[i] = mid
	parent.n++
}

func (t *reqTree) insertNonFull(nd *treeNode, r *request) {
	k := reqKey(r)
	for {
		i := nd.n
		for i > 0 && k.less(reqKey(nd.items[i-1])) {
			i--
		}
		if nd.leaf {
			copy(nd.items[i+1:nd.n+1], nd.items[i:nd.n])
			nd.items[i] = r
			nd.n++
			return
		}
		if nd.children[i].n == treeMaxItems {
			t.splitChild(nd, i)
			if reqKey(nd.items[i]).less(k) {
				i++
			}
		}
		nd = nd.children[i]
	}
}

// delete removes r (by key) from the tree. Deleting a request that is not
// present is a no-op on the contents but must not be attempted: size
// accounting assumes the key exists.
func (t *reqTree) delete(r *request) {
	if t.root == nil {
		return
	}
	t.deleteKey(t.root, reqKey(r))
	if t.root.n == 0 {
		old := t.root
		if old.leaf {
			t.root = nil
		} else {
			t.root = old.children[0]
		}
		old.children[0] = nil
		t.freeNode(old)
	}
	t.size--
}

// deleteKey is the CLRS single-pass descent: every child stepped into is
// first refilled to >= treeDegree items, so no backtracking is needed.
func (t *reqTree) deleteKey(nd *treeNode, k treeKey) {
	for {
		i := 0
		for i < nd.n && reqKey(nd.items[i]).less(k) {
			i++
		}
		if i < nd.n && !k.less(reqKey(nd.items[i])) {
			if nd.leaf {
				copy(nd.items[i:nd.n-1], nd.items[i+1:nd.n])
				nd.items[nd.n-1] = nil
				nd.n--
				return
			}
			left, right := nd.children[i], nd.children[i+1]
			if left.n >= treeDegree {
				pred := subtreeMax(left)
				nd.items[i] = pred
				nd, k = left, reqKey(pred)
				continue
			}
			if right.n >= treeDegree {
				succ := subtreeMin(right)
				nd.items[i] = succ
				nd, k = right, reqKey(succ)
				continue
			}
			t.mergeChildren(nd, i)
			nd = nd.children[i]
			continue
		}
		if nd.leaf {
			return
		}
		if nd.children[i].n < treeDegree {
			i = t.fill(nd, i)
		}
		nd = nd.children[i]
	}
}

func subtreeMax(nd *treeNode) *request {
	for !nd.leaf {
		nd = nd.children[nd.n]
	}
	return nd.items[nd.n-1]
}

func subtreeMin(nd *treeNode) *request {
	for !nd.leaf {
		nd = nd.children[0]
	}
	return nd.items[0]
}

// fill brings nd.children[i] up to >= treeDegree items by borrowing from
// a sibling or merging, returning the (possibly shifted) child index to
// descend into.
func (t *reqTree) fill(nd *treeNode, i int) int {
	if i > 0 && nd.children[i-1].n >= treeDegree {
		t.borrowFromPrev(nd, i)
		return i
	}
	if i < nd.n && nd.children[i+1].n >= treeDegree {
		t.borrowFromNext(nd, i)
		return i
	}
	if i < nd.n {
		t.mergeChildren(nd, i)
		return i
	}
	t.mergeChildren(nd, i-1)
	return i - 1
}

func (t *reqTree) borrowFromPrev(nd *treeNode, i int) {
	child, sib := nd.children[i], nd.children[i-1]
	copy(child.items[1:child.n+1], child.items[:child.n])
	child.items[0] = nd.items[i-1]
	if !child.leaf {
		copy(child.children[1:child.n+2], child.children[:child.n+1])
		child.children[0] = sib.children[sib.n]
		sib.children[sib.n] = nil
	}
	nd.items[i-1] = sib.items[sib.n-1]
	sib.items[sib.n-1] = nil
	child.n++
	sib.n--
}

func (t *reqTree) borrowFromNext(nd *treeNode, i int) {
	child, sib := nd.children[i], nd.children[i+1]
	child.items[child.n] = nd.items[i]
	if !child.leaf {
		child.children[child.n+1] = sib.children[0]
	}
	nd.items[i] = sib.items[0]
	copy(sib.items[:sib.n-1], sib.items[1:sib.n])
	sib.items[sib.n-1] = nil
	if !sib.leaf {
		copy(sib.children[:sib.n], sib.children[1:sib.n+1])
		sib.children[sib.n] = nil
	}
	child.n++
	sib.n--
}

// mergeChildren folds nd.items[i] and children[i+1] into children[i].
// Both children hold treeDegree-1 items when called, so the merged node
// holds exactly treeMaxItems.
func (t *reqTree) mergeChildren(nd *treeNode, i int) {
	left, right := nd.children[i], nd.children[i+1]
	left.items[left.n] = nd.items[i]
	copy(left.items[left.n+1:left.n+1+right.n], right.items[:right.n])
	if !left.leaf {
		copy(left.children[left.n+1:left.n+2+right.n], right.children[:right.n+1])
	}
	left.n += 1 + right.n
	copy(nd.items[i:nd.n-1], nd.items[i+1:nd.n])
	nd.items[nd.n-1] = nil
	copy(nd.children[i+1:nd.n], nd.children[i+2:nd.n+1])
	nd.children[nd.n] = nil
	nd.n--
	t.freeNode(right)
}

// min returns the smallest item, nil when the tree is empty.
func (t *reqTree) min() *request {
	if t.root == nil || t.size == 0 {
		return nil
	}
	return subtreeMin(t.root)
}

// seekGE returns the smallest item with key >= k, nil if none.
func (t *reqTree) seekGE(k treeKey) *request {
	var best *request
	nd := t.root
	for nd != nil {
		i := 0
		for i < nd.n && reqKey(nd.items[i]).less(k) {
			i++
		}
		if i < nd.n {
			best = nd.items[i]
		}
		if nd.leaf {
			break
		}
		nd = nd.children[i]
	}
	return best
}

// seekLT returns the largest item with key < k, nil if none.
func (t *reqTree) seekLT(k treeKey) *request {
	var best *request
	nd := t.root
	for nd != nil {
		i := 0
		for i < nd.n && reqKey(nd.items[i]).less(k) {
			i++
		}
		if i > 0 {
			best = nd.items[i-1]
		}
		if nd.leaf {
			break
		}
		nd = nd.children[i]
	}
	return best
}

// ascendGE visits items with key >= k in ascending order until fn
// returns false.
func (t *reqTree) ascendGE(k treeKey, fn func(*request) bool) {
	ascendFrom(t.root, k, fn)
}

func ascendFrom(nd *treeNode, k treeKey, fn func(*request) bool) bool {
	if nd == nil {
		return true
	}
	i := 0
	for i < nd.n && reqKey(nd.items[i]).less(k) {
		i++
	}
	for ; i < nd.n; i++ {
		if !nd.leaf && !ascendFrom(nd.children[i], k, fn) {
			return false
		}
		if !fn(nd.items[i]) {
			return false
		}
	}
	if !nd.leaf {
		return ascendFrom(nd.children[nd.n], k, fn)
	}
	return true
}

// descendLT visits items with key < k in descending order until fn
// returns false.
func (t *reqTree) descendLT(k treeKey, fn func(*request) bool) {
	descendFrom(t.root, k, fn)
}

func descendFrom(nd *treeNode, k treeKey, fn func(*request) bool) bool {
	if nd == nil {
		return true
	}
	i := nd.n
	for i > 0 && !reqKey(nd.items[i-1]).less(k) {
		i--
	}
	for ; i > 0; i-- {
		if !nd.leaf && !descendFrom(nd.children[i], k, fn) {
			return false
		}
		if !fn(nd.items[i-1]) {
			return false
		}
	}
	if !nd.leaf {
		return descendFrom(nd.children[0], k, fn)
	}
	return true
}
