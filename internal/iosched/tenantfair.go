// Tenant-weighted fair queueing: the multi-tenant sub-layer of the QoS
// scheduler.
//
// Class rank decides which *band* of traffic owns the device next (log
// before write buffer before caching priorities); weighted fair queueing
// decides which *tenant inside the band* is granted. Each scheduler runs
// start-time fair queueing (SFQ) over granted device blocks: a
// foreground request arriving for tenant t is tagged
//
//	start  = max(vclock, lastFinish[t])
//	finish = start + blocks/weight[t]
//
// and within a class band the request with the lowest finish tag wins
// (ties fall through to the elevator pass). The scheduler's virtual
// clock advances to the start tag of each granted request, so an idle
// tenant re-enters at the current virtual time instead of being repaid
// for time it did not use. Over any interval in which a set of tenants
// stays backlogged, each receives device blocks in proportion to its
// weight; the aging bound is checked before the WFQ order applies, so
// even a weight-1 tenant under a weight-100 flood is granted within
// AgingBound.
//
// Fair sharing activates only when at least one tenant weight is
// configured (Config.TenantWeights or Group.SetTenantWeight). Without
// weights every tag is zero and dispatch degenerates to the class-only
// scheduler, which doubles as the experiment baseline. Background work
// is never tagged: it already sits in a band below all foreground, and
// charging a tenant's destages against its virtual time would bill its
// foreground traffic twice for the same blocks.
package iosched

import (
	"time"

	"hstoragedb/internal/dss"
)

// TenantStats are cumulative per-tenant counters for one scheduler (one
// device). Granted-block shares across tenants are the fairness metric
// the tenants experiment reports against configured weights.
type TenantStats struct {
	// Submitted counts foreground submissions attributed to the tenant.
	Submitted int64
	// Blocks counts foreground device blocks granted to the tenant,
	// including readahead blocks its scan grants were extended by.
	Blocks int64
	// BackgroundBlocks counts background blocks (destages, asynchronous
	// fills) attributed to the tenant.
	BackgroundBlocks int64
	// MaxWait is the longest scheduler-imposed queue delay a granted
	// request of this tenant observed: the device's busy horizon at
	// grant time minus the later of the request's arrival and the
	// horizon at enqueue (the backlog already scheduled ahead of a
	// late-arriving stream is queueing the scheduler cannot undo, so it
	// is not counted). The aging bound caps this delay.
	MaxWait time.Duration
}

// tenantAcct is one tenant's fair-queueing state on one scheduler: the
// finish tag of its most recent foreground block plus its counters.
type tenantAcct struct {
	lastFinish float64
	stats      TenantStats
}

// SetTenantWeight configures tenant id's fair-share weight across every
// scheduler of the group. Weights are relative: a weight-4 tenant is
// entitled to four times the device blocks of a weight-1 tenant while
// both are backlogged. A weight w <= 0 removes the tenant (it falls
// back to the implicit weight 1); removing the last configured tenant
// turns fair sharing off entirely. The hybrid priority cache's
// capacity shares snapshot Config.TenantWeights at construction and do
// not follow later SetTenantWeight calls.
//
// The weight table is copy-on-write: hot paths snapshot it with one
// atomic load, so a weight change applies to submissions that start
// after it, never mid-grant.
func (g *Group) SetTenantWeight(id dss.TenantID, w float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	old := g.weights()
	if w <= 0 {
		if _, ok := old[id]; !ok {
			return
		}
	}
	nw := make(map[dss.TenantID]float64, len(old)+1)
	for k, v := range old {
		nw[k] = v
	}
	if w <= 0 {
		delete(nw, id)
	} else {
		nw[id] = w
	}
	g.tenantW.Store(&nw)
}

// weights returns the current tenant weight table (shared; do not
// mutate). Nil or empty means fair sharing is off.
func (g *Group) weights() map[dss.TenantID]float64 {
	if p := g.tenantW.Load(); p != nil {
		return *p
	}
	return nil
}

// weightOf returns id's weight in table wm with the implicit default
// of 1.
func weightOf(wm map[dss.TenantID]float64, id dss.TenantID) float64 {
	if w, ok := wm[id]; ok {
		return w
	}
	return 1
}

// TenantWeight reports tenant id's configured weight; tenants without a
// configured weight have the implicit weight 1.
func (g *Group) TenantWeight(id dss.TenantID) float64 {
	return weightOf(g.weights(), id)
}

// TenantShare reports tenant id's fraction of the total configured
// weight — its fair share of a saturated device and of tenant-governed
// cache capacity. It returns 0 when fair sharing is off or the tenant
// has no configured weight.
func (g *Group) TenantShare(id dss.TenantID) float64 {
	wm := g.weights()
	w, ok := wm[id]
	if !ok {
		return 0
	}
	var sum float64
	for _, v := range wm {
		sum += v
	}
	if sum <= 0 {
		return 0
	}
	return w / sum
}

// TenantWeights returns a copy of the configured tenant weights. An
// empty map means fair sharing is off (the class-only scheduler).
func (g *Group) TenantWeights() map[dss.TenantID]float64 {
	wm := g.weights()
	out := make(map[dss.TenantID]float64, len(wm))
	for id, w := range wm {
		out[id] = w
	}
	return out
}

// TenantStats returns a snapshot of the per-tenant counters of this
// scheduler. Only tenants that were explicitly attributed (non-zero
// tenant ID) or active while fair sharing was on appear.
func (s *Scheduler) TenantStats() map[dss.TenantID]TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[dss.TenantID]TenantStats, len(s.tenants))
	for id, a := range s.tenants {
		out[id] = a.stats
	}
	return out
}

// trackTenant reports whether per-tenant accounting applies to tenant
// t: always under fair sharing, and for explicitly attributed tenants
// even without weights (the class-only baseline still reports
// per-tenant shares).
func trackTenant(t dss.TenantID, fair bool) bool {
	return t != dss.DefaultTenant || fair
}

// acctLocked returns (allocating on first use) tenant t's accounting
// state on this scheduler. Caller holds s.mu.
func (s *Scheduler) acctLocked(t dss.TenantID) *tenantAcct {
	a := s.tenants[t]
	if a == nil {
		if s.tenants == nil {
			s.tenants = make(map[dss.TenantID]*tenantAcct)
		}
		a = &tenantAcct{}
		s.tenants[t] = a
	}
	return a
}
