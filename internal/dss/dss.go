// Package dss implements the Differentiated Storage Services protocol
// surface used by hStorage-DB (Mesnier et al., SOSP 2011; Section 5 of the
// hStorage-DB paper).
//
// Under DSS an I/O request carries, in addition to its physical
// information (LBA, length, direction), a classification — here a caching
// priority — that the storage system may use to pick a service mechanism.
// The protocol is backward compatible: a legacy storage system simply
// ignores the class.
package dss

import (
	"fmt"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/simclock"
)

// Class is the QoS policy attached to a request. For the hybrid storage
// system of this paper, classes are caching priorities: smaller numbers
// are higher priorities (a better chance to be cached). Two values are
// special: ClassNone marks an unclassified (legacy) request, and
// ClassWriteBuffer marks update requests that may claim write-buffer
// space over any other priority (Rule 4).
type Class int

const (
	// ClassNone marks a request without classification. A
	// classification-aware storage system treats it like the lowest
	// caching priority that still permits monitoring-based policies; the
	// LRU baseline ignores classes entirely.
	ClassNone Class = 0

	// ClassWriteBuffer is the special "write buffer" priority of Rule 4:
	// an update request wins cache space over requests of any other
	// priority, within the write-buffer budget b.
	ClassWriteBuffer Class = -1

	// ClassLog is the pinned highest-priority class carried by write-ahead
	// log traffic (the OLTP extension of Section 8). Log writes are the
	// most latency-critical requests a DBMS issues: a transaction cannot
	// commit before its log records are durable. A classification-aware
	// storage system serves them write-through from the cache device and
	// never evicts them; log blocks leave the cache only through TRIM when
	// a checkpoint truncates the log.
	ClassLog Class = -2

	// ClassCompaction is the band carried by storage-backend maintenance
	// I/O: LSM memtable flushes and compaction sweeps. It is the
	// archetypal "semantically background" traffic — bulk reorganization
	// no requester waits on — so it is always non-caching (reorganized
	// blocks would only pollute the cache) and the device scheduler
	// ranks it below the write buffer: ahead of the 1..N caching
	// priorities in the ladder (a starved compaction eventually stalls
	// foreground writes), but behind the latency-critical log and
	// write-buffer classes, and throttled by the background token budget
	// whenever foreground traffic is waiting.
	ClassCompaction Class = -3
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassWriteBuffer:
		return "write-buffer"
	case ClassLog:
		return "log"
	case ClassCompaction:
		return "compaction"
	default:
		return fmt.Sprintf("prio%d", int(c))
	}
}

// PolicySpace is the 3-tuple {N, t, b} of Section 3.2 plus the random
// priority range [RandLow, RandHigh] of Rule 2.
//
//   - N is the total number of priorities (1..N, smaller is higher).
//   - T is the non-caching threshold: blocks accessed with priority >= T
//     are never admitted to cache. The paper fixes t = N-1, giving two
//     non-caching priorities: N-1 ("non-caching and non-eviction") and N
//     ("non-caching and eviction").
//   - WriteBufferFrac is b: the fraction of cache capacity the write
//     buffer may occupy before it is flushed to the HDD.
type PolicySpace struct {
	N               int
	T               int
	WriteBufferFrac float64
	RandLow         int // n1: highest (numerically lowest) priority for random requests
	RandHigh        int // n2: lowest (numerically highest) priority for random requests
}

// DefaultPolicySpace returns the configuration used throughout the
// paper's evaluation: N = 8 priorities, t = N-1, b = 10%, and random
// requests mapped onto [2, N-2].
func DefaultPolicySpace() PolicySpace {
	return PolicySpace{N: 8, T: 7, WriteBufferFrac: 0.10, RandLow: 2, RandHigh: 6}
}

// Validate reports whether the space is self-consistent.
func (p PolicySpace) Validate() error {
	switch {
	case p.N <= 2:
		return fmt.Errorf("dss: N must exceed 2, got %d", p.N)
	case p.T < 0 || p.T > p.N:
		return fmt.Errorf("dss: threshold t=%d outside [0,%d]", p.T, p.N)
	case p.WriteBufferFrac < 0 || p.WriteBufferFrac > 1:
		return fmt.Errorf("dss: write buffer fraction %v outside [0,1]", p.WriteBufferFrac)
	case p.RandLow < 1 || p.RandHigh < p.RandLow || p.RandHigh >= p.T:
		return fmt.Errorf("dss: random range [%d,%d] invalid for t=%d", p.RandLow, p.RandHigh, p.T)
	}
	return nil
}

// Temporary returns the priority for temporary-data requests (Rule 3):
// the highest priority, 1.
func (p PolicySpace) Temporary() Class { return 1 }

// Sequential returns the "non-caching and non-eviction" priority assigned
// to sequential requests (Rule 1): N-1.
func (p PolicySpace) Sequential() Class { return Class(p.N - 1) }

// Eviction returns the "non-caching and eviction" priority (Rule 3's TRIM
// workaround): N.
func (p PolicySpace) Eviction() Class { return Class(p.N) }

// NonCaching reports whether blocks accessed with class c are never
// admitted to cache: classes at or beyond the non-caching threshold t,
// plus the compaction class — bulk reorganization traffic whose blocks
// would only displace useful foreground data.
func (p PolicySpace) NonCaching(c Class) bool {
	if c == ClassCompaction {
		return true
	}
	return c != ClassWriteBuffer && c != ClassLog && c != ClassNone && int(c) >= p.T
}

// TenantID identifies the database tenant (user, service, or billing
// entity) on whose behalf a request is issued. Like the class, it is
// semantic information a conventional block interface strips: carrying
// it down the stack lets the storage system apportion device time and
// cache capacity across tenants (weighted fair shares) instead of
// collapsing every tenant of a class into one FIFO. The zero value is
// DefaultTenant.
type TenantID int

// DefaultTenant is the tenant of unattributed traffic: requests from
// sessions that never bound a tenant, and shared infrastructure work
// (WAL segments, checkpoints) that no single tenant should be billed
// for.
const DefaultTenant TenantID = 0

// Kind distinguishes data requests from TRIM commands.
type Kind int

const (
	// Data is an ordinary read or write.
	Data Kind = iota
	// Trim informs the storage system that an LBA range has become
	// useless (e.g. a deleted temporary file). It carries no payload.
	Trim
)

// Request is a classified block I/O request: the physical information a
// storage manager would traditionally emit, plus the embedded QoS policy
// and two scheduling hints the device I/O scheduler consumes.
type Request struct {
	// Kind distinguishes data traffic from TRIM commands.
	Kind Kind
	// Op is the transfer direction (ignored for TRIM).
	Op device.Op
	// LBA and Blocks delimit the accessed range.
	LBA    int64
	Blocks int
	// Class is the QoS policy embedded in the request.
	Class Class

	// Stream identifies the submitting request stream by its session
	// clock, so the device scheduler can dispatch a registered closed
	// population in priority order (see iosched.Group.Register). Nil
	// marks an anonymous submission.
	Stream *simclock.Clock
	// Background marks work no requester waits on (dirty-page
	// write-back, asynchronous flushes): the device scheduler serves it
	// below every foreground class.
	Background bool

	// Tenant attributes the request to a tenant for weighted fair
	// sharing. The device scheduler orders same-class requests of
	// different tenants by virtual finish time (see iosched), and the
	// priority cache charges the block against the tenant's capacity
	// share. Zero (DefaultTenant) marks unattributed traffic.
	Tenant TenantID
}

// String implements fmt.Stringer.
func (r Request) String() string {
	if r.Kind == Trim {
		return fmt.Sprintf("trim[%d+%d %s]", r.LBA, r.Blocks, r.Class)
	}
	return fmt.Sprintf("%s[%d+%d %s]", r.Op, r.LBA, r.Blocks, r.Class)
}

// Storage is a block storage system that accepts classified requests. A
// request arrives at virtual time `at`; Submit returns the request's
// completion time. Implementations must be safe for concurrent use.
type Storage interface {
	Submit(at time.Duration, req Request) time.Duration
}
