package dss

import (
	"testing"

	"hstoragedb/internal/device"
)

func TestDefaultPolicySpace(t *testing.T) {
	p := DefaultPolicySpace()
	if err := p.Validate(); err != nil {
		t.Fatalf("default space invalid: %v", err)
	}
	// The paper's configuration: N priorities with t = N-1 (two
	// non-caching priorities) and b = 10%.
	if p.T != p.N-1 {
		t.Fatalf("t = %d, want N-1 = %d", p.T, p.N-1)
	}
	if p.WriteBufferFrac != 0.10 {
		t.Fatalf("b = %v, want 0.10", p.WriteBufferFrac)
	}
}

func TestSpecialPriorities(t *testing.T) {
	p := DefaultPolicySpace()
	if p.Temporary() != 1 {
		t.Fatalf("temp priority %v, want 1 (highest)", p.Temporary())
	}
	if int(p.Sequential()) != p.N-1 {
		t.Fatalf("sequential priority %v, want N-1", p.Sequential())
	}
	if int(p.Eviction()) != p.N {
		t.Fatalf("eviction priority %v, want N", p.Eviction())
	}
}

func TestNonCaching(t *testing.T) {
	p := DefaultPolicySpace()
	if p.NonCaching(p.Temporary()) {
		t.Error("temp priority must be cacheable")
	}
	if p.NonCaching(Class(p.RandLow)) || p.NonCaching(Class(p.RandHigh)) {
		t.Error("random priorities must be cacheable")
	}
	if !p.NonCaching(p.Sequential()) {
		t.Error("sequential priority must be non-caching")
	}
	if !p.NonCaching(p.Eviction()) {
		t.Error("eviction priority must be non-caching")
	}
	if p.NonCaching(ClassWriteBuffer) {
		t.Error("write buffer wins cache space; it is not non-caching")
	}
	if p.NonCaching(ClassNone) {
		t.Error("ClassNone is not subject to the threshold")
	}
	if p.NonCaching(ClassLog) {
		t.Error("log blocks are pinned in cache; the class is not non-caching")
	}
	if !p.NonCaching(ClassCompaction) {
		t.Error("compaction traffic must never be admitted to cache")
	}
}

// TestCompactionClassMatrix pins ClassCompaction's position in the
// policy space across configurations: always non-caching regardless of
// the threshold t, numerically below every special class (so it cannot
// be confused with a caching priority), and distinct from the 1..N
// priority ladder.
func TestCompactionClassMatrix(t *testing.T) {
	spaces := []PolicySpace{
		DefaultPolicySpace(),
		{N: 4, T: 3, WriteBufferFrac: 0.05, RandLow: 1, RandHigh: 2},
		{N: 16, T: 15, WriteBufferFrac: 0.20, RandLow: 2, RandHigh: 10},
	}
	for i, p := range spaces {
		if err := p.Validate(); err != nil {
			t.Fatalf("space %d invalid: %v", i, err)
		}
		if !p.NonCaching(ClassCompaction) {
			t.Errorf("space %d: compaction caching", i)
		}
		// Compaction sits outside the priority ladder on the special
		// (negative) side; it must never collide with a real priority.
		if int(ClassCompaction) >= 1 {
			t.Error("ClassCompaction inside the priority ladder")
		}
		for _, special := range []Class{ClassNone, ClassWriteBuffer, ClassLog} {
			if ClassCompaction == special {
				t.Errorf("ClassCompaction collides with %s", special)
			}
		}
	}
}

func TestValidateRejectsBadSpaces(t *testing.T) {
	cases := []PolicySpace{
		{N: 1, T: 0, RandLow: 1, RandHigh: 1},                       // too few priorities
		{N: 8, T: 9, RandLow: 2, RandHigh: 6},                       // t out of range
		{N: 8, T: 7, WriteBufferFrac: 1.5, RandLow: 2, RandHigh: 6}, // b out of range
		{N: 8, T: 7, RandLow: 6, RandHigh: 2},                       // inverted range
		{N: 8, T: 7, RandLow: 2, RandHigh: 7},                       // range crosses threshold
		{N: 8, T: 7, RandLow: 0, RandHigh: 6},                       // below 1
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid space %+v accepted", i, p)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassNone.String() != "none" {
		t.Errorf("ClassNone = %q", ClassNone.String())
	}
	if ClassWriteBuffer.String() != "write-buffer" {
		t.Errorf("ClassWriteBuffer = %q", ClassWriteBuffer.String())
	}
	if ClassLog.String() != "log" {
		t.Errorf("ClassLog = %q", ClassLog.String())
	}
	if ClassCompaction.String() != "compaction" {
		t.Errorf("ClassCompaction = %q", ClassCompaction.String())
	}
	if Class(3).String() != "prio3" {
		t.Errorf("Class(3) = %q", Class(3).String())
	}
}

func TestRequestString(t *testing.T) {
	r := Request{Op: device.Read, LBA: 10, Blocks: 2, Class: Class(3)}
	if r.String() != "read[10+2 prio3]" {
		t.Errorf("request renders %q", r.String())
	}
	tr := Request{Kind: Trim, LBA: 5, Blocks: 8, Class: Class(8)}
	if tr.String() != "trim[5+8 prio8]" {
		t.Errorf("trim renders %q", tr.String())
	}
}
