package bufferpool

import (
	"testing"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

type harness struct {
	store *pagestore.Store
	sys   hybrid.System
	mgr   *storagemgr.Manager
	clk   simclock.Clock
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	store := pagestore.NewStore()
	if err := store.Create(1); err != nil {
		t.Fatal(err)
	}
	if err := store.Create(2); err != nil {
		t.Fatal(err)
	}
	sys, err := hybrid.New(hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 512})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		store: store,
		sys:   sys,
		mgr:   storagemgr.New(store, sys, policy.NewAssignmentTable(dss.DefaultPolicySpace())),
	}
}

func tag(obj pagestore.ObjectID) policy.Tag {
	return policy.Tag{Object: obj, Content: policy.Table, Pattern: policy.Sequential}
}

func TestGetMissThenHit(t *testing.T) {
	h := newHarness(t)
	p := New(h.mgr, 4)
	if _, err := p.Get(&h.clk, tag(1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(&h.clk, tag(1), 0); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats %+v", s)
	}
	// A buffer pool hit produces no storage traffic.
	if reads := h.sys.Stats().Class(dss.DefaultPolicySpace().Sequential()).Requests; reads != 1 {
		t.Fatalf("storage saw %d reads, want 1", reads)
	}
}

func TestPutMakesDirtyAndWriteBack(t *testing.T) {
	h := newHarness(t)
	p := New(h.mgr, 2)
	data := make([]byte, 16)
	data[0] = 42
	if err := p.Put(&h.clk, tag(1), 0, data); err != nil {
		t.Fatal(err)
	}
	// Fill past capacity to force the dirty page out.
	if _, err := p.Get(&h.clk, tag(1), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(&h.clk, tag(1), 2); err != nil {
		t.Fatal(err)
	}
	if p.Stats().WriteBack != 1 {
		t.Fatalf("writebacks %d", p.Stats().WriteBack)
	}
	// The written page round-trips through the page store.
	got, _, err := h.store.ReadPage(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatal("write-back lost data")
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	h := newHarness(t)
	p := New(h.mgr, 2)
	_, _ = p.Get(&h.clk, tag(1), 0)
	_, _ = p.Get(&h.clk, tag(1), 1)
	_, _ = p.Get(&h.clk, tag(1), 0) // touch page 0
	_, _ = p.Get(&h.clk, tag(1), 2) // evicts page 1
	p.ResetStats()
	_, _ = p.Get(&h.clk, tag(1), 0)
	if p.Stats().Hits != 1 {
		t.Fatal("page 0 was evicted although recently used")
	}
	_, _ = p.Get(&h.clk, tag(1), 1)
	if p.Stats().Misses != 1 {
		t.Fatal("page 1 should have been the LRU victim")
	}
}

func TestFlushAllCleans(t *testing.T) {
	h := newHarness(t)
	p := New(h.mgr, 8)
	for i := int64(0); i < 5; i++ {
		if err := p.Put(&h.clk, tag(1), i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.FlushAll(&h.clk); err != nil {
		t.Fatal(err)
	}
	if h.store.Pages(1) != 5 {
		t.Fatalf("store has %d pages, want 5", h.store.Pages(1))
	}
	// A second flush writes nothing new.
	before := p.Stats().WriteBack
	if err := p.FlushAll(&h.clk); err != nil {
		t.Fatal(err)
	}
	if p.Stats().WriteBack != before {
		t.Fatal("clean pages rewritten")
	}
}

func TestInvalidateDropsWithoutWriteBack(t *testing.T) {
	h := newHarness(t)
	p := New(h.mgr, 8)
	_ = p.Put(&h.clk, policy.Tag{Object: 2, Content: policy.Temp}, 0, []byte{1})
	p.Invalidate(2)
	if p.Len() != 0 {
		t.Fatal("invalidated page still resident")
	}
	if err := p.FlushAll(&h.clk); err != nil {
		t.Fatal(err)
	}
	if h.store.Pages(2) != 0 {
		t.Fatal("dead temp page written back")
	}
}

func TestWriteBackClassification(t *testing.T) {
	h := newHarness(t)
	p := New(h.mgr, 8)
	// Temp content write-back must classify as temporary (priority 1);
	// table content as update (write buffer).
	_ = p.Put(&h.clk, policy.Tag{Object: 2, Content: policy.Temp}, 0, []byte{1})
	_ = p.Put(&h.clk, tag(1), 0, []byte{2})
	if err := p.FlushAll(&h.clk); err != nil {
		t.Fatal(err)
	}
	snap := h.sys.Stats()
	if snap.Class(dss.DefaultPolicySpace().Temporary()).WriteBlocks != 1 {
		t.Fatalf("temp write-back not classified: %+v", snap.PerClass)
	}
	if snap.Class(dss.ClassWriteBuffer).WriteBlocks != 1 {
		t.Fatalf("update write-back not classified: %+v", snap.PerClass)
	}
}

func TestDropAll(t *testing.T) {
	h := newHarness(t)
	p := New(h.mgr, 8)
	_, _ = p.Get(&h.clk, tag(1), 0)
	p.DropAll()
	if p.Len() != 0 {
		t.Fatal("DropAll left pages")
	}
	if p.Capacity() != 8 {
		t.Fatal("capacity changed")
	}
}
