// Package bufferpool implements the DBMS buffer pool of the hStorage-DB
// prototype. As in the paper's augmented PostgreSQL, every fetch carries
// the semantic information collected from the query plan (a policy.Tag),
// which the pool hands through to the storage manager on misses and on
// dirty write-back, instead of stripping it away.
//
// The pool is a write-back LRU cache of pages shared by all concurrently
// running queries. Dirty-page write-back goes through the storage
// manager's background path, which tags the request with its class and
// marks it Background, so the device I/O scheduler serves it below every
// foreground class instead of letting a flush delay a commit.
package bufferpool

import (
	"errors"
	"sync"

	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// key identifies one buffered page.
type key struct {
	obj  pagestore.ObjectID
	page int64
}

// entry is one buffer pool frame.
type entry struct {
	key     key
	data    []byte
	dirty   bool
	content policy.ContentType // needed to classify the write-back

	// pins counts active transactions holding the frame under the
	// no-steal policy: a pinned frame is never evicted or flushed, so an
	// uncommitted page can never reach the storage system before its log
	// records are durable.
	pins int

	prev, next *entry
}

// CaptureFunc observes page installs while a transaction is active. It is
// called by Put under the pool mutex with the frame's previous content
// (nil if the page had no frame) and dirty flag, plus the newly installed
// data; the callback must not call back into the pool. Returning true
// pins the frame until Unpin or Restore.
type CaptureFunc func(tag policy.Tag, page int64, pre []byte, preDirty bool, post []byte) (pin bool)

// Stats are cumulative buffer pool counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	WriteBack int64
}

// Pool is the buffer pool. All methods are safe for concurrent use.
type Pool struct {
	mgr *storagemgr.Manager
	cap int

	mu      sync.Mutex
	table   map[key]*entry
	head    entry // sentinel of the LRU list, head.next = MRU
	stats   Stats
	capture CaptureFunc
}

// New creates a pool with capacity `frames` pages over the given storage
// manager.
func New(mgr *storagemgr.Manager, frames int) *Pool {
	if frames < 1 {
		frames = 1
	}
	p := &Pool{mgr: mgr, cap: frames, table: make(map[key]*entry, frames)}
	p.head.prev = &p.head
	p.head.next = &p.head
	return p
}

// Manager exposes the storage manager beneath the pool.
func (p *Pool) Manager() *storagemgr.Manager { return p.mgr }

func (p *Pool) pushFront(e *entry) {
	e.prev = &p.head
	e.next = p.head.next
	p.head.next.prev = e
	p.head.next = e
}

func (p *Pool) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (p *Pool) touch(e *entry) {
	p.unlink(e)
	p.pushFront(e)
}

// evictOne writes back the least recently used unpinned page if dirty and
// frees its frame. It reports whether a frame was freed: pinned frames
// (dirtied by an uncommitted transaction) are skipped, and when every
// frame is pinned the pool temporarily exceeds its capacity rather than
// steal an uncommitted page. Caller holds p.mu; the mutex is released
// around the I/O.
func (p *Pool) evictOne(clk *simclock.Clock) (bool, error) {
	lru := p.head.prev
	for lru != &p.head && lru.pins > 0 {
		lru = lru.prev
	}
	if lru == &p.head {
		return false, nil
	}
	p.unlink(lru)
	delete(p.table, lru.key)
	p.stats.Evictions++
	if !lru.dirty {
		return true, nil
	}
	p.stats.WriteBack++
	tag := policy.Tag{Object: lru.key.obj, Content: lru.content}
	data := lru.data
	pageNo := lru.key.page
	p.mu.Unlock()
	// Dirty pages are flushed by the background writer: the flush
	// occupies the storage system but the query does not wait for it. A
	// write-back can race the deletion of its object (another stream just
	// dropped the temp file this frame belongs to); the data is dead, so
	// the write is simply discarded.
	err := p.mgr.WritePageBackground(clk, tag, pageNo, data)
	if errors.Is(err, pagestore.ErrUnknownObject) {
		err = nil
	}
	p.mu.Lock()
	return true, err
}

// makeRoom evicts until a frame is free or only pinned frames remain.
// Caller holds p.mu.
func (p *Pool) makeRoom(clk *simclock.Clock) error {
	for len(p.table) >= p.cap {
		ok, err := p.evictOne(clk)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return nil
}

// Get returns the content of (tag.Object, page), fetching it through the
// storage manager on a miss. The returned slice is the pool's frame:
// callers must not retain it across other pool calls, and must use Put to
// modify pages.
func (p *Pool) Get(clk *simclock.Clock, tag policy.Tag, page int64) ([]byte, error) {
	k := key{obj: tag.Object, page: page}
	p.mu.Lock()
	if e, ok := p.table[k]; ok {
		p.touch(e)
		p.stats.Hits++
		data := e.data
		p.mu.Unlock()
		return data, nil
	}
	p.stats.Misses++
	if err := p.makeRoom(clk); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	p.mu.Unlock()

	data, err := p.mgr.ReadPage(clk, tag, page)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	if e, ok := p.table[k]; ok {
		// A concurrent query loaded the page while we were reading.
		p.touch(e)
		data = e.data
		p.mu.Unlock()
		return data, nil
	}
	e := &entry{key: k, data: data, content: tag.Content}
	p.table[k] = e
	p.pushFront(e)
	p.mu.Unlock()
	return data, nil
}

// Put stores new content for (tag.Object, page) and marks the frame
// dirty. The data is installed by reference; the pool owns it afterwards.
func (p *Pool) Put(clk *simclock.Clock, tag policy.Tag, page int64, data []byte) error {
	k := key{obj: tag.Object, page: page}
	p.mu.Lock()
	if e, ok := p.table[k]; ok {
		if p.capture != nil && p.capture(tag, page, e.data, e.dirty, data) {
			e.pins++
		}
		e.data = data
		e.dirty = true
		e.content = tag.Content
		p.touch(e)
		p.mu.Unlock()
		return nil
	}
	if err := p.makeRoom(clk); err != nil {
		p.mu.Unlock()
		return err
	}
	e := &entry{key: k, data: data, dirty: true, content: tag.Content}
	if p.capture != nil && p.capture(tag, page, nil, false, data) {
		e.pins++
	}
	p.table[k] = e
	p.pushFront(e)
	p.mu.Unlock()
	return nil
}

// FlushAll writes back every dirty unpinned frame (end-of-stream
// checkpoint). Pinned frames belong to uncommitted transactions and stay
// in memory: their durability is the WAL's job.
func (p *Pool) FlushAll(clk *simclock.Clock) error {
	p.mu.Lock()
	dirty := make([]*entry, 0)
	for _, e := range p.table {
		if e.dirty && e.pins == 0 {
			dirty = append(dirty, e)
		}
	}
	p.mu.Unlock()
	for _, e := range dirty {
		tag := policy.Tag{Object: e.key.obj, Content: e.content}
		if err := p.mgr.WritePage(clk, tag, e.key.page, e.data); err != nil {
			if errors.Is(err, pagestore.ErrUnknownObject) {
				continue // the object was dropped while we flushed
			}
			return err
		}
		p.mu.Lock()
		e.dirty = false
		p.stats.WriteBack++
		p.mu.Unlock()
	}
	return nil
}

// Invalidate drops every frame of an object without write-back. Used when
// a temporary file is deleted: its dirty pages are useless by definition.
func (p *Pool) Invalidate(obj pagestore.ObjectID) {
	p.mu.Lock()
	for k, e := range p.table {
		if k.obj == obj {
			p.unlink(e)
			delete(p.table, k)
		}
	}
	p.mu.Unlock()
}

// SetCapture installs (or, with nil, removes) the transaction capture
// hook. With mutating transactions serialized by the transaction manager,
// at most one capture is active at a time.
func (p *Pool) SetCapture(f CaptureFunc) {
	p.mu.Lock()
	p.capture = f
	p.mu.Unlock()
}

// Unpin releases one transaction pin on a frame (commit path: the page
// stays dirty and is flushed lazily now that its log records are
// durable). Unknown pages are ignored.
func (p *Pool) Unpin(obj pagestore.ObjectID, page int64) {
	p.mu.Lock()
	if e, ok := p.table[key{obj: obj, page: page}]; ok && e.pins > 0 {
		e.pins--
	}
	p.mu.Unlock()
}

// Restore rewinds a frame to its pre-transaction content and releases the
// pin (abort path). pre == nil means the page had no frame before the
// transaction touched it: the frame is dropped without write-back, so the
// storage system never sees the aborted content.
func (p *Pool) Restore(obj pagestore.ObjectID, page int64, pre []byte, preDirty bool) {
	p.mu.Lock()
	e, ok := p.table[key{obj: obj, page: page}]
	if !ok {
		p.mu.Unlock()
		return
	}
	if e.pins > 0 {
		e.pins--
	}
	if pre == nil {
		p.unlink(e)
		delete(p.table, e.key)
	} else {
		e.data = pre
		e.dirty = preDirty
	}
	p.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats clears the counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	p.stats = Stats{}
	p.mu.Unlock()
}

// Len reports the number of resident pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.table)
}

// Capacity reports the pool size in frames.
func (p *Pool) Capacity() int { return p.cap }

// DropAll empties the pool without write-back. Tests use it to force cold
// caches between runs.
func (p *Pool) DropAll() {
	p.mu.Lock()
	p.table = make(map[key]*entry, p.cap)
	p.head.prev = &p.head
	p.head.next = &p.head
	p.mu.Unlock()
}
