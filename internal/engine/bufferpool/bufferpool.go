// Package bufferpool implements the DBMS buffer pool of the hStorage-DB
// prototype. As in the paper's augmented PostgreSQL, every fetch carries
// the semantic information collected from the query plan (a policy.Tag),
// which the pool hands through to the storage manager on misses and on
// dirty write-back, instead of stripping it away.
//
// The pool is a write-back LRU cache of pages shared by all concurrently
// running queries. Dirty-page write-back goes through the storage
// manager's background path, which tags the request with its class and
// marks it Background, so the device I/O scheduler serves it below every
// foreground class instead of letting a flush delay a commit.
//
// # Transactions
//
// Mutating transactions register per-stream hooks with BindTxn, keyed by
// the session clock that accompanies every Get/Put. Each bound
// transaction supplies:
//
//   - an Acquire hook, called before the frame operation (no pool latch
//     held, so it may block): the transaction layer takes its page locks
//     here, and a lock-manager deadlock surfaces as an error from
//     Get/Put;
//   - a Capture hook, called under the pool latch for every page the
//     transaction installs: it records pre-image and post-image and, by
//     returning true, pins the frame on behalf of that transaction.
//
// Pins are owned: each frame tracks which transaction holds how many
// pins, so concurrent mutators coexist under the no-steal contract —
// a frame with any pins is never evicted or flushed, and only the owner
// can release its pins (Unpin on commit, Restore on abort).
//
// Frames being written back are latched (entry.flushing): they stay
// visible in the table during the I/O so concurrent readers never fetch
// a stale copy from the storage system, and a Put that re-dirties the
// frame mid-flush is detected by a version check and the frame is kept.
package bufferpool

import (
	"errors"
	"fmt"
	"sync"

	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/obs"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// key identifies one buffered page.
type key struct {
	obj  pagestore.ObjectID
	page int64
}

// entry is one buffer pool frame.
type entry struct {
	key     key
	data    []byte
	dirty   bool
	content policy.ContentType // needed to classify the write-back

	// version counts content installs, so a write-back that ran without
	// the pool latch can tell whether the frame was re-dirtied under it.
	version int64

	// flushing latches the frame while its content is being written
	// back: it stays visible to readers but is not a victim candidate.
	flushing bool

	// verLSN is the commit LSN the frame's content was committed at (0
	// when unknown: freshly loaded from disk, or pre-MVCC content).
	// uncommitted marks content installed by a still-running transaction;
	// such a frame is never served to snapshot readers — the owner's
	// pending chain version covers them.
	verLSN      int64
	uncommitted bool

	// pins counts active transactions holding the frame under the
	// no-steal policy: a pinned frame is never evicted or flushed, so an
	// uncommitted page can never reach the storage system before its log
	// records are durable. owners tracks the per-transaction pin counts
	// behind the sum.
	pins   int
	owners map[int64]int

	prev, next *entry
}

// CaptureFunc observes page installs while a transaction is active. It is
// called by Put under the pool mutex with the frame's previous content
// (nil if the page had no frame) and dirty flag, plus the newly installed
// data; the callback must not call back into the pool. Returning true
// pins the frame for the owning transaction until Unpin or Restore.
type CaptureFunc func(tag policy.Tag, page int64, pre []byte, preDirty bool, post []byte) (pin bool)

// AcquireFunc takes the transaction's page lock before a frame access;
// write selects exclusive mode. It is called without the pool mutex, may
// block, and its error (e.g. a lock-manager deadlock) aborts the access.
type AcquireFunc func(tag policy.Tag, page int64, write bool) error

// TxnHooks bind one active transaction to the pool: its identity, its
// lock acquisition, and its capture set.
type TxnHooks struct {
	// ID is the transaction identifier owning the pins.
	ID int64
	// Acquire, when non-nil, is invoked before every Get (read) and Put
	// (write) on the bound stream.
	Acquire AcquireFunc
	// Capture, when non-nil, observes every Put on the bound stream.
	Capture CaptureFunc
}

// Stats are cumulative buffer pool counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	WriteBack int64
}

// Pool is the buffer pool. All methods are safe for concurrent use.
type Pool struct {
	mgr *storagemgr.Manager
	cap int

	mu    sync.Mutex
	table map[key]*entry
	head  entry // sentinel of the LRU list, head.next = MRU
	stats Stats
	// nflushing counts frames latched mid-write-back. They stay visible
	// in the table (readers keep hitting the in-memory copy) but do not
	// count against capacity, so a concurrent stream's makeRoom does not
	// cascade extra evictions while a victim's I/O is in flight.
	nflushing int

	// versions holds the per-page version chains of the MVCC snapshot
	// store (mvcc.go); verBytes is the retained payload total. Guarded
	// by mu.
	versions map[key][]pageVersion
	verBytes int64

	txnMu sync.RWMutex
	txns  map[*simclock.Clock]*TxnHooks
	// snaps binds session streams to snapshot LSNs (read-only
	// transactions). Guarded by txnMu.
	snaps map[*simclock.Clock]int64

	// Registry instruments and tracer, nil (inert) until Use attaches a
	// set.
	tracer     *obs.Tracer
	mHit       *obs.Counter
	mMiss      *obs.Counter
	mEvict     *obs.Counter
	mWB        *obs.Counter
	mSnapReads *obs.Counter
	mVersions  *obs.Gauge
	mVerBytes  *obs.Gauge
	mSnaps     *obs.Gauge
}

// New creates a pool with capacity `frames` pages over the given storage
// manager.
func New(mgr *storagemgr.Manager, frames int) *Pool {
	if frames < 1 {
		frames = 1
	}
	p := &Pool{
		mgr:      mgr,
		cap:      frames,
		table:    make(map[key]*entry, frames),
		versions: make(map[key][]pageVersion),
		txns:     make(map[*simclock.Clock]*TxnHooks),
		snaps:    make(map[*simclock.Clock]int64),
	}
	p.head.prev = &p.head
	p.head.next = &p.head
	return p
}

// Manager exposes the storage manager beneath the pool.
func (p *Pool) Manager() *storagemgr.Manager { return p.mgr }

// Use attaches an observability set: the pool registers its counters
// (`bufferpool.hit`, `bufferpool.miss`, `bufferpool.evictions`,
// `bufferpool.writeback`, `bufferpool.snapshot.reads`), the version
// store gauges (`bufferpool.versions`, `bufferpool.version.bytes`,
// `bufferpool.snapshots`), and records a `bufferpool`/`miss.fill` span
// for every sampled miss fill. A nil set detaches.
func (p *Pool) Use(set *obs.Set) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tracer = set.Trace()
	reg := set.Registry()
	if reg == nil {
		p.mHit, p.mMiss, p.mEvict, p.mWB, p.mSnapReads = nil, nil, nil, nil, nil
		p.mVersions, p.mVerBytes, p.mSnaps = nil, nil, nil
		return
	}
	p.mHit = reg.Counter("bufferpool.hit")
	p.mMiss = reg.Counter("bufferpool.miss")
	p.mEvict = reg.Counter("bufferpool.evictions")
	p.mWB = reg.Counter("bufferpool.writeback")
	p.mSnapReads = reg.Counter("bufferpool.snapshot.reads")
	p.mVersions = reg.Gauge("bufferpool.versions")
	p.mVerBytes = reg.Gauge("bufferpool.version.bytes")
	p.mSnaps = reg.Gauge("bufferpool.snapshots")
}

// BindTxn associates transaction hooks with a session stream: every
// Get/Put carrying clk runs the hooks until UnbindTxn. One stream runs
// at most one transaction at a time; concurrent transactions live on
// distinct streams, each with its own capture set.
func (p *Pool) BindTxn(clk *simclock.Clock, h *TxnHooks) {
	p.txnMu.Lock()
	p.txns[clk] = h
	p.txnMu.Unlock()
}

// UnbindTxn removes the stream's transaction hooks (commit/abort path).
func (p *Pool) UnbindTxn(clk *simclock.Clock) {
	p.txnMu.Lock()
	delete(p.txns, clk)
	p.txnMu.Unlock()
}

// UnbindAll removes every transaction and snapshot binding (crash path).
func (p *Pool) UnbindAll() {
	p.txnMu.Lock()
	p.txns = make(map[*simclock.Clock]*TxnHooks)
	p.snaps = make(map[*simclock.Clock]int64)
	p.txnMu.Unlock()
	p.mSnaps.Set(0)
}

// txnFor returns the hooks bound to a stream, or nil.
func (p *Pool) txnFor(clk *simclock.Clock) *TxnHooks {
	p.txnMu.RLock()
	h := p.txns[clk]
	p.txnMu.RUnlock()
	return h
}

func (p *Pool) pushFront(e *entry) {
	e.prev = &p.head
	e.next = p.head.next
	p.head.next.prev = e
	p.head.next = e
}

func (p *Pool) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (p *Pool) touch(e *entry) {
	p.unlink(e)
	p.pushFront(e)
}

// pin adds one owned pin to the frame. Caller holds p.mu.
func (e *entry) pin(txn int64) {
	e.pins++
	if e.owners == nil {
		e.owners = make(map[int64]int, 1)
	}
	e.owners[txn]++
}

// unpin releases one pin owned by txn, reporting whether one was held.
// Caller holds p.mu.
func (e *entry) unpin(txn int64) bool {
	if e.owners[txn] <= 0 {
		return false
	}
	e.owners[txn]--
	if e.owners[txn] == 0 {
		delete(e.owners, txn)
	}
	e.pins--
	return true
}

// evictOne writes back the least recently used unpinned page if dirty and
// frees its frame. It reports whether it made progress: pinned frames
// (dirtied by an uncommitted transaction) and frames mid-flush are
// skipped, and when every frame is pinned the pool temporarily exceeds
// its capacity rather than steal an uncommitted page. The frame stays in
// the table, latched, while its content is written back (the mutex is
// released around the I/O), so concurrent readers keep hitting the
// in-memory copy instead of racing the write-back to the storage system;
// if the frame was re-dirtied or pinned under the latch it is kept.
// Caller holds p.mu.
func (p *Pool) evictOne(clk *simclock.Clock) (bool, error) {
	lru := p.head.prev
	for lru != &p.head && (lru.pins > 0 || lru.flushing) {
		lru = lru.prev
	}
	if lru == &p.head {
		return false, nil
	}
	if !lru.dirty {
		p.unlink(lru)
		delete(p.table, lru.key)
		p.stats.Evictions++
		p.mEvict.Inc()
		return true, nil
	}
	p.stats.WriteBack++
	p.mWB.Inc()
	lru.flushing = true
	p.nflushing++
	tag := policy.Tag{Object: lru.key.obj, Content: lru.content}
	data := lru.data
	version := lru.version
	pageNo := lru.key.page
	p.mu.Unlock()
	// Nil version guards defer to the disk image this write-back is about
	// to replace: materialize them first.
	err := p.materializeGuards(clk, lru.key, lru.content)
	if err == nil {
		// Dirty pages are flushed by the background writer: the flush
		// occupies the storage system but the query does not wait for it. A
		// write-back can race the deletion of its object (another stream
		// just dropped the temp file this frame belongs to); the data is
		// dead, so the write is simply discarded.
		err = p.mgr.WritePageBackground(clk, tag, pageNo, data)
	}
	if errors.Is(err, pagestore.ErrUnknownObject) {
		err = nil
	}
	p.mu.Lock()
	lru.flushing = false
	p.nflushing--
	if _, still := p.table[lru.key]; !still {
		// Invalidated under the latch (temp file dropped): already gone.
		return true, err
	}
	if lru.version != version || lru.pins > 0 {
		// Re-dirtied or pinned while the stale copy was in flight: the
		// frame must stay. Report progress so the caller retries with
		// another victim.
		return true, err
	}
	lru.dirty = false
	p.unlink(lru)
	delete(p.table, lru.key)
	p.stats.Evictions++
	p.mEvict.Inc()
	return true, err
}

// makeRoom evicts until a frame is free or only pinned frames remain.
// Frames latched mid-write-back do not count: their eviction is already
// under way. Caller holds p.mu.
func (p *Pool) makeRoom(clk *simclock.Clock) error {
	for len(p.table)-p.nflushing >= p.cap {
		ok, err := p.evictOne(clk)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return nil
}

// Get returns the content of (tag.Object, page), fetching it through the
// storage manager on a miss. The returned slice is the pool's frame:
// callers must not retain it across other pool calls, and must use Put to
// modify pages. On a stream with a bound transaction, the transaction's
// Acquire hook runs first (shared mode) and its error — e.g. a deadlock —
// is returned unchanged.
func (p *Pool) Get(clk *simclock.Clock, tag policy.Tag, page int64) ([]byte, error) {
	if versioned(tag.Content) {
		if s, ok := p.snapFor(clk); ok {
			// Snapshot-bound stream: resolve against the version store,
			// bypassing the lock manager entirely.
			return p.getSnapshot(clk, tag, page, s)
		}
	}
	if h := p.txnFor(clk); h != nil && h.Acquire != nil {
		if err := h.Acquire(tag, page, false); err != nil {
			return nil, err
		}
	}
	k := key{obj: tag.Object, page: page}
	p.mu.Lock()
	if e, ok := p.table[k]; ok {
		p.touch(e)
		p.stats.Hits++
		p.mHit.Inc()
		data := e.data
		p.mu.Unlock()
		return data, nil
	}
	p.stats.Misses++
	p.mMiss.Inc()
	tr := p.tracer
	if err := p.makeRoom(clk); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	p.mu.Unlock()

	fillStart := clk.Now()
	data, err := p.mgr.ReadPage(clk, tag, page)
	if err != nil {
		return nil, err
	}
	if tr.SampleRequest() {
		tr.Span("bufferpool", "miss.fill", clk.ID(), fillStart, clk.Now()-fillStart,
			map[string]any{"obj": int64(tag.Object), "page": page})
	}

	p.mu.Lock()
	if e, ok := p.table[k]; ok {
		// A concurrent query loaded the page while we were reading.
		p.touch(e)
		data = e.data
		p.mu.Unlock()
		return data, nil
	}
	e := &entry{key: k, data: data, content: tag.Content}
	p.table[k] = e
	p.pushFront(e)
	p.mu.Unlock()
	return data, nil
}

// Put stores new content for (tag.Object, page) and marks the frame
// dirty. The data is installed by reference; the pool owns it afterwards.
// On a stream with a bound transaction, the transaction's Acquire hook
// runs first (exclusive mode) and its Capture hook observes the install.
func (p *Pool) Put(clk *simclock.Clock, tag policy.Tag, page int64, data []byte) error {
	if versioned(tag.Content) {
		if s, ok := p.snapFor(clk); ok {
			return fmt.Errorf("bufferpool: snapshot %d: write to page %d/%d on a read-only snapshot stream", s, tag.Object, page)
		}
	}
	h := p.txnFor(clk)
	if h != nil && h.Acquire != nil {
		if err := h.Acquire(tag, page, true); err != nil {
			return err
		}
	}
	k := key{obj: tag.Object, page: page}
	p.mu.Lock()
	if e, ok := p.table[k]; ok {
		if h != nil && h.Capture != nil && h.Capture(tag, page, e.data, e.dirty, data) {
			e.pin(h.ID)
			if versioned(tag.Content) {
				// First touch: the frame's committed content becomes a
				// pending chain version for concurrent snapshot readers.
				p.pushPendingLocked(h.ID, k, e.verLSN, e.data, false)
				e.uncommitted = true
			}
		}
		e.data = data
		e.dirty = true
		e.version++
		e.content = tag.Content
		p.touch(e)
		p.mu.Unlock()
		return nil
	}
	if err := p.makeRoom(clk); err != nil {
		p.mu.Unlock()
		return err
	}
	e := &entry{key: k, data: data, dirty: true, content: tag.Content, version: 1}
	if h != nil && h.Capture != nil && h.Capture(tag, page, nil, false, data) {
		e.pin(h.ID)
		if versioned(tag.Content) {
			// No frame held the pre-image. Either the page does not exist
			// yet (an append extends the object only after this Put), in
			// which case snapshot readers see zeroes, or its committed
			// content lives on disk: a nil guard defers to the disk image.
			absent := page >= p.mgr.Store().Pages(tag.Object)
			p.pushPendingLocked(h.ID, k, 0, nil, absent)
			e.uncommitted = true
		}
	}
	p.table[k] = e
	p.pushFront(e)
	p.mu.Unlock()
	return nil
}

// FlushAll writes back every dirty unpinned frame (end-of-stream
// checkpoint). Pinned frames belong to uncommitted transactions and stay
// in memory: their durability is the WAL's job. A frame re-dirtied while
// its snapshot was being written keeps its dirty bit.
func (p *Pool) FlushAll(clk *simclock.Clock) error {
	type snap struct {
		e       *entry
		data    []byte
		version int64
	}
	p.mu.Lock()
	dirty := make([]snap, 0)
	for _, e := range p.table {
		if e.dirty && e.pins == 0 {
			dirty = append(dirty, snap{e: e, data: e.data, version: e.version})
		}
	}
	p.mu.Unlock()
	for _, s := range dirty {
		e := s.e
		tag := policy.Tag{Object: e.key.obj, Content: e.content}
		if err := p.materializeGuards(clk, e.key, e.content); err != nil {
			return err
		}
		if err := p.mgr.WritePage(clk, tag, e.key.page, s.data); err != nil {
			if errors.Is(err, pagestore.ErrUnknownObject) {
				continue // the object was dropped while we flushed
			}
			return err
		}
		p.mu.Lock()
		if e.version == s.version {
			e.dirty = false
		}
		p.stats.WriteBack++
		p.mWB.Inc()
		p.mu.Unlock()
	}
	return nil
}

// Invalidate drops every frame of an object without write-back. Used when
// a temporary file is deleted: its dirty pages are useless by definition.
func (p *Pool) Invalidate(obj pagestore.ObjectID) {
	p.mu.Lock()
	for k, e := range p.table {
		if k.obj == obj {
			p.unlink(e)
			delete(p.table, k)
		}
	}
	p.mu.Unlock()
}

// Unpin releases one pin txn holds on a frame (commit path: the page
// stays dirty and is flushed lazily now that its log records are
// durable). Pins the transaction does not own, and unknown pages, are
// ignored.
func (p *Pool) Unpin(txn int64, obj pagestore.ObjectID, page int64) {
	p.mu.Lock()
	if e, ok := p.table[key{obj: obj, page: page}]; ok {
		e.unpin(txn)
	}
	p.mu.Unlock()
}

// Restore rewinds a frame to its pre-transaction content and releases
// txn's pin (abort path). pre == nil means the page had no frame before
// the transaction touched it: the frame is dropped without write-back, so
// the storage system never sees the aborted content.
func (p *Pool) Restore(txn int64, obj pagestore.ObjectID, page int64, pre []byte, preDirty bool) {
	p.mu.Lock()
	k := key{obj: obj, page: page}
	created := p.dropPendingLocked(txn, k)
	e, ok := p.table[k]
	if !ok {
		p.mu.Unlock()
		return
	}
	e.unpin(txn)
	if pre == nil {
		p.unlink(e)
		delete(p.table, e.key)
	} else {
		e.data = pre
		e.dirty = preDirty
		e.version++
		if created >= 0 {
			// The dropped pending version guarded this very content:
			// restore its commit stamp alongside it.
			e.verLSN = created
		}
		e.uncommitted = false
	}
	p.mu.Unlock()
}

// PinnedFrames reports how many frames currently hold transaction pins.
// Tests use it to assert the no-steal bookkeeping drains to zero.
func (p *Pool) PinnedFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.table {
		if e.pins > 0 {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats clears the counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	p.stats = Stats{}
	p.mu.Unlock()
}

// Len reports the number of resident pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.table)
}

// Capacity reports the pool size in frames.
func (p *Pool) Capacity() int { return p.cap }

// DropAll empties the pool without write-back, version chains included
// (they are volatile by design: recovery rebuilds the committed
// single-version state from the WAL). Tests use it to force cold caches
// between runs; the crash path uses it to drop volatile state.
func (p *Pool) DropAll() {
	p.mu.Lock()
	p.table = make(map[key]*entry, p.cap)
	p.head.prev = &p.head
	p.head.next = &p.head
	p.versions = make(map[key][]pageVersion)
	p.verBytes = 0
	p.mu.Unlock()
	p.mVersions.Set(0)
	p.mVerBytes.Set(0)
}
