// Package bufferpool implements the DBMS buffer pool of the hStorage-DB
// prototype. As in the paper's augmented PostgreSQL, every fetch carries
// the semantic information collected from the query plan (a policy.Tag),
// which the pool hands through to the storage manager on misses and on
// dirty write-back, instead of stripping it away.
//
// The pool is a write-back LRU cache of pages shared by all concurrently
// running queries.
package bufferpool

import (
	"sync"

	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// key identifies one buffered page.
type key struct {
	obj  pagestore.ObjectID
	page int64
}

// entry is one buffer pool frame.
type entry struct {
	key     key
	data    []byte
	dirty   bool
	content policy.ContentType // needed to classify the write-back

	prev, next *entry
}

// Stats are cumulative buffer pool counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	WriteBack int64
}

// Pool is the buffer pool. All methods are safe for concurrent use.
type Pool struct {
	mgr *storagemgr.Manager
	cap int

	mu    sync.Mutex
	table map[key]*entry
	head  entry // sentinel of the LRU list, head.next = MRU
	stats Stats
}

// New creates a pool with capacity `frames` pages over the given storage
// manager.
func New(mgr *storagemgr.Manager, frames int) *Pool {
	if frames < 1 {
		frames = 1
	}
	p := &Pool{mgr: mgr, cap: frames, table: make(map[key]*entry, frames)}
	p.head.prev = &p.head
	p.head.next = &p.head
	return p
}

// Manager exposes the storage manager beneath the pool.
func (p *Pool) Manager() *storagemgr.Manager { return p.mgr }

func (p *Pool) pushFront(e *entry) {
	e.prev = &p.head
	e.next = p.head.next
	p.head.next.prev = e
	p.head.next = e
}

func (p *Pool) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (p *Pool) touch(e *entry) {
	p.unlink(e)
	p.pushFront(e)
}

// evictOne writes back the LRU page if dirty and frees its frame. Caller
// holds p.mu; the mutex is released around the I/O.
func (p *Pool) evictOne(clk *simclock.Clock) error {
	lru := p.head.prev
	if lru == &p.head {
		return nil
	}
	p.unlink(lru)
	delete(p.table, lru.key)
	p.stats.Evictions++
	if !lru.dirty {
		return nil
	}
	p.stats.WriteBack++
	tag := policy.Tag{Object: lru.key.obj, Content: lru.content}
	data := lru.data
	pageNo := lru.key.page
	p.mu.Unlock()
	// Dirty pages are flushed by the background writer: the flush
	// occupies the storage system but the query does not wait for it.
	err := p.mgr.WritePageBackground(clk, tag, pageNo, data)
	p.mu.Lock()
	return err
}

// Get returns the content of (tag.Object, page), fetching it through the
// storage manager on a miss. The returned slice is the pool's frame:
// callers must not retain it across other pool calls, and must use Put to
// modify pages.
func (p *Pool) Get(clk *simclock.Clock, tag policy.Tag, page int64) ([]byte, error) {
	k := key{obj: tag.Object, page: page}
	p.mu.Lock()
	if e, ok := p.table[k]; ok {
		p.touch(e)
		p.stats.Hits++
		data := e.data
		p.mu.Unlock()
		return data, nil
	}
	p.stats.Misses++
	for len(p.table) >= p.cap {
		if err := p.evictOne(clk); err != nil {
			p.mu.Unlock()
			return nil, err
		}
	}
	p.mu.Unlock()

	data, err := p.mgr.ReadPage(clk, tag, page)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	if e, ok := p.table[k]; ok {
		// A concurrent query loaded the page while we were reading.
		p.touch(e)
		data = e.data
		p.mu.Unlock()
		return data, nil
	}
	e := &entry{key: k, data: data, content: tag.Content}
	p.table[k] = e
	p.pushFront(e)
	p.mu.Unlock()
	return data, nil
}

// Put stores new content for (tag.Object, page) and marks the frame
// dirty. The data is installed by reference; the pool owns it afterwards.
func (p *Pool) Put(clk *simclock.Clock, tag policy.Tag, page int64, data []byte) error {
	k := key{obj: tag.Object, page: page}
	p.mu.Lock()
	if e, ok := p.table[k]; ok {
		e.data = data
		e.dirty = true
		e.content = tag.Content
		p.touch(e)
		p.mu.Unlock()
		return nil
	}
	for len(p.table) >= p.cap {
		if err := p.evictOne(clk); err != nil {
			p.mu.Unlock()
			return err
		}
	}
	e := &entry{key: k, data: data, dirty: true, content: tag.Content}
	p.table[k] = e
	p.pushFront(e)
	p.mu.Unlock()
	return nil
}

// FlushAll writes back every dirty frame (end-of-stream checkpoint).
func (p *Pool) FlushAll(clk *simclock.Clock) error {
	p.mu.Lock()
	dirty := make([]*entry, 0)
	for _, e := range p.table {
		if e.dirty {
			dirty = append(dirty, e)
		}
	}
	p.mu.Unlock()
	for _, e := range dirty {
		tag := policy.Tag{Object: e.key.obj, Content: e.content}
		if err := p.mgr.WritePage(clk, tag, e.key.page, e.data); err != nil {
			return err
		}
		p.mu.Lock()
		e.dirty = false
		p.stats.WriteBack++
		p.mu.Unlock()
	}
	return nil
}

// Invalidate drops every frame of an object without write-back. Used when
// a temporary file is deleted: its dirty pages are useless by definition.
func (p *Pool) Invalidate(obj pagestore.ObjectID) {
	p.mu.Lock()
	for k, e := range p.table {
		if k.obj == obj {
			p.unlink(e)
			delete(p.table, k)
		}
	}
	p.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats clears the counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	p.stats = Stats{}
	p.mu.Unlock()
}

// Len reports the number of resident pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.table)
}

// Capacity reports the pool size in frames.
func (p *Pool) Capacity() int { return p.cap }

// DropAll empties the pool without write-back. Tests use it to force cold
// caches between runs.
func (p *Pool) DropAll() {
	p.mu.Lock()
	p.table = make(map[key]*entry, p.cap)
	p.head.prev = &p.head
	p.head.next = &p.head
	p.mu.Unlock()
}
