// Version store: copy-on-write page snapshots for MVCC snapshot reads.
//
// The buffer pool keeps, per page, a chain of superseded committed
// images. A mutating transaction's first touch of a page (the same
// first-touch event that records its no-steal pre-image) pushes the
// frame's committed content onto the page's chain as a *pending*
// version; commit seals it with the transaction's commit LSN, abort
// removes it. A snapshot reader bound with BindSnapshot resolves every
// Get of transactional content against its snapshot LSN S:
//
//   - the newest chain version with created <= S decides: if its
//     superseded LSN is still open (pending) or past S, that version IS
//     the content at S;
//   - otherwise a committed version at or below S superseded it, which
//     means the page's *current* committed content is the visible one:
//     the frame (when not uncommitted) or the disk image.
//
// The chain, not the frame, is authoritative: a frame may be evicted
// after a commit and reloaded from disk with an unknown version LSN, and
// a frame holding uncommitted content must never be served to a reader.
//
// A pending version may carry nil data: the page had no frame when the
// writer first touched it, so the committed image it guards is the one
// on disk. Every write-back materializes such guards first (reads the
// old disk image into the chain before overwriting it), so a nil guard
// always denotes the *current* disk content.
//
// Garbage collection: a sealed version is prunable once no active
// snapshot falls inside its [created, superseded) validity window and
// its superseded LSN is at or below the published commit watermark (a
// future snapshot always begins at or above the watermark, so it can
// only need versions superseded after it). Version chains are volatile:
// they die with the pool on crash, and recovery rebuilds the committed
// single-version state from the WAL alone.
package bufferpool

import (
	"errors"
	"fmt"
	"sort"

	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// PageRef names one page whose pending version a commit seals.
type PageRef struct {
	// Obj is the owning storage object.
	Obj pagestore.ObjectID
	// Page is the page number within the object.
	Page int64
}

// pageVersion is one entry of a page's version chain: a committed image
// superseded (or about to be superseded) by a later commit.
type pageVersion struct {
	created    int64 // commit LSN that produced this content (0 = base image)
	superseded int64 // commit LSN that replaced it; 0 while the owner runs
	owner      int64 // transaction holding the pending entry (0 once sealed)
	absent     bool  // the page did not exist at this version
	data       []byte
}

// VersionStats is a snapshot of the version store.
type VersionStats struct {
	// Versions counts chain entries (pending included); Bytes their
	// retained page payload.
	Versions int
	Bytes    int64
	// Snapshots counts bound snapshot readers; OldestSnapshot is the
	// minimum bound snapshot LSN (0 with none).
	Snapshots      int
	OldestSnapshot int64
}

// zeroPage is the content of a page that does not exist at a snapshot:
// unwritten pages read as zeroes everywhere else in the system too.
var zeroPage = make([]byte, pagestore.PageSize)

// versioned reports whether a content type is resolved against
// snapshots: only transactional data is — temporary spills are
// stream-private and WAL pages manage their own durability.
func versioned(c policy.ContentType) bool {
	return c == policy.Table || c == policy.Index
}

// BindSnapshot pins a snapshot LSN to a session stream: every Get
// carrying clk resolves transactional pages as of lsn until
// UnbindSnapshot. A bound stream must not Put transactional content.
func (p *Pool) BindSnapshot(clk *simclock.Clock, lsn int64) {
	p.txnMu.Lock()
	p.snaps[clk] = lsn
	n := int64(len(p.snaps))
	p.txnMu.Unlock()
	p.mSnaps.Set(n)
}

// UnbindSnapshot releases the stream's snapshot binding (end of the
// read-only transaction). Unknown streams are ignored (crash path).
func (p *Pool) UnbindSnapshot(clk *simclock.Clock) {
	p.txnMu.Lock()
	delete(p.snaps, clk)
	n := int64(len(p.snaps))
	p.txnMu.Unlock()
	p.mSnaps.Set(n)
}

// snapFor returns the snapshot LSN bound to a stream.
func (p *Pool) snapFor(clk *simclock.Clock) (int64, bool) {
	p.txnMu.RLock()
	lsn, ok := p.snaps[clk]
	p.txnMu.RUnlock()
	return lsn, ok
}

// activeSnaps returns the bound snapshot LSNs, sorted ascending. Called
// without p.mu held (txnMu nests inside p.mu nowhere, so gathering the
// snapshot set first keeps the lock order single-level).
func (p *Pool) activeSnaps() []int64 {
	p.txnMu.RLock()
	out := make([]int64, 0, len(p.snaps))
	for _, lsn := range p.snaps {
		out = append(out, lsn)
	}
	p.txnMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pushPendingLocked opens a pending version holding the frame's
// pre-transaction content. frameLSN is the LSN the content was committed
// at (raised to the chain horizon when the frame had been evicted and
// reloaded since, which loses the stamp). Caller holds p.mu.
func (p *Pool) pushPendingLocked(txn int64, k key, frameLSN int64, pre []byte, absent bool) {
	created := frameLSN
	chain := p.versions[k]
	if n := len(chain); n > 0 && chain[n-1].superseded > created {
		created = chain[n-1].superseded
	}
	p.versions[k] = append(chain, pageVersion{
		created: created, owner: txn, absent: absent, data: pre,
	})
	p.verBytes += int64(len(pre))
	p.mVersions.Add(1)
	p.mVerBytes.Add(int64(len(pre)))
}

// dropPendingLocked removes txn's pending version of a page (abort path)
// and returns the created LSN it guarded, or -1 if none was open.
// Caller holds p.mu.
func (p *Pool) dropPendingLocked(txn int64, k key) int64 {
	chain := p.versions[k]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].superseded == 0 && chain[i].owner == txn {
			created := chain[i].created
			p.verBytes -= int64(len(chain[i].data))
			p.mVersions.Add(-1)
			p.mVerBytes.Add(-int64(len(chain[i].data)))
			chain = append(chain[:i], chain[i+1:]...)
			if len(chain) == 0 {
				delete(p.versions, k)
			} else {
				p.versions[k] = chain
			}
			return created
		}
	}
	return -1
}

// CommitVersions seals txn's pending versions with its commit LSN and
// stamps the frames as committed at that LSN. It must be called while
// the commit order is still pinned (the transaction layer holds its
// commit-sequence mutex), so chain seal order matches commit-LSN order:
// otherwise a snapshot taken between a later commit record and this
// seal could miss a version it is entitled to. watermark is the current
// published commit watermark, used to opportunistically prune the
// just-sealed chains.
func (p *Pool) CommitVersions(txn, commitLSN, watermark int64, pages []PageRef) {
	if len(pages) == 0 {
		return
	}
	snaps := p.activeSnaps()
	p.mu.Lock()
	for _, r := range pages {
		k := key{obj: r.Obj, page: r.Page}
		if e, ok := p.table[k]; ok {
			e.verLSN = commitLSN
			e.uncommitted = false
		}
		chain := p.versions[k]
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].superseded == 0 && chain[i].owner == txn {
				chain[i].superseded = commitLSN
				chain[i].owner = 0
				break
			}
		}
		p.pruneChainLocked(k, watermark, snaps)
	}
	p.mu.Unlock()
}

// PruneVersions sweeps every chain, dropping versions no active snapshot
// needs and no future snapshot can need (their superseded LSN is at or
// below the commit watermark). Called when a snapshot ends and at
// checkpoints.
func (p *Pool) PruneVersions(watermark int64) {
	snaps := p.activeSnaps()
	p.mu.Lock()
	for k := range p.versions {
		p.pruneChainLocked(k, watermark, snaps)
	}
	p.mu.Unlock()
}

// pruneChainLocked drops the prunable versions of one page. A version is
// kept while pending, while a future snapshot could still begin inside
// its window (superseded > watermark), or while an active snapshot falls
// in [created, superseded). Caller holds p.mu; snaps is sorted.
func (p *Pool) pruneChainLocked(k key, watermark int64, snaps []int64) {
	chain := p.versions[k]
	if len(chain) == 0 {
		return
	}
	j := 0
	for _, v := range chain {
		if v.superseded == 0 || v.superseded > watermark || snapInWindow(snaps, v.created, v.superseded) {
			chain[j] = v
			j++
			continue
		}
		p.verBytes -= int64(len(v.data))
		p.mVersions.Add(-1)
		p.mVerBytes.Add(-int64(len(v.data)))
	}
	if j == 0 {
		delete(p.versions, k)
		return
	}
	p.versions[k] = chain[:j]
}

// snapInWindow reports whether a sorted snapshot list has an entry in
// [lo, hi).
func snapInWindow(snaps []int64, lo, hi int64) bool {
	i := sort.Search(len(snaps), func(i int) bool { return snaps[i] >= lo })
	return i < len(snaps) && snaps[i] < hi
}

// chainResolveLocked finds the version visible at snapshot LSN s, if the
// chain is authoritative for it: the newest version with created <= s
// whose superseded LSN is open or past s. ok=false means the page's
// current committed content is the visible one (possibly because the
// chain is empty). A true result with nil data means the visible image
// is the current disk content (a guard whose frame had been evicted).
// Caller holds p.mu.
func (p *Pool) chainResolveLocked(k key, s int64) (data []byte, ok bool) {
	chain := p.versions[k]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].created > s {
			continue
		}
		if chain[i].superseded == 0 || chain[i].superseded > s {
			if chain[i].absent {
				return zeroPage, true
			}
			return chain[i].data, true
		}
		// A committed version at or below s superseded this one: the
		// current content is visible.
		return nil, false
	}
	return nil, false
}

// getSnapshot serves a Get on a snapshot-bound stream: the version chain
// decides first; when the current committed content is the visible
// version, the frame (or the disk image) serves it like an ordinary Get.
func (p *Pool) getSnapshot(clk *simclock.Clock, tag policy.Tag, page int64, s int64) ([]byte, error) {
	p.mSnapReads.Inc()
	k := key{obj: tag.Object, page: page}
	p.mu.Lock()
	if data, ok := p.chainResolveLocked(k, s); ok {
		p.mu.Unlock()
		if data == nil {
			// Nil guard: the committed image lives on disk (and stays
			// there — write-backs materialize guards before overwriting).
			return p.readSnapshotMiss(clk, tag, page, s, false)
		}
		return data, nil
	}
	if e, ok := p.table[k]; ok {
		if !e.uncommitted {
			p.touch(e)
			p.stats.Hits++
			p.mHit.Inc()
			data := e.data
			p.mu.Unlock()
			return data, nil
		}
		// An uncommitted frame is always guarded by its owner's pending
		// chain version, which the resolve above would have served.
		p.mu.Unlock()
		return nil, fmt.Errorf("bufferpool: snapshot %d: page %d/%d has uncommitted frame and no covering version", s, tag.Object, page)
	}
	p.mu.Unlock()
	return p.readSnapshotMiss(clk, tag, page, s, true)
}

// readSnapshotMiss reads the page from the storage system for a snapshot
// reader and re-resolves afterwards: a writer may have captured or
// committed the page while the I/O was in flight, in which case the
// chain — which then covers the snapshot — wins over the possibly-newer
// disk image. install controls whether the frame is populated (a
// guard-directed disk read must not install: the frame, if any, is
// newer content).
func (p *Pool) readSnapshotMiss(clk *simclock.Clock, tag policy.Tag, page int64, s int64, install bool) ([]byte, error) {
	k := key{obj: tag.Object, page: page}
	if install {
		p.mu.Lock()
		p.stats.Misses++
		p.mMiss.Inc()
		if err := p.makeRoom(clk); err != nil {
			p.mu.Unlock()
			return nil, err
		}
		p.mu.Unlock()
	}

	data, err := p.mgr.ReadPage(clk, tag, page)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if vdata, ok := p.chainResolveLocked(k, s); ok {
		if vdata != nil {
			return vdata, nil
		}
		// Still a nil guard: the disk image we read is the guarded
		// committed content — any write-back that would have replaced it
		// must first have materialized the guard, turning vdata non-nil.
		return data, nil
	}
	if e, ok := p.table[k]; ok {
		if !e.uncommitted {
			p.touch(e)
			return e.data, nil
		}
		return nil, fmt.Errorf("bufferpool: snapshot %d: page %d/%d has uncommitted frame and no covering version", s, tag.Object, page)
	}
	if install {
		e := &entry{key: k, data: data, content: tag.Content}
		p.table[k] = e
		p.pushFront(e)
	}
	return data, nil
}

// materializeGuards backfills every nil-data version of a page with the
// current disk image. Write-back paths call it before overwriting the
// disk copy, preserving the invariant that a nil guard denotes content
// still readable from disk. Called without p.mu held.
func (p *Pool) materializeGuards(clk *simclock.Clock, k key, content policy.ContentType) error {
	p.mu.Lock()
	guarded := false
	for _, v := range p.versions[k] {
		if v.data == nil && !v.absent {
			guarded = true
			break
		}
	}
	p.mu.Unlock()
	if !guarded {
		return nil
	}
	tag := policy.Tag{Object: k.obj, Content: content}
	data, err := p.mgr.ReadPage(clk, tag, k.page)
	if errors.Is(err, pagestore.ErrUnknownObject) {
		return nil // the object was dropped: its versions are dead anyway
	}
	if err != nil {
		return err
	}
	p.mu.Lock()
	chain := p.versions[k]
	for i := range chain {
		if chain[i].data == nil && !chain[i].absent {
			chain[i].data = data
			p.verBytes += int64(len(data))
			p.mVerBytes.Add(int64(len(data)))
		}
	}
	p.mu.Unlock()
	return nil
}

// VersionStats returns a snapshot of the version store.
func (p *Pool) VersionStats() VersionStats {
	snaps := p.activeSnaps()
	p.mu.Lock()
	n := 0
	for _, chain := range p.versions {
		n += len(chain)
	}
	vs := VersionStats{Versions: n, Bytes: p.verBytes, Snapshots: len(snaps)}
	p.mu.Unlock()
	if len(snaps) > 0 {
		vs.OldestSnapshot = snaps[0]
	}
	return vs
}
