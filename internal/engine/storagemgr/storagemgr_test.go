package storagemgr

import (
	"testing"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

func newMgr(t *testing.T) (*Manager, *pagestore.Store, hybrid.System) {
	t.Helper()
	store := pagestore.NewStore()
	if err := store.Create(1); err != nil {
		t.Fatal(err)
	}
	sys, err := hybrid.New(hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	return New(store, sys, policy.NewAssignmentTable(dss.DefaultPolicySpace())), store, sys
}

func TestReadClassifiesAndCharges(t *testing.T) {
	mgr, _, sys := newMgr(t)
	var clk simclock.Clock
	tag := policy.Tag{Object: 1, Content: policy.Table, Pattern: policy.Sequential}
	if _, err := mgr.ReadPage(&clk, tag, 0); err != nil {
		t.Fatal(err)
	}
	if clk.Now() == 0 {
		t.Fatal("read charged no simulated time")
	}
	space := dss.DefaultPolicySpace()
	if sys.Stats().Class(space.Sequential()).ReadBlocks != 1 {
		t.Fatal("sequential read not classified N-1")
	}
	ts := mgr.TypeStats()
	if ts[policy.SequentialRequest].Requests != 1 {
		t.Fatalf("type stats %+v", ts)
	}
}

func TestReadNeverClassifiedUpdate(t *testing.T) {
	mgr, _, sys := newMgr(t)
	var clk simclock.Clock
	// Even if a caller leaves Update set on the tag, a read is not a
	// Rule 4 update.
	tag := policy.Tag{Object: 1, Content: policy.Table, Pattern: policy.Sequential, Update: true}
	if _, err := mgr.ReadPage(&clk, tag, 0); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Class(dss.ClassWriteBuffer).Requests != 0 {
		t.Fatal("read classified as write-buffer")
	}
}

func TestWriteClassification(t *testing.T) {
	mgr, store, sys := newMgr(t)
	if err := store.Create(1000); err != nil {
		t.Fatal(err)
	}
	var clk simclock.Clock
	// Table write = update (Rule 4).
	if err := mgr.WritePage(&clk, policy.Tag{Object: 1, Content: policy.Table}, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// Temp write = priority 1 (Rule 3).
	if err := mgr.WritePage(&clk, policy.Tag{Object: 1000, Content: policy.Temp}, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	snap := sys.Stats()
	if snap.Class(dss.ClassWriteBuffer).WriteBlocks != 1 {
		t.Fatal("table write not in write buffer")
	}
	if snap.Class(dss.DefaultPolicySpace().Temporary()).WriteBlocks != 1 {
		t.Fatal("temp write not priority 1")
	}
	ts := mgr.TypeStats()
	if ts[policy.UpdateRequest].Requests != 1 || ts[policy.TempRequest].Requests != 1 {
		t.Fatalf("type stats %+v", ts)
	}
}

func TestBackgroundWriteDoesNotBlock(t *testing.T) {
	mgr, _, _ := newMgr(t)
	var clk simclock.Clock
	if err := mgr.WritePageBackground(&clk, policy.Tag{Object: 1, Content: policy.Table}, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != 0 {
		t.Fatalf("background write advanced the clock to %v", clk.Now())
	}
	// But the device was occupied: Wait picks up the in-flight work.
	mgr.Wait(&clk)
	if clk.Now() == 0 {
		t.Fatal("Wait found no in-flight work")
	}
}

func TestDeleteObjectTrims(t *testing.T) {
	mgr, store, sys := newMgr(t)
	var clk simclock.Clock
	if err := store.Create(50); err != nil {
		t.Fatal(err)
	}
	tag := policy.Tag{Object: 50, Content: policy.Temp}
	for i := int64(0); i < 4; i++ {
		if err := mgr.WritePage(&clk, tag, i, []byte{9}); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Stats().CachedBlocks != 4 {
		t.Fatalf("setup: cached %d", sys.Stats().CachedBlocks)
	}
	if err := mgr.DeleteObject(&clk, 50); err != nil {
		t.Fatal(err)
	}
	s := sys.Stats()
	if s.Trimmed != 4 || s.CachedBlocks != 0 {
		t.Fatalf("trimmed=%d cached=%d after delete", s.Trimmed, s.CachedBlocks)
	}
	if store.Exists(50) {
		t.Fatal("object survives delete")
	}
}

func TestTypeStatsReset(t *testing.T) {
	mgr, _, _ := newMgr(t)
	var clk simclock.Clock
	_, _ = mgr.ReadPage(&clk, policy.Tag{Object: 1, Content: policy.Table}, 0)
	mgr.ResetTypeStats()
	if len(mgr.TypeStats()) != 0 {
		t.Fatal("type stats survive reset")
	}
	if mgr.FormatTypeStats() != "no requests" {
		t.Fatalf("empty format: %q", mgr.FormatTypeStats())
	}
}

func TestFormatTypeStats(t *testing.T) {
	mgr, _, _ := newMgr(t)
	var clk simclock.Clock
	_, _ = mgr.ReadPage(&clk, policy.Tag{Object: 1, Content: policy.Table, Pattern: policy.Random}, 0)
	out := mgr.FormatTypeStats()
	if out == "" || out == "no requests" {
		t.Fatalf("format: %q", out)
	}
}

func TestTenantBindingAttributesRequests(t *testing.T) {
	mgr, _, sys := newMgr(t)
	var clk simclock.Clock
	tag := policy.Tag{Object: 1, Content: policy.Table, Pattern: policy.Sequential}

	mgr.BindTenant(&clk, 5)
	if _, err := mgr.ReadPage(&clk, tag, 0); err != nil {
		t.Fatal(err)
	}
	mgr.UnbindTenant(&clk)
	if _, err := mgr.ReadPage(&clk, tag, 1); err != nil {
		t.Fatal(err)
	}

	var bound int64
	for _, s := range sys.Sched().Schedulers() {
		bound += s.TenantStats()[5].Submitted
	}
	if bound != 1 {
		t.Fatalf("tenant 5 attributed %d submissions, want exactly the bound-session read", bound)
	}
}
