// Package storagemgr implements hStorage-DB's restructured storage
// manager (Figure 1): the layer that translates a DBMS page request into
// a block I/O request. Where a conventional storage manager strips all
// semantic information, this one consults the policy assignment table,
// embeds the resulting QoS policy into the request, and delivers it to
// the storage system through the DSS block interface.
//
// The manager also keeps the per-request-type counters behind Figure 4
// (diversity of request types) and issues TRIM commands when temporary
// objects are deleted (Rule 3).
package storagemgr

import (
	"fmt"
	"sync"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// TypeStats counts traffic for one request type (Figure 4 plots the
// request-percentage and block-percentage of each).
type TypeStats struct {
	Requests int64
	Blocks   int64
}

// Manager is the classification-enabled storage manager.
type Manager struct {
	store   *pagestore.Store
	storage hybrid.System
	table   *policy.AssignmentTable

	// DisableTrim suppresses TRIM commands on object deletion — the
	// legacy-filesystem behaviour of Section 4.2.3, used by the TRIM
	// ablation benchmark.
	DisableTrim bool

	mu      sync.Mutex
	types   map[policy.RequestType]*TypeStats
	tenants map[*simclock.Clock]dss.TenantID
}

// New builds a manager over a page store and a storage system.
func New(store *pagestore.Store, storage hybrid.System, table *policy.AssignmentTable) *Manager {
	return &Manager{
		store:   store,
		storage: storage,
		table:   table,
		types:   make(map[policy.RequestType]*TypeStats),
	}
}

// Store exposes the underlying page store.
func (m *Manager) Store() *pagestore.Store { return m.store }

// Storage exposes the storage system under management.
func (m *Manager) Storage() hybrid.System { return m.storage }

// Table exposes the policy assignment table.
func (m *Manager) Table() *policy.AssignmentTable { return m.table }

// Registry exposes the Rule 5 concurrency registry.
func (m *Manager) Registry() *policy.Registry { return m.table.Registry }

// BindTenant attributes all traffic of the session identified by clk to
// tenant t, the same way the buffer pool binds transactions: the session
// clock is the stream identity every request already carries. Requests
// from unbound sessions carry dss.DefaultTenant. Bindings are released
// with UnbindTenant when the session ends.
func (m *Manager) BindTenant(clk *simclock.Clock, t dss.TenantID) {
	m.mu.Lock()
	if m.tenants == nil {
		m.tenants = make(map[*simclock.Clock]dss.TenantID)
	}
	m.tenants[clk] = t
	m.mu.Unlock()
}

// UnbindTenant removes clk's tenant binding.
func (m *Manager) UnbindTenant(clk *simclock.Clock) {
	m.mu.Lock()
	delete(m.tenants, clk)
	m.mu.Unlock()
}

// tenantOf resolves the tenant bound to a session clock.
func (m *Manager) tenantOf(clk *simclock.Clock) dss.TenantID {
	m.mu.Lock()
	t := m.tenants[clk]
	m.mu.Unlock()
	return t
}

func (m *Manager) count(t policy.RequestType, blocks int) {
	m.mu.Lock()
	ts := m.types[t]
	if ts == nil {
		ts = &TypeStats{}
		m.types[t] = ts
	}
	ts.Requests++
	ts.Blocks += int64(blocks)
	m.mu.Unlock()
}

// ReadPage reads one page, classifying the request per the assignment
// table, charging the simulated I/O time to clk, and returning the page
// content.
func (m *Manager) ReadPage(clk *simclock.Clock, tag policy.Tag, page int64) ([]byte, error) {
	data, lba, err := m.store.ReadPage(tag.Object, page)
	if err != nil {
		return nil, err
	}
	readTag := tag
	readTag.Update = false // reads are never Rule 4 updates
	class := m.table.Classify(readTag)
	done := m.storage.Submit(clk.Now(), dss.Request{
		Op:     device.Read,
		LBA:    lba,
		Blocks: 1,
		Class:  class,
		Stream: clk,
		Tenant: m.tenantOf(clk),
	})
	clk.AdvanceTo(done)
	m.count(readTag.Type(), 1)
	return data, nil
}

// WritePage writes one page synchronously: the caller's clock advances to
// the write's completion. Temporary-data writes carry the temp priority
// (Rule 3); all other writes are updates and carry the write buffer
// policy (Rule 4).
func (m *Manager) WritePage(clk *simclock.Clock, tag policy.Tag, page int64, data []byte) error {
	_, err := m.writePage(clk, tag, page, data, false)
	return err
}

// WritePageBackground writes one page without blocking the caller: the
// write occupies the storage system (later requests queue behind it) but
// the caller's clock does not advance. This models write-back by the
// background writer / OS-buffered temporary files: the DBMS never waits
// for a dirty-page flush on its critical path.
func (m *Manager) WritePageBackground(clk *simclock.Clock, tag policy.Tag, page int64, data []byte) error {
	_, err := m.writePage(clk, tag, page, data, true)
	return err
}

func (m *Manager) writePage(clk *simclock.Clock, tag policy.Tag, page int64, data []byte, background bool) (simclock.Duration, error) {
	lba, err := m.store.WritePage(tag.Object, page, data)
	if err != nil {
		return 0, err
	}
	writeTag := tag
	if writeTag.Content != policy.Temp && writeTag.Content != policy.Log {
		// Temporary data keeps its Rule 3 class; log segments keep the
		// pinned log class; everything else written back is an update.
		writeTag.Update = true
	}
	class := m.table.Classify(writeTag)
	done := m.storage.Submit(clk.Now(), dss.Request{
		Op:         device.Write,
		LBA:        lba,
		Blocks:     1,
		Class:      class,
		Stream:     clk,
		Background: background,
		Tenant:     m.tenantOf(clk),
	})
	if !background {
		clk.AdvanceTo(done)
	}
	m.count(writeTag.Type(), 1)
	return done, nil
}

// DeleteObject removes an object from the page store and informs the
// storage system that its blocks are useless, via TRIM commands carrying
// the "non-caching and eviction" policy.
func (m *Manager) DeleteObject(clk *simclock.Clock, id pagestore.ObjectID) error {
	exts, err := m.store.Delete(id)
	if err != nil {
		return err
	}
	if m.DisableTrim {
		// Legacy path: file deletion changes only file-system metadata;
		// the storage system is never told the blocks are dead.
		return nil
	}
	for _, e := range exts {
		if e.Pages == 0 {
			continue
		}
		done := m.storage.Submit(clk.Now(), dss.Request{
			Kind:   dss.Trim,
			LBA:    e.Start,
			Blocks: int(e.Pages),
			Class:  m.table.TrimClass(),
			Tenant: m.tenantOf(clk),
		})
		clk.AdvanceTo(done)
	}
	return nil
}

// TypeStats returns a snapshot of the per-request-type counters.
func (m *Manager) TypeStats() map[policy.RequestType]TypeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[policy.RequestType]TypeStats, len(m.types))
	for t, ts := range m.types {
		out[t] = *ts
	}
	return out
}

// ResetTypeStats clears the per-request-type counters.
func (m *Manager) ResetTypeStats() {
	m.mu.Lock()
	m.types = make(map[policy.RequestType]*TypeStats)
	m.mu.Unlock()
}

// FormatTypeStats renders the Figure 4 row for this manager: the
// percentage of requests and blocks in each class.
func (m *Manager) FormatTypeStats() string {
	stats := m.TypeStats()
	var totReq, totBlk int64
	for _, ts := range stats {
		totReq += ts.Requests
		totBlk += ts.Blocks
	}
	if totReq == 0 {
		return "no requests"
	}
	out := ""
	for _, t := range policy.RequestTypes() {
		ts := stats[t]
		out += fmt.Sprintf("%s: %.1f%%/%.1f%% ",
			t, 100*float64(ts.Requests)/float64(totReq), 100*float64(ts.Blocks)/float64(totBlk))
	}
	return out
}

// Wait advances clk past any in-flight background work on both devices
// (asynchronous flushes, dirty evictions). Experiments call it before
// reading final times so background writes are not billed for free. The
// I/O scheduler is drained first so queued background grants land on
// the devices' busy horizons. A zero-length access returns the device's
// busy-until without disturbing its counters.
func (m *Manager) Wait(clk *simclock.Clock) {
	m.storage.Sched().Drain()
	var until time.Duration
	if d := m.storage.HDD(); d != nil {
		if t := d.Access(clk.Now(), device.Read, 0, 0); t > until {
			until = t
		}
	}
	if d := m.storage.SSD(); d != nil {
		if t := d.Access(clk.Now(), device.Read, 0, 0); t > until {
			until = t
		}
	}
	clk.AdvanceTo(until)
}
