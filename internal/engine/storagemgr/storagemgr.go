// Package storagemgr implements hStorage-DB's restructured storage
// manager (Figure 1): the layer that translates a DBMS page request into
// a block I/O request. Where a conventional storage manager strips all
// semantic information, this one consults the policy assignment table,
// embeds the resulting QoS policy into the request, and delivers it to
// the storage system through the DSS block interface.
//
// The manager also keeps the per-request-type counters behind Figure 4
// (diversity of request types) and issues TRIM commands when temporary
// objects are deleted (Rule 3).
package storagemgr

import (
	"fmt"
	"sync"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// TypeStats counts traffic for one request type (Figure 4 plots the
// request-percentage and block-percentage of each).
type TypeStats struct {
	Requests int64
	Blocks   int64
}

// MaintStats counts the backend maintenance work the manager drained
// and submitted: LSM flushes and compactions, their block traffic, and
// the TRIMs compaction freed. All zero over a heap backend.
type MaintStats struct {
	Flushes               int64
	Compactions           int64
	FlushWriteBlocks      int64
	CompactionReadBlocks  int64
	CompactionWriteBlocks int64
	TrimBlocks            int64
}

// Manager is the classification-enabled storage manager.
type Manager struct {
	store   pagestore.Backend
	storage hybrid.System
	table   *policy.AssignmentTable

	// DisableTrim suppresses TRIM commands on object deletion — the
	// legacy-filesystem behaviour of Section 4.2.3, used by the TRIM
	// ablation benchmark.
	DisableTrim bool

	mu      sync.Mutex
	types   map[policy.RequestType]*TypeStats
	maint   MaintStats
	tenants map[*simclock.Clock]dss.TenantID
}

// New builds a manager over a storage backend and a storage system.
func New(store pagestore.Backend, storage hybrid.System, table *policy.AssignmentTable) *Manager {
	return &Manager{
		store:   store,
		storage: storage,
		table:   table,
		types:   make(map[policy.RequestType]*TypeStats),
	}
}

// Store exposes the underlying storage backend.
func (m *Manager) Store() pagestore.Backend { return m.store }

// Storage exposes the storage system under management.
func (m *Manager) Storage() hybrid.System { return m.storage }

// Table exposes the policy assignment table.
func (m *Manager) Table() *policy.AssignmentTable { return m.table }

// Registry exposes the Rule 5 concurrency registry.
func (m *Manager) Registry() *policy.Registry { return m.table.Registry }

// BindTenant attributes all traffic of the session identified by clk to
// tenant t, the same way the buffer pool binds transactions: the session
// clock is the stream identity every request already carries. Requests
// from unbound sessions carry dss.DefaultTenant. Bindings are released
// with UnbindTenant when the session ends.
func (m *Manager) BindTenant(clk *simclock.Clock, t dss.TenantID) {
	m.mu.Lock()
	if m.tenants == nil {
		m.tenants = make(map[*simclock.Clock]dss.TenantID)
	}
	m.tenants[clk] = t
	m.mu.Unlock()
}

// UnbindTenant removes clk's tenant binding.
func (m *Manager) UnbindTenant(clk *simclock.Clock) {
	m.mu.Lock()
	delete(m.tenants, clk)
	m.mu.Unlock()
}

// tenantOf resolves the tenant bound to a session clock.
func (m *Manager) tenantOf(clk *simclock.Clock) dss.TenantID {
	m.mu.Lock()
	t := m.tenants[clk]
	m.mu.Unlock()
	return t
}

func (m *Manager) count(t policy.RequestType, blocks int) {
	m.mu.Lock()
	ts := m.types[t]
	if ts == nil {
		ts = &TypeStats{}
		m.types[t] = ts
	}
	ts.Requests++
	ts.Blocks += int64(blocks)
	m.mu.Unlock()
}

// ReadPage reads one page, classifying the request per the assignment
// table, charging the simulated I/O time to clk, and returning the page
// content. The backend's access plan is submitted in order, each access
// waiting on the previous (a probe cannot read a data block before the
// index block that located it); structure accesses carry the pinnable
// meta class, data accesses the class the table assigned. An empty plan
// (an LSM memtable absorbing the read) costs no device time.
func (m *Manager) ReadPage(clk *simclock.Clock, tag policy.Tag, page int64) ([]byte, error) {
	data, plan, err := m.store.Read(tag.Object, page)
	if err != nil {
		return nil, err
	}
	readTag := tag
	readTag.Update = false // reads are never Rule 4 updates
	class := m.table.Classify(readTag)
	m.submitPlan(clk, plan, class, false)
	m.count(readTag.Type(), 1)
	return data, nil
}

// submitPlan delivers a backend access plan through the DSS interface,
// serializing dependent accesses on the caller's clock. Background
// plans occupy the devices without advancing the clock.
func (m *Manager) submitPlan(clk *simclock.Clock, plan []pagestore.Access, class dss.Class, background bool) {
	tenant := m.tenantOf(clk)
	for _, a := range plan {
		op := device.Read
		if a.Write {
			op = device.Write
		}
		c := class
		if a.Meta {
			c = m.table.MetaClass()
		}
		done := m.storage.Submit(clk.Now(), dss.Request{
			Op:         op,
			LBA:        a.LBA,
			Blocks:     a.Blocks,
			Class:      c,
			Stream:     clk,
			Background: background,
			Tenant:     tenant,
		})
		if !background {
			clk.AdvanceTo(done)
		}
	}
}

// WritePage writes one page synchronously: the caller's clock advances to
// the write's completion. Temporary-data writes carry the temp priority
// (Rule 3); all other writes are updates and carry the write buffer
// policy (Rule 4).
func (m *Manager) WritePage(clk *simclock.Clock, tag policy.Tag, page int64, data []byte) error {
	return m.writePage(clk, tag, page, data, false)
}

// WritePageBackground writes one page without blocking the caller: the
// write occupies the storage system (later requests queue behind it) but
// the caller's clock does not advance. This models write-back by the
// background writer / OS-buffered temporary files: the DBMS never waits
// for a dirty-page flush on its critical path.
func (m *Manager) WritePageBackground(clk *simclock.Clock, tag policy.Tag, page int64, data []byte) error {
	return m.writePage(clk, tag, page, data, true)
}

func (m *Manager) writePage(clk *simclock.Clock, tag policy.Tag, page int64, data []byte, background bool) error {
	plan, err := m.store.Write(tag.Object, page, data)
	if err != nil {
		return err
	}
	writeTag := tag
	if writeTag.Content != policy.Temp && writeTag.Content != policy.Log {
		// Temporary data keeps its Rule 3 class; log segments keep the
		// pinned log class; everything else written back is an update.
		writeTag.Update = true
	}
	m.submitPlan(clk, plan, m.table.Classify(writeTag), background)
	m.count(writeTag.Type(), 1)
	// A write may have tipped the backend over its memtable threshold:
	// deliver the resulting flush/compaction traffic.
	m.drainMaint(clk)
	return nil
}

// drainMaint pulls accumulated backend maintenance (memtable flushes,
// compaction sweeps) and submits it as background traffic under the
// compaction class: no requester waits on it, the scheduler serves it
// below every foreground class out of the background token budget, and
// the non-caching compaction class keeps bulk rewrites out of the SSD
// cache. Compaction-freed extents are TRIMmed (under the usual eviction
// class) so stale cached copies of reorganized blocks are invalidated.
// Charged to no tenant: reorganization serves the whole backend.
func (m *Manager) drainMaint(clk *simclock.Clock) {
	mt, ok := m.store.(pagestore.Maintainer)
	if !ok {
		return
	}
	jobs := mt.DrainMaintenance()
	if len(jobs) == 0 {
		return
	}
	class := m.table.CompactionClass()
	for _, job := range jobs {
		var reads, writes int64
		for _, a := range job.Accesses {
			op := device.Read
			if a.Write {
				op = device.Write
				writes += int64(a.Blocks)
			} else {
				reads += int64(a.Blocks)
			}
			m.storage.Submit(clk.Now(), dss.Request{
				Op:         op,
				LBA:        a.LBA,
				Blocks:     a.Blocks,
				Class:      class,
				Background: true,
			})
		}
		var trimmed int64
		if !m.DisableTrim {
			for _, e := range job.Trims {
				if e.Pages == 0 {
					continue
				}
				trimmed += e.Pages
				m.storage.Submit(clk.Now(), dss.Request{
					Kind:   dss.Trim,
					LBA:    e.Start,
					Blocks: int(e.Pages),
					Class:  m.table.TrimClass(),
				})
			}
		}
		m.mu.Lock()
		switch job.Kind {
		case pagestore.MaintFlush:
			m.maint.Flushes++
			m.maint.FlushWriteBlocks += writes
		case pagestore.MaintCompaction:
			m.maint.Compactions++
			m.maint.CompactionReadBlocks += reads
			m.maint.CompactionWriteBlocks += writes
		}
		m.maint.TrimBlocks += trimmed
		m.mu.Unlock()
	}
}

// Sync forces the backend's volatile state (an LSM memtable and its
// manifest) to durable media and submits the implied flush traffic.
// The WAL calls it inside every checkpoint, after the buffer pool
// flush: a checkpoint's promise — everything before it is on disk — must
// hold through the backend too. A no-op over the heap backend.
func (m *Manager) Sync(clk *simclock.Clock) error {
	if s, ok := m.store.(pagestore.Syncer); ok {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	m.drainMaint(clk)
	return nil
}

// MaintStats returns a snapshot of the maintenance counters.
func (m *Manager) MaintStats() MaintStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.maint
}

// DeleteObject removes an object from the page store and informs the
// storage system that its blocks are useless, via TRIM commands carrying
// the "non-caching and eviction" policy.
func (m *Manager) DeleteObject(clk *simclock.Clock, id pagestore.ObjectID) error {
	exts, err := m.store.Delete(id)
	if err != nil {
		return err
	}
	if m.DisableTrim {
		// Legacy path: file deletion changes only file-system metadata;
		// the storage system is never told the blocks are dead.
		exts = nil
	}
	for _, e := range exts {
		if e.Pages == 0 {
			continue
		}
		done := m.storage.Submit(clk.Now(), dss.Request{
			Kind:   dss.Trim,
			LBA:    e.Start,
			Blocks: int(e.Pages),
			Class:  m.table.TrimClass(),
			Tenant: m.tenantOf(clk),
		})
		clk.AdvanceTo(done)
	}
	// Deletion may free backend structures (dropped memtable runs do
	// not, but a backend is free to schedule reclamation here).
	m.drainMaint(clk)
	return nil
}

// TypeStats returns a snapshot of the per-request-type counters.
func (m *Manager) TypeStats() map[policy.RequestType]TypeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[policy.RequestType]TypeStats, len(m.types))
	for t, ts := range m.types {
		out[t] = *ts
	}
	return out
}

// ResetTypeStats clears the per-request-type and maintenance counters.
func (m *Manager) ResetTypeStats() {
	m.mu.Lock()
	m.types = make(map[policy.RequestType]*TypeStats)
	m.maint = MaintStats{}
	m.mu.Unlock()
}

// FormatTypeStats renders the Figure 4 row for this manager: the
// percentage of requests and blocks in each class.
func (m *Manager) FormatTypeStats() string {
	stats := m.TypeStats()
	var totReq, totBlk int64
	for _, ts := range stats {
		totReq += ts.Requests
		totBlk += ts.Blocks
	}
	if totReq == 0 {
		return "no requests"
	}
	out := ""
	for _, t := range policy.RequestTypes() {
		ts := stats[t]
		out += fmt.Sprintf("%s: %.1f%%/%.1f%% ",
			t, 100*float64(ts.Requests)/float64(totReq), 100*float64(ts.Blocks)/float64(totBlk))
	}
	return out
}

// Wait advances clk past any in-flight background work on both devices
// (asynchronous flushes, dirty evictions). Experiments call it before
// reading final times so background writes are not billed for free. The
// I/O scheduler is drained first so queued background grants land on
// the devices' busy horizons. A zero-length access returns the device's
// busy-until without disturbing its counters.
func (m *Manager) Wait(clk *simclock.Clock) {
	m.storage.Sched().Drain()
	var until time.Duration
	if d := m.storage.HDD(); d != nil {
		if t := d.Access(clk.Now(), device.Read, 0, 0); t > until {
			until = t
		}
	}
	if d := m.storage.SSD(); d != nil {
		if t := d.Access(clk.Now(), device.Read, 0, 0); t > until {
			until = t
		}
	}
	clk.AdvanceTo(until)
}
