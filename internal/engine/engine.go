// Package engine assembles the DBMS prototype: a persistent Database
// (catalog + page store, playing the role of the on-disk database files)
// and disposable Instances (buffer pool + classification-enabled storage
// manager + a hybrid storage system in one of the four evaluation modes).
// The same loaded Database can be attached to a fresh Instance per
// experiment run, exactly like re-running a query against a different
// storage configuration in the paper.
package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/btree"
	"hstoragedb/internal/engine/bufferpool"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/exec"
	"hstoragedb/internal/engine/heap"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/obs"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// Database is the persistent half: schemas plus page contents, held by
// a pluggable storage backend (the extent heap store by default, or an
// LSM tree). It knows nothing about devices or caches.
type Database struct {
	Cat   *catalog.Catalog
	Store pagestore.Backend
}

// InstanceConfig configures one attached engine instance.
type InstanceConfig struct {
	// Storage selects and sizes the storage system under test.
	Storage hybrid.Config
	// BufferPoolPages is the DBMS buffer pool size in pages.
	BufferPoolPages int
	// WorkMem is the per-blocking-operator memory budget in tuples.
	WorkMem int
	// CPUPerTuple is the simulated per-tuple processing cost.
	CPUPerTuple time.Duration
	// DisableRule5 turns off the concurrency registry lookup (ablation).
	DisableRule5 bool
	// DisableTrim suppresses TRIM on temp-file deletion (ablation: the
	// legacy file-system behaviour of Section 4.2.3).
	DisableTrim bool
	// DisableLogClass strips the log classification from WAL traffic
	// (ablation: log writes are delivered as ordinary Rule 4 updates).
	DisableLogClass bool
	// DisableCompactionClass strips the compaction classification from
	// backend maintenance traffic (ablation: flush/compaction writes are
	// delivered as ordinary Rule 4 updates, the way a
	// classification-unaware storage manager would emit them).
	DisableCompactionClass bool
	// Obs optionally attaches an observability set (metrics registry +
	// tracer). It is forwarded to the storage system (scheduler and
	// devices) and the buffer pool; engine-side layers built later (lock
	// manager, WAL, transactions) attach through txn.Manager.Use.
	Obs *obs.Set
}

// DefaultInstanceConfig returns a laptop-scale configuration: hStorage
// mode, a small buffer pool, and spill-prone work memory.
func DefaultInstanceConfig() InstanceConfig {
	return InstanceConfig{
		Storage:         hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 4096},
		BufferPoolPages: 512,
		WorkMem:         4096,
		CPUPerTuple:     300 * time.Nanosecond,
	}
}

// Instance is a running engine over a Database: one storage system, one
// buffer pool, one policy table.
type Instance struct {
	DB   *Database
	Sys  hybrid.System
	Mgr  *storagemgr.Manager
	Pool *bufferpool.Pool
	Obs  *obs.Set
	cfg  InstanceConfig

	nextSID atomic.Int64
}

// NewDatabase creates an empty database over the extent heap backend.
func NewDatabase() *Database {
	return NewDatabaseOn(pagestore.NewStore())
}

// NewDatabaseOn creates an empty database over an explicit storage
// backend (e.g. an lsm.Store).
func NewDatabaseOn(b pagestore.Backend) *Database {
	return &Database{Cat: catalog.New(), Store: b}
}

// NewInstance attaches an engine instance to the database.
func (db *Database) NewInstance(cfg InstanceConfig) (*Instance, error) {
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = 512
	}
	if cfg.WorkMem <= 0 {
		cfg.WorkMem = 4096
	}
	cfg.Storage.Obs = cfg.Obs
	sys, err := hybrid.New(cfg.Storage)
	if err != nil {
		return nil, err
	}
	space := cfg.Storage.Policy
	if space.N == 0 {
		space = dss.DefaultPolicySpace()
	}
	table := policy.NewAssignmentTable(space)
	table.DisableRule5 = cfg.DisableRule5
	table.DisableLogClass = cfg.DisableLogClass
	table.DisableCompactionClass = cfg.DisableCompactionClass
	mgr := storagemgr.New(db.Store, sys, table)
	mgr.DisableTrim = cfg.DisableTrim
	pool := bufferpool.New(mgr, cfg.BufferPoolPages)
	pool.Use(cfg.Obs)
	return &Instance{DB: db, Sys: sys, Mgr: mgr, Pool: pool, Obs: cfg.Obs, cfg: cfg}, nil
}

// Config returns the instance configuration.
func (inst *Instance) Config() InstanceConfig { return inst.cfg }

// Session is one query stream: a logical clock plus an execution context
// factory. Concurrent sessions share the instance (and therefore queue on
// its devices) but advance independent clocks.
type Session struct {
	inst *Instance
	Clk  simclock.Clock
}

// NewSession starts a stream at virtual time zero. Sessions are
// numbered in creation order; the number becomes the session clock's ID,
// which traces use as the track a request's spans land on.
func (inst *Instance) NewSession() *Session {
	s := &Session{inst: inst}
	s.Clk.SetID(inst.nextSID.Add(1))
	return s
}

// BindTenant attributes every storage request this session issues —
// page reads, write-backs, WAL appends through its clock, TRIMs — to
// tenant t, enabling the storage layer's weighted fair sharing and
// per-tenant accounting. Sessions are single-tenant; call it once,
// right after NewSession.
func (s *Session) BindTenant(t dss.TenantID) {
	s.inst.Mgr.BindTenant(&s.Clk, t)
}

// Instance returns the engine instance this session runs on.
func (s *Session) Instance() *Instance { return s.inst }

// Pool returns the instance's buffer pool.
func (s *Session) Pool() *bufferpool.Pool { return s.inst.Pool }

// Ctx builds an execution context on this session's clock.
func (s *Session) Ctx() *exec.Ctx {
	return &exec.Ctx{
		Clk:         &s.Clk,
		Pool:        s.inst.Pool,
		Cat:         s.inst.DB.Cat,
		Mgr:         s.inst.Mgr,
		CPUPerTuple: s.inst.cfg.CPUPerTuple,
		WorkMem:     s.inst.cfg.WorkMem,
	}
}

// Result summarizes one query execution.
type Result struct {
	Rows    []catalog.Tuple
	Elapsed time.Duration
}

// Execute runs a plan to completion on this session: levels are assigned
// (Section 4.2.2), the query's random-access footprint is registered with
// the shared registry for Rule 5, the iterator tree is drained, and the
// footprint is withdrawn. Elapsed is simulated time.
func (s *Session) Execute(root exec.Operator) (Result, error) {
	exec.AssignLevels(root)
	info := exec.ExtractQueryInfo(root)
	reg := s.inst.Mgr.Registry()
	reg.Register(info)
	defer reg.Unregister(info)

	start := s.Clk.Now()
	ctx := s.Ctx()
	rows, err := exec.Run(ctx, root)
	if err != nil {
		return Result{}, err
	}
	return Result{Rows: rows, Elapsed: s.Clk.Now() - start}, nil
}

// ExecuteDiscard runs a plan but drops its output, returning the row
// count and elapsed simulated time.
func (s *Session) ExecuteDiscard(root exec.Operator) (int64, time.Duration, error) {
	exec.AssignLevels(root)
	info := exec.ExtractQueryInfo(root)
	reg := s.inst.Mgr.Registry()
	reg.Register(info)
	defer reg.Unregister(info)

	start := s.Clk.Now()
	ctx := s.Ctx()
	n, err := exec.Drain(ctx, root)
	if err != nil {
		return n, 0, err
	}
	return n, s.Clk.Now() - start, nil
}

// ---- schema & loading ----

// CreateTable registers a table and its backing heap object.
func (db *Database) CreateTable(name string, schema catalog.Schema) (*catalog.TableInfo, error) {
	info, err := db.Cat.AddTable(name, schema)
	if err != nil {
		return nil, err
	}
	if err := db.Store.Create(info.ID); err != nil {
		return nil, err
	}
	return info, nil
}

// Loader bulk-appends tuples into a table through an instance (normally a
// scratch HDD-only instance whose statistics are discarded after loading).
type Loader struct {
	inst *Instance
	sess *Session
	tbl  *catalog.TableInfo
	app  *heap.Appender
}

// NewLoader starts a bulk load into an existing (possibly non-empty)
// table.
func (inst *Instance) NewLoader(table string) (*Loader, error) {
	info, err := inst.DB.Cat.Table(table)
	if err != nil {
		return nil, err
	}
	sess := inst.NewSession()
	file := heap.NewFile(info.ID, info.Schema, policy.Table)
	app := file.NewAppender(&sess.Clk, inst.Pool, inst.DB.Store.Pages(info.ID))
	return &Loader{inst: inst, sess: sess, tbl: info, app: app}, nil
}

// Add appends one tuple and returns its RID.
func (l *Loader) Add(t catalog.Tuple) (catalog.RID, error) { return l.app.Append(t) }

// Close flushes the load and updates the catalog row count.
func (l *Loader) Close() error {
	if err := l.app.Close(); err != nil {
		return err
	}
	l.inst.DB.Cat.SetRows(l.tbl.Name, l.tbl.Rows+l.app.Rows())
	return l.inst.Pool.FlushAll(&l.sess.Clk)
}

// BuildIndex creates and bulk-builds an index over an Int64/Date column.
func (inst *Instance) BuildIndex(name, table, column string) (*catalog.IndexInfo, error) {
	info, err := inst.DB.Cat.Table(table)
	if err != nil {
		return nil, err
	}
	col := info.Schema.Col(column)
	if col < 0 {
		return nil, fmt.Errorf("engine: table %q has no column %q", table, column)
	}
	switch info.Schema.Cols[col].Type {
	case catalog.Int64, catalog.Date:
	default:
		return nil, fmt.Errorf("engine: index column %q must be int-like", column)
	}
	ix, err := inst.DB.Cat.AddIndex(name, table, col)
	if err != nil {
		return nil, err
	}
	if err := inst.DB.Store.Create(ix.ID); err != nil {
		return nil, err
	}

	sess := inst.NewSession()
	file := heap.NewFile(info.ID, info.Schema, policy.Table)
	sc := file.NewScanner(&sess.Clk, inst.Pool, inst.DB.Store.Pages(info.ID))
	var entries []btree.Entry
	for {
		t, rid, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		entries = append(entries, btree.Entry{Key: t[col].I, RID: rid})
	}
	if _, _, err := btree.Build(&sess.Clk, inst.Pool, ix.ID, entries); err != nil {
		return nil, err
	}
	return ix, inst.Pool.FlushAll(&sess.Clk)
}

// ResetStats clears every counter on the instance (storage system,
// devices, buffer pool, request-type table) without touching cache or
// buffer contents. Experiments call it between the warmup and the
// measured run.
func (inst *Instance) ResetStats() {
	inst.Sys.ResetStats()
	inst.Mgr.ResetTypeStats()
	inst.Pool.ResetStats()
	if d := inst.Sys.SSD(); d != nil {
		d.Reset()
	}
	if d := inst.Sys.HDD(); d != nil {
		d.Reset()
	}
}

// DropBufferPool empties the buffer pool without write-back (cold start).
func (inst *Instance) DropBufferPool() { inst.Pool.DropAll() }

// Crash simulates killing the instance: every volatile page (the buffer
// pool, including pinned uncommitted pages) is discarded without
// write-back, and a backend holding volatile state (an LSM memtable)
// drops it and reloads from its durable image. The durable medium
// survives; a fresh instance attached to the same Database plays the
// role of the restarted server and recovers from the WAL.
func (inst *Instance) Crash() {
	inst.Pool.DropAll()
	if v, ok := inst.DB.Store.(pagestore.Volatile); ok {
		// Backend recovery cannot fail upward from a crash simulation;
		// a corrupt durable image would surface on the next access.
		_ = v.Crash()
	}
}
