// Package heap implements slotted heap files: the on-disk representation
// of regular tables and of temporary files. Pages are fetched through the
// buffer pool with the semantic tag of the requesting operator, so a
// sequential scan produces Rule 1 traffic and an RID fetch from an index
// scan produces Rule 2 traffic.
//
// Page layout: [uint16 tupleCount] then, per tuple, [uint16 length]
// followed by the tuple encoding (catalog.EncodeTuple).
package heap

import (
	"encoding/binary"
	"fmt"

	"hstoragedb/internal/engine/bufferpool"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

const pageHeader = 2

// tombstone marks a deleted slot: the slot keeps its position (so RIDs of
// later slots remain valid) but carries no payload.
const tombstone = 0xFFFF

// File is a heap file bound to an object ID and schema.
type File struct {
	Object pagestore.ObjectID
	Schema catalog.Schema
	// Content distinguishes regular tables from temporary data; it rides
	// on every page tag.
	Content policy.ContentType
}

// NewFile describes an existing (or about-to-be-created) heap file.
func NewFile(obj pagestore.ObjectID, schema catalog.Schema, content policy.ContentType) *File {
	return &File{Object: obj, Schema: schema, Content: content}
}

// Appender buffers tuples into pages and writes full pages through the
// buffer pool. Writes carry the file's content type, so appends to
// temporary files classify as temp requests and appends to tables as
// updates.
type Appender struct {
	f    *File
	pool *bufferpool.Pool
	clk  *simclock.Clock

	page    int64
	buf     []byte
	count   uint16
	started bool
	rows    int64
}

// NewAppender starts appending at page `startPage` (pass the table's
// current page count to extend it, or 0 for a fresh file).
func (f *File) NewAppender(clk *simclock.Clock, pool *bufferpool.Pool, startPage int64) *Appender {
	return &Appender{f: f, pool: pool, clk: clk, page: startPage}
}

func (a *Appender) reset() {
	a.buf = make([]byte, pageHeader, pagestore.PageSize)
	a.count = 0
	a.started = true
}

// Append adds one tuple and returns its RID.
func (a *Appender) Append(t catalog.Tuple) (catalog.RID, error) {
	if !a.started {
		a.reset()
	}
	enc, err := catalog.EncodeTuple(nil, a.f.Schema, t)
	if err != nil {
		return catalog.RID{}, err
	}
	need := 2 + len(enc)
	if need > pagestore.PageSize-pageHeader {
		return catalog.RID{}, fmt.Errorf("heap: tuple of %d bytes exceeds page", len(enc))
	}
	if len(a.buf)+need > pagestore.PageSize {
		if err := a.flushPage(); err != nil {
			return catalog.RID{}, err
		}
	}
	rid := catalog.RID{Page: a.page, Slot: a.count}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(enc)))
	a.buf = append(a.buf, l[:]...)
	a.buf = append(a.buf, enc...)
	a.count++
	a.rows++
	return rid, nil
}

// flushPage writes the current page through the buffer pool and extends
// the file's logical size, so a later appender starts past this page even
// while it is still only pool-resident (otherwise two appends between
// write-backs would hand out the same RIDs twice).
func (a *Appender) flushPage() error {
	binary.LittleEndian.PutUint16(a.buf[:2], a.count)
	tag := policy.Tag{Object: a.f.Object, Content: a.f.Content}
	if err := a.pool.Put(a.clk, tag, a.page, a.buf); err != nil {
		return err
	}
	if err := a.pool.Manager().Store().Extend(a.f.Object, a.page+1); err != nil {
		return err
	}
	a.page++
	a.reset()
	return nil
}

// Close flushes the final partial page. Rows reports how many tuples were
// appended; Pages how many pages the file now spans.
func (a *Appender) Close() error {
	if a.started && a.count > 0 {
		return a.flushPage()
	}
	return nil
}

// Rows returns the number of tuples appended so far.
func (a *Appender) Rows() int64 { return a.rows }

// Pages returns the page count after Close.
func (a *Appender) Pages() int64 {
	if a.started && a.count > 0 {
		return a.page + 1
	}
	return a.page
}

// decodePage parses all tuples of a page.
func decodePage(data []byte, schema catalog.Schema) ([]catalog.Tuple, error) {
	if len(data) < pageHeader {
		return nil, fmt.Errorf("heap: short page")
	}
	n := binary.LittleEndian.Uint16(data[:2])
	out := make([]catalog.Tuple, 0, n)
	off := pageHeader
	for i := 0; i < int(n); i++ {
		if off+2 > len(data) {
			return nil, fmt.Errorf("heap: truncated tuple header at slot %d", i)
		}
		l := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if l == tombstone {
			out = append(out, nil) // deleted slot keeps its position
			continue
		}
		if off+l > len(data) {
			return nil, fmt.Errorf("heap: truncated tuple at slot %d", i)
		}
		t, _, err := catalog.DecodeTuple(data[off:off+l], schema)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		off += l
	}
	return out, nil
}

// rewritePage re-encodes decoded tuples (nil = tombstone) into page bytes.
func rewritePage(tuples []catalog.Tuple, schema catalog.Schema) ([]byte, error) {
	buf := make([]byte, pageHeader, pagestore.PageSize)
	binary.LittleEndian.PutUint16(buf[:2], uint16(len(tuples)))
	var l [2]byte
	for _, t := range tuples {
		if t == nil {
			binary.LittleEndian.PutUint16(l[:], tombstone)
			buf = append(buf, l[:]...)
			continue
		}
		enc, err := catalog.EncodeTuple(nil, schema, t)
		if err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint16(l[:], uint16(len(enc)))
		buf = append(buf, l[:]...)
		buf = append(buf, enc...)
	}
	if len(buf) > pagestore.PageSize {
		return nil, fmt.Errorf("heap: rewritten page overflows (%d bytes)", len(buf))
	}
	return buf, nil
}

// Scanner iterates a heap file page by page with a sequential tag.
type Scanner struct {
	f     *File
	pool  *bufferpool.Pool
	clk   *simclock.Clock
	pages int64

	page   int64
	tuples []catalog.Tuple
	idx    int
}

// NewScanner creates a full-file sequential scanner over `pages` pages.
func (f *File) NewScanner(clk *simclock.Clock, pool *bufferpool.Pool, pages int64) *Scanner {
	return &Scanner{f: f, pool: pool, clk: clk, pages: pages}
}

// Next returns the next tuple with its RID; ok=false at end of file.
func (s *Scanner) Next() (catalog.Tuple, catalog.RID, bool, error) {
	for s.idx >= len(s.tuples) {
		if s.page >= s.pages {
			return nil, catalog.RID{}, false, nil
		}
		tag := policy.Tag{Object: s.f.Object, Content: s.f.Content, Pattern: policy.Sequential}
		data, err := s.pool.Get(s.clk, tag, s.page)
		if err != nil {
			return nil, catalog.RID{}, false, err
		}
		s.tuples, err = decodePage(data, s.f.Schema)
		if err != nil {
			return nil, catalog.RID{}, false, err
		}
		s.page++
		s.idx = 0
	}
	t := s.tuples[s.idx]
	rid := catalog.RID{Page: s.page - 1, Slot: uint16(s.idx)}
	s.idx++
	if t == nil {
		// Deleted slot; keep scanning.
		return s.Next()
	}
	return t, rid, true, nil
}

// Fetch retrieves the tuple at rid with a random-access tag carrying the
// issuing operator's plan level.
func (f *File) Fetch(clk *simclock.Clock, pool *bufferpool.Pool, rid catalog.RID, level int) (catalog.Tuple, error) {
	tag := policy.Tag{Object: f.Object, Content: f.Content, Pattern: policy.Random, Level: level}
	data, err := pool.Get(clk, tag, rid.Page)
	if err != nil {
		return nil, err
	}
	tuples, err := decodePage(data, f.Schema)
	if err != nil {
		return nil, err
	}
	if int(rid.Slot) >= len(tuples) {
		// Revalidation: an index entry can transiently point at a slot
		// that is not (or no longer) materialized on the page — e.g. a
		// probe racing an updater, or a post-crash scan over a file
		// extension whose content died with the buffer pool. The row is
		// simply not visible.
		return nil, nil
	}
	// A nil tuple is a tombstone (row deleted, e.g. by a concurrent RF2);
	// callers treat it as "no longer visible" and skip.
	return tuples[rid.Slot], nil
}

// Update rewrites the tuple at rid in place. The page write classifies as
// an update (Rule 4). The rewritten page must still fit; fixed-width
// updates (numeric columns) always do.
func (f *File) Update(clk *simclock.Clock, pool *bufferpool.Pool, rid catalog.RID, t catalog.Tuple, level int) error {
	tag := policy.Tag{Object: f.Object, Content: f.Content, Pattern: policy.Random, Level: level}
	data, err := pool.Get(clk, tag, rid.Page)
	if err != nil {
		return err
	}
	tuples, err := decodePage(data, f.Schema)
	if err != nil {
		return err
	}
	if int(rid.Slot) >= len(tuples) {
		return fmt.Errorf("heap: rid %v slot out of range (%d tuples)", rid, len(tuples))
	}
	if tuples[rid.Slot] == nil {
		return fmt.Errorf("heap: rid %v updates a deleted tuple", rid)
	}
	tuples[rid.Slot] = t
	page, err := rewritePage(tuples, f.Schema)
	if err != nil {
		return err
	}
	writeTag := tag
	writeTag.Update = true
	return pool.Put(clk, writeTag, rid.Page, page)
}

// Delete tombstones the tuple at rid. The page write classifies as an
// update (Rule 4). It returns false if the slot was already deleted.
func (f *File) Delete(clk *simclock.Clock, pool *bufferpool.Pool, rid catalog.RID, level int) (bool, error) {
	tag := policy.Tag{Object: f.Object, Content: f.Content, Pattern: policy.Random, Level: level}
	data, err := pool.Get(clk, tag, rid.Page)
	if err != nil {
		return false, err
	}
	tuples, err := decodePage(data, f.Schema)
	if err != nil {
		return false, err
	}
	if int(rid.Slot) >= len(tuples) {
		return false, fmt.Errorf("heap: rid %v slot out of range (%d tuples)", rid, len(tuples))
	}
	if tuples[rid.Slot] == nil {
		return false, nil
	}
	tuples[rid.Slot] = nil
	page, err := rewritePage(tuples, f.Schema)
	if err != nil {
		return false, err
	}
	writeTag := tag
	writeTag.Update = true
	return true, pool.Put(clk, writeTag, rid.Page, page)
}
