package heap

import (
	"fmt"
	"testing"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/bufferpool"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

type harness struct {
	store *pagestore.Store
	pool  *bufferpool.Pool
	clk   simclock.Clock
}

func newHarness(t *testing.T, bpPages int) *harness {
	t.Helper()
	store := pagestore.NewStore()
	sys, err := hybrid.New(hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 1024})
	if err != nil {
		t.Fatal(err)
	}
	mgr := storagemgr.New(store, sys, policy.NewAssignmentTable(dss.DefaultPolicySpace()))
	return &harness{store: store, pool: bufferpool.New(mgr, bpPages)}
}

func testSchema() catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "k", Type: catalog.Int64},
		catalog.Column{Name: "v", Type: catalog.String},
	)
}

func row(k int64) catalog.Tuple {
	return catalog.Tuple{catalog.IntDatum(k), catalog.StringDatum(fmt.Sprintf("val-%d", k))}
}

func TestAppendScanRoundTrip(t *testing.T) {
	h := newHarness(t, 64)
	_ = h.store.Create(1)
	f := NewFile(1, testSchema(), policy.Table)
	app := f.NewAppender(&h.clk, h.pool, 0)
	const n = 2000
	for i := int64(0); i < n; i++ {
		if _, err := app.Append(row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.pool.FlushAll(&h.clk); err != nil {
		t.Fatal(err)
	}
	if app.Rows() != n {
		t.Fatalf("rows %d", app.Rows())
	}
	if app.Pages() < 2 {
		t.Fatalf("expected multiple pages, got %d", app.Pages())
	}

	sc := f.NewScanner(&h.clk, h.pool, h.store.Pages(1))
	var got int64
	for {
		tup, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if tup[0].I != got {
			t.Fatalf("row %d reads key %d", got, tup[0].I)
		}
		got++
	}
	if got != n {
		t.Fatalf("scanned %d of %d", got, n)
	}
}

func TestFetchByRID(t *testing.T) {
	h := newHarness(t, 64)
	_ = h.store.Create(1)
	f := NewFile(1, testSchema(), policy.Table)
	app := f.NewAppender(&h.clk, h.pool, 0)
	rids := make([]catalog.RID, 0, 500)
	for i := int64(0); i < 500; i++ {
		rid, err := app.Append(row(i))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	_ = app.Close()
	for i, rid := range rids {
		tup, err := f.Fetch(&h.clk, h.pool, rid, 0)
		if err != nil {
			t.Fatal(err)
		}
		if tup[0].I != int64(i) {
			t.Fatalf("rid %v fetched key %d, want %d", rid, tup[0].I, i)
		}
	}
}

func TestDeleteTombstones(t *testing.T) {
	h := newHarness(t, 64)
	_ = h.store.Create(1)
	f := NewFile(1, testSchema(), policy.Table)
	app := f.NewAppender(&h.clk, h.pool, 0)
	var rids []catalog.RID
	for i := int64(0); i < 10; i++ {
		rid, _ := app.Append(row(i))
		rids = append(rids, rid)
	}
	_ = app.Close()
	_ = h.pool.FlushAll(&h.clk)

	ok, err := f.Delete(&h.clk, h.pool, rids[3], 0)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	// Double delete reports false.
	ok, err = f.Delete(&h.clk, h.pool, rids[3], 0)
	if err != nil || ok {
		t.Fatalf("double delete: %v %v", ok, err)
	}
	// Fetch of a tombstone returns nil without error.
	tup, err := f.Fetch(&h.clk, h.pool, rids[3], 0)
	if err != nil || tup != nil {
		t.Fatalf("tombstone fetch: %v %v", tup, err)
	}
	// Other RIDs keep their positions.
	tup, err = f.Fetch(&h.clk, h.pool, rids[4], 0)
	if err != nil || tup[0].I != 4 {
		t.Fatalf("neighbor shifted: %v %v", tup, err)
	}
	// Scan skips the tombstone.
	sc := f.NewScanner(&h.clk, h.pool, h.store.Pages(1))
	count := 0
	for {
		tup, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if tup[0].I == 3 {
			t.Fatal("deleted row visible in scan")
		}
		count++
	}
	if count != 9 {
		t.Fatalf("scan saw %d rows, want 9", count)
	}
}

func TestAppendExtendsExistingFile(t *testing.T) {
	h := newHarness(t, 64)
	_ = h.store.Create(1)
	f := NewFile(1, testSchema(), policy.Table)
	app := f.NewAppender(&h.clk, h.pool, 0)
	for i := int64(0); i < 300; i++ {
		_, _ = app.Append(row(i))
	}
	_ = app.Close()
	firstPages := h.store.Pages(1)

	app2 := f.NewAppender(&h.clk, h.pool, firstPages)
	rid, err := app2.Append(row(300))
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page != firstPages {
		t.Fatalf("extension started at page %d, want %d", rid.Page, firstPages)
	}
	_ = app2.Close()
}

func TestOversizedTupleRejected(t *testing.T) {
	h := newHarness(t, 8)
	_ = h.store.Create(1)
	f := NewFile(1, testSchema(), policy.Table)
	app := f.NewAppender(&h.clk, h.pool, 0)
	big := catalog.Tuple{catalog.IntDatum(1), catalog.StringDatum(string(make([]byte, pagestore.PageSize)))}
	if _, err := app.Append(big); err == nil {
		t.Fatal("oversized tuple accepted")
	}
}

func TestSequentialScanIsSequentialOnDisk(t *testing.T) {
	// A heap scan must produce a (mostly) sequential LBA run on the HDD:
	// the premise behind Rule 1.
	store := pagestore.NewStore()
	sys, _ := hybrid.New(hybrid.Config{Mode: hybrid.HDDOnly})
	mgr := storagemgr.New(store, sys, policy.NewAssignmentTable(dss.DefaultPolicySpace()))
	pool := bufferpool.New(mgr, 8)
	var clk simclock.Clock

	_ = store.Create(1)
	f := NewFile(1, testSchema(), policy.Table)
	app := f.NewAppender(&clk, pool, 0)
	for i := int64(0); i < 3000; i++ {
		_, _ = app.Append(row(i))
	}
	_ = app.Close()
	_ = pool.FlushAll(&clk)
	pool.DropAll()
	sys.HDD().Reset()

	sc := f.NewScanner(&clk, pool, store.Pages(1))
	for {
		_, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	st := sys.HDD().Stats()
	// The I/O scheduler coalesces and reads ahead, so the scan reaches
	// the platter as a handful of large runs: at most a couple of
	// positioning penalties regardless of how many pages were read.
	if st.RandAccess > 2 {
		t.Fatalf("scan not sequential: seq=%d rand=%d", st.SeqAccesses, st.RandAccess)
	}
	if st.BlocksRead < store.Pages(1) {
		t.Fatalf("scan read %d blocks for %d pages", st.BlocksRead, store.Pages(1))
	}
}
