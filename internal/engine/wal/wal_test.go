package wal

import (
	"bytes"
	"testing"
	"time"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/bufferpool"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// testMgr builds a bare storage manager over a fresh store and an
// HDD-only storage system.
func testMgr(t *testing.T, store *pagestore.Store) *storagemgr.Manager {
	t.Helper()
	sys, err := hybrid.New(hybrid.Config{Mode: hybrid.HDDOnly})
	if err != nil {
		t.Fatal(err)
	}
	return storagemgr.New(store, sys, policy.NewAssignmentTable(dss.DefaultPolicySpace()))
}

func newTestPool(mgr *storagemgr.Manager) *bufferpool.Pool {
	return bufferpool.New(mgr, 64)
}

func TestRecordRoundtrip(t *testing.T) {
	recs := []Record{
		{LSN: 1, Txn: 7, Kind: KindBegin},
		{LSN: 2, Txn: 7, Kind: KindHeapInsert, Obj: 12, Page: 99, Image: bytes.Repeat([]byte{0xAB}, 5000)},
		{LSN: 3, Txn: 7, Kind: KindIndexInsert, Obj: 13, Page: 3, Image: []byte{1, 2, 3}},
		{LSN: 4, Txn: 7, Kind: KindCommit},
		{LSN: 5, Txn: 0, Kind: KindCheckpoint},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	buf = append(buf, 0, 0, 0) // end-of-log padding

	off := 0
	for i, want := range recs {
		got, n := parseRecord(buf[off:])
		if n == 0 {
			t.Fatalf("record %d: unexpected end", i)
		}
		off += n
		if got.LSN != want.LSN || got.Txn != want.Txn || got.Kind != want.Kind ||
			got.Obj != want.Obj || got.Page != want.Page || !bytes.Equal(got.Image, want.Image) {
			t.Fatalf("record %d mismatch: got %+v", i, got)
		}
	}
	if _, n := parseRecord(buf[off:]); n != 0 {
		t.Fatal("parser did not stop at the end sentinel")
	}
}

func TestAppendFlushRecover(t *testing.T) {
	store := pagestore.NewStore()
	mgr := testMgr(t, store)
	var clk simclock.Clock

	cfg := Config{SegmentPages: 4, GroupCommitWindow: 10 * time.Microsecond}
	m, err := New(&clk, mgr, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// A committed transaction writing two pages of object 42, and a loser
	// whose records are durable but whose commit record is not.
	if err := store.Create(42); err != nil {
		t.Fatal(err)
	}
	img1 := bytes.Repeat([]byte{0x11}, 4000)
	img2 := bytes.Repeat([]byte{0x22}, 4000)
	loser := bytes.Repeat([]byte{0x66}, 4000)

	mustAppend := func(r Record) LSN {
		t.Helper()
		lsn, err := m.Append(&clk, r)
		if err != nil {
			t.Fatal(err)
		}
		return lsn
	}
	mustAppend(Record{Txn: 1, Kind: KindBegin})
	mustAppend(Record{Txn: 1, Kind: KindHeapInsert, Obj: 42, Page: 0, Image: img1})
	mustAppend(Record{Txn: 1, Kind: KindHeapUpdate, Obj: 42, Page: 1, Image: img2})
	commitLSN := mustAppend(Record{Txn: 1, Kind: KindCommit})
	if err := m.Flush(&clk, commitLSN); err != nil {
		t.Fatal(err)
	}
	mustAppend(Record{Txn: 2, Kind: KindBegin})
	loserLSN := mustAppend(Record{Txn: 2, Kind: KindHeapInsert, Obj: 42, Page: 0, Image: loser})
	if err := m.Flush(&clk, loserLSN); err != nil {
		t.Fatal(err)
	}
	if m.DurableLSN() < loserLSN {
		t.Fatalf("durable LSN %d below %d", m.DurableLSN(), loserLSN)
	}

	// "Crash": recover over the surviving store with a fresh manager.
	store2clk := simclock.Clock{}
	mgr2 := testMgr(t, store)
	m2, stats, err := Recover(&store2clk, mgr2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CommittedTxns != 1 || stats.LoserTxns != 1 {
		t.Fatalf("committed=%d losers=%d", stats.CommittedTxns, stats.LoserTxns)
	}
	if stats.PagesApplied != 2 {
		t.Fatalf("pages applied %d", stats.PagesApplied)
	}
	got, _, err := store.ReadPage(42, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(img1)], img1) {
		t.Fatal("page 0 not redone with the committed image (loser must not win)")
	}
	got, _, err = store.ReadPage(42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(img2)], img2) {
		t.Fatal("page 1 not redone")
	}

	// The recovered manager continues the log: LSNs stay monotonic and
	// the loser's transaction ID is not reused.
	lsn, err := m2.Append(&store2clk, Record{Txn: m2.NextTxnID(), Kind: KindBegin})
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= loserLSN {
		t.Fatalf("recovered LSN %d not past %d", lsn, loserLSN)
	}
	if id := m2.NextTxnID(); id <= 2 {
		t.Fatalf("txn id %d reused", id)
	}
}

func TestSegmentRolloverAndCheckpoint(t *testing.T) {
	store := pagestore.NewStore()
	mgr := testMgr(t, store)
	var clk simclock.Clock

	cfg := Config{SegmentPages: 2, GroupCommitWindow: 0}
	m, err := New(&clk, mgr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Create(7); err != nil {
		t.Fatal(err)
	}

	// Big images force rollovers: 10 committed txns of ~6KB each across
	// 16KB segments.
	img := bytes.Repeat([]byte{0x5A}, 6000)
	for i := 0; i < 10; i++ {
		id := m.NextTxnID()
		if _, err := m.Append(&clk, Record{Txn: id, Kind: KindHeapUpdate, Obj: 7, Page: int64(i), Image: img}); err != nil {
			t.Fatal(err)
		}
		lsn, err := m.Append(&clk, Record{Txn: id, Kind: KindCommit})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Flush(&clk, lsn); err != nil {
			t.Fatal(err)
		}
	}
	if s := m.Stats(); s.Segments < 2 {
		t.Fatalf("expected rollovers, live segments = %d", s.Segments)
	}

	// Recovery across multiple segments applies everything.
	mgr2 := testMgr(t, store)
	var clk2 simclock.Clock
	_, stats, err := Recover(&clk2, mgr2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesApplied != 10 || stats.CommittedTxns != 10 {
		t.Fatalf("recover: %+v", stats)
	}

	// Checkpoint truncates old segments (TRIM) and later recovery still
	// works from the shortened log.
	pool := newTestPool(mgr)
	if err := m.Checkpoint(&clk, pool); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Segments != 1 {
		t.Fatalf("after checkpoint, live segments = %d", s.Segments)
	}
	id := m.NextTxnID()
	if _, err := m.Append(&clk, Record{Txn: id, Kind: KindHeapUpdate, Obj: 7, Page: 20, Image: img}); err != nil {
		t.Fatal(err)
	}
	lsn, err := m.Append(&clk, Record{Txn: id, Kind: KindCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(&clk, lsn); err != nil {
		t.Fatal(err)
	}
	mgr3 := testMgr(t, store)
	var clk3 simclock.Clock
	_, stats, err = Recover(&clk3, mgr3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesApplied != 1 || stats.CommittedTxns != 1 {
		t.Fatalf("post-checkpoint recover: %+v", stats)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("recovery consumed no simulated time")
	}
}

func TestLogTrafficClassified(t *testing.T) {
	store := pagestore.NewStore()
	sys, err := hybrid.New(hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	mgr := storagemgr.New(store, sys, policy.NewAssignmentTable(dss.DefaultPolicySpace()))
	var clk simclock.Clock
	m, err := New(&clk, mgr, Config{SegmentPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	id := m.NextTxnID()
	if _, err := m.Append(&clk, Record{Txn: id, Kind: KindHeapUpdate, Obj: 99, Page: 0, Image: bytes.Repeat([]byte{1}, 3000)}); err != nil {
		t.Fatal(err)
	}
	lsn, err := m.Append(&clk, Record{Txn: id, Kind: KindCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(&clk, lsn); err != nil {
		t.Fatal(err)
	}
	snap := sys.Stats()
	if snap.Class(dss.ClassLog).WriteBlocks == 0 {
		t.Fatal("log writes not classified under dss.ClassLog")
	}
	ts := mgr.TypeStats()
	if ts[policy.LogRequest].Blocks == 0 {
		t.Fatal("log traffic not counted as LogRequest")
	}
}
