// Package wal implements the write-ahead log of the OLTP extension
// (Section 8 of the paper names OLTP as the ongoing work; log data is the
// request class that extension adds to the classification of Section 4).
//
// The log is a sequence of LSN-stamped records stored in fixed-size
// segment files laid out on the simulated device through the same
// classification-enabled storage manager every other object uses — so
// every log page write reaches the storage system tagged policy.Log and
// classified dss.ClassLog, the pinned highest-priority class.
//
// Recovery is ARIES-style redo-only under a no-steal buffer pool: each
// data-page record carries the full post-image of the page it modified
// (the "physical redo" of PostgreSQL's full-page writes), so replaying
// the records of committed transactions in LSN order is idempotent no
// matter which pages reached the disk before the crash, and uncommitted
// transactions need no undo because their pages were pinned in memory
// and died with it.
//
// Commit durability uses a group-commit window on the committing
// session's simulated clock: flushes are spaced at least one window
// apart, and a commit whose records were already covered by another
// session's flush pays only the wait, not another device write.
package wal

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hstoragedb/internal/engine/bufferpool"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/obs"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// LSN is a log sequence number: the position of a record in the log.
type LSN int64

// Kind enumerates log record types.
type Kind uint8

const (
	// kindEnd (zero) marks the end of the durable log: unwritten log
	// pages read as zeroes, so the recovery scan stops there naturally.
	kindEnd Kind = 0

	// KindBegin opens a transaction.
	KindBegin Kind = 1
	// KindCommit makes a transaction's effects durable.
	KindCommit Kind = 2
	// KindAbort records a rolled-back transaction (advisory: a
	// transaction without a commit record is never redone).
	KindAbort Kind = 3
	// KindHeapInsert records a heap page post-image after an insert.
	KindHeapInsert Kind = 4
	// KindHeapUpdate records a heap page post-image after an update.
	KindHeapUpdate Kind = 5
	// KindHeapDelete records a heap page post-image after a delete.
	KindHeapDelete Kind = 6
	// KindIndexInsert records an index page post-image after an insert.
	KindIndexInsert Kind = 7
	// KindIndexDelete records an index page post-image after a delete.
	KindIndexDelete Kind = 8
	// KindCheckpoint marks a fuzzy checkpoint: every committed effect
	// below this LSN is on disk, so earlier segments can be truncated.
	KindCheckpoint Kind = 9

	// KindPrepare marks a transaction prepared under two-phase commit:
	// its page records precede it in the log, its locks are still held,
	// and its fate belongs to the coordinator. The record's Page field
	// carries the global transaction ID (GTID) so recovery can match the
	// local transaction against the coordinator's decision log. A
	// prepared transaction without a later commit/abort record is
	// in-doubt at recovery, not a loser.
	KindPrepare Kind = 10
	// KindDecideCommit is a coordinator decision-log record: the global
	// transaction (Txn holds the GTID) is committed. Participants that
	// recover in-doubt redo their prepared page records iff this record
	// exists; its absence means abort (presumed abort).
	KindDecideCommit Kind = 11
	// KindDecideAbort is the advisory abort decision: recovery treats a
	// missing decision as abort anyway, but logging it lets the decision
	// log read like the history it is.
	KindDecideAbort Kind = 12

	// maxKind is the highest valid kind; parseRecord treats anything
	// above it as the torn tail of a crashed write.
	maxKind = KindDecideAbort
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindHeapInsert:
		return "heap-insert"
	case KindHeapUpdate:
		return "heap-update"
	case KindHeapDelete:
		return "heap-delete"
	case KindIndexInsert:
		return "index-insert"
	case KindIndexDelete:
		return "index-delete"
	case KindCheckpoint:
		return "checkpoint"
	case KindPrepare:
		return "prepare"
	case KindDecideCommit:
		return "decide-commit"
	case KindDecideAbort:
		return "decide-abort"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// PageRecord reports whether the kind carries a page post-image.
func (k Kind) PageRecord() bool { return k >= KindHeapInsert && k <= KindIndexDelete }

// contentOf maps a page-record kind to the content type of the page it
// redoes, so replay writes classify like the original update traffic.
func contentOf(k Kind) policy.ContentType {
	if k == KindIndexInsert || k == KindIndexDelete {
		return policy.Index
	}
	return policy.Table
}

// Record is one log record. Page records carry the full post-image of the
// page they modified.
type Record struct {
	LSN   LSN
	Txn   int64
	Kind  Kind
	Obj   pagestore.ObjectID
	Page  int64
	Image []byte
}

// Config sizes the log.
type Config struct {
	// BaseObject is the first object ID of the reserved WAL range: the
	// metadata page lives there and segment k at BaseObject+1+k.
	BaseObject pagestore.ObjectID
	// SegmentPages is the size of one log segment in pages.
	SegmentPages int
	// GroupCommitWindow is the minimum spacing between log flushes on the
	// simulated clock: commits arriving inside the window share a flush.
	GroupCommitWindow time.Duration
}

// DefaultBaseObject starts the reserved WAL object range (below the
// temporary-file range at 1<<30).
const DefaultBaseObject pagestore.ObjectID = 1 << 29

// DefaultConfig returns the sizing used by tests and experiments.
func DefaultConfig() Config {
	return Config{
		BaseObject:        DefaultBaseObject,
		SegmentPages:      256,
		GroupCommitWindow: 50 * time.Microsecond,
	}
}

func (c Config) withDefaults() Config {
	if c.BaseObject == 0 {
		c.BaseObject = DefaultBaseObject
	}
	if c.SegmentPages <= 1 {
		c.SegmentPages = 256
	}
	return c
}

// segCapacity is the byte capacity of one segment.
func (c Config) segCapacity() int { return c.SegmentPages * pagestore.PageSize }

// logTag is the semantic tag of all WAL I/O.
func logTag(obj pagestore.ObjectID) policy.Tag {
	return policy.Tag{Object: obj, Content: policy.Log, Pattern: policy.Sequential}
}

// Stats are cumulative log-manager counters.
type Stats struct {
	Appends     int64
	Flushes     int64
	PageWrites  int64
	Checkpoints int64
	Segments    int64 // live segment count
	DurableLSN  LSN
}

// Manager is the log manager: it owns the active segment buffer and the
// durability horizon. All methods are safe for concurrent use.
type Manager struct {
	mu  sync.Mutex
	cfg Config
	mgr *storagemgr.Manager

	segBuf     []byte // active segment content, [0, segLen)
	segLen     int
	flushedLen int   // bytes durable in the active segment
	activeSeg  int64 // sequence number of the active segment
	oldestSeg  int64 // first live segment

	nextLSN       LSN
	lastLSN       LSN // last appended
	durableLSN    LSN
	checkpointLSN LSN
	nextTxn       atomic.Int64

	lastFlushStart simclock.Duration
	lastFlushDone  simclock.Duration

	// watermark is the commit-LSN watermark of the MVCC snapshot store:
	// the highest commit LSN whose transaction is durable and whose page
	// versions are sealed. Snapshots begin here. Atomic (read on every
	// snapshot begin, outside mu).
	watermark atomic.Int64

	// indoubt holds the prepared-but-undecided transactions Recover
	// found, keyed by local transaction ID, until ResolveInDoubt settles
	// them. Guarded by mu.
	indoubt map[int64]inDoubt
	// decisions are the coordinator decisions Recover found in this log
	// (GTID -> committed), populated only when recovering a decision
	// log. Guarded by mu.
	decisions map[int64]bool

	stats Stats

	// Registry instruments and tracer, nil (inert) until Use attaches a
	// set.
	tracer       *obs.Tracer
	mAppends     *obs.Counter
	mFlushes     *obs.Counter
	mPageWrites  *obs.Counter
	mCheckpoints *obs.Counter
}

// Use attaches an observability set: the log manager registers its
// counters (`wal.appends`, `wal.flushes`, `wal.pagewrites`,
// `wal.checkpoints`) and records `wal`/`flush` and `wal`/`checkpoint`
// spans on the simulated timeline. A nil set detaches.
func (m *Manager) Use(set *obs.Set) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tracer = set.Trace()
	reg := set.Registry()
	if reg == nil {
		m.mAppends, m.mFlushes, m.mPageWrites, m.mCheckpoints = nil, nil, nil, nil
		return
	}
	m.mAppends = reg.Counter("wal.appends")
	m.mFlushes = reg.Counter("wal.flushes")
	m.mPageWrites = reg.Counter("wal.pagewrites")
	m.mCheckpoints = reg.Counter("wal.checkpoints")
}

// ---- record encoding ----

func appendRecord(dst []byte, r Record) []byte {
	dst = append(dst, byte(r.Kind))
	dst = binary.AppendVarint(dst, r.Txn)
	dst = binary.AppendVarint(dst, int64(r.LSN))
	dst = binary.AppendUvarint(dst, uint64(r.Obj))
	dst = binary.AppendVarint(dst, r.Page)
	dst = binary.AppendUvarint(dst, uint64(len(r.Image)))
	dst = append(dst, r.Image...)
	return dst
}

// recordSize returns the encoded size of r without materializing it.
func recordSize(r Record) int {
	var w [binary.MaxVarintLen64]byte
	n := 1
	n += binary.PutVarint(w[:], r.Txn)
	n += binary.PutVarint(w[:], int64(r.LSN))
	n += binary.PutUvarint(w[:], uint64(r.Obj))
	n += binary.PutVarint(w[:], r.Page)
	n += binary.PutUvarint(w[:], uint64(len(r.Image)))
	return n + len(r.Image)
}

// parseRecord decodes one record at the head of src. A zero kind byte (or
// a truncated record: the torn tail of a crashed write) consumes nothing,
// signalling the end of the durable log.
func parseRecord(src []byte) (Record, int) {
	if len(src) == 0 || Kind(src[0]) == kindEnd || Kind(src[0]) > maxKind {
		return Record{}, 0
	}
	r := Record{Kind: Kind(src[0])}
	off := 1
	v, n := binary.Varint(src[off:])
	if n <= 0 {
		return Record{}, 0
	}
	r.Txn = v
	off += n
	v, n = binary.Varint(src[off:])
	if n <= 0 {
		return Record{}, 0
	}
	r.LSN = LSN(v)
	off += n
	u, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return Record{}, 0
	}
	r.Obj = pagestore.ObjectID(u)
	off += n
	v, n = binary.Varint(src[off:])
	if n <= 0 {
		return Record{}, 0
	}
	r.Page = v
	off += n
	u, n = binary.Uvarint(src[off:])
	if n <= 0 || off+n+int(u) > len(src) {
		return Record{}, 0
	}
	off += n
	if u > 0 {
		r.Image = src[off : off+int(u)]
		off += int(u)
	}
	return r, off
}

// ---- metadata page ----

const metaMagic = 0x68574C31 // "hWL1"

func encodeMeta(oldest, next int64, ckpt LSN) []byte {
	buf := make([]byte, 28)
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[4:], uint64(oldest))
	binary.LittleEndian.PutUint64(buf[12:], uint64(next))
	binary.LittleEndian.PutUint64(buf[20:], uint64(ckpt))
	return buf
}

func decodeMeta(data []byte) (oldest, next int64, ckpt LSN, err error) {
	if len(data) < 28 || binary.LittleEndian.Uint32(data[0:]) != metaMagic {
		return 0, 0, 0, fmt.Errorf("wal: bad metadata page")
	}
	return int64(binary.LittleEndian.Uint64(data[4:])),
		int64(binary.LittleEndian.Uint64(data[12:])),
		LSN(binary.LittleEndian.Uint64(data[20:])), nil
}

func (m *Manager) segObject(seq int64) pagestore.ObjectID {
	return m.cfg.BaseObject + 1 + pagestore.ObjectID(seq)
}

// Exists reports whether a WAL is present in the backend (i.e. whether
// a previous incarnation must be recovered rather than created).
func Exists(store pagestore.Backend, cfg Config) bool {
	return store.Exists(cfg.withDefaults().BaseObject)
}

// New creates a fresh log: metadata page plus the first segment. It fails
// if a WAL already exists in the store (use Recover instead).
func New(clk *simclock.Clock, mgr *storagemgr.Manager, cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	m := &Manager{cfg: cfg, mgr: mgr, nextLSN: 1,
		segBuf: make([]byte, 0, cfg.segCapacity())}
	m.nextTxn.Store(1)
	if err := mgr.Store().Create(cfg.BaseObject); err != nil {
		return nil, fmt.Errorf("wal: log already exists (recover it instead): %w", err)
	}
	if err := mgr.Store().Create(m.segObject(0)); err != nil {
		return nil, err
	}
	if err := m.writeMeta(clk); err != nil {
		return nil, err
	}
	return m, nil
}

// writeMeta persists the metadata page. Caller holds m.mu (or is alone).
func (m *Manager) writeMeta(clk *simclock.Clock) error {
	return m.mgr.WritePage(clk, logTag(m.cfg.BaseObject), 0,
		encodeMeta(m.oldestSeg, m.activeSeg+1, m.checkpointLSN))
}

// NextTxnID allocates a transaction identifier. It is deliberately
// lock-free: Begin must not queue behind a committer's log force (the
// WAL mutex is held across it), both for latency and because a stream
// blocked there cannot park itself for a closed scheduler population.
func (m *Manager) NextTxnID() int64 {
	return m.nextTxn.Add(1) - 1
}

// Append buffers one record and returns its LSN. No log I/O happens
// unless the record forces a segment rollover; durability comes from
// Flush. The image is copied into the segment buffer.
func (m *Manager) Append(clk *simclock.Clock, r Record) (LSN, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r.LSN = m.nextLSN
	size := recordSize(r)
	if size > m.cfg.segCapacity() {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds segment capacity", size)
	}
	if m.segLen+size > m.cfg.segCapacity() {
		if err := m.rollover(clk); err != nil {
			return 0, err
		}
	}
	m.nextLSN++
	m.lastLSN = r.LSN
	m.segBuf = appendRecord(m.segBuf, r)
	m.segLen = len(m.segBuf)
	m.stats.Appends++
	m.mAppends.Inc()
	return r.LSN, nil
}

// rollover finalizes the active segment and opens the next one. Caller
// holds m.mu.
func (m *Manager) rollover(clk *simclock.Clock) error {
	if err := m.flushLocked(clk); err != nil {
		return err
	}
	m.activeSeg++
	if err := m.mgr.Store().Create(m.segObject(m.activeSeg)); err != nil {
		return err
	}
	m.segBuf = m.segBuf[:0]
	m.segLen, m.flushedLen = 0, 0
	return m.writeMeta(clk)
}

// flushLocked writes every unflushed page of the active segment and
// stamps the flush completion time — whoever triggered it (an explicit
// Flush, a rollover inside Append, a checkpoint), so a commit covered by
// someone else's flush advances to a meaningful instant. Caller holds
// m.mu.
func (m *Manager) flushLocked(clk *simclock.Clock) error {
	if m.flushedLen >= m.segLen {
		m.durableLSN = m.lastLSN
		return nil
	}
	obj := m.segObject(m.activeSeg)
	first := int64(m.flushedLen / pagestore.PageSize)
	last := int64((m.segLen - 1) / pagestore.PageSize)
	flushStart := clk.Now()
	for p := first; p <= last; p++ {
		lo := int(p) * pagestore.PageSize
		hi := lo + pagestore.PageSize
		if hi > m.segLen {
			hi = m.segLen
		}
		if err := m.mgr.WritePage(clk, logTag(obj), p, m.segBuf[lo:hi]); err != nil {
			return err
		}
		m.stats.PageWrites++
		m.mPageWrites.Inc()
	}
	m.flushedLen = m.segLen
	m.durableLSN = m.lastLSN
	m.lastFlushDone = clk.Now()
	m.stats.Flushes++
	m.mFlushes.Inc()
	if m.tracer != nil {
		m.tracer.Span("wal", "flush", clk.ID(), flushStart, clk.Now()-flushStart,
			map[string]any{"pages": last - first + 1, "durable_lsn": int64(m.durableLSN)})
	}
	return nil
}

// Flush makes every record up to lsn durable. If an earlier flush already
// covered lsn, the caller only advances to that flush's completion time
// (the group-commit case); otherwise the flush is gated to at least one
// GroupCommitWindow after the previous one and writes the segment tail.
func (m *Manager) Flush(clk *simclock.Clock, lsn LSN) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lsn <= m.durableLSN {
		clk.AdvanceTo(m.lastFlushDone)
		return nil
	}
	tick := m.lastFlushStart + m.cfg.GroupCommitWindow
	if t := clk.Now(); t > tick {
		tick = t
	}
	clk.AdvanceTo(tick)
	m.lastFlushStart = tick
	return m.flushLocked(clk)
}

// Checkpoint flushes the buffer pool's committed dirty pages, appends a
// checkpoint record, forces the log, and truncates every segment before
// the active one — their blocks are TRIMmed out of the cache. The caller
// must guarantee no transaction is mid-flight (the transaction manager's
// drain barrier holds new transactions at Begin and waits out in-flight
// ones before calling here).
func (m *Manager) Checkpoint(clk *simclock.Clock, pool *bufferpool.Pool) error {
	ckptStart := clk.Now()
	if err := pool.FlushAll(clk); err != nil {
		return err
	}
	// The backend must hold everything the pool just flushed durably
	// before the checkpoint record promises it: an LSM memtable flushes
	// to its tree and persists its manifest here.
	if err := m.mgr.Sync(clk); err != nil {
		return err
	}
	lsn, err := m.Append(clk, Record{Kind: KindCheckpoint})
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.flushLocked(clk); err != nil {
		return err
	}
	m.checkpointLSN = lsn
	m.stats.Checkpoints++
	m.mCheckpoints.Inc()
	// Everything below the checkpoint is committed and on disk: the
	// snapshot watermark may advance past any pre-checkpoint commit.
	m.PublishCommit(lsn)
	for seq := m.oldestSeg; seq < m.activeSeg; seq++ {
		if err := m.mgr.DeleteObject(clk, m.segObject(seq)); err != nil {
			return err
		}
	}
	m.oldestSeg = m.activeSeg
	if m.tracer != nil {
		m.tracer.Span("wal", "checkpoint", clk.ID(), ckptStart, clk.Now()-ckptStart,
			map[string]any{"lsn": int64(lsn)})
	}
	return m.writeMeta(clk)
}

// Destroy deletes every WAL object (segments and metadata), TRIMming
// their blocks. Experiments call it between runs that share a database.
func (m *Manager) Destroy(clk *simclock.Clock) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for seq := m.oldestSeg; seq <= m.activeSeg; seq++ {
		if err := m.mgr.DeleteObject(clk, m.segObject(seq)); err != nil {
			return err
		}
	}
	return m.mgr.DeleteObject(clk, m.cfg.BaseObject)
}

// DurableLSN returns the durability horizon.
func (m *Manager) DurableLSN() LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.durableLSN
}

// PublishCommit advances the commit-LSN watermark to lsn (monotonic: a
// lower value is a no-op). The transaction layer publishes a commit here
// only after its commit record is durable and its page versions are
// sealed, so a snapshot taken at the watermark observes a consistent
// committed state.
func (m *Manager) PublishCommit(lsn LSN) {
	for {
		cur := m.watermark.Load()
		if int64(lsn) <= cur || m.watermark.CompareAndSwap(cur, int64(lsn)) {
			return
		}
	}
}

// CommitWatermark returns the current commit-LSN watermark: the snapshot
// LSN a read-only transaction beginning now uses.
func (m *Manager) CommitWatermark() LSN {
	return LSN(m.watermark.Load())
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Segments = m.activeSeg - m.oldestSeg + 1
	s.DurableLSN = m.durableLSN
	return s
}

// ---- recovery ----

// RecoveryStats summarizes one recovery run.
type RecoveryStats struct {
	Segments      int
	Records       int
	CommittedTxns int
	LoserTxns     int // transactions without a commit record: discarded
	// InDoubtTxns counts prepared-but-undecided transactions: their page
	// records are retained, not replayed, until ResolveInDoubt settles
	// them against the coordinator's decision log.
	InDoubtTxns  int
	PagesApplied int
	Elapsed      time.Duration
}

// inDoubt is one prepared-but-undecided transaction held back by
// recovery: its global transaction ID and the page records to redo if
// the coordinator's decision turns out to be commit.
type inDoubt struct {
	gtid    int64
	records []Record
}

// InDoubtTxn identifies one prepared-but-undecided transaction surfaced
// by Recover, pairing the participant-local transaction ID with the
// global transaction ID its prepare record carried.
type InDoubtTxn struct {
	Txn  int64
	GTID int64
}

// Recover opens an existing WAL after a crash: it scans every live
// segment, redoes the page records of committed transactions in LSN
// order, and returns a manager positioned at the end of the log. Log
// reads classify under the log class; redo writes classify as ordinary
// updates (Rule 4). The caller's instance must be fresh: a cold buffer
// pool over the surviving page store.
func Recover(clk *simclock.Clock, mgr *storagemgr.Manager, cfg Config) (*Manager, *RecoveryStats, error) {
	cfg = cfg.withDefaults()
	start := clk.Now()
	m := &Manager{cfg: cfg, mgr: mgr, nextLSN: 1,
		segBuf: make([]byte, 0, cfg.segCapacity())}
	m.nextTxn.Store(1)
	meta, err := mgr.ReadPage(clk, logTag(cfg.BaseObject), 0)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: no log to recover: %w", err)
	}
	oldest, next, ckpt, err := decodeMeta(meta)
	if err != nil {
		return nil, nil, err
	}
	m.oldestSeg, m.activeSeg, m.checkpointLSN = oldest, next-1, ckpt

	stats := &RecoveryStats{}
	var records []Record
	for seq := oldest; seq < next; seq++ {
		obj := m.segObject(seq)
		stream := make([]byte, 0, cfg.segCapacity())
		parsed := 0
		end := false
		for p := 0; p < cfg.SegmentPages && !end; p++ {
			data, err := mgr.ReadPage(clk, logTag(obj), int64(p))
			if err != nil {
				return nil, nil, err
			}
			stream = append(stream, data...)
			for {
				r, n := parseRecord(stream[parsed:])
				if n == 0 {
					// A zero kind byte is the end of the durable log; a
					// nonzero stall is a record spanning into the next
					// page — keep reading.
					if parsed < len(stream) && stream[parsed] == 0 {
						end = true
					}
					break
				}
				parsed += n
				records = append(records, r)
			}
		}
		stats.Segments++
		if seq == m.activeSeg {
			// Reposition the manager at the end of the recovered stream.
			m.segBuf = append(m.segBuf, stream[:parsed]...)
			m.segLen, m.flushedLen = parsed, parsed
		}
	}
	stats.Records = len(records)

	committed := make(map[int64]bool)
	aborted := make(map[int64]bool)
	prepared := make(map[int64]int64) // local txn -> GTID
	maxCommit := m.checkpointLSN
	for _, r := range records {
		if r.LSN >= m.nextLSN {
			m.nextLSN = r.LSN + 1
		}
		if r.Txn >= m.nextTxn.Load() {
			m.nextTxn.Store(r.Txn + 1)
		}
		switch r.Kind {
		case KindCommit:
			committed[r.Txn] = true
			if r.LSN > maxCommit {
				maxCommit = r.LSN
			}
		case KindAbort:
			aborted[r.Txn] = true
		case KindPrepare:
			prepared[r.Txn] = r.Page
		case KindDecideCommit:
			if m.decisions == nil {
				m.decisions = make(map[int64]bool)
			}
			m.decisions[r.Txn] = true
		case KindDecideAbort:
			if m.decisions == nil {
				m.decisions = make(map[int64]bool)
			}
			m.decisions[r.Txn] = false
		}
	}
	// Prepared transactions without a decision are in-doubt: their page
	// records are held back (neither replayed nor discarded) until the
	// coordinator's decision log settles them through ResolveInDoubt.
	for id, gtid := range prepared {
		if committed[id] || aborted[id] {
			continue
		}
		d := inDoubt{gtid: gtid}
		for _, r := range records {
			if r.Txn == id && r.Kind.PageRecord() {
				d.records = append(d.records, r)
			}
		}
		if m.indoubt == nil {
			m.indoubt = make(map[int64]inDoubt)
		}
		m.indoubt[id] = d
	}
	if m.checkpointLSN >= m.nextLSN {
		m.nextLSN = m.checkpointLSN + 1
	}
	m.lastLSN = m.nextLSN - 1
	m.durableLSN = m.lastLSN
	// The recovered state is exactly the committed single-version state:
	// snapshots may begin at the newest recovered commit immediately.
	m.watermark.Store(int64(maxCommit))

	// Redo in LSN order: committed page images past the last checkpoint
	// only — the checkpoint flushed everything older, and each record
	// carries the full post-image, so replay is idempotent.
	for _, r := range records {
		if !r.Kind.PageRecord() || !committed[r.Txn] || r.LSN <= m.checkpointLSN {
			continue
		}
		tag := policy.Tag{Object: r.Obj, Content: contentOf(r.Kind), Pattern: policy.Random, Update: true}
		if err := mgr.WritePage(clk, tag, r.Page, r.Image); err != nil {
			return nil, nil, err
		}
		stats.PagesApplied++
	}
	// Count transactions with activity past the checkpoint: the ones
	// recovery actually decided about. Coordinator decision records are
	// not transaction activity in this log (their Txn field is a GTID),
	// so they are excluded.
	active := make(map[int64]bool)
	for _, r := range records {
		if r.Txn != 0 && r.LSN > m.checkpointLSN &&
			r.Kind != KindDecideCommit && r.Kind != KindDecideAbort {
			active[r.Txn] = true
		}
	}
	for id := range active {
		switch {
		case committed[id]:
			stats.CommittedTxns++
		case m.indoubt != nil && hasInDoubt(m.indoubt, id):
			stats.InDoubtTxns++
		default:
			stats.LoserTxns++
		}
	}
	stats.Elapsed = clk.Now() - start
	return m, stats, nil
}

func hasInDoubt(m map[int64]inDoubt, id int64) bool {
	_, ok := m[id]
	return ok
}

// InDoubt lists the prepared-but-undecided transactions Recover held
// back, in ascending local-transaction order.
func (m *Manager) InDoubt() []InDoubtTxn {
	m.mu.Lock()
	out := make([]InDoubtTxn, 0, len(m.indoubt))
	for id, d := range m.indoubt {
		out = append(out, InDoubtTxn{Txn: id, GTID: d.gtid})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Txn < out[j].Txn })
	return out
}

// Decisions returns the coordinator decisions Recover found in this log,
// keyed by GTID (true = commit). Only a coordinator's decision log
// carries decide records; recovering a participant log yields an empty
// map.
func (m *Manager) Decisions() map[int64]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int64]bool, len(m.decisions))
	for gtid, c := range m.decisions {
		out[gtid] = c
	}
	return out
}

// ResolveInDoubt settles one in-doubt transaction against the
// coordinator's verdict. Commit redoes the retained page records and
// logs a commit record (presumed abort: the decision record already made
// the outcome durable at the coordinator, so this is the participant
// catching up); abort logs only the abort record — no-steal means no
// undo. Either way the outcome is forced durable before returning and
// the transaction leaves the in-doubt set.
func (m *Manager) ResolveInDoubt(clk *simclock.Clock, txnID int64, commit bool) error {
	m.mu.Lock()
	d, ok := m.indoubt[txnID]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("wal: txn %d is not in doubt", txnID)
	}
	delete(m.indoubt, txnID)
	m.mu.Unlock()
	if commit {
		for _, r := range d.records {
			tag := policy.Tag{Object: r.Obj, Content: contentOf(r.Kind), Pattern: policy.Random, Update: true}
			if err := m.mgr.WritePage(clk, tag, r.Page, r.Image); err != nil {
				return err
			}
		}
	}
	kind := KindAbort
	if commit {
		kind = KindCommit
	}
	lsn, err := m.Append(clk, Record{Txn: txnID, Kind: kind, Page: d.gtid})
	if err != nil {
		return err
	}
	if err := m.Flush(clk, lsn); err != nil {
		return err
	}
	if commit {
		m.PublishCommit(lsn)
	}
	return nil
}
