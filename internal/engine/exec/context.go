// Package exec implements the query execution engine: an iterator-model
// operator tree annotated with the plan-level information hStorage-DB
// extracts from the optimizer (Section 4.2), plus the temporary-file
// machinery whose lifetime drives Rule 3.
package exec

import (
	"time"

	"hstoragedb/internal/engine/bufferpool"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// Ctx carries everything an operator needs at runtime. One Ctx serves one
// query execution on one stream clock.
type Ctx struct {
	Clk  *simclock.Clock
	Pool *bufferpool.Pool
	Cat  *catalog.Catalog
	Mgr  *storagemgr.Manager

	// CPUPerTuple is the simulated processing cost charged for every
	// tuple an operator handles. It keeps CPU-bound queries (Q1) from
	// looking purely I/O-bound.
	CPUPerTuple time.Duration

	// WorkMem is the number of tuples a blocking operator may hold in
	// memory before spilling to temporary files.
	WorkMem int

	// Tuples counts tuple-processing steps, for CPU accounting checks.
	Tuples int64

	// temps tracks the temporary files created during this query so
	// stray ones can be reclaimed at Close.
	temps []*TempFile
}

// ChargeTuples advances the stream clock by n tuple-processing costs.
func (c *Ctx) ChargeTuples(n int) {
	if n <= 0 {
		return
	}
	c.Tuples += int64(n)
	if c.CPUPerTuple > 0 {
		c.Clk.Advance(time.Duration(n) * c.CPUPerTuple)
	}
}

// Operator is a pull-based executor node. The contract is
// Open → Next* → Close; Close must be idempotent.
type Operator interface {
	// Children returns the operator's inputs in execution order (for a
	// hash join: build first, probe second).
	Children() []Operator
	// Blocking reports whether this operator must consume its entire
	// input before producing output (hash build, sort) — Section 4.2.2's
	// blocking operators that trigger level recalculation.
	Blocking() bool
	// Access describes the storage object this operator reads directly,
	// if any (leaf operators only).
	Access() (AccessInfo, bool)
	// SetLevel installs the plan level computed by AssignLevels.
	SetLevel(level int)
	// Level returns the operator's (possibly recalculated) plan level.
	Level() int

	Open(ctx *Ctx) error
	Next(ctx *Ctx) (catalog.Tuple, bool, error)
	Close(ctx *Ctx) error
}

// AccessInfo describes a leaf operator's storage footprint: which objects
// it touches and whether the accesses are sequential or random.
type AccessInfo struct {
	// Objects lists the touched object IDs (an index scan lists both the
	// index and its table).
	Objects []pagestore.ObjectID
	// Random reports whether the accesses are random (index scan) or
	// sequential (heap scan).
	Random bool
}

// base provides the Level bookkeeping shared by all operators.
type base struct {
	level int
}

func (b *base) SetLevel(l int) { b.level = l }
func (b *base) Level() int     { return b.level }

// Run drains an operator tree and returns all produced tuples. Close is
// always called, even on error.
func Run(ctx *Ctx, op Operator) ([]catalog.Tuple, error) {
	if err := op.Open(ctx); err != nil {
		_ = op.Close(ctx)
		return nil, err
	}
	var out []catalog.Tuple
	for {
		t, ok, err := op.Next(ctx)
		if err != nil {
			_ = op.Close(ctx)
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	err := op.Close(ctx)
	ctx.ReclaimTemps()
	return out, err
}

// Drain consumes an operator tree, discarding output but counting rows.
func Drain(ctx *Ctx, op Operator) (int64, error) {
	if err := op.Open(ctx); err != nil {
		_ = op.Close(ctx)
		return 0, err
	}
	var n int64
	for {
		_, ok, err := op.Next(ctx)
		if err != nil {
			_ = op.Close(ctx)
			return n, err
		}
		if !ok {
			break
		}
		n++
	}
	err := op.Close(ctx)
	ctx.ReclaimTemps()
	return n, err
}
