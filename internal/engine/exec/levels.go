package exec

import (
	"sort"

	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/pagestore"
)

// AssignLevels implements Section 4.2.2's level computation over an
// operator tree:
//
//   - The root is on the highest level; the leaf with the longest
//     distance from the root is on Level 0.
//   - For each blocking operator (hash build, sort), the operators that
//     cannot proceed until it finishes — its ancestors and the subtrees
//     that execute after it — have their levels recalculated as if the
//     blocking operator were at Level 0.
//
// It installs the resulting level on every node via SetLevel and returns
// the number of levels in the tree.
func AssignLevels(root Operator) int {
	depth := map[Operator]int{}
	var order []Operator

	var walk func(op Operator, d int)
	walk = func(op Operator, d int) {
		depth[op] = d
		order = append(order, op)
		for _, c := range op.Children() {
			walk(c, d+1)
		}
	}
	walk(root, 0)

	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	level := map[Operator]int{}
	for op, d := range depth {
		level[op] = maxDepth - d
	}

	// Blocking recalculation, deepest blocking operators first.
	var blocking []Operator
	for _, op := range order {
		if op.Blocking() {
			blocking = append(blocking, op)
		}
	}
	// Apply deeper blocking operators first: their recalculation may
	// lower the effective level of blocking operators above them.
	//
	// Affected operators are those "at higher levels or its sibling" —
	// i.e. every node outside the blocking operator's own subtree whose
	// level is at least the blocking level. They are recalculated as if
	// the blocking operator were at Level 0: level -= lb (clamped at 0).
	// Nodes at lower levels (deep inside sibling subtrees, e.g. the
	// supplier/orders index scans under Q9's top-level hash join) are
	// not affected, which is what keeps their priorities distinct.
	sort.SliceStable(blocking, func(i, j int) bool { return depth[blocking[i]] > depth[blocking[j]] })
	for i := range blocking {
		b := blocking[i]
		lb := level[b]
		if lb <= 0 {
			continue
		}
		inSubtree := map[Operator]bool{}
		markSubtree(b, inSubtree)
		for _, op := range order {
			if inSubtree[op] || level[op] < lb {
				continue
			}
			if nl := level[op] - lb; nl >= 0 {
				level[op] = nl
			} else {
				level[op] = 0
			}
		}
	}

	for op, l := range level {
		op.SetLevel(l)
	}
	return maxDepth + 1
}

func markSubtree(op Operator, set map[Operator]bool) {
	set[op] = true
	for _, c := range op.Children() {
		markSubtree(c, set)
	}
}

// ExtractQueryInfo collects the random-access footprint the query
// registers in the Rule 5 registry: per-object operator levels plus the
// plan's llow/lhigh bounds. Call it after AssignLevels.
func ExtractQueryInfo(root Operator) policy.QueryInfo {
	info := policy.QueryInfo{Levels: map[pagestore.ObjectID][]int{}}
	first := true
	var walk func(op Operator)
	walk = func(op Operator) {
		if ai, ok := op.Access(); ok && ai.Random {
			lv := op.Level()
			for _, obj := range ai.Objects {
				info.Levels[obj] = append(info.Levels[obj], lv)
			}
			if first || lv < info.LLow {
				info.LLow = lv
			}
			if first || lv > info.LHigh {
				info.LHigh = lv
			}
			first = false
			info.HasRandom = true
		}
		for _, c := range op.Children() {
			walk(c)
		}
	}
	walk(root)
	return info
}
