package exec

import (
	"fmt"
	"testing"
	"testing/quick"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/bufferpool"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// tempCtx builds a minimal execution context for temp-file tests.
func tempCtx(t testing.TB, bpPages int) *Ctx {
	t.Helper()
	store := pagestore.NewStore()
	sys, err := hybrid.New(hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	mgr := storagemgr.New(store, sys, policy.NewAssignmentTable(dss.DefaultPolicySpace()))
	return &Ctx{
		Clk:  &simclock.Clock{},
		Pool: bufferpool.New(mgr, bpPages),
		Cat:  catalog.New(),
		Mgr:  mgr,
	}
}

func TestTempFileRoundTrip(t *testing.T) {
	ctx := tempCtx(t, 4)
	tf, err := ctx.CreateTemp()
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		tup := catalog.Tuple{
			catalog.IntDatum(int64(i)),
			catalog.FloatDatum(float64(i) / 7),
			catalog.StringDatum(fmt.Sprintf("row-%d", i)),
		}
		if err := tf.Append(ctx, tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := tf.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	if tf.Rows() != n {
		t.Fatalf("rows %d", tf.Rows())
	}
	if tf.Pages() < 2 {
		t.Fatalf("pages %d, expected a multi-page spill", tf.Pages())
	}

	r := tf.NewReader()
	for i := 0; i < n; i++ {
		tup, ok, err := r.Next(ctx)
		if err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
		if tup[0].I != int64(i) || tup[2].S != fmt.Sprintf("row-%d", i) {
			t.Fatalf("row %d corrupted: %v", i, tup)
		}
	}
	if _, ok, _ := r.Next(ctx); ok {
		t.Fatal("reader returned rows past the end")
	}
	if err := ctx.DropTemp(tf); err != nil {
		t.Fatal(err)
	}
}

func TestTempFileSecondReaderIndependent(t *testing.T) {
	ctx := tempCtx(t, 8)
	tf, _ := ctx.CreateTemp()
	for i := 0; i < 100; i++ {
		_ = tf.Append(ctx, catalog.Tuple{catalog.IntDatum(int64(i))})
	}
	_ = tf.Finish(ctx)
	r1, r2 := tf.NewReader(), tf.NewReader()
	a, _, _ := r1.Next(ctx)
	b, _, _ := r2.Next(ctx)
	if a[0].I != b[0].I {
		t.Fatal("readers disagree on the first row")
	}
}

func TestDropTempIdempotentAndAppendAfterDeleteFails(t *testing.T) {
	ctx := tempCtx(t, 4)
	tf, _ := ctx.CreateTemp()
	_ = tf.Append(ctx, catalog.Tuple{catalog.IntDatum(1)})
	_ = tf.Finish(ctx)
	if err := ctx.DropTemp(tf); err != nil {
		t.Fatal(err)
	}
	if err := ctx.DropTemp(tf); err != nil {
		t.Fatalf("second drop errored: %v", err)
	}
	if err := tf.Append(ctx, catalog.Tuple{catalog.IntDatum(2)}); err == nil {
		t.Fatal("append to deleted temp accepted")
	}
}

func TestReclaimTempsBackstop(t *testing.T) {
	ctx := tempCtx(t, 4)
	for i := 0; i < 3; i++ {
		tf, _ := ctx.CreateTemp()
		_ = tf.Append(ctx, catalog.Tuple{catalog.IntDatum(int64(i))})
		_ = tf.Finish(ctx)
	}
	ctx.ReclaimTemps()
	for _, id := range ctx.Mgr.Store().Objects() {
		if catalog.IsTemp(id) {
			t.Fatalf("temp %d survived ReclaimTemps", id)
		}
	}
}

// Property: the schema-less datum codec round-trips arbitrary values.
func TestSchemalessCodecProperty(t *testing.T) {
	f := func(i int64, fl float64, s string) bool {
		if fl != fl { // NaN
			fl = 0
		}
		in := catalog.Tuple{{I: i, F: fl, S: s}, {I: -i}, {S: s + s}}
		enc := encodeRecord(nil, in)
		out, n, err := decodeRecord(enc)
		if err != nil || n != len(enc) || len(out) != len(in) {
			return false
		}
		for k := range in {
			if in[k] != out[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChargeTuples(t *testing.T) {
	ctx := tempCtx(t, 4)
	ctx.CPUPerTuple = 100
	ctx.ChargeTuples(10)
	if ctx.Clk.Now() != 1000 {
		t.Fatalf("clock %v", ctx.Clk.Now())
	}
	if ctx.Tuples != 10 {
		t.Fatalf("tuples %d", ctx.Tuples)
	}
	ctx.ChargeTuples(-5)
	if ctx.Tuples != 10 {
		t.Fatal("negative charge counted")
	}
}
