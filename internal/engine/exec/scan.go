package exec

import (
	"fmt"

	"hstoragedb/internal/engine/btree"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/heap"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/pagestore"
)

// TableHandle binds a catalog table to its heap file.
type TableHandle struct {
	Info *catalog.TableInfo
	File *heap.File
}

// NewTableHandle builds a handle for a regular table.
func NewTableHandle(info *catalog.TableInfo) *TableHandle {
	return &TableHandle{
		Info: info,
		File: heap.NewFile(info.ID, info.Schema, policy.Table),
	}
}

// Pages reports the table's current heap size in pages.
func (h *TableHandle) Pages(ctx *Ctx) int64 {
	return ctx.Mgr.Store().Pages(h.Info.ID)
}

// SeqScan is the sequential-scan leaf operator: Rule 1 traffic.
type SeqScan struct {
	base
	Table *TableHandle
	// Pred filters tuples (nil = all).
	Pred func(catalog.Tuple) bool

	scanner *heap.Scanner
}

// Children implements Operator.
func (s *SeqScan) Children() []Operator { return nil }

// Blocking implements Operator.
func (s *SeqScan) Blocking() bool { return false }

// Access implements Operator.
func (s *SeqScan) Access() (AccessInfo, bool) {
	return AccessInfo{Objects: []pagestore.ObjectID{s.Table.Info.ID}, Random: false}, true
}

// Open implements Operator.
func (s *SeqScan) Open(ctx *Ctx) error {
	s.scanner = s.Table.File.NewScanner(ctx.Clk, ctx.Pool, s.Table.Pages(ctx))
	return nil
}

// Next implements Operator.
func (s *SeqScan) Next(ctx *Ctx) (catalog.Tuple, bool, error) {
	for {
		t, _, ok, err := s.scanner.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.ChargeTuples(1)
		if s.Pred == nil || s.Pred(t) {
			return t, true, nil
		}
	}
}

// Close implements Operator.
func (s *SeqScan) Close(ctx *Ctx) error {
	s.scanner = nil
	return nil
}

// IndexScan is the range index-scan leaf operator: Rule 2 traffic against
// both the index pages and the table pages it fetches.
type IndexScan struct {
	base
	Index *catalog.IndexInfo
	Table *TableHandle
	// Lo and Hi bound the key range (inclusive).
	Lo, Hi int64
	// Pred filters fetched tuples (nil = all).
	Pred func(catalog.Tuple) bool
	// KeyOnly skips the heap fetch and emits single-datum tuples holding
	// the key (index-only scan).
	KeyOnly bool

	tree *btree.Tree
	it   *btree.Iterator
}

// Children implements Operator.
func (s *IndexScan) Children() []Operator { return nil }

// Blocking implements Operator.
func (s *IndexScan) Blocking() bool { return false }

// Access implements Operator.
func (s *IndexScan) Access() (AccessInfo, bool) {
	return AccessInfo{
		Objects: []pagestore.ObjectID{s.Index.ID, s.Table.Info.ID},
		Random:  true,
	}, true
}

// Open implements Operator.
func (s *IndexScan) Open(ctx *Ctx) error {
	s.tree = btree.Open(s.Index.ID, ctx.Pool)
	var err error
	s.it, err = s.tree.Seek(ctx.Clk, s.Lo, s.Hi, s.Level())
	return err
}

// Next implements Operator.
func (s *IndexScan) Next(ctx *Ctx) (catalog.Tuple, bool, error) {
	for {
		e, ok, err := s.it.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.ChargeTuples(1)
		if s.KeyOnly {
			return catalog.Tuple{catalog.IntDatum(e.Key)}, true, nil
		}
		t, err := s.Table.File.Fetch(ctx.Clk, ctx.Pool, e.RID, s.Level())
		if err != nil {
			return nil, false, err
		}
		if t == nil {
			continue // tombstoned by a concurrent delete
		}
		if s.Pred == nil || s.Pred(t) {
			return t, true, nil
		}
	}
}

// Close implements Operator.
func (s *IndexScan) Close(ctx *Ctx) error {
	s.it = nil
	return nil
}

// IndexProbe is the inner "index scan" leaf of an index nested-loop join
// (the operator shape in the paper's Figures 7 and 8). The parent NestLoop
// rebinds its key for every outer tuple; each probe walks the B+tree and
// fetches matching heap tuples — all random requests at the probe's own
// plan level.
type IndexProbe struct {
	base
	Index *catalog.IndexInfo
	Table *TableHandle
	// Pred filters fetched tuples (nil = all).
	Pred func(catalog.Tuple) bool

	tree *btree.Tree
	key  int64
	rids []catalog.RID
	idx  int
}

// Children implements Operator.
func (p *IndexProbe) Children() []Operator { return nil }

// Blocking implements Operator.
func (p *IndexProbe) Blocking() bool { return false }

// Access implements Operator.
func (p *IndexProbe) Access() (AccessInfo, bool) {
	return AccessInfo{
		Objects: []pagestore.ObjectID{p.Index.ID, p.Table.Info.ID},
		Random:  true,
	}, true
}

// Open implements Operator.
func (p *IndexProbe) Open(ctx *Ctx) error {
	p.tree = btree.Open(p.Index.ID, ctx.Pool)
	return nil
}

// Bind positions the probe on a new key.
func (p *IndexProbe) Bind(ctx *Ctx, key int64) error {
	if p.tree == nil {
		if err := p.Open(ctx); err != nil {
			return err
		}
	}
	p.key = key
	rids, err := p.tree.Lookup(ctx.Clk, key, p.Level())
	if err != nil {
		return err
	}
	p.rids = rids
	p.idx = 0
	return nil
}

// Next implements Operator: the next matching inner tuple for the bound
// key.
func (p *IndexProbe) Next(ctx *Ctx) (catalog.Tuple, bool, error) {
	for p.idx < len(p.rids) {
		rid := p.rids[p.idx]
		p.idx++
		ctx.ChargeTuples(1)
		t, err := p.Table.File.Fetch(ctx.Clk, ctx.Pool, rid, p.Level())
		if err != nil {
			return nil, false, err
		}
		if t == nil {
			continue // tombstoned by a concurrent delete
		}
		if p.Pred == nil || p.Pred(t) {
			return t, true, nil
		}
	}
	return nil, false, nil
}

// Close implements Operator.
func (p *IndexProbe) Close(ctx *Ctx) error {
	p.tree = nil
	p.rids = nil
	return nil
}

// NestLoop is an index nested-loop join: for each outer tuple it rebinds
// the inner IndexProbe and emits combined matches.
type NestLoop struct {
	base
	Outer Operator
	Probe *IndexProbe
	// OuterKey extracts the join key from an outer tuple.
	OuterKey func(catalog.Tuple) int64
	// Combine merges a matching pair (nil = concatenate outer then inner).
	Combine func(outer, inner catalog.Tuple) catalog.Tuple
	// Pred filters joined pairs (nil = all).
	Pred func(outer, inner catalog.Tuple) bool
	// Semi emits each outer tuple at most once (existential join); Anti
	// emits outer tuples with no match. Semi and Anti are exclusive.
	Semi, Anti bool

	cur catalog.Tuple
}

// Children implements Operator (outer executes first).
func (n *NestLoop) Children() []Operator { return []Operator{n.Outer, n.Probe} }

// Blocking implements Operator.
func (n *NestLoop) Blocking() bool { return false }

// Access implements Operator.
func (n *NestLoop) Access() (AccessInfo, bool) { return AccessInfo{}, false }

// Open implements Operator.
func (n *NestLoop) Open(ctx *Ctx) error {
	if n.Semi && n.Anti {
		return fmt.Errorf("exec: NestLoop cannot be both semi and anti")
	}
	if err := n.Outer.Open(ctx); err != nil {
		return err
	}
	return n.Probe.Open(ctx)
}

// Next implements Operator.
func (n *NestLoop) Next(ctx *Ctx) (catalog.Tuple, bool, error) {
	for {
		if n.cur == nil {
			t, ok, err := n.Outer.Next(ctx)
			if err != nil || !ok {
				return nil, false, err
			}
			n.cur = t
			if err := n.Probe.Bind(ctx, n.OuterKey(t)); err != nil {
				return nil, false, err
			}
			if n.Anti {
				matched := false
				for {
					inner, ok, err := n.Probe.Next(ctx)
					if err != nil {
						return nil, false, err
					}
					if !ok {
						break
					}
					if n.Pred == nil || n.Pred(n.cur, inner) {
						matched = true
						break
					}
				}
				out := n.cur
				n.cur = nil
				if !matched {
					ctx.ChargeTuples(1)
					return out, true, nil
				}
				continue
			}
		}
		inner, ok, err := n.Probe.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			n.cur = nil
			continue
		}
		if n.Pred != nil && !n.Pred(n.cur, inner) {
			continue
		}
		ctx.ChargeTuples(1)
		outer := n.cur
		if n.Semi {
			n.cur = nil
		}
		if n.Combine != nil {
			return n.Combine(outer, inner), true, nil
		}
		out := make(catalog.Tuple, 0, len(outer)+len(inner))
		out = append(out, outer...)
		out = append(out, inner...)
		return out, true, nil
	}
}

// Close implements Operator.
func (n *NestLoop) Close(ctx *Ctx) error {
	err1 := n.Outer.Close(ctx)
	err2 := n.Probe.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}
