package exec

import (
	"hstoragedb/internal/engine/catalog"
)

// Filter applies a predicate to its child's output.
type Filter struct {
	base
	Child Operator
	Pred  func(catalog.Tuple) bool
}

// Children implements Operator.
func (f *Filter) Children() []Operator { return []Operator{f.Child} }

// Blocking implements Operator.
func (f *Filter) Blocking() bool { return false }

// Access implements Operator.
func (f *Filter) Access() (AccessInfo, bool) { return AccessInfo{}, false }

// Open implements Operator.
func (f *Filter) Open(ctx *Ctx) error { return f.Child.Open(ctx) }

// Next implements Operator.
func (f *Filter) Next(ctx *Ctx) (catalog.Tuple, bool, error) {
	for {
		t, ok, err := f.Child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred(t) {
			return t, true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close(ctx *Ctx) error { return f.Child.Close(ctx) }

// Project rewrites each tuple of its child's output.
type Project struct {
	base
	Child Operator
	Fn    func(catalog.Tuple) catalog.Tuple
}

// Children implements Operator.
func (p *Project) Children() []Operator { return []Operator{p.Child} }

// Blocking implements Operator.
func (p *Project) Blocking() bool { return false }

// Access implements Operator.
func (p *Project) Access() (AccessInfo, bool) { return AccessInfo{}, false }

// Open implements Operator.
func (p *Project) Open(ctx *Ctx) error { return p.Child.Open(ctx) }

// Next implements Operator.
func (p *Project) Next(ctx *Ctx) (catalog.Tuple, bool, error) {
	t, ok, err := p.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	return p.Fn(t), true, nil
}

// Close implements Operator.
func (p *Project) Close(ctx *Ctx) error { return p.Child.Close(ctx) }

// Limit emits at most N tuples.
type Limit struct {
	base
	Child Operator
	N     int64

	emitted int64
}

// Children implements Operator.
func (l *Limit) Children() []Operator { return []Operator{l.Child} }

// Blocking implements Operator.
func (l *Limit) Blocking() bool { return false }

// Access implements Operator.
func (l *Limit) Access() (AccessInfo, bool) { return AccessInfo{}, false }

// Open implements Operator.
func (l *Limit) Open(ctx *Ctx) error {
	l.emitted = 0
	return l.Child.Open(ctx)
}

// Next implements Operator.
func (l *Limit) Next(ctx *Ctx) (catalog.Tuple, bool, error) {
	if l.emitted >= l.N {
		return nil, false, nil
	}
	t, ok, err := l.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	l.emitted++
	return t, true, nil
}

// Close implements Operator.
func (l *Limit) Close(ctx *Ctx) error { return l.Child.Close(ctx) }

// Values replays an in-memory tuple list (used by RF drivers and tests).
type Values struct {
	base
	Rows []catalog.Tuple

	idx int
}

// Children implements Operator.
func (v *Values) Children() []Operator { return nil }

// Blocking implements Operator.
func (v *Values) Blocking() bool { return false }

// Access implements Operator.
func (v *Values) Access() (AccessInfo, bool) { return AccessInfo{}, false }

// Open implements Operator.
func (v *Values) Open(ctx *Ctx) error {
	v.idx = 0
	return nil
}

// Next implements Operator.
func (v *Values) Next(ctx *Ctx) (catalog.Tuple, bool, error) {
	if v.idx >= len(v.Rows) {
		return nil, false, nil
	}
	t := v.Rows[v.idx]
	v.idx++
	return t, true, nil
}

// Close implements Operator.
func (v *Values) Close(ctx *Ctx) error { return nil }
