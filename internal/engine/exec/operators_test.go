package exec_test

import (
	"fmt"
	"sort"
	"strconv"
	"testing"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/exec"
	"hstoragedb/internal/hybrid"
)

// fixture builds a database with two small tables:
//
//	kv(k int64, v string, grp int64)          — 1000 rows, k = 0..999
//	ref(id int64, weight float64)             — 100 rows, id = 0..99
//
// plus an index on kv.k and on ref.id.
type fixture struct {
	db   *engine.Database
	inst *engine.Instance
	kv   *exec.TableHandle
	ref  *exec.TableHandle
}

func newFixture(t *testing.T, workMem int) *fixture {
	return newFixtureBP(t, workMem, 64)
}

// newFixtureBP also controls the buffer pool size, for tests that need
// spilled data to actually reach storage.
func newFixtureBP(t *testing.T, workMem, bpPages int) *fixture {
	t.Helper()
	db := engine.NewDatabase()
	kvInfo, err := db.CreateTable("kv", catalog.NewSchema(
		catalog.Column{Name: "k", Type: catalog.Int64},
		catalog.Column{Name: "v", Type: catalog.String},
		catalog.Column{Name: "grp", Type: catalog.Int64},
	))
	if err != nil {
		t.Fatal(err)
	}
	refInfo, err := db.CreateTable("ref", catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.Int64},
		catalog.Column{Name: "weight", Type: catalog.Float64},
	))
	if err != nil {
		t.Fatal(err)
	}

	inst, err := db.NewInstance(engine.InstanceConfig{
		Storage:         hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 2048},
		BufferPoolPages: bpPages,
		WorkMem:         workMem,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := inst.NewLoader("kv")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		if _, err := l.Add(catalog.Tuple{
			catalog.IntDatum(i),
			catalog.StringDatum(fmt.Sprintf("v%d", i)),
			catalog.IntDatum(i % 7),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = inst.NewLoader("ref")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if _, err := l.Add(catalog.Tuple{
			catalog.IntDatum(i),
			catalog.FloatDatum(float64(i) / 2),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.BuildIndex("kv_k", "kv", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.BuildIndex("ref_id", "ref", "id"); err != nil {
		t.Fatal(err)
	}
	return &fixture{
		db:   db,
		inst: inst,
		kv:   exec.NewTableHandle(kvInfo),
		ref:  exec.NewTableHandle(refInfo),
	}
}

func (f *fixture) run(t *testing.T, op exec.Operator) []catalog.Tuple {
	t.Helper()
	sess := f.inst.NewSession()
	res, err := sess.Execute(op)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

func TestSeqScanAll(t *testing.T) {
	f := newFixture(t, 10000)
	rows := f.run(t, &exec.SeqScan{Table: f.kv})
	if len(rows) != 1000 {
		t.Fatalf("scanned %d rows", len(rows))
	}
}

func TestSeqScanPredicate(t *testing.T) {
	f := newFixture(t, 10000)
	rows := f.run(t, &exec.SeqScan{Table: f.kv, Pred: func(tu catalog.Tuple) bool { return tu[0].I < 10 }})
	if len(rows) != 10 {
		t.Fatalf("filtered scan returned %d rows", len(rows))
	}
}

func TestIndexScanRange(t *testing.T) {
	f := newFixture(t, 10000)
	rows := f.run(t, &exec.IndexScan{
		Index: f.db.Cat.MustIndex("kv_k"),
		Table: f.kv,
		Lo:    100, Hi: 199,
	})
	if len(rows) != 100 {
		t.Fatalf("index range returned %d rows", len(rows))
	}
	for _, r := range rows {
		if r[0].I < 100 || r[0].I > 199 {
			t.Fatalf("out of range row %v", r)
		}
	}
}

func TestIndexScanKeyOnly(t *testing.T) {
	f := newFixture(t, 10000)
	rows := f.run(t, &exec.IndexScan{
		Index: f.db.Cat.MustIndex("kv_k"),
		Table: f.kv,
		Lo:    0, Hi: 4, KeyOnly: true,
	})
	if len(rows) != 5 {
		t.Fatalf("key-only scan returned %d rows", len(rows))
	}
	if len(rows[0]) != 1 {
		t.Fatalf("key-only tuple has %d columns", len(rows[0]))
	}
}

func TestNestLoopJoin(t *testing.T) {
	f := newFixture(t, 10000)
	// kv rows with k < 50 joined to ref on k%100 == id.
	nl := &exec.NestLoop{
		Outer: &exec.SeqScan{Table: f.kv, Pred: func(tu catalog.Tuple) bool { return tu[0].I < 50 }},
		Probe: &exec.IndexProbe{
			Index: f.db.Cat.MustIndex("ref_id"),
			Table: f.ref,
		},
		OuterKey: func(tu catalog.Tuple) int64 { return tu[0].I % 100 },
	}
	rows := f.run(t, nl)
	if len(rows) != 50 {
		t.Fatalf("join returned %d rows", len(rows))
	}
	for _, r := range rows {
		if r[0].I%100 != r[3].I {
			t.Fatalf("mismatched join row %v", r)
		}
	}
}

func TestNestLoopSemiAnti(t *testing.T) {
	f := newFixture(t, 10000)
	mk := func(semi, anti bool) *exec.NestLoop {
		return &exec.NestLoop{
			Outer: &exec.SeqScan{Table: f.kv, Pred: func(tu catalog.Tuple) bool { return tu[0].I < 200 }},
			Probe: &exec.IndexProbe{Index: f.db.Cat.MustIndex("ref_id"), Table: f.ref},
			// Keys 0..99 match ref; 100..199 do not.
			OuterKey: func(tu catalog.Tuple) int64 { return tu[0].I },
			Semi:     semi,
			Anti:     anti,
			Combine:  func(o, i catalog.Tuple) catalog.Tuple { return o },
		}
	}
	semi := f.run(t, mk(true, false))
	if len(semi) != 100 {
		t.Fatalf("semi join returned %d rows, want 100", len(semi))
	}
	anti := f.run(t, mk(false, true))
	if len(anti) != 100 {
		t.Fatalf("anti join returned %d rows, want 100", len(anti))
	}
	for _, r := range anti {
		if r[0].I < 100 {
			t.Fatalf("anti join leaked matching row %v", r)
		}
	}
}

func hashJoinRows(t *testing.T, f *fixture) []catalog.Tuple {
	t.Helper()
	j := &exec.HashJoin{
		Build:    &exec.Hash{Child: &exec.SeqScan{Table: f.ref}},
		Probe:    &exec.SeqScan{Table: f.kv},
		BuildKey: func(tu catalog.Tuple) int64 { return tu[0].I },
		ProbeKey: func(tu catalog.Tuple) int64 { return tu[0].I % 100 },
	}
	return f.run(t, j)
}

func TestHashJoinInMemory(t *testing.T) {
	f := newFixture(t, 100000) // no spill
	rows := hashJoinRows(t, f)
	if len(rows) != 1000 {
		t.Fatalf("join returned %d rows", len(rows))
	}
}

func TestHashJoinGraceSpillMatchesInMemory(t *testing.T) {
	big := newFixture(t, 100000)
	want := hashJoinRows(t, big)

	small := newFixtureBP(t, 10, 8) // grace partitioning; temp reaches storage
	got := hashJoinRows(t, small)
	if len(got) != len(want) {
		t.Fatalf("spilled join returned %d rows, in-memory %d", len(got), len(want))
	}
	// Same multiset of join keys.
	count := func(rows []catalog.Tuple) map[int64]int {
		m := map[int64]int{}
		for _, r := range rows {
			m[r[0].I]++
		}
		return m
	}
	cw, cg := count(want), count(got)
	for k, n := range cw {
		if cg[k] != n {
			t.Fatalf("key %d: %d vs %d", k, cg[k], n)
		}
	}
	// The spill generated and reclaimed temporary data.
	snap := small.inst.Sys.Stats()
	if snap.Trimmed == 0 {
		t.Fatal("grace join produced no TRIMs — temp lifecycle broken")
	}
	// No temp objects leaked in the page store.
	for _, id := range small.db.Store.Objects() {
		if catalog.IsTemp(id) {
			t.Fatalf("temp object %d leaked", id)
		}
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	f := newFixture(t, 100000)
	mk := func(semi, anti bool) *exec.HashJoin {
		return &exec.HashJoin{
			Build:    &exec.Hash{Child: &exec.SeqScan{Table: f.ref}},
			Probe:    &exec.SeqScan{Table: f.kv, Pred: func(tu catalog.Tuple) bool { return tu[0].I < 200 }},
			BuildKey: func(tu catalog.Tuple) int64 { return tu[0].I },
			ProbeKey: func(tu catalog.Tuple) int64 { return tu[0].I },
			Semi:     semi,
			Anti:     anti,
			Combine:  func(b, p catalog.Tuple) catalog.Tuple { return p },
		}
	}
	if got := len(f.run(t, mk(true, false))); got != 100 {
		t.Fatalf("hash semi: %d rows", got)
	}
	anti := f.run(t, mk(false, true))
	if len(anti) != 100 {
		t.Fatalf("hash anti: %d rows", len(anti))
	}
	for _, r := range anti {
		if r[0].I < 100 {
			t.Fatalf("anti leaked %v", r)
		}
	}
}

func aggRows(t *testing.T, f *fixture) []catalog.Tuple {
	t.Helper()
	agg := &exec.HashAgg{
		Child:    &exec.SeqScan{Table: f.kv},
		GroupKey: func(tu catalog.Tuple) string { return strconv.FormatInt(tu[2].I, 10) },
		NewGroup: func(tu catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{tu[2], catalog.IntDatum(1)}
		},
		Merge: func(acc, tu catalog.Tuple) catalog.Tuple {
			acc[1].I++
			return acc
		},
	}
	return f.run(t, agg)
}

func TestHashAggCounts(t *testing.T) {
	f := newFixture(t, 100000)
	rows := aggRows(t, f)
	if len(rows) != 7 {
		t.Fatalf("agg produced %d groups", len(rows))
	}
	var total int64
	for _, r := range rows {
		total += r[1].I
	}
	if total != 1000 {
		t.Fatalf("group counts sum to %d", total)
	}
}

func TestHashAggSpillMatchesInMemory(t *testing.T) {
	// WorkMem of 3 < 7 groups forces partition spilling.
	big := newFixture(t, 100000)
	want := aggRows(t, big)
	small := newFixture(t, 3)
	got := aggRows(t, small)
	if len(got) != len(want) {
		t.Fatalf("spilled agg: %d groups, want %d", len(got), len(want))
	}
	sum := func(rows []catalog.Tuple) map[int64]int64 {
		m := map[int64]int64{}
		for _, r := range rows {
			m[r[0].I] = r[1].I
		}
		return m
	}
	sw, sg := sum(want), sum(got)
	for k, v := range sw {
		if sg[k] != v {
			t.Fatalf("group %d: %d vs %d", k, sg[k], v)
		}
	}
}

func TestSortInMemoryAndExternal(t *testing.T) {
	for _, workMem := range []int{100000, 37} {
		f := newFixture(t, workMem)
		s := &exec.Sort{
			Child: &exec.SeqScan{Table: f.kv},
			Less:  func(a, b catalog.Tuple) bool { return a[0].I > b[0].I }, // descending
		}
		rows := f.run(t, s)
		if len(rows) != 1000 {
			t.Fatalf("workMem=%d: sorted %d rows", workMem, len(rows))
		}
		if !sort.SliceIsSorted(rows, func(i, j int) bool { return rows[i][0].I > rows[j][0].I }) {
			t.Fatalf("workMem=%d: output not sorted", workMem)
		}
		// External sort must clean up its run files.
		for _, id := range f.db.Store.Objects() {
			if catalog.IsTemp(id) {
				t.Fatalf("workMem=%d: leaked temp %d", workMem, id)
			}
		}
	}
}

func TestTopN(t *testing.T) {
	f := newFixture(t, 100000)
	top := &exec.TopN{
		Child: &exec.SeqScan{Table: f.kv},
		N:     5,
		Less:  func(a, b catalog.Tuple) bool { return a[0].I > b[0].I },
	}
	rows := f.run(t, top)
	if len(rows) != 5 {
		t.Fatalf("topN returned %d", len(rows))
	}
	if rows[0][0].I != 999 || rows[4][0].I != 995 {
		t.Fatalf("topN rows %v .. %v", rows[0], rows[4])
	}
}

func TestFilterProjectLimit(t *testing.T) {
	f := newFixture(t, 100000)
	op := &exec.Limit{
		N: 3,
		Child: &exec.Project{
			Child: &exec.Filter{
				Child: &exec.SeqScan{Table: f.kv},
				Pred:  func(tu catalog.Tuple) bool { return tu[0].I%2 == 0 },
			},
			Fn: func(tu catalog.Tuple) catalog.Tuple { return catalog.Tuple{tu[0]} },
		},
	}
	rows := f.run(t, op)
	if len(rows) != 3 {
		t.Fatalf("limit returned %d", len(rows))
	}
	for _, r := range rows {
		if len(r) != 1 || r[0].I%2 != 0 {
			t.Fatalf("bad row %v", r)
		}
	}
}

func TestValuesOperator(t *testing.T) {
	f := newFixture(t, 100000)
	v := &exec.Values{Rows: []catalog.Tuple{
		{catalog.IntDatum(1)}, {catalog.IntDatum(2)},
	}}
	rows := f.run(t, v)
	if len(rows) != 2 {
		t.Fatalf("values returned %d", len(rows))
	}
}

// TestTempLifecycleTrims verifies Rule 3 end to end: a spilling operator
// generates temp data at priority 1 and its deletion TRIMs the blocks out
// of the SSD cache.
func TestTempLifecycleTrims(t *testing.T) {
	f := newFixtureBP(t, 3, 2) // tiny pool: spilled pages must reach storage
	agg := &exec.HashAgg{
		Child:    &exec.SeqScan{Table: f.kv},
		GroupKey: func(tu catalog.Tuple) string { return strconv.FormatInt(tu[0].I%97, 10) },
		NewGroup: func(tu catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{catalog.IntDatum(tu[0].I % 97), catalog.IntDatum(1)}
		},
		Merge: func(acc, tu catalog.Tuple) catalog.Tuple {
			acc[1].I++
			return acc
		},
	}
	rows := f.run(t, agg)
	if len(rows) != 97 {
		t.Fatalf("agg produced %d groups, want 97", len(rows))
	}
	snap := f.inst.Sys.Stats()
	if snap.Trimmed == 0 {
		t.Fatal("no TRIMs after spilling aggregation")
	}
	// Spilled writes classified as temporary data (Rule 3).
	space := dss.DefaultPolicySpace()
	if snap.Class(space.Temporary()).WriteBlocks == 0 {
		t.Fatal("no temp-class writes reached storage")
	}
	// No temp objects leaked.
	for _, id := range f.db.Store.Objects() {
		if catalog.IsTemp(id) {
			t.Fatalf("temp object %d leaked", id)
		}
	}
}
