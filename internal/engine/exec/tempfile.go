package exec

import (
	"encoding/binary"
	"fmt"
	"math"

	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/pagestore"
)

// TempFile is a schema-less paged record file holding spilled tuples.
// Its lifetime follows Section 4.2.3: a generation phase (one write
// stream), a consumption phase (read streams), then deletion, at which
// point the storage manager TRIMs its blocks so the cache can evict them
// immediately.
type TempFile struct {
	ID    pagestore.ObjectID
	pages int64
	rows  int64

	buf     []byte
	count   uint16
	deleted bool
}

// CreateTemp allocates a new temporary file registered with the page
// store and tracked by the context.
func (c *Ctx) CreateTemp() (*TempFile, error) {
	id := c.Cat.NewTempID()
	if err := c.Mgr.Store().Create(id); err != nil {
		return nil, err
	}
	tf := &TempFile{ID: id}
	c.temps = append(c.temps, tf)
	return tf, nil
}

// ReclaimTemps deletes any temporary files still alive (normally
// operators delete their own temps at the end of consumption; this is the
// backstop that the "end of query" cleanup provides in PostgreSQL).
func (c *Ctx) ReclaimTemps() {
	for _, tf := range c.temps {
		if !tf.deleted {
			_ = c.DropTemp(tf)
		}
	}
	c.temps = c.temps[:0]
}

// DropTemp deletes a temporary file: buffered pages are invalidated (no
// write-back — the data is dead) and the freed extents are TRIMmed with
// the "non-caching and eviction" policy.
func (c *Ctx) DropTemp(tf *TempFile) error {
	if tf.deleted {
		return nil
	}
	tf.deleted = true
	c.Pool.Invalidate(tf.ID)
	return c.Mgr.DeleteObject(c.Clk, tf.ID)
}

const tempHeader = 2

// tempTag is the semantic tag for temp-file I/O: Rule 3 traffic.
func tempTag(id pagestore.ObjectID) policy.Tag {
	return policy.Tag{Object: id, Content: policy.Temp, Pattern: policy.Sequential}
}

// encodeDatum appends a schema-less encoding of one datum: all three
// fields, so spilled tuples round-trip without schema information.
func encodeDatum(dst []byte, d catalog.Datum) []byte {
	dst = binary.AppendVarint(dst, d.I)
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], math.Float64bits(d.F))
	dst = append(dst, w[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(d.S)))
	dst = append(dst, d.S...)
	return dst
}

func decodeDatum(src []byte) (catalog.Datum, int, error) {
	var d catalog.Datum
	i, n := binary.Varint(src)
	if n <= 0 {
		return d, 0, fmt.Errorf("exec: corrupt temp datum (int)")
	}
	d.I = i
	off := n
	if off+8 > len(src) {
		return d, 0, fmt.Errorf("exec: corrupt temp datum (float)")
	}
	d.F = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
	off += 8
	sl, n2 := binary.Uvarint(src[off:])
	if n2 <= 0 || off+n2+int(sl) > len(src) {
		return d, 0, fmt.Errorf("exec: corrupt temp datum (string)")
	}
	off += n2
	if sl > 0 {
		d.S = string(src[off : off+int(sl)])
		off += int(sl)
	}
	return d, off, nil
}

func encodeRecord(dst []byte, t catalog.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, d := range t {
		dst = encodeDatum(dst, d)
	}
	return dst
}

func decodeRecord(src []byte) (catalog.Tuple, int, error) {
	n, w := binary.Uvarint(src)
	if w <= 0 {
		return nil, 0, fmt.Errorf("exec: corrupt temp record header")
	}
	off := w
	t := make(catalog.Tuple, n)
	for i := range t {
		d, dn, err := decodeDatum(src[off:])
		if err != nil {
			return nil, 0, err
		}
		t[i] = d
		off += dn
	}
	return t, off, nil
}

// Append adds one tuple to the temp file (generation phase).
func (tf *TempFile) Append(c *Ctx, t catalog.Tuple) error {
	if tf.deleted {
		return fmt.Errorf("exec: append to deleted temp file %d", tf.ID)
	}
	if tf.buf == nil {
		tf.buf = make([]byte, tempHeader, pagestore.PageSize)
	}
	rec := encodeRecord(nil, t)
	need := 2 + len(rec)
	if need > pagestore.PageSize-tempHeader {
		return fmt.Errorf("exec: temp record of %d bytes exceeds page", len(rec))
	}
	if len(tf.buf)+need > pagestore.PageSize {
		if err := tf.flush(c); err != nil {
			return err
		}
	}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(rec)))
	tf.buf = append(tf.buf, l[:]...)
	tf.buf = append(tf.buf, rec...)
	tf.count++
	tf.rows++
	return nil
}

func (tf *TempFile) flush(c *Ctx) error {
	binary.LittleEndian.PutUint16(tf.buf[:2], tf.count)
	if err := c.Pool.Put(c.Clk, tempTag(tf.ID), tf.pages, tf.buf); err != nil {
		return err
	}
	tf.pages++
	tf.buf = make([]byte, tempHeader, pagestore.PageSize)
	tf.count = 0
	return nil
}

// Finish flushes the trailing partial page, ending the generation phase.
func (tf *TempFile) Finish(c *Ctx) error {
	if tf.buf != nil && tf.count > 0 {
		return tf.flush(c)
	}
	return nil
}

// Rows reports the number of tuples appended.
func (tf *TempFile) Rows() int64 { return tf.rows }

// Pages reports the number of full pages written so far.
func (tf *TempFile) Pages() int64 { return tf.pages }

// TempReader iterates a temp file (consumption phase).
type TempReader struct {
	tf   *TempFile
	page int64

	tuples []catalog.Tuple
	idx    int
}

// NewReader starts a consumption pass over the file.
func (tf *TempFile) NewReader() *TempReader {
	return &TempReader{tf: tf}
}

// Next returns the next spilled tuple.
func (r *TempReader) Next(c *Ctx) (catalog.Tuple, bool, error) {
	for r.idx >= len(r.tuples) {
		if r.page >= r.tf.pages {
			return nil, false, nil
		}
		data, err := c.Pool.Get(c.Clk, tempTag(r.tf.ID), r.page)
		if err != nil {
			return nil, false, err
		}
		n := binary.LittleEndian.Uint16(data[:2])
		r.tuples = r.tuples[:0]
		off := tempHeader
		for i := 0; i < int(n); i++ {
			l := int(binary.LittleEndian.Uint16(data[off:]))
			off += 2
			t, _, err := decodeRecord(data[off : off+l])
			if err != nil {
				return nil, false, err
			}
			r.tuples = append(r.tuples, t)
			off += l
		}
		r.page++
		r.idx = 0
	}
	t := r.tuples[r.idx]
	r.idx++
	return t, true, nil
}
