package exec

import (
	"hash/fnv"

	"hstoragedb/internal/engine/catalog"
)

// HashAgg groups its input by a string key and folds each group with
// user-supplied functions (the paper's "hash aggregate" blocking
// operator). When the number of resident groups exceeds ctx.WorkMem,
// overflow tuples are partitioned into temporary files and aggregated
// partition by partition — generating the Rule 3 temp-data traffic
// Section 6.3.3 studies via Q18.
type HashAgg struct {
	base
	Child Operator
	// GroupKey extracts the grouping key.
	GroupKey func(catalog.Tuple) string
	// NewGroup builds the initial accumulator from a group's first tuple.
	NewGroup func(catalog.Tuple) catalog.Tuple
	// Merge folds a tuple into an accumulator (in place or returning a
	// new accumulator).
	Merge func(acc catalog.Tuple, t catalog.Tuple) catalog.Tuple
	// Finalize post-processes an accumulator before emission (nil =
	// identity).
	Finalize func(acc catalog.Tuple) catalog.Tuple

	groups  map[string]catalog.Tuple
	order   []string
	idx     int
	spills  []*TempFile
	part    int
	spilled bool
}

// Children implements Operator.
func (a *HashAgg) Children() []Operator { return []Operator{a.Child} }

// Blocking implements Operator: aggregation cannot emit before consuming
// its whole input.
func (a *HashAgg) Blocking() bool { return true }

// Access implements Operator.
func (a *HashAgg) Access() (AccessInfo, bool) { return AccessInfo{}, false }

func strPart(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % spillPartitions)
}

// Open implements Operator: drains the child, spilling overflow groups.
func (a *HashAgg) Open(ctx *Ctx) error {
	a.groups = make(map[string]catalog.Tuple)
	a.order = nil
	a.idx = 0
	a.part = 0
	a.spilled = false
	a.spills = nil

	if err := a.Child.Open(ctx); err != nil {
		return err
	}
	for {
		t, ok, err := a.Child.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx.ChargeTuples(1)
		k := a.GroupKey(t)
		if acc, ok := a.groups[k]; ok {
			a.groups[k] = a.Merge(acc, t)
			continue
		}
		if ctx.WorkMem > 0 && len(a.groups) >= ctx.WorkMem {
			// Overflow: defer this tuple to its partition file.
			if !a.spilled {
				a.spilled = true
				a.spills = make([]*TempFile, spillPartitions)
				for i := range a.spills {
					tf, err := ctx.CreateTemp()
					if err != nil {
						return err
					}
					a.spills[i] = tf
				}
			}
			if err := a.spills[strPart(k)].Append(ctx, t); err != nil {
				return err
			}
			continue
		}
		a.groups[k] = a.NewGroup(t)
	}
	if a.spilled {
		for _, tf := range a.spills {
			if err := tf.Finish(ctx); err != nil {
				return err
			}
		}
	}
	a.snapshotOrder()
	return a.Child.Close(ctx)
}

// snapshotOrder fixes the emission order of resident groups.
func (a *HashAgg) snapshotOrder() {
	a.order = a.order[:0]
	for k := range a.groups {
		a.order = append(a.order, k)
	}
}

// Next implements Operator.
func (a *HashAgg) Next(ctx *Ctx) (catalog.Tuple, bool, error) {
	for {
		if a.idx < len(a.order) {
			acc := a.groups[a.order[a.idx]]
			a.idx++
			if a.Finalize != nil {
				acc = a.Finalize(acc)
			}
			return acc, true, nil
		}
		if !a.spilled || a.part >= spillPartitions {
			return nil, false, nil
		}
		// Aggregate the next spilled partition in memory. Tuples whose
		// groups were resident in phase one were already merged, so a
		// partition contains only non-resident groups.
		a.groups = make(map[string]catalog.Tuple)
		r := a.spills[a.part].NewReader()
		for {
			t, ok, err := r.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			ctx.ChargeTuples(1)
			k := a.GroupKey(t)
			if acc, ok := a.groups[k]; ok {
				a.groups[k] = a.Merge(acc, t)
			} else {
				a.groups[k] = a.NewGroup(t)
			}
		}
		if err := ctx.DropTemp(a.spills[a.part]); err != nil {
			return nil, false, err
		}
		a.part++
		a.snapshotOrder()
		a.idx = 0
	}
}

// Close implements Operator.
func (a *HashAgg) Close(ctx *Ctx) error {
	a.groups = nil
	a.order = nil
	return nil
}
