package exec

import (
	"testing"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/pagestore"
)

// testOp is a synthetic plan node for level-computation tests.
type testOp struct {
	base
	name     string
	children []Operator
	blocking bool
	access   *AccessInfo
}

func (o *testOp) Children() []Operator { return o.children }
func (o *testOp) Blocking() bool       { return o.blocking }
func (o *testOp) Access() (AccessInfo, bool) {
	if o.access == nil {
		return AccessInfo{}, false
	}
	return *o.access, true
}
func (o *testOp) Open(*Ctx) error                        { return nil }
func (o *testOp) Next(*Ctx) (catalog.Tuple, bool, error) { return nil, false, nil }
func (o *testOp) Close(*Ctx) error                       { return nil }

func leaf(name string, obj pagestore.ObjectID, random bool) *testOp {
	return &testOp{name: name, access: &AccessInfo{Objects: []pagestore.ObjectID{obj}, Random: random}}
}

func node(name string, children ...Operator) *testOp {
	return &testOp{name: name, children: children}
}

func blockingNode(name string, children ...Operator) *testOp {
	return &testOp{name: name, children: children, blocking: true}
}

// TestFigure2Levels reproduces the worked example of Figure 2: a 6-level
// plan tree where the blocking hash at Level 4 causes the two operators
// at Levels 4 and 5 (its sibling index scan on t.c and the root) to be
// recalculated to Levels 0 and 1, while the deep operators keep their
// levels. The resulting priorities with range [2,5] are: t.a -> 2,
// t.b -> 4, t.c -> 2.
func TestFigure2Levels(t *testing.T) {
	const (
		ta pagestore.ObjectID = 1
		tb pagestore.ObjectID = 2
		tc pagestore.ObjectID = 3
	)
	taLo := leaf("ixscan t.a (deep)", ta, true)
	taHi := leaf("ixscan t.a (upper)", ta, true)
	tbSeq := leaf("seqscan t.b", tb, false)
	tbRand := leaf("ixscan t.b", tb, true)
	tcScan := leaf("ixscan t.c", tc, true)

	nl0 := node("nl0", tbSeq, taLo)
	nl1 := node("nl1", nl0, taHi)
	nl2 := node("nl2", nl1, tbRand)
	hash := blockingNode("hash", nl2)
	root := node("hashjoin-root", hash, tcScan)

	levels := AssignLevels(root)
	if levels != 6 {
		t.Fatalf("tree has %d levels, want 6", levels)
	}

	check := func(op *testOp, want int) {
		t.Helper()
		if op.Level() != want {
			t.Errorf("%s at level %d, want %d", op.name, op.Level(), want)
		}
	}
	check(taLo, 0)
	check(tbSeq, 0)
	check(taHi, 1)
	check(tbRand, 2)
	check(hash, 4)
	// Blocking recalculation: sibling and root as if hash were Level 0.
	check(tcScan, 0)
	check(root, 1)

	info := ExtractQueryInfo(root)
	if !info.HasRandom {
		t.Fatal("no random footprint extracted")
	}
	if info.LLow != 0 || info.LHigh != 2 {
		t.Fatalf("bounds (%d,%d), want (0,2)", info.LLow, info.LHigh)
	}

	// Priorities per the paper's example, range [2,5].
	space := dss.PolicySpace{N: 8, T: 7, RandLow: 2, RandHigh: 5, WriteBufferFrac: 0.1}
	minLevel := func(obj pagestore.ObjectID) int {
		lvls := info.Levels[obj]
		if len(lvls) == 0 {
			t.Fatalf("object %d not in footprint", obj)
		}
		min := lvls[0]
		for _, l := range lvls {
			if l < min {
				min = l
			}
		}
		return min
	}
	if got := policy.RandomPriority(space, minLevel(ta), info.LLow, info.LHigh); got != 2 {
		t.Errorf("t.a priority %v, want 2", got)
	}
	if got := policy.RandomPriority(space, minLevel(tb), info.LLow, info.LHigh); got != 4 {
		t.Errorf("t.b priority %v, want 4", got)
	}
	if got := policy.RandomPriority(space, minLevel(tc), info.LLow, info.LHigh); got != 2 {
		t.Errorf("t.c priority %v, want 2", got)
	}
	// The sequential scan of t.b contributes nothing to the random
	// footprint (Rule 1 applies to it regardless of level).
	for _, l := range info.Levels[tb] {
		if l == 0 {
			t.Error("sequential scan leaked into the random footprint")
		}
	}
}

func TestLevelsLinearChain(t *testing.T) {
	l := leaf("scan", 1, false)
	mid := node("filter", l)
	root := node("agg", mid)
	if got := AssignLevels(root); got != 3 {
		t.Fatalf("levels %d", got)
	}
	if l.Level() != 0 || mid.Level() != 1 || root.Level() != 2 {
		t.Fatalf("levels %d/%d/%d", l.Level(), mid.Level(), root.Level())
	}
}

func TestBlockingAtLevelZeroNoop(t *testing.T) {
	l := leaf("scan", 1, true)
	b := blockingNode("sort", l) // sort at level 1, scan at 0
	root := node("limit", b)
	AssignLevels(root)
	// The blocking sort at level 1 pulls the root (level 2) down by 1.
	if root.Level() != 1 {
		t.Fatalf("root level %d, want 1", root.Level())
	}
	if l.Level() != 0 {
		t.Fatalf("scan level %d, want 0", l.Level())
	}
}

func TestUnbalancedTreeDeepestLeafIsZero(t *testing.T) {
	deep := leaf("deep", 1, true)
	chain := node("a", node("b", node("c", deep)))
	shallow := leaf("shallow", 2, true)
	root := node("join", chain, shallow)
	AssignLevels(root)
	if deep.Level() != 0 {
		t.Fatalf("deepest leaf level %d", deep.Level())
	}
	if shallow.Level() != 3 {
		t.Fatalf("shallow leaf level %d, want 3", shallow.Level())
	}
	info := ExtractQueryInfo(root)
	if info.LLow != 0 || info.LHigh != 3 {
		t.Fatalf("bounds (%d,%d)", info.LLow, info.LHigh)
	}
}

func TestQueryInfoMergesDuplicateObjects(t *testing.T) {
	a := leaf("scan1", 5, true)
	b := leaf("scan2", 5, true)
	root := node("join", node("x", a), b)
	AssignLevels(root)
	info := ExtractQueryInfo(root)
	if len(info.Levels[5]) != 2 {
		t.Fatalf("object 5 has %d level entries, want 2", len(info.Levels[5]))
	}
}
