package exec

import (
	"fmt"

	"hstoragedb/internal/engine/catalog"
)

// spillPartitions is the fan-out of grace hash join / aggregation spills.
const spillPartitions = 8

// Hash is the explicit blocking "hash" operator of the paper's plan trees
// (build side of a hash join). It forwards its child's tuples; its role in
// planning is the Blocking flag that triggers level recalculation, and at
// runtime the parent HashJoin drains it entirely before probing.
type Hash struct {
	base
	Child Operator
}

// Children implements Operator.
func (h *Hash) Children() []Operator { return []Operator{h.Child} }

// Blocking implements Operator.
func (h *Hash) Blocking() bool { return true }

// Access implements Operator.
func (h *Hash) Access() (AccessInfo, bool) { return AccessInfo{}, false }

// Open implements Operator.
func (h *Hash) Open(ctx *Ctx) error { return h.Child.Open(ctx) }

// Next implements Operator.
func (h *Hash) Next(ctx *Ctx) (catalog.Tuple, bool, error) { return h.Child.Next(ctx) }

// Close implements Operator.
func (h *Hash) Close(ctx *Ctx) error { return h.Child.Close(ctx) }

// HashJoin joins Build (conventionally wrapped in a Hash node) against
// Probe on int64 keys. When the build side exceeds ctx.WorkMem tuples the
// join degrades to a grace hash join: both inputs are partitioned into
// temporary files (Rule 3 traffic) and joined partition by partition; the
// temp files are deleted — and their blocks TRIMmed — as soon as each
// partition is consumed.
type HashJoin struct {
	base
	Build Operator
	Probe Operator
	// BuildKey/ProbeKey extract the join keys.
	BuildKey func(catalog.Tuple) int64
	ProbeKey func(catalog.Tuple) int64
	// Combine merges matches (nil = concatenate build then probe).
	Combine func(build, probe catalog.Tuple) catalog.Tuple
	// Pred filters joined pairs (nil = all).
	Pred func(build, probe catalog.Tuple) bool
	// Semi emits each probe tuple at most once on first match; Anti emits
	// probe tuples with no match.
	Semi, Anti bool

	// in-memory path
	table map[int64][]catalog.Tuple

	// spilled path
	spilled    bool
	buildParts []*TempFile
	probeParts []*TempFile
	part       int
	partReader *TempReader

	// probe iteration state
	probeTuple catalog.Tuple
	matches    []catalog.Tuple
	matchIdx   int
}

// Children implements Operator (build first).
func (j *HashJoin) Children() []Operator { return []Operator{j.Build, j.Probe} }

// Blocking implements Operator. The blocking element is the Hash node on
// the build side; the join itself streams the probe side.
func (j *HashJoin) Blocking() bool { return false }

// Access implements Operator.
func (j *HashJoin) Access() (AccessInfo, bool) { return AccessInfo{}, false }

func part(key int64) int {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int(h % spillPartitions)
}

// Open implements Operator: drains the build side, spilling if needed,
// and prepares the probe side.
func (j *HashJoin) Open(ctx *Ctx) error {
	if j.Semi && j.Anti {
		return fmt.Errorf("exec: HashJoin cannot be both semi and anti")
	}
	j.table = make(map[int64][]catalog.Tuple)
	j.spilled = false
	j.part = 0
	j.probeTuple, j.matches, j.matchIdx = nil, nil, 0

	if err := j.Build.Open(ctx); err != nil {
		return err
	}
	built := 0
	for {
		t, ok, err := j.Build.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx.ChargeTuples(1)
		k := j.BuildKey(t)
		if !j.spilled {
			j.table[k] = append(j.table[k], t)
			built++
			if ctx.WorkMem > 0 && built > ctx.WorkMem {
				if err := j.startSpill(ctx); err != nil {
					return err
				}
			}
			continue
		}
		if err := j.buildParts[part(k)].Append(ctx, t); err != nil {
			return err
		}
	}
	if err := j.Build.Close(ctx); err != nil {
		return err
	}

	if err := j.Probe.Open(ctx); err != nil {
		return err
	}
	if !j.spilled {
		return nil
	}
	for _, tf := range j.buildParts {
		if err := tf.Finish(ctx); err != nil {
			return err
		}
	}

	// Partition the probe side too.
	j.probeParts = make([]*TempFile, spillPartitions)
	for i := range j.probeParts {
		tf, err := ctx.CreateTemp()
		if err != nil {
			return err
		}
		j.probeParts[i] = tf
	}
	for {
		t, ok, err := j.Probe.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx.ChargeTuples(1)
		if err := j.probeParts[part(j.ProbeKey(t))].Append(ctx, t); err != nil {
			return err
		}
	}
	for _, tf := range j.probeParts {
		if err := tf.Finish(ctx); err != nil {
			return err
		}
	}
	return j.Probe.Close(ctx)
}

// startSpill converts the in-memory build table into partition files.
func (j *HashJoin) startSpill(ctx *Ctx) error {
	j.spilled = true
	j.buildParts = make([]*TempFile, spillPartitions)
	for i := range j.buildParts {
		tf, err := ctx.CreateTemp()
		if err != nil {
			return err
		}
		j.buildParts[i] = tf
	}
	for k, ts := range j.table {
		p := part(k)
		for _, t := range ts {
			if err := j.buildParts[p].Append(ctx, t); err != nil {
				return err
			}
		}
	}
	j.table = make(map[int64][]catalog.Tuple)
	return nil
}

// loadPartition builds the in-memory table for partition i and opens its
// probe reader. The build partition file is dropped immediately after
// loading — its lifetime is over.
func (j *HashJoin) loadPartition(ctx *Ctx, i int) error {
	j.table = make(map[int64][]catalog.Tuple)
	r := j.buildParts[i].NewReader()
	for {
		t, ok, err := r.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := j.BuildKey(t)
		j.table[k] = append(j.table[k], t)
	}
	if err := ctx.DropTemp(j.buildParts[i]); err != nil {
		return err
	}
	j.partReader = j.probeParts[i].NewReader()
	return nil
}

// nextProbe returns the next probe-side tuple from memory or partitions.
func (j *HashJoin) nextProbe(ctx *Ctx) (catalog.Tuple, bool, error) {
	if !j.spilled {
		t, ok, err := j.Probe.Next(ctx)
		if ok {
			ctx.ChargeTuples(1)
		}
		return t, ok, err
	}
	for {
		if j.partReader == nil {
			if j.part >= spillPartitions {
				return nil, false, nil
			}
			if err := j.loadPartition(ctx, j.part); err != nil {
				return nil, false, err
			}
		}
		t, ok, err := j.partReader.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return t, true, nil
		}
		// Partition exhausted: its probe temp's lifetime ends here.
		if err := ctx.DropTemp(j.probeParts[j.part]); err != nil {
			return nil, false, err
		}
		j.partReader = nil
		j.part++
	}
}

// Next implements Operator.
func (j *HashJoin) Next(ctx *Ctx) (catalog.Tuple, bool, error) {
	for {
		if j.matchIdx < len(j.matches) {
			b := j.matches[j.matchIdx]
			j.matchIdx++
			if j.Pred != nil && !j.Pred(b, j.probeTuple) {
				continue
			}
			if j.Semi {
				j.matches = nil
				j.matchIdx = 0
			}
			if j.Combine != nil {
				return j.Combine(b, j.probeTuple), true, nil
			}
			out := make(catalog.Tuple, 0, len(b)+len(j.probeTuple))
			out = append(out, b...)
			out = append(out, j.probeTuple...)
			return out, true, nil
		}
		t, ok, err := j.nextProbe(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		j.probeTuple = t
		matches := j.table[j.ProbeKey(t)]
		if j.Anti {
			anyMatch := false
			for _, b := range matches {
				if j.Pred == nil || j.Pred(b, t) {
					anyMatch = true
					break
				}
			}
			j.matches, j.matchIdx = nil, 0
			if !anyMatch {
				return t, true, nil
			}
			continue
		}
		j.matches = matches
		j.matchIdx = 0
	}
}

// Close implements Operator.
func (j *HashJoin) Close(ctx *Ctx) error {
	j.table = nil
	j.matches = nil
	if !j.spilled {
		return j.Probe.Close(ctx)
	}
	// Temps that were not fully consumed are reclaimed by ReclaimTemps.
	return nil
}
