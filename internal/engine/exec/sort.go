package exec

import (
	"container/heap"
	"sort"

	"hstoragedb/internal/engine/catalog"
)

// Sort is the blocking external sort operator. Runs of ctx.WorkMem tuples
// are sorted in memory and spilled to temporary files, then merged k-way;
// the run files are deleted (and TRIMmed) when the merge finishes.
type Sort struct {
	base
	Child Operator
	Less  func(a, b catalog.Tuple) bool

	// in-memory path
	rows []catalog.Tuple
	idx  int

	// external path
	runs  []*TempFile
	merge *runHeap
}

// Children implements Operator.
func (s *Sort) Children() []Operator { return []Operator{s.Child} }

// Blocking implements Operator.
func (s *Sort) Blocking() bool { return true }

// Access implements Operator.
func (s *Sort) Access() (AccessInfo, bool) { return AccessInfo{}, false }

// Open implements Operator: consume the child into sorted runs.
func (s *Sort) Open(ctx *Ctx) error {
	s.rows = nil
	s.idx = 0
	s.runs = nil
	s.merge = nil

	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	for {
		t, ok, err := s.Child.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx.ChargeTuples(1)
		s.rows = append(s.rows, t)
		if ctx.WorkMem > 0 && len(s.rows) >= ctx.WorkMem {
			if err := s.spillRun(ctx); err != nil {
				return err
			}
		}
	}
	if err := s.Child.Close(ctx); err != nil {
		return err
	}

	if len(s.runs) == 0 {
		sort.SliceStable(s.rows, func(i, j int) bool { return s.Less(s.rows[i], s.rows[j]) })
		return nil
	}
	// Spill the trailing partial run and set up the merge.
	if len(s.rows) > 0 {
		if err := s.spillRun(ctx); err != nil {
			return err
		}
	}
	s.merge = &runHeap{less: s.Less}
	for _, run := range s.runs {
		r := run.NewReader()
		t, ok, err := r.Next(ctx)
		if err != nil {
			return err
		}
		if ok {
			s.merge.items = append(s.merge.items, runItem{tuple: t, reader: r})
		}
	}
	heap.Init(s.merge)
	return nil
}

// spillRun sorts and writes the buffered tuples as one run.
func (s *Sort) spillRun(ctx *Ctx) error {
	sort.SliceStable(s.rows, func(i, j int) bool { return s.Less(s.rows[i], s.rows[j]) })
	tf, err := ctx.CreateTemp()
	if err != nil {
		return err
	}
	for _, t := range s.rows {
		if err := tf.Append(ctx, t); err != nil {
			return err
		}
	}
	if err := tf.Finish(ctx); err != nil {
		return err
	}
	s.runs = append(s.runs, tf)
	s.rows = s.rows[:0]
	return nil
}

// Next implements Operator.
func (s *Sort) Next(ctx *Ctx) (catalog.Tuple, bool, error) {
	if s.merge == nil {
		if s.idx >= len(s.rows) {
			return nil, false, nil
		}
		t := s.rows[s.idx]
		s.idx++
		return t, true, nil
	}
	if s.merge.Len() == 0 {
		// Merge finished: the runs' lifetime is over.
		for _, run := range s.runs {
			if err := ctx.DropTemp(run); err != nil {
				return nil, false, err
			}
		}
		s.runs = nil
		return nil, false, nil
	}
	top := &s.merge.items[0]
	out := top.tuple
	t, ok, err := top.reader.Next(ctx)
	if err != nil {
		return nil, false, err
	}
	if ok {
		top.tuple = t
		heap.Fix(s.merge, 0)
	} else {
		heap.Pop(s.merge)
	}
	return out, true, nil
}

// Close implements Operator.
func (s *Sort) Close(ctx *Ctx) error {
	s.rows = nil
	s.merge = nil
	return nil
}

// runItem is one merge input.
type runItem struct {
	tuple  catalog.Tuple
	reader *TempReader
}

// runHeap is the k-way merge heap.
type runHeap struct {
	items []runItem
	less  func(a, b catalog.Tuple) bool
}

func (h *runHeap) Len() int           { return len(h.items) }
func (h *runHeap) Less(i, j int) bool { return h.less(h.items[i].tuple, h.items[j].tuple) }
func (h *runHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *runHeap) Push(x interface{}) { h.items = append(h.items, x.(runItem)) }
func (h *runHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// TopN keeps the N smallest tuples by Less without spilling (bounded
// memory): the executor's ORDER BY ... LIMIT pattern.
type TopN struct {
	base
	Child Operator
	N     int
	Less  func(a, b catalog.Tuple) bool

	rows []catalog.Tuple
	idx  int
}

// Children implements Operator.
func (t *TopN) Children() []Operator { return []Operator{t.Child} }

// Blocking implements Operator.
func (t *TopN) Blocking() bool { return true }

// Access implements Operator.
func (t *TopN) Access() (AccessInfo, bool) { return AccessInfo{}, false }

// Open implements Operator.
func (t *TopN) Open(ctx *Ctx) error {
	t.rows = nil
	t.idx = 0
	if err := t.Child.Open(ctx); err != nil {
		return err
	}
	for {
		tu, ok, err := t.Child.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx.ChargeTuples(1)
		t.rows = append(t.rows, tu)
		if len(t.rows) > 4*t.N && t.N > 0 {
			t.shrink()
		}
	}
	t.shrink()
	return t.Child.Close(ctx)
}

// shrink sorts and truncates the candidate buffer to N.
func (t *TopN) shrink() {
	sort.SliceStable(t.rows, func(i, j int) bool { return t.Less(t.rows[i], t.rows[j]) })
	if t.N > 0 && len(t.rows) > t.N {
		t.rows = t.rows[:t.N]
	}
}

// Next implements Operator.
func (t *TopN) Next(ctx *Ctx) (catalog.Tuple, bool, error) {
	if t.idx >= len(t.rows) {
		return nil, false, nil
	}
	out := t.rows[t.idx]
	t.idx++
	return out, true, nil
}

// Close implements Operator.
func (t *TopN) Close(ctx *Ctx) error {
	t.rows = nil
	return nil
}
