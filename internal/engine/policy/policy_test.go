package policy

import (
	"testing"
	"testing/quick"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/pagestore"
)

// TestFunction1PaperExample reproduces the worked example of Section 4.2.2
// (Figure 2): available priority range [2,5]; random operators at levels
// 0 (t.a, t.c after blocking recalculation) and 2 (t.b).
func TestFunction1PaperExample(t *testing.T) {
	space := dss.PolicySpace{N: 8, T: 7, RandLow: 2, RandHigh: 5, WriteBufferFrac: 0.1}
	llow, lhigh := 0, 2
	if got := RandomPriority(space, 0, llow, lhigh); got != 2 {
		t.Errorf("t.a (level 0) priority %v, want 2", got)
	}
	if got := RandomPriority(space, 2, llow, lhigh); got != 4 {
		t.Errorf("t.b (level 2) priority %v, want 4", got)
	}
}

func TestFunction1Branches(t *testing.T) {
	space := dss.PolicySpace{N: 8, T: 7, RandLow: 2, RandHigh: 6}
	// Branch 1: Cprio = 0 -> always n1.
	collapsed := dss.PolicySpace{N: 8, T: 7, RandLow: 3, RandHigh: 3}
	if got := RandomPriority(collapsed, 5, 0, 9); got != 3 {
		t.Errorf("collapsed range priority %v, want 3", got)
	}
	// Branch 2: Lgap = 0 -> n1.
	if got := RandomPriority(space, 4, 4, 4); got != 2 {
		t.Errorf("zero gap priority %v, want n1=2", got)
	}
	// Branch 3: Cprio >= Lgap -> n1 + i - llow.
	if got := RandomPriority(space, 3, 1, 4); got != 4 {
		t.Errorf("linear priority %v, want 4", got)
	}
	// Branch 4: Cprio < Lgap -> scaled; neighbors may share priorities.
	// Lgap = 8, Cprio = 4: level 4 of [0,8] -> n1 + floor(4*4/8) = 4.
	if got := RandomPriority(space, 4, 0, 8); got != 4 {
		t.Errorf("scaled priority %v, want 4", got)
	}
	if got := RandomPriority(space, 8, 0, 8); got != 6 {
		t.Errorf("top level priority %v, want n2=6", got)
	}
}

// Property: Function (1) always lands inside [n1, n2] and is monotone in
// the operator level.
func TestFunction1Properties(t *testing.T) {
	space := dss.DefaultPolicySpace()
	f := func(levelRaw, lowRaw, gapRaw uint8) bool {
		llow := int(lowRaw % 16)
		lhigh := llow + int(gapRaw%16)
		level := llow + int(levelRaw)%(lhigh-llow+1)
		p := int(RandomPriority(space, level, llow, lhigh))
		if p < space.RandLow || p > space.RandHigh {
			return false
		}
		// Monotonicity: one level deeper never yields a better (smaller)
		// priority for the shallower operator.
		if level+1 <= lhigh {
			p2 := int(RandomPriority(space, level+1, llow, lhigh))
			if p2 < p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTagTypes(t *testing.T) {
	cases := []struct {
		tag  Tag
		want RequestType
	}{
		{Tag{Content: Temp}, TempRequest},
		{Tag{Content: Temp, Update: true}, TempRequest}, // temp beats update
		{Tag{Content: Table, Update: true}, UpdateRequest},
		{Tag{Content: Table, Pattern: Random}, RandomRequest},
		{Tag{Content: Index, Pattern: Random}, RandomRequest},
		{Tag{Content: Table, Pattern: Sequential}, SequentialRequest},
	}
	for i, c := range cases {
		if got := c.tag.Type(); got != c.want {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
	}
}

// TestTable1Mapping verifies the full policy assignment table (Table 1).
func TestTable1Mapping(t *testing.T) {
	a := NewAssignmentTable(dss.DefaultPolicySpace())
	space := a.Space

	if got := a.Classify(Tag{Content: Temp}); got != 1 {
		t.Errorf("temp -> %v, want priority 1", got)
	}
	if got := a.Classify(Tag{Content: Table, Pattern: Sequential}); got != space.Sequential() {
		t.Errorf("sequential -> %v, want %v (N-1)", got, space.Sequential())
	}
	if got := a.Classify(Tag{Content: Table, Update: true}); got != dss.ClassWriteBuffer {
		t.Errorf("update -> %v, want write buffer", got)
	}
	if got := a.TrimClass(); got != space.Eviction() {
		t.Errorf("trim -> %v, want %v (N)", got, space.Eviction())
	}
	// Random requests land in [n1, n2].
	got := a.Classify(Tag{Content: Index, Pattern: Random, Level: 0})
	if int(got) < space.RandLow || int(got) > space.RandHigh {
		t.Errorf("random -> %v, outside [%d,%d]", got, space.RandLow, space.RandHigh)
	}
}

func TestRegistryRule5(t *testing.T) {
	r := NewRegistry()
	oid := pagestore.ObjectID(42)

	// Query A accesses oid at level 2; its plan spans levels [0, 4].
	qa := QueryInfo{Levels: map[pagestore.ObjectID][]int{oid: {2}}, LLow: 0, LHigh: 4, HasRandom: true}
	// Query B accesses oid at level 1; plan spans [1, 3].
	qb := QueryInfo{Levels: map[pagestore.ObjectID][]int{oid: {1}}, LLow: 1, LHigh: 3, HasRandom: true}

	r.Register(qa)
	if min, ok := r.MinLevel(oid); !ok || min != 2 {
		t.Fatalf("min level %d %v", min, ok)
	}
	r.Register(qb)
	// Rule 5: the object gets the highest priority = the lowest level.
	if min, ok := r.MinLevel(oid); !ok || min != 1 {
		t.Fatalf("min level with B %d %v, want 1", min, ok)
	}
	gl, gh := r.Bounds()
	if gl != 0 || gh != 4 {
		t.Fatalf("bounds (%d,%d), want (0,4)", gl, gh)
	}
	if r.ActiveQueries() != 2 {
		t.Fatalf("active %d", r.ActiveQueries())
	}

	r.Unregister(qa)
	if min, _ := r.MinLevel(oid); min != 1 {
		t.Fatalf("min after A leaves %d, want 1", min)
	}
	gl, gh = r.Bounds()
	if gl != 1 || gh != 3 {
		t.Fatalf("bounds after A leaves (%d,%d)", gl, gh)
	}
	r.Unregister(qb)
	if _, ok := r.MinLevel(oid); ok {
		t.Fatal("object still registered after all queries left")
	}
	if r.ActiveQueries() != 0 {
		t.Fatal("active queries remain")
	}
}

func TestRegistryDuplicateLevels(t *testing.T) {
	r := NewRegistry()
	oid := pagestore.ObjectID(7)
	q := QueryInfo{Levels: map[pagestore.ObjectID][]int{oid: {3, 3, 5}}, LLow: 3, LHigh: 5, HasRandom: true}
	r.Register(q)
	r.Register(q) // a second identical query
	if min, _ := r.MinLevel(oid); min != 3 {
		t.Fatalf("min %d", min)
	}
	r.Unregister(q)
	if min, ok := r.MinLevel(oid); !ok || min != 3 {
		t.Fatalf("one copy should remain: %d %v", min, ok)
	}
	r.Unregister(q)
	if _, ok := r.MinLevel(oid); ok {
		t.Fatal("registry leaks")
	}
}

func TestRegistryIgnoresNonRandomQueries(t *testing.T) {
	r := NewRegistry()
	r.Register(QueryInfo{HasRandom: false, LLow: 9, LHigh: 9})
	if gl, gh := r.Bounds(); gl != 0 || gh != 0 {
		t.Fatalf("bounds moved by non-random query: (%d,%d)", gl, gh)
	}
}

func TestClassifyUsesRegistry(t *testing.T) {
	a := NewAssignmentTable(dss.DefaultPolicySpace())
	oid := pagestore.ObjectID(9)

	// Concurrent query accesses oid at level 0 while plans span [0, 3].
	a.Registry.Register(QueryInfo{
		Levels: map[pagestore.ObjectID][]int{oid: {0}}, LLow: 0, LHigh: 3, HasRandom: true,
	})
	// This request's own operator sits at level 3, but Rule 5 gives the
	// object the level-0 priority.
	got := a.Classify(Tag{Object: oid, Content: Table, Pattern: Random, Level: 3})
	if got != dss.Class(a.Space.RandLow) {
		t.Fatalf("rule 5 priority %v, want %d", got, a.Space.RandLow)
	}

	// With Rule 5 disabled the request falls back to its own level.
	a.DisableRule5 = true
	got = a.Classify(Tag{Object: oid, Content: Table, Pattern: Random, Level: 3})
	if got == dss.Class(a.Space.RandLow) {
		t.Fatalf("rule 5 disabled but still using registry: %v", got)
	}
}

func TestStringers(t *testing.T) {
	if Table.String() != "table" || Index.String() != "index" || Temp.String() != "temp" {
		t.Fatal("content type strings")
	}
	if Sequential.String() != "sequential" || Random.String() != "random" {
		t.Fatal("pattern strings")
	}
	if len(RequestTypes()) != 5 {
		t.Fatal("request type list")
	}
}

// TestMaintenanceClasses pins the classes the storage manager attaches
// to backend maintenance I/O, and the DisableCompactionClass ablation:
// stripped of its dedicated band, compaction traffic degrades to the
// write-buffer class and competes with real updates for cache space.
func TestMaintenanceClasses(t *testing.T) {
	a := NewAssignmentTable(dss.DefaultPolicySpace())
	if got := a.CompactionClass(); got != dss.ClassCompaction {
		t.Errorf("CompactionClass = %v", got)
	}
	if !a.Space.NonCaching(a.CompactionClass()) {
		t.Error("compaction class admitted to cache")
	}
	if got := a.MetaClass(); got != a.Space.Temporary() {
		t.Errorf("MetaClass = %v, want the pinned temporary priority", got)
	}
	if a.Space.NonCaching(a.MetaClass()) {
		t.Error("structure blocks must be cacheable")
	}
	if got := a.TrimClass(); got != a.Space.Eviction() {
		t.Errorf("TrimClass = %v", got)
	}

	a.DisableCompactionClass = true
	if got := a.CompactionClass(); got != dss.ClassWriteBuffer {
		t.Errorf("ablated CompactionClass = %v, want write buffer", got)
	}
	if a.Space.NonCaching(a.CompactionClass()) {
		t.Error("ablated compaction must pollute the write buffer, i.e. be cacheable")
	}
}
