package policy

import (
	"fmt"
	"testing"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/pagestore"
)

// TestClassificationMatrix drives the assignment table through every
// (content type x pattern x update flag) combination and checks the
// resulting request type and QoS class against Rules 1-5 plus the log
// class of the OLTP extension. The matrix runs with an empty registry
// (single-query degenerate case: Rule 2 collapses to the lowest random
// priority because the global bounds carry no level spread).
func TestClassificationMatrix(t *testing.T) {
	space := dss.DefaultPolicySpace() // N=8, t=7, random range [2,6]
	table := NewAssignmentTable(space)

	cases := []struct {
		content  ContentType
		pattern  Pattern
		update   bool
		wantType RequestType
		want     dss.Class
	}{
		// Rule 1: sequential requests -> non-caching, non-eviction (N-1).
		{Table, Sequential, false, SequentialRequest, dss.Class(7)},
		{Index, Sequential, false, SequentialRequest, dss.Class(7)},
		// Rule 2 (degenerate): random requests -> lowest random priority.
		{Table, Random, false, RandomRequest, dss.Class(2)},
		{Index, Random, false, RandomRequest, dss.Class(2)},
		// Rule 3: temporary data -> highest priority, whatever else the
		// tag claims.
		{Temp, Sequential, false, TempRequest, dss.Class(1)},
		{Temp, Random, false, TempRequest, dss.Class(1)},
		{Temp, Sequential, true, TempRequest, dss.Class(1)},
		{Temp, Random, true, TempRequest, dss.Class(1)},
		// Rule 4: updates -> write buffer, regardless of pattern.
		{Table, Sequential, true, UpdateRequest, dss.ClassWriteBuffer},
		{Table, Random, true, UpdateRequest, dss.ClassWriteBuffer},
		{Index, Sequential, true, UpdateRequest, dss.ClassWriteBuffer},
		{Index, Random, true, UpdateRequest, dss.ClassWriteBuffer},
		// Log class: WAL traffic -> pinned log class, whatever else the
		// tag claims.
		{Log, Sequential, false, LogRequest, dss.ClassLog},
		{Log, Random, false, LogRequest, dss.ClassLog},
		{Log, Sequential, true, LogRequest, dss.ClassLog},
		{Log, Random, true, LogRequest, dss.ClassLog},
	}
	if len(cases) != 4*2*2 {
		t.Fatalf("matrix incomplete: %d cases, want 16", len(cases))
	}
	for _, c := range cases {
		name := fmt.Sprintf("%v/%v/update=%v", c.content, c.pattern, c.update)
		tag := Tag{Object: 42, Content: c.content, Pattern: c.pattern, Update: c.update}
		if got := tag.Type(); got != c.wantType {
			t.Errorf("%s: type = %v, want %v", name, got, c.wantType)
		}
		if got := table.Classify(tag); got != c.want {
			t.Errorf("%s: class = %v, want %v", name, got, c.want)
		}
	}

	// Rule 3's deletion side: TRIM carries non-caching and eviction (N).
	if got := table.TrimClass(); got != dss.Class(8) {
		t.Errorf("trim class = %v, want 8", got)
	}
}

// TestClassificationRule5 checks the concurrent random case: with queries
// registered, an object's priority comes from the lowest operator level
// touching it, mapped through Function (1) over the global bounds.
func TestClassificationRule5(t *testing.T) {
	space := dss.DefaultPolicySpace()
	table := NewAssignmentTable(space)

	const obj pagestore.ObjectID = 7
	q1 := QueryInfo{Levels: map[pagestore.ObjectID][]int{obj: {3}}, LLow: 1, LHigh: 5, HasRandom: true}
	q2 := QueryInfo{Levels: map[pagestore.ObjectID][]int{obj: {2}}, LLow: 2, LHigh: 4, HasRandom: true}
	table.Registry.Register(q1)
	table.Registry.Register(q2)

	// Global bounds are (1,5); the object's minimum level is 2, so the
	// request classifies at Function(1)(i=2, llow=1, lhigh=5) = n1+1 = 3
	// no matter which level the issuing operator reports.
	tag := Tag{Object: obj, Content: Table, Pattern: Random, Level: 4}
	if got := table.Classify(tag); got != dss.Class(3) {
		t.Errorf("rule 5 class = %v, want 3", got)
	}

	// An object nobody registered uses the tag's own level against the
	// global bounds: Function(1)(i=4, 1, 5) = n1+3 = 5.
	other := Tag{Object: 99, Content: Table, Pattern: Random, Level: 4}
	if got := table.Classify(other); got != dss.Class(5) {
		t.Errorf("unregistered-object class = %v, want 5", got)
	}

	// The ablation switch reproduces the per-query assignment the paper
	// warns about: the tag's own level wins even for shared objects.
	table.DisableRule5 = true
	if got := table.Classify(tag); got != dss.Class(5) {
		t.Errorf("rule 5 disabled: class = %v, want 5", got)
	}
	table.DisableRule5 = false

	table.Registry.Unregister(q1)
	table.Registry.Unregister(q2)
	if got := table.Classify(tag); got != dss.Class(2) {
		t.Errorf("after unregister: class = %v, want 2", got)
	}
}

// TestLogClassAblation checks the log ablation: with DisableLogClass the
// WAL traffic degrades to ordinary Rule 4 update treatment.
func TestLogClassAblation(t *testing.T) {
	table := NewAssignmentTable(dss.DefaultPolicySpace())
	table.DisableLogClass = true
	tag := Tag{Object: 1, Content: Log, Pattern: Sequential}
	if got := tag.Type(); got != LogRequest {
		t.Errorf("type = %v, want log (the tag keeps its semantics)", got)
	}
	if got := table.Classify(tag); got != dss.ClassWriteBuffer {
		t.Errorf("ablated class = %v, want write-buffer", got)
	}
}
