// Package policy implements Section 4 of the paper: the classification of
// DBMS I/O requests and the five rules that map each request type to a QoS
// policy (caching priority), including Function (1) for random requests
// and the shared-memory registry used under concurrency (Rule 5).
package policy

import (
	"fmt"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/pagestore"
)

// ContentType is the semantic content category of an accessed object
// (Section 4.1).
type ContentType int

const (
	// Table is a regular user table.
	Table ContentType = iota
	// Index is an index structure.
	Index
	// Temp is temporary data generated during query execution.
	Temp
	// Log is write-ahead-log data: segment files and WAL metadata. Log
	// writes gate transaction commit, making them the most
	// latency-critical request class of the OLTP extension (Section 8).
	Log
)

// String implements fmt.Stringer.
func (c ContentType) String() string {
	switch c {
	case Table:
		return "table"
	case Index:
		return "index"
	case Temp:
		return "temp"
	case Log:
		return "log"
	}
	return fmt.Sprintf("content(%d)", int(c))
}

// Pattern is the access pattern the query optimizer determined for a
// request.
type Pattern int

const (
	// Sequential marks requests from sequential scans.
	Sequential Pattern = iota
	// Random marks requests from index scans (both the index pages and
	// the table pages they fetch).
	Random
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	if p == Sequential {
		return "sequential"
	}
	return "random"
}

// RequestType is the classification of Section 4.1: (1) sequential,
// (2) random, (3) temporary data, (4) update — extended with (5) log,
// the request class the OLTP workload of Section 8 adds.
type RequestType int

const (
	// SequentialRequest marks requests issued by sequential scans
	// (Rule 1: non-caching, non-eviction).
	SequentialRequest RequestType = iota
	// RandomRequest marks requests issued by index scans and the table
	// fetches they drive (Rules 2 and 5: level-derived priority).
	RandomRequest
	// TempRequest marks temporary-data requests (Rule 3: highest
	// caching priority, TRIMmed on deletion).
	TempRequest
	// UpdateRequest marks data-modification requests (Rule 4: the
	// write-buffer policy).
	UpdateRequest
	// LogRequest marks write-ahead-log traffic (the OLTP extension's
	// pinned highest-priority class).
	LogRequest
)

// String implements fmt.Stringer.
func (t RequestType) String() string {
	switch t {
	case SequentialRequest:
		return "sequential"
	case RandomRequest:
		return "random"
	case TempRequest:
		return "temporary"
	case UpdateRequest:
		return "update"
	case LogRequest:
		return "log"
	}
	return fmt.Sprintf("reqtype(%d)", int(t))
}

// RequestTypes lists the classes Figure 4 plots, plus the log class of
// the OLTP extension.
func RequestTypes() []RequestType {
	return []RequestType{SequentialRequest, RandomRequest, TempRequest, UpdateRequest, LogRequest}
}

// Tag is the semantic information the buffer pool passes along with each
// page request — the information a conventional storage manager strips
// away.
type Tag struct {
	Object  pagestore.ObjectID
	Content ContentType
	Pattern Pattern
	// Level is the query-plan level of the issuing operator (after
	// blocking-operator recalculation, Section 4.2.2). Meaningful only
	// for Random pattern.
	Level int
	// Update marks data-modification requests (Rule 4).
	Update bool
}

// Type derives the request type of Section 4.1 from a tag.
func (t Tag) Type() RequestType {
	switch {
	case t.Content == Log:
		return LogRequest
	case t.Content == Temp:
		return TempRequest
	case t.Update:
		return UpdateRequest
	case t.Pattern == Random:
		return RandomRequest
	default:
		return SequentialRequest
	}
}

// RandomPriority implements Function (1): the priority of a random request
// issued by an operator at Level i, given the lowest and highest levels of
// random-access operators (llow, lhigh) and the available priority range
// [n1, n2] of the policy space.
func RandomPriority(space dss.PolicySpace, i, llow, lhigh int) dss.Class {
	n1, n2 := space.RandLow, space.RandHigh
	cprio := n2 - n1
	lgap := lhigh - llow
	switch {
	case cprio == 0:
		return dss.Class(n1)
	case lgap == 0:
		return dss.Class(n1)
	case i <= llow:
		return dss.Class(n1)
	case cprio >= lgap:
		p := n1 + i - llow
		if p > n2 {
			p = n2
		}
		return dss.Class(p)
	default:
		// Not enough priorities for every level: spread by relative
		// location, letting neighboring levels share a priority.
		p := n1 + cprio*(i-llow)/lgap
		if p > n2 {
			p = n2
		}
		return dss.Class(p)
	}
}

// AssignmentTable is the storage manager extension of Figure 1: it turns a
// request's semantic tag into the QoS policy delivered with the request.
// It consults the concurrency registry so Rule 5 applies whenever multiple
// queries run (with a single query registered it degenerates to Rule 2).
type AssignmentTable struct {
	Space    dss.PolicySpace
	Registry *Registry

	// DisableRule5, when set, computes random priorities from the tag's
	// own level and the registering query's bounds only — the
	// "non-deterministic priority assignment" the paper warns about.
	// Used by the ablation benchmarks.
	DisableRule5 bool

	// DisableLogClass, when set, strips the log classification: WAL
	// traffic is delivered as ordinary update traffic (Rule 4), the way a
	// classification-unaware storage manager would emit it. Used by the
	// OLTP ablation experiment.
	DisableLogClass bool

	// DisableCompactionClass, when set, strips the compaction
	// classification from backend maintenance I/O: flush and compaction
	// traffic is delivered as ordinary update traffic (Rule 4), the way
	// a classification-unaware storage manager — which cannot tell a
	// compaction write from a user update — would emit it. It then
	// competes with real updates for write-buffer cache space and rank.
	// Used by the lsm ablation experiment.
	DisableCompactionClass bool
}

// NewAssignmentTable builds an assignment table over a fresh registry.
func NewAssignmentTable(space dss.PolicySpace) *AssignmentTable {
	return &AssignmentTable{Space: space, Registry: NewRegistry()}
}

// Classify maps a tagged request to its caching priority:
//
//	Rule 1: sequential            -> N-1 (non-caching, non-eviction)
//	Rule 2: random (single query) -> Function (1) over plan levels
//	Rule 3: temporary data        -> 1 (highest)
//	Rule 4: update                -> write buffer
//	Rule 5: random (concurrent)   -> per-object highest priority from the
//	                                 global registry
//	Log:    WAL traffic           -> pinned highest-priority log class
func (a *AssignmentTable) Classify(tag Tag) dss.Class {
	switch tag.Type() {
	case LogRequest:
		if a.DisableLogClass {
			// Ablation: log writes are indistinguishable from ordinary
			// update traffic.
			return dss.ClassWriteBuffer
		}
		return dss.ClassLog
	case TempRequest:
		return a.Space.Temporary()
	case UpdateRequest:
		return dss.ClassWriteBuffer
	case SequentialRequest:
		return a.Space.Sequential()
	case RandomRequest:
		level := tag.Level
		gllow, glhigh := level, level
		if a.Registry != nil && !a.DisableRule5 {
			if min, ok := a.Registry.MinLevel(tag.Object); ok {
				// Rule 5.2: among concurrent queries the object gets the
				// highest of all independently determined priorities,
				// i.e. the one from the lowest operator level.
				level = min
			}
			gllow, glhigh = a.Registry.Bounds()
		} else if a.Registry != nil {
			gllow, glhigh = a.Registry.Bounds()
		}
		return RandomPriority(a.Space, level, gllow, glhigh)
	}
	return dss.ClassNone
}

// TrimClass returns the policy attached to temporary-data deletion (Rule
// 3): "non-caching and eviction".
func (a *AssignmentTable) TrimClass() dss.Class { return a.Space.Eviction() }

// CompactionClass returns the policy attached to storage-backend
// maintenance I/O (memtable flushes, compaction sweeps): the dedicated
// compaction band, or — under the DisableCompactionClass ablation — the
// write-buffer class a classification-unaware manager would deliver
// bulk rewrites under.
func (a *AssignmentTable) CompactionClass() dss.Class {
	if a.DisableCompactionClass {
		return dss.ClassWriteBuffer
	}
	return dss.ClassCompaction
}

// MetaClass returns the policy attached to backend structure blocks
// (bloom filters, index blocks) read on the foreground path: the
// highest cacheable priority, so the hybrid cache pins hot structure
// blocks the way Rule 3 pins temporary data — one structure block
// serves every probe of its table.
func (a *AssignmentTable) MetaClass() dss.Class { return a.Space.Temporary() }
