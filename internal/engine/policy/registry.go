package policy

import (
	"sync"

	"hstoragedb/internal/pagestore"
)

// QueryInfo is the random-access footprint a query contributes to the
// global registry when it starts (Section 4.3): for every object it will
// access randomly, the plan-tree levels of the accessing operators, plus
// the query's own llow / lhigh bounds.
type QueryInfo struct {
	// Levels maps each randomly accessed object to the levels of its
	// accessing operators (one entry per operator).
	Levels map[pagestore.ObjectID][]int
	// LLow and LHigh are the lowest and highest levels over all random
	// access operators of the query plan.
	LLow, LHigh int
	// HasRandom reports whether the plan contains random operators at
	// all; queries without them contribute nothing to the bounds.
	HasRandom bool
}

// levelCount is one element of the per-object list H<oid, list>: count
// operators at level `level` are currently accessing the object.
type levelCount struct {
	level int
	count int
}

// Registry is the shared-memory structure of Section 4.3: a hash table
// H<oid, list> plus the global bounds gl_low and gl_high, updated upon the
// start and end of each query. It is the mechanism behind Rule 5.
type Registry struct {
	mu      sync.Mutex
	objects map[pagestore.ObjectID][]levelCount
	llows   map[int]int // multiset of per-query llow values
	lhighs  map[int]int // multiset of per-query lhigh values
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		objects: make(map[pagestore.ObjectID][]levelCount),
		llows:   make(map[int]int),
		lhighs:  make(map[int]int),
	}
}

// Register records a starting query's footprint.
func (r *Registry) Register(q QueryInfo) {
	if !q.HasRandom {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for oid, levels := range q.Levels {
		for _, lv := range levels {
			r.bump(oid, lv, 1)
		}
	}
	r.llows[q.LLow]++
	r.lhighs[q.LHigh]++
}

// Unregister removes a finished query's footprint.
func (r *Registry) Unregister(q QueryInfo) {
	if !q.HasRandom {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for oid, levels := range q.Levels {
		for _, lv := range levels {
			r.bump(oid, lv, -1)
		}
	}
	if r.llows[q.LLow]--; r.llows[q.LLow] <= 0 {
		delete(r.llows, q.LLow)
	}
	if r.lhighs[q.LHigh]--; r.lhighs[q.LHigh] <= 0 {
		delete(r.lhighs, q.LHigh)
	}
}

// bump adjusts the <level, count> entry for oid. Caller holds r.mu.
func (r *Registry) bump(oid pagestore.ObjectID, level, delta int) {
	list := r.objects[oid]
	for i := range list {
		if list[i].level == level {
			list[i].count += delta
			if list[i].count <= 0 {
				list = append(list[:i], list[i+1:]...)
			}
			if len(list) == 0 {
				delete(r.objects, oid)
			} else {
				r.objects[oid] = list
			}
			return
		}
	}
	if delta > 0 {
		r.objects[oid] = append(list, levelCount{level: level, count: delta})
	}
}

// MinLevel returns the lowest plan level at which any running query's
// operator randomly accesses oid. The second result is false when no
// query currently touches the object.
func (r *Registry) MinLevel(oid pagestore.ObjectID) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.objects[oid]
	if len(list) == 0 {
		return 0, false
	}
	min := list[0].level
	for _, lc := range list[1:] {
		if lc.level < min {
			min = lc.level
		}
	}
	return min, true
}

// Bounds returns (gl_low, gl_high): the minimum of all registered llow
// values and the maximum of all lhigh values. With no registered queries
// it returns (0, 0).
func (r *Registry) Bounds() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	gllow, glhigh := 0, 0
	first := true
	for lv := range r.llows {
		if first || lv < gllow {
			gllow = lv
		}
		first = false
	}
	first = true
	for lv := range r.lhighs {
		if first || lv > glhigh {
			glhigh = lv
		}
		first = false
	}
	return gllow, glhigh
}

// ActiveQueries reports how many registered queries contribute to the
// bounds (by llow multiset cardinality).
func (r *Registry) ActiveQueries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.llows {
		n += c
	}
	return n
}
