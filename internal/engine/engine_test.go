package engine_test

import (
	"sync"
	"testing"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/exec"
	"hstoragedb/internal/hybrid"
)

func kvSchema() catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "k", Type: catalog.Int64},
		catalog.Column{Name: "v", Type: catalog.Float64},
	)
}

func loadedDB(t *testing.T, rows int64) (*engine.Database, *engine.Instance) {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.CreateTable("kv", kvSchema()); err != nil {
		t.Fatal(err)
	}
	inst, err := db.NewInstance(engine.DefaultInstanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := inst.NewLoader("kv")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < rows; i++ {
		if _, err := l.Add(catalog.Tuple{catalog.IntDatum(i), catalog.FloatDatum(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return db, inst
}

func TestCreateTableAndLoad(t *testing.T) {
	db, _ := loadedDB(t, 500)
	if db.Cat.MustTable("kv").Rows != 500 {
		t.Fatalf("rows %d", db.Cat.MustTable("kv").Rows)
	}
	if db.Store.Pages(db.Cat.MustTable("kv").ID) == 0 {
		t.Fatal("no pages loaded")
	}
	if _, err := db.CreateTable("kv", kvSchema()); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestBuildIndexValidation(t *testing.T) {
	db, inst := loadedDB(t, 100)
	if _, err := inst.BuildIndex("ix", "nope", "k"); err == nil {
		t.Fatal("index on unknown table accepted")
	}
	if _, err := inst.BuildIndex("ix", "kv", "nope"); err == nil {
		t.Fatal("index on unknown column accepted")
	}
	if _, err := inst.BuildIndex("ix", "kv", "v"); err == nil {
		t.Fatal("index on float column accepted")
	}
	if _, err := inst.BuildIndex("ix", "kv", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Cat.Index("ix"); err != nil {
		t.Fatal("index not registered")
	}
}

func TestExecuteRegistersAndUnregisters(t *testing.T) {
	db, inst := loadedDB(t, 1000)
	if _, err := inst.BuildIndex("ix", "kv", "k"); err != nil {
		t.Fatal(err)
	}
	op := &exec.IndexScan{
		Index: db.Cat.MustIndex("ix"),
		Table: exec.NewTableHandle(db.Cat.MustTable("kv")),
		Lo:    0, Hi: 100,
	}
	sess := inst.NewSession()
	res, err := sess.Execute(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 101 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	if res.Elapsed <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	// After execution the Rule 5 registry must be empty again.
	if inst.Mgr.Registry().ActiveQueries() != 0 {
		t.Fatal("query left its footprint registered")
	}
}

func TestSessionsShareDevices(t *testing.T) {
	db, inst := loadedDB(t, 3000)
	scan := func() exec.Operator {
		return &exec.SeqScan{Table: exec.NewTableHandle(db.Cat.MustTable("kv"))}
	}
	// Run one scan alone to get a baseline.
	solo := inst.NewSession()
	_, soloTime, err := solo.ExecuteDiscard(scan())
	if err != nil {
		t.Fatal(err)
	}

	// Two fresh sessions race for the same devices; the buffer pool is
	// dropped so both generate real I/O.
	inst.DropBufferPool()
	var wg sync.WaitGroup
	times := make([]int64, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := inst.NewSession()
			_, elapsed, err := sess.ExecuteDiscard(scan())
			if err != nil {
				t.Error(err)
				return
			}
			times[i] = int64(elapsed)
		}(i)
	}
	wg.Wait()
	// At least one of the contending scans must take longer than the
	// solo cold scan would (device queueing), modulo buffer pool hits.
	if times[0] == 0 || times[1] == 0 {
		t.Fatalf("contending scans took no time: %v", times)
	}
	_ = soloTime
}

func TestInstanceConfigDefaults(t *testing.T) {
	db := engine.NewDatabase()
	inst, err := db.NewInstance(engine.InstanceConfig{
		Storage: hybrid.Config{Mode: hybrid.HDDOnly},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Pool.Capacity() != 512 {
		t.Fatalf("default pool %d", inst.Pool.Capacity())
	}
	if inst.Config().WorkMem != 4096 {
		t.Fatalf("default workmem %d", inst.Config().WorkMem)
	}
}

func TestResetStats(t *testing.T) {
	db, inst := loadedDB(t, 200)
	sess := inst.NewSession()
	if _, _, err := sess.ExecuteDiscard(&exec.SeqScan{Table: exec.NewTableHandle(db.Cat.MustTable("kv"))}); err != nil {
		t.Fatal(err)
	}
	inst.ResetStats()
	if inst.Sys.Stats().Hits+inst.Sys.Stats().Misses != 0 {
		t.Fatal("storage stats survive reset")
	}
	if len(inst.Mgr.TypeStats()) != 0 {
		t.Fatal("type stats survive reset")
	}
	if ps := inst.Pool.Stats(); ps.Hits != 0 || ps.Misses != 0 {
		t.Fatal("buffer pool stats survive reset")
	}
}

func TestMultipleInstancesShareData(t *testing.T) {
	db, inst1 := loadedDB(t, 500)
	// A second instance over the same database sees the same rows.
	inst2, err := db.NewInstance(engine.InstanceConfig{
		Storage: hybrid.Config{Mode: hybrid.SSDOnly},
	})
	if err != nil {
		t.Fatal(err)
	}
	scan := &exec.SeqScan{Table: exec.NewTableHandle(db.Cat.MustTable("kv"))}
	n2, _, err := inst2.NewSession().ExecuteDiscard(scan)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 500 {
		t.Fatalf("instance 2 sees %d rows", n2)
	}
	_ = inst1
}
