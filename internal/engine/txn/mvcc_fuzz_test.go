package txn

// Randomized interleaving fuzz: N writer goroutines run balance
// transfers (total is invariant) while M snapshot scanners concurrently
// sum the table. Every snapshot must observe the full account set and
// the exact invariant total — any torn read, dirty read, or
// half-applied transfer breaks the sum. Schedules are seeded and
// deterministic on the simulated clock; the seed count scales with the
// MVCC_FUZZ_SEEDS environment variable (the CI race job runs 1000+).

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/btree"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/heap"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/hybrid"
)

const (
	fuzzAccounts    = 8
	fuzzInitBalance = int64(1000)
)

// fuzzFixture is a one-table bank ("acct": id int64, bal int64) whose
// total balance is invariant under transfers.
type fuzzFixture struct {
	db   *engine.Database
	inst *engine.Instance
	tm   *Manager
	sess *engine.Session
	info *catalog.TableInfo
	file *heap.File
	ix   *btree.Tree
	rids map[int64]catalog.RID
}

func newFuzzFixture(t *testing.T, poolPages int) *fuzzFixture {
	t.Helper()
	db := engine.NewDatabase()
	schema := catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.Int64},
		catalog.Column{Name: "bal", Type: catalog.Int64},
	)
	info, err := db.CreateTable("acct", schema)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := db.NewInstance(engine.InstanceConfig{
		Storage:         hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 512},
		BufferPoolPages: poolPages,
	})
	if err != nil {
		t.Fatal(err)
	}
	z := &fuzzFixture{db: db, inst: inst, sess: inst.NewSession(), info: info,
		file: heap.NewFile(info.ID, info.Schema, policy.Table),
		rids: make(map[int64]catalog.RID)}
	if _, err := inst.BuildIndex("idx_acct_id", "acct", "id"); err != nil {
		t.Fatal(err)
	}
	log, err := wal.New(&z.sess.Clk, inst.Mgr, wal.Config{SegmentPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	z.ix = btree.Open(db.Cat.MustIndex("idx_acct_id").ID, inst.Pool)
	z.tm = NewManager(inst, log)

	// Seed the accounts in one transaction, then checkpoint so the
	// watermark covers them: every snapshot sees the full account set.
	tx, err := z.tm.Begin(z.sess)
	if err != nil {
		t.Fatal(err)
	}
	tx.Op(wal.KindHeapInsert)
	app := z.file.NewAppender(&z.sess.Clk, inst.Pool, 0)
	for id := int64(0); id < fuzzAccounts; id++ {
		rid, err := app.Append(catalog.Tuple{catalog.IntDatum(id), catalog.IntDatum(fuzzInitBalance)})
		if err != nil {
			t.Fatal(err)
		}
		z.rids[id] = rid
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	tx.Op(wal.KindIndexInsert)
	for id := int64(0); id < fuzzAccounts; id++ {
		if err := z.ix.Insert(&z.sess.Clk, btree.Entry{Key: id, RID: z.rids[id]}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := z.tm.Checkpoint(z.sess); err != nil {
		t.Fatal(err)
	}
	return z
}

// transfer moves amt from account a to account b in one transaction.
func (z *fuzzFixture) transfer(sess *engine.Session, a, b, amt int64) error {
	tx, err := z.tm.Begin(sess)
	if err != nil {
		return err
	}
	tx.Op(wal.KindHeapUpdate)
	step := func(id, delta int64) error {
		row, err := z.file.Fetch(&sess.Clk, z.inst.Pool, z.rids[id], 0)
		if err != nil {
			return err
		}
		if row == nil {
			return fmt.Errorf("account %d missing", id)
		}
		return z.file.Update(&sess.Clk, z.inst.Pool, z.rids[id],
			catalog.Tuple{catalog.IntDatum(id), catalog.IntDatum(row[1].I + delta)}, 0)
	}
	if err := step(a, -amt); err != nil {
		_ = tx.Abort()
		return err
	}
	if err := step(b, amt); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// snapshotSum scans the table inside one snapshot, returning the row
// count and balance total it observed.
func (z *fuzzFixture) snapshotSum(sess *engine.Session) (rows int, sum int64, err error) {
	snap := z.tm.BeginSnapshot(sess)
	sc := z.file.NewScanner(&sess.Clk, z.inst.Pool, z.db.Store.Pages(z.info.ID))
	for {
		row, _, ok, err := sc.Next()
		if err != nil {
			_ = snap.Abort()
			return 0, 0, err
		}
		if !ok {
			break
		}
		rows++
		sum += row[1].I
	}
	return rows, sum, snap.Commit()
}

// fuzzSeedCount returns the number of seeds to run: MVCC_FUZZ_SEEDS when
// set, else a small default (smaller still under -short).
func fuzzSeedCount(t *testing.T) int {
	if s := os.Getenv("MVCC_FUZZ_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("MVCC_FUZZ_SEEDS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 20
	}
	return 60
}

// TestMVCCInterleavingFuzz is the randomized schedule sweep: per seed,
// 3 writers × several transfers race 2 snapshot scanners, and every
// snapshot sum must equal the invariant total. Between seeds the
// version store must drain to zero.
func TestMVCCInterleavingFuzz(t *testing.T) {
	const (
		writers      = 3
		scanners     = 2
		txnsPer      = 4
		scansPer     = 3
		wantTotal    = fuzzAccounts * fuzzInitBalance
		deadlockCap  = 200
		versionDrain = 0
	)
	z := newFuzzFixture(t, 64)
	seeds := fuzzSeedCount(t)

	for seed := 0; seed < seeds; seed++ {
		var wg sync.WaitGroup
		errCh := make(chan error, writers+scanners)

		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(seed)*7919 + int64(w)))
				sess := z.inst.NewSession()
				for i := 0; i < txnsPer; i++ {
					a := rng.Int63n(fuzzAccounts)
					b := rng.Int63n(fuzzAccounts - 1)
					if b >= a {
						b++
					}
					amt := 1 + rng.Int63n(10)
					var err error
					for try := 0; try < deadlockCap; try++ {
						err = z.transfer(sess, a, b, amt)
						if !errors.Is(err, ErrDeadlock) {
							break
						}
					}
					if err != nil {
						errCh <- fmt.Errorf("seed %d writer %d: %w", seed, w, err)
						return
					}
				}
			}(w)
		}
		for s := 0; s < scanners; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sess := z.inst.NewSession()
				for i := 0; i < scansPer; i++ {
					rows, sum, err := z.snapshotSum(sess)
					if err != nil {
						errCh <- fmt.Errorf("seed %d scanner %d: %w", seed, s, err)
						return
					}
					if rows != fuzzAccounts || sum != wantTotal {
						errCh <- fmt.Errorf("seed %d scanner %d: snapshot saw %d rows sum %d, want %d rows sum %d",
							seed, s, rows, sum, fuzzAccounts, wantTotal)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	}

	// Final state: the invariant holds in a fresh snapshot, and after a
	// checkpoint (readers drained) the version store is empty.
	rows, sum, err := z.snapshotSum(z.inst.NewSession())
	if err != nil {
		t.Fatal(err)
	}
	if rows != fuzzAccounts || sum != wantTotal {
		t.Fatalf("final snapshot: %d rows sum %d", rows, sum)
	}
	if err := z.tm.Checkpoint(z.sess); err != nil {
		t.Fatal(err)
	}
	if vs := z.inst.Pool.VersionStats(); vs.Versions != versionDrain || vs.Snapshots != 0 {
		t.Fatalf("version store did not drain: %+v", vs)
	}
}
