// Snapshot transactions: the read-only MVCC side of the transaction
// layer. A snapshot transaction binds its session stream to the WAL's
// commit-LSN watermark and resolves every Get against the buffer pool's
// version store, bypassing the lock manager entirely — writers never
// block it and it never blocks writers. See txn.go for the mutating
// path and bufferpool's mvcc.go for the version store itself.
package txn

import (
	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/wal"
)

// BeginSnapshot starts a read-only snapshot transaction on the session:
// the transaction observes exactly the state committed (durably) at the
// moment it begins — the WAL's commit-LSN watermark — for its entire
// lifetime, regardless of concurrent commits. It takes no locks, writes
// no log records, and does not hold the checkpoint drain barrier, so a
// long-running snapshot scan never stalls checkpoints or writers. Writes
// through the session stream fail while the snapshot is open. Finish
// with Commit or Abort (equivalent for a snapshot).
func (m *Manager) BeginSnapshot(sess *engine.Session) *Txn {
	lsn := m.log.CommitWatermark()
	m.inst.Pool.BindSnapshot(&sess.Clk, int64(lsn))
	return &Txn{
		m:         m,
		sess:      sess,
		readOnly:  true,
		snapshot:  true,
		snapLSN:   lsn,
		snapStart: sess.Clk.Now(),
	}
}

// SnapshotLSN returns the LSN a snapshot transaction reads at (0 for
// mutating transactions).
func (t *Txn) SnapshotLSN() wal.LSN { return t.snapLSN }

// endSnapshot releases the snapshot binding, sweeps the version store
// (versions kept only for this snapshot become prunable), and records
// the snapshot-age span. Shared by Commit and Abort on the read-only
// path; a bare pre-MVCC read-only Txn (snapshot == false) is a no-op.
func (t *Txn) endSnapshot() {
	if !t.snapshot {
		return
	}
	m := t.m
	m.inst.Pool.UnbindSnapshot(&t.sess.Clk)
	if !m.dead.Load() {
		m.inst.Pool.PruneVersions(int64(m.log.CommitWatermark()))
	}
	if m.tracer != nil {
		now := t.sess.Clk.Now()
		m.tracer.Span("txn", "snapshot", t.sess.Clk.ID(), t.snapStart, now-t.snapStart,
			map[string]any{"lsn": int64(t.snapLSN)})
	}
}
