package txn

import (
	"errors"
	"fmt"
	"testing"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/lsm"
)

// TestCrashRecoveryLSMBackend runs the end-to-end crash acceptance test
// over the LSM backend: the crash drops the memtable along with the
// buffer pool, and WAL replay rebuilds the committed state in a fresh
// memtable. Committed-but-unflushed transactions must come back;
// the loser must not.
func TestCrashRecoveryLSMBackend(t *testing.T) {
	ls := lsm.New(lsm.Config{MemtablePages: 16, L0Tables: 2})
	f := newFixtureOn(t, 16, engine.NewDatabaseOn(ls))
	if err := f.tm.Checkpoint(f.sess); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		if err := f.insert(i, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	// Same harness as the heap test: the 5th commit from now dies after
	// its page records are durable but before its commit record.
	f.tm.CrashAtCommit(5)
	var crashedAt int64
	for i := int64(21); i <= 30; i++ {
		err := f.insert(i, fmt.Sprintf("v%d", i))
		if errors.Is(err, ErrCrashed) {
			crashedAt = i
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if crashedAt != 25 {
		t.Fatalf("crash fired at key %d, want 25", crashedAt)
	}
	f.tm.Crash()
	if n := ls.MemtableLen(); n != 0 {
		t.Fatalf("crash left %d pages in the memtable", n)
	}

	stats := f.attach(t, 16, false)
	if stats.CommittedTxns == 0 || stats.LoserTxns == 0 {
		t.Fatalf("recovery stats: %+v", stats)
	}
	// Replay lands in the backend: fresh memtable and/or flushed
	// tables, depending on how much redo crossed the flush threshold.
	if ls.MemtableLen() == 0 && ls.TablesPerLevel()[0] == 0 && ls.TablesPerLevel()[1] == 0 {
		t.Fatal("recovery replayed nothing into the backend")
	}

	for i := int64(1); i <= 24; i++ {
		if got, want := f.lookup(t, i), fmt.Sprintf("v%d", i); got != want {
			t.Fatalf("committed key %d: got %q want %q", i, got, want)
		}
	}
	if got := f.lookup(t, 25); got != "" {
		t.Fatalf("uncommitted key 25 visible after recovery: %q", got)
	}
	if n := f.scanCount(t); n != 24 {
		t.Fatalf("heap scan found %d tuples, want 24", n)
	}
	if err := f.insert(100, "after"); err != nil {
		t.Fatal(err)
	}
	if got := f.lookup(t, 100); got != "after" {
		t.Fatalf("post-recovery insert: %q", got)
	}
}

// TestCheckpointKilledMidFlush arms an LSM kill point so the checkpoint's
// backend sync dies half-way through writing an SSTable. The checkpoint
// must fail, and after crash recovery every committed transaction must
// still be present — the interrupted flush's orphan blocks discarded,
// redo replaying from the previous checkpoint.
func TestCheckpointKilledMidFlush(t *testing.T) {
	for _, point := range []lsm.KillPoint{lsm.KillMidSSTable, lsm.KillBeforeManifest, lsm.KillMidManifest} {
		t.Run(fmt.Sprint(point), func(t *testing.T) {
			ls := lsm.New(lsm.Config{MemtablePages: 1 << 20, L0Tables: 2})
			f := newFixtureOn(t, 64, engine.NewDatabaseOn(ls))
			if err := f.tm.Checkpoint(f.sess); err != nil {
				t.Fatal(err)
			}
			for i := int64(1); i <= 10; i++ {
				if err := f.insert(i, fmt.Sprintf("v%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			ls.Kill(point)
			if err := f.tm.Checkpoint(f.sess); !errors.Is(err, lsm.ErrKilled) {
				t.Fatalf("checkpoint over killed store: %v, want ErrKilled", err)
			}
			if !ls.Dead() {
				t.Fatal("store survived the kill point")
			}
			f.tm.Crash()

			stats := f.attach(t, 64, false)
			if stats.CommittedTxns == 0 {
				t.Fatalf("recovery stats: %+v", stats)
			}
			if ls.OrphansDiscarded() == 0 {
				// Every point fires after at least part of the SSTable
				// is on disk but before the manifest commits it.
				t.Fatal("recovery discarded no orphans")
			}
			for i := int64(1); i <= 10; i++ {
				if got, want := f.lookup(t, i), fmt.Sprintf("v%d", i); got != want {
					t.Fatalf("committed key %d after kill+recover: got %q want %q", i, got, want)
				}
			}
			// The store is alive again: a full checkpoint now succeeds.
			if err := f.tm.Checkpoint(f.sess); err != nil {
				t.Fatal(err)
			}
		})
	}
}
