package txn

// Crash-recovery and version-GC regression tests for the MVCC snapshot
// layer: version chains are volatile and must die with the instance
// (recovery rebuilds exactly the committed single-version state), and
// the oldest-active-snapshot watermark must both advance as readers
// drain and bound — not leak — version-store memory under long-running
// snapshots.

import (
	"errors"
	"fmt"
	"testing"

	"hstoragedb/internal/obs"
)

// TestMVCCCrashRecoveryWithVersions crashes the instance mid-commit
// while a snapshot scan is open and version chains are populated, then
// recovers: the fresh instance must hold exactly the committed
// single-version state with an empty version store, and snapshots must
// work again immediately.
func TestMVCCCrashRecoveryWithVersions(t *testing.T) {
	f := newFixture(t, 16)
	for id := int64(1); id <= 3; id++ {
		if err := f.insert(id, fmt.Sprintf("v%d", id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.tm.Checkpoint(f.sess); err != nil {
		t.Fatal(err)
	}
	if err := f.updateOn(f.sess, 1, "v1-new"); err != nil {
		t.Fatal(err)
	}

	// A snapshot mid-scan: one row consumed, scanner still open.
	snapSess := f.inst.NewSession()
	snap := f.tm.BeginSnapshot(snapSess)
	sc := f.file.NewScanner(&snapSess.Clk, f.inst.Pool, f.db.Store.Pages(f.info.ID))
	if _, _, ok, err := sc.Next(); err != nil || !ok {
		t.Fatalf("mid-scan read: ok=%v err=%v", ok, err)
	}

	// A commit behind the open snapshot populates the version store.
	if err := f.updateOn(f.sess, 2, "v2-new"); err != nil {
		t.Fatal(err)
	}
	if vs := f.inst.Pool.VersionStats(); vs.Versions == 0 {
		t.Fatal("expected live version chains before the crash")
	}

	// The next commit writes its page records but dies before its commit
	// record; then the instance crashes with the snapshot still open.
	f.tm.CrashAtCommit(1)
	if err := f.updateOn(f.sess, 3, "v3-lost"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed commit: %v", err)
	}
	f.tm.Crash()
	if err := snap.Commit(); err != nil {
		t.Fatalf("closing a snapshot after death: %v", err)
	}

	stats := f.attach(t, 16, false)
	if stats == nil || stats.CommittedTxns == 0 {
		t.Fatalf("recovery stats: %+v", stats)
	}
	if vs := f.inst.Pool.VersionStats(); vs.Versions != 0 || vs.Bytes != 0 || vs.Snapshots != 0 {
		t.Fatalf("recovered pool must start with an empty version store: %+v", vs)
	}
	if got := f.lookup(t, 1); got != "v1-new" {
		t.Fatalf("id 1 after recovery: %q", got)
	}
	if got := f.lookup(t, 2); got != "v2-new" {
		t.Fatalf("id 2 after recovery: %q", got)
	}
	if got := f.lookup(t, 3); got != "v3" {
		t.Fatalf("crashed update must be discarded, id 3: %q", got)
	}
	if n := f.scanCount(t); n != 3 {
		t.Fatalf("scan after recovery: %d rows", n)
	}

	// Recovery republishes the watermark, so new snapshots immediately
	// observe the recovered committed state.
	if f.tm.WAL().CommitWatermark() == 0 {
		t.Fatal("watermark not rebuilt by recovery")
	}
	postSess := f.inst.NewSession()
	post := f.tm.BeginSnapshot(postSess)
	if got := f.lookupOn(t, postSess, 2); got != "v2-new" {
		t.Fatalf("post-recovery snapshot read: %q", got)
	}
	if err := post.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCVersionGCWatermark pins two overlapping snapshots, checks the
// oldest-active-snapshot watermark advances as the older one ends, and
// that occupancy — asserted through the obs gauges — returns to zero
// once readers drain and a checkpoint sweeps the store.
func TestMVCCVersionGCWatermark(t *testing.T) {
	f := newFixture(t, 32)
	set := obs.NewSet()
	f.inst.Pool.Use(set)
	gauge := func(name string) int64 { return set.Registry().Gauge(name).Value() }

	for id := int64(1); id <= 2; id++ {
		if err := f.insert(id, fmt.Sprintf("v%d", id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.tm.Checkpoint(f.sess); err != nil {
		t.Fatal(err)
	}

	sessA, sessB := f.inst.NewSession(), f.inst.NewSession()
	snapA := f.tm.BeginSnapshot(sessA)
	if err := f.updateOn(f.sess, 1, "x1"); err != nil {
		t.Fatal(err)
	}
	if err := f.updateOn(f.sess, 1, "x2"); err != nil {
		t.Fatal(err)
	}
	snapB := f.tm.BeginSnapshot(sessB)
	if got := f.lookupOn(t, sessA, 1); got != "v1" {
		t.Fatalf("older snapshot must predate the updates: %q", got)
	}
	if got := f.lookupOn(t, sessB, 1); got != "x2" {
		t.Fatalf("newer snapshot must see the updates: %q", got)
	}

	vs := f.inst.Pool.VersionStats()
	if vs.Snapshots != 2 || vs.OldestSnapshot != int64(snapA.SnapshotLSN()) {
		t.Fatalf("two snapshots pinned: %+v", vs)
	}
	if vs.Versions == 0 {
		t.Fatal("updates behind a snapshot must retain versions")
	}
	if g := gauge("bufferpool.snapshots"); g != 2 {
		t.Fatalf("snapshots gauge: %d", g)
	}
	if g := gauge("bufferpool.versions"); g != int64(vs.Versions) {
		t.Fatalf("versions gauge %d != stats %d", g, vs.Versions)
	}

	// Ending the older snapshot advances the oldest-active watermark.
	if err := snapA.Commit(); err != nil {
		t.Fatal(err)
	}
	vs2 := f.inst.Pool.VersionStats()
	if vs2.Snapshots != 1 || vs2.OldestSnapshot != int64(snapB.SnapshotLSN()) {
		t.Fatalf("after older snapshot ends: %+v", vs2)
	}
	if vs2.OldestSnapshot <= vs.OldestSnapshot {
		t.Fatalf("oldest-active watermark did not advance: %d -> %d",
			vs.OldestSnapshot, vs2.OldestSnapshot)
	}

	// Draining the last reader and checkpointing empties the store.
	if err := snapB.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.tm.Checkpoint(f.sess); err != nil {
		t.Fatal(err)
	}
	if vs3 := f.inst.Pool.VersionStats(); vs3.Versions != 0 || vs3.Bytes != 0 || vs3.Snapshots != 0 {
		t.Fatalf("store not drained: %+v", vs3)
	}
	for _, name := range []string{"bufferpool.versions", "bufferpool.version.bytes", "bufferpool.snapshots"} {
		if g := gauge(name); g != 0 {
			t.Fatalf("%s gauge after drain: %d", name, g)
		}
	}
	if set.Registry().Counter("bufferpool.snapshot.reads").Value() == 0 {
		t.Fatal("snapshot reads counter never moved")
	}
}

// TestMVCCLongSnapshotBoundsMemory holds one snapshot open across many
// commits to the same page: per-commit pruning must keep the chain at
// the covering version plus a short unsealed tail, not one version per
// commit.
func TestMVCCLongSnapshotBoundsMemory(t *testing.T) {
	const commits = 50
	f := newFixture(t, 32)
	if err := f.insert(1, "v0"); err != nil {
		t.Fatal(err)
	}
	if err := f.tm.Checkpoint(f.sess); err != nil {
		t.Fatal(err)
	}

	snapSess := f.inst.NewSession()
	snap := f.tm.BeginSnapshot(snapSess)
	for i := 0; i < commits; i++ {
		if err := f.updateOn(f.sess, 1, fmt.Sprintf("u%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	vs := f.inst.Pool.VersionStats()
	if vs.Versions == 0 {
		t.Fatal("expected retained versions under the open snapshot")
	}
	if vs.Versions > 6 {
		t.Fatalf("version store leaks under a long snapshot: %d versions after %d commits", vs.Versions, commits)
	}
	if got := f.lookupOn(t, snapSess, 1); got != "v0" {
		t.Fatalf("long snapshot drifted: %q", got)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.tm.Checkpoint(f.sess); err != nil {
		t.Fatal(err)
	}
	if vs := f.inst.Pool.VersionStats(); vs.Versions != 0 {
		t.Fatalf("store not drained after snapshot end: %+v", vs)
	}
}
