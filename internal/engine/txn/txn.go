// Package txn adds Begin/Commit/Abort transaction sessions — the OLTP
// extension of Section 8 — on top of the engine and the write-ahead log.
//
// Mutating transactions run concurrently under page-granular strict
// two-phase locking (package lockmgr): each transaction runs on its own
// session stream, acquires shared/exclusive page locks through buffer
// pool hooks bound to that stream, and holds them until its outcome is
// decided. A lock-manager deadlock surfaces from any heap/btree
// operation as lockmgr.ErrDeadlock; the caller aborts and retries. Lock
// waits are charged to the waiter's session clock (lockmgr.AcquireClk),
// so blocking behind a long transaction costs simulated latency.
//
// Read-only transactions (BeginSnapshot, and BeginRead as its alias) run
// under snapshot isolation without touching the lock manager at all:
// each binds its session stream to the WAL's commit-LSN watermark and
// resolves every page read against the buffer pool's version store —
// per-page chains of superseded committed images that mutating
// transactions push at first touch and seal at commit (see
// bufferpool's mvcc.go). Writers never wait for readers, readers never
// wait at all, and a snapshot observes exactly the transactions whose
// commit records were durable when it began.
//
// The design matches the WAL's redo-only recovery contract:
//
//   - While a mutating transaction runs, its per-transaction capture set
//     records, for every page it installs, the pre-image (for abort) and
//     the post-image (for the WAL), and pins the frame on the
//     transaction's behalf: the no-steal policy that guarantees
//     uncommitted pages never reach the storage system.
//   - Commit appends one LSN-stamped page record per captured write plus
//     a commit record, releases the locks, then joins a commit batch:
//     concurrent committers share a single log force (their commit
//     records amortize one flush), and a commit covered by the group
//     window pays only the wait. Only after the force are the frames
//     unpinned for lazy write-back.
//   - Abort restores the pre-images in reverse order; nothing needs
//     undoing on disk because nothing uncommitted ever got there.
//   - Checkpoints take a drain barrier: new transactions are held at
//     Begin while every in-flight transaction runs to completion
//     (including its post-flush unpin), so a checkpoint can never slide
//     between a commit record and its flush and strand pinned frames
//     above the checkpoint LSN.
//
// The package also provides the crash-injection harness: CrashAtCommit
// arms a simulated kill at the n-th commit — the victim's page records
// reach the log but its commit record does not — and Crash drops the
// instance's volatile state so a fresh instance can exercise recovery.
package txn

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/bufferpool"
	"hstoragedb/internal/engine/lockmgr"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/obs"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// ErrCrashed is returned by operations on a manager whose instance has
// been killed by the crash-injection harness.
var ErrCrashed = errors.New("txn: simulated crash")

// ErrDeadlock re-exports the lock manager's deadlock error: transactions
// refused with it should abort and retry.
var ErrDeadlock = lockmgr.ErrDeadlock

// GroupCommitStats summarize the commit-batching coordinator.
type GroupCommitStats struct {
	// Batches counts log forces performed by batch leaders; Txns counts
	// the commits that rode them. Txns/Batches is the mean number of
	// commit records amortizing one force.
	Batches int64
	Txns    int64
}

// MeanBatch returns the mean commits per force (0 with no batches).
func (g GroupCommitStats) MeanBatch() float64 {
	if g.Batches == 0 {
		return 0
	}
	return float64(g.Txns) / float64(g.Batches)
}

// gcBatch is one in-formation commit batch: committers that arrive while
// it is open share its leader's flush.
type gcBatch struct {
	maxLSN wal.LSN
	n      int
	err    error
	doneAt simclock.Duration
	done   chan struct{}
}

// Manager coordinates transactions over one engine instance and one log.
// All methods are safe for concurrent use.
type Manager struct {
	inst *engine.Instance
	log  *wal.Manager
	lm   *lockmgr.Manager

	// gate is the drain barrier: every transaction holds the read side
	// from Begin until its outcome is fully applied; Checkpoint takes the
	// write side, so it runs with no transaction in flight.
	gate sync.RWMutex

	// seqMu serializes the commit decision point: the crash-harness
	// check and the commit-record append happen atomically, so the n-th
	// commit is well-defined under concurrency and no commit record is
	// appended after the simulated kill.
	seqMu         sync.Mutex
	crashAtCommit int64 // 1-based commit ordinal to kill at; 0 = disarmed

	commits atomic.Int64
	aborts  atomic.Int64
	dead    atomic.Bool

	gcMu      sync.Mutex
	gcCur     *gcBatch
	gcBatches atomic.Int64
	gcTxns    atomic.Int64

	tracer     *obs.Tracer
	mCommits   *obs.Counter
	mAborts    *obs.Counter
	mBatchHist *obs.HistVar

	// sched, when set, is the closed-population device scheduler the
	// running sessions are registered with: waits that cannot submit
	// I/O (lock waits, WAL-phase waits, group-commit followers)
	// withdraw the waiting stream from the population so dispatch never
	// stalls on it.
	sched StreamParker

	// walCh is a one-slot semaphore serializing the commit path's WAL
	// phase (page-record appends through the commit record, and the
	// batch leader's force). The WAL's own mutex would do the same
	// exclusion, but a goroutine blocked inside sync.Mutex cannot park
	// its stream, and under a closed scheduler population an unparked
	// waiter stalls dispatch while the holder's log I/O waits for it —
	// a process-level deadlock. walLock parks, sync.Mutex cannot.
	walCh chan struct{}
}

// StreamParker is the slice of a closed-population device scheduler
// (iosched.Group) the transaction layer needs: withdrawing a stream
// that is about to block outside the scheduler and re-enrolling it when
// it wakes. See Manager.UseScheduler.
type StreamParker interface {
	Register(clk *simclock.Clock)
	Unregister(clk *simclock.Clock)
	Registered(clk *simclock.Clock) bool
}

// NewManager builds a transaction manager over an instance and its log,
// attaching the instance's observability set (if any) to itself, the
// lock manager, and the WAL.
func NewManager(inst *engine.Instance, log *wal.Manager) *Manager {
	m := &Manager{inst: inst, log: log, lm: lockmgr.New(), walCh: make(chan struct{}, 1)}
	m.Use(inst.Obs)
	return m
}

// Use attaches an observability set: txn.commits and txn.aborts
// counters, the wal.groupcommit.batch histogram (commits amortized per
// log force), and a txn/groupcommit span recorded by each batch leader.
// The set is forwarded to the lock manager and the WAL, so wiring the
// transaction layer instruments the whole engine-side stack. NewManager
// calls it with the instance's set; a nil set detaches. Not safe to
// call concurrently with running transactions.
func (m *Manager) Use(set *obs.Set) {
	m.lm.Use(set)
	m.log.Use(set)
	if reg := set.Registry(); reg != nil {
		m.tracer = set.Trace()
		m.mCommits = reg.Counter("txn.commits")
		m.mAborts = reg.Counter("txn.aborts")
		m.mBatchHist = reg.HistogramWith(obs.CountBounds(), "count", "wal.groupcommit.batch")
	} else {
		m.tracer = nil
		m.mCommits, m.mAborts, m.mBatchHist = nil, nil, nil
	}
}

// UseScheduler couples the manager to a closed-population device
// scheduler whose population includes the transaction sessions: a
// session blocked on a page lock or waiting as a group-commit follower
// submits no I/O, so the manager withdraws it (Unregister) for the
// wait's duration and re-enrolls it (Register) on wake — otherwise the
// scheduler's all-streams-blocked dispatch condition could never hold.
// Pass nil to decouple. Not safe to call concurrently with running
// transactions.
func (m *Manager) UseScheduler(s StreamParker) { m.sched = s }

// parkFn returns the lockmgr park callback for one session clock: nil
// when no scheduler is coupled, else a callback that withdraws the
// stream while it is blocked on a lock.
func (m *Manager) parkFn(clk *simclock.Clock) func(bool) {
	s := m.sched
	if s == nil {
		return nil
	}
	var withdrawn bool
	return func(parked bool) {
		if parked {
			// Streams the caller never enrolled (setup sessions, runs
			// without a closed population) must stay unenrolled: a
			// Register on wake would leak them into the population.
			if withdrawn = s.Registered(clk); withdrawn {
				s.Unregister(clk)
			}
		} else if withdrawn {
			s.Register(clk)
		}
	}
}

// walLock acquires the commit path's WAL-phase semaphore. A contended
// acquire parks the stream (parkFn) for the wait, so a closed scheduler
// population keeps dispatching while this committer queues behind
// another one's appends or force.
func (m *Manager) walLock(clk *simclock.Clock) {
	select {
	case m.walCh <- struct{}{}:
		return
	default:
	}
	park := m.parkFn(clk)
	if park != nil {
		park(true)
	}
	m.walCh <- struct{}{}
	if park != nil {
		park(false)
	}
}

// walUnlock releases the WAL-phase semaphore.
func (m *Manager) walUnlock() { <-m.walCh }

// WAL exposes the log manager.
func (m *Manager) WAL() *wal.Manager { return m.log }

// Commits reports how many transactions have committed. It never blocks
// behind in-flight transactions.
func (m *Manager) Commits() int64 { return m.commits.Load() }

// Aborts reports how many transactions have rolled back. It never blocks
// behind in-flight transactions.
func (m *Manager) Aborts() int64 { return m.aborts.Load() }

// LockStats returns a snapshot of the lock manager's counters.
func (m *Manager) LockStats() lockmgr.Stats { return m.lm.Stats() }

// GroupCommit returns a snapshot of the commit-batching counters.
func (m *Manager) GroupCommit() GroupCommitStats {
	return GroupCommitStats{Batches: m.gcBatches.Load(), Txns: m.gcTxns.Load()}
}

// CrashAtCommit arms the crash-injection harness: the n-th commit (counted
// from the next one) writes its page records to the log but dies before
// its commit record, and every later operation fails with ErrCrashed.
// n <= 0 disarms.
func (m *Manager) CrashAtCommit(n int64) {
	m.seqMu.Lock()
	if n <= 0 {
		m.crashAtCommit = 0
	} else {
		m.crashAtCommit = m.commits.Load() + n
	}
	m.seqMu.Unlock()
}

// Crash kills the instance: volatile state (the buffer pool, including
// every pinned uncommitted page) is dropped without write-back and the
// manager refuses further work. The durable page store survives for
// recovery by a fresh instance.
func (m *Manager) Crash() {
	m.dead.Store(true)
	m.inst.Pool.UnbindAll()
	m.inst.Crash()
}

// Dead reports whether the manager has been killed. It never blocks
// behind in-flight transactions.
func (m *Manager) Dead() bool { return m.dead.Load() }

// Checkpoint flushes all committed work and truncates the log. It takes
// the drain barrier: in-flight transactions run to completion first, and
// new ones wait at Begin until the checkpoint finishes.
func (m *Manager) Checkpoint(sess *engine.Session) error {
	m.gate.Lock()
	defer m.gate.Unlock()
	if m.dead.Load() {
		return ErrCrashed
	}
	if err := m.log.Checkpoint(&sess.Clk, m.inst.Pool); err != nil {
		return err
	}
	// The checkpoint advanced the commit watermark; sweep the version
	// store (chains a still-active snapshot needs are kept).
	m.inst.Pool.PruneVersions(int64(m.log.CommitWatermark()))
	return nil
}

type pageKey struct {
	obj  pagestore.ObjectID
	page int64
}

// pageWrite is one captured page install, in transaction order.
type pageWrite struct {
	tag  policy.Tag
	page int64
	kind wal.Kind
	post []byte
}

// preimage is the first-touch state of a page, for abort.
type preimage struct {
	obj      pagestore.ObjectID
	page     int64
	pre      []byte // nil: the page had no frame before this transaction
	preDirty bool
}

// Txn is one transaction. A mutating transaction is bound to its
// session's stream and holds its page locks from first touch until
// Commit or Abort (strict two-phase locking). A Txn is driven by one
// goroutine; distinct transactions run concurrently.
type Txn struct {
	m        *Manager
	sess     *engine.Session
	id       int64
	readOnly bool
	op       wal.Kind
	writes   []pageWrite
	touched  map[pageKey]struct{}
	pres     []preimage
	finished bool

	// 2PC participant state: set by Prepare, cleared by CommitPrepared
	// or Abort. While prepared, the transaction holds its locks and pins
	// and its outcome belongs to the coordinator.
	prepared bool
	gtid     int64

	// Snapshot state (readOnly transactions): the snapshot LSN the
	// session stream is bound to and the virtual begin time (for the
	// snapshot-age span).
	snapshot  bool
	snapLSN   wal.LSN
	snapStart simclock.Duration
}

// Begin starts a mutating transaction on the session. The session stream
// must not already have a transaction in flight; concurrent transactions
// run on distinct sessions.
func (m *Manager) Begin(sess *engine.Session) (*Txn, error) {
	if m.dead.Load() {
		return nil, ErrCrashed
	}
	m.gate.RLock()
	if m.dead.Load() {
		m.gate.RUnlock()
		return nil, ErrCrashed
	}
	t := &Txn{
		m:       m,
		sess:    sess,
		id:      m.log.NextTxnID(),
		op:      wal.KindHeapUpdate,
		touched: make(map[pageKey]struct{}),
	}
	m.walLock(&sess.Clk)
	_, err := m.log.Append(&sess.Clk, wal.Record{Txn: t.id, Kind: wal.KindBegin})
	m.walUnlock()
	if err != nil {
		m.gate.RUnlock()
		return nil, err
	}
	m.inst.Pool.BindTxn(&sess.Clk, &bufferpool.TxnHooks{
		ID:      t.id,
		Acquire: t.acquire,
		Capture: t.capture,
	})
	return t, nil
}

// BeginRead starts a read-only transaction: no locks, no log records. It
// is BeginSnapshot under a historical name — every read-only transaction
// runs under snapshot isolation.
func (m *Manager) BeginRead(sess *engine.Session) *Txn {
	return m.BeginSnapshot(sess)
}

// ID returns the transaction identifier (0 for read-only transactions).
func (t *Txn) ID() int64 { return t.id }

// Op declares the logical operation the next page writes belong to (one
// of the heap/index record kinds); it labels the WAL records so the log
// reads like the logical history it is.
func (t *Txn) Op(k wal.Kind) {
	if k.PageRecord() {
		t.op = k
	}
}

// acquire is the buffer pool lock hook: it takes the page lock (shared
// for reads, exclusive for writes) before the frame access. Temporary
// and log pages are not transactional data and are never locked. A
// deadlock propagates out of the pool call as lockmgr.ErrDeadlock.
func (t *Txn) acquire(tag policy.Tag, page int64, write bool) error {
	if tag.Content == policy.Temp || tag.Content == policy.Log {
		return nil
	}
	mode := lockmgr.Shared
	if write {
		mode = lockmgr.Exclusive
	}
	return t.m.lm.AcquireClkPark(t.id, lockmgr.PageID{Obj: tag.Object, Page: page}, mode, &t.sess.Clk, t.m.parkFn(&t.sess.Clk))
}

// LockAppend takes the object's append lock: an exclusive lock on a
// synthetic page (-1) that serializes heap appenders. An appender
// decides its start page from the file's logical size *before* its first
// Put can take a real page lock, so two concurrent appenders would
// otherwise claim the same fresh page and the later commit would
// overwrite the earlier one's rows. Callers must take the append lock
// before creating an appender on a shared table; it is held, like every
// lock, until the transaction finishes. Returns lockmgr.ErrDeadlock like
// any other acquisition.
func (t *Txn) LockAppend(obj pagestore.ObjectID) error {
	if t.readOnly {
		return nil
	}
	return t.m.lm.AcquireClkPark(t.id, lockmgr.PageID{Obj: obj, Page: -1}, lockmgr.Exclusive, &t.sess.Clk, t.m.parkFn(&t.sess.Clk))
}

// LockScan takes the object's append lock in shared mode: the
// phantom-safe scan lock of a serializable 2PL scan. Readers share it
// freely, but appenders (LockAppend) are excluded until the scanning
// transaction finishes — and a scan blocks behind any in-flight
// appender. Snapshot transactions never need it; the htap experiment's
// locked arm uses it to measure exactly what that protection costs.
// Returns lockmgr.ErrDeadlock like any other acquisition.
func (t *Txn) LockScan(obj pagestore.ObjectID) error {
	if t.readOnly {
		return nil
	}
	return t.m.lm.AcquireClkPark(t.id, lockmgr.PageID{Obj: obj, Page: -1}, lockmgr.Shared, &t.sess.Clk, t.m.parkFn(&t.sess.Clk))
}

// capture is the buffer pool hook: it runs under the pool mutex for every
// page installed while this transaction is active. The returned pin keeps
// first-touched frames in memory until the commit force (no-steal).
func (t *Txn) capture(tag policy.Tag, page int64, pre []byte, preDirty bool, post []byte) bool {
	if tag.Content == policy.Temp || tag.Content == policy.Log {
		// Not transactional data: temporary spills may belong to a
		// concurrent query session (pinning, logging, or rolling them
		// back would corrupt it), and WAL pages manage their own
		// durability.
		return false
	}
	k := pageKey{obj: tag.Object, page: page}
	pin := false
	if _, ok := t.touched[k]; !ok {
		t.touched[k] = struct{}{}
		t.pres = append(t.pres, preimage{obj: k.obj, page: page, pre: pre, preDirty: preDirty})
		pin = true
	}
	t.writes = append(t.writes, pageWrite{tag: tag, page: page, kind: t.op, post: post})
	return pin
}

// Commit appends the transaction's page records and a commit record,
// releases the page locks, then joins the group-commit batch and returns
// once the commit is durable — usually via a flush a batch leader
// performed for several committers at once. If the crash harness is
// armed for this commit, the page records reach the log but the commit
// record does not, and ErrCrashed is returned.
func (t *Txn) Commit() error {
	if t.finished {
		return fmt.Errorf("txn %d: already finished", t.id)
	}
	if t.prepared {
		return fmt.Errorf("txn %d: prepared; its outcome belongs to the coordinator", t.id)
	}
	t.finished = true
	if t.readOnly {
		t.endSnapshot()
		return nil
	}
	m := t.m
	clk := &t.sess.Clk
	m.inst.Pool.UnbindTxn(clk)

	// Only the final image of each touched page needs redo: the records
	// carry full post-images, intermediate versions are overwritten at
	// replay anyway, and the page locks are held until after the commit
	// record, so the per-page version order across transactions matches
	// the log order. Deduplicating here cuts the dominant log volume
	// (hot pages — index meta and leaf pages — are rewritten several
	// times per transaction).
	finalImage := make(map[pageKey]int, len(t.writes))
	for i, w := range t.writes {
		finalImage[pageKey{obj: w.tag.Object, page: w.page}] = i
	}
	m.walLock(clk)
	var last wal.LSN
	for i, w := range t.writes {
		if finalImage[pageKey{obj: w.tag.Object, page: w.page}] != i {
			continue
		}
		lsn, err := m.log.Append(clk, wal.Record{
			Txn: t.id, Kind: w.kind, Obj: w.tag.Object, Page: w.page, Image: w.post,
		})
		if err != nil {
			// The transaction cannot become durable: roll its frames
			// back so the pins are released and nothing uncommitted
			// lingers in the pool.
			m.walUnlock()
			t.restoreFrames()
			m.lm.ReleaseAllAt(t.id, clk.Now())
			m.gate.RUnlock()
			return err
		}
		last = lsn
	}

	// The commit decision point: the crash check and the commit-record
	// append are atomic, so the n-th commit is well-defined and nothing
	// commits after the simulated kill.
	m.seqMu.Lock()
	if m.dead.Load() {
		// The instance died (crash harness) while this transaction was
		// running: its commit record must not be appended. The locks are
		// released so concurrent transactions can fail promptly rather
		// than hang; the pool's volatile state dies with the instance.
		m.seqMu.Unlock()
		m.walUnlock()
		m.lm.ReleaseAllAt(t.id, clk.Now())
		m.gate.RUnlock()
		return ErrCrashed
	}
	if m.crashAtCommit != 0 && m.commits.Load()+1 >= m.crashAtCommit {
		// Simulated kill between writing the transaction's records and
		// its commit record: the log knows the transaction but recovery
		// must treat it as a loser.
		m.dead.Store(true)
		m.seqMu.Unlock()
		err := m.log.Flush(clk, last)
		m.walUnlock()
		m.lm.ReleaseAllAt(t.id, clk.Now())
		m.gate.RUnlock()
		if err != nil {
			return err
		}
		return ErrCrashed
	}
	lsn, err := m.log.Append(clk, wal.Record{Txn: t.id, Kind: wal.KindCommit})
	if err != nil {
		m.seqMu.Unlock()
		m.walUnlock()
		t.restoreFrames()
		m.lm.ReleaseAllAt(t.id, clk.Now())
		m.gate.RUnlock()
		return err
	}
	m.commits.Add(1)
	m.mCommits.Inc()
	// Seal this transaction's pending page versions with its commit LSN
	// while the commit order is still pinned by seqMu: chains then seal
	// in commit-LSN order, so a snapshot taken at any watermark observes
	// a prefix-consistent version history.
	m.inst.Pool.CommitVersions(t.id, int64(lsn), int64(m.log.CommitWatermark()), t.pageRefs())
	m.seqMu.Unlock()
	m.walUnlock()

	// Strict 2PL ends here: the commit record is appended, so the
	// version order of every touched page is sealed in the log and the
	// locks can be released while the force is still pending. A
	// transaction that reads the freshly committed data and commits
	// flushes the log through a later LSN, which covers this one.
	m.lm.ReleaseAllAt(t.id, clk.Now())

	// The force is batched: concurrent committers share one flush.
	// Frames stay pinned until the records are durable; they are
	// released even on a flush error (the commit record is appended, so
	// rolling the frames back could contradict a log that did reach the
	// device), which keeps the pool from leaking pinned frames.
	err = m.groupFlush(clk, lsn)
	if err == nil {
		// The commit record is durable and the versions are sealed: new
		// snapshots may begin at (or past) this commit.
		m.log.PublishCommit(lsn)
	}
	for _, p := range t.pres {
		m.inst.Pool.Unpin(t.id, p.obj, p.page)
	}
	m.gate.RUnlock()
	return err
}

// Prepare runs the participant's first phase of two-phase commit: the
// transaction's page records and a prepare record carrying the global
// transaction ID reach the log and are forced durable, riding the same
// group-commit batch as ordinary commit records. The page locks, the
// frame pins, and the drain-barrier hold all stay — the transaction is
// in doubt until the coordinator's decision arrives via CommitPrepared
// or Abort. After a successful Prepare the participant has promised it
// can commit: a crash no longer loses the transaction; recovery holds
// it back for resolution against the coordinator's decision log.
func (t *Txn) Prepare(gtid int64) error {
	if t.finished {
		return fmt.Errorf("txn %d: already finished", t.id)
	}
	if t.prepared {
		return fmt.Errorf("txn %d: already prepared", t.id)
	}
	if t.readOnly {
		return fmt.Errorf("txn %d: read-only transactions cannot prepare", t.id)
	}
	m := t.m
	clk := &t.sess.Clk
	m.inst.Pool.UnbindTxn(clk)

	// Same final-image dedup as Commit: only the last image per touched
	// page needs redo.
	finalImage := make(map[pageKey]int, len(t.writes))
	for i, w := range t.writes {
		finalImage[pageKey{obj: w.tag.Object, page: w.page}] = i
	}
	m.walLock(clk)
	for i, w := range t.writes {
		if finalImage[pageKey{obj: w.tag.Object, page: w.page}] != i {
			continue
		}
		_, err := m.log.Append(clk, wal.Record{
			Txn: t.id, Kind: w.kind, Obj: w.tag.Object, Page: w.page, Image: w.post,
		})
		if err != nil {
			m.walUnlock()
			t.finished = true
			t.restoreFrames()
			m.lm.ReleaseAllAt(t.id, clk.Now())
			m.gate.RUnlock()
			return err
		}
	}
	m.seqMu.Lock()
	if m.dead.Load() {
		m.seqMu.Unlock()
		m.walUnlock()
		t.finished = true
		m.lm.ReleaseAllAt(t.id, clk.Now())
		m.gate.RUnlock()
		return ErrCrashed
	}
	lsn, err := m.log.Append(clk, wal.Record{Txn: t.id, Kind: wal.KindPrepare, Page: gtid})
	m.seqMu.Unlock()
	m.walUnlock()
	if err != nil {
		t.finished = true
		t.restoreFrames()
		m.lm.ReleaseAllAt(t.id, clk.Now())
		m.gate.RUnlock()
		return err
	}
	if err := m.groupFlush(clk, lsn); err != nil {
		// Almost always a crash mid-force: the prepare never became
		// durable on this path, so presumed abort applies. The locks are
		// released so concurrent work fails promptly; pins die with the
		// pool.
		t.finished = true
		m.lm.ReleaseAllAt(t.id, clk.Now())
		m.gate.RUnlock()
		return err
	}
	t.prepared = true
	t.gtid = gtid
	return nil
}

// Prepared reports whether the transaction is sitting in the prepared
// state, awaiting the coordinator's decision.
func (t *Txn) Prepared() bool { return t.prepared }

// CommitPrepared applies the coordinator's commit decision to a
// prepared transaction: the local commit record (stamped with the GTID)
// is appended and forced, the page versions seal, and the locks and
// pins finally release. The caller must hold a durable coordinator
// decision for the GTID it passed to Prepare. The crash harness's
// CrashAtCommit counts these like ordinary commits, which is exactly
// the "participant dies holding prepared locks" injection point.
func (t *Txn) CommitPrepared() error {
	if t.finished {
		return fmt.Errorf("txn %d: already finished", t.id)
	}
	if !t.prepared {
		return fmt.Errorf("txn %d: not prepared", t.id)
	}
	t.finished = true
	t.prepared = false
	m := t.m
	clk := &t.sess.Clk
	m.walLock(clk)
	m.seqMu.Lock()
	if m.dead.Load() {
		m.seqMu.Unlock()
		m.walUnlock()
		m.lm.ReleaseAllAt(t.id, clk.Now())
		m.gate.RUnlock()
		return ErrCrashed
	}
	if m.crashAtCommit != 0 && m.commits.Load()+1 >= m.crashAtCommit {
		// Simulated kill between the coordinator's decision and this
		// participant's phase-2 commit record: the prepare is durable, so
		// recovery holds the transaction in doubt and the decision log
		// resolves it to commit.
		m.dead.Store(true)
		m.seqMu.Unlock()
		m.walUnlock()
		m.lm.ReleaseAllAt(t.id, clk.Now())
		m.gate.RUnlock()
		return ErrCrashed
	}
	lsn, err := m.log.Append(clk, wal.Record{Txn: t.id, Kind: wal.KindCommit, Page: t.gtid})
	if err != nil {
		m.seqMu.Unlock()
		m.walUnlock()
		t.restoreFrames()
		m.lm.ReleaseAllAt(t.id, clk.Now())
		m.gate.RUnlock()
		return err
	}
	m.commits.Add(1)
	m.mCommits.Inc()
	m.inst.Pool.CommitVersions(t.id, int64(lsn), int64(m.log.CommitWatermark()), t.pageRefs())
	m.seqMu.Unlock()
	m.walUnlock()
	m.lm.ReleaseAllAt(t.id, clk.Now())
	err = m.groupFlush(clk, lsn)
	if err == nil {
		m.log.PublishCommit(lsn)
	}
	for _, p := range t.pres {
		m.inst.Pool.Unpin(t.id, p.obj, p.page)
	}
	m.gate.RUnlock()
	return err
}

// pageRefs lists the pages of the transaction's first-touch capture set
// (the pages whose pending chain versions it owns).
func (t *Txn) pageRefs() []bufferpool.PageRef {
	if len(t.pres) == 0 {
		return nil
	}
	refs := make([]bufferpool.PageRef, 0, len(t.pres))
	for _, p := range t.pres {
		refs = append(refs, bufferpool.PageRef{Obj: p.obj, Page: p.page})
	}
	return refs
}

// groupFlush makes lsn durable through the commit batch: the first
// committer to open a batch becomes its leader and forces the log to the
// batch's highest LSN; committers arriving while the batch is open ride
// the same force and only advance their clocks to its completion.
func (m *Manager) groupFlush(clk *simclock.Clock, lsn wal.LSN) error {
	m.gcMu.Lock()
	if b := m.gcCur; b != nil {
		if lsn > b.maxLSN {
			b.maxLSN = lsn
		}
		b.n++
		m.gcMu.Unlock()
		// A follower submits no I/O while the leader flushes: withdraw
		// it from any closed scheduler population for the wait.
		if park := m.parkFn(clk); park != nil {
			park(true)
			defer park(false)
		}
		<-b.done
		clk.AdvanceTo(b.doneAt)
		return b.err
	}
	b := &gcBatch{maxLSN: lsn, n: 1, done: make(chan struct{})}
	m.gcCur = b
	m.gcMu.Unlock()
	// Yield a few times so committers racing this one can join the batch
	// before the leader claims it.
	for i := 0; i < 4; i++ {
		runtime.Gosched()
	}
	m.gcMu.Lock()
	m.gcCur = nil
	maxLSN := b.maxLSN
	m.gcMu.Unlock()
	forceStart := clk.Now()
	m.walLock(clk)
	b.err = m.log.Flush(clk, maxLSN)
	m.walUnlock()
	b.doneAt = clk.Now()
	m.gcBatches.Add(1)
	m.gcTxns.Add(int64(b.n))
	if hv := m.mBatchHist; hv != nil {
		hv.Observe(simclock.Duration(b.n))
	}
	if m.tracer != nil {
		m.tracer.Span("txn", "groupcommit", clk.ID(), forceStart, b.doneAt-forceStart,
			map[string]any{"txns": b.n, "lsn": int64(maxLSN)})
	}
	close(b.done)
	return b.err
}

// restoreFrames rewinds every touched frame to its pre-image in reverse
// order, releasing the pins.
func (t *Txn) restoreFrames() {
	for i := len(t.pres) - 1; i >= 0; i-- {
		p := t.pres[i]
		t.m.inst.Pool.Restore(t.id, p.obj, p.page, p.pre, p.preDirty)
	}
}

// Abort rolls the transaction back by restoring every touched frame to
// its pre-image (reverse order), releasing the pins and the page locks.
// The disk needs no undo: the no-steal pool never let uncommitted pages
// out. Abort is the required response to lockmgr.ErrDeadlock, after
// which the transaction may be retried.
func (t *Txn) Abort() error {
	if t.finished {
		return fmt.Errorf("txn %d: already finished", t.id)
	}
	t.finished = true
	if t.readOnly {
		t.endSnapshot()
		return nil
	}
	m := t.m
	m.inst.Pool.UnbindTxn(&t.sess.Clk)
	t.restoreFrames()
	m.lm.ReleaseAllAt(t.id, t.sess.Clk.Now())
	rec := wal.Record{Txn: t.id, Kind: wal.KindAbort}
	if t.prepared {
		// Aborting a prepared transaction (coordinator decided abort, or
		// presumed abort after a coordinator crash): stamp the GTID so
		// the log reads as the phase-2 abort it is. Presumed abort means
		// the record needs no force.
		rec.Page = t.gtid
		t.prepared = false
	}
	_, err := m.log.Append(&t.sess.Clk, rec)
	m.aborts.Add(1)
	m.mAborts.Inc()
	m.gate.RUnlock()
	return err
}
