// Package txn adds Begin/Commit/Abort transaction sessions — the OLTP
// extension of Section 8 — on top of the engine and the write-ahead log.
//
// The design is deliberately simple and matches the WAL's redo-only
// recovery contract:
//
//   - Mutating transactions are serialized by the manager (the simulated
//     concurrency of interest is device contention between streams, not
//     row-level locking); read-only transactions run lock-free.
//   - While a mutating transaction runs, a buffer pool capture hook
//     records, for every page it installs, the pre-image (for abort) and
//     the post-image (for the WAL), and pins the frame: the no-steal
//     policy that guarantees uncommitted pages never reach the storage
//     system.
//   - Commit appends one LSN-stamped page record per captured write plus
//     a commit record, then forces the log through the group-commit
//     window. Only after the force are the frames unpinned for lazy
//     write-back.
//   - Abort restores the pre-images in reverse order; nothing needs
//     undoing on disk because nothing uncommitted ever got there.
//
// The package also provides the crash-injection harness: CrashAtCommit
// arms a simulated kill at the n-th commit — the victim's page records
// reach the log but its commit record does not — and Crash drops the
// instance's volatile state so a fresh instance can exercise recovery.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/pagestore"
)

// ErrCrashed is returned by operations on a manager whose instance has
// been killed by the crash-injection harness.
var ErrCrashed = errors.New("txn: simulated crash")

// Manager coordinates transactions over one engine instance and one log.
type Manager struct {
	inst *engine.Instance
	log  *wal.Manager

	mu       sync.Mutex // serializes mutating transactions and checkpoints
	commitMu sync.Mutex // orders commit flushes against checkpoints

	commits int64
	aborts  int64

	crashAtCommit int64 // 1-based commit ordinal to kill at; 0 = disarmed
	dead          bool
}

// NewManager builds a transaction manager over an instance and its log.
func NewManager(inst *engine.Instance, log *wal.Manager) *Manager {
	return &Manager{inst: inst, log: log}
}

// WAL exposes the log manager.
func (m *Manager) WAL() *wal.Manager { return m.log }

// Commits reports how many transactions have committed.
func (m *Manager) Commits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commits
}

// Aborts reports how many transactions have rolled back.
func (m *Manager) Aborts() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.aborts
}

// CrashAtCommit arms the crash-injection harness: the n-th commit (counted
// from the next one) writes its page records to the log but dies before
// its commit record, and every later operation fails with ErrCrashed.
// n <= 0 disarms.
func (m *Manager) CrashAtCommit(n int64) {
	m.mu.Lock()
	if n <= 0 {
		m.crashAtCommit = 0
	} else {
		m.crashAtCommit = m.commits + n
	}
	m.mu.Unlock()
}

// Crash kills the instance: volatile state (the buffer pool, including
// every pinned uncommitted page) is dropped without write-back and the
// manager refuses further work. The durable page store survives for
// recovery by a fresh instance.
func (m *Manager) Crash() {
	m.mu.Lock()
	m.dead = true
	m.inst.Pool.SetCapture(nil)
	m.inst.Crash()
	m.mu.Unlock()
}

// Dead reports whether the manager has been killed.
func (m *Manager) Dead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead
}

// Checkpoint flushes all committed work and truncates the log. It runs
// with no transaction in flight.
func (m *Manager) Checkpoint(sess *engine.Session) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	if m.dead {
		return ErrCrashed
	}
	return m.log.Checkpoint(&sess.Clk, m.inst.Pool)
}

type pageKey struct {
	obj  pagestore.ObjectID
	page int64
}

// pageWrite is one captured page install, in transaction order.
type pageWrite struct {
	tag  policy.Tag
	page int64
	kind wal.Kind
	post []byte
}

// preimage is the first-touch state of a page, for abort.
type preimage struct {
	obj      pagestore.ObjectID
	page     int64
	pre      []byte // nil: the page had no frame before this transaction
	preDirty bool
}

// Txn is one transaction. A mutating transaction holds the manager's
// serialization lock from Begin until Commit or Abort.
type Txn struct {
	m        *Manager
	sess     *engine.Session
	id       int64
	readOnly bool
	op       wal.Kind
	writes   []pageWrite
	touched  map[pageKey]struct{}
	pres     []preimage
	finished bool
}

// Begin starts a mutating transaction on the session, taking the
// manager's serialization lock.
func (m *Manager) Begin(sess *engine.Session) (*Txn, error) {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return nil, ErrCrashed
	}
	t := &Txn{
		m:       m,
		sess:    sess,
		id:      m.log.NextTxnID(),
		op:      wal.KindHeapUpdate,
		touched: make(map[pageKey]struct{}),
	}
	if _, err := m.log.Append(&sess.Clk, wal.Record{Txn: t.id, Kind: wal.KindBegin}); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.inst.Pool.SetCapture(t.capture)
	return t, nil
}

// BeginRead starts a read-only transaction: no lock, no log records.
func (m *Manager) BeginRead(sess *engine.Session) *Txn {
	return &Txn{m: m, sess: sess, readOnly: true}
}

// ID returns the transaction identifier (0 for read-only transactions).
func (t *Txn) ID() int64 { return t.id }

// Op declares the logical operation the next page writes belong to (one
// of the heap/index record kinds); it labels the WAL records so the log
// reads like the logical history it is.
func (t *Txn) Op(k wal.Kind) {
	if k.PageRecord() {
		t.op = k
	}
}

// capture is the buffer pool hook: it runs under the pool mutex for every
// page installed while this transaction is active. The returned pin keeps
// first-touched frames in memory until the commit force (no-steal).
func (t *Txn) capture(tag policy.Tag, page int64, pre []byte, preDirty bool, post []byte) bool {
	if tag.Content == policy.Temp || tag.Content == policy.Log {
		// Not transactional data: temporary spills may belong to a
		// concurrent query session (pinning, logging, or rolling them
		// back would corrupt it), and WAL pages manage their own
		// durability.
		return false
	}
	k := pageKey{obj: tag.Object, page: page}
	pin := false
	if _, ok := t.touched[k]; !ok {
		t.touched[k] = struct{}{}
		t.pres = append(t.pres, preimage{obj: k.obj, page: page, pre: pre, preDirty: preDirty})
		pin = true
	}
	t.writes = append(t.writes, pageWrite{tag: tag, page: page, kind: t.op, post: post})
	return pin
}

// Commit appends the transaction's page records and a commit record, then
// forces the log. It returns once the commit is durable — possibly via a
// group-commit flush another session performed. If the crash harness is
// armed for this commit, the page records reach the log but the commit
// record does not, and ErrCrashed is returned.
func (t *Txn) Commit() error {
	if t.finished {
		return fmt.Errorf("txn %d: already finished", t.id)
	}
	t.finished = true
	if t.readOnly {
		return nil
	}
	m := t.m
	clk := &t.sess.Clk
	m.inst.Pool.SetCapture(nil)

	var last wal.LSN
	for _, w := range t.writes {
		lsn, err := m.log.Append(clk, wal.Record{
			Txn: t.id, Kind: w.kind, Obj: w.tag.Object, Page: w.page, Image: w.post,
		})
		if err != nil {
			// The transaction cannot become durable: roll its frames
			// back so the pins are released and nothing uncommitted
			// lingers in the pool.
			t.restoreFrames()
			m.mu.Unlock()
			return err
		}
		last = lsn
	}

	if m.crashAtCommit != 0 && m.commits+1 >= m.crashAtCommit {
		// Simulated kill between writing the transaction's records and
		// its commit record: the log knows the transaction but recovery
		// must treat it as a loser.
		m.dead = true
		err := m.log.Flush(clk, last)
		m.mu.Unlock()
		if err != nil {
			return err
		}
		return ErrCrashed
	}

	lsn, err := m.log.Append(clk, wal.Record{Txn: t.id, Kind: wal.KindCommit})
	if err != nil {
		t.restoreFrames()
		m.mu.Unlock()
		return err
	}
	m.commits++
	// commitMu must be taken before m.mu is released: Checkpoint
	// acquires m.mu then commitMu, so grabbing it here (same order)
	// closes the window in which a checkpoint could slide between this
	// transaction's commit record and its flush+unpin — a checkpoint in
	// that window would skip the still-pinned frames in FlushAll yet
	// stamp an LSN above their page records, making redo skip them too.
	m.commitMu.Lock()
	m.mu.Unlock()

	// The force runs outside the serialization lock: the next transaction
	// may start building while this one waits out the group-commit
	// window. Frames stay pinned until the records are durable; they are
	// released even on a flush error (the commit record is appended, so
	// rolling the frames back could contradict a log that did reach the
	// device), which keeps the pool from leaking pinned frames.
	err = m.log.Flush(clk, lsn)
	for _, p := range t.pres {
		m.inst.Pool.Unpin(p.obj, p.page)
	}
	m.commitMu.Unlock()
	return err
}

// restoreFrames rewinds every touched frame to its pre-image in reverse
// order, releasing the pins.
func (t *Txn) restoreFrames() {
	for i := len(t.pres) - 1; i >= 0; i-- {
		p := t.pres[i]
		t.m.inst.Pool.Restore(p.obj, p.page, p.pre, p.preDirty)
	}
}

// Abort rolls the transaction back by restoring every touched frame to
// its pre-image (reverse order) and releasing the pins. The disk needs no
// undo: the no-steal pool never let uncommitted pages out.
func (t *Txn) Abort() error {
	if t.finished {
		return fmt.Errorf("txn %d: already finished", t.id)
	}
	t.finished = true
	if t.readOnly {
		return nil
	}
	m := t.m
	m.inst.Pool.SetCapture(nil)
	t.restoreFrames()
	_, err := m.log.Append(&t.sess.Clk, wal.Record{Txn: t.id, Kind: wal.KindAbort})
	m.aborts++
	m.mu.Unlock()
	return err
}
