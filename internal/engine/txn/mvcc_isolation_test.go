package txn

// Isolation-anomaly suite for MVCC snapshot reads: choreographed
// G0/G1a/G1b/G1c, fuzzy-read, and phantom-on-scan scenarios assert that
// a snapshot transaction never observes uncommitted or post-snapshot
// state, while the 2PL write path keeps read-your-own-writes and
// serializes conflicting writers.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/wal"
)

// updateIn rewrites id's row to val inside an already-begun transaction.
func (f *fixture) updateIn(tx *Txn, sess *engine.Session, id int64, val string) error {
	tx.Op(wal.KindHeapUpdate)
	rids, err := f.ix.Lookup(&sess.Clk, id, 0)
	if err != nil {
		return err
	}
	if len(rids) == 0 {
		return fmt.Errorf("key %d not found", id)
	}
	return f.file.Update(&sess.Clk, f.inst.Pool, rids[0],
		catalog.Tuple{catalog.IntDatum(id), catalog.StringDatum(val)}, 0)
}

// updateOn runs one transaction on sess rewriting id's row to val.
func (f *fixture) updateOn(sess *engine.Session, id int64, val string) error {
	tx, err := f.tm.Begin(sess)
	if err != nil {
		return err
	}
	if err := f.updateIn(tx, sess, id, val); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// lookupOn returns the val for id as observed through sess (which may be
// bound to a snapshot), or "" when the key is not visible.
func (f *fixture) lookupOn(t *testing.T, sess *engine.Session, id int64) string {
	t.Helper()
	rids, err := f.ix.Lookup(&sess.Clk, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range rids {
		row, err := f.file.Fetch(&sess.Clk, f.inst.Pool, rid, 0)
		if err != nil {
			t.Fatal(err)
		}
		if row != nil {
			return row[1].S
		}
	}
	return ""
}

// scanCountOn counts heap tuples visible through sess.
func (f *fixture) scanCountOn(t *testing.T, sess *engine.Session) int {
	t.Helper()
	sc := f.file.NewScanner(&sess.Clk, f.inst.Pool, f.db.Store.Pages(f.info.ID))
	n := 0
	for {
		_, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return n
		}
		n++
	}
}

// TestMVCCNoDirtyReadG1a: a snapshot never observes the writes of an
// uncommitted transaction, and an aborted transaction's writes are never
// observable by any later snapshot (G1a, aborted reads).
func TestMVCCNoDirtyReadG1a(t *testing.T) {
	f := newFixture(t, 64)
	if err := f.insert(1, "committed"); err != nil {
		t.Fatal(err)
	}

	wSess := f.inst.NewSession()
	tx, err := f.tm.Begin(wSess)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.updateIn(tx, wSess, 1, "dirty"); err != nil {
		t.Fatal(err)
	}

	// Snapshot opened while the write is uncommitted: sees the committed
	// value, without touching the lock manager.
	before := f.tm.LockStats()
	rSess := f.inst.NewSession()
	snap := f.tm.BeginSnapshot(rSess)
	if got := f.lookupOn(t, rSess, 1); got != "committed" {
		t.Fatalf("snapshot read uncommitted write: %q", got)
	}
	after := f.tm.LockStats()
	if after.Acquired != before.Acquired || after.Waits != before.Waits {
		t.Fatalf("snapshot read touched the lock manager: %+v -> %+v", before, after)
	}

	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := f.lookupOn(t, rSess, 1); got != "committed" {
		t.Fatalf("snapshot changed after abort: %q", got)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}

	// G1a proper: no later snapshot ever observes the aborted value.
	rSess2 := f.inst.NewSession()
	snap2 := f.tm.BeginSnapshot(rSess2)
	if got := f.lookupOn(t, rSess2, 1); got != "committed" {
		t.Fatalf("aborted write observable: %q", got)
	}
	if err := snap2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCNoIntermediateReadG1b: a snapshot observes either the state
// before a multi-write transaction or its final committed state — never
// an intermediate version (G1b).
func TestMVCCNoIntermediateReadG1b(t *testing.T) {
	f := newFixture(t, 64)
	if err := f.insert(1, "v0"); err != nil {
		t.Fatal(err)
	}

	wSess := f.inst.NewSession()
	tx, err := f.tm.Begin(wSess)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.updateIn(tx, wSess, 1, "intermediate"); err != nil {
		t.Fatal(err)
	}

	rSess := f.inst.NewSession()
	during := f.tm.BeginSnapshot(rSess)
	if got := f.lookupOn(t, rSess, 1); got != "v0" {
		t.Fatalf("snapshot saw mid-transaction state: %q", got)
	}

	if err := f.updateIn(tx, wSess, 1, "final"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// The open snapshot still sees v0; a fresh one sees only "final".
	if got := f.lookupOn(t, rSess, 1); got != "v0" {
		t.Fatalf("open snapshot drifted: %q", got)
	}
	if err := during.Commit(); err != nil {
		t.Fatal(err)
	}
	rSess2 := f.inst.NewSession()
	after := f.tm.BeginSnapshot(rSess2)
	if got := f.lookupOn(t, rSess2, 1); got != "final" {
		t.Fatalf("fresh snapshot: got %q, want final", got)
	}
	if err := after.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCNoFuzzyRead: reading the same key twice inside one snapshot
// returns the same value even when a concurrent transaction commits a
// new version in between (repeatable reads, no G1c-style circularity:
// the snapshot exposes one consistent LSN cut).
func TestMVCCNoFuzzyRead(t *testing.T) {
	f := newFixture(t, 64)
	if err := f.insert(1, "old"); err != nil {
		t.Fatal(err)
	}

	rSess := f.inst.NewSession()
	snap := f.tm.BeginSnapshot(rSess)
	if got := f.lookupOn(t, rSess, 1); got != "old" {
		t.Fatalf("first read: %q", got)
	}

	wSess := f.inst.NewSession()
	if err := f.updateOn(wSess, 1, "new"); err != nil {
		t.Fatal(err)
	}

	if got := f.lookupOn(t, rSess, 1); got != "old" {
		t.Fatalf("fuzzy read: second read saw %q", got)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	rSess2 := f.inst.NewSession()
	snap2 := f.tm.BeginSnapshot(rSess2)
	if got := f.lookupOn(t, rSess2, 1); got != "new" {
		t.Fatalf("post-commit snapshot: %q", got)
	}
	if err := snap2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCNoPhantomOnScan: a full-table scan inside a snapshot returns
// the same row count before and after a concurrent committed insert; a
// fresh snapshot sees the new row.
func TestMVCCNoPhantomOnScan(t *testing.T) {
	f := newFixture(t, 64)
	for i := int64(1); i <= 5; i++ {
		if err := f.insert(i, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	rSess := f.inst.NewSession()
	snap := f.tm.BeginSnapshot(rSess)
	if n := f.scanCountOn(t, rSess); n != 5 {
		t.Fatalf("snapshot scan: %d rows, want 5", n)
	}

	wSess := f.inst.NewSession()
	if err := f.insertOn(wSess, 6, "phantom"); err != nil {
		t.Fatal(err)
	}

	if n := f.scanCountOn(t, rSess); n != 5 {
		t.Fatalf("phantom: snapshot rescan saw %d rows", n)
	}
	if got := f.lookupOn(t, rSess, 6); got != "" {
		t.Fatalf("phantom key visible through snapshot index: %q", got)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}

	rSess2 := f.inst.NewSession()
	snap2 := f.tm.BeginSnapshot(rSess2)
	if n := f.scanCountOn(t, rSess2); n != 6 {
		t.Fatalf("fresh snapshot scan: %d rows, want 6", n)
	}
	if err := snap2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCNoDirtyWriteG0: two transactions updating the same key
// serialize under 2PL — the second blocks until the first commits, so
// writes never interleave (G0) and the final state is the last
// committer's.
func TestMVCCNoDirtyWriteG0(t *testing.T) {
	f := newFixture(t, 64)
	if err := f.insert(1, "base"); err != nil {
		t.Fatal(err)
	}

	aSess := f.inst.NewSession()
	txA, err := f.tm.Begin(aSess)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.updateIn(txA, aSess, 1, "from-A"); err != nil {
		t.Fatal(err)
	}

	// B's update blocks behind A's exclusive lock.
	bDone := make(chan error, 1)
	bSess := f.inst.NewSession()
	go func() { bDone <- f.updateOn(bSess, 1, "from-B") }()

	select {
	case err := <-bDone:
		t.Fatalf("B finished while A held the lock: %v", err)
	default:
	}
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-bDone; err != nil {
		t.Fatal(err)
	}
	if got := f.lookup(t, 1); got != "from-B" {
		t.Fatalf("final value %q, want from-B", got)
	}
	// B blocked behind A: its commit must not predate A's virtual
	// completion (the lock wait is charged in simulated time).
	if bSess.Clk.Now() < aSess.Clk.Now() {
		t.Fatalf("lock wait cost no virtual time: B at %v, A at %v", bSess.Clk.Now(), aSess.Clk.Now())
	}
}

// TestMVCCWriteConflictDeadlock: transactions locking two keys in
// opposite orders deadlock; the victim gets ErrDeadlock, retries, and
// both effects end up applied (G1c circularity is impossible: one of the
// two serializes strictly after the other).
func TestMVCCWriteConflictDeadlock(t *testing.T) {
	f := newFixture(t, 64)
	// Two keys far enough apart to live on distinct pages.
	bulk := string(make([]byte, 3000))
	for i := int64(1); i <= 6; i++ {
		if err := f.insert(i, fmt.Sprintf("pad%s%d", bulk, i)); err != nil {
			t.Fatal(err)
		}
	}

	update2 := func(sess *engine.Session, first, second int64, tag string) error {
		tx, err := f.tm.Begin(sess)
		if err != nil {
			return err
		}
		if err := f.updateIn(tx, sess, first, "by-"+tag); err != nil {
			_ = tx.Abort()
			return err
		}
		if err := f.updateIn(tx, sess, second, "by-"+tag); err != nil {
			_ = tx.Abort()
			return err
		}
		return tx.Commit()
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	var deadlocks int
	run := func(i int, first, second int64, tag string) {
		defer wg.Done()
		sess := f.inst.NewSession()
		for try := 0; try < 10; try++ {
			errs[i] = update2(sess, first, second, tag)
			if !errors.Is(errs[i], ErrDeadlock) {
				return
			}
			deadlocks++
		}
	}
	wg.Add(2)
	go run(0, 1, 6, "a")
	go run(1, 6, 1, "b")
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	// Both transactions applied both their writes: each key carries one
	// of the two tags (same tag on both keys under a serial order, or
	// one each if the interleaving never cycled).
	v1, v6 := f.lookup(t, 1), f.lookup(t, 6)
	if (v1 != "by-a" && v1 != "by-b") || (v6 != "by-a" && v6 != "by-b") {
		t.Fatalf("torn final state: key1=%q key6=%q", v1, v6)
	}
}

// TestMVCCReadYourOwnWrites: the 2PL path reads its own uncommitted
// writes through the frames it pinned, while a concurrent snapshot
// still sees the pre-transaction state.
func TestMVCCReadYourOwnWrites(t *testing.T) {
	f := newFixture(t, 64)
	if err := f.insert(1, "before"); err != nil {
		t.Fatal(err)
	}

	wSess := f.inst.NewSession()
	tx, err := f.tm.Begin(wSess)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.updateIn(tx, wSess, 1, "mine"); err != nil {
		t.Fatal(err)
	}
	if got := f.lookupOn(t, wSess, 1); got != "mine" {
		t.Fatalf("transaction lost its own write: %q", got)
	}

	rSess := f.inst.NewSession()
	snap := f.tm.BeginSnapshot(rSess)
	if got := f.lookupOn(t, rSess, 1); got != "before" {
		t.Fatalf("snapshot saw uncommitted write: %q", got)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := f.lookup(t, 1); got != "mine" {
		t.Fatalf("committed value: %q", got)
	}
}

// TestSnapshotStreamRejectsWrites: a session stream bound to a snapshot
// refuses transactional page writes — the read-only contract is enforced
// at the pool, not by convention.
func TestSnapshotStreamRejectsWrites(t *testing.T) {
	f := newFixture(t, 64)
	if err := f.insert(1, "v1"); err != nil {
		t.Fatal(err)
	}
	sess := f.inst.NewSession()
	snap := f.tm.BeginSnapshot(sess)
	app := f.file.NewAppender(&sess.Clk, f.inst.Pool, f.db.Store.Pages(f.info.ID))
	_, err := app.Append(catalog.Tuple{catalog.IntDatum(2), catalog.StringDatum("nope")})
	if err == nil {
		err = app.Close()
	}
	if err == nil {
		t.Fatal("write on a snapshot stream succeeded")
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotLSNAndWatermark: the snapshot LSN is the commit watermark
// at begin time, advances with commits, and survives recovery.
func TestSnapshotLSNAndWatermark(t *testing.T) {
	f := newFixture(t, 64)
	s0 := f.tm.BeginSnapshot(f.inst.NewSession())
	if s0.SnapshotLSN() != 0 {
		t.Fatalf("empty-log snapshot LSN %d", s0.SnapshotLSN())
	}
	if err := s0.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.insert(1, "v1"); err != nil {
		t.Fatal(err)
	}
	s1 := f.tm.BeginSnapshot(f.inst.NewSession())
	if s1.SnapshotLSN() == 0 {
		t.Fatal("watermark did not advance with the commit")
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, want := s1.SnapshotLSN(), f.tm.WAL().CommitWatermark(); got != want {
		t.Fatalf("snapshot LSN %d, watermark %d", got, want)
	}
}
