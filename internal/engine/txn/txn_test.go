package txn

import (
	"errors"
	"fmt"
	"testing"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/btree"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/heap"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/hybrid"
)

// fixture is a one-table database ("kv": id int64, val string; index on
// id) with an attached instance, log and transaction manager.
type fixture struct {
	db   *engine.Database
	inst *engine.Instance
	tm   *Manager
	sess *engine.Session
	info *catalog.TableInfo
	file *heap.File
	ix   *btree.Tree
	cfg  wal.Config
}

func newFixture(t *testing.T, poolPages int) *fixture {
	t.Helper()
	return newFixtureOn(t, poolPages, engine.NewDatabase())
}

// newFixtureOn builds the fixture over a caller-supplied database, so
// the same transaction tests run against any storage backend.
func newFixtureOn(t *testing.T, poolPages int, db *engine.Database) *fixture {
	t.Helper()
	schema := catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.Int64},
		catalog.Column{Name: "val", Type: catalog.String},
	)
	info, err := db.CreateTable("kv", schema)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{db: db, info: info, cfg: wal.Config{SegmentPages: 8}}
	f.attach(t, poolPages, true)
	return f
}

// attach builds a fresh instance (and, when create is set, a fresh WAL;
// otherwise it recovers the existing one).
func (f *fixture) attach(t *testing.T, poolPages int, create bool) *wal.RecoveryStats {
	t.Helper()
	inst, err := f.db.NewInstance(engine.InstanceConfig{
		Storage:         hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 512},
		BufferPoolPages: poolPages,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.inst = inst
	f.sess = inst.NewSession()
	f.file = heap.NewFile(f.info.ID, f.info.Schema, policy.Table)
	var stats *wal.RecoveryStats
	var log *wal.Manager
	if create {
		if _, err := inst.BuildIndex("idx_kv_id", "kv", "id"); err != nil {
			t.Fatal(err)
		}
		if log, err = wal.New(&f.sess.Clk, inst.Mgr, f.cfg); err != nil {
			t.Fatal(err)
		}
	} else {
		if log, stats, err = wal.Recover(&f.sess.Clk, inst.Mgr, f.cfg); err != nil {
			t.Fatal(err)
		}
	}
	f.ix = btree.Open(f.db.Cat.MustIndex("idx_kv_id").ID, inst.Pool)
	f.tm = NewManager(inst, log)
	return stats
}

// insert runs one transaction appending (id, val) and maintaining the
// index.
func (f *fixture) insert(id int64, val string) error {
	tx, err := f.tm.Begin(f.sess)
	if err != nil {
		return err
	}
	tx.Op(wal.KindHeapInsert)
	app := f.file.NewAppender(&f.sess.Clk, f.inst.Pool, f.db.Store.Pages(f.info.ID))
	rid, err := app.Append(catalog.Tuple{catalog.IntDatum(id), catalog.StringDatum(val)})
	if err == nil {
		err = app.Close()
	}
	if err != nil {
		_ = tx.Abort()
		return err
	}
	tx.Op(wal.KindIndexInsert)
	if err := f.ix.Insert(&f.sess.Clk, btree.Entry{Key: id, RID: rid}, 0); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// lookup returns the val for id, or "" when the key is not visible.
func (f *fixture) lookup(t *testing.T, id int64) string {
	t.Helper()
	rids, err := f.ix.Lookup(&f.sess.Clk, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range rids {
		row, err := f.file.Fetch(&f.sess.Clk, f.inst.Pool, rid, 0)
		if err != nil {
			t.Fatal(err)
		}
		if row != nil {
			return row[1].S
		}
	}
	return ""
}

// scanCount counts visible heap tuples.
func (f *fixture) scanCount(t *testing.T) int {
	t.Helper()
	sc := f.file.NewScanner(&f.sess.Clk, f.inst.Pool, f.db.Store.Pages(f.info.ID))
	n := 0
	for {
		_, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return n
		}
		n++
	}
}

func TestCommitAndAbortVisibility(t *testing.T) {
	f := newFixture(t, 64)
	for i := int64(1); i <= 3; i++ {
		if err := f.insert(i, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.lookup(t, 2); got != "v2" {
		t.Fatalf("lookup(2) = %q", got)
	}

	// Abort an insert: heap row and index entry both vanish.
	tx, err := f.tm.Begin(f.sess)
	if err != nil {
		t.Fatal(err)
	}
	tx.Op(wal.KindHeapInsert)
	app := f.file.NewAppender(&f.sess.Clk, f.inst.Pool, f.db.Store.Pages(f.info.ID))
	rid, err := app.Append(catalog.Tuple{catalog.IntDatum(99), catalog.StringDatum("ghost")})
	if err == nil {
		err = app.Close()
	}
	if err != nil {
		t.Fatal(err)
	}
	tx.Op(wal.KindIndexInsert)
	if err := f.ix.Insert(&f.sess.Clk, btree.Entry{Key: 99, RID: rid}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := f.lookup(t, 99); got != "" {
		t.Fatalf("aborted key visible: %q", got)
	}
	if got := f.lookup(t, 3); got != "v3" {
		t.Fatalf("committed key damaged by abort: %q", got)
	}
	if f.tm.Aborts() != 1 || f.tm.Commits() != 3 {
		t.Fatalf("commits=%d aborts=%d", f.tm.Commits(), f.tm.Aborts())
	}
}

// TestNoStealUnderPressure runs a large transaction through a tiny buffer
// pool and aborts it: without pinning, evictions would have leaked
// uncommitted pages to the storage system and the abort could not retract
// them.
func TestNoStealUnderPressure(t *testing.T) {
	f := newFixture(t, 4)
	tx, err := f.tm.Begin(f.sess)
	if err != nil {
		t.Fatal(err)
	}
	tx.Op(wal.KindHeapInsert)
	app := f.file.NewAppender(&f.sess.Clk, f.inst.Pool, f.db.Store.Pages(f.info.ID))
	rids := make([]catalog.RID, 0, 200)
	bulk := catalog.StringDatum(string(make([]byte, 400)))
	for i := 0; i < 200; i++ {
		rid, err := app.Append(catalog.Tuple{catalog.IntDatum(int64(1000 + i)), bulk})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	tx.Op(wal.KindIndexInsert)
	for i, rid := range rids {
		if err := f.ix.Insert(&f.sess.Clk, btree.Entry{Key: int64(1000 + i), RID: rid}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.inst.Pool.Len() <= 4 {
		t.Fatalf("expected the pinned working set to exceed the pool cap, len=%d", f.inst.Pool.Len())
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if n := f.scanCount(t); n != 0 {
		t.Fatalf("%d uncommitted tuples leaked to disk", n)
	}
	if got := f.lookup(t, 1050); got != "" {
		t.Fatalf("aborted index entry visible: %q", got)
	}
}

// TestCrashRecovery is the end-to-end acceptance check: a crash is
// injected mid-stream, a fresh instance recovers from the WAL, and all
// committed transactions' effects are present while the loser's are
// absent — verified through both index lookups and heap scans.
func TestCrashRecovery(t *testing.T) {
	f := newFixture(t, 16)
	if err := f.tm.Checkpoint(f.sess); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		if err := f.insert(i, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	// Arm the harness: the 5th commit from now (key 25) dies after its
	// page records are durable but before its commit record.
	f.tm.CrashAtCommit(5)
	var crashedAt int64
	for i := int64(21); i <= 30; i++ {
		err := f.insert(i, fmt.Sprintf("v%d", i))
		if errors.Is(err, ErrCrashed) {
			crashedAt = i
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if crashedAt != 25 {
		t.Fatalf("crash fired at key %d, want 25", crashedAt)
	}
	f.tm.Crash()
	if _, err := f.tm.Begin(f.sess); !errors.Is(err, ErrCrashed) {
		t.Fatalf("dead manager accepted a transaction: %v", err)
	}

	// Restart: fresh instance over the surviving page store, recover.
	stats := f.attach(t, 16, false)
	if stats.CommittedTxns == 0 || stats.LoserTxns == 0 {
		t.Fatalf("recovery stats: %+v", stats)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("recovery consumed no simulated time")
	}

	for i := int64(1); i <= 24; i++ {
		if got, want := f.lookup(t, i), fmt.Sprintf("v%d", i); got != want {
			t.Fatalf("committed key %d: got %q want %q", i, got, want)
		}
	}
	if got := f.lookup(t, 25); got != "" {
		t.Fatalf("uncommitted key 25 visible after recovery: %q", got)
	}
	if n := f.scanCount(t); n != 24 {
		t.Fatalf("heap scan found %d tuples, want 24", n)
	}

	// Life goes on: the recovered log accepts new transactions.
	if err := f.insert(100, "after"); err != nil {
		t.Fatal(err)
	}
	if got := f.lookup(t, 100); got != "after" {
		t.Fatalf("post-recovery insert: %q", got)
	}
}
