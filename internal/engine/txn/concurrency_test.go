package txn

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/btree"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/wal"
)

// insertOn runs one transaction appending (id, val) on the given session
// (fixture.insert pinned to f.sess; workers need their own streams). The
// append lock serializes concurrent appenders on the shared table.
func (f *fixture) insertOn(sess *engine.Session, id int64, val string) error {
	tx, err := f.tm.Begin(sess)
	if err != nil {
		return err
	}
	tx.Op(wal.KindHeapInsert)
	if err := tx.LockAppend(f.info.ID); err != nil {
		_ = tx.Abort()
		return err
	}
	app := f.file.NewAppender(&sess.Clk, f.inst.Pool, f.db.Store.Pages(f.info.ID))
	rid, err := app.Append(catalog.Tuple{catalog.IntDatum(id), catalog.StringDatum(val)})
	if err == nil {
		err = app.Close()
	}
	if err != nil {
		_ = tx.Abort()
		return err
	}
	tx.Op(wal.KindIndexInsert)
	if err := f.ix.Insert(&sess.Clk, btree.Entry{Key: id, RID: rid}, 0); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// insertRetry retries insertOn across deadlock losses.
func (f *fixture) insertRetry(sess *engine.Session, id int64, val string) error {
	for try := 0; ; try++ {
		err := f.insertOn(sess, id, val)
		if err == nil || !errors.Is(err, ErrDeadlock) || try > 100 {
			return err
		}
	}
}

// TestStatsNonBlocking asserts the satellite fix: Commits/Aborts/Dead
// must answer while a transaction is in flight (the seed serialized them
// behind the big transaction mutex, so a long-running transaction froze
// every stats reader).
func TestStatsNonBlocking(t *testing.T) {
	f := newFixture(t, 64)
	tx, err := f.tm.Begin(f.sess)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = f.tm.Commits()
		_ = f.tm.Aborts()
		_ = f.tm.Dead()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stats readers blocked behind an in-flight transaction")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockDetectionAndRetry choreographs the classic two-transaction
// cycle on two heap pages: the younger transaction is refused with
// ErrDeadlock, aborts, and succeeds on retry.
func TestDeadlockDetectionAndRetry(t *testing.T) {
	f := newFixture(t, 64)
	// Two rows big enough that each occupies its own heap page.
	bulk := strings.Repeat("x", 5000)
	if err := f.insert(1, bulk); err != nil {
		t.Fatal(err)
	}
	if err := f.insert(2, bulk); err != nil {
		t.Fatal(err)
	}
	rid1 := f.mustRID(t, 1)
	rid2 := f.mustRID(t, 2)
	if rid1.Page == rid2.Page {
		t.Fatalf("rows share page %d; the test needs distinct pages", rid1.Page)
	}
	update := func(sess *engine.Session, rid catalog.RID, val string) error {
		row, err := f.file.Fetch(&sess.Clk, f.inst.Pool, rid, 0)
		if err != nil {
			return err
		}
		updated := row.Clone()
		updated[1] = catalog.StringDatum(val)
		return f.file.Update(&sess.Clk, f.inst.Pool, rid, updated, 0)
	}

	sess2 := f.inst.NewSession()
	t1, err := f.tm.Begin(f.sess)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := f.tm.Begin(sess2)
	if err != nil {
		t.Fatal(err)
	}
	if err := update(f.sess, rid1, bulk); err != nil { // t1: X(page1)
		t.Fatal(err)
	}
	if err := update(sess2, rid2, bulk); err != nil { // t2: X(page2)
		t.Fatal(err)
	}

	waitsBefore := f.tm.LockStats().Waits
	blocked := make(chan error, 1)
	go func() { blocked <- update(f.sess, rid2, bulk) }() // t1 waits on t2
	deadline := time.Now().Add(5 * time.Second)
	for f.tm.LockStats().Waits == waitsBefore {
		if time.Now().After(deadline) {
			t.Fatal("t1 never blocked on t2's page")
		}
		time.Sleep(time.Millisecond)
	}

	// t2 closes the cycle; being younger it is the victim.
	err = update(sess2, rid1, bulk)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("survivor's blocked update failed: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}

	// The victim's work succeeds on retry.
	t3, err := f.tm.Begin(sess2)
	if err != nil {
		t.Fatal(err)
	}
	if err := update(sess2, rid2, "retried"); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := f.lookup(t, 2); got != "retried" {
		t.Fatalf("retried update invisible: %q", got)
	}
	if s := f.tm.LockStats(); s.Deadlocks == 0 {
		t.Fatal("no deadlock recorded")
	}
}

// mustRID resolves the heap RID of a key through the index.
func (f *fixture) mustRID(t *testing.T, id int64) catalog.RID {
	t.Helper()
	rids, err := f.ix.Lookup(&f.sess.Clk, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 1 {
		t.Fatalf("key %d has %d rids", id, len(rids))
	}
	return rids[0]
}

// TestConcurrentCommits runs 8 mutating workers concurrently and checks
// every committed row is visible, the counters add up, no pins leak, and
// the group-commit coordinator accounted for every force.
func TestConcurrentCommits(t *testing.T) {
	f := newFixture(t, 128)
	const workers = 8
	const each = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := f.inst.NewSession()
			for i := 0; i < each; i++ {
				id := int64(1000*w + i)
				if err := f.insertRetry(sess, id, fmt.Sprintf("w%d-%d", w, i)); err != nil {
					errs <- fmt.Errorf("worker %d insert %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := f.tm.Commits(); got != workers*each {
		t.Fatalf("commits=%d want %d", got, workers*each)
	}
	if n := f.scanCount(t); n != workers*each {
		t.Fatalf("scan found %d rows, want %d", n, workers*each)
	}
	for w := 0; w < workers; w++ {
		if got := f.lookup(t, int64(1000*w+each-1)); got != fmt.Sprintf("w%d-%d", w, each-1) {
			t.Fatalf("worker %d last row: %q", w, got)
		}
	}
	if n := f.inst.Pool.PinnedFrames(); n != 0 {
		t.Fatalf("%d frames still pinned after all transactions finished", n)
	}
	gc := f.tm.GroupCommit()
	if gc.Txns != workers*each {
		t.Fatalf("group commit accounted %d txns, want %d", gc.Txns, workers*each)
	}
	if gc.Batches <= 0 || gc.Batches > gc.Txns {
		t.Fatalf("group commit batches=%d txns=%d", gc.Batches, gc.Txns)
	}
}

// TestNoStealConcurrentMutators is the no-steal invariant under
// concurrency: 8 mutators hammer a 8-frame pool (constant eviction
// pressure), a third of the transactions abort after writing, and the
// instance then crashes WITHOUT a checkpoint. If any uncommitted page
// had ever been written back, the post-recovery scan would see aborted
// or torn rows.
func TestNoStealConcurrentMutators(t *testing.T) {
	f := newFixture(t, 8)
	if err := f.tm.Checkpoint(f.sess); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const each = 9
	bulk := strings.Repeat("y", 1200)
	var mu sync.Mutex
	committed := make(map[int64]bool)
	aborted := make(map[int64]bool)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := f.inst.NewSession()
			for i := 0; i < each; i++ {
				id := int64(1000*w + i)
				if i%3 == 2 {
					// Deliberate abort after writing heap + index pages.
					err := func() error {
						tx, err := f.tm.Begin(sess)
						if err != nil {
							return err
						}
						tx.Op(wal.KindHeapInsert)
						if err := tx.LockAppend(f.info.ID); err != nil {
							return tx.Abort()
						}
						app := f.file.NewAppender(&sess.Clk, f.inst.Pool, f.db.Store.Pages(f.info.ID))
						if _, err := app.Append(catalog.Tuple{catalog.IntDatum(id), catalog.StringDatum(bulk)}); err == nil {
							_ = app.Close()
						}
						return tx.Abort()
					}()
					if err != nil {
						errs <- fmt.Errorf("worker %d abort txn %d: %w", w, i, err)
						return
					}
					mu.Lock()
					aborted[id] = true
					mu.Unlock()
					continue
				}
				if err := f.insertRetry(sess, id, bulk); err != nil {
					errs <- fmt.Errorf("worker %d insert %d: %w", w, i, err)
					return
				}
				mu.Lock()
				committed[id] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := f.inst.Pool.PinnedFrames(); n != 0 {
		t.Fatalf("%d frames still pinned", n)
	}

	// Hard crash (no checkpoint): recovery rebuilds purely from WAL redo
	// over whatever pages the pool wrote back.
	f.tm.Crash()
	f.attach(t, 64, false)
	if n := f.scanCount(t); n != len(committed) {
		t.Fatalf("post-recovery scan: %d rows, want %d committed", n, len(committed))
	}
	for id := range committed {
		if got := f.lookup(t, id); got != bulk {
			t.Fatalf("committed key %d missing after recovery (%q)", id, got)
		}
	}
	for id := range aborted {
		if got := f.lookup(t, id); got != "" {
			t.Fatalf("aborted key %d visible after recovery", id)
		}
	}
}

// TestCommitCheckpointCrashInterleaving runs concurrent committers, a
// checkpointer taking the drain barrier mid-stream, and a crash injected
// while workers are in flight; recovery must show exactly the commits
// that succeeded.
func TestCommitCheckpointCrashInterleaving(t *testing.T) {
	f := newFixture(t, 64)
	if err := f.tm.Checkpoint(f.sess); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const each = 20
	f.tm.CrashAtCommit(workers * each / 2)

	var mu sync.Mutex
	committed := make(map[int64]bool)
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := f.inst.NewSession()
			for i := 0; i < each; i++ {
				id := int64(1000*w + i)
				err := f.insertRetry(sess, id, fmt.Sprintf("v%d", id))
				if errors.Is(err, ErrCrashed) {
					return // this key and everything after it is lost
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d insert %d: %w", w, i, err)
					return
				}
				mu.Lock()
				committed[id] = true
				mu.Unlock()
			}
		}(w)
	}
	// A checkpointer interleaves with the committers until the crash.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ckSess := f.inst.NewSession()
		for {
			err := f.tm.Checkpoint(ckSess)
			if errors.Is(err, ErrCrashed) {
				return
			}
			if err != nil {
				errs <- fmt.Errorf("checkpoint: %w", err)
				return
			}
			if f.tm.Dead() {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !f.tm.Dead() {
		t.Fatal("crash harness never fired")
	}
	f.tm.Crash()

	stats := f.attach(t, 64, false)
	if stats == nil {
		t.Fatal("no recovery stats")
	}
	if n := f.scanCount(t); n != len(committed) {
		t.Fatalf("post-recovery scan: %d rows, want %d", n, len(committed))
	}
	for id := range committed {
		if got, want := f.lookup(t, id), fmt.Sprintf("v%d", id); got != want {
			t.Fatalf("committed key %d: got %q want %q", id, got, want)
		}
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < each; i++ {
			id := int64(1000*w + i)
			if !committed[id] && f.lookup(t, id) != "" {
				t.Fatalf("uncommitted key %d visible after recovery", id)
			}
		}
	}
}
