package catalog

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleSchema() Schema {
	return NewSchema(
		Column{Name: "id", Type: Int64},
		Column{Name: "price", Type: Float64},
		Column{Name: "name", Type: String},
		Column{Name: "when", Type: Date},
	)
}

func TestSchemaCol(t *testing.T) {
	s := sampleSchema()
	if s.Col("price") != 1 {
		t.Fatalf("price at %d", s.Col("price"))
	}
	if s.Col("missing") != -1 {
		t.Fatal("missing column found")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCol on missing column did not panic")
		}
	}()
	s.MustCol("missing")
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleSchema()
	in := Tuple{IntDatum(-42), FloatDatum(3.25), StringDatum("héllo"), IntDatum(12345)}
	enc, err := EncodeTuple(nil, s, in)
	if err != nil {
		t.Fatal(err)
	}
	out, n, err := DecodeTuple(enc, s)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip %v -> %v", in, out)
	}
}

func TestEncodeArityMismatch(t *testing.T) {
	s := sampleSchema()
	if _, err := EncodeTuple(nil, s, Tuple{IntDatum(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	s := sampleSchema()
	enc, _ := EncodeTuple(nil, s, Tuple{IntDatum(1), FloatDatum(2), StringDatum("abc"), IntDatum(3)})
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeTuple(enc[:cut], s); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Property: encode/decode round-trips arbitrary values, including NaN-free
// floats and empty strings.
func TestCodecProperty(t *testing.T) {
	s := sampleSchema()
	f := func(id int64, price float64, name string, when int64) bool {
		if math.IsNaN(price) {
			price = 0
		}
		in := Tuple{IntDatum(id), FloatDatum(price), StringDatum(name), IntDatum(when)}
		enc, err := EncodeTuple(nil, s, in)
		if err != nil {
			return false
		}
		out, n, err := DecodeTuple(enc, s)
		if err != nil || n != len(enc) {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogTables(t *testing.T) {
	c := New()
	ti, err := c.AddTable("t", sampleSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddTable("t", sampleSchema()); err == nil {
		t.Fatal("duplicate table accepted")
	}
	got, err := c.Table("t")
	if err != nil || got.ID != ti.ID {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if _, err := c.Table("nope"); err == nil {
		t.Fatal("unknown table found")
	}
	c.SetRows("t", 99)
	if c.MustTable("t").Rows != 99 {
		t.Fatal("SetRows lost")
	}
}

func TestCatalogIndexes(t *testing.T) {
	c := New()
	ti, _ := c.AddTable("t", sampleSchema())
	ix, err := c.AddIndex("t_id", "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix.TableID != ti.ID {
		t.Fatal("index not bound to table")
	}
	if _, err := c.AddIndex("bad", "nope", 0); err == nil {
		t.Fatal("index on unknown table accepted")
	}
	if _, err := c.AddIndex("bad", "t", 42); err == nil {
		t.Fatal("out-of-range key column accepted")
	}
	if _, err := c.AddIndex("t_id", "t", 0); err == nil {
		t.Fatal("duplicate index accepted")
	}
	found, ok := c.IndexFor(ti.ID, 0)
	if !ok || found.Name != "t_id" {
		t.Fatalf("IndexFor: %v %v", found, ok)
	}
	if _, ok := c.IndexFor(ti.ID, 1); ok {
		t.Fatal("phantom index found")
	}
}

func TestTempIDs(t *testing.T) {
	c := New()
	a, b := c.NewTempID(), c.NewTempID()
	if a == b {
		t.Fatal("temp IDs collide")
	}
	if !IsTemp(a) || !IsTemp(b) {
		t.Fatal("temp IDs not in temp range")
	}
	ti, _ := c.AddTable("t", sampleSchema())
	if IsTemp(ti.ID) {
		t.Fatal("table ID in temp range")
	}
	if c.NameOf(a) == "" || c.NameOf(ti.ID) != "t" {
		t.Fatalf("NameOf: %q %q", c.NameOf(a), c.NameOf(ti.ID))
	}
}

func TestListings(t *testing.T) {
	c := New()
	_, _ = c.AddTable("b", sampleSchema())
	_, _ = c.AddTable("a", sampleSchema())
	_, _ = c.AddIndex("ix", "a", 0)
	tables := c.Tables()
	if len(tables) != 2 || tables[0].Name != "a" {
		t.Fatalf("tables %v", tables)
	}
	if len(c.Indexes()) != 1 {
		t.Fatal("index listing wrong")
	}
}
