// Package catalog holds the schema layer of the engine: column types,
// tuple values, table and index descriptors, and object-ID assignment
// (including the reserved range for temporary files).
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"hstoragedb/internal/pagestore"
)

// ColType enumerates the column types the engine supports — the subset
// TPC-H needs.
type ColType int

const (
	// Int64 is a 64-bit integer (also used for keys and identifiers).
	Int64 ColType = iota
	// Float64 is a double-precision decimal (prices, discounts).
	Float64
	// String is a variable-length string (up to a page).
	String
	// Date is a day number (days since 1970-01-01), stored like Int64
	// but kept distinct for schema readability.
	Date
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Date:
		return "date"
	}
	return fmt.Sprintf("coltype(%d)", int(t))
}

// Column is one schema column.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from (name, type) pairs.
func NewSchema(cols ...Column) Schema { return Schema{Cols: cols} }

// Col returns the index of the named column, or -1.
func (s Schema) Col(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustCol is Col but panics on a missing column; schema lookups in query
// construction are programming errors, not runtime conditions.
func (s Schema) MustCol(name string) int {
	i := s.Col(name)
	if i < 0 {
		panic(fmt.Sprintf("catalog: schema has no column %q", name))
	}
	return i
}

// Datum is one column value. The active field is determined by the
// schema's column type (String for String; F for Float64; I otherwise).
type Datum struct {
	I int64
	F float64
	S string
}

// IntDatum, FloatDatum and StringDatum are convenience constructors.
func IntDatum(v int64) Datum     { return Datum{I: v} }
func FloatDatum(v float64) Datum { return Datum{F: v} }
func StringDatum(v string) Datum { return Datum{S: v} }

// Tuple is one row.
type Tuple []Datum

// Clone returns a deep-enough copy (Datum is a value type).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// RID locates a tuple inside a heap file.
type RID struct {
	Page int64
	Slot uint16
}

// TableInfo describes a stored table.
type TableInfo struct {
	ID     pagestore.ObjectID
	Name   string
	Schema Schema
	Rows   int64
}

// IndexInfo describes a B+tree index over one Int64/Date column of a
// table.
type IndexInfo struct {
	ID      pagestore.ObjectID
	Name    string
	TableID pagestore.ObjectID
	KeyCol  int
}

// tempIDBase is the start of the reserved temporary-object ID range.
const tempIDBase pagestore.ObjectID = 1 << 30

// Catalog is the registry of tables and indexes. It is safe for
// concurrent use.
type Catalog struct {
	mu      sync.Mutex
	tables  map[string]*TableInfo
	indexes map[string]*IndexInfo
	byID    map[pagestore.ObjectID]string
	nextOID pagestore.ObjectID
	nextTmp pagestore.ObjectID
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:  make(map[string]*TableInfo),
		indexes: make(map[string]*IndexInfo),
		byID:    make(map[pagestore.ObjectID]string),
		nextOID: 1,
		nextTmp: tempIDBase,
	}
}

// AddTable registers a table and assigns it an object ID.
func (c *Catalog) AddTable(name string, schema Schema) (*TableInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &TableInfo{ID: c.nextOID, Name: name, Schema: schema}
	c.nextOID++
	c.tables[name] = t
	c.byID[t.ID] = name
	return t, nil
}

// AddIndex registers an index over table's column keyCol.
func (c *Catalog) AddIndex(name, table string, keyCol int) (*IndexInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("catalog: index %q references unknown table %q", name, table)
	}
	if _, ok := c.indexes[name]; ok {
		return nil, fmt.Errorf("catalog: index %q already exists", name)
	}
	if keyCol < 0 || keyCol >= len(t.Schema.Cols) {
		return nil, fmt.Errorf("catalog: index %q key column %d out of range", name, keyCol)
	}
	ix := &IndexInfo{ID: c.nextOID, Name: name, TableID: t.ID, KeyCol: keyCol}
	c.nextOID++
	c.indexes[name] = ix
	c.byID[ix.ID] = name
	return ix, nil
}

// Table returns the named table's descriptor.
func (c *Catalog) Table(name string) (*TableInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return t, nil
}

// MustTable is Table but panics; used by query constructors.
func (c *Catalog) MustTable(name string) *TableInfo {
	t, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Index returns the named index's descriptor.
func (c *Catalog) Index(name string) (*IndexInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ix, ok := c.indexes[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown index %q", name)
	}
	return ix, nil
}

// MustIndex is Index but panics; used by query constructors.
func (c *Catalog) MustIndex(name string) *IndexInfo {
	ix, err := c.Index(name)
	if err != nil {
		panic(err)
	}
	return ix
}

// IndexFor returns an index of the table keyed on keyCol, if one exists.
func (c *Catalog) IndexFor(tableID pagestore.ObjectID, keyCol int) (*IndexInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ix := range c.indexes {
		if ix.TableID == tableID && ix.KeyCol == keyCol {
			return ix, true
		}
	}
	return nil, false
}

// NameOf resolves an object ID to its catalog name (for reports); temp
// objects render as tmp<N>.
func (c *Catalog) NameOf(id pagestore.ObjectID) string {
	if id >= tempIDBase {
		return fmt.Sprintf("tmp%d", id-tempIDBase)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.byID[id]; ok {
		return n
	}
	return fmt.Sprintf("obj%d", id)
}

// NewTempID allocates an object ID from the temporary range.
func (c *Catalog) NewTempID() pagestore.ObjectID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextTmp
	c.nextTmp++
	return id
}

// IsTemp reports whether an object ID belongs to the temporary range.
func IsTemp(id pagestore.ObjectID) bool { return id >= tempIDBase }

// Tables returns descriptors of all tables sorted by name.
func (c *Catalog) Tables() []*TableInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*TableInfo, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Indexes returns descriptors of all indexes sorted by name.
func (c *Catalog) Indexes() []*IndexInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*IndexInfo, 0, len(c.indexes))
	for _, ix := range c.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetRows updates a table's row count (maintained by loads and RF1/RF2).
func (c *Catalog) SetRows(name string, rows int64) {
	c.mu.Lock()
	if t, ok := c.tables[name]; ok {
		t.Rows = rows
	}
	c.mu.Unlock()
}
