package catalog

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeTuple appends the binary encoding of t (per schema s) to dst and
// returns the extended slice. Layout: fixed 8-byte little-endian words for
// Int64/Date/Float64 columns; uvarint length + bytes for String columns.
func EncodeTuple(dst []byte, s Schema, t Tuple) ([]byte, error) {
	if len(t) != len(s.Cols) {
		return nil, fmt.Errorf("catalog: tuple arity %d != schema arity %d", len(t), len(s.Cols))
	}
	var w [8]byte
	for i, c := range s.Cols {
		switch c.Type {
		case Int64, Date:
			binary.LittleEndian.PutUint64(w[:], uint64(t[i].I))
			dst = append(dst, w[:]...)
		case Float64:
			binary.LittleEndian.PutUint64(w[:], math.Float64bits(t[i].F))
			dst = append(dst, w[:]...)
		case String:
			dst = binary.AppendUvarint(dst, uint64(len(t[i].S)))
			dst = append(dst, t[i].S...)
		default:
			return nil, fmt.Errorf("catalog: unknown column type %v", c.Type)
		}
	}
	return dst, nil
}

// DecodeTuple parses one tuple of schema s from src, returning the tuple
// and the number of bytes consumed.
func DecodeTuple(src []byte, s Schema) (Tuple, int, error) {
	t := make(Tuple, len(s.Cols))
	off := 0
	for i, c := range s.Cols {
		switch c.Type {
		case Int64, Date:
			if off+8 > len(src) {
				return nil, 0, fmt.Errorf("catalog: truncated int column %q", c.Name)
			}
			t[i].I = int64(binary.LittleEndian.Uint64(src[off:]))
			off += 8
		case Float64:
			if off+8 > len(src) {
				return nil, 0, fmt.Errorf("catalog: truncated float column %q", c.Name)
			}
			t[i].F = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
			off += 8
		case String:
			n, w := binary.Uvarint(src[off:])
			if w <= 0 || off+w+int(n) > len(src) {
				return nil, 0, fmt.Errorf("catalog: truncated string column %q", c.Name)
			}
			off += w
			t[i].S = string(src[off : off+int(n)])
			off += int(n)
		default:
			return nil, 0, fmt.Errorf("catalog: unknown column type %v", c.Type)
		}
	}
	return t, off, nil
}
