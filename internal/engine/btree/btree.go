// Package btree implements a disk-resident B+tree index over int64 keys,
// mapping each key to heap RIDs (duplicates allowed). All page accesses go
// through the buffer pool with an Index/Random semantic tag carrying the
// issuing operator's plan level, so index traffic classifies under Rule 2
// exactly like the table fetches it drives.
//
// Page 0 is a meta page holding the root pointer; node pages follow.
// Leaves are chained for range scans. Deletion is lazy (no rebalancing),
// which is sufficient for the RF2 update function.
package btree

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hstoragedb/internal/engine/bufferpool"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

const (
	metaMagic = 0x68535442 // "hSTB"

	nodeLeaf     = 0
	nodeInternal = 1

	// leaf entry: key(8) + page(8) + slot(2)
	leafEntrySize = 18
	// internal entry: key(8) + child(8); plus one leading child(8)
	internalEntrySize = 16

	leafHeader     = 1 + 2 + 8 // type, count, next
	internalHeader = 1 + 2 + 8 // type, count, child0

	// LeafCap and InternalCap are the fan-outs implied by the page size.
	LeafCap     = (pagestore.PageSize - leafHeader) / leafEntrySize
	InternalCap = (pagestore.PageSize - internalHeader) / internalEntrySize
)

// Entry is one indexed (key, rid) pair.
type Entry struct {
	Key int64
	RID catalog.RID
}

// Tree is a handle to an index stored under an object ID.
type Tree struct {
	Object pagestore.ObjectID
	pool   *bufferpool.Pool
}

// Open binds a tree handle to an index object.
func Open(obj pagestore.ObjectID, pool *bufferpool.Pool) *Tree {
	return &Tree{Object: obj, pool: pool}
}

func (t *Tree) tag(level int) policy.Tag {
	return policy.Tag{Object: t.Object, Content: policy.Index, Pattern: policy.Random, Level: level}
}

// ---- node encoding ----

type leafNode struct {
	next    int64
	entries []Entry
}

type internalNode struct {
	children []int64 // len(keys)+1
	keys     []int64
}

func encodeLeaf(n *leafNode) []byte {
	buf := make([]byte, leafHeader, leafHeader+len(n.entries)*leafEntrySize)
	buf[0] = nodeLeaf
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.entries)))
	binary.LittleEndian.PutUint64(buf[3:], uint64(n.next))
	var w [leafEntrySize]byte
	for _, e := range n.entries {
		binary.LittleEndian.PutUint64(w[0:], uint64(e.Key))
		binary.LittleEndian.PutUint64(w[8:], uint64(e.RID.Page))
		binary.LittleEndian.PutUint16(w[16:], e.RID.Slot)
		buf = append(buf, w[:]...)
	}
	return buf
}

func encodeInternal(n *internalNode) []byte {
	buf := make([]byte, internalHeader, internalHeader+len(n.keys)*internalEntrySize)
	buf[0] = nodeInternal
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	binary.LittleEndian.PutUint64(buf[3:], uint64(n.children[0]))
	var w [internalEntrySize]byte
	for i, k := range n.keys {
		binary.LittleEndian.PutUint64(w[0:], uint64(k))
		binary.LittleEndian.PutUint64(w[8:], uint64(n.children[i+1]))
		buf = append(buf, w[:]...)
	}
	return buf
}

func decodeNode(data []byte) (*leafNode, *internalNode, error) {
	if len(data) < leafHeader {
		return nil, nil, fmt.Errorf("btree: short node page")
	}
	count := int(binary.LittleEndian.Uint16(data[1:]))
	switch data[0] {
	case nodeLeaf:
		n := &leafNode{next: int64(binary.LittleEndian.Uint64(data[3:]))}
		n.entries = make([]Entry, count)
		off := leafHeader
		for i := 0; i < count; i++ {
			if off+leafEntrySize > len(data) {
				return nil, nil, fmt.Errorf("btree: truncated leaf entry %d", i)
			}
			n.entries[i] = Entry{
				Key: int64(binary.LittleEndian.Uint64(data[off:])),
				RID: catalog.RID{
					Page: int64(binary.LittleEndian.Uint64(data[off+8:])),
					Slot: binary.LittleEndian.Uint16(data[off+16:]),
				},
			}
			off += leafEntrySize
		}
		return n, nil, nil
	case nodeInternal:
		n := &internalNode{
			children: make([]int64, 1, count+1),
			keys:     make([]int64, count),
		}
		n.children[0] = int64(binary.LittleEndian.Uint64(data[3:]))
		off := internalHeader
		for i := 0; i < count; i++ {
			if off+internalEntrySize > len(data) {
				return nil, nil, fmt.Errorf("btree: truncated internal entry %d", i)
			}
			n.keys[i] = int64(binary.LittleEndian.Uint64(data[off:]))
			n.children = append(n.children, int64(binary.LittleEndian.Uint64(data[off+8:])))
			off += internalEntrySize
		}
		return nil, n, nil
	}
	return nil, nil, fmt.Errorf("btree: unknown node type %d", data[0])
}

func encodeMeta(root int64, pages int64) []byte {
	buf := make([]byte, 20)
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[4:], uint64(root))
	binary.LittleEndian.PutUint64(buf[12:], uint64(pages))
	return buf
}

func decodeMeta(data []byte) (root, pages int64, err error) {
	if len(data) < 20 || binary.LittleEndian.Uint32(data[0:]) != metaMagic {
		return 0, 0, fmt.Errorf("btree: bad meta page")
	}
	return int64(binary.LittleEndian.Uint64(data[4:])), int64(binary.LittleEndian.Uint64(data[12:])), nil
}

// ---- page I/O helpers ----

func (t *Tree) readMeta(clk *simclock.Clock, level int) (root, pages int64, err error) {
	data, err := t.pool.Get(clk, t.tag(level), 0)
	if err != nil {
		return 0, 0, err
	}
	return decodeMeta(data)
}

func (t *Tree) writeMeta(clk *simclock.Clock, root, pages int64) error {
	return t.pool.Put(clk, t.tag(0), 0, encodeMeta(root, pages))
}

func (t *Tree) readNode(clk *simclock.Clock, page int64, level int) (*leafNode, *internalNode, error) {
	data, err := t.pool.Get(clk, t.tag(level), page)
	if err != nil {
		return nil, nil, err
	}
	return decodeNode(data)
}

// ---- bulk build ----

// Build constructs the tree from entries (sorted in place by key) and
// returns the number of pages written. Loads run on the caller's clock;
// experiment setup typically uses a scratch clock and resets statistics
// afterwards.
func Build(clk *simclock.Clock, pool *bufferpool.Pool, obj pagestore.ObjectID, entries []Entry) (*Tree, int64, error) {
	t := Open(obj, pool)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key < entries[j].Key
		}
		if entries[i].RID.Page != entries[j].RID.Page {
			return entries[i].RID.Page < entries[j].RID.Page
		}
		return entries[i].RID.Slot < entries[j].RID.Slot
	})

	nextPage := int64(1)
	// Fill leaves to ~90% so RF1 inserts rarely split.
	leafFill := LeafCap * 9 / 10
	if leafFill < 1 {
		leafFill = 1
	}

	type childRef struct {
		firstKey int64
		page     int64
	}
	var level []childRef

	if len(entries) == 0 {
		// Empty tree: a single empty leaf as root.
		if err := pool.Put(clk, t.tag(0), 1, encodeLeaf(&leafNode{next: -1})); err != nil {
			return nil, 0, err
		}
		if err := t.writeMeta(clk, 1, 2); err != nil {
			return nil, 0, err
		}
		return t, 2, nil
	}

	// Leaf level.
	for i := 0; i < len(entries); {
		end := i + leafFill
		if end > len(entries) {
			end = len(entries)
		}
		page := nextPage
		nextPage++
		next := int64(-1)
		if end < len(entries) {
			next = nextPage // the following leaf
		}
		n := &leafNode{next: next, entries: entries[i:end]}
		if err := pool.Put(clk, t.tag(0), page, encodeLeaf(n)); err != nil {
			return nil, 0, err
		}
		level = append(level, childRef{firstKey: entries[i].Key, page: page})
		i = end
	}

	// Internal levels.
	fill := InternalCap * 9 / 10
	if fill < 2 {
		fill = 2
	}
	for len(level) > 1 {
		var up []childRef
		for i := 0; i < len(level); {
			end := i + fill
			if end > len(level) {
				end = len(level)
			}
			group := level[i:end]
			n := &internalNode{}
			n.children = append(n.children, group[0].page)
			for _, c := range group[1:] {
				n.keys = append(n.keys, c.firstKey)
				n.children = append(n.children, c.page)
			}
			page := nextPage
			nextPage++
			if err := pool.Put(clk, t.tag(0), page, encodeInternal(n)); err != nil {
				return nil, 0, err
			}
			up = append(up, childRef{firstKey: group[0].firstKey, page: page})
			i = end
		}
		level = up
	}

	if err := t.writeMeta(clk, level[0].page, nextPage); err != nil {
		return nil, 0, err
	}
	return t, nextPage, nil
}

// ---- search ----

// descend returns the page number of the leaf that may contain key.
func (t *Tree) descend(clk *simclock.Clock, key int64, level int) (int64, error) {
	root, _, err := t.readMeta(clk, level)
	if err != nil {
		return 0, err
	}
	page := root
	for {
		leaf, internal, err := t.readNode(clk, page, level)
		if err != nil {
			return 0, err
		}
		if leaf != nil {
			return page, nil
		}
		// First key strictly greater than `key` bounds the child index.
		idx := sort.Search(len(internal.keys), func(i int) bool { return internal.keys[i] > key })
		page = internal.children[idx]
	}
}

// Iterator walks leaf entries in key order within [lo, hi].
type Iterator struct {
	t     *Tree
	clk   *simclock.Clock
	level int
	hi    int64

	page    int64
	entries []Entry
	idx     int
	next    int64
	done    bool
}

// Seek positions an iterator at the first entry with key >= lo, bounded
// above by hi (inclusive). The iterator's page fetches carry the plan
// level of the issuing operator.
func (t *Tree) Seek(clk *simclock.Clock, lo, hi int64, level int) (*Iterator, error) {
	page, err := t.descend(clk, lo, level)
	if err != nil {
		return nil, err
	}
	it := &Iterator{t: t, clk: clk, level: level, hi: hi, page: page}
	leaf, _, err := t.readNode(clk, page, level)
	if err != nil {
		return nil, err
	}
	it.entries = leaf.entries
	it.next = leaf.next
	it.idx = sort.Search(len(it.entries), func(i int) bool { return it.entries[i].Key >= lo })
	return it, nil
}

// Next returns the next entry in range; ok=false when exhausted.
func (it *Iterator) Next() (Entry, bool, error) {
	for {
		if it.done {
			return Entry{}, false, nil
		}
		if it.idx < len(it.entries) {
			e := it.entries[it.idx]
			it.idx++
			if e.Key > it.hi {
				it.done = true
				return Entry{}, false, nil
			}
			return e, true, nil
		}
		if it.next < 0 {
			it.done = true
			return Entry{}, false, nil
		}
		leaf, _, err := it.t.readNode(it.clk, it.next, it.level)
		if err != nil {
			return Entry{}, false, err
		}
		it.page = it.next
		it.entries = leaf.entries
		it.next = leaf.next
		it.idx = 0
	}
}

// Lookup returns all RIDs for an exact key.
func (t *Tree) Lookup(clk *simclock.Clock, key int64, level int) ([]catalog.RID, error) {
	it, err := t.Seek(clk, key, key, level)
	if err != nil {
		return nil, err
	}
	var out []catalog.RID
	for {
		e, ok, err := it.Next()
		if err != nil || !ok {
			return out, err
		}
		out = append(out, e.RID)
	}
}
