package btree

import (
	"sort"

	"hstoragedb/internal/simclock"
)

// Insert adds (key, rid) to the tree, splitting nodes as needed. Index
// maintenance during RF1 runs with the updating query's plan level.
func (t *Tree) Insert(clk *simclock.Clock, e Entry, level int) error {
	root, pages, err := t.readMeta(clk, level)
	if err != nil {
		return err
	}

	newChild, sepKey, newPages, err := t.insertInto(clk, root, e, level, pages)
	if err != nil {
		return err
	}
	pages = newPages
	if newChild >= 0 {
		// Root split: grow the tree by one level.
		n := &internalNode{children: []int64{root, newChild}, keys: []int64{sepKey}}
		newRoot := pages
		pages++
		if err := t.pool.Put(clk, t.tag(level), newRoot, encodeInternal(n)); err != nil {
			return err
		}
		root = newRoot
	}
	return t.writeMeta(clk, root, pages)
}

// insertInto inserts into the subtree rooted at page. On split it returns
// the new right sibling's page number and separator key; otherwise the
// returned page is -1. It threads the tree's page count through for new
// allocations.
func (t *Tree) insertInto(clk *simclock.Clock, page int64, e Entry, level int, pages int64) (int64, int64, int64, error) {
	leaf, internal, err := t.readNode(clk, page, level)
	if err != nil {
		return -1, 0, pages, err
	}

	if leaf != nil {
		idx := sort.Search(len(leaf.entries), func(i int) bool {
			le := leaf.entries[i]
			if le.Key != e.Key {
				return le.Key > e.Key
			}
			if le.RID.Page != e.RID.Page {
				return le.RID.Page > e.RID.Page
			}
			return le.RID.Slot >= e.RID.Slot
		})
		leaf.entries = append(leaf.entries, Entry{})
		copy(leaf.entries[idx+1:], leaf.entries[idx:])
		leaf.entries[idx] = e

		if len(leaf.entries) <= LeafCap {
			return -1, 0, pages, t.pool.Put(clk, t.tag(level), page, encodeLeaf(leaf))
		}
		// Split the leaf.
		mid := len(leaf.entries) / 2
		right := &leafNode{next: leaf.next, entries: append([]Entry(nil), leaf.entries[mid:]...)}
		rightPage := pages
		pages++
		leaf.entries = leaf.entries[:mid]
		leaf.next = rightPage
		if err := t.pool.Put(clk, t.tag(level), rightPage, encodeLeaf(right)); err != nil {
			return -1, 0, pages, err
		}
		if err := t.pool.Put(clk, t.tag(level), page, encodeLeaf(leaf)); err != nil {
			return -1, 0, pages, err
		}
		return rightPage, right.entries[0].Key, pages, nil
	}

	idx := sort.Search(len(internal.keys), func(i int) bool { return internal.keys[i] > e.Key })
	newChild, sepKey, newPages, err := t.insertInto(clk, internal.children[idx], e, level, pages)
	pages = newPages
	if err != nil || newChild < 0 {
		return -1, 0, pages, err
	}

	// Child split: install the separator.
	internal.keys = append(internal.keys, 0)
	copy(internal.keys[idx+1:], internal.keys[idx:])
	internal.keys[idx] = sepKey
	internal.children = append(internal.children, 0)
	copy(internal.children[idx+2:], internal.children[idx+1:])
	internal.children[idx+1] = newChild

	if len(internal.keys) <= InternalCap {
		return -1, 0, pages, t.pool.Put(clk, t.tag(level), page, encodeInternal(internal))
	}
	// Split the internal node; the middle key moves up.
	mid := len(internal.keys) / 2
	upKey := internal.keys[mid]
	right := &internalNode{
		keys:     append([]int64(nil), internal.keys[mid+1:]...),
		children: append([]int64(nil), internal.children[mid+1:]...),
	}
	internal.keys = internal.keys[:mid]
	internal.children = internal.children[:mid+1]
	rightPage := pages
	pages++
	if err := t.pool.Put(clk, t.tag(level), rightPage, encodeInternal(right)); err != nil {
		return -1, 0, pages, err
	}
	if err := t.pool.Put(clk, t.tag(level), page, encodeInternal(internal)); err != nil {
		return -1, 0, pages, err
	}
	return rightPage, upKey, pages, nil
}

// DeleteEntry removes the single entry (key, rid), returning whether it
// was found. Used by RF2 to maintain secondary indexes whose keys are
// shared by many rows.
func (t *Tree) DeleteEntry(clk *simclock.Clock, e Entry, level int) (bool, error) {
	page, err := t.descend(clk, e.Key, level)
	if err != nil {
		return false, err
	}
	for page >= 0 {
		leaf, _, err := t.readNode(clk, page, level)
		if err != nil {
			return false, err
		}
		past := false
		for i, le := range leaf.entries {
			if le.Key == e.Key && le.RID == e.RID {
				leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
				return true, t.pool.Put(clk, t.tag(level), page, encodeLeaf(leaf))
			}
			if le.Key > e.Key {
				past = true
				break
			}
		}
		if past || leaf.next < 0 {
			return false, nil
		}
		page = leaf.next
	}
	return false, nil
}

// Delete removes every entry with the given key (lazy deletion: leaves may
// underflow; no rebalancing). It returns the number of entries removed.
func (t *Tree) Delete(clk *simclock.Clock, key int64, level int) (int, error) {
	page, err := t.descend(clk, key, level)
	if err != nil {
		return 0, err
	}
	removed := 0
	for page >= 0 {
		leaf, _, err := t.readNode(clk, page, level)
		if err != nil {
			return removed, err
		}
		kept := leaf.entries[:0]
		before := len(leaf.entries)
		past := false
		for _, e := range leaf.entries {
			if e.Key == key {
				continue
			}
			if e.Key > key {
				past = true
			}
			kept = append(kept, e)
		}
		leaf.entries = kept
		if len(kept) != before {
			removed += before - len(kept)
			if err := t.pool.Put(clk, t.tag(level), page, encodeLeaf(leaf)); err != nil {
				return removed, err
			}
		}
		if past || leaf.next < 0 {
			break
		}
		// Duplicates may spill into the next leaf.
		page = leaf.next
	}
	return removed, nil
}
