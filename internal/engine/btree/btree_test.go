package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/bufferpool"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/storagemgr"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

type harness struct {
	pool *bufferpool.Pool
	clk  simclock.Clock
}

func newHarness(t testing.TB) *harness {
	t.Helper()
	store := pagestore.NewStore()
	if err := store.Create(1); err != nil {
		t.Fatal(err)
	}
	sys, err := hybrid.New(hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	mgr := storagemgr.New(store, sys, policy.NewAssignmentTable(dss.DefaultPolicySpace()))
	return &harness{pool: bufferpool.New(mgr, 256)}
}

func rid(i int64) catalog.RID {
	return catalog.RID{Page: i / 50, Slot: uint16(i % 50)}
}

func buildTree(t testing.TB, h *harness, n int64) *Tree {
	entries := make([]Entry, 0, n)
	for i := int64(0); i < n; i++ {
		entries = append(entries, Entry{Key: i, RID: rid(i)})
	}
	rand.New(rand.NewSource(1)).Shuffle(len(entries), func(i, j int) {
		entries[i], entries[j] = entries[j], entries[i]
	})
	tree, pages, err := Build(&h.clk, h.pool, 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	if pages < 2 {
		t.Fatalf("tree of %d keys in %d pages", n, pages)
	}
	return tree
}

func TestBuildAndLookup(t *testing.T) {
	h := newHarness(t)
	tree := buildTree(t, h, 10000)
	for _, k := range []int64{0, 1, 4999, 9999} {
		rids, err := tree.Lookup(&h.clk, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != 1 || rids[0] != rid(k) {
			t.Fatalf("key %d -> %v", k, rids)
		}
	}
	if rids, _ := tree.Lookup(&h.clk, 123456, 0); len(rids) != 0 {
		t.Fatalf("phantom key found: %v", rids)
	}
	if rids, _ := tree.Lookup(&h.clk, -5, 0); len(rids) != 0 {
		t.Fatalf("negative key found: %v", rids)
	}
}

func TestRangeScan(t *testing.T) {
	h := newHarness(t)
	tree := buildTree(t, h, 5000)
	it, err := tree.Seek(&h.clk, 1000, 1999, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(1000)
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if e.Key != want {
			t.Fatalf("got key %d, want %d", e.Key, want)
		}
		want++
	}
	if want != 2000 {
		t.Fatalf("range ended at %d", want)
	}
}

func TestDuplicateKeys(t *testing.T) {
	h := newHarness(t)
	entries := make([]Entry, 0, 300)
	for i := int64(0); i < 100; i++ {
		for d := int64(0); d < 3; d++ {
			entries = append(entries, Entry{Key: i, RID: rid(i*3 + d)})
		}
	}
	tree, _, err := Build(&h.clk, h.pool, 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	rids, err := tree.Lookup(&h.clk, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 3 {
		t.Fatalf("duplicates: %v", rids)
	}
}

func TestEmptyTree(t *testing.T) {
	h := newHarness(t)
	tree, _, err := Build(&h.clk, h.pool, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rids, _ := tree.Lookup(&h.clk, 1, 0); len(rids) != 0 {
		t.Fatal("empty tree found a key")
	}
	// Inserting into an empty tree works.
	if err := tree.Insert(&h.clk, Entry{Key: 7, RID: rid(7)}, 0); err != nil {
		t.Fatal(err)
	}
	if rids, _ := tree.Lookup(&h.clk, 7, 0); len(rids) != 1 {
		t.Fatal("inserted key not found")
	}
}

func TestInsertWithSplits(t *testing.T) {
	h := newHarness(t)
	tree, _, err := Build(&h.clk, h.pool, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Enough inserts to split leaves and grow the root at least once.
	const n = 3000
	perm := rand.New(rand.NewSource(2)).Perm(n)
	for _, k := range perm {
		if err := tree.Insert(&h.clk, Entry{Key: int64(k), RID: rid(int64(k))}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []int64{0, 1, n / 2, n - 1} {
		rids, err := tree.Lookup(&h.clk, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != 1 || rids[0] != rid(k) {
			t.Fatalf("key %d -> %v", k, rids)
		}
	}
	// Full scan returns everything in order.
	it, err := tree.Seek(&h.clk, 0, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	count := 0
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if e.Key < prev {
			t.Fatalf("out of order: %d after %d", e.Key, prev)
		}
		prev = e.Key
		count++
	}
	if count != n {
		t.Fatalf("scan found %d of %d", count, n)
	}
}

func TestDeleteKey(t *testing.T) {
	h := newHarness(t)
	tree := buildTree(t, h, 1000)
	removed, err := tree.Delete(&h.clk, 500, 0)
	if err != nil || removed != 1 {
		t.Fatalf("delete: %d %v", removed, err)
	}
	if rids, _ := tree.Lookup(&h.clk, 500, 0); len(rids) != 0 {
		t.Fatal("deleted key still found")
	}
	// Neighbors untouched.
	if rids, _ := tree.Lookup(&h.clk, 499, 0); len(rids) != 1 {
		t.Fatal("neighbor lost")
	}
	if removed, _ := tree.Delete(&h.clk, 500, 0); removed != 0 {
		t.Fatal("double delete removed something")
	}
}

func TestDeleteEntry(t *testing.T) {
	h := newHarness(t)
	entries := []Entry{
		{Key: 1, RID: rid(10)},
		{Key: 1, RID: rid(11)},
		{Key: 2, RID: rid(20)},
	}
	tree, _, err := Build(&h.clk, h.pool, 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := tree.DeleteEntry(&h.clk, Entry{Key: 1, RID: rid(10)}, 0)
	if err != nil || !ok {
		t.Fatalf("delete entry: %v %v", ok, err)
	}
	rids, _ := tree.Lookup(&h.clk, 1, 0)
	if len(rids) != 1 || rids[0] != rid(11) {
		t.Fatalf("wrong survivor: %v", rids)
	}
	ok, _ = tree.DeleteEntry(&h.clk, Entry{Key: 9, RID: rid(9)}, 0)
	if ok {
		t.Fatal("phantom delete succeeded")
	}
}

// Property: the tree agrees with a sorted reference on random workloads.
func TestTreeMatchesReference(t *testing.T) {
	f := func(keysRaw []int16) bool {
		h := newHarness(t)
		tree, _, err := Build(&h.clk, h.pool, 1, nil)
		if err != nil {
			return false
		}
		ref := map[int64]int{}
		for i, kr := range keysRaw {
			k := int64(kr)
			if err := tree.Insert(&h.clk, Entry{Key: k, RID: rid(int64(i))}, 0); err != nil {
				return false
			}
			ref[k]++
		}
		keys := make([]int64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			rids, err := tree.Lookup(&h.clk, k, 0)
			if err != nil || len(rids) != ref[k] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFanoutConstants(t *testing.T) {
	if LeafCap < 400 || InternalCap < 400 {
		t.Fatalf("suspicious fan-outs: leaf=%d internal=%d", LeafCap, InternalCap)
	}
}
