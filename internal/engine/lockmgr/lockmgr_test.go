package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the timeout expires.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSharedCompatibleExclusiveNot(t *testing.T) {
	m := New()
	a := PageID{Obj: 1, Page: 0}
	if err := m.Acquire(1, a, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, a, Shared); err != nil {
		t.Fatal(err)
	}

	got := make(chan error, 1)
	go func() { got <- m.Acquire(3, a, Exclusive) }()
	waitFor(t, func() bool { return m.Waiting() == 1 }, "X request to queue")

	m.ReleaseAll(1)
	select {
	case err := <-got:
		t.Fatalf("X granted with a Shared holder remaining: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if m.Held(3) != 1 {
		t.Fatalf("held=%d", m.Held(3))
	}
	m.ReleaseAll(3)
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := New()
	a := PageID{Obj: 1, Page: 7}
	if err := m.Acquire(1, a, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, a, Shared); err != nil {
		t.Fatal(err)
	}
	// Sole holder: the upgrade is granted in place.
	if err := m.Acquire(1, a, Exclusive); err != nil {
		t.Fatal(err)
	}
	// X covers a later S request by the same txn.
	if err := m.Acquire(1, a, Shared); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Upgrades != 1 {
		t.Fatalf("upgrades=%d", s.Upgrades)
	}
	m.ReleaseAll(1)
	if m.Held(1) != 0 {
		t.Fatal("locks survived ReleaseAll")
	}
}

// TestDeadlockTwoTxns builds the classic A->B->A cycle: each transaction
// holds one page exclusively and requests the other's.
func TestDeadlockTwoTxns(t *testing.T) {
	m := New()
	a, b := PageID{Obj: 1, Page: 0}, PageID{Obj: 1, Page: 1}
	if err := m.Acquire(1, a, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, b, Exclusive); err != nil {
		t.Fatal(err)
	}

	got1 := make(chan error, 1)
	go func() { got1 <- m.Acquire(1, b, Exclusive) }()
	waitFor(t, func() bool { return m.Waiting() == 1 }, "txn 1 to block")

	// Txn 2 closes the cycle; being the youngest it is the victim.
	err := m.Acquire(2, a, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	m.ReleaseAll(2) // victim aborts
	if err := <-got1; err != nil {
		t.Fatalf("survivor's request failed: %v", err)
	}
	m.ReleaseAll(1)
	if s := m.Stats(); s.Deadlocks != 1 {
		t.Fatalf("deadlocks=%d", s.Deadlocks)
	}
}

// TestDeadlockUpgrade exercises the upgrade-upgrade cycle: two Shared
// holders of the same page both request Exclusive.
func TestDeadlockUpgrade(t *testing.T) {
	m := New()
	a := PageID{Obj: 3, Page: 0}
	if err := m.Acquire(1, a, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, a, Shared); err != nil {
		t.Fatal(err)
	}

	got1 := make(chan error, 1)
	go func() { got1 <- m.Acquire(1, a, Exclusive) }()
	waitFor(t, func() bool { return m.Waiting() == 1 }, "txn 1 upgrade to block")

	err := m.Acquire(2, a, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	m.ReleaseAll(2)
	if err := <-got1; err != nil {
		t.Fatalf("survivor upgrade failed: %v", err)
	}
	m.ReleaseAll(1)
}

// TestDeadlockThreeTxns builds a 3-cycle across three pages.
func TestDeadlockThreeTxns(t *testing.T) {
	m := New()
	p := []PageID{{Obj: 1, Page: 0}, {Obj: 1, Page: 1}, {Obj: 1, Page: 2}}
	for i := 0; i < 3; i++ {
		if err := m.Acquire(int64(i+1), p[i], Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	got1 := make(chan error, 1)
	got2 := make(chan error, 1)
	go func() { got1 <- m.Acquire(1, p[1], Exclusive) }()
	waitFor(t, func() bool { return m.Waiting() == 1 }, "txn 1 to block")
	go func() { got2 <- m.Acquire(2, p[2], Exclusive) }()
	waitFor(t, func() bool { return m.Waiting() == 2 }, "txn 2 to block")

	// Txn 3 closes the 3-cycle and, as the youngest, is refused.
	if err := m.Acquire(3, p[0], Exclusive); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	m.ReleaseAll(3)
	if err := <-got2; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-got1; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

// TestConcurrentHammer runs many goroutines over a small page set with
// retry-on-deadlock; everything must drain with no hangs and a clean
// final table. Run under -race.
func TestConcurrentHammer(t *testing.T) {
	m := New()
	const workers = 8
	const txnsEach = 60
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsEach; i++ {
				for {
					txn := atomic.AddInt64(&next, 1)
					ok := true
					for j := 0; j < 4; j++ {
						pg := PageID{Obj: 9, Page: int64((w*7 + i*3 + j*5) % 6)}
						mode := Shared
						if (i+j)%2 == 0 {
							mode = Exclusive
						}
						if err := m.Acquire(txn, pg, mode); err != nil {
							if !errors.Is(err, ErrDeadlock) {
								t.Errorf("unexpected error: %v", err)
							}
							ok = false
							break
						}
					}
					m.ReleaseAll(txn)
					if ok {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Waiting() != 0 {
		t.Fatalf("waiters leaked: %d", m.Waiting())
	}
	if len(m.locks) != 0 {
		t.Fatalf("lock states leaked: %d", len(m.locks))
	}
}
