// Package lockmgr implements page-granular two-phase locking for the
// concurrent transaction path.
//
// The seed prototype serialized every mutating transaction behind one
// mutex, so the only concurrency the storage system ever saw came from
// read streams. This package supplies the concurrency-control layer that
// lets mutating transactions run simultaneously: each transaction
// acquires shared (read) or exclusive (write) locks on the pages it
// touches through the buffer pool, holds them to commit or abort (strict
// two-phase locking), and releases them all at once.
//
// Deadlocks are resolved by cycle detection on the waits-for graph: a
// blocked request records edges to every transaction it waits behind
// (conflicting holders plus earlier waiters in the same queue), and
// whenever the graph changes the manager searches for cycles and wakes
// one member of each — the youngest, i.e. highest transaction ID — with
// ErrDeadlock. The victim is expected to abort (releasing its locks,
// which unblocks the rest of the cycle) and retry.
//
// Lock waits block the calling goroutine in real time and, through the
// clock-aware entry points (AcquireClk/ReleaseAllAt), consume simulated
// time too: a granted waiter's session clock advances to the virtual
// time of the release that unblocked it, so blocking behind a long
// transaction costs the blocked transaction virtual latency exactly as
// it would on a real engine. The legacy entry points (Acquire/AcquireAt
// with ReleaseAll) keep the old behavior — waits free of virtual time —
// for callers without a session clock.
//
// Read-only snapshot transactions never appear here at all: they carry
// non-positive transaction IDs, which the lock table rejects by panic,
// turning any accidental lock acquisition on the snapshot path into an
// immediate invariant failure instead of silent contention.
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hstoragedb/internal/obs"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// ErrDeadlock is returned by Acquire when granting the request would
// deadlock (the request closes, or is chosen as victim of, a cycle in
// the waits-for graph). The transaction should abort and retry.
var ErrDeadlock = errors.New("lockmgr: deadlock detected")

// Mode is a lock mode.
type Mode int

const (
	// Shared is the read lock: any number of transactions may hold it
	// simultaneously.
	Shared Mode = iota
	// Exclusive is the write lock: it conflicts with every other holder.
	Exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// PageID identifies one lockable page.
type PageID struct {
	// Obj is the owning storage object.
	Obj pagestore.ObjectID
	// Page is the page number within the object.
	Page int64
}

// String implements fmt.Stringer.
func (p PageID) String() string { return fmt.Sprintf("%d/%d", p.Obj, p.Page) }

// waiter is one blocked Acquire call.
type waiter struct {
	txn     int64
	mode    Mode
	upgrade bool // holds Shared already, wants Exclusive
	done    chan error

	// at is the requester's virtual time when it blocked; grantAt is the
	// virtual time of the release that granted it (never below at).
	// grantAt is written before the done send, which orders it before
	// the waking goroutine's read.
	at      time.Duration
	grantAt time.Duration
}

// lockState is the holder set and wait queue of one page.
type lockState struct {
	holders map[int64]Mode
	queue   []*waiter
}

// Stats are cumulative lock manager counters.
type Stats struct {
	// Acquired counts granted lock requests (re-entrant grants included).
	Acquired int64
	// Waits counts requests that blocked before being granted.
	Waits int64
	// Deadlocks counts requests refused with ErrDeadlock.
	Deadlocks int64
	// Upgrades counts Shared-to-Exclusive upgrades granted.
	Upgrades int64
}

// Manager is the lock table. All methods are safe for concurrent use;
// Acquire blocks the calling goroutine until the lock is granted or the
// request is refused with ErrDeadlock.
type Manager struct {
	mu    sync.Mutex
	locks map[PageID]*lockState
	held  map[int64]map[PageID]Mode    // txn -> held locks
	waits map[int64]map[int64]struct{} // txn -> txns it waits behind
	blkd  map[int64]*blocked           // txn -> its blocked request
	stats Stats

	// Registry instruments and tracer, nil (inert) until Use attaches a
	// set. The `lockmgr`/`wait` trace event is an instant stamped at the
	// virtual time the request blocked (the wait's virtual cost, if any,
	// shows up on the waiter's session clock via AcquireClk).
	tracer     *obs.Tracer
	mAcquired  *obs.Counter
	mWaits     *obs.Counter
	mDeadlocks *obs.Counter
	mUpgrades  *obs.Counter
}

// blocked pairs a waiter with the lock it queues on, so a victim can be
// removed from the right queue.
type blocked struct {
	w  *waiter
	id PageID
}

// New creates an empty lock table.
func New() *Manager {
	return &Manager{
		locks: make(map[PageID]*lockState),
		held:  make(map[int64]map[PageID]Mode),
		waits: make(map[int64]map[int64]struct{}),
		blkd:  make(map[int64]*blocked),
	}
}

// Use attaches an observability set: the manager registers its counters
// (`lockmgr.acquired`, `lockmgr.wait`, `lockmgr.deadlocks`,
// `lockmgr.upgrades`) and records a `lockmgr`/`wait` instant for every
// request that blocks (AcquireAt callers only — plain Acquire has no
// virtual timestamp to stamp it with). A nil set detaches.
func (m *Manager) Use(set *obs.Set) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tracer = set.Trace()
	reg := set.Registry()
	if reg == nil {
		m.mAcquired, m.mWaits, m.mDeadlocks, m.mUpgrades = nil, nil, nil, nil
		return
	}
	m.mAcquired = reg.Counter("lockmgr.acquired")
	m.mWaits = reg.Counter("lockmgr.wait")
	m.mDeadlocks = reg.Counter("lockmgr.deadlocks")
	m.mUpgrades = reg.Counter("lockmgr.upgrades")
}

// Acquire takes a lock on id in the given mode on behalf of txn,
// blocking until granted. Re-acquiring a held lock (same or weaker mode)
// returns immediately; holding Shared and requesting Exclusive upgrades.
// If the request would deadlock, it returns ErrDeadlock without
// acquiring anything; the transaction keeps its other locks and is
// expected to abort.
func (m *Manager) Acquire(txn int64, id PageID, mode Mode) error {
	return m.AcquireAt(txn, id, mode, -1)
}

// AcquireAt is Acquire with the caller's current virtual time attached,
// so a blocked request can be traced as a `lockmgr`/`wait` instant on
// the simulated timeline. Waits through this entry point consume no
// virtual time; use AcquireClk to charge them to a session clock. Pass
// a negative at to skip the trace event.
func (m *Manager) AcquireAt(txn int64, id PageID, mode Mode, at time.Duration) error {
	w, err := m.acquire(txn, id, mode, at)
	if err != nil || w == nil {
		return err
	}
	return <-w.done
}

// AcquireClk is Acquire charging lock-wait time to the session clock: if
// the request blocks, clk advances to the virtual time of the release
// that granted it, so contention costs the blocked transaction simulated
// latency. Releases must then go through ReleaseAllAt to carry the
// releaser's time.
func (m *Manager) AcquireClk(txn int64, id PageID, mode Mode, clk *simclock.Clock) error {
	return m.AcquireClkPark(txn, id, mode, clk, nil)
}

// AcquireClkPark is AcquireClk with a park callback bracketing the
// block: when the request must wait, park(true) runs right before the
// caller parks on the grant and park(false) once it wakes, granted or
// refused. A closed-population device scheduler (iosched.Group) uses it
// to withdraw a lock-blocked stream — which cannot submit I/O — from
// the population for the wait's duration, so dispatch never stalls on
// it. A nil park waits plainly.
func (m *Manager) AcquireClkPark(txn int64, id PageID, mode Mode, clk *simclock.Clock, park func(parked bool)) error {
	w, err := m.acquire(txn, id, mode, clk.Now())
	if err != nil || w == nil {
		return err
	}
	if park != nil {
		park(true)
	}
	err = <-w.done
	if park != nil {
		park(false)
	}
	if err != nil {
		return err
	}
	clk.AdvanceTo(w.grantAt)
	return nil
}

// acquire is the common lock-request core. It returns the waiter the
// request blocked on — armed in the waits-for graph, with m.mu
// released; the caller must then receive on its done channel (grantAt
// is stamped before the send) — or nil for an immediate grant, or the
// refusal error.
func (m *Manager) acquire(txn int64, id PageID, mode Mode, at time.Duration) (*waiter, error) {
	if txn <= 0 {
		// Mutating transactions carry WAL-allocated positive IDs;
		// non-positive IDs are reserved for read-only snapshot
		// transactions, which must resolve reads against the version
		// store without ever touching the lock table.
		panic(fmt.Sprintf("lockmgr: acquire by reserved read-only txn id %d (snapshot reads must bypass the lock manager)", txn))
	}
	m.mu.Lock()
	ls := m.locks[id]
	if ls == nil {
		ls = &lockState{holders: make(map[int64]Mode)}
		m.locks[id] = ls
	}

	if have, ok := ls.holders[txn]; ok {
		if have >= mode {
			m.stats.Acquired++
			m.mAcquired.Inc()
			m.mu.Unlock()
			return nil, nil
		}
		// Upgrade: grant immediately when txn is the sole holder.
		if len(ls.holders) == 1 {
			ls.holders[txn] = Exclusive
			m.held[txn][id] = Exclusive
			m.stats.Acquired++
			m.stats.Upgrades++
			m.mAcquired.Inc()
			m.mUpgrades.Inc()
			m.mu.Unlock()
			return nil, nil
		}
		// Queue the upgrade at the front: it already holds Shared, so
		// nothing behind it can be granted first anyway.
		w := &waiter{txn: txn, mode: Exclusive, upgrade: true, done: make(chan error, 1), at: at}
		ls.queue = append([]*waiter{w}, ls.queue...)
		m.armWaitLocked(w, id, ls, at)
		return w, nil
	}

	if m.grantableLocked(ls, txn, mode) {
		ls.holders[txn] = mode
		m.noteHeld(txn, id, mode)
		m.stats.Acquired++
		m.mAcquired.Inc()
		m.mu.Unlock()
		return nil, nil
	}

	w := &waiter{txn: txn, mode: mode, done: make(chan error, 1), at: at}
	ls.queue = append(ls.queue, w)
	m.armWaitLocked(w, id, ls, at)
	return w, nil
}

// armWaitLocked registers the waiter in the waits-for graph and
// resolves any cycle it creates. Called with m.mu held; returns with it
// released. The caller then parks by receiving on w.done.
func (m *Manager) armWaitLocked(w *waiter, id PageID, ls *lockState, at time.Duration) {
	m.blkd[w.txn] = &blocked{w: w, id: id}
	m.stats.Waits++
	m.mWaits.Inc()
	if m.tracer != nil && at >= 0 {
		m.tracer.Instant("lockmgr", "wait", w.txn, at, map[string]any{
			"page": id.String(), "mode": w.mode.String()})
	}
	m.rebuildEdgesLocked(id, ls)
	m.resolveDeadlocksLocked(id, at)
	m.mu.Unlock()
}

// holdersAllow reports whether the current holder set is compatible
// with a new grant in mode: Exclusive needs no holders at all, Shared
// tolerates anything but an Exclusive holder.
func holdersAllow(ls *lockState, mode Mode) bool {
	if mode == Exclusive {
		return len(ls.holders) == 0
	}
	for _, hm := range ls.holders {
		if hm == Exclusive {
			return false
		}
	}
	return true
}

// grantableLocked reports whether txn may take the lock in mode right
// now: compatible with every holder, and not jumping a non-empty queue
// (FIFO fairness keeps writers from starving). Caller holds m.mu.
func (m *Manager) grantableLocked(ls *lockState, txn int64, mode Mode) bool {
	return len(ls.queue) == 0 && holdersAllow(ls, mode)
}

// noteHeld records a granted lock in the per-txn index. Caller holds m.mu.
func (m *Manager) noteHeld(txn int64, id PageID, mode Mode) {
	h := m.held[txn]
	if h == nil {
		h = make(map[PageID]Mode)
		m.held[txn] = h
	}
	h[id] = mode
}

// rebuildEdgesLocked recomputes the waits-for edges of every waiter
// queued on id: a waiter waits behind each conflicting holder and behind
// every waiter ahead of it in the queue. Caller holds m.mu.
func (m *Manager) rebuildEdgesLocked(id PageID, ls *lockState) {
	for i, w := range ls.queue {
		edges := make(map[int64]struct{})
		for h, hm := range ls.holders {
			if h == w.txn {
				continue // its own Shared hold (upgrade) is not a wait
			}
			if w.mode == Exclusive || hm == Exclusive {
				edges[h] = struct{}{}
			}
		}
		for _, ahead := range ls.queue[:i] {
			if ahead.txn != w.txn {
				edges[ahead.txn] = struct{}{}
			}
		}
		m.waits[w.txn] = edges
	}
}

// resolveDeadlocksLocked finds cycles reachable from the waiters of one
// lock and wakes the youngest member of each with ErrDeadlock. at is the
// virtual time of the event that changed the graph (negative when
// unknown), carried to any grants the victim's removal enables. Caller
// holds m.mu.
func (m *Manager) resolveDeadlocksLocked(id PageID, at time.Duration) {
	for {
		ls := m.locks[id]
		if ls == nil {
			return
		}
		var victim int64 = -1
		for _, w := range ls.queue {
			cycle := m.findCycleLocked(w.txn)
			if cycle == nil {
				continue
			}
			// Abort the youngest blocked transaction in the cycle.
			for _, t := range cycle {
				if _, isBlocked := m.blkd[t]; isBlocked && t > victim {
					victim = t
				}
			}
			break
		}
		if victim < 0 {
			return
		}
		m.refuseLocked(victim, at)
		// Removing the victim may expose another cycle (or none); loop.
	}
}

// findCycleLocked returns the transactions of a waits-for cycle through
// start, or nil. Caller holds m.mu.
func (m *Manager) findCycleLocked(start int64) []int64 {
	var path []int64
	onPath := make(map[int64]bool)
	visited := make(map[int64]bool)
	var dfs func(t int64) []int64
	dfs = func(t int64) []int64 {
		if onPath[t] {
			// Cycle: the suffix of path from t.
			for i, p := range path {
				if p == t {
					return append([]int64(nil), path[i:]...)
				}
			}
			return append([]int64(nil), t)
		}
		if visited[t] {
			return nil
		}
		visited[t] = true
		onPath[t] = true
		path = append(path, t)
		for next := range m.waits[t] {
			if c := dfs(next); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		onPath[t] = false
		return nil
	}
	return dfs(start)
}

// refuseLocked wakes the blocked transaction txn with ErrDeadlock and
// removes it from its queue and from the graph, carrying at to any
// grants its removal enables. Caller holds m.mu.
func (m *Manager) refuseLocked(txn int64, at time.Duration) {
	b := m.blkd[txn]
	if b == nil {
		return
	}
	delete(m.blkd, txn)
	delete(m.waits, txn)
	if ls := m.locks[b.id]; ls != nil {
		for i, w := range ls.queue {
			if w == b.w {
				ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
				break
			}
		}
		m.rebuildEdgesLocked(b.id, ls)
		m.grantQueueLocked(b.id, ls, at)
	}
	m.stats.Deadlocks++
	m.mDeadlocks.Inc()
	b.w.done <- ErrDeadlock
}

// grantQueueLocked grants the longest compatible prefix of the wait
// queue. at is the virtual time of the release enabling the grants
// (negative when unknown): each granted waiter is stamped with it, never
// below its own request time, before it is woken. Caller holds m.mu.
func (m *Manager) grantQueueLocked(id PageID, ls *lockState, at time.Duration) {
	changed := false
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		if w.upgrade {
			if len(ls.holders) != 1 {
				break // other Shared holders still present
			}
			ls.holders[w.txn] = Exclusive
			m.held[w.txn][id] = Exclusive
			m.stats.Upgrades++
			m.mUpgrades.Inc()
		} else {
			if !holdersAllow(ls, w.mode) {
				break
			}
			ls.holders[w.txn] = w.mode
			m.noteHeld(w.txn, id, w.mode)
		}
		ls.queue = ls.queue[1:]
		delete(m.blkd, w.txn)
		delete(m.waits, w.txn)
		m.stats.Acquired++
		m.mAcquired.Inc()
		w.grantAt = w.at
		if at > w.grantAt {
			w.grantAt = at
		}
		w.done <- nil
		changed = true
	}
	if len(ls.holders) == 0 && len(ls.queue) == 0 {
		delete(m.locks, id)
		return
	}
	if changed {
		m.rebuildEdgesLocked(id, ls)
	}
}

// ReleaseAll drops every lock held by txn (end of transaction) and
// grants whatever its departure unblocks. Grants enabled this way carry
// no virtual release time; use ReleaseAllAt to charge waiters.
func (m *Manager) ReleaseAll(txn int64) {
	m.ReleaseAllAt(txn, -1)
}

// ReleaseAllAt is ReleaseAll with the releaser's virtual time attached:
// every waiter granted by this release observes at as its grant time, so
// an AcquireClk blocked behind txn pays the wait in simulated latency.
func (m *Manager) ReleaseAllAt(txn int64, at time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	held := m.held[txn]
	delete(m.held, txn)
	delete(m.waits, txn)
	for id := range held {
		ls := m.locks[id]
		if ls == nil {
			continue
		}
		delete(ls.holders, txn)
		m.rebuildEdgesLocked(id, ls)
		m.grantQueueLocked(id, ls, at)
		m.resolveDeadlocksLocked(id, at)
	}
}

// Held reports how many locks txn currently holds.
func (m *Manager) Held(txn int64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[txn])
}

// Waiting reports how many lock requests are currently blocked.
func (m *Manager) Waiting() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blkd)
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
