// Package lockmgr implements page-granular two-phase locking for the
// concurrent transaction path.
//
// The seed prototype serialized every mutating transaction behind one
// mutex, so the only concurrency the storage system ever saw came from
// read streams. This package supplies the concurrency-control layer that
// lets mutating transactions run simultaneously: each transaction
// acquires shared (read) or exclusive (write) locks on the pages it
// touches through the buffer pool, holds them to commit or abort (strict
// two-phase locking), and releases them all at once.
//
// Deadlocks are resolved by cycle detection on the waits-for graph: a
// blocked request records edges to every transaction it waits behind
// (conflicting holders plus earlier waiters in the same queue), and
// whenever the graph changes the manager searches for cycles and wakes
// one member of each — the youngest, i.e. highest transaction ID — with
// ErrDeadlock. The victim is expected to abort (releasing its locks,
// which unblocks the rest of the cycle) and retry.
//
// Lock waits block the calling goroutine in real time but consume no
// simulated time: the virtual cost of contention is paid at the devices,
// where the retried work queues again. This mirrors the paper's Rule 5
// view of concurrency — what matters to the storage system is the degree
// of concurrent traffic, which only genuinely concurrent transactions
// can generate.
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hstoragedb/internal/obs"
	"hstoragedb/internal/pagestore"
)

// ErrDeadlock is returned by Acquire when granting the request would
// deadlock (the request closes, or is chosen as victim of, a cycle in
// the waits-for graph). The transaction should abort and retry.
var ErrDeadlock = errors.New("lockmgr: deadlock detected")

// Mode is a lock mode.
type Mode int

const (
	// Shared is the read lock: any number of transactions may hold it
	// simultaneously.
	Shared Mode = iota
	// Exclusive is the write lock: it conflicts with every other holder.
	Exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// PageID identifies one lockable page.
type PageID struct {
	// Obj is the owning storage object.
	Obj pagestore.ObjectID
	// Page is the page number within the object.
	Page int64
}

// String implements fmt.Stringer.
func (p PageID) String() string { return fmt.Sprintf("%d/%d", p.Obj, p.Page) }

// waiter is one blocked Acquire call.
type waiter struct {
	txn     int64
	mode    Mode
	upgrade bool // holds Shared already, wants Exclusive
	done    chan error
}

// lockState is the holder set and wait queue of one page.
type lockState struct {
	holders map[int64]Mode
	queue   []*waiter
}

// Stats are cumulative lock manager counters.
type Stats struct {
	// Acquired counts granted lock requests (re-entrant grants included).
	Acquired int64
	// Waits counts requests that blocked before being granted.
	Waits int64
	// Deadlocks counts requests refused with ErrDeadlock.
	Deadlocks int64
	// Upgrades counts Shared-to-Exclusive upgrades granted.
	Upgrades int64
}

// Manager is the lock table. All methods are safe for concurrent use;
// Acquire blocks the calling goroutine until the lock is granted or the
// request is refused with ErrDeadlock.
type Manager struct {
	mu    sync.Mutex
	locks map[PageID]*lockState
	held  map[int64]map[PageID]Mode    // txn -> held locks
	waits map[int64]map[int64]struct{} // txn -> txns it waits behind
	blkd  map[int64]*blocked           // txn -> its blocked request
	stats Stats

	// Registry instruments and tracer, nil (inert) until Use attaches a
	// set. Lock waits block real goroutines but consume no simulated
	// time, so the `lockmgr`/`wait` trace event is an instant stamped at
	// the virtual time AcquireAt is handed.
	tracer     *obs.Tracer
	mAcquired  *obs.Counter
	mWaits     *obs.Counter
	mDeadlocks *obs.Counter
	mUpgrades  *obs.Counter
}

// blocked pairs a waiter with the lock it queues on, so a victim can be
// removed from the right queue.
type blocked struct {
	w  *waiter
	id PageID
}

// New creates an empty lock table.
func New() *Manager {
	return &Manager{
		locks: make(map[PageID]*lockState),
		held:  make(map[int64]map[PageID]Mode),
		waits: make(map[int64]map[int64]struct{}),
		blkd:  make(map[int64]*blocked),
	}
}

// Use attaches an observability set: the manager registers its counters
// (`lockmgr.acquired`, `lockmgr.wait`, `lockmgr.deadlocks`,
// `lockmgr.upgrades`) and records a `lockmgr`/`wait` instant for every
// request that blocks (AcquireAt callers only — plain Acquire has no
// virtual timestamp to stamp it with). A nil set detaches.
func (m *Manager) Use(set *obs.Set) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tracer = set.Trace()
	reg := set.Registry()
	if reg == nil {
		m.mAcquired, m.mWaits, m.mDeadlocks, m.mUpgrades = nil, nil, nil, nil
		return
	}
	m.mAcquired = reg.Counter("lockmgr.acquired")
	m.mWaits = reg.Counter("lockmgr.wait")
	m.mDeadlocks = reg.Counter("lockmgr.deadlocks")
	m.mUpgrades = reg.Counter("lockmgr.upgrades")
}

// Acquire takes a lock on id in the given mode on behalf of txn,
// blocking until granted. Re-acquiring a held lock (same or weaker mode)
// returns immediately; holding Shared and requesting Exclusive upgrades.
// If the request would deadlock, it returns ErrDeadlock without
// acquiring anything; the transaction keeps its other locks and is
// expected to abort.
func (m *Manager) Acquire(txn int64, id PageID, mode Mode) error {
	return m.AcquireAt(txn, id, mode, -1)
}

// AcquireAt is Acquire with the caller's current virtual time attached,
// so a blocked request can be traced as a `lockmgr`/`wait` instant on
// the simulated timeline (lock waits consume no virtual time — the
// contention's cost is paid at the devices when the work retries). Pass
// a negative at to skip the trace event.
func (m *Manager) AcquireAt(txn int64, id PageID, mode Mode, at time.Duration) error {
	m.mu.Lock()
	ls := m.locks[id]
	if ls == nil {
		ls = &lockState{holders: make(map[int64]Mode)}
		m.locks[id] = ls
	}

	if have, ok := ls.holders[txn]; ok {
		if have >= mode {
			m.stats.Acquired++
			m.mAcquired.Inc()
			m.mu.Unlock()
			return nil
		}
		// Upgrade: grant immediately when txn is the sole holder.
		if len(ls.holders) == 1 {
			ls.holders[txn] = Exclusive
			m.held[txn][id] = Exclusive
			m.stats.Acquired++
			m.stats.Upgrades++
			m.mAcquired.Inc()
			m.mUpgrades.Inc()
			m.mu.Unlock()
			return nil
		}
		// Queue the upgrade at the front: it already holds Shared, so
		// nothing behind it can be granted first anyway.
		w := &waiter{txn: txn, mode: Exclusive, upgrade: true, done: make(chan error, 1)}
		ls.queue = append([]*waiter{w}, ls.queue...)
		return m.blockOn(w, id, ls, at)
	}

	if m.grantableLocked(ls, txn, mode) {
		ls.holders[txn] = mode
		m.noteHeld(txn, id, mode)
		m.stats.Acquired++
		m.mAcquired.Inc()
		m.mu.Unlock()
		return nil
	}

	w := &waiter{txn: txn, mode: mode, done: make(chan error, 1)}
	ls.queue = append(ls.queue, w)
	return m.blockOn(w, id, ls, at)
}

// blockOn registers the waiter in the waits-for graph, resolves any
// cycle it creates, and parks the caller. Called with m.mu held; returns
// with it released.
func (m *Manager) blockOn(w *waiter, id PageID, ls *lockState, at time.Duration) error {
	m.blkd[w.txn] = &blocked{w: w, id: id}
	m.stats.Waits++
	m.mWaits.Inc()
	if m.tracer != nil && at >= 0 {
		m.tracer.Instant("lockmgr", "wait", w.txn, at, map[string]any{
			"page": id.String(), "mode": w.mode.String()})
	}
	m.rebuildEdgesLocked(id, ls)
	m.resolveDeadlocksLocked(id)
	m.mu.Unlock()
	return <-w.done
}

// holdersAllow reports whether the current holder set is compatible
// with a new grant in mode: Exclusive needs no holders at all, Shared
// tolerates anything but an Exclusive holder.
func holdersAllow(ls *lockState, mode Mode) bool {
	if mode == Exclusive {
		return len(ls.holders) == 0
	}
	for _, hm := range ls.holders {
		if hm == Exclusive {
			return false
		}
	}
	return true
}

// grantableLocked reports whether txn may take the lock in mode right
// now: compatible with every holder, and not jumping a non-empty queue
// (FIFO fairness keeps writers from starving). Caller holds m.mu.
func (m *Manager) grantableLocked(ls *lockState, txn int64, mode Mode) bool {
	return len(ls.queue) == 0 && holdersAllow(ls, mode)
}

// noteHeld records a granted lock in the per-txn index. Caller holds m.mu.
func (m *Manager) noteHeld(txn int64, id PageID, mode Mode) {
	h := m.held[txn]
	if h == nil {
		h = make(map[PageID]Mode)
		m.held[txn] = h
	}
	h[id] = mode
}

// rebuildEdgesLocked recomputes the waits-for edges of every waiter
// queued on id: a waiter waits behind each conflicting holder and behind
// every waiter ahead of it in the queue. Caller holds m.mu.
func (m *Manager) rebuildEdgesLocked(id PageID, ls *lockState) {
	for i, w := range ls.queue {
		edges := make(map[int64]struct{})
		for h, hm := range ls.holders {
			if h == w.txn {
				continue // its own Shared hold (upgrade) is not a wait
			}
			if w.mode == Exclusive || hm == Exclusive {
				edges[h] = struct{}{}
			}
		}
		for _, ahead := range ls.queue[:i] {
			if ahead.txn != w.txn {
				edges[ahead.txn] = struct{}{}
			}
		}
		m.waits[w.txn] = edges
	}
}

// resolveDeadlocksLocked finds cycles reachable from the waiters of one
// lock and wakes the youngest member of each with ErrDeadlock. Caller
// holds m.mu.
func (m *Manager) resolveDeadlocksLocked(id PageID) {
	for {
		ls := m.locks[id]
		if ls == nil {
			return
		}
		var victim int64 = -1
		for _, w := range ls.queue {
			cycle := m.findCycleLocked(w.txn)
			if cycle == nil {
				continue
			}
			// Abort the youngest blocked transaction in the cycle.
			for _, t := range cycle {
				if _, isBlocked := m.blkd[t]; isBlocked && t > victim {
					victim = t
				}
			}
			break
		}
		if victim < 0 {
			return
		}
		m.refuseLocked(victim)
		// Removing the victim may expose another cycle (or none); loop.
	}
}

// findCycleLocked returns the transactions of a waits-for cycle through
// start, or nil. Caller holds m.mu.
func (m *Manager) findCycleLocked(start int64) []int64 {
	var path []int64
	onPath := make(map[int64]bool)
	visited := make(map[int64]bool)
	var dfs func(t int64) []int64
	dfs = func(t int64) []int64 {
		if onPath[t] {
			// Cycle: the suffix of path from t.
			for i, p := range path {
				if p == t {
					return append([]int64(nil), path[i:]...)
				}
			}
			return append([]int64(nil), t)
		}
		if visited[t] {
			return nil
		}
		visited[t] = true
		onPath[t] = true
		path = append(path, t)
		for next := range m.waits[t] {
			if c := dfs(next); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		onPath[t] = false
		return nil
	}
	return dfs(start)
}

// refuseLocked wakes the blocked transaction txn with ErrDeadlock and
// removes it from its queue and from the graph. Caller holds m.mu.
func (m *Manager) refuseLocked(txn int64) {
	b := m.blkd[txn]
	if b == nil {
		return
	}
	delete(m.blkd, txn)
	delete(m.waits, txn)
	if ls := m.locks[b.id]; ls != nil {
		for i, w := range ls.queue {
			if w == b.w {
				ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
				break
			}
		}
		m.rebuildEdgesLocked(b.id, ls)
		m.grantQueueLocked(b.id, ls)
	}
	m.stats.Deadlocks++
	m.mDeadlocks.Inc()
	b.w.done <- ErrDeadlock
}

// grantQueueLocked grants the longest compatible prefix of the wait
// queue. Caller holds m.mu.
func (m *Manager) grantQueueLocked(id PageID, ls *lockState) {
	changed := false
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		if w.upgrade {
			if len(ls.holders) != 1 {
				break // other Shared holders still present
			}
			ls.holders[w.txn] = Exclusive
			m.held[w.txn][id] = Exclusive
			m.stats.Upgrades++
			m.mUpgrades.Inc()
		} else {
			if !holdersAllow(ls, w.mode) {
				break
			}
			ls.holders[w.txn] = w.mode
			m.noteHeld(w.txn, id, w.mode)
		}
		ls.queue = ls.queue[1:]
		delete(m.blkd, w.txn)
		delete(m.waits, w.txn)
		m.stats.Acquired++
		m.mAcquired.Inc()
		w.done <- nil
		changed = true
	}
	if len(ls.holders) == 0 && len(ls.queue) == 0 {
		delete(m.locks, id)
		return
	}
	if changed {
		m.rebuildEdgesLocked(id, ls)
	}
}

// ReleaseAll drops every lock held by txn (end of transaction) and
// grants whatever its departure unblocks.
func (m *Manager) ReleaseAll(txn int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	held := m.held[txn]
	delete(m.held, txn)
	delete(m.waits, txn)
	for id := range held {
		ls := m.locks[id]
		if ls == nil {
			continue
		}
		delete(ls.holders, txn)
		m.rebuildEdgesLocked(id, ls)
		m.grantQueueLocked(id, ls)
		m.resolveDeadlocksLocked(id)
	}
}

// Held reports how many locks txn currently holds.
func (m *Manager) Held(txn int64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[txn])
}

// Waiting reports how many lock requests are currently blocked.
func (m *Manager) Waiting() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blkd)
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
