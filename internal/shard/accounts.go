package shard

import (
	"fmt"
	"strings"
	"time"

	"hstoragedb/internal/engine/btree"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/heap"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/pagestore"
)

// accountRowCPU is the simulated CPU cost per row operation of the
// accounts workload (decode, lock, index probe, log insert) — same
// calibration as the TPC-H OLTP driver's rowCPU.
const accountRowCPU = 50 * time.Microsecond

// Accounts is the cluster's built-in cross-shard workload: a bank-style
// (id, balance) table hash-partitioned across the shards, probed through
// a per-shard id index. Transfers between accounts on different shards
// are the canonical two-phase-commit transaction, and the global balance
// invariant — transfers conserve the total — is what the crash tests
// check atomicity against.
type Accounts struct {
	c *Cluster
	// N is the total account count; keys are [0, N).
	N int64

	schema  catalog.Schema
	heapIDs []pagestore.ObjectID
	ixIDs   []pagestore.ObjectID
	files   []*heap.File
}

// LoadAccounts creates and bulk-loads the accounts table on every shard:
// each shard receives exactly the keys the hash partition routes to it,
// then builds its id index. Every account starts at balance. Pad widens
// each row by that many filler bytes — experiments use it to spread the
// table over enough pages that uniform random probes are I/O-bound
// rather than served out of the buffer pool.
func (c *Cluster) LoadAccounts(n, balance int64, pad int) (*Accounts, error) {
	a := &Accounts{
		c: c,
		N: n,
		schema: catalog.NewSchema(
			catalog.Column{Name: "id", Type: catalog.Int64},
			catalog.Column{Name: "balance", Type: catalog.Int64},
			catalog.Column{Name: "pad", Type: catalog.String},
		),
	}
	filler := strings.Repeat("x", pad)
	for i, s := range c.shards {
		if _, err := s.DB.CreateTable("accounts", a.schema); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		l, err := s.Inst.NewLoader("accounts")
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		for key := int64(0); key < n; key++ {
			if c.ShardFor(key) != i {
				continue
			}
			if _, err := l.Add(catalog.Tuple{catalog.IntDatum(key), catalog.IntDatum(balance), catalog.StringDatum(filler)}); err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
		}
		if err := l.Close(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if _, err := s.Inst.BuildIndex("accounts_id", "accounts", "id"); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		a.heapIDs = append(a.heapIDs, s.DB.Cat.MustTable("accounts").ID)
		a.ixIDs = append(a.ixIDs, s.DB.Cat.MustIndex("accounts_id").ID)
		a.files = append(a.files, heap.NewFile(a.heapIDs[i], a.schema, policy.Table))
	}
	return a, nil
}

// Attach rebinds the workload to a recovered cluster over the same
// databases (object IDs and schemas survive; the instances are new).
func (a *Accounts) Attach(c *Cluster) *Accounts {
	out := *a
	out.c = c
	return &out
}

// lookup probes the shard-local id index for the account's RID.
func (a *Accounts) lookup(p *Part, key int64) (catalog.RID, error) {
	ix := btree.Open(a.ixIDs[p.Shard.ID], p.Sess.Pool())
	rids, err := ix.Lookup(&p.Sess.Clk, key, 0)
	if err != nil {
		return catalog.RID{}, err
	}
	if len(rids) == 0 {
		return catalog.RID{}, fmt.Errorf("shard %d: account %d not found", p.Shard.ID, key)
	}
	return rids[0], nil
}

// Balance reads one account inside the routed transaction, enrolling its
// shard as a participant.
func (a *Accounts) Balance(t *Txn, key int64) (int64, error) {
	p, err := t.ForKey(key)
	if err != nil {
		return 0, err
	}
	rid, err := a.lookup(p, key)
	if err != nil {
		return 0, err
	}
	tup, err := a.files[p.Shard.ID].Fetch(&p.Sess.Clk, p.Sess.Pool(), rid, 0)
	if err != nil {
		return 0, err
	}
	if tup == nil {
		return 0, fmt.Errorf("shard %d: account %d vanished", p.Shard.ID, key)
	}
	p.Sess.Clk.Advance(2 * accountRowCPU) // probe + fetch
	return tup[1].I, nil
}

// Add adjusts one account's balance by delta inside the routed
// transaction (read-modify-write under the shard's exclusive page lock).
func (a *Accounts) Add(t *Txn, key, delta int64) error {
	p, err := t.ForKey(key)
	if err != nil {
		return err
	}
	rid, err := a.lookup(p, key)
	if err != nil {
		return err
	}
	f := a.files[p.Shard.ID]
	tup, err := f.Fetch(&p.Sess.Clk, p.Sess.Pool(), rid, 0)
	if err != nil {
		return err
	}
	if tup == nil {
		return fmt.Errorf("shard %d: account %d vanished", p.Shard.ID, key)
	}
	tup = tup.Clone()
	tup[1].I += delta
	if err := f.Update(&p.Sess.Clk, p.Sess.Pool(), rid, tup, 0); err != nil {
		return err
	}
	p.Sess.Clk.Advance(3 * accountRowCPU) // probe + fetch + rewrite
	return nil
}

// Transfer moves amount from one account to another inside the routed
// transaction, touching the two accounts in ascending key order — the
// global ordering discipline that keeps cross-shard lock acquisition
// cycle-free (per-shard deadlock detectors cannot see a cycle that
// spans shards).
func (a *Accounts) Transfer(t *Txn, from, to, amount int64) error {
	lo, loDelta, hi, hiDelta := from, -amount, to, amount
	if hi < lo {
		lo, loDelta, hi, hiDelta = to, amount, from, -amount
	}
	if err := a.Add(t, lo, loDelta); err != nil {
		return err
	}
	return a.Add(t, hi, hiDelta)
}

// TotalBalance scans every shard's slice of the table and sums the
// balances — the conservation invariant transfers must preserve. It
// reads the durable state directly (no transaction), so callers run it
// on a quiesced or freshly recovered cluster.
func (a *Accounts) TotalBalance(rs *Session) (int64, error) {
	var total int64
	for i, s := range a.c.shards {
		sc := a.files[i].NewScanner(&rs.sess[i].Clk, s.Inst.Pool, s.DB.Store.Pages(a.heapIDs[i]))
		for {
			tup, _, ok, err := sc.Next()
			if err != nil {
				return 0, fmt.Errorf("shard %d: %w", i, err)
			}
			if !ok {
				break
			}
			if tup != nil {
				total += tup[1].I
			}
		}
	}
	return total, nil
}
