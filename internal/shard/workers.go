package shard

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"hstoragedb/internal/engine/txn"
)

// maxDeadlockRetries bounds how often one logical transfer is retried
// after losing a (shard-local) deadlock before the error surfaces.
const maxDeadlockRetries = 50

// WorkersResult summarizes one multi-worker transfer run.
type WorkersResult struct {
	// Txns counts completed transfers; CrossShard the ones that spanned
	// shards and therefore ran two-phase commit.
	Txns       int64
	CrossShard int64
	// Retries counts deadlock aborts that were retried.
	Retries int64
	// Elapsed is the latest worker clock past startAt: the virtual
	// makespan of the concurrent run.
	Elapsed time.Duration
}

// RunWorkers drives `workers` concurrent transfer streams: each worker
// gets its own routed session (all per-shard clocks started at startAt)
// and performs txnsPerWorker unit transfers between uniformly random
// accounts, a `xshard` fraction of them deliberately cross-shard. The
// workers' traffic dispatches opportunistically (no closed scheduler
// population — a worker blocked on a page lock must not stall the
// barrier). Deadlock losses retry transparently; the first other error
// stops the run.
func (a *Accounts) RunWorkers(workers, txnsPerWorker int, xshard float64, seed int64, startAt time.Duration) (WorkersResult, error) {
	if workers < 1 {
		workers = 1
	}
	var (
		res    WorkersResult
		mu     sync.Mutex
		wg     sync.WaitGroup
		runErr error
	)
	sessions := make([]*Session, workers)
	for i := range sessions {
		sessions[i] = a.c.NewSession()
		sessions[i].AdvanceTo(startAt)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(41000 + seed + int64(i)))
			var txns, cross, retries int64
			for k := 0; k < txnsPerWorker; k++ {
				wasCross, r, err := a.runTransfer(sessions[i], rng, xshard)
				retries += r
				if err != nil {
					mu.Lock()
					if runErr == nil {
						runErr = err
					}
					mu.Unlock()
					break
				}
				txns++
				if wasCross {
					cross++
				}
			}
			mu.Lock()
			res.Txns += txns
			res.CrossShard += cross
			res.Retries += retries
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if runErr != nil {
		return res, runErr
	}
	for _, s := range sessions {
		if t := s.Now() - startAt; t > res.Elapsed {
			res.Elapsed = t
		}
	}
	return res, nil
}

// runTransfer performs one unit transfer between distinct random
// accounts — same-shard by default, cross-shard with probability xshard
// (when the cluster has more than one shard) — retrying deadlock losses
// with the same pair.
func (a *Accounts) runTransfer(rs *Session, rng *rand.Rand, xshard float64) (cross bool, retries int64, err error) {
	from := rng.Int63n(a.N)
	cross = len(a.c.shards) > 1 && rng.Float64() < xshard
	var to int64
	for {
		to = rng.Int63n(a.N)
		if to == from {
			continue
		}
		if (a.c.ShardFor(to) == a.c.ShardFor(from)) != cross {
			break
		}
	}
	for try := 0; ; try++ {
		t, berr := rs.Begin()
		if berr != nil {
			return cross, retries, berr
		}
		err = a.Transfer(t, from, to, 1)
		if err == nil {
			err = t.Commit()
		} else {
			_ = t.Abort()
		}
		if err == nil || !errors.Is(err, txn.ErrDeadlock) || try >= maxDeadlockRetries {
			return cross, retries, err
		}
		retries++
		// Let the conflicting transactions drain before retrying.
		runtime.Gosched()
	}
}
