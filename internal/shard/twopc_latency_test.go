package shard

import (
	"sync"
	"testing"

	"hstoragedb/internal/simclock"
)

// lastKeysOnShards returns one account key per requested shard, scanning
// from the top of the key space so the picks are disjoint from
// keysOnShards' bottom-up picks.
func lastKeysOnShards(t *testing.T, c *Cluster, n int64, shards ...int) []int64 {
	t.Helper()
	out := make([]int64, len(shards))
	for i, want := range shards {
		found := false
		for k := n - 1; k >= 0; k-- {
			if c.ShardFor(k) == want {
				out[i] = k
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no key on shard %d among %d keys", want, n)
		}
	}
	return out
}

// TestCrossShardCommitLatencyNotLinear is the acceptance test for
// concurrent prepare issue: under concurrent single-shard load on every
// shard, a cross-shard commit's latency must not grow linearly with the
// participant count. Prepares issued one at a time would each join a
// later group-commit batch on a clock the background writers keep
// advancing, stacking roughly one batch round per participant; issued
// concurrently, all participants join their shard's current batch and
// the phase costs one parallel round, so going from 2 to 4 participants
// must cost far less than the 2x a linear chain would.
func TestCrossShardCommitLatencyNotLinear(t *testing.T) {
	cfg := testConfig(4)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 256
	a, err := c.LoadAccounts(n, 100, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Background: three single-shard writers per shard, keeping every
	// shard's group-commit pipeline busy and its clocks moving. Their
	// keys are disjoint from the probes' so no lock waits pollute the
	// measurement.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	used := make(map[int64]bool)
	for sh := 0; sh < cfg.Shards; sh++ {
		for w := 0; w < 3; w++ {
			key := lastKeysOnShards(t, c, n, sh)[0]
			for used[key] || c.ShardFor(key) != sh {
				key--
			}
			used[key] = true
			wg.Add(1)
			go func(key int64) {
				defer wg.Done()
				rs := c.NewSession()
				for {
					select {
					case <-stop:
						return
					default:
					}
					tx, err := rs.Begin()
					if err != nil {
						return
					}
					if err := a.Add(tx, key, 0); err != nil {
						_ = tx.Abort()
						continue
					}
					_ = tx.Commit()
				}
			}(key)
		}
	}

	// probe measures the mean virtual commit latency of cross-shard
	// transactions touching the given keys (one per shard).
	probe := func(keys []int64) simclock.Duration {
		rs := c.NewSession()
		const rounds = 25
		const warmup = 5
		var total simclock.Duration
		for r := -warmup; r < rounds; r++ {
			tx, err := rs.Begin()
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				if err := a.Add(tx, k, 1); err != nil {
					t.Fatalf("add(%d): %v", k, err)
				}
			}
			start := rs.Now()
			if err := tx.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}
			if r >= 0 {
				// Warmup rounds sync the fresh session's clocks with the
				// background writers' (a new session starts at virtual
				// zero and pays a one-time catch-up on its first batch).
				total += rs.Now() - start
			}
		}
		return total / rounds
	}

	lat2 := probe(keysOnShards(t, c, n, 0, 1))
	lat4 := probe(keysOnShards(t, c, n, 0, 1, 2, 3))
	close(stop)
	wg.Wait()

	if lat2 <= 0 || lat4 <= 0 {
		t.Fatalf("degenerate latencies: lat2=%v lat4=%v", lat2, lat4)
	}
	// Linear scaling would put lat4 near 2*lat2; one parallel prepare
	// round keeps the ratio well under that. The 1.75 threshold leaves
	// room for the extra decide-phase fan-in of two more participants.
	t.Logf("lat2=%v lat4=%v ratio=%.2f", lat2, lat4, float64(lat4)/float64(lat2))
	if float64(lat4) >= 1.75*float64(lat2) {
		t.Fatalf("commit latency scales with participants: 2 shards %v, 4 shards %v (ratio %.2f)",
			lat2, lat4, float64(lat4)/float64(lat2))
	}
}
