// Package shard scales the engine out horizontally: a cluster of N
// self-contained engine instances (shards), each owning its own buffer
// pool, lock manager, WAL, I/O scheduler and hybrid cache stack over its
// own simulated device pair, a router that binds sessions to shards by
// hash partitioning, and a two-phase-commit coordinator for transactions
// that span shards.
//
// The design follows the LSST multi-petabyte deployment sketch the paper
// cites as its target scale: partition data across nodes that each run
// the full QoS storage stack, keep classification and fault handling
// per-partition, and coordinate only at the transaction boundary. One
// shard is one node — nothing is shared between shards except the
// coordinator's decision log, which is co-located on shard 0 (the way a
// real deployment co-locates the coordinator with one participant).
//
// Two-phase commit reuses the engine's existing durability machinery
// rather than adding any:
//
//   - Phase 1 (prepare): each participant appends its page records and a
//     prepare record carrying the global transaction ID, forced through
//     the same pinned-log-class group-commit path ordinary commits ride.
//     Locks and pins stay held (txn.Txn.Prepare).
//   - Decision: the coordinator appends a decide record to its decision
//     log and forces it. The decision record is the commit point.
//   - Phase 2: each participant appends its local commit record
//     (txn.Txn.CommitPrepared) or aborts. Presumed abort: phase-2 abort
//     records are not forced, and a missing decision means abort.
//
// Recovery is per-shard: each shard's WAL recovers independently and
// holds prepared-but-undecided transactions in doubt; the cluster then
// resolves every in-doubt transaction against the recovered decision
// log — commit if a durable decide-commit record exists for its GTID,
// abort otherwise.
//
// Cross-shard transactions must touch shards in a consistent global
// order (the router's Transfer-style workloads sort keys first): each
// shard's lock manager detects deadlocks only within its own wait
// graph, so an ordering discipline — not distributed detection — is
// what excludes cross-shard cycles, exactly as in production systems
// that shard a single-node lock manager.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/obs"
	"hstoragedb/internal/pagestore"
	"hstoragedb/internal/simclock"
)

// CoordBaseObject is the reserved object range of the coordinator's
// decision log on shard 0's page store, disjoint from the data WAL range
// at wal.DefaultBaseObject (1<<29) and below the temp range (1<<30).
const CoordBaseObject pagestore.ObjectID = wal.DefaultBaseObject + 1<<28

// Config sizes one cluster. Every shard gets an identical stack: scaling
// out adds whole nodes, it does not split one node's resources.
type Config struct {
	// Shards is the number of engine instances (>= 1).
	Shards int
	// Storage sizes each shard's storage system (mode, cache, devices).
	Storage hybrid.Config
	// BufferPoolPages and WorkMem size each shard's instance.
	BufferPoolPages int
	WorkMem         int
	// CPUPerTuple is the per-tuple processing cost of each shard.
	CPUPerTuple time.Duration
	// WAL configures each shard's log (and, with the coordinator's base
	// object substituted, the decision log).
	WAL wal.Config
	// Obs optionally attaches an observability set. Each shard receives
	// a derived view stamping a `shard` label on every metric, so one
	// registry carries per-shard wal/iosched/cache series side by side;
	// the coordinator's 2PC spans record under the base set.
	Obs *obs.Set
	// Backend, when non-nil, builds each shard's storage backend (one
	// call per shard). Nil selects the extent heap store.
	Backend func() pagestore.Backend
	// DisableCompactionClass strips the compaction classification from
	// each shard's backend maintenance I/O (the lsm experiment's
	// ablation arm): flushes and compactions are submitted under the
	// write-buffer class instead, competing with real updates for
	// cache space.
	DisableCompactionClass bool
}

// Shard is one node of the cluster: a database, a running instance, its
// WAL, and its transaction manager.
type Shard struct {
	ID   int
	DB   *engine.Database
	Inst *engine.Instance
	Log  *wal.Manager
	TM   *txn.Manager
}

// Cluster is a running set of shards plus the router state and the 2PC
// coordinator. All methods are safe for concurrent use.
type Cluster struct {
	cfg    Config
	shards []*Shard
	coord  *Coordinator

	// gate is the cluster-level drain barrier: every routed transaction
	// holds the read side from Begin to finish, Checkpoint takes the
	// write side. Per-shard checkpoints therefore always run with no
	// routed transaction in flight — taking the per-shard barriers
	// concurrently with cross-shard Begins could deadlock (txn on A
	// waits for Begin on B behind B's checkpoint, which waits for a txn
	// waiting on A's checkpoint).
	gate sync.RWMutex

	dead    atomic.Bool
	nextSID atomic.Int64
}

// shardObs derives the per-shard observability view.
func shardObs(base *obs.Set, id int) *obs.Set {
	return base.With(obs.LInt("shard", int64(id)))
}

func (cfg Config) withDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.WAL.SegmentPages == 0 && cfg.WAL.GroupCommitWindow == 0 && cfg.WAL.BaseObject == 0 {
		cfg.WAL = wal.DefaultConfig()
	}
	return cfg
}

// coordWALConfig is the decision log's config: same segment sizing as
// the data logs, relocated to the reserved coordinator object range.
func (cfg Config) coordWALConfig() wal.Config {
	w := cfg.WAL
	w.BaseObject = CoordBaseObject
	return w
}

// New builds a fresh cluster: Shards empty databases, one instance each,
// a WAL per shard, and the coordinator's decision log on shard 0.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		var db *engine.Database
		if cfg.Backend != nil {
			db = engine.NewDatabaseOn(cfg.Backend())
		} else {
			db = engine.NewDatabase()
		}
		s, err := newShardOver(cfg, i, db, false)
		if err != nil {
			return nil, err
		}
		c.shards = append(c.shards, s)
	}
	sess := c.shards[0].Inst.NewSession()
	coordLog, err := wal.New(&sess.Clk, c.shards[0].Inst.Mgr, cfg.coordWALConfig())
	if err != nil {
		return nil, fmt.Errorf("shard: coordinator log: %w", err)
	}
	// The decision log reports under its own pseudo-shard label, so 2PC
	// decision forces are separable from shard 0's data-log traffic.
	coordLog.Use(cfg.Obs.With(obs.L("shard", "coord")))
	c.coord = newCoordinator(coordLog, cfg.Obs)
	return c, nil
}

// newShardOver attaches a shard instance (and, unless recovering, a
// fresh WAL) to an existing database.
func newShardOver(cfg Config, id int, db *engine.Database, recover bool) (*Shard, error) {
	inst, err := db.NewInstance(engine.InstanceConfig{
		Storage:                cfg.Storage,
		BufferPoolPages:        cfg.BufferPoolPages,
		WorkMem:                cfg.WorkMem,
		CPUPerTuple:            cfg.CPUPerTuple,
		DisableCompactionClass: cfg.DisableCompactionClass,
		Obs:                    shardObs(cfg.Obs, id),
	})
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	s := &Shard{ID: id, DB: db, Inst: inst}
	if !recover {
		sess := inst.NewSession()
		s.Log, err = wal.New(&sess.Clk, inst.Mgr, cfg.WAL)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", id, err)
		}
		s.TM = txn.NewManager(inst, s.Log)
		if err := s.TM.Checkpoint(sess); err != nil {
			return nil, fmt.Errorf("shard %d: %w", id, err)
		}
	}
	return s, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns shard i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Coordinator returns the 2PC coordinator.
func (c *Cluster) Coordinator() *Coordinator { return c.coord }

// Config returns the cluster configuration (with defaults applied).
func (c *Cluster) Config() Config { return c.cfg }

// ShardFor hash-partitions a key: a 64-bit finalization mix (the
// splitmix64 finalizer) spreads adjacent keys uniformly, then the mix
// reduces mod the shard count. Deterministic across runs and processes.
func (c *Cluster) ShardFor(key int64) int {
	return int(mix64(uint64(key)) % uint64(len(c.shards)))
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Checkpoint drains every routed transaction (cluster gate), then
// checkpoints each shard in turn: committed work flushes, logs truncate,
// version stores prune. The caller's router session provides the clocks.
func (c *Cluster) Checkpoint(rs *Session) error {
	c.gate.Lock()
	defer c.gate.Unlock()
	if c.dead.Load() {
		return txn.ErrCrashed
	}
	for i, s := range c.shards {
		if err := s.TM.Checkpoint(rs.sess[i]); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Crash kills the whole cluster: every shard's volatile state drops
// (pinned pages, buffer pools) and the coordinator stops deciding. The
// page stores — including every shard's log segments and the decision
// log — survive for Recover.
func (c *Cluster) Crash() {
	c.dead.Store(true)
	for _, s := range c.shards {
		s.TM.Crash()
	}
}

// CrashShard kills a single shard, leaving the rest of the cluster
// running: in-flight transactions touching it fail with ErrCrashed,
// single-shard traffic elsewhere continues.
func (c *Cluster) CrashShard(i int) { c.shards[i].TM.Crash() }

// Dead reports whether Crash has been called.
func (c *Cluster) Dead() bool { return c.dead.Load() }

// Databases returns each shard's database — the durable halves a
// recovery attaches fresh instances to.
func (c *Cluster) Databases() []*engine.Database {
	dbs := make([]*engine.Database, len(c.shards))
	for i, s := range c.shards {
		dbs[i] = s.DB
	}
	return dbs
}

// RecoveryStats aggregates a cluster recovery.
type RecoveryStats struct {
	// PerShard holds each shard's WAL recovery outcome, indexed by shard.
	PerShard []wal.RecoveryStats
	// InDoubt counts prepared-but-undecided transactions recovery found;
	// ResolvedCommit/ResolvedAbort how the decision log settled them
	// (missing decision = presumed abort).
	InDoubt        int
	ResolvedCommit int
	ResolvedAbort  int
}

// Recover restarts a crashed cluster over its surviving databases: each
// shard's WAL recovers independently (redoing committed work, holding
// prepared-but-undecided transactions in doubt), the coordinator's
// decision log recovers on shard 0, and every in-doubt transaction is
// resolved against it — redo-and-commit when a durable decide-commit
// record names its GTID, abort otherwise (presumed abort).
func Recover(cfg Config, dbs []*engine.Database) (*Cluster, *RecoveryStats, error) {
	cfg = cfg.withDefaults()
	if len(dbs) != cfg.Shards {
		return nil, nil, fmt.Errorf("shard: recover: %d databases for %d shards", len(dbs), cfg.Shards)
	}
	c := &Cluster{cfg: cfg}
	stats := &RecoveryStats{PerShard: make([]wal.RecoveryStats, cfg.Shards)}
	for i := 0; i < cfg.Shards; i++ {
		s, err := newShardOver(cfg, i, dbs[i], true)
		if err != nil {
			return nil, nil, err
		}
		sess := s.Inst.NewSession()
		log, rs, err := wal.Recover(&sess.Clk, s.Inst.Mgr, cfg.WAL)
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.Log = log
		s.TM = txn.NewManager(s.Inst, log)
		stats.PerShard[i] = *rs
		c.shards = append(c.shards, s)
	}

	// The decision log recovers like any WAL; its "committed
	// transactions" are the decide records themselves (no page records to
	// redo). Its recovered decision map is the oracle for every shard's
	// in-doubt set.
	coordSess := c.shards[0].Inst.NewSession()
	coordLog, _, err := wal.Recover(&coordSess.Clk, c.shards[0].Inst.Mgr, cfg.coordWALConfig())
	if err != nil {
		return nil, nil, fmt.Errorf("shard: coordinator log: %w", err)
	}
	coordLog.Use(cfg.Obs.With(obs.L("shard", "coord")))
	decisions := coordLog.Decisions()
	c.coord = newCoordinator(coordLog, cfg.Obs)
	c.coord.seedDecisions(decisions)

	for i, s := range c.shards {
		sess := s.Inst.NewSession()
		for _, d := range s.Log.InDoubt() {
			stats.InDoubt++
			commit := decisions[d.GTID]
			if err := s.Log.ResolveInDoubt(&sess.Clk, d.Txn, commit); err != nil {
				return nil, nil, fmt.Errorf("shard %d: resolve txn %d: %w", i, d.Txn, err)
			}
			if commit {
				stats.ResolvedCommit++
			} else {
				stats.ResolvedAbort++
			}
		}
		// Resolution appended outcome records; fold the shard's pool
		// state forward so the recovered image is clean for new work.
		if err := s.Inst.Pool.FlushAll(&sess.Clk); err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return c, stats, nil
}

// Wait drains every shard's storage system on the router session's
// per-shard clocks and levels them to the cluster-wide maximum: the
// virtual makespan of everything submitted so far.
func (c *Cluster) Wait(rs *Session) simclock.Duration {
	var max simclock.Duration
	for i, s := range c.shards {
		s.Inst.Mgr.Wait(&rs.sess[i].Clk)
		if t := rs.sess[i].Clk.Now(); t > max {
			max = t
		}
	}
	for i := range c.shards {
		rs.sess[i].Clk.AdvanceTo(max)
	}
	return max
}
