package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/obs"
	"hstoragedb/internal/simclock"
)

// TwoPCStats summarize the coordinator.
type TwoPCStats struct {
	// Commits and Aborts count decided cross-shard transactions;
	// Prepares counts participant prepare calls across them.
	Commits  int64
	Aborts   int64
	Prepares int64
}

// Coordinator runs two-phase commit for cross-shard transactions. Its
// decision log is an ordinary WAL co-located on shard 0: one forced
// decide record per committing transaction is the commit point, and a
// transaction with no durable decision is aborted (presumed abort), so
// abort decisions cost no force.
type Coordinator struct {
	log *wal.Manager

	nextGTID atomic.Int64

	mu      sync.Mutex
	decided map[int64]bool // GTID -> committed

	commits  atomic.Int64
	aborts   atomic.Int64
	prepares atomic.Int64

	// Crash injection: arm to kill the cluster at the corresponding
	// protocol point of the next cross-shard commit. The pointer is the
	// cluster's Crash, set by the router on first use.
	crashBeforeDecide atomic.Bool
	crashAfterDecide  atomic.Bool

	tracer   *obs.Tracer
	mCommits *obs.Counter
	mAborts  *obs.Counter
}

func newCoordinator(log *wal.Manager, set *obs.Set) *Coordinator {
	co := &Coordinator{log: log, decided: make(map[int64]bool)}
	co.nextGTID.Store(1)
	co.tracer = set.Trace()
	if reg := set.Registry(); reg != nil {
		co.mCommits = reg.Counter("shard.2pc.commits")
		co.mAborts = reg.Counter("shard.2pc.aborts")
	}
	return co
}

// seedDecisions installs the decision map a recovery read back from the
// decision log, and bumps the GTID allocator past every recovered one.
func (co *Coordinator) seedDecisions(d map[int64]bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	for gtid, commit := range d {
		co.decided[gtid] = commit
		if gtid >= co.nextGTID.Load() {
			co.nextGTID.Store(gtid + 1)
		}
	}
}

// NextGTID allocates a global transaction ID.
func (co *Coordinator) NextGTID() int64 { return co.nextGTID.Add(1) - 1 }

// Decided reports the durable decision for a GTID, if one exists.
func (co *Coordinator) Decided(gtid int64) (commit, ok bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	commit, ok = co.decided[gtid]
	return commit, ok
}

// Stats returns a snapshot of the coordinator counters.
func (co *Coordinator) Stats() TwoPCStats {
	return TwoPCStats{
		Commits:  co.commits.Load(),
		Aborts:   co.aborts.Load(),
		Prepares: co.prepares.Load(),
	}
}

// CrashBeforeDecide arms a simulated coordinator crash after the next
// cross-shard transaction's prepare phase, before its decision record:
// participants are left holding prepared locks, and recovery must
// presume abort.
func (co *Coordinator) CrashBeforeDecide() { co.crashBeforeDecide.Store(true) }

// CrashAfterDecide arms a simulated crash after the next cross-shard
// transaction's decision record is durable, before phase 2: recovery
// must resolve the in-doubt participants to commit.
func (co *Coordinator) CrashAfterDecide() { co.crashAfterDecide.Store(true) }

// decide makes the outcome durable: a decide record in the decision log,
// forced for commits (the commit point), lazily appended for aborts
// (presumed abort never needs to read them back — they only tighten
// recovery's in-doubt classification if they happen to be on disk).
func (co *Coordinator) decide(clk *simclock.Clock, gtid int64, commit bool) error {
	kind := wal.KindDecideAbort
	if commit {
		kind = wal.KindDecideCommit
	}
	lsn, err := co.log.Append(clk, wal.Record{Txn: gtid, Kind: kind})
	if err != nil {
		return err
	}
	if commit {
		if err := co.log.Flush(clk, lsn); err != nil {
			return err
		}
	}
	co.mu.Lock()
	co.decided[gtid] = commit
	co.mu.Unlock()
	return nil
}

// commit drives one cross-shard transaction through the protocol. The
// caller (router Txn) holds the cluster gate; parts is non-empty and in
// shard order. On any prepare failure every participant aborts and the
// first error returns. After the decision record is durable the outcome
// is fixed: phase-2 failures (a participant crash) leave that shard's
// prepared transaction for recovery to resolve, not a lost commit.
func (co *Coordinator) commit(rs *Session, parts []*Part) error {
	gtid := co.NextGTID()
	clk := &rs.sess[0].Clk // coordinator co-located with shard 0

	start := rs.Now()
	// Phase 1: prepare every participant concurrently and gate on all
	// acks. Each force rides its own shard's group-commit batch; issuing
	// them together means every participant joins its shard's *current*
	// batch, so the phase costs one parallel round of prepares instead
	// of a chain — issued sequentially, each later prepare would join a
	// later batch on a clock that concurrent traffic kept advancing,
	// making commit latency grow linearly in the participant count.
	prepErrs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		co.prepares.Add(1)
		wg.Add(1)
		go func(i int, p *Part) {
			defer wg.Done()
			prepErrs[i] = p.T.Prepare(gtid)
		}(i, p)
	}
	wg.Wait()
	for _, err := range prepErrs {
		if err == nil {
			continue
		}
		// Presumed abort: no decision record needed. Failed participants
		// already released; the prepared ones roll back.
		for i, q := range parts {
			if prepErrs[i] == nil {
				_ = q.T.Abort()
			}
		}
		co.aborts.Add(1)
		co.mAborts.Inc()
		return err
	}

	// The decision happens-after every prepare: advance the coordinator
	// clock to the latest participant before the decision I/O.
	for _, p := range parts {
		clk.AdvanceTo(p.Sess.Clk.Now())
	}

	if co.crashBeforeDecide.CompareAndSwap(true, false) {
		// Simulated coordinator crash between prepare and decide: no
		// decision exists, participants hold prepared locks until
		// recovery presumes abort.
		rs.c.Crash()
		return ErrCoordinatorCrashed
	}

	if err := co.decide(clk, gtid, true); err != nil {
		return fmt.Errorf("shard: decide gtid %d: %w", gtid, err)
	}

	if co.crashAfterDecide.CompareAndSwap(true, false) {
		// Simulated crash after the durable decision, before phase 2:
		// the transaction is committed — recovery must make every
		// participant agree.
		rs.c.Crash()
		return ErrCoordinatorCrashed
	}

	// Phase 2: local commit records. Participants first catch up to the
	// decision's completion time — the commit point happened-before
	// their phase-2 work.
	var firstErr error
	for _, p := range parts {
		p.Sess.Clk.AdvanceTo(clk.Now())
		if err := p.T.CommitPrepared(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	co.commits.Add(1)
	co.mCommits.Inc()
	if co.tracer != nil {
		end := rs.Now()
		co.tracer.Span("shard", "2pc", clk.ID(), start, end-start,
			map[string]any{"gtid": gtid, "parts": len(parts)})
	}
	return firstErr
}

// ErrCoordinatorCrashed reports a commit interrupted by the armed
// coordinator crash: the cluster is down and the transaction's fate
// belongs to recovery.
var ErrCoordinatorCrashed = fmt.Errorf("shard: simulated coordinator crash: %w", txn.ErrCrashed)
