package shard

import (
	"errors"
	"fmt"
	"sort"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/simclock"
)

// Session is one routed query stream: an engine session per shard, all
// advancing one logical timeline. Single-shard work runs on exactly one
// of them; cross-shard work fans out and re-synchronizes, so the
// session's notion of "now" is the max over the shards it touched —
// the same rule a real client observes talking to N nodes.
type Session struct {
	c    *Cluster
	sess []*engine.Session
}

// NewSession opens a routed session: one engine session per shard, all
// sharing one stream ID so traces show the routed stream as one track.
func (c *Cluster) NewSession() *Session {
	rs := &Session{c: c, sess: make([]*engine.Session, len(c.shards))}
	id := c.nextSID.Add(1)
	for i, s := range c.shards {
		rs.sess[i] = s.Inst.NewSession()
		rs.sess[i].Clk.SetID(id)
	}
	return rs
}

// At returns the engine session bound to shard i.
func (s *Session) At(i int) *engine.Session { return s.sess[i] }

// Now returns the session's logical time: the max over its per-shard
// clocks.
func (s *Session) Now() simclock.Duration {
	var max simclock.Duration
	for _, es := range s.sess {
		if t := es.Clk.Now(); t > max {
			max = t
		}
	}
	return max
}

// AdvanceTo advances every per-shard clock to at least t.
func (s *Session) AdvanceTo(t simclock.Duration) {
	for _, es := range s.sess {
		es.Clk.AdvanceTo(t)
	}
}

// Part is one transaction participant: the shard, the routed session's
// engine session on it, and the local transaction.
type Part struct {
	Shard *Shard
	Sess  *engine.Session
	T     *txn.Txn
}

// Txn is a routed transaction: local transactions begin lazily on the
// shards it touches. One participant commits directly (the single-shard
// fast path — byte-identical to an unsharded commit); several commit by
// two-phase commit through the cluster coordinator.
type Txn struct {
	c        *Cluster
	sess     *Session
	parts    map[int]*Part
	finished bool
}

// Begin starts a routed transaction. It holds the cluster drain barrier
// (not any shard's) until the transaction finishes; local transactions
// join shards as keys route there.
func (s *Session) Begin() (*Txn, error) {
	c := s.c
	if c.dead.Load() {
		return nil, txn.ErrCrashed
	}
	c.gate.RLock()
	if c.dead.Load() {
		c.gate.RUnlock()
		return nil, txn.ErrCrashed
	}
	return &Txn{c: c, sess: s, parts: make(map[int]*Part)}, nil
}

// At enrolls shard i as a participant (idempotent): the local
// transaction begins on the routed session's clock for that shard,
// advanced to the transaction's current logical time so no participant
// starts in another's past.
func (t *Txn) At(i int) (*Part, error) {
	if t.finished {
		return nil, fmt.Errorf("shard: txn already finished")
	}
	if p, ok := t.parts[i]; ok {
		return p, nil
	}
	var max simclock.Duration
	for _, p := range t.parts {
		if now := p.Sess.Clk.Now(); now > max {
			max = now
		}
	}
	es := t.sess.sess[i]
	es.Clk.AdvanceTo(max)
	lt, err := t.c.shards[i].TM.Begin(es)
	if err != nil {
		return nil, err
	}
	p := &Part{Shard: t.c.shards[i], Sess: es, T: lt}
	t.parts[i] = p
	return p, nil
}

// ForKey enrolls the shard owning key and returns its participant.
func (t *Txn) ForKey(key int64) (*Part, error) {
	return t.At(t.c.ShardFor(key))
}

// Parts returns the enrolled participants in shard order.
func (t *Txn) Parts() []*Part {
	ids := make([]int, 0, len(t.parts))
	for i := range t.parts {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	out := make([]*Part, len(ids))
	for k, i := range ids {
		out[k] = t.parts[i]
	}
	return out
}

// Commit finishes the transaction. Zero participants is a no-op; one
// participant commits locally exactly as an unsharded transaction would;
// several run two-phase commit: prepare everywhere (forced, locks held),
// a durable coordinator decision, then local phase-2 commits. On a
// prepare failure the prepared participants abort (presumed abort needs
// no decision record). The commit is atomic across shards: after a
// crash anywhere in the protocol, recovery resolves every participant
// to the same outcome the decision log records.
func (t *Txn) Commit() error {
	if t.finished {
		return fmt.Errorf("shard: txn already finished")
	}
	t.finished = true
	defer t.c.gate.RUnlock()
	parts := t.Parts()
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0].T.Commit()
	}
	return t.c.coord.commit(t.sess, parts)
}

// Abort rolls every participant back and releases the cluster barrier.
func (t *Txn) Abort() error {
	if t.finished {
		return fmt.Errorf("shard: txn already finished")
	}
	t.finished = true
	defer t.c.gate.RUnlock()
	var firstErr error
	for _, p := range t.Parts() {
		if err := p.T.Abort(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// IsDeadlock reports whether err is a (shard-local) deadlock loss: the
// routed transaction should abort and retry, like an unsharded one.
func IsDeadlock(err error) bool { return errors.Is(err, txn.ErrDeadlock) }
