package shard

import (
	"errors"
	"testing"
	"time"

	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/obs"
)

func testConfig(shards int) Config {
	return Config{
		Shards:          shards,
		Storage:         hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 4096},
		BufferPoolPages: 512,
		WorkMem:         4096,
		CPUPerTuple:     300 * time.Nanosecond,
		WAL:             wal.Config{SegmentPages: 256, GroupCommitWindow: 50 * time.Microsecond},
	}
}

// keysOnShards returns one account key per requested shard, in order.
func keysOnShards(t *testing.T, c *Cluster, n int64, shards ...int) []int64 {
	t.Helper()
	out := make([]int64, len(shards))
	for i, want := range shards {
		found := false
		for k := int64(0); k < n; k++ {
			if c.ShardFor(k) == want {
				out[i] = k
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no key on shard %d among %d keys", want, n)
		}
	}
	return out
}

// balanceOf reads one account through a fresh routed transaction.
func balanceOf(t *testing.T, c *Cluster, a *Accounts, key int64) int64 {
	t.Helper()
	rs := c.NewSession()
	tx, err := rs.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	bal, err := a.Balance(tx, key)
	if err != nil {
		t.Fatalf("balance(%d): %v", key, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return bal
}

func TestShardForDistribution(t *testing.T) {
	c, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for k := int64(0); k < 10000; k++ {
		s := c.ShardFor(k)
		if s2 := c.ShardFor(k); s2 != s {
			t.Fatalf("ShardFor(%d) not deterministic: %d vs %d", k, s, s2)
		}
		counts[s]++
	}
	for i, n := range counts {
		if n < 1500 {
			t.Fatalf("shard %d owns only %d/10000 keys: hash badly skewed (%v)", i, n, counts)
		}
	}
}

func TestSingleShardFastPath(t *testing.T) {
	c, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.LoadAccounts(32, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs := c.NewSession()
	tx, err := rs.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Transfer(tx, 1, 2, 30); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := balanceOf(t, c, a, 1); got != 70 {
		t.Fatalf("account 1 balance = %d, want 70", got)
	}
	if got := balanceOf(t, c, a, 2); got != 130 {
		t.Fatalf("account 2 balance = %d, want 130", got)
	}
	// One shard means no transaction ever runs 2PC.
	if st := c.Coordinator().Stats(); st.Commits != 0 || st.Prepares != 0 {
		t.Fatalf("single-shard cluster drove the coordinator: %+v", st)
	}
	if total, err := a.TotalBalance(c.NewSession()); err != nil || total != 3200 {
		t.Fatalf("total = %d (err %v), want 3200", total, err)
	}
}

func TestCrossShardCommit(t *testing.T) {
	c, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.LoadAccounts(64, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := keysOnShards(t, c, 64, 0, 1)
	rs := c.NewSession()
	tx, err := rs.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Transfer(tx, keys[0], keys[1], 25); err != nil {
		t.Fatal(err)
	}
	if len(tx.Parts()) != 2 {
		t.Fatalf("cross-shard transfer enrolled %d participants, want 2", len(tx.Parts()))
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("2pc commit: %v", err)
	}
	if got := balanceOf(t, c, a, keys[0]); got != 75 {
		t.Fatalf("source balance = %d, want 75", got)
	}
	if got := balanceOf(t, c, a, keys[1]); got != 125 {
		t.Fatalf("destination balance = %d, want 125", got)
	}
	st := c.Coordinator().Stats()
	if st.Commits != 1 || st.Prepares != 2 {
		t.Fatalf("coordinator stats = %+v, want 1 commit / 2 prepares", st)
	}
}

// TestCoordinatorCrashBeforeDecide covers the prepare→decide window: the
// coordinator dies with every participant prepared and no decision
// record, so recovery must presume abort and the transfer must not have
// happened.
func TestCoordinatorCrashBeforeDecide(t *testing.T) {
	cfg := testConfig(2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.LoadAccounts(64, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := keysOnShards(t, c, 64, 0, 1)
	c.Coordinator().CrashBeforeDecide()

	rs := c.NewSession()
	tx, err := rs.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Transfer(tx, keys[0], keys[1], 40); err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	if !errors.Is(err, txn.ErrCrashed) {
		t.Fatalf("commit after armed coordinator crash: err = %v, want ErrCrashed", err)
	}
	if !c.Dead() {
		t.Fatal("cluster should be dead after the coordinator crash")
	}

	c2, stats, err := Recover(cfg, c.Databases())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.InDoubt != 2 || stats.ResolvedAbort != 2 || stats.ResolvedCommit != 0 {
		t.Fatalf("recovery stats = %+v, want 2 in-doubt all resolved abort", stats)
	}
	a2 := a.Attach(c2)
	if got := balanceOf(t, c2, a2, keys[0]); got != 100 {
		t.Fatalf("source balance after presumed abort = %d, want 100", got)
	}
	if got := balanceOf(t, c2, a2, keys[1]); got != 100 {
		t.Fatalf("destination balance after presumed abort = %d, want 100", got)
	}
	if total, err := a2.TotalBalance(c2.NewSession()); err != nil || total != 6400 {
		t.Fatalf("total = %d (err %v), want 6400", total, err)
	}
}

// TestCrashAfterDecide covers the decide→phase-2 window: the decision
// record is durable, so the transaction is committed even though no
// participant wrote its local commit record — recovery must resolve
// both in-doubt participants to commit and redo their pages.
func TestCrashAfterDecide(t *testing.T) {
	cfg := testConfig(2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.LoadAccounts(64, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := keysOnShards(t, c, 64, 0, 1)
	c.Coordinator().CrashAfterDecide()

	rs := c.NewSession()
	tx, err := rs.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Transfer(tx, keys[0], keys[1], 40); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, txn.ErrCrashed) {
		t.Fatalf("commit after armed crash: err = %v, want ErrCrashed", err)
	}

	c2, stats, err := Recover(cfg, c.Databases())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.InDoubt != 2 || stats.ResolvedCommit != 2 || stats.ResolvedAbort != 0 {
		t.Fatalf("recovery stats = %+v, want 2 in-doubt all resolved commit", stats)
	}
	a2 := a.Attach(c2)
	if got := balanceOf(t, c2, a2, keys[0]); got != 60 {
		t.Fatalf("source balance after resolved commit = %d, want 60", got)
	}
	if got := balanceOf(t, c2, a2, keys[1]); got != 140 {
		t.Fatalf("destination balance after resolved commit = %d, want 140", got)
	}
	if total, err := a2.TotalBalance(c2.NewSession()); err != nil || total != 6400 {
		t.Fatalf("total = %d (err %v), want 6400", total, err)
	}
}

// TestParticipantCrashInPhaseTwo covers a participant dying while
// holding prepared locks after the decision committed: shard 1's crash
// harness kills it at its phase-2 commit record, shard 0 commits
// normally, and recovery must bring shard 1 to the same outcome.
func TestParticipantCrashInPhaseTwo(t *testing.T) {
	cfg := testConfig(2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.LoadAccounts(64, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := keysOnShards(t, c, 64, 0, 1)
	c.Shard(1).TM.CrashAtCommit(1)

	rs := c.NewSession()
	tx, err := rs.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Transfer(tx, keys[0], keys[1], 40); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, txn.ErrCrashed) {
		t.Fatalf("commit with dying participant: err = %v, want ErrCrashed", err)
	}
	// The decision is durable and shard 0 applied its half; shard 1 died
	// holding prepared locks. Take the rest of the cluster down and
	// restart everything.
	c.Crash()

	c2, stats, err := Recover(cfg, c.Databases())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.InDoubt != 1 || stats.ResolvedCommit != 1 {
		t.Fatalf("recovery stats = %+v, want exactly shard 1's txn in doubt, resolved commit", stats)
	}
	a2 := a.Attach(c2)
	if got := balanceOf(t, c2, a2, keys[0]); got != 60 {
		t.Fatalf("source balance = %d, want 60", got)
	}
	if got := balanceOf(t, c2, a2, keys[1]); got != 140 {
		t.Fatalf("destination balance = %d, want 140", got)
	}
}

// TestConcurrentTransfersConserveTotal is the race-detector workhorse:
// concurrent workers run mixed single- and cross-shard transfers with a
// checkpoint in between, and the global balance must be conserved.
func TestConcurrentTransfersConserveTotal(t *testing.T) {
	cfg := testConfig(4)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n, balance = 128, 100
	a, err := c.LoadAccounts(n, balance, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RunWorkers(4, 15, 0.5, 7, 0)
	if err != nil {
		t.Fatalf("workers: %v", err)
	}
	if res.Txns != 60 {
		t.Fatalf("completed %d transfers, want 60", res.Txns)
	}
	if res.CrossShard == 0 {
		t.Fatal("no cross-shard transfers at xshard=0.5")
	}
	rs := c.NewSession()
	c.Wait(rs)
	if err := c.Checkpoint(rs); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if _, err := a.RunWorkers(4, 10, 0.5, 8, rs.Now()); err != nil {
		t.Fatalf("post-checkpoint workers: %v", err)
	}
	c.Wait(rs)
	if total, err := a.TotalBalance(rs); err != nil || total != n*balance {
		t.Fatalf("total = %d (err %v), want %d", total, err, n*balance)
	}
	st := c.Coordinator().Stats()
	if st.Commits != res.CrossShard+0 && st.Commits == 0 {
		t.Fatalf("coordinator commits = %d with %d cross-shard transfers", st.Commits, res.CrossShard)
	}
}

// TestRecoverCommittedWorkload crashes the whole cluster after a mixed
// workload (no checkpoint) and verifies recovery redoes every shard's
// committed transfers: the conservation invariant holds over the
// recovered durable state.
func TestRecoverCommittedWorkload(t *testing.T) {
	cfg := testConfig(2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n, balance = 64, 100
	a, err := c.LoadAccounts(n, balance, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RunWorkers(2, 12, 0.5, 11, 0); err != nil {
		t.Fatalf("workers: %v", err)
	}
	c.Crash()
	c2, stats, err := Recover(cfg, c.Databases())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.InDoubt != 0 {
		t.Fatalf("clean shutdown left %d in-doubt txns", stats.InDoubt)
	}
	a2 := a.Attach(c2)
	if total, err := a2.TotalBalance(c2.NewSession()); err != nil || total != n*balance {
		t.Fatalf("recovered total = %d (err %v), want %d", total, err, n*balance)
	}
}

// TestPerShardMetricLabels checks the obs plumbing: one registry carries
// each shard's wal series under its own shard label.
func TestPerShardMetricLabels(t *testing.T) {
	cfg := testConfig(2)
	set := obs.NewSet()
	cfg.Obs = set
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.LoadAccounts(64, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := keysOnShards(t, c, 64, 0, 1)
	rs := c.NewSession()
	tx, err := rs.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Transfer(tx, keys[0], keys[1], 5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, m := range set.Registry().Snapshot() {
		have[m.Name] = true
	}
	for _, want := range []string{
		"wal.appends{shard=0}", "wal.appends{shard=1}",
		"txn.commits{shard=0}", "txn.commits{shard=1}",
	} {
		if !have[want] {
			t.Fatalf("missing per-shard metric %s", want)
		}
	}
}
