// Package device models block storage devices with simulated service
// times.
//
// The paper's hybrid storage system (Section 5, Table 2) pairs a Seagate
// Cheetah 15.7K RPM HDD with an Intel 320 Series SSD. We reproduce both
// with parametric latency models:
//
//   - HDD: a request that does not continue the previous request's LBA run
//     pays an average seek plus half-rotation latency; all requests pay a
//     transfer cost at the sequential rate. This yields the property the
//     paper's Rule 1 depends on: HDD sequential bandwidth is comparable to
//     SSD bandwidth, while HDD random access is orders of magnitude slower.
//   - SSD: a non-contiguous request pays the per-request random latency
//     (the reciprocal of the device's rated IOPS); all requests pay a
//     transfer cost at the rated sequential bandwidth.
//
// Devices are shared, serially served resources: concurrent request
// streams queue behind one another (see simclock.Resource).
package device

import (
	"fmt"
	"sync"
	"time"

	"hstoragedb/internal/obs"
	"hstoragedb/internal/simclock"
)

// BlockSize is the unit of all device I/O in bytes. It matches the 8 KB
// page size of the PostgreSQL prototype the paper instruments.
const BlockSize = 8192

// Op is the direction of an access.
type Op int

const (
	// Read transfers blocks from the device.
	Read Op = iota
	// Write transfers blocks to the device.
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Spec holds the performance parameters of a device model.
type Spec struct {
	Name string

	// SeqReadBps and SeqWriteBps are sequential bandwidths in bytes/s.
	SeqReadBps  float64
	SeqWriteBps float64

	// RandReadLat and RandWriteLat are the positioning penalties paid by a
	// request that does not continue the preceding request's LBA run. For
	// an HDD this is seek + rotational latency; for an SSD it is 1/IOPS.
	RandReadLat  time.Duration
	RandWriteLat time.Duration

	// NearSeekLat, when non-zero, replaces the positioning penalty for
	// jumps shorter than NearDistance blocks (track-to-track seeks on an
	// HDD, e.g. interleaved writes to a handful of temp files). Zero
	// means every discontiguous access pays the full penalty.
	NearSeekLat  time.Duration
	NearDistance int64

	// Channels is the device's internal service parallelism: how many
	// requests it works on simultaneously. An SSD stripes over NAND
	// channels, so concurrent submitters multiply its throughput, while
	// a lone synchronous stream — one request in flight at a time —
	// gains nothing; an HDD has a single actuator (Channels 0 or 1:
	// strictly serial service). This is the hardware seam that rewards
	// genuinely concurrent request streams.
	Channels int
}

// Cheetah15K returns the Seagate Cheetah 15.7K RPM 300 GB HDD used at
// level two of the paper's storage hierarchy. 15,000 RPM gives a 2 ms
// average rotational latency; average seek is ~3.4 ms; sustained transfer
// ~150 MB/s.
func Cheetah15K() Spec {
	return Spec{
		Name:         "cheetah-15k7",
		SeqReadBps:   150e6,
		SeqWriteBps:  150e6,
		RandReadLat:  5400 * time.Microsecond, // 3.4 ms seek + 2.0 ms rotation
		RandWriteLat: 5400 * time.Microsecond,
		NearSeekLat:  2700 * time.Microsecond, // 0.7 ms track-to-track + rotation
		NearDistance: 4096,
	}
}

// Intel320 returns the Intel 320 Series 300 GB SSD from Table 2 of the
// paper: 270 MB/s / 205 MB/s sequential read/write, 39.5K / 23K IOPS
// random read/write.
func Intel320() Spec {
	return Spec{
		Name:         "intel-320",
		SeqReadBps:   270e6,
		SeqWriteBps:  205e6,
		RandReadLat:  time.Second / 39500,
		RandWriteLat: time.Second / 23000,
		// The 320 stripes over ten NAND channels (rated IOPS are
		// aggregate, reached only at queue depth — a synchronous single
		// stream sees per-request latency; the transfer stage caps
		// aggregate bandwidth at the rated sequential rate either way).
		Channels: 10,
	}
}

// LatencyHist is a fixed-bucket latency histogram for one request class.
// It records end-to-end request latency: queueing delay plus service
// time, as observed by the I/O scheduler that granted the request. It is
// the shared observability histogram (the bucket ladder and quantile
// interpolation originated here and moved to package obs when the
// metrics registry unified telemetry across layers).
type LatencyHist = obs.Histogram

// Stats are cumulative counters for one device.
type Stats struct {
	Reads       int64
	Writes      int64
	BlocksRead  int64
	BlocksWrite int64
	SeqAccesses int64 // requests that continued the prior LBA run
	RandAccess  int64 // requests that paid the positioning penalty
	BusyTime    time.Duration

	// PerClass holds end-to-end latency histograms keyed by request
	// class (the integer value of a dss.Class; the device package cannot
	// import dss without a cycle). Only latency-sensitive foreground
	// requests are recorded: background flushes and destages nobody
	// waits on are excluded so they cannot pollute tail percentiles.
	PerClass map[int]LatencyHist

	// PerTenant holds the same end-to-end foreground latency histograms
	// keyed by tenant (the integer value of a dss.TenantID). The I/O
	// scheduler records a tenant sample only for attributed traffic —
	// a non-zero tenant ID, or any tenant while fair sharing is on —
	// so single-tenant runs pay nothing for the map.
	PerTenant map[int]LatencyHist
}

// Device is a simulated block device. All methods are safe for concurrent
// use. With one service channel (the default) requests serialize in
// arrival order exactly as a single-actuator disk does. With
// Spec.Channels > 1 the per-request positioning stage runs on the
// least-busy channel while data transfer serializes on a shared
// bandwidth resource, so concurrent submitters multiply request
// throughput up to the spec's aggregate bandwidth — while a synchronous
// single stream, with one request in flight at a time, observes exactly
// the single-channel service times.
type Device struct {
	spec Spec
	res  []*simclock.Resource
	bw   *simclock.Resource // shared transfer stage (Channels > 1)

	mu          sync.Mutex
	nextLBA     int64 // LBA immediately after the last access; -1 initially
	stats       Stats
	hists       map[int]*LatencyHist
	tenantHists map[int]*LatencyHist

	// Registry instruments, nil (inert) until Use attaches a set. The
	// scalar instruments are cached here; per-class and per-tenant
	// histogram mirrors are cached in the maps to keep the hot path to
	// one registry lookup per new key.
	reg         *obs.Registry
	mReads      *obs.Counter
	mWrites     *obs.Counter
	mBlocksRead *obs.Counter
	mBlocksWr   *obs.Counter
	mBusyTime   *obs.Counter
	mBusy       *obs.Gauge
	mClassLat   map[int]*obs.HistVar
	mTenantLat  map[int]*obs.HistVar
}

// New creates a device from a spec.
func New(spec Spec) *Device {
	n := spec.Channels
	if n < 1 {
		n = 1
	}
	res := make([]*simclock.Resource, n)
	for i := range res {
		res[i] = &simclock.Resource{}
	}
	d := &Device{spec: spec, res: res, nextLBA: -1}
	if n > 1 {
		d.bw = &simclock.Resource{}
	}
	return d
}

// Spec returns the device's performance parameters.
func (d *Device) Spec() Spec { return d.spec }

// Use attaches an observability set: the device registers its counters
// (`device.reads`, `device.writes`, `device.blocks.read`,
// `device.blocks.write`, `device.busytime`), the `device.busy` gauge
// (the busy horizon in simulated nanoseconds), and per-class/per-tenant
// mirrors of its latency histograms (`device.latency`), all labeled
// with the device name. A nil set detaches.
func (d *Device) Use(set *obs.Set) {
	d.mu.Lock()
	defer d.mu.Unlock()
	reg := set.Registry()
	d.reg = reg
	if reg == nil {
		d.mReads, d.mWrites, d.mBlocksRead, d.mBlocksWr = nil, nil, nil, nil
		d.mBusyTime, d.mBusy = nil, nil
		d.mClassLat, d.mTenantLat = nil, nil
		return
	}
	dev := obs.L("dev", d.spec.Name)
	d.mReads = reg.Counter("device.reads", dev)
	d.mWrites = reg.Counter("device.writes", dev)
	d.mBlocksRead = reg.Counter("device.blocks.read", dev)
	d.mBlocksWr = reg.Counter("device.blocks.write", dev)
	d.mBusyTime = reg.Counter("device.busytime", dev)
	d.mBusy = reg.Gauge("device.busy", dev)
	d.mClassLat = make(map[int]*obs.HistVar)
	d.mTenantLat = make(map[int]*obs.HistVar)
}

// classLatLocked returns (caching on first use) the registry mirror of
// the per-class latency histogram. Caller holds d.mu.
func (d *Device) classLatLocked(class int) *obs.HistVar {
	if d.reg == nil {
		return nil
	}
	hv := d.mClassLat[class]
	if hv == nil {
		hv = d.reg.Histogram("device.latency",
			obs.L("dev", d.spec.Name), obs.LInt("class", int64(class)))
		d.mClassLat[class] = hv
	}
	return hv
}

// tenantLatLocked returns (caching on first use) the registry mirror of
// the per-tenant latency histogram. Caller holds d.mu.
func (d *Device) tenantLatLocked(tenant int) *obs.HistVar {
	if d.reg == nil {
		return nil
	}
	hv := d.mTenantLat[tenant]
	if hv == nil {
		hv = d.reg.Histogram("device.latency",
			obs.L("dev", d.spec.Name), obs.LInt("tenant", int64(tenant)))
		d.mTenantLat[tenant] = hv
	}
	return hv
}

// serviceTime computes the positioning and transfer components of an
// access of `blocks` blocks at `lba`, and updates the
// sequential-detection cursor. It does not schedule the access on the
// device's queue; Access does both.
func (d *Device) serviceTime(op Op, lba int64, blocks int) (pos, xfer time.Duration) {
	if blocks <= 0 {
		return 0, 0
	}
	d.mu.Lock()
	sequential := d.nextLBA == lba
	near := false
	if !sequential && d.spec.NearSeekLat > 0 && d.nextLBA >= 0 {
		dist := lba - d.nextLBA
		if dist < 0 {
			dist = -dist
		}
		near = dist < d.spec.NearDistance
	}
	d.nextLBA = lba + int64(blocks)
	if sequential {
		d.stats.SeqAccesses++
	} else {
		d.stats.RandAccess++
	}
	switch op {
	case Read:
		d.stats.Reads++
		d.stats.BlocksRead += int64(blocks)
		d.mReads.Inc()
		d.mBlocksRead.Add(int64(blocks))
	case Write:
		d.stats.Writes++
		d.stats.BlocksWrite += int64(blocks)
		d.mWrites.Inc()
		d.mBlocksWr.Add(int64(blocks))
	}
	d.mu.Unlock()

	bytes := float64(blocks) * BlockSize
	switch op {
	case Read:
		xfer = time.Duration(bytes / d.spec.SeqReadBps * float64(time.Second))
		switch {
		case sequential:
		case near:
			pos = d.spec.NearSeekLat
		default:
			pos = d.spec.RandReadLat
		}
	case Write:
		xfer = time.Duration(bytes / d.spec.SeqWriteBps * float64(time.Second))
		switch {
		case sequential:
		case near:
			pos = d.spec.NearSeekLat
		default:
			pos = d.spec.RandWriteLat
		}
	}
	d.mu.Lock()
	d.stats.BusyTime += pos + xfer
	d.mBusyTime.Add(int64(pos + xfer))
	d.mu.Unlock()
	return pos, xfer
}

// channelFor returns the service channel a new request should occupy:
// the one that frees up first.
func (d *Device) channelFor() *simclock.Resource {
	best := d.res[0]
	if len(d.res) > 1 {
		bu := best.BusyUntil()
		for _, r := range d.res[1:] {
			if t := r.BusyUntil(); t < bu {
				best, bu = r, t
			}
		}
	}
	return best
}

// Access schedules a request arriving at virtual time `at` and returns its
// completion time. On a single-channel device the whole service occupies
// the one channel in arrival order; on a multi-channel device the
// positioning stage runs on the least-busy channel and the transfer
// serializes on the shared bandwidth stage. A zero-block access returns
// the device's busy horizon without occupying anything.
func (d *Device) Access(at time.Duration, op Op, lba int64, blocks int) time.Duration {
	if blocks <= 0 {
		if t := d.BusyUntil(); t > at {
			return t
		}
		return at
	}
	pos, xfer := d.serviceTime(op, lba, blocks)
	var end time.Duration
	if d.bw == nil {
		end = d.res[0].Serve(at, pos+xfer)
	} else {
		end = d.bw.Serve(d.channelFor().Serve(at, pos), xfer)
	}
	d.busyGauge().SetMax(int64(end))
	return end
}

// busyGauge fetches the device.busy gauge under the device lock so a
// concurrent Use cannot race the read.
func (d *Device) busyGauge() *obs.Gauge {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mBusy
}

// AccessBackground schedules work that no requester waits on (asynchronous
// flushes). The device is occupied but the caller's clock should not be
// advanced to the returned completion time.
func (d *Device) AccessBackground(at time.Duration, op Op, lba int64, blocks int) time.Duration {
	if blocks <= 0 {
		return at
	}
	pos, xfer := d.serviceTime(op, lba, blocks)
	var end time.Duration
	if d.bw == nil {
		end = d.res[0].ServeBackground(at, pos+xfer)
	} else {
		end = d.bw.ServeBackground(d.channelFor().ServeBackground(at, pos), xfer)
	}
	d.busyGauge().SetMax(int64(end))
	return end
}

// AccessQueued is the queue-aware submission API used by the I/O
// scheduler (package iosched): the request arrived at virtual time
// `arrive` and was granted the device at `grant` (grant >= arrive when
// the scheduler held it back behind higher-priority work). The access is
// served like Access, and the request's end-to-end latency — completion
// minus arrival, i.e. queueing plus service — is recorded in the
// per-class latency histogram under `class`.
func (d *Device) AccessQueued(arrive, grant time.Duration, op Op, lba int64, blocks int, class int) time.Duration {
	end := d.Access(grant, op, lba, blocks)
	d.ObserveLatency(class, end-arrive)
	return end
}

// BusyUntil reports the virtual time at which the device becomes fully
// idle (the latest channel's horizon). The I/O scheduler consults it to
// measure how long a queued request has effectively been waiting (its
// aging bound); the storage manager settles end-of-run clocks against it.
func (d *Device) BusyUntil() time.Duration {
	var until time.Duration
	for _, r := range d.res {
		if t := r.BusyUntil(); t > until {
			until = t
		}
	}
	if d.bw != nil {
		if t := d.bw.BusyUntil(); t > until {
			until = t
		}
	}
	return until
}

// HeadLBA reports the LBA immediately after the last access (-1 before
// any): the position the next positioning cost is measured from. The
// I/O scheduler's elevator tie-break grants the nearest same-rank
// request, which turns queue depth into shorter seeks.
func (d *Device) HeadLBA() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nextLBA
}

// ObserveLatency records one end-to-end request latency for a class in
// the device's histogram set. Class keys are dss.Class values; the
// scheduler owns the mapping.
func (d *Device) ObserveLatency(class int, lat time.Duration) {
	d.mu.Lock()
	h := d.hists[class]
	if h == nil {
		if d.hists == nil {
			d.hists = make(map[int]*LatencyHist)
		}
		h = &LatencyHist{}
		d.hists[class] = h
	}
	h.Observe(lat)
	hv := d.classLatLocked(class)
	d.mu.Unlock()
	hv.Observe(lat)
}

// ObserveTenantLatency records one end-to-end request latency for a
// tenant in the device's per-tenant histogram set. Tenant keys are
// dss.TenantID values; the scheduler owns the mapping and the decision
// of which requests are attributed.
func (d *Device) ObserveTenantLatency(tenant int, lat time.Duration) {
	d.mu.Lock()
	h := d.tenantHists[tenant]
	if h == nil {
		if d.tenantHists == nil {
			d.tenantHists = make(map[int]*LatencyHist)
		}
		h = &LatencyHist{}
		d.tenantHists[tenant] = h
	}
	h.Observe(lat)
	hv := d.tenantLatLocked(tenant)
	d.mu.Unlock()
	hv.Observe(lat)
}

// LatencySample is one completed-request latency for ObserveLatencyBatch.
// A negative Tenant marks an unattributed request: its latency is
// recorded per class only.
type LatencySample struct {
	Class  int
	Tenant int
	Lat    time.Duration
}

// ObserveLatencyBatch records a batch of request latencies under a
// single lock acquisition — the completion-flush path of the I/O
// scheduler, which otherwise pays one lock round-trip per completed
// request in a coalesced grant. Equivalent to ObserveLatency (plus
// ObserveTenantLatency for attributed samples) per entry.
func (d *Device) ObserveLatencyBatch(samples []LatencySample) {
	if len(samples) == 0 {
		return
	}
	d.mu.Lock()
	for _, s := range samples {
		h := d.hists[s.Class]
		if h == nil {
			if d.hists == nil {
				d.hists = make(map[int]*LatencyHist)
			}
			h = &LatencyHist{}
			d.hists[s.Class] = h
		}
		h.Observe(s.Lat)
		d.classLatLocked(s.Class).Observe(s.Lat)
		if s.Tenant < 0 {
			continue
		}
		th := d.tenantHists[s.Tenant]
		if th == nil {
			if d.tenantHists == nil {
				d.tenantHists = make(map[int]*LatencyHist)
			}
			th = &LatencyHist{}
			d.tenantHists[s.Tenant] = th
		}
		th.Observe(s.Lat)
		d.tenantLatLocked(s.Tenant).Observe(s.Lat)
	}
	d.mu.Unlock()
}

// Stats returns a snapshot of the device counters, including per-class
// and per-tenant latency histograms.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	if len(d.hists) > 0 {
		s.PerClass = make(map[int]LatencyHist, len(d.hists))
		for c, h := range d.hists {
			s.PerClass[c] = *h
		}
	}
	if len(d.tenantHists) > 0 {
		s.PerTenant = make(map[int]LatencyHist, len(d.tenantHists))
		for t, h := range d.tenantHists {
			s.PerTenant[t] = *h
		}
	}
	return s
}

// Reset clears counters, histograms, the queue, and the
// sequential-detection cursor.
func (d *Device) Reset() {
	d.mu.Lock()
	d.stats = Stats{}
	d.hists = nil
	d.tenantHists = nil
	d.nextLBA = -1
	d.mu.Unlock()
	for _, r := range d.res {
		r.Reset()
	}
	if d.bw != nil {
		d.bw.Reset()
	}
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	s := d.Stats()
	return fmt.Sprintf("%s{r=%d w=%d seq=%d rand=%d busy=%v}",
		d.spec.Name, s.Reads, s.Writes, s.SeqAccesses, s.RandAccess, s.BusyTime)
}
