// Package device models block storage devices with simulated service
// times.
//
// The paper's hybrid storage system (Section 5, Table 2) pairs a Seagate
// Cheetah 15.7K RPM HDD with an Intel 320 Series SSD. We reproduce both
// with parametric latency models:
//
//   - HDD: a request that does not continue the previous request's LBA run
//     pays an average seek plus half-rotation latency; all requests pay a
//     transfer cost at the sequential rate. This yields the property the
//     paper's Rule 1 depends on: HDD sequential bandwidth is comparable to
//     SSD bandwidth, while HDD random access is orders of magnitude slower.
//   - SSD: a non-contiguous request pays the per-request random latency
//     (the reciprocal of the device's rated IOPS); all requests pay a
//     transfer cost at the rated sequential bandwidth.
//
// Devices are shared, serially served resources: concurrent request
// streams queue behind one another (see simclock.Resource).
package device

import (
	"fmt"
	"sync"
	"time"

	"hstoragedb/internal/simclock"
)

// BlockSize is the unit of all device I/O in bytes. It matches the 8 KB
// page size of the PostgreSQL prototype the paper instruments.
const BlockSize = 8192

// Op is the direction of an access.
type Op int

const (
	// Read transfers blocks from the device.
	Read Op = iota
	// Write transfers blocks to the device.
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Spec holds the performance parameters of a device model.
type Spec struct {
	Name string

	// SeqReadBps and SeqWriteBps are sequential bandwidths in bytes/s.
	SeqReadBps  float64
	SeqWriteBps float64

	// RandReadLat and RandWriteLat are the positioning penalties paid by a
	// request that does not continue the preceding request's LBA run. For
	// an HDD this is seek + rotational latency; for an SSD it is 1/IOPS.
	RandReadLat  time.Duration
	RandWriteLat time.Duration

	// NearSeekLat, when non-zero, replaces the positioning penalty for
	// jumps shorter than NearDistance blocks (track-to-track seeks on an
	// HDD, e.g. interleaved writes to a handful of temp files). Zero
	// means every discontiguous access pays the full penalty.
	NearSeekLat  time.Duration
	NearDistance int64
}

// Cheetah15K returns the Seagate Cheetah 15.7K RPM 300 GB HDD used at
// level two of the paper's storage hierarchy. 15,000 RPM gives a 2 ms
// average rotational latency; average seek is ~3.4 ms; sustained transfer
// ~150 MB/s.
func Cheetah15K() Spec {
	return Spec{
		Name:         "cheetah-15k7",
		SeqReadBps:   150e6,
		SeqWriteBps:  150e6,
		RandReadLat:  5400 * time.Microsecond, // 3.4 ms seek + 2.0 ms rotation
		RandWriteLat: 5400 * time.Microsecond,
		NearSeekLat:  2700 * time.Microsecond, // 0.7 ms track-to-track + rotation
		NearDistance: 4096,
	}
}

// Intel320 returns the Intel 320 Series 300 GB SSD from Table 2 of the
// paper: 270 MB/s / 205 MB/s sequential read/write, 39.5K / 23K IOPS
// random read/write.
func Intel320() Spec {
	return Spec{
		Name:         "intel-320",
		SeqReadBps:   270e6,
		SeqWriteBps:  205e6,
		RandReadLat:  time.Second / 39500,
		RandWriteLat: time.Second / 23000,
	}
}

// Stats are cumulative counters for one device.
type Stats struct {
	Reads       int64
	Writes      int64
	BlocksRead  int64
	BlocksWrite int64
	SeqAccesses int64 // requests that continued the prior LBA run
	RandAccess  int64 // requests that paid the positioning penalty
	BusyTime    time.Duration
}

// Device is a simulated block device. All methods are safe for concurrent
// use; requests are serialized in arrival order.
type Device struct {
	spec Spec
	res  simclock.Resource

	mu      sync.Mutex
	nextLBA int64 // LBA immediately after the last access; -1 initially
	stats   Stats
}

// New creates a device from a spec.
func New(spec Spec) *Device {
	return &Device{spec: spec, nextLBA: -1}
}

// Spec returns the device's performance parameters.
func (d *Device) Spec() Spec { return d.spec }

// ServiceTime computes how long an access of `blocks` blocks at `lba`
// would take, and updates the sequential-detection cursor. It does not
// schedule the access on the device's queue; Access does both.
func (d *Device) serviceTime(op Op, lba int64, blocks int) time.Duration {
	if blocks <= 0 {
		return 0
	}
	d.mu.Lock()
	sequential := d.nextLBA == lba
	near := false
	if !sequential && d.spec.NearSeekLat > 0 && d.nextLBA >= 0 {
		dist := lba - d.nextLBA
		if dist < 0 {
			dist = -dist
		}
		near = dist < d.spec.NearDistance
	}
	d.nextLBA = lba + int64(blocks)
	if sequential {
		d.stats.SeqAccesses++
	} else {
		d.stats.RandAccess++
	}
	switch op {
	case Read:
		d.stats.Reads++
		d.stats.BlocksRead += int64(blocks)
	case Write:
		d.stats.Writes++
		d.stats.BlocksWrite += int64(blocks)
	}
	d.mu.Unlock()

	var svc time.Duration
	bytes := float64(blocks) * BlockSize
	switch op {
	case Read:
		svc = time.Duration(bytes / d.spec.SeqReadBps * float64(time.Second))
		switch {
		case sequential:
		case near:
			svc += d.spec.NearSeekLat
		default:
			svc += d.spec.RandReadLat
		}
	case Write:
		svc = time.Duration(bytes / d.spec.SeqWriteBps * float64(time.Second))
		switch {
		case sequential:
		case near:
			svc += d.spec.NearSeekLat
		default:
			svc += d.spec.RandWriteLat
		}
	}
	d.mu.Lock()
	d.stats.BusyTime += svc
	d.mu.Unlock()
	return svc
}

// Access schedules a request arriving at virtual time `at` and returns its
// completion time. Concurrent callers queue in arrival order.
func (d *Device) Access(at time.Duration, op Op, lba int64, blocks int) time.Duration {
	svc := d.serviceTime(op, lba, blocks)
	return d.res.Serve(at, svc)
}

// AccessBackground schedules work that no requester waits on (asynchronous
// flushes). The device is occupied but the caller's clock should not be
// advanced to the returned completion time.
func (d *Device) AccessBackground(at time.Duration, op Op, lba int64, blocks int) time.Duration {
	svc := d.serviceTime(op, lba, blocks)
	return d.res.ServeBackground(at, svc)
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Reset clears counters, the queue, and the sequential-detection cursor.
func (d *Device) Reset() {
	d.mu.Lock()
	d.stats = Stats{}
	d.nextLBA = -1
	d.mu.Unlock()
	d.res.Reset()
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	s := d.Stats()
	return fmt.Sprintf("%s{r=%d w=%d seq=%d rand=%d busy=%v}",
		d.spec.Name, s.Reads, s.Writes, s.SeqAccesses, s.RandAccess, s.BusyTime)
}
