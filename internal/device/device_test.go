package device

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestSequentialDetection(t *testing.T) {
	d := New(Cheetah15K())
	// First access is positional (cursor unknown).
	d.Access(0, Read, 100, 4)
	// Contiguous continuation: no positioning penalty.
	before := d.Stats()
	done := d.Access(d.Stats().BusyTime, Read, 104, 4)
	after := d.Stats()
	if after.SeqAccesses != before.SeqAccesses+1 {
		t.Fatalf("contiguous access not detected as sequential")
	}
	bps := 150e6
	transfer := time.Duration(float64(4*BlockSize) / bps * float64(time.Second))
	svc := after.BusyTime - before.BusyTime
	if svc < transfer-time.Microsecond || svc > transfer+time.Microsecond {
		t.Fatalf("sequential service %v, want ~%v", svc, transfer)
	}
	_ = done
}

func TestRandomPaysSeek(t *testing.T) {
	d := New(Cheetah15K())
	d.Access(0, Read, 0, 1)
	before := d.Stats().BusyTime
	d.Access(0, Read, 1_000_000, 1)
	svc := d.Stats().BusyTime - before
	if svc < Cheetah15K().RandReadLat {
		t.Fatalf("far jump service %v < seek %v", svc, Cheetah15K().RandReadLat)
	}
}

func TestNearSeekCheaper(t *testing.T) {
	spec := Cheetah15K()
	d := New(spec)
	d.Access(0, Read, 0, 1)
	before := d.Stats().BusyTime
	d.Access(0, Read, 100, 1) // within NearDistance
	nearSvc := d.Stats().BusyTime - before

	before = d.Stats().BusyTime
	d.Access(0, Read, 1_000_000, 1) // far
	farSvc := d.Stats().BusyTime - before
	if nearSvc >= farSvc {
		t.Fatalf("near seek %v not cheaper than far seek %v", nearSvc, farSvc)
	}
}

func TestSSDRandomFasterThanHDD(t *testing.T) {
	ssd := New(Intel320())
	hdd := New(Cheetah15K())
	// Alternate far-apart single-block reads.
	var ssdDone, hddDone time.Duration
	for i := 0; i < 100; i++ {
		lba := int64(i * 100000)
		ssdDone = ssd.Access(0, Read, lba, 1)
		hddDone = hdd.Access(0, Read, lba, 1)
	}
	if !(ssdDone*10 < hddDone) {
		t.Fatalf("SSD random (%v) should be >10x faster than HDD (%v)", ssdDone, hddDone)
	}
}

func TestHDDSequentialComparableToSSD(t *testing.T) {
	// Rule 1's premise: HDD sequential bandwidth is comparable to SSD's
	// (within ~2x), unlike the 100x random gap.
	ssd := New(Intel320())
	hdd := New(Cheetah15K())
	var ssdDone, hddDone time.Duration
	for i := 0; i < 1000; i++ {
		ssdDone = ssd.Access(0, Read, int64(i)*8, 8)
		hddDone = hdd.Access(0, Read, int64(i)*8, 8)
	}
	if hddDone > 3*ssdDone {
		t.Fatalf("HDD sequential (%v) should be within ~2-3x of SSD (%v)", hddDone, ssdDone)
	}
}

func TestTable2Specs(t *testing.T) {
	// The Intel 320 numbers of Table 2.
	s := Intel320()
	if s.SeqReadBps != 270e6 || s.SeqWriteBps != 205e6 {
		t.Fatalf("sequential rates %v/%v", s.SeqReadBps, s.SeqWriteBps)
	}
	// 39.5K read IOPS -> ~25.3us; 23K write IOPS -> ~43.5us.
	if s.RandReadLat < 25*time.Microsecond || s.RandReadLat > 26*time.Microsecond {
		t.Fatalf("rand read lat %v", s.RandReadLat)
	}
	if s.RandWriteLat < 43*time.Microsecond || s.RandWriteLat > 44*time.Microsecond {
		t.Fatalf("rand write lat %v", s.RandWriteLat)
	}
}

func TestCounters(t *testing.T) {
	d := New(Intel320())
	d.Access(0, Read, 0, 4)
	d.Access(0, Write, 100, 2)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.BlocksRead != 4 || s.BlocksWrite != 2 {
		t.Fatalf("counters %+v", s)
	}
	d.Reset()
	if s := d.Stats(); s.Reads != 0 || s.Writes != 0 || s.BusyTime != 0 || s.PerClass != nil {
		t.Fatalf("reset left %+v", s)
	}
}

func TestZeroBlockAccessFree(t *testing.T) {
	d := New(Cheetah15K())
	d.Access(0, Read, 0, 64)
	before := d.Stats()
	done := d.Access(time.Second, Read, 0, 0)
	if !reflect.DeepEqual(d.Stats(), before) {
		t.Fatalf("zero-length access changed counters")
	}
	if done != time.Second {
		t.Fatalf("zero-length access took time: %v", done)
	}
}

// Property: completion time is monotonically non-decreasing across
// submissions (device serializes).
func TestCompletionMonotonic(t *testing.T) {
	d := New(Intel320())
	f := func(lbas []int64, sizes []uint8) bool {
		var last time.Duration
		n := len(lbas)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			blocks := int(sizes[i]%32) + 1
			lba := lbas[i]
			if lba < 0 {
				lba = -lba
			}
			done := d.Access(0, Read, lba, blocks)
			if done < last {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
