package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// Get-or-create: the same name+labels yields the same instrument, label
// order does not matter, and different labels yield different ones.
func TestRegistryCanonicalKeys(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x.y", L("dev", "ssd"), L("class", "2"))
	b := r.Counter("x.y", L("class", "2"), L("dev", "ssd"))
	if a != b {
		t.Fatal("label order changed instrument identity")
	}
	c := r.Counter("x.y", L("dev", "hdd"), L("class", "2"))
	if a == c {
		t.Fatal("different labels shared an instrument")
	}
	a.Add(3)
	a.Inc()
	if b.Value() != 4 {
		t.Fatalf("counter = %d, want 4", b.Value())
	}
	// Negative deltas are ignored: counters only go up.
	a.Add(-2)
	if a.Value() != 4 {
		t.Fatalf("counter after Add(-2) = %d, want 4", a.Value())
	}
}

func TestGaugeSetMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("dev.busy")
	g.SetMax(10)
	g.SetMax(5)
	if g.Value() != 10 {
		t.Fatalf("SetMax went backwards: %d", g.Value())
	}
	g.SetMax(20)
	if g.Value() != 20 {
		t.Fatalf("SetMax did not advance: %d", g.Value())
	}
}

// Snapshot order is deterministic (counters, gauges, histograms; name
// order within a kind), so Format output is byte-stable.
func TestRegistryFormatDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("b.count").Inc()
		r.Counter("a.count", L("dev", "x")).Add(2)
		r.Gauge("g.v").Set(7)
		r.Histogram("lat").Observe(30 * time.Microsecond)
		r.HistogramWith(CountBounds(), "count", "batch").Observe(3)
		return r.Format()
	}
	d1, d2 := build(), build()
	if d1 != d2 {
		t.Fatalf("Format not deterministic:\n%s\nvs\n%s", d1, d2)
	}
	lines := strings.Split(strings.TrimRight(d1, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), d1)
	}
	if !strings.HasPrefix(lines[0], "counter") || !strings.Contains(lines[0], "a.count{dev=x}") {
		t.Errorf("line 0 = %q, want counter a.count{dev=x} first", lines[0])
	}
	if !strings.Contains(lines[3], "batch") || !strings.Contains(lines[3], "mean=3.0") || !strings.Contains(lines[3], "p50=3") {
		t.Errorf("count histogram line = %q", lines[3])
	}
}

// Reset zeroes values but keeps the instruments: pointers cached by
// subsystems stay live across experiment boundaries.
func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("lat")
	c.Add(5)
	h.Observe(time.Millisecond)
	r.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter survived reset: %d", c.Value())
	}
	if got := h.Snapshot(); got.Count != 0 {
		t.Fatalf("histogram survived reset: %d", got.Count)
	}
	c.Inc()
	if r.Counter("n").Value() != 1 {
		t.Fatal("cached counter detached from registry after reset")
	}
}

// Nil receivers are inert everywhere, so instrumentation sites never
// need guards.
func TestNilSafety(t *testing.T) {
	var set *Set
	if set.Registry() != nil || set.Trace() != nil {
		t.Fatal("nil set yielded non-nil sinks")
	}
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	if r.Format() != "" {
		t.Fatal("nil registry formatted non-empty")
	}
	var tr *Tracer
	if tr.SampleRequest() {
		t.Fatal("nil tracer sampled")
	}
	tr.Span("a", "b", 0, 0, 0, nil)
	tr.Instant("a", "b", 0, 0, nil)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded")
	}
}

// The ring buffer keeps the newest spans and counts the overwritten
// ones.
func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(TraceConfig{Capacity: 4})
	for i := 0; i < 10; i++ {
		tr.Span("c", "s", 1, time.Duration(i), 1, nil)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.Spans()
	if spans[0].Start != 6 || spans[3].Start != 9 {
		t.Fatalf("kept spans %v..%v, want 6..9", spans[0].Start, spans[3].Start)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(TraceConfig{SampleEvery: 3})
	admitted := 0
	for i := 0; i < 9; i++ {
		if tr.SampleRequest() {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted = %d of 9 with SampleEvery=3, want 3", admitted)
	}
	one := NewTracer(TraceConfig{})
	for i := 0; i < 5; i++ {
		if !one.SampleRequest() {
			t.Fatal("default sampling rejected a request")
		}
	}
}

// The Chrome trace output is valid JSON with microsecond timestamps,
// "X" complete events for spans and "i" instants for zero-duration
// marks.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(TraceConfig{})
	tr.Span("device", "service", 2, 1500*time.Nanosecond, 2*time.Microsecond,
		map[string]any{"dev": "ssd"})
	tr.Instant("lockmgr", "wait", 1, 3*time.Microsecond, nil)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int64          `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	e0 := doc.TraceEvents[0]
	if e0.Ph != "X" || e0.TS != 1.5 || e0.Dur != 2 || e0.Tid != 2 || e0.Args["dev"] != "ssd" {
		t.Errorf("span event = %+v", e0)
	}
	e1 := doc.TraceEvents[1]
	if e1.Ph != "i" || e1.Cat != "lockmgr" || e1.TS != 3 {
		t.Errorf("instant event = %+v", e1)
	}
}

// JSONSnapshot rounds count-unit quantiles up like Format does.
func TestJSONSnapshotCountUnit(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith(CountBounds(), "count", "batch")
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	m := r.JSONSnapshot()["batch"].(map[string]any)
	if m["p50"].(int64) != 1 || m["max"].(int64) != 1 {
		t.Fatalf("count snapshot = %v", m)
	}
	if m["unit"].(string) != "count" {
		t.Fatalf("unit = %v", m["unit"])
	}
}
