package obs_test

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/hybrid"
	"hstoragedb/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace and metrics files")

// goldenRun drives a small fixed-seed workload through a full HStorage
// storage system — priority cache, both devices, the QoS scheduler —
// with every request sampled, and returns the Chrome trace JSON and the
// metrics dump. Everything runs on the simulated clock from a single
// goroutine, so two runs must agree byte for byte.
func goldenRun(t *testing.T) ([]byte, string) {
	t.Helper()
	set := &obs.Set{
		Reg:    obs.NewRegistry(),
		Tracer: obs.NewTracer(obs.TraceConfig{SampleEvery: 1}),
	}
	sys, err := hybrid.New(hybrid.Config{
		Mode:        hybrid.HStorage,
		CacheBlocks: 128,
		Obs:         set,
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(12))
	space := dss.DefaultPolicySpace()
	at := time.Duration(0)
	for i := 0; i < 80; i++ {
		op := device.Read
		if rng.Intn(3) == 0 {
			op = device.Write
		}
		class := dss.Class(space.RandLow + rng.Intn(space.RandHigh-space.RandLow+1))
		switch rng.Intn(8) {
		case 0:
			class = dss.ClassLog
		case 1:
			class = dss.Class(space.T) // sequential: prefetched, not cached
		}
		req := dss.Request{
			Op:     op,
			LBA:    int64(rng.Intn(1024)),
			Blocks: 1 + rng.Intn(4),
			Class:  class,
		}
		done := sys.Submit(at, req)
		if done < at {
			t.Fatalf("request %d completed at %v before submission at %v", i, done, at)
		}
		at += time.Duration(rng.Intn(300)) * time.Microsecond
	}

	var buf bytes.Buffer
	if err := set.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if set.Tracer.Dropped() != 0 {
		t.Fatalf("trace ring overflowed (%d dropped): shrink the workload or raise capacity", set.Tracer.Dropped())
	}
	return buf.Bytes(), set.Reg.Format()
}

// Determinism contract of the tentpole: a fixed-seed workload traced
// with every request sampled produces byte-identical trace JSON and
// metrics dumps on every run, and they match the committed golden
// files. Regenerate with `go test ./internal/obs -run Golden -update`.
func TestGoldenDeterminism(t *testing.T) {
	trace1, metrics1 := goldenRun(t)
	trace2, metrics2 := goldenRun(t)
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("two identical runs produced different traces")
	}
	if metrics1 != metrics2 {
		t.Fatal("two identical runs produced different metrics dumps")
	}

	tracePath := filepath.Join("testdata", "golden_trace.json")
	metricsPath := filepath.Join("testdata", "golden_metrics.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tracePath, trace1, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(metricsPath, []byte(metrics1), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden files updated (%d trace bytes, %d metrics bytes)", len(trace1), len(metrics1))
		return
	}

	wantTrace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(trace1, wantTrace) {
		t.Errorf("trace deviates from %s (%d vs %d bytes): the span stream changed; "+
			"if intentional, regenerate with -update", tracePath, len(trace1), len(wantTrace))
	}
	wantMetrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update)", err)
	}
	if metrics1 != string(wantMetrics) {
		t.Errorf("metrics dump deviates from %s; if intentional, regenerate with -update", metricsPath)
	}
}

// Concurrent submissions from many goroutines must be race-clean (the
// golden byte-compare holds only for single-threaded runs; here only
// aggregate totals are checked).
func TestTraceConcurrentRaceClean(t *testing.T) {
	set := obs.NewSet()
	sys, err := hybrid.New(hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 64, Obs: set})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(g)))
			at := time.Duration(0)
			for i := 0; i < 200; i++ {
				sys.Submit(at, dss.Request{
					Op:     device.Read,
					LBA:    int64(rng.Intn(512)),
					Blocks: 1,
					Class:  dss.Class(2 + rng.Intn(5)),
				})
				at += time.Duration(rng.Intn(100)) * time.Microsecond
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if set.Tracer.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	reads := set.Reg.Counter("iosched.submitted", obs.L("dev", "intel-320")).Value() +
		set.Reg.Counter("iosched.submitted", obs.L("dev", "cheetah-15k7")).Value()
	if reads == 0 {
		t.Fatal("no submissions counted")
	}
}
