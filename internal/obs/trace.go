package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one traced interval on the simulated timeline: a request's
// stay in a queue, a device service, a lock wait, a group-commit flush.
// Instant events carry Dur == 0.
type Span struct {
	// Cat is the subsystem category ("iosched", "device", "wal", ...).
	Cat string
	// Name is the event within the category ("queue.wait",
	// "device.service", "lock.wait", ...).
	Name string
	// TID identifies the logical track the span belongs to — the
	// request stream's clock ID, or a transaction ID for engine spans.
	TID int64
	// Start is the span's begin instant in simulated time.
	Start time.Duration
	// Dur is the span's length in simulated time (0 for instants).
	Dur time.Duration
	// Args carries small key→value annotations (LBA, blocks, class).
	Args map[string]any
}

// TraceConfig sizes and throttles a Tracer.
type TraceConfig struct {
	// Capacity bounds the span ring buffer; once full, the oldest spans
	// are overwritten and Dropped counts them. 0 selects the default
	// (65536 spans).
	Capacity int
	// SampleEvery admits every Nth request into the tracer's sampling
	// gate (SampleRequest); 0 or 1 admits everything. Spans recorded
	// outside the gate are unaffected — the gate is advisory, consulted
	// by the request-path instrumentation.
	SampleEvery int
}

// defaultTraceCapacity is the ring size when TraceConfig.Capacity is 0.
const defaultTraceCapacity = 65536

// Tracer collects Spans into a bounded ring buffer. All methods are
// safe for concurrent use and nil-safe: a nil *Tracer drops everything,
// so instrumentation sites never need guards.
type Tracer struct {
	mu      sync.Mutex
	ring    []Span
	next    int   // ring index of the next write
	n       int   // spans currently stored (≤ len(ring))
	dropped int64 // spans overwritten after the ring filled

	sampleEvery int64
	reqSeq      atomic.Int64
}

// NewTracer returns a tracer sized by cfg.
func NewTracer(cfg TraceConfig) *Tracer {
	capn := cfg.Capacity
	if capn <= 0 {
		capn = defaultTraceCapacity
	}
	se := int64(cfg.SampleEvery)
	if se < 1 {
		se = 1
	}
	return &Tracer{ring: make([]Span, capn), sampleEvery: se}
}

// SampleRequest advances the sampling gate and reports whether the
// caller's request is admitted (every SampleEvery-th is). Nil-safe: a
// nil tracer admits nothing.
func (t *Tracer) SampleRequest() bool {
	if t == nil {
		return false
	}
	n := t.reqSeq.Add(1)
	return (n-1)%t.sampleEvery == 0
}

// Span records an interval event. Nil-safe.
func (t *Tracer) Span(cat, name string, tid int64, start, dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.record(Span{Cat: cat, Name: name, TID: tid, Start: start, Dur: dur, Args: args})
}

// Instant records a zero-duration event. Nil-safe.
func (t *Tracer) Instant(cat, name string, tid int64, at time.Duration, args map[string]any) {
	t.Span(cat, name, tid, at, 0, args)
}

// record appends to the ring, overwriting the oldest span when full.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Dropped reports how many spans were overwritten after the ring
// filled. Nil-safe.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports how many spans are currently stored. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Reset discards all stored spans and rewinds the sampling gate.
// Nil-safe.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.next, t.n, t.dropped = 0, 0, 0
	t.reqSeq.Store(0)
	t.mu.Unlock()
}

// Spans returns the stored spans in canonical order: by Start, then
// TID, then Cat, Name, and Dur. Concurrent streams may record
// interleaved in scheduling order, but simulated timestamps are
// deterministic, so the canonical sort makes the returned slice — and
// everything exported from it — byte-for-byte reproducible for a fixed
// seed. Nil-safe.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, 0, t.n)
	start := 0
	if t.n == len(t.ring) {
		start = t.next
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Dur < b.Dur
	})
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// as consumed by Perfetto and chrome://tracing. ph "X" is a complete
// (duration) event; timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the top-level JSON object of a Chrome trace file.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace writes the stored spans as a Chrome trace-event JSON
// file loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. All
// spans share pid 1; tid is the span's stream/transaction track. The
// output is deterministic: spans are canonically sorted and
// encoding/json sorts args keys. Nil-safe (writes an empty trace).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			PID:  1,
			TID:  s.TID,
			TS:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			Args: s.Args,
		}
		if s.Dur == 0 {
			ev.Ph = "i" // instant event
		}
		events = append(events, ev)
	}
	file := chromeTraceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"spans":   len(spans),
			"dropped": t.Dropped(),
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}
