package obs

import (
	"testing"
	"time"
)

// Exact quantiles on a uniform distribution over hand-picked bounds:
// with 10 samples in each of four equal buckets, the interpolated
// quantiles land exactly on the bucket edges.
func TestQuantileUniform(t *testing.T) {
	h := NewHistogram([]time.Duration{10, 20, 30, 40})
	for v := time.Duration(1); v <= 40; v++ {
		h.Observe(v)
	}
	if h.Count != 40 {
		t.Fatalf("count = %d, want 40", h.Count)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.25, 10},
		{0.50, 20},
		{0.75, 30},
		{1.00, 40},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := h.Mean(); got != 20 { // (1+...+40)/40 = 20.5 truncated
		t.Errorf("Mean = %v, want 20", got)
	}
}

// Interpolation inside one bucket: the bucket's upper bound is clamped
// to the recorded maximum, so the estimate never exceeds a value that
// was actually seen.
func TestQuantileInterpolationClampsToMax(t *testing.T) {
	h := NewHistogram([]time.Duration{100})
	for i := 0; i < 4; i++ {
		h.Observe(50)
	}
	// rank(0.5) = 2 of 4 in bucket [0,100] clamped to [0,50]: 0.5 in.
	if got := h.Quantile(0.5); got != 25 {
		t.Errorf("Quantile(0.5) = %v, want 25", got)
	}
	if got := h.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %v, want 50 (clamped to max)", got)
	}
}

// Samples past the last bound land in the overflow bucket, whose
// quantile estimate is the exact recorded maximum.
func TestQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram([]time.Duration{10})
	h.Observe(5)
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.9); got != 200 {
		t.Errorf("Quantile(0.9) = %v, want max 200", got)
	}
	// The first bucket still interpolates: rank 0.3 of 1 sample in
	// [0,10] → 3.
	if got := h.Quantile(0.1); got != 3 {
		t.Errorf("Quantile(0.1) = %v, want 3", got)
	}
	if h.Buckets[1] != 2 {
		t.Errorf("overflow bucket = %d, want 2", h.Buckets[1])
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
	if h.Max != 0 || h.Count != 0 || h.Sum != 0 {
		t.Errorf("empty summary = %d/%v/%v, want zeros", h.Count, h.Sum, h.Max)
	}
	if got := len(h.Bounds()); got != len(defaultLatencyBounds) {
		t.Errorf("zero value bounds = %d entries, want the default ladder's %d",
			got, len(defaultLatencyBounds))
	}
}

func TestObserveClampsNegative(t *testing.T) {
	var h Histogram
	h.Observe(-5 * time.Millisecond)
	if h.Sum != 0 || h.Max != 0 || h.Count != 1 {
		t.Errorf("after Observe(-5ms): count=%d sum=%v max=%v, want 1/0/0", h.Count, h.Sum, h.Max)
	}
	if h.Buckets[0] != 1 {
		t.Errorf("negative sample not in first bucket")
	}
}

// Merge folds bucket-by-bucket; an empty histogram adopts the other's
// bound table so device SSD+HDD views combine without pre-declaring
// bounds.
func TestMergeAdoptsBounds(t *testing.T) {
	o := NewHistogram(CountBounds())
	o.Observe(3)
	o.Observe(5)
	var h Histogram
	h.Merge(o)
	h.Merge(o)
	if h.Count != 4 || h.Sum != 16 || h.Max != 5 {
		t.Fatalf("merged summary = %d/%v/%v, want 4/16/5", h.Count, h.Sum, h.Max)
	}
	if got, want := h.Bounds()[0], time.Duration(1); got != want {
		t.Errorf("merged bounds[0] = %v, want adopted count bound %v", got, want)
	}
	// All four samples sit in count buckets (3 → (2,4], 5 → (4,8]).
	if h.Buckets[2] != 2 || h.Buckets[3] != 2 {
		t.Errorf("merged buckets = %v", h.Buckets[:5])
	}
}

// A count histogram of all-ones: the raw interpolated p50 is fractional
// (0.5), which the registry's display rounds up; the histogram itself
// must report max and mean exactly.
func TestCountBoundsBatchOfOnes(t *testing.T) {
	h := NewHistogram(CountBounds())
	for i := 0; i < 184; i++ {
		h.Observe(1)
	}
	if h.Max != 1 || h.Mean() != 1 {
		t.Errorf("max=%v mean=%v, want 1/1", h.Max, h.Mean())
	}
	if got := countQ(h, 0.50); got != 1 {
		t.Errorf("countQ(0.50) = %d, want 1", got)
	}
	if got := countQ(h, 0.99); got != 1 {
		t.Errorf("countQ(0.99) = %d, want 1", got)
	}
}

// The bound table caps at MaxHistogramBuckets-1 entries so the overflow
// slot always exists.
func TestNewHistogramTruncatesBounds(t *testing.T) {
	bounds := make([]time.Duration, MaxHistogramBuckets+5)
	for i := range bounds {
		bounds[i] = time.Duration(i + 1)
	}
	h := NewHistogram(bounds)
	if got := len(h.Bounds()); got != MaxHistogramBuckets-1 {
		t.Errorf("bounds kept = %d, want %d", got, MaxHistogramBuckets-1)
	}
	// An overflowing sample must still have a slot.
	h.Observe(time.Hour)
	if h.Buckets[MaxHistogramBuckets-1] != 1 {
		t.Errorf("overflow slot not used")
	}
}

// Out-of-range q values clamp instead of panicking.
func TestQuantileClampsQ(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Microsecond)
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("Quantile(2) = %v, want Quantile(1) = %v", got, h.Quantile(1))
	}
	if got := h.Quantile(-1); got < 0 {
		t.Errorf("Quantile(-1) = %v, want >= 0", got)
	}
}
