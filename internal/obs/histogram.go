package obs

import "time"

// defaultLatencyBounds are the upper bounds of the default histogram
// buckets: the latency ladder the device layer has always used. The last
// implicit bucket is +Inf. The spacing is roughly logarithmic, wide
// enough to separate an SSD cache hit (~tens of microseconds) from a
// queued HDD random access (~tens of milliseconds).
var defaultLatencyBounds = []time.Duration{
	20 * time.Microsecond, 50 * time.Microsecond, 100 * time.Microsecond,
	200 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2 * time.Second, 5 * time.Second,
}

// MaxHistogramBuckets is the most buckets (bound table entries plus the
// overflow slot) any Histogram can hold. The count array is fixed-size
// so a Histogram copies by value: snapshots taken while the original
// keeps updating share nothing mutable.
const MaxHistogramBuckets = 24

// DefaultLatencyBounds returns (a copy of) the default bucket-bound
// table used by the zero-value Histogram.
func DefaultLatencyBounds() []time.Duration {
	return append([]time.Duration(nil), defaultLatencyBounds...)
}

// CountBounds returns a power-of-two bound table for histograms over
// small integer samples (group-commit batch sizes, queue depths)
// recorded as time.Duration(n). Quantiles then interpolate between
// powers of two instead of collapsing into the first latency bucket.
func CountBounds() []time.Duration {
	return []time.Duration{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
}

// Histogram is the single shared fixed-bucket histogram of the
// observability layer (lifted from the device layer's latency
// histogram, which is now an alias of this type). It records samples —
// latencies, or small integers disguised as durations — into a bound
// table plus an overflow slot, and estimates quantiles by linear
// interpolation inside the containing bucket.
//
// The zero value is an empty histogram over the default latency bounds.
// A Histogram is a plain value (not safe for concurrent use on its own);
// copying one yields an independent snapshot. Registry histograms wrap
// it in a HistVar, which adds the lock.
type Histogram struct {
	// bounds is the shared immutable upper-bound table; nil means the
	// default latency ladder. It is never mutated after construction, so
	// value copies may alias it safely.
	bounds []time.Duration

	// Buckets counts samples at most the matching entry of the bound
	// table; the slot at index len(bounds) counts overflows. Slots past
	// the overflow slot are unused.
	Buckets [MaxHistogramBuckets]int64
	// Count, Sum and Max summarize the recorded samples exactly.
	Count int64
	Sum   time.Duration
	Max   time.Duration
}

// NewHistogram returns an empty histogram over a custom bound table
// (ascending; at most MaxHistogramBuckets-1 entries, extras dropped).
// The table is copied, so the caller may reuse its slice.
func NewHistogram(bounds []time.Duration) Histogram {
	if len(bounds) > MaxHistogramBuckets-1 {
		bounds = bounds[:MaxHistogramBuckets-1]
	}
	return Histogram{bounds: append([]time.Duration(nil), bounds...)}
}

// boundTable returns the active bound table.
func (h *Histogram) boundTable() []time.Duration {
	if h.bounds == nil {
		return defaultLatencyBounds
	}
	return h.bounds
}

// Bounds returns (a copy of) the histogram's bucket bound table.
func (h *Histogram) Bounds() []time.Duration {
	return append([]time.Duration(nil), h.boundTable()...)
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v time.Duration) {
	if v < 0 {
		v = 0
	}
	bounds := h.boundTable()
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Merge folds another histogram into h (used to combine the SSD and HDD
// views of one request class). Both histograms must share a bound
// table; an empty h adopts o's.
func (h *Histogram) Merge(o Histogram) {
	if h.bounds == nil && o.bounds != nil {
		h.bounds = o.bounds
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Mean returns the average recorded sample.
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket that contains it. The estimate for the overflow
// bucket is the recorded maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	return time.Duration(h.QuantileF(q))
}

// QuantileF is Quantile at float precision: count-unit histograms need
// the fractional part to round estimates up to the whole sample values
// they stand for, which Quantile's truncation would discard.
func (h *Histogram) QuantileF(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	bounds := h.boundTable()
	rank := q * float64(h.Count)
	var cum float64
	for i := 0; i <= len(bounds); i++ {
		n := h.Buckets[i]
		cum += float64(n)
		if cum < rank || n == 0 {
			continue
		}
		if i >= len(bounds) {
			return float64(h.Max)
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if hi > h.Max {
			hi = h.Max
		}
		if hi < lo {
			return float64(lo)
		}
		frac := 1 - (cum-rank)/float64(n)
		return float64(lo) + frac*float64(hi-lo)
	}
	return float64(h.Max)
}
