// Package obs is the engine-wide observability layer: a metrics
// registry shared by every subsystem and a deterministic request tracer
// stamped on the simulated clock.
//
// The paper's argument rests on where requests spend time — class
// queues, device positioning, cache hits — so every layer of the
// reproduction (iosched, device, hybrid cache, buffer pool, lock
// manager, WAL, transactions) registers counters, gauges, and
// histograms here under stable dotted names (`iosched.band.wait`,
// `bufferpool.miss`, `wal.groupcommit.batch`, ...) with optional
// per-class and per-tenant labels. Because all latencies are simulated,
// a fixed seed yields byte-for-byte identical metric dumps and traces,
// which makes both golden-testable — something real engines cannot do.
//
// Everything is nil-safe: a nil *Registry hands out inert instruments
// and a nil *Tracer drops spans, so uninstrumented construction paths
// (unit tests, standalone caches) need no guards.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Set bundles the two observability sinks a subsystem may be handed:
// the metrics registry and the request tracer. A nil *Set (or nil
// fields) disables the corresponding sink.
type Set struct {
	// Reg is the metrics registry, or nil to disable metrics.
	Reg *Registry
	// Tracer records request spans, or nil to disable tracing.
	Tracer *Tracer
}

// NewSet returns a Set with a fresh registry and a tracer using the
// default ring capacity and no sampling.
func NewSet() *Set {
	return &Set{Reg: NewRegistry(), Tracer: NewTracer(TraceConfig{})}
}

// Registry returns the set's registry; nil-safe (a nil Set yields a nil
// registry, whose instruments are inert).
func (s *Set) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.Reg
}

// Trace returns the set's tracer; nil-safe (a nil Set yields a nil
// tracer, which drops all spans).
func (s *Set) Trace() *Tracer {
	if s == nil {
		return nil
	}
	return s.Tracer
}

// With derives a set whose registry stamps the given labels onto every
// instrument (see Registry.With); the tracer is shared unchanged. The
// shard layer hands each engine stack a `shard=<id>` view so one
// registry holds every shard's metrics side by side. Nil-safe.
func (s *Set) With(labels ...Label) *Set {
	if s == nil {
		return nil
	}
	return &Set{Reg: s.Reg.With(labels...), Tracer: s.Tracer}
}

// Label is one key=value dimension attached to a metric, e.g. class or
// tenant. Labels are part of the metric's identity in the registry.
type Label struct {
	// Key is the dimension name ("class", "tenant", "dev").
	Key string
	// Value is the dimension value, already rendered to a string.
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// smallInts interns the rendered strings of the small non-negative
// integers, which cover essentially every class rank, tenant ID and
// shard number a run ever labels: hot paths that build labels per
// lookup (per-class histograms, per-tenant counters) must not allocate
// for the common values.
var smallInts = func() [256]string {
	var a [256]string
	for i := range a {
		a[i] = strconv.Itoa(i)
	}
	return a
}()

// LInt is shorthand for a Label with an integer value (class ranks,
// tenant IDs). Small non-negative values render allocation-free.
func LInt(key string, value int64) Label {
	if value >= 0 && value < int64(len(smallInts)) {
		return Label{Key: key, Value: smallInts[value]}
	}
	return Label{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Counter is a monotonically increasing metric. Updates are single
// atomic adds; a nil Counter is inert.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by d (negative deltas are ignored to keep
// the counter monotone).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Inc increases the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move in both directions (device busy
// horizon, queue depth). Updates are single atomic stores/adds; a nil
// Gauge is inert.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger than the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Add moves the gauge by d (either direction).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistVar is a registered histogram: the shared Histogram value guarded
// by a mutex so concurrent streams can observe into it. A nil HistVar
// is inert.
type HistVar struct {
	mu sync.Mutex
	h  Histogram
	// unit describes how samples should be rendered: "ns" for real
	// durations, "count" for integers recorded as time.Duration(n).
	unit string
}

// Observe records one sample.
func (hv *HistVar) Observe(v time.Duration) {
	if hv == nil {
		return
	}
	hv.mu.Lock()
	hv.h.Observe(v)
	hv.mu.Unlock()
}

// Snapshot returns an independent copy of the histogram.
func (hv *HistVar) Snapshot() Histogram {
	if hv == nil {
		return Histogram{}
	}
	hv.mu.Lock()
	defer hv.mu.Unlock()
	return hv.h
}

// Unit reports the sample unit ("ns" or "count").
func (hv *HistVar) Unit() string {
	if hv == nil {
		return ""
	}
	return hv.unit
}

// Registry is the process-wide metric table: dotted name + sorted
// labels identify each instrument, created on first use and shared by
// every later lookup. Lookups take the registry lock once; the returned
// instrument is then updated with plain atomics, so hot paths cache the
// instrument, not the name.
//
// A Registry value is a view onto shared state: With derives a view
// that stamps extra labels onto every instrument it hands out, which is
// how per-shard engine stacks register `wal.appends{shard=2}` and
// friends without any layer knowing it runs inside a shard.
type Registry struct {
	s *regState
	// base labels are appended to every lookup through this view.
	base []Label
}

// regState is the shared instrument table behind one registry and all
// of its derived views.
type regState struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*HistVar
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		s: &regState{
			counters: make(map[string]*Counter),
			gauges:   make(map[string]*Gauge),
			hists:    make(map[string]*HistVar),
		},
	}
}

// With returns a view of the registry whose instruments all carry the
// given labels in addition to any per-lookup labels. The view shares
// the parent's instrument table: snapshots and dumps of either show
// both. Nil-safe (a nil registry derives a nil view).
func (r *Registry) With(labels ...Label) *Registry {
	if r == nil {
		return nil
	}
	base := append(append([]Label(nil), r.base...), labels...)
	return &Registry{s: r.s, base: base}
}

// withBase merges the view's base labels with the per-lookup ones.
func (r *Registry) withBase(labels []Label) []Label {
	if len(r.base) == 0 {
		return labels
	}
	return append(append([]Label(nil), r.base...), labels...)
}

// key renders the canonical identity: name{k1=v1,k2=v2} with label keys
// sorted, or the bare name without labels.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating on first use) the counter registered under
// name and labels. Nil-safe: a nil registry returns a nil, inert
// counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := key(name, r.withBase(labels))
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	c := r.s.counters[k]
	if c == nil {
		c = &Counter{}
		r.s.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge registered under name
// and labels. Nil-safe.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := key(name, r.withBase(labels))
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	g := r.s.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.s.gauges[k] = g
	}
	return g
}

// Histogram returns (creating on first use) a latency histogram over
// the default bucket ladder, registered under name and labels.
// Nil-safe.
func (r *Registry) Histogram(name string, labels ...Label) *HistVar {
	return r.HistogramWith(nil, "ns", name, labels...)
}

// HistogramWith returns (creating on first use) a histogram over a
// custom bound table and unit ("ns" or "count"); nil bounds select the
// default latency ladder. The bounds and unit of the first registration
// win. Nil-safe.
func (r *Registry) HistogramWith(bounds []time.Duration, unit string, name string, labels ...Label) *HistVar {
	if r == nil {
		return nil
	}
	k := key(name, r.withBase(labels))
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	hv := r.s.hists[k]
	if hv == nil {
		hv = &HistVar{unit: unit}
		if bounds != nil {
			hv.h = NewHistogram(bounds)
		}
		r.s.hists[k] = hv
	}
	return hv
}

// Metric is one registry entry in a snapshot: its canonical name and
// either a scalar value (counters, gauges) or a histogram.
type Metric struct {
	// Name is the canonical identity: dotted name plus sorted labels.
	Name string
	// Kind is "counter", "gauge", or "histogram".
	Kind string
	// Value holds the scalar reading for counters and gauges.
	Value int64
	// Hist holds the histogram copy for histogram metrics, with Unit
	// describing the sample unit.
	Hist Histogram
	// Unit is "ns" or "count" for histograms, empty otherwise.
	Unit string
}

// Snapshot returns every registered metric sorted by (Kind group:
// counters, gauges, histograms; then Name). The ordering is total, so
// snapshots of identical runs render identically. Nil-safe.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	out := make([]Metric, 0, len(r.s.counters)+len(r.s.gauges)+len(r.s.hists))
	for k, c := range r.s.counters {
		out = append(out, Metric{Name: k, Kind: "counter", Value: c.Value()})
	}
	for k, g := range r.s.gauges {
		out = append(out, Metric{Name: k, Kind: "gauge", Value: g.Value()})
	}
	for k, hv := range r.s.hists {
		out = append(out, Metric{Name: k, Kind: "histogram", Hist: hv.Snapshot(), Unit: hv.unit})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return kindRank(out[i].Kind) < kindRank(out[j].Kind)
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// kindRank orders metric kinds in snapshots and dumps.
func kindRank(k string) int {
	switch k {
	case "counter":
		return 0
	case "gauge":
		return 1
	default:
		return 2
	}
}

// Format renders the full registry as a deterministic, human-readable
// dump: one line per counter/gauge, one summary line per histogram with
// count, mean, p50/p95/p99, and max. This is what `hbench -metrics`
// prints. Nil-safe.
func (r *Registry) Format() string {
	var b strings.Builder
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case "counter", "gauge":
			fmt.Fprintf(&b, "%-10s %-52s %d\n", m.Kind, m.Name, m.Value)
		case "histogram":
			h := m.Hist
			if m.Unit == "count" {
				fmt.Fprintf(&b, "%-10s %-52s n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d\n",
					m.Kind, m.Name, h.Count, histMeanF(h),
					countQ(h, 0.50), countQ(h, 0.95), countQ(h, 0.99), int64(h.Max))
			} else {
				fmt.Fprintf(&b, "%-10s %-52s n=%d mean=%v p50=%v p95=%v p99=%v max=%v\n",
					m.Kind, m.Name, h.Count, h.Mean(),
					h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max)
			}
		}
	}
	return b.String()
}

// histMeanF is the mean as a float for count-unit histograms, where
// integer division would round batch sizes like 2.5 down to 2.
func histMeanF(h Histogram) float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// countQ is a quantile of a count-unit histogram rounded up to the
// integer it represents: the within-bucket interpolation is fractional,
// but observed values are whole counts, so a batch-size histogram made
// entirely of 1s reports p50=1, not the interpolated 0.5 truncated to 0.
func countQ(h Histogram, q float64) int64 {
	return int64(math.Ceil(h.QuantileF(q)))
}

// JSONSnapshot renders the registry as a deterministic JSON-encodable
// map: canonical metric name to scalar (counters, gauges) or to a
// histogram summary object. encoding/json sorts map keys, so the
// serialized form is stable. Nil-safe.
func (r *Registry) JSONSnapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case "counter", "gauge":
			out[m.Name] = m.Value
		case "histogram":
			h := m.Hist
			p50, p95, p99 := int64(h.Quantile(0.50)), int64(h.Quantile(0.95)), int64(h.Quantile(0.99))
			if m.Unit == "count" {
				p50, p95, p99 = countQ(h, 0.50), countQ(h, 0.95), countQ(h, 0.99)
			}
			out[m.Name] = map[string]any{
				"unit":  m.Unit,
				"count": h.Count,
				"sum":   int64(h.Sum),
				"max":   int64(h.Max),
				"p50":   p50,
				"p95":   p95,
				"p99":   p99,
			}
		}
	}
	return out
}

// Reset clears every registered instrument's value while keeping the
// instruments themselves (cached pointers stay valid). Nil-safe.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	for _, c := range r.s.counters {
		c.v.Store(0)
	}
	for _, g := range r.s.gauges {
		g.v.Store(0)
	}
	for _, hv := range r.s.hists {
		hv.mu.Lock()
		hv.h = Histogram{bounds: hv.h.bounds}
		hv.mu.Unlock()
	}
}
