// Package pagestore maps database objects (tables, indexes, temporary
// files) onto the linear block address space of the storage system, and
// holds the page contents themselves.
//
// The simulated devices (package device) model timing only; the actual
// bytes of every page live here, in the role the disk platters play on a
// real system. Objects are laid out in contiguous extents so that a
// sequential scan of an object produces a sequential LBA run — the
// property Rule 1 of the paper depends on, and the property the device
// I/O scheduler's coalescing and readahead (package iosched) exploit.
//
// Deleting an object releases its extents and reports them to the caller
// so the storage manager can issue TRIM commands (Section 4.2.3).
package pagestore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrUnknownObject marks operations on an object that is not (or no
// longer) registered. Callers racing a deletion — e.g. a background
// write-back of a temp-file page whose file was just dropped — match it
// with errors.Is and drop the write: the data is dead by definition.
var ErrUnknownObject = errors.New("unknown object")

// PageSize is the size of a page in bytes (one device block).
const PageSize = 8192

// ExtentPages is the number of pages in an allocation extent. Objects grow
// extent by extent, keeping their LBA runs contiguous.
const ExtentPages = 256

// ObjectID identifies a storage object. IDs are assigned by the catalog;
// temporary files receive IDs from a reserved high range.
type ObjectID uint32

// Extent is a contiguous LBA range [Start, Start+Pages).
type Extent struct {
	Start int64
	Pages int64
}

// object tracks one object's extents and logical size.
type object struct {
	extents []int64 // start LBA of each extent
	pages   int64   // logical page count
}

// Store is the page store. It is safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	objects map[ObjectID]*object
	pages   map[int64][]byte // LBA -> content
	freeExt []int64          // recycled extent start LBAs
	nextLBA int64
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		objects: make(map[ObjectID]*object),
		pages:   make(map[int64][]byte),
	}
}

// Create registers a new empty object. Creating an existing object is an
// error.
func (s *Store) Create(id ObjectID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[id]; ok {
		return fmt.Errorf("pagestore: object %d already exists", id)
	}
	s.objects[id] = &object{}
	return nil
}

// Exists reports whether the object is registered.
func (s *Store) Exists(id ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[id]
	return ok
}

// Pages returns the logical page count of the object (0 if absent).
func (s *Store) Pages(id ObjectID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o := s.objects[id]; o != nil {
		return o.pages
	}
	return 0
}

// allocExtent returns the start LBA of a fresh extent. Caller holds s.mu.
func (s *Store) allocExtent() int64 {
	if n := len(s.freeExt); n > 0 {
		lba := s.freeExt[n-1]
		s.freeExt = s.freeExt[:n-1]
		return lba
	}
	lba := s.nextLBA
	s.nextLBA += ExtentPages
	return lba
}

// LBA translates (object, page) to a block address, growing the object as
// needed. Writers may arrive out of order (the buffer pool flushes dirty
// pages in arbitrary order), so growth past the current end is allowed;
// the intervening pages read as zeroes until written.
func (s *Store) LBA(id ObjectID, page int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objects[id]
	if o == nil {
		return 0, fmt.Errorf("pagestore: %w %d", ErrUnknownObject, id)
	}
	if page < 0 {
		return 0, fmt.Errorf("pagestore: object %d: negative page %d", id, page)
	}
	if page >= o.pages {
		o.pages = page + 1
	}
	ext := page / ExtentPages
	for int64(len(o.extents)) <= ext {
		o.extents = append(o.extents, s.allocExtent())
	}
	return o.extents[ext] + page%ExtentPages, nil
}

// Extend grows the object's logical page count without writing content
// (file extension, metadata only). Pages between the old and the new end
// read as zeroes until written. Heap appenders extend the file as soon as
// a page is installed in the buffer pool, so the next appender — and any
// concurrent scanner — sees the logical end of the file rather than the
// write-back horizon.
func (s *Store) Extend(id ObjectID, pages int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objects[id]
	if o == nil {
		return fmt.Errorf("pagestore: %w %d", ErrUnknownObject, id)
	}
	if pages > o.pages {
		o.pages = pages
	}
	return nil
}

// ReadPage copies the content of (object, page) into a fresh buffer. Pages
// never written read as zeroes.
func (s *Store) ReadPage(id ObjectID, page int64) ([]byte, int64, error) {
	lba, err := s.LBA(id, page)
	if err != nil {
		return nil, 0, err
	}
	buf := make([]byte, PageSize)
	s.mu.Lock()
	if data, ok := s.pages[lba]; ok {
		copy(buf, data)
	}
	s.mu.Unlock()
	return buf, lba, nil
}

// WritePage stores the content of (object, page). The data is copied.
func (s *Store) WritePage(id ObjectID, page int64, data []byte) (int64, error) {
	if len(data) > PageSize {
		return 0, fmt.Errorf("pagestore: page payload %d exceeds %d", len(data), PageSize)
	}
	lba, err := s.LBA(id, page)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, PageSize)
	copy(buf, data)
	s.mu.Lock()
	s.pages[lba] = buf
	s.mu.Unlock()
	return lba, nil
}

// Truncate discards the object's content but keeps it registered.
func (s *Store) Truncate(id ObjectID) ([]Extent, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objects[id]
	if o == nil {
		return nil, fmt.Errorf("pagestore: %w %d", ErrUnknownObject, id)
	}
	ext := s.release(o)
	o.extents = nil
	o.pages = 0
	return ext, nil
}

// Delete removes the object and returns the freed extents so the caller
// can TRIM them.
func (s *Store) Delete(id ObjectID) ([]Extent, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objects[id]
	if o == nil {
		return nil, fmt.Errorf("pagestore: %w %d", ErrUnknownObject, id)
	}
	ext := s.release(o)
	delete(s.objects, id)
	return ext, nil
}

// release frees an object's extents and content. Caller holds s.mu.
func (s *Store) release(o *object) []Extent {
	exts := make([]Extent, 0, len(o.extents))
	for i, start := range o.extents {
		pagesInExt := int64(ExtentPages)
		if i == len(o.extents)-1 {
			if rem := o.pages - int64(i)*ExtentPages; rem < pagesInExt {
				pagesInExt = rem
			}
		}
		if pagesInExt < 0 {
			pagesInExt = 0
		}
		exts = append(exts, Extent{Start: start, Pages: pagesInExt})
		for p := int64(0); p < ExtentPages; p++ {
			delete(s.pages, start+p)
		}
		s.freeExt = append(s.freeExt, start)
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].Start < exts[j].Start })
	return exts
}

// Objects returns the registered object IDs (sorted, for deterministic
// iteration in tests).
func (s *Store) Objects() []ObjectID {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]ObjectID, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TotalPages reports the sum of logical pages across objects.
func (s *Store) TotalPages() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, o := range s.objects {
		n += o.pages
	}
	return n
}
