package pagestore

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCreateAndExists(t *testing.T) {
	s := NewStore()
	if s.Exists(1) {
		t.Fatal("object 1 exists in empty store")
	}
	if err := s.Create(1); err != nil {
		t.Fatal(err)
	}
	if !s.Exists(1) {
		t.Fatal("created object missing")
	}
	if err := s.Create(1); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestReadUnwrittenPageIsZero(t *testing.T) {
	s := NewStore()
	_ = s.Create(1)
	data, _, err := s.ReadPage(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != PageSize {
		t.Fatalf("page size %d", len(data))
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("unwritten page not zero")
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := NewStore()
	_ = s.Create(7)
	payload := []byte("hello page")
	if _, err := s.WritePage(7, 3, payload); err != nil {
		t.Fatal(err)
	}
	data, _, err := s.ReadPage(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[:len(payload)], payload) {
		t.Fatal("payload mismatch")
	}
	if s.Pages(7) != 4 {
		t.Fatalf("pages = %d, want 4 (out-of-order growth)", s.Pages(7))
	}
}

func TestSequentialLayout(t *testing.T) {
	// Pages of one object inside an extent must map to consecutive LBAs:
	// the property Rule 1 depends on.
	s := NewStore()
	_ = s.Create(1)
	prev, err := s.LBA(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := int64(1); p < ExtentPages; p++ {
		lba, err := s.LBA(1, p)
		if err != nil {
			t.Fatal(err)
		}
		if lba != prev+1 {
			t.Fatalf("page %d at LBA %d, prev at %d", p, lba, prev)
		}
		prev = lba
	}
}

func TestDistinctObjectsDistinctLBAs(t *testing.T) {
	s := NewStore()
	_ = s.Create(1)
	_ = s.Create(2)
	a, _ := s.LBA(1, 0)
	b, _ := s.LBA(2, 0)
	if a == b {
		t.Fatal("objects share an LBA")
	}
}

func TestDeleteReturnsExtentsAndRecycles(t *testing.T) {
	s := NewStore()
	_ = s.Create(1)
	for p := int64(0); p < ExtentPages+10; p++ {
		if _, err := s.WritePage(1, p, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	exts, err := s.Delete(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 2 {
		t.Fatalf("extents = %d, want 2", len(exts))
	}
	var pages int64
	for _, e := range exts {
		pages += e.Pages
	}
	if pages != ExtentPages+10 {
		t.Fatalf("extent pages = %d, want %d", pages, ExtentPages+10)
	}
	if s.Exists(1) {
		t.Fatal("deleted object still exists")
	}
	// Freed extents are reused by new objects.
	_ = s.Create(2)
	lba, _ := s.LBA(2, 0)
	found := false
	for _, e := range exts {
		if lba >= e.Start && lba < e.Start+ExtentPages {
			found = true
		}
	}
	if !found {
		t.Fatal("freed extent not recycled")
	}
	// And the recycled pages read as zero.
	data, _, _ := s.ReadPage(2, 0)
	for _, b := range data {
		if b != 0 {
			t.Fatal("stale data visible after recycle")
		}
	}
}

func TestTruncateKeepsObject(t *testing.T) {
	s := NewStore()
	_ = s.Create(1)
	_, _ = s.WritePage(1, 0, []byte{9})
	exts, err := s.Truncate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 1 {
		t.Fatalf("extents %d", len(exts))
	}
	if !s.Exists(1) || s.Pages(1) != 0 {
		t.Fatal("truncate broke the object")
	}
}

func TestErrors(t *testing.T) {
	s := NewStore()
	if _, err := s.LBA(9, 0); err == nil {
		t.Fatal("unknown object accepted")
	}
	if _, err := s.Delete(9); err == nil {
		t.Fatal("deleting unknown object accepted")
	}
	_ = s.Create(1)
	if _, err := s.LBA(1, -1); err == nil {
		t.Fatal("negative page accepted")
	}
	big := make([]byte, PageSize+1)
	if _, err := s.WritePage(1, 0, big); err == nil {
		t.Fatal("oversized page accepted")
	}
}

func TestTotalPagesAndObjects(t *testing.T) {
	s := NewStore()
	_ = s.Create(3)
	_ = s.Create(1)
	_, _ = s.WritePage(1, 0, []byte{1})
	_, _ = s.WritePage(3, 4, []byte{1})
	if got := s.TotalPages(); got != 6 {
		t.Fatalf("total pages %d, want 6", got)
	}
	ids := s.Objects()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("objects %v", ids)
	}
}

// Property: LBAs never collide across live (object, page) pairs.
func TestNoLBACollisions(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewStore()
		seen := map[int64][2]int64{} // lba -> (obj, page)
		for _, op := range ops {
			obj := ObjectID(op%5) + 1
			page := int64(op % 300)
			if !s.Exists(obj) {
				if err := s.Create(obj); err != nil {
					return false
				}
			}
			lba, err := s.LBA(obj, page)
			if err != nil {
				return false
			}
			if prev, ok := seen[lba]; ok {
				if prev != [2]int64{int64(obj), page} {
					return false
				}
			}
			seen[lba] = [2]int64{int64(obj), page}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
