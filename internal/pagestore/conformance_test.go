// Conformance suite for pagestore.Backend implementations: every
// backend the engine can mount must agree on the seam's semantics —
// object lifecycle, zero-fill reads, growth on out-of-order writes,
// iterator order, and ErrUnknownObject on racing deletes. Properties
// that are legitimately backend-specific (synchronous TRIM reporting,
// extent contiguity) are declared per backend in the case table.
package pagestore_test

import (
	"errors"
	"fmt"
	"testing"

	"hstoragedb/internal/lsm"
	"hstoragedb/internal/pagestore"
)

type backendCase struct {
	name string
	make func() pagestore.Backend
	// syncTrims: Delete reports the freed extents in its return value
	// (the heap frees in place). Backends that reclaim asynchronously
	// report nothing there and TRIM through maintenance instead.
	syncTrims bool
	// contiguous: consecutive pages of one object occupy consecutive
	// LBAs in the write plans (the heap's extent property; an LSM's
	// placement depends on flush grouping).
	contiguous bool
}

func backends() []backendCase {
	return []backendCase{
		{
			name:       "heap",
			make:       func() pagestore.Backend { return pagestore.NewStore() },
			syncTrims:  true,
			contiguous: true,
		},
		{
			name:       "lsm",
			make:       func() pagestore.Backend { return lsm.New(lsm.Config{MemtablePages: 8, L0Tables: 2}) },
			syncTrims:  false,
			contiguous: false,
		},
	}
}

func payload(id pagestore.ObjectID, page int64) []byte {
	return []byte(fmt.Sprintf("object %d page %d", id, page))
}

func readBack(t *testing.T, b pagestore.Backend, id pagestore.ObjectID, page int64, want []byte) {
	t.Helper()
	got, _, err := b.Read(id, page)
	if err != nil {
		t.Fatalf("Read(%d,%d): %v", id, page, err)
	}
	if len(got) != pagestore.PageSize {
		t.Fatalf("Read(%d,%d) returned %d bytes", id, page, len(got))
	}
	if string(got[:len(want)]) != string(want) {
		t.Fatalf("Read(%d,%d) = %q, want %q", id, page, got[:len(want)], want)
	}
}

func TestConformanceLifecycle(t *testing.T) {
	for _, bc := range backends() {
		t.Run(bc.name, func(t *testing.T) {
			b := bc.make()
			if b.Exists(7) {
				t.Fatal("fresh backend claims object 7")
			}
			if err := b.Create(7); err != nil {
				t.Fatal(err)
			}
			if err := b.Create(7); err == nil {
				t.Fatal("duplicate Create succeeded")
			}
			if !b.Exists(7) || b.Pages(7) != 0 {
				t.Fatalf("exists=%v pages=%d after create", b.Exists(7), b.Pages(7))
			}
			if err := b.Extend(7, 5); err != nil {
				t.Fatal(err)
			}
			if got := b.Pages(7); got != 5 {
				t.Fatalf("Pages after Extend = %d", got)
			}
			// Extend never shrinks.
			if err := b.Extend(7, 2); err != nil {
				t.Fatal(err)
			}
			if got := b.Pages(7); got != 5 {
				t.Fatalf("Pages after smaller Extend = %d", got)
			}
			if _, err := b.Truncate(7); err != nil {
				t.Fatal(err)
			}
			if !b.Exists(7) || b.Pages(7) != 0 {
				t.Fatalf("truncate changed existence: exists=%v pages=%d", b.Exists(7), b.Pages(7))
			}
			if _, err := b.Delete(7); err != nil {
				t.Fatal(err)
			}
			if b.Exists(7) {
				t.Fatal("object survives Delete")
			}
		})
	}
}

func TestConformanceUnknownObject(t *testing.T) {
	for _, bc := range backends() {
		t.Run(bc.name, func(t *testing.T) {
			b := bc.make()
			if _, _, err := b.Read(42, 0); !errors.Is(err, pagestore.ErrUnknownObject) {
				t.Fatalf("Read: %v", err)
			}
			if _, err := b.Write(42, 0, nil); !errors.Is(err, pagestore.ErrUnknownObject) {
				t.Fatalf("Write: %v", err)
			}
			if err := b.Extend(42, 1); !errors.Is(err, pagestore.ErrUnknownObject) {
				t.Fatalf("Extend: %v", err)
			}
			if _, err := b.Truncate(42); !errors.Is(err, pagestore.ErrUnknownObject) {
				t.Fatalf("Truncate: %v", err)
			}
			if _, err := b.Delete(42); !errors.Is(err, pagestore.ErrUnknownObject) {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := b.Iter(42); !errors.Is(err, pagestore.ErrUnknownObject) {
				t.Fatalf("Iter: %v", err)
			}
		})
	}
}

func TestConformanceReadWrite(t *testing.T) {
	for _, bc := range backends() {
		t.Run(bc.name, func(t *testing.T) {
			b := bc.make()
			if err := b.Create(1); err != nil {
				t.Fatal(err)
			}
			// Out-of-order writes grow the object; the gap reads as
			// zeroes (buffer pools flush dirty pages in any order).
			for _, p := range []int64{3, 0, 5} {
				if _, err := b.Write(1, p, payload(1, p)); err != nil {
					t.Fatal(err)
				}
			}
			if got := b.Pages(1); got != 6 {
				t.Fatalf("Pages = %d, want 6", got)
			}
			for _, p := range []int64{0, 3, 5} {
				readBack(t, b, 1, p, payload(1, p))
			}
			data, _, err := b.Read(1, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range data {
				if c != 0 {
					t.Fatal("gap page not zero-filled")
				}
			}
			// Reading past the end grows the object too.
			if _, _, err := b.Read(1, 9); err != nil {
				t.Fatal(err)
			}
			if got := b.Pages(1); got != 10 {
				t.Fatalf("Pages after read-past-end = %d, want 10", got)
			}
			// Overwrite: last write wins.
			if _, err := b.Write(1, 3, []byte("updated")); err != nil {
				t.Fatal(err)
			}
			readBack(t, b, 1, 3, []byte("updated"))
			// Oversized payloads are rejected.
			if _, err := b.Write(1, 0, make([]byte, pagestore.PageSize+1)); err == nil {
				t.Fatal("oversized write accepted")
			}
			// Negative pages are rejected.
			if _, _, err := b.Read(1, -1); err == nil {
				t.Fatal("negative-page read accepted")
			}
		})
	}
}

func TestConformanceAccessPlans(t *testing.T) {
	for _, bc := range backends() {
		t.Run(bc.name, func(t *testing.T) {
			b := bc.make()
			if err := b.Create(1); err != nil {
				t.Fatal(err)
			}
			var lbas []int64
			for p := int64(0); p < 16; p++ {
				plan, err := b.Write(1, p, payload(1, p))
				if err != nil {
					t.Fatal(err)
				}
				for _, a := range plan {
					if !a.Write {
						t.Fatalf("write plan contains a read: %+v", a)
					}
					if a.Blocks <= 0 {
						t.Fatalf("empty access in plan: %+v", a)
					}
					if !a.Meta {
						lbas = append(lbas, a.LBA)
					}
				}
			}
			if bc.contiguous {
				if len(lbas) != 16 {
					t.Fatalf("%d data accesses for 16 writes", len(lbas))
				}
				for i := 1; i < len(lbas); i++ {
					if lbas[i] != lbas[i-1]+1 {
						t.Fatalf("extent not contiguous: lba[%d]=%d after %d", i, lbas[i], lbas[i-1])
					}
				}
			}
			// Read plans: every access covers at least one block, and
			// the data still round-trips whatever the plan shape.
			for p := int64(0); p < 16; p++ {
				data, plan, err := b.Read(1, p)
				if err != nil {
					t.Fatal(err)
				}
				for _, a := range plan {
					if a.Write || a.Blocks <= 0 {
						t.Fatalf("bad read access: %+v", a)
					}
				}
				if string(data[:len(payload(1, p))]) != string(payload(1, p)) {
					t.Fatalf("page %d corrupt", p)
				}
			}
		})
	}
}

func TestConformanceDeleteReclamation(t *testing.T) {
	for _, bc := range backends() {
		t.Run(bc.name, func(t *testing.T) {
			b := bc.make()
			if err := b.Create(1); err != nil {
				t.Fatal(err)
			}
			for p := int64(0); p < 8; p++ {
				if _, err := b.Write(1, p, payload(1, p)); err != nil {
					t.Fatal(err)
				}
			}
			if sy, ok := b.(pagestore.Syncer); ok {
				if err := sy.Sync(); err != nil {
					t.Fatal(err)
				}
			}
			exts, err := b.Delete(1)
			if err != nil {
				t.Fatal(err)
			}
			if bc.syncTrims {
				var pages int64
				for _, e := range exts {
					pages += e.Pages
				}
				if pages < 8 {
					t.Fatalf("synchronous delete reported %d freed pages, want >= 8", pages)
				}
				return
			}
			// Asynchronous reclamation: nothing frees at Delete; the
			// space comes back as TRIMs once background reorganization
			// rewrites the dead object's runs.
			if len(exts) != 0 {
				t.Fatalf("async backend reported extents at Delete: %+v", exts)
			}
			mt, ok := b.(pagestore.Maintainer)
			if !ok {
				t.Fatal("async-reclaim backend without Maintainer")
			}
			mt.DrainMaintenance()
			if err := b.Create(2); err != nil {
				t.Fatal(err)
			}
			var trims int64
			for round := 0; round < 64 && trims == 0; round++ {
				for p := int64(0); p < 8; p++ {
					if _, err := b.Write(2, p, payload(2, p)); err != nil {
						t.Fatal(err)
					}
				}
				if err := b.(pagestore.Syncer).Sync(); err != nil {
					t.Fatal(err)
				}
				for _, job := range mt.DrainMaintenance() {
					for _, e := range job.Trims {
						trims += e.Pages
					}
				}
			}
			if trims == 0 {
				t.Fatal("no TRIMs surfaced through maintenance after churn")
			}
		})
	}
}

func TestConformanceIterator(t *testing.T) {
	for _, bc := range backends() {
		t.Run(bc.name, func(t *testing.T) {
			b := bc.make()
			if err := b.Create(1); err != nil {
				t.Fatal(err)
			}
			for p := int64(0); p < 12; p++ {
				if _, err := b.Write(1, p, payload(1, p)); err != nil {
					t.Fatal(err)
				}
			}
			it, err := b.Iter(1)
			if err != nil {
				t.Fatal(err)
			}
			for want := int64(0); want < 12; want++ {
				p, data, ok, err := it.Next()
				if err != nil || !ok {
					t.Fatalf("Next at %d: ok=%v err=%v", want, ok, err)
				}
				if p != want {
					t.Fatalf("iterator out of order: got page %d, want %d", p, want)
				}
				if string(data[:len(payload(1, p))]) != string(payload(1, p)) {
					t.Fatalf("iterator page %d corrupt", p)
				}
			}
			if _, _, ok, err := it.Next(); ok || err != nil {
				t.Fatalf("iterator did not terminate: ok=%v err=%v", ok, err)
			}

			// Racing delete: an open iterator must fail with
			// ErrUnknownObject, not read stale or zero data.
			it2, err := b.Iter(1)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := it2.Next(); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Delete(1); err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := it2.Next(); !errors.Is(err, pagestore.ErrUnknownObject) {
				t.Fatalf("Next after delete = %v, want ErrUnknownObject", err)
			}
		})
	}
}

func TestConformanceObjectsAndTotals(t *testing.T) {
	for _, bc := range backends() {
		t.Run(bc.name, func(t *testing.T) {
			b := bc.make()
			for _, id := range []pagestore.ObjectID{9, 3, 6} {
				if err := b.Create(id); err != nil {
					t.Fatal(err)
				}
				if _, err := b.Write(id, 1, payload(id, 1)); err != nil {
					t.Fatal(err)
				}
			}
			ids := b.Objects()
			if len(ids) != 3 || ids[0] != 3 || ids[1] != 6 || ids[2] != 9 {
				t.Fatalf("Objects() = %v, want [3 6 9]", ids)
			}
			if got := b.TotalPages(); got != 6 {
				t.Fatalf("TotalPages = %d, want 6 (three objects of 2 pages)", got)
			}
		})
	}
}
