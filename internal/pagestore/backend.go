package pagestore

import "fmt"

// Access is one physical device access an operation on a Backend plans:
// the LBA range touched, the direction, and whether the blocks hold
// structural metadata (bloom filters, index blocks, a manifest) rather
// than page data. The storage manager turns each access into a
// classified dss.Request — Meta accesses carry the highest cacheable
// priority so the hybrid cache can pin hot structure blocks, data
// accesses carry the class the policy table assigned to the page
// request itself.
//
// A backend that absorbs an operation in volatile memory (an LSM
// memtable write, a memtable read hit) returns an empty plan: no device
// is touched and the caller's clock must not advance. Durability of
// absorbed writes is the WAL's job until the next Sync.
type Access struct {
	// Write is the transfer direction.
	Write bool
	// LBA and Blocks delimit the accessed device range.
	LBA    int64
	Blocks int
	// Meta marks structure blocks (bloom/index/manifest) as opposed to
	// page data.
	Meta bool
}

// Iterator walks one object's pages in page order. Next returns ok=false
// after the last page.
type Iterator interface {
	Next() (page int64, data []byte, ok bool, err error)
}

// Backend is the storage-layer seam: the engine's storage manager talks
// to this interface instead of the concrete extent heap Store, so the
// page-to-block mapping (heap extents, an LSM tree, ...) is pluggable
// underneath the same classification machinery.
//
// Read and Write return, besides the page content, the plan of device
// accesses the operation implies; the storage manager submits the plan
// through the DSS interface. Delete and Truncate report the freed
// extents so the caller can issue TRIM — a backend whose space is
// reclaimed asynchronously (LSM compaction) may report nothing here and
// deliver its TRIMs through the Maintainer interface instead.
//
// Implementations must be safe for concurrent use.
type Backend interface {
	// Create registers a new empty object. Creating an existing object
	// is an error.
	Create(id ObjectID) error
	// Exists reports whether the object is registered.
	Exists(id ObjectID) bool
	// Pages returns the logical page count of the object (0 if absent).
	Pages(id ObjectID) int64
	// Extend grows the object's logical page count (metadata only).
	Extend(id ObjectID, pages int64) error
	// Read returns the content of (object, page) — never-written pages
	// read as zeroes — plus the access plan that produced it.
	Read(id ObjectID, page int64) ([]byte, []Access, error)
	// Write stores the content of (object, page), copying data, and
	// returns the access plan.
	Write(id ObjectID, page int64, data []byte) ([]Access, error)
	// Truncate discards the object's content but keeps it registered,
	// reporting any synchronously freed extents.
	Truncate(id ObjectID) ([]Extent, error)
	// Delete removes the object, reporting any synchronously freed
	// extents for TRIM.
	Delete(id ObjectID) ([]Extent, error)
	// Objects returns the registered object IDs in ascending order.
	Objects() []ObjectID
	// TotalPages reports the sum of logical pages across objects.
	TotalPages() int64
	// Iter iterates the object's pages in page order.
	Iter(id ObjectID) (Iterator, error)
}

// MaintKind distinguishes the maintenance work a backend generates.
type MaintKind int

const (
	// MaintFlush is a memtable flush: sequential writes of a fresh
	// SSTable (or equivalent).
	MaintFlush MaintKind = iota
	// MaintCompaction is a background reorganization: bulk reads of
	// input runs, bulk writes of merged output, TRIMs of freed input
	// space.
	MaintCompaction
)

// String implements fmt.Stringer.
func (k MaintKind) String() string {
	if k == MaintFlush {
		return "flush"
	}
	return "compaction"
}

// Maint is one unit of deferred background work a backend accumulated:
// the device accesses it implies and the extents it freed. The storage
// manager drains these after mutating operations and submits them as
// background traffic under the compaction class.
type Maint struct {
	Kind     MaintKind
	Accesses []Access
	Trims    []Extent
}

// Maintainer is implemented by backends that generate deferred
// background I/O (flushes, compactions). DrainMaintenance returns and
// clears the accumulated work queue.
type Maintainer interface {
	DrainMaintenance() []Maint
}

// Syncer is implemented by backends holding volatile state that a
// checkpoint must force to durable media (an LSM memtable and its
// manifest). Sync makes all previously absorbed writes durable; the
// implied I/O is reported through DrainMaintenance.
type Syncer interface {
	Sync() error
}

// Volatile is implemented by backends that lose state on a crash.
// Crash discards all volatile state (memtable, in-memory structure
// caches) and reloads the backend from its durable image, discarding
// orphaned blocks no manifest references. The engine's WAL recovery
// then replays committed work lost from the volatile state.
type Volatile interface {
	Crash() error
}

var _ Backend = (*Store)(nil)

// Read implements Backend: one page read is one block access at the
// page's LBA.
func (s *Store) Read(id ObjectID, page int64) ([]byte, []Access, error) {
	data, lba, err := s.ReadPage(id, page)
	if err != nil {
		return nil, nil, err
	}
	return data, []Access{{LBA: lba, Blocks: 1}}, nil
}

// Write implements Backend: one page write is one block write at the
// page's LBA.
func (s *Store) Write(id ObjectID, page int64, data []byte) ([]Access, error) {
	lba, err := s.WritePage(id, page, data)
	if err != nil {
		return nil, err
	}
	return []Access{{Write: true, LBA: lba, Blocks: 1}}, nil
}

// storeIter iterates a heap object's pages through ReadPage.
type storeIter struct {
	s     *Store
	id    ObjectID
	page  int64
	pages int64
}

// Next implements Iterator.
func (it *storeIter) Next() (int64, []byte, bool, error) {
	if it.page >= it.pages {
		return 0, nil, false, nil
	}
	p := it.page
	data, _, err := it.s.ReadPage(it.id, p)
	if err != nil {
		return 0, nil, false, err
	}
	it.page++
	return p, data, true, nil
}

// Iter implements Backend. The page count is snapshotted at creation;
// pages appended during iteration are not visited.
func (s *Store) Iter(id ObjectID) (Iterator, error) {
	s.mu.Lock()
	o := s.objects[id]
	s.mu.Unlock()
	if o == nil {
		return nil, fmt.Errorf("pagestore: %w %d", ErrUnknownObject, id)
	}
	return &storeIter{s: s, id: id, pages: s.Pages(id)}, nil
}
