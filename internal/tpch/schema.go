// Package tpch provides the workload substrate of the paper's evaluation:
// a deterministic, scaled-down TPC-H data generator, the nine indexes of
// Table 3, plan builders for all 22 queries (with the plan shapes of
// Figures 7, 8 and 10 for Q9, Q21 and Q18), the RF1/RF2 update functions,
// and the power-test / throughput-test stream drivers.
package tpch

import (
	"time"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/catalog"
)

// Day converts a calendar date to the engine's day-number representation
// (days since 1970-01-01).
func Day(y, m, d int) int64 {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC).Unix() / 86400
}

// Epoch boundaries of the TPC-H date domain.
var (
	StartDate = Day(1992, 1, 1)
	EndDate   = Day(1998, 12, 31)
)

func col(name string, t catalog.ColType) catalog.Column { return catalog.Column{Name: name, Type: t} }

// Schemas returns the eight TPC-H table schemas (the column subset the
// queries need).
func Schemas() map[string]catalog.Schema {
	return map[string]catalog.Schema{
		"region": catalog.NewSchema(
			col("r_regionkey", catalog.Int64),
			col("r_name", catalog.String),
		),
		"nation": catalog.NewSchema(
			col("n_nationkey", catalog.Int64),
			col("n_name", catalog.String),
			col("n_regionkey", catalog.Int64),
		),
		"supplier": catalog.NewSchema(
			col("s_suppkey", catalog.Int64),
			col("s_name", catalog.String),
			col("s_nationkey", catalog.Int64),
			col("s_acctbal", catalog.Float64),
			col("s_address", catalog.String),
			col("s_phone", catalog.String),
		),
		"customer": catalog.NewSchema(
			col("c_custkey", catalog.Int64),
			col("c_name", catalog.String),
			col("c_nationkey", catalog.Int64),
			col("c_mktsegment", catalog.String),
			col("c_acctbal", catalog.Float64),
			col("c_phone", catalog.String),
		),
		"part": catalog.NewSchema(
			col("p_partkey", catalog.Int64),
			col("p_name", catalog.String),
			col("p_mfgr", catalog.String),
			col("p_brand", catalog.String),
			col("p_type", catalog.String),
			col("p_size", catalog.Int64),
			col("p_container", catalog.String),
			col("p_retailprice", catalog.Float64),
		),
		"partsupp": catalog.NewSchema(
			col("ps_partkey", catalog.Int64),
			col("ps_suppkey", catalog.Int64),
			col("ps_availqty", catalog.Int64),
			col("ps_supplycost", catalog.Float64),
		),
		"orders": catalog.NewSchema(
			col("o_orderkey", catalog.Int64),
			col("o_custkey", catalog.Int64),
			col("o_orderstatus", catalog.String),
			col("o_totalprice", catalog.Float64),
			col("o_orderdate", catalog.Date),
			col("o_orderpriority", catalog.String),
			col("o_shippriority", catalog.Int64),
		),
		"lineitem": catalog.NewSchema(
			col("l_orderkey", catalog.Int64),
			col("l_partkey", catalog.Int64),
			col("l_suppkey", catalog.Int64),
			col("l_linenumber", catalog.Int64),
			col("l_quantity", catalog.Float64),
			col("l_extendedprice", catalog.Float64),
			col("l_discount", catalog.Float64),
			col("l_tax", catalog.Float64),
			col("l_returnflag", catalog.String),
			col("l_linestatus", catalog.String),
			col("l_shipdate", catalog.Date),
			col("l_commitdate", catalog.Date),
			col("l_receiptdate", catalog.Date),
			col("l_shipmode", catalog.String),
		),
	}
}

// TableNames lists the tables in load order (dimension tables first).
func TableNames() []string {
	return []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"}
}

// IndexSpec names one of the nine indexes of Table 3.
type IndexSpec struct {
	Name   string
	Table  string
	Column string
}

// Indexes returns Table 3's nine indexes.
func Indexes() []IndexSpec {
	return []IndexSpec{
		{Name: "idx_lineitem_partkey", Table: "lineitem", Column: "l_partkey"},
		{Name: "idx_lineitem_orderkey", Table: "lineitem", Column: "l_orderkey"},
		{Name: "idx_orders_orderkey", Table: "orders", Column: "o_orderkey"},
		{Name: "idx_partsupp_partkey", Table: "partsupp", Column: "ps_partkey"},
		{Name: "idx_part_partkey", Table: "part", Column: "p_partkey"},
		{Name: "idx_customer_custkey", Table: "customer", Column: "c_custkey"},
		{Name: "idx_supplier_suppkey", Table: "supplier", Column: "s_suppkey"},
		{Name: "idx_region_regionkey", Table: "region", Column: "r_regionkey"},
		{Name: "idx_nation_nationkey", Table: "nation", Column: "n_nationkey"},
	}
}

// Dataset is a loaded TPC-H database plus the bookkeeping the query
// builders and update functions need.
type Dataset struct {
	DB *engine.Database
	SF float64

	// Cardinalities after the initial load.
	Suppliers int64
	Customers int64
	Parts     int64
	Orders    int64
	Lineitems int64

	// NextOrderKey is the first unused order key (RF1 allocates from
	// here; RF2 deletes what RF1 inserted).
	NextOrderKey int64
	// pendingRF are orderkeys inserted by RF1 and not yet deleted.
	pendingRF []int64
}

// Names of regions/nations used by generation and by query parameters.
var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
	"ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
	"IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
	"SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

// nationRegion maps nation key to region key (TPC-H Appendix A.1).
var nationRegion = []int64{
	0, 1, 1, 1, 4,
	0, 3, 3, 2, 2,
	4, 4, 2, 4, 0,
	0, 0, 1, 2, 3,
	4, 2, 3, 3, 1,
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipmodes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var containers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PACK", "WRAP JAR"}
var brands = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22", "Brand#23", "Brand#31", "Brand#32", "Brand#33", "Brand#41", "Brand#42", "Brand#43", "Brand#44", "Brand#51", "Brand#53", "Brand#55"}
var typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
var nameWords = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched",
	"blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate",
	"coral", "cornflower", "cream", "cyan", "dark", "deep", "dim", "dodger",
	"drab", "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
	"green", "grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace",
}
