package tpch

import (
	"testing"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/hybrid"
)

func TestOLTPRuns(t *testing.T) {
	ds := loadSmall(t)
	inst := smallInstance(t, ds, hybrid.HStorage)
	sess := inst.NewSession()
	inst.ResetStats()

	driver := ds.NewOLTP(1)
	if err := driver.Run(sess, 200); err != nil {
		t.Fatal(err)
	}
	if driver.NewOrders == 0 || driver.Payments == 0 || driver.OrderStatuses == 0 {
		t.Fatalf("mix incomplete: %d/%d/%d", driver.NewOrders, driver.Payments, driver.OrderStatuses)
	}
	if err := inst.Pool.FlushAll(&sess.Clk); err != nil {
		t.Fatal(err)
	}

	// The mix must exercise both Rule 2 (random reads) and Rule 4
	// (write-buffered updates).
	ts := inst.Mgr.TypeStats()
	if ts[policy.RandomRequest].Blocks == 0 {
		t.Error("no random traffic from the OLTP mix")
	}
	if ts[policy.UpdateRequest].Blocks == 0 {
		t.Error("no update traffic from the OLTP mix")
	}
	snap := inst.Sys.Stats()
	if snap.Class(dss.ClassWriteBuffer).WriteBlocks == 0 {
		t.Error("updates did not reach the write buffer")
	}
}

// TestOLTPWriteBufferBenefit verifies the Rule 4 rationale: with a write
// buffer, the OLTP mix completes faster than with updates forced straight
// to the HDD (b = 0).
func TestOLTPWriteBufferBenefit(t *testing.T) {
	run := func(frac float64) int64 {
		ds := loadSmall(t)
		space := dss.DefaultPolicySpace()
		space.WriteBufferFrac = frac
		inst, err := ds.DB.NewInstance(instCfg(hybrid.Config{
			Mode:        hybrid.HStorage,
			CacheBlocks: 1024,
			Policy:      space,
		}))
		if err != nil {
			t.Fatal(err)
		}
		sess := inst.NewSession()
		driver := ds.NewOLTP(7)
		if err := driver.Run(sess, 300); err != nil {
			t.Fatal(err)
		}
		inst.Mgr.Wait(&sess.Clk)
		return int64(sess.Clk.Now())
	}
	with := run(0.20)
	without := run(0.0)
	if with >= without {
		t.Fatalf("write buffer did not help: b=20%% took %d, b=0 took %d", with, without)
	}
}
